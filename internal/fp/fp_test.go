package fp

import (
	"math/big"
	"testing"
)

// testModuli spans the dispatch space: single-limb, the toy/fast/paper
// pairing primes (2, 4 and 8 limbs — the 8-limb one exercises montMul8 and,
// being exactly 512 bits, the non-lazy F_p² path), a 505-bit prime whose 8
// limbs leave spare bits (lazy path on the specialized width), and a
// 9-limb prime on the generic fallback. Entries without a hex literal are
// derived deterministically: the smallest prime ≥ 2^(bits−1)+1.
var testModuli = []struct {
	name string
	hex  string // known-prime literal, or ""
	bits int    // used when hex == ""
}{
	{name: "1limb", bits: 64},
	{name: "toy-2limb", hex: "c88410b59ac4fa20d9a0256b"},
	{name: "fast-4limb", hex: "db19579dd2a906bb3f2f4f74c236e52c70115d99c09f7c474e96cdbe63e4da07"},
	{name: "paper-8limb", hex: "b282da5c02935d5836473139df6751ee8e1fb07c917309c04088843b36435876d65dd173ce4ac63f883c05a59ad3a134e30ef32607e2a49c71e515d4dcc47eef"},
	{name: "lazy-8limb", bits: 505},
	{name: "9limb", bits: 513},
}

func primeWithBits(bits int) *big.Int {
	p := new(big.Int).Lsh(big.NewInt(1), uint(bits-1))
	p.Add(p, big.NewInt(1))
	for !p.ProbablyPrime(20) {
		p.Add(p, big.NewInt(2))
	}
	return p
}

func testModulus(t testing.TB, name string) *big.Int {
	t.Helper()
	for _, tm := range testModuli {
		if tm.name != name {
			continue
		}
		if tm.hex != "" {
			p, ok := new(big.Int).SetString(tm.hex, 16)
			if !ok {
				t.Fatalf("bad prime literal %q", tm.hex)
			}
			return p
		}
		return primeWithBits(tm.bits)
	}
	t.Fatalf("unknown test modulus %q", name)
	return nil
}

func mustField(t testing.TB, name string) (*Field, *big.Int) {
	t.Helper()
	p := testModulus(t, name)
	if !p.ProbablyPrime(20) {
		t.Fatalf("test modulus %s is not prime", name)
	}
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return f, p
}

// boundaryValues returns the corner cases every op is checked on: 0, 1, 2,
// p−1, p−2, a value with only the top limb set, and one with all limbs
// high.
func boundaryValues(p *big.Int) []*big.Int {
	n := (p.BitLen() + 63) / 64
	top := new(big.Int).Lsh(big.NewInt(1), uint(64*(n-1)))
	top.Mod(top, p)
	all := new(big.Int).Lsh(big.NewInt(1), uint(64*n))
	all.Sub(all, big.NewInt(1))
	all.Mod(all, p)
	return []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(2)),
		top,
		all,
	}
}

func TestNewRejectsBadModuli(t *testing.T) {
	for _, bad := range []*big.Int{
		big.NewInt(0), big.NewInt(-7), big.NewInt(1), big.NewInt(10),
		new(big.Int).Lsh(big.NewInt(1), 64*MaxLimbs), // too wide (and even)
		new(big.Int).Add(new(big.Int).Lsh(big.NewInt(1), 64*MaxLimbs), big.NewInt(1)),
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%v) accepted", bad)
		}
	}
}

func TestRoundTripAndConstants(t *testing.T) {
	for _, tm := range testModuli {
		t.Run(tm.name, func(t *testing.T) {
			f, p := mustField(t, tm.name)
			for _, v := range boundaryValues(p) {
				z := f.NewElt()
				if err := f.FromBig(z, v); err != nil {
					t.Fatal(err)
				}
				if got := f.ToBig(z); got.Cmp(v) != 0 {
					t.Fatalf("round trip %v → %v", v, got)
				}
			}
			one := f.NewElt()
			f.SetOne(one)
			if got := f.ToBig(one); got.Cmp(big.NewInt(1)) != 0 {
				t.Fatalf("Montgomery one decodes to %v", got)
			}
			if !f.IsOne(one) || f.IsZero(one) {
				t.Fatal("IsOne/IsZero disagree on 1")
			}
			if err := f.FromBig(f.NewElt(), p); err == nil {
				t.Fatal("FromBig accepted p itself")
			}
		})
	}
}

func TestArithmeticMatchesBigInt(t *testing.T) {
	for _, tm := range testModuli {
		t.Run(tm.name, func(t *testing.T) {
			f, p := mustField(t, tm.name)
			vals := boundaryValues(p)
			// A couple of mid-range values derived from p.
			vals = append(vals,
				new(big.Int).Div(p, big.NewInt(3)),
				new(big.Int).Div(p, big.NewInt(7)))
			x, y, z := f.NewElt(), f.NewElt(), f.NewElt()
			for _, a := range vals {
				for _, b := range vals {
					if err := f.FromBig(x, a); err != nil {
						t.Fatal(err)
					}
					if err := f.FromBig(y, b); err != nil {
						t.Fatal(err)
					}
					check := func(op string, got []uint64, want *big.Int) {
						t.Helper()
						if g := f.ToBig(got); g.Cmp(want) != 0 {
							t.Fatalf("%s(%v, %v) = %v, want %v", op, a, b, g, want)
						}
					}
					f.Add(z, x, y)
					check("Add", z, new(big.Int).Mod(new(big.Int).Add(a, b), p))
					f.Sub(z, x, y)
					check("Sub", z, new(big.Int).Mod(new(big.Int).Sub(a, b), p))
					f.Mul(z, x, y)
					check("Mul", z, new(big.Int).Mod(new(big.Int).Mul(a, b), p))
				}
				if err := f.FromBig(x, a); err != nil {
					t.Fatal(err)
				}
				f.Square(z, x)
				wantSq := new(big.Int).Mod(new(big.Int).Mul(a, a), p)
				if g := f.ToBig(z); g.Cmp(wantSq) != 0 {
					t.Fatalf("Square(%v) = %v, want %v", a, g, wantSq)
				}
				f.Neg(z, x)
				wantNeg := new(big.Int).Mod(new(big.Int).Neg(a), p)
				if g := f.ToBig(z); g.Cmp(wantNeg) != 0 {
					t.Fatalf("Neg(%v) = %v, want %v", a, g, wantNeg)
				}
				f.Double(z, x)
				wantDbl := new(big.Int).Mod(new(big.Int).Lsh(a, 1), p)
				if g := f.ToBig(z); g.Cmp(wantDbl) != 0 {
					t.Fatalf("Double(%v) = %v, want %v", a, g, wantDbl)
				}
			}
		})
	}
}

func TestAliasing(t *testing.T) {
	f, p := mustField(t, "paper-8limb")
	a := new(big.Int).Div(p, big.NewInt(5))
	x := f.NewElt()
	if err := f.FromBig(x, a); err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mod(new(big.Int).Mul(a, a), p)
	f.Mul(x, x, x) // full aliasing
	if g := f.ToBig(x); g.Cmp(want) != 0 {
		t.Fatalf("aliased Mul = %v, want %v", g, want)
	}
	f.Add(x, x, x)
	want.Mod(want.Lsh(want, 1), p)
	if g := f.ToBig(x); g.Cmp(want) != 0 {
		t.Fatalf("aliased Add = %v, want %v", g, want)
	}
}

func TestInvAndExp(t *testing.T) {
	for _, tm := range testModuli {
		t.Run(tm.name, func(t *testing.T) {
			f, p := mustField(t, tm.name)
			x, inv, prod := f.NewElt(), f.NewElt(), f.NewElt()
			for _, a := range boundaryValues(p) {
				if err := f.FromBig(x, a); err != nil {
					t.Fatal(err)
				}
				err := f.Inv(inv, x)
				if a.Sign() == 0 {
					if err != ErrNotInvertible {
						t.Fatalf("Inv(0) = %v, want ErrNotInvertible", err)
					}
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				f.Mul(prod, x, inv)
				if !f.IsOne(prod) {
					t.Fatalf("x·x⁻¹ ≠ 1 for x = %v", a)
				}
				vt := f.NewElt()
				if err := f.InvVarTime(vt, x); err != nil {
					t.Fatal(err)
				}
				if !f.Equal(vt, inv) {
					t.Fatalf("InvVarTime disagrees with Inv for x = %v", a)
				}
			}
			// Exp vs big.Int.Exp on a fixed base and exponent.
			a := new(big.Int).Div(p, big.NewInt(11))
			e := new(big.Int).Div(p, big.NewInt(13))
			if err := f.FromBig(x, a); err != nil {
				t.Fatal(err)
			}
			f.Exp(x, x, e)
			want := new(big.Int).Exp(a, e, p)
			if g := f.ToBig(x); g.Cmp(want) != 0 {
				t.Fatalf("Exp = %v, want %v", g, want)
			}
		})
	}
}

func TestFp2TowerMatchesOracle(t *testing.T) {
	for _, tm := range testModuli {
		t.Run(tm.name, func(t *testing.T) {
			f, p := mustField(t, tm.name)
			vals := boundaryValues(p)
			ar, ai, br, bi := f.NewElt(), f.NewElt(), f.NewElt(), f.NewElt()
			zr, zi := f.NewElt(), f.NewElt()
			for i, a := range vals {
				for j, b := range vals {
					c := vals[(i+3)%len(vals)]
					d := vals[(j+5)%len(vals)]
					for _, e := range [][]*big.Int{{a, b, c, d}, {a, a, a, a}} {
						a, b, c, d := e[0], e[1], e[2], e[3]
						if err := f.FromBig(ar, a); err != nil {
							t.Fatal(err)
						}
						if err := f.FromBig(ai, b); err != nil {
							t.Fatal(err)
						}
						if err := f.FromBig(br, c); err != nil {
							t.Fatal(err)
						}
						if err := f.FromBig(bi, d); err != nil {
							t.Fatal(err)
						}
						// (a+bi)(c+di) = (ac − bd) + (ad + bc)i
						wr := new(big.Int).Sub(new(big.Int).Mul(a, c), new(big.Int).Mul(b, d))
						wr.Mod(wr, p)
						wi := new(big.Int).Add(new(big.Int).Mul(a, d), new(big.Int).Mul(b, c))
						wi.Mod(wi, p)
						f.MulFp2(zr, zi, ar, ai, br, bi)
						if gr, gi := f.ToBig(zr), f.ToBig(zi); gr.Cmp(wr) != 0 || gi.Cmp(wi) != 0 {
							t.Fatalf("MulFp2((%v,%v),(%v,%v)) = (%v,%v), want (%v,%v)", a, b, c, d, gr, gi, wr, wi)
						}
						// (a+bi)²
						sr := new(big.Int).Sub(new(big.Int).Mul(a, a), new(big.Int).Mul(b, b))
						sr.Mod(sr, p)
						si := new(big.Int).Mul(a, b)
						si.Lsh(si, 1)
						si.Mod(si, p)
						f.SquareFp2(zr, zi, ar, ai)
						if gr, gi := f.ToBig(zr), f.ToBig(zi); gr.Cmp(sr) != 0 || gi.Cmp(si) != 0 {
							t.Fatalf("SquareFp2(%v,%v) = (%v,%v), want (%v,%v)", a, b, gr, gi, sr, si)
						}
						// Aliased outputs.
						f.MulFp2(ar, ai, ar, ai, br, bi)
						if gr, gi := f.ToBig(ar), f.ToBig(ai); gr.Cmp(wr) != 0 || gi.Cmp(wi) != 0 {
							t.Fatalf("aliased MulFp2 = (%v,%v), want (%v,%v)", gr, gi, wr, wi)
						}
					}
				}
			}
		})
	}
}

func TestLazyFlagPerModulus(t *testing.T) {
	expect := map[string]bool{
		"1limb":       false, // 2^64 − 977 uses all 64 bits
		"toy-2limb":   true,  // 96 bits in 128
		"fast-4limb":  false, // exactly 256 bits
		"paper-8limb": false, // exactly 512 bits
		"lazy-8limb":  true,  // 505 bits in 512
		"9limb":       true,  // 513 bits in 576
	}
	for _, tm := range testModuli {
		f, p := mustField(t, tm.name)
		want, ok := expect[tm.name]
		if !ok {
			t.Fatalf("no expectation for %s", tm.name)
		}
		if f.Lazy() != want {
			t.Errorf("%s (bitlen %d, %d limbs): Lazy() = %v, want %v",
				tm.name, p.BitLen(), f.Limbs(), f.Lazy(), want)
		}
	}
}

func TestSelectAndEqual(t *testing.T) {
	f, p := mustField(t, "paper-8limb")
	x, y, z := f.NewElt(), f.NewElt(), f.NewElt()
	if err := f.FromBig(x, big.NewInt(7)); err != nil {
		t.Fatal(err)
	}
	if err := f.FromBig(y, new(big.Int).Sub(p, big.NewInt(1))); err != nil {
		t.Fatal(err)
	}
	Select(z, x, y, 1)
	if !f.Equal(z, x) {
		t.Fatal("Select(v=1) did not pick x")
	}
	Select(z, x, y, 0)
	if !f.Equal(z, y) {
		t.Fatal("Select(v=0) did not pick y")
	}
	if f.Equal(x, y) {
		t.Fatal("Equal confuses distinct elements")
	}
}

// TestZeroAllocs pins the headline property: no heap allocation per
// operation, on both the specialized 8-limb path and the generic fallback.
func TestZeroAllocs(t *testing.T) {
	for _, name := range []string{"paper-8limb", "9limb", "lazy-8limb"} {
		t.Run(name, func(t *testing.T) {
			f, p := mustField(t, name)
			x, y, z, zi := f.NewElt(), f.NewElt(), f.NewElt(), f.NewElt()
			if err := f.FromBig(x, new(big.Int).Div(p, big.NewInt(3))); err != nil {
				t.Fatal(err)
			}
			if err := f.FromBig(y, new(big.Int).Div(p, big.NewInt(7))); err != nil {
				t.Fatal(err)
			}
			ops := map[string]func(){
				"Add":       func() { f.Add(z, x, y) },
				"Sub":       func() { f.Sub(z, x, y) },
				"Neg":       func() { f.Neg(z, x) },
				"Mul":       func() { f.Mul(z, x, y) },
				"Square":    func() { f.Square(z, x) },
				"MulFp2":    func() { f.MulFp2(z, zi, x, y, y, x) },
				"SquareFp2": func() { f.SquareFp2(z, zi, x, y) },
				"Inv":       func() { _ = f.Inv(z, x) },
			}
			for opName, op := range ops {
				if allocs := testing.AllocsPerRun(100, op); allocs != 0 {
					t.Errorf("%s allocates %.1f objects/op, want 0", opName, allocs)
				}
			}
		})
	}
}

func BenchmarkMul(b *testing.B) {
	for _, tm := range []string{"paper-8limb", "9limb"} {
		f, p := mustField(b, tm)
		x, y, z := f.NewElt(), f.NewElt(), f.NewElt()
		if err := f.FromBig(x, new(big.Int).Div(p, big.NewInt(3))); err != nil {
			b.Fatal(err)
		}
		if err := f.FromBig(y, new(big.Int).Div(p, big.NewInt(7))); err != nil {
			b.Fatal(err)
		}
		b.Run(tm, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Mul(z, x, y)
			}
		})
	}
}

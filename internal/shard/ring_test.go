package shard

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func ids(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("user%06d@load.test", i)
	}
	return out
}

func TestLookupStableAndOrderInsensitive(t *testing.T) {
	nodes := []string{"10.0.0.3:7300", "10.0.0.1:7300", "10.0.0.2:7300"}
	r1, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New([]string{nodes[2], nodes[0], nodes[1], nodes[0]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids(500) {
		if a, b := r1.Lookup(id), r2.Lookup(id); a != b {
			t.Fatalf("lookup of %q depends on node order: %q vs %q", id, a, b)
		}
		// Replicas[0] is the owner.
		reps := r1.Replicas(nil, id, 2)
		if reps[0] != r1.Lookup(id) {
			t.Fatalf("Replicas()[0] %q != Lookup() %q", reps[0], r1.Lookup(id))
		}
		if len(reps) != 2 || reps[0] == reps[1] {
			t.Fatalf("replica list not distinct: %v", reps)
		}
	}
}

func TestDistributionRoughlyEven(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist := r.Distribution(ids(20000))
	for node, n := range dist {
		// Perfect split is 5000; accept a generous ±60% so the test guards
		// against broken hashing (all keys on one node), not statistics.
		if n < 2000 || n > 8000 {
			t.Fatalf("node %s holds %d of 20000 identities: %v", node, n, dist)
		}
	}
	if len(dist) != len(nodes) {
		t.Fatalf("only %d of %d nodes received identities: %v", len(dist), len(nodes), dist)
	}
}

// TestRebalanceChurn verifies the consistent-hashing contract: growing the
// fleet from 4 to 5 nodes moves roughly 1/5 of the identity space, never
// most of it, and the moved-vnode counter reflects the same fraction.
func TestRebalanceChurn(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r.Instrument(reg)

	all := ids(10000)
	before := make(map[string]string, len(all))
	for _, id := range all {
		before[id] = r.Lookup(id)
	}
	if err := r.SetNodes(append(nodes, "e:1")); err != nil {
		t.Fatal(err)
	}
	movedIDs := 0
	for _, id := range all {
		if r.Lookup(id) != before[id] {
			movedIDs++
		}
	}
	// Ideal churn is 1/5 = 2000; fail only on consistent-hashing being
	// broken (modulo-style ~80% reshuffles).
	if movedIDs == 0 || movedIDs > 4000 {
		t.Fatalf("adding 1 of 5 nodes moved %d of %d identities", movedIDs, len(all))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shard_ring_moved_vnodes_total", "shard_ring_rebuilds_total 1", "shard_ring_nodes 5"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, sb.String())
		}
	}
}

func TestReplicasClampAndFailoverOrderStable(t *testing.T) {
	r, err := New([]string{"a:1", "b:1", "c:1"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids(50) {
		all := r.Replicas(nil, id, 99)
		if len(all) != 3 {
			t.Fatalf("k beyond node count not clamped: %v", all)
		}
		again := r.Replicas(make([]string, 0, 3), id, 99)
		for i := range all {
			if all[i] != again[i] {
				t.Fatalf("replica order unstable for %q: %v vs %v", id, all, again)
			}
		}
	}
}

func TestEmptyRingRejected(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := New([]string{"", ""}, 0); err == nil {
		t.Fatal("blank-only node list accepted")
	}
	r, err := New([]string{"a:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetNodes(nil); err == nil {
		t.Fatal("SetNodes(nil) accepted")
	}
	// The failed SetNodes left the ring serving.
	if got := r.Lookup("x"); got != "a:1" {
		t.Fatalf("ring damaged by rejected SetNodes: %q", got)
	}
}

// TestConcurrentLookupAndRebuild runs lookups against concurrent SetNodes
// under -race.
func TestConcurrentLookupAndRebuild(t *testing.T) {
	r, err := New([]string{"a:1", "b:1"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := make([]string, 0, 4)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("u%d-%d", w, i)
				if r.Lookup(id) == "" {
					t.Error("empty lookup")
					return
				}
				if len(r.Replicas(scratch, id, 2)) == 0 {
					t.Error("empty replicas")
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		set := []string{"a:1", "b:1"}
		if i%2 == 0 {
			set = append(set, "c:1")
		}
		if err := r.SetNodes(set); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestLeaderDeterministic: the leader designation is a pure function of
// the node *set* — independent of listing order, always a member, and
// stable unless a rebalance moves the reserved token's arc.
func TestLeaderDeterministic(t *testing.T) {
	nodes := []string{"10.0.0.3:7300", "10.0.0.1:7300", "10.0.0.2:7300"}
	r1, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New([]string{nodes[1], nodes[2], nodes[0], nodes[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := r1.Leader(), r2.Leader()
	if l1 != l2 {
		t.Fatalf("leader depends on listing order: %q vs %q", l1, l2)
	}
	member := false
	for _, n := range nodes {
		if n == l1 {
			member = true
		}
	}
	if !member {
		t.Fatalf("leader %q not in node set %v", l1, nodes)
	}
	// Repeated calls are stable.
	for i := 0; i < 10; i++ {
		if r1.Leader() != l1 {
			t.Fatal("leader flapped without a rebuild")
		}
	}
	// A single-node ring leads itself.
	solo, err := New([]string{"10.0.0.9:7300"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Leader() != "10.0.0.9:7300" {
		t.Fatalf("solo leader = %q", solo.Leader())
	}
}

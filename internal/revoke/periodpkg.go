package revoke

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bf"
	"repro/internal/pairing"
)

// PeriodPKG is an *executable* implementation of the Boneh-Franklin
// built-in revocation workaround the paper argues against (identities are
// "ID ‖ period"; the PKG keeps re-issuing keys and simply skips revoked
// users). The Model implementations in this package simulate the
// economics; PeriodPKG runs the actual cryptography on a virtual clock so
// the F1 comparison's baseline behaviour is demonstrable, not just
// modelled:
//
//   - senders must embed the current period in the encryption identity;
//   - a revoked user's *current-period key keeps decrypting* until the
//     period rolls over — the latency the SEM architecture eliminates;
//   - every rollover re-extracts a key for every live user — the PKG cost.
type PeriodPKG struct {
	pkg    *bf.PKG
	period time.Duration
	now    func() time.Time

	enrolled map[string]bool
	revoked  map[string]bool
	// issued[user] maps period index → private key.
	issued map[string]map[int64]*bf.PrivateKey
	// reissues counts keys handed out after enrollment.
	reissues int
	// lastRollover is the most recent period index processed.
	lastRollover int64
}

// NewPeriodPKG builds the validity-period system over fresh Boneh-Franklin
// parameters. clock supplies virtual time (tests drive it forward
// manually).
func NewPeriodPKG(rng io.Reader, pp *pairing.Params, msgLen int, period time.Duration, clock func() time.Time) (*PeriodPKG, error) {
	pkg, err := bf.Setup(rng, pp, msgLen)
	if err != nil {
		return nil, fmt.Errorf("period PKG setup: %w", err)
	}
	if period <= 0 {
		return nil, fmt.Errorf("revoke: period must be positive")
	}
	if clock == nil {
		clock = time.Now
	}
	p := &PeriodPKG{
		pkg:      pkg,
		period:   period,
		now:      clock,
		enrolled: map[string]bool{},
		revoked:  map[string]bool{},
		issued:   map[string]map[int64]*bf.PrivateKey{},
	}
	p.lastRollover = p.index(clock())
	return p, nil
}

// Public returns the system parameters senders use.
func (p *PeriodPKG) Public() *bf.PublicParams { return p.pkg.Public() }

// PeriodIdentity is the identity string senders must encrypt to: the
// user's identity concatenated with the current period index.
func (p *PeriodPKG) PeriodIdentity(id string, at time.Time) string {
	return fmt.Sprintf("%s|%d", id, p.index(at))
}

func (p *PeriodPKG) index(at time.Time) int64 {
	return int64(at.Sub(Epoch) / p.period)
}

// Enroll registers a user and issues its key for the current period.
func (p *PeriodPKG) Enroll(id string) error {
	if p.enrolled[id] {
		return fmt.Errorf("revoke: %q already enrolled", id)
	}
	p.enrolled[id] = true
	p.issued[id] = map[int64]*bf.PrivateKey{}
	return p.issueFor(id, p.index(p.now()))
}

func (p *PeriodPKG) issueFor(id string, idx int64) error {
	key, err := p.pkg.Extract(p.PeriodIdentity(id, Epoch.Add(time.Duration(idx)*p.period)))
	if err != nil {
		return err
	}
	p.issued[id][idx] = key
	return nil
}

// Revoke marks the user revoked: the PKG stops issuing next-period keys.
// Nothing can claw back the key already issued for the current period.
func (p *PeriodPKG) Revoke(id string) { p.revoked[id] = true }

// Tick processes any period rollovers up to the current virtual time,
// reissuing keys for every live user (the cost the paper highlights).
func (p *PeriodPKG) Tick() error {
	cur := p.index(p.now())
	for idx := p.lastRollover + 1; idx <= cur; idx++ {
		for id := range p.enrolled {
			if p.revoked[id] {
				continue
			}
			if err := p.issueFor(id, idx); err != nil {
				return err
			}
			p.reissues++
		}
	}
	if cur > p.lastRollover {
		p.lastRollover = cur
	}
	return nil
}

// Reissues returns the number of keys the PKG has reissued at rollovers.
func (p *PeriodPKG) Reissues() int { return p.reissues }

// Decrypt attempts a decryption as the user at the current virtual time:
// it uses whatever key the user holds for the ciphertext's period. The
// error reports when the user never received that period's key (revoked
// before it was issued, or the period predates enrollment).
func (p *PeriodPKG) Decrypt(id string, periodIdx int64, c *bf.Ciphertext) ([]byte, error) {
	keys, ok := p.issued[id]
	if !ok {
		return nil, fmt.Errorf("revoke: %q not enrolled", id)
	}
	key, ok := keys[periodIdx]
	if !ok {
		return nil, fmt.Errorf("revoke: %q holds no key for period %d", id, periodIdx)
	}
	return p.pkg.Public().Decrypt(key, c)
}

// EncryptCurrent encrypts to the identity at the current virtual time and
// returns the ciphertext plus the period index the sender used.
func (p *PeriodPKG) EncryptCurrent(rng io.Reader, id string, msg []byte) (*bf.Ciphertext, int64, error) {
	idx := p.index(p.now())
	c, err := p.pkg.Public().Encrypt(rng, p.PeriodIdentity(id, p.now()), msg)
	if err != nil {
		return nil, 0, err
	}
	return c, idx, nil
}

// Package analysistest runs one analyzer over a GOPATH-style fixture tree
// and checks its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that fixtures
// read the same way.
//
// Layout: <testdata>/src/<importpath>/*.go. Fixture packages may import
// each other (stub repro packages live under src/repro/...) and the
// standard library; everything is type-checked from source.
//
// Expectations are line-based: a comment
//
//	x := rand.Int() // want `math/rand`
//	y := f(x)       // want "first" "second"
//
// requires every quoted regexp to match some diagnostic reported on that
// line, and every diagnostic to be matched by some expectation.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// Run loads each fixture package under testdata/src, applies the analyzer,
// and reports expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := load.NewOverlay(testdata + "/src")
	var targets []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load fixture %s: %v", path, err)
		}
		targets = append(targets, pkg)
	}
	diags, err := analysis.Run(targets, loader.Loaded(), []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := make(map[lineKey][]*regexp.Regexp)
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			collectWants(t, pkg, f, wants)
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

// collectWants parses the // want comments of one file. Each expectation is
// attached to the line the comment starts on.
func collectWants(t *testing.T, pkg *analysis.Package, f *ast.File, wants map[lineKey][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, pat := range parsePatterns(t, pos.String(), m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
				}
				k := lineKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}
}

// parsePatterns extracts the sequence of quoted (double-quote or backquote)
// patterns following a want marker.
func parsePatterns(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			q, rest, err := scanQuoted(s)
			if err != nil {
				t.Fatalf("%s: malformed want pattern %q: %v", pos, s, err)
			}
			out = append(out, q)
			s = rest
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated backquoted want pattern %q", pos, s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		default:
			t.Fatalf("%s: want patterns must be quoted, got %q", pos, s)
		}
	}
}

// scanQuoted unquotes the leading double-quoted Go string of s.
func scanQuoted(s string) (string, string, error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			q, err := strconv.Unquote(s[:i+1])
			return q, s[i+1:], err
		}
	}
	return "", "", strconv.ErrSyntax
}

package core

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"io"

	"repro/internal/bf"
	"repro/internal/pairing"
	"repro/internal/shamir"
)

// Security-game harnesses (experiment T5). The paper's Theorems 3.1 and 4.1
// are reductions; what a reproduction can execute is the *game* each theorem
// is stated over. These harnesses run the IND-ID-TCPA game of Definition 2
// and the IND-mID-wCCA game of Definition 3 mechanically against pluggable
// adversaries, so the tests can check that
//
//   - the challenger's views are consistent (honest runs complete),
//   - an adversary playing by the rules (corrupting ≤ t−1 players /
//     lacking the challenge identity's user half) wins ≈ half the time,
//   - an adversary that violates the corruption bound wins every time —
//     i.e. the games measure exactly the boundary the theorems claim.

// TCPAAdversary is an adversary for the threshold IND-ID-TCPA game.
// The challenger calls the methods in protocol order.
type TCPAAdversary interface {
	// CorruptSet returns the player indices (≤ t−1 for a legal adversary)
	// the adversary controls.
	CorruptSet(t, n int) []int
	// ChooseChallenge returns the target identity and two plaintexts after
	// seeing the public parameters and its corrupted key shares for the
	// identity.
	ChooseChallenge(params *ThresholdParams, shares []*KeyShare) (id string, m0, m1 []byte, err error)
	// Guess receives the challenge ciphertext and returns its bit guess.
	Guess(params *ThresholdParams, shares []*KeyShare, c *bf.BasicCiphertext) (int, error)
}

// RunTCPAGame plays one round of the IND-ID-TCPA game and reports whether
// the adversary guessed the challenge bit.
func RunTCPAGame(rng io.Reader, pp *pairing.Params, msgLen, t, n int, adv TCPAAdversary) (won bool, err error) {
	pkg, err := SetupThreshold(rng, pp, msgLen, t, n)
	if err != nil {
		return false, err
	}
	params := pkg.Params()
	corrupt := adv.CorruptSet(t, n)

	// The adversary first commits to the challenge identity, then receives
	// the corrupted players' shares for it (the game's stage-1 corruption).
	id, m0, m1, err := adv.ChooseChallenge(params, nil)
	if err != nil {
		return false, err
	}
	if len(m0) != msgLen || len(m1) != msgLen {
		return false, fmt.Errorf("core: challenge plaintexts must be %d bytes", msgLen)
	}
	shares := make([]*KeyShare, 0, len(corrupt))
	for _, i := range corrupt {
		ks, err := pkg.ExtractShare(id, i)
		if err != nil {
			return false, err
		}
		shares = append(shares, ks)
	}

	var bit [1]byte
	if _, err := io.ReadFull(orRand(rng), bit[:]); err != nil {
		return false, err
	}
	b := int(bit[0] & 1)
	msg := m0
	if b == 1 {
		msg = m1
	}
	c, err := params.Public.EncryptBasic(orRand(rng), id, msg)
	if err != nil {
		return false, err
	}
	guess, err := adv.Guess(params, shares, c)
	if err != nil {
		return false, err
	}
	return guess == b, nil
}

// BoundedTCPAAdversary plays by the rules: it corrupts t−1 players and then
// does the best generic thing available — tries to recombine with too few
// shares and otherwise guesses at random.
type BoundedTCPAAdversary struct {
	ID     string
	MsgLen int
}

// CorruptSet implements TCPAAdversary: exactly t−1 players.
func (a *BoundedTCPAAdversary) CorruptSet(t, _ int) []int {
	out := make([]int, 0, t-1)
	for i := 1; i < t; i++ {
		out = append(out, i)
	}
	return out
}

// ChooseChallenge implements TCPAAdversary.
func (a *BoundedTCPAAdversary) ChooseChallenge(_ *ThresholdParams, _ []*KeyShare) (string, []byte, []byte, error) {
	m0 := bytes.Repeat([]byte{0x00}, a.MsgLen)
	m1 := bytes.Repeat([]byte{0xFF}, a.MsgLen)
	return a.ID, m0, m1, nil
}

// Guess implements TCPAAdversary: with only t−1 shares no recombination is
// possible; flip a coin.
func (a *BoundedTCPAAdversary) Guess(params *ThresholdParams, shares []*KeyShare, c *bf.BasicCiphertext) (int, error) {
	if len(shares) >= params.T {
		return 0, fmt.Errorf("core: bounded adversary got %d shares", len(shares))
	}
	var b [1]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	return int(b[0] & 1), nil
}

// CheatingTCPAAdversary violates the corruption bound (t players) and
// decrypts the challenge outright — the harness's positive control.
type CheatingTCPAAdversary struct {
	ID     string
	MsgLen int
}

// CorruptSet implements TCPAAdversary: t players — one too many.
func (a *CheatingTCPAAdversary) CorruptSet(t, _ int) []int {
	out := make([]int, 0, t)
	for i := 1; i <= t; i++ {
		out = append(out, i)
	}
	return out
}

// ChooseChallenge implements TCPAAdversary.
func (a *CheatingTCPAAdversary) ChooseChallenge(_ *ThresholdParams, _ []*KeyShare) (string, []byte, []byte, error) {
	m0 := bytes.Repeat([]byte{0x00}, a.MsgLen)
	m1 := bytes.Repeat([]byte{0xFF}, a.MsgLen)
	return a.ID, m0, m1, nil
}

// Guess implements TCPAAdversary: recombine t shares and decrypt.
func (a *CheatingTCPAAdversary) Guess(params *ThresholdParams, shares []*KeyShare, c *bf.BasicCiphertext) (int, error) {
	ptShares := make([]shamir.PointShare, len(shares))
	for i, ks := range shares {
		ptShares[i] = shamir.PointShare{Index: ks.Index, Value: ks.D}
	}
	d, err := shamir.ReconstructPoint(ptShares, params.T, params.Public.Pairing.Q())
	if err != nil {
		return 0, err
	}
	msg, err := params.Public.DecryptBasic(&bf.PrivateKey{ID: a.ID, D: d}, c)
	if err != nil {
		return 0, err
	}
	if msg[0] == 0xFF { //cryptolint:public (attack-game verdict on the recovered plaintext)
		return 1, nil
	}
	return 0, nil
}

// WCCAAdversary is an adversary for the mediated IND-mID-wCCA game. The
// challenger exposes the oracle set of Definition 3 through MediatedOracles.
type WCCAAdversary interface {
	// ChooseChallenge returns the target identity and plaintexts. The
	// adversary may use the oracles before committing.
	ChooseChallenge(o *MediatedOracles) (id string, m0, m1 []byte, err error)
	// Guess receives the challenge ciphertext; the oracles remain
	// available (including SEM queries on the challenge itself, per the
	// definition) but user-key extraction for the challenge identity is
	// forbidden and enforced by the challenger.
	Guess(o *MediatedOracles, id string, c *bf.Ciphertext) (int, error)
}

// MediatedOracles is the oracle interface of the IND-mID-wCCA game.
type MediatedOracles struct {
	Public *bf.PublicParams

	pkg       *MediatedPKG
	sem       *IBESEM
	users     map[string]*UserKeyHalf
	sems      map[string]*SEMKeyHalf
	forbidden string // challenge identity: user-key extraction denied
}

func newMediatedOracles(rng io.Reader, pp *pairing.Params, msgLen int) (*MediatedOracles, error) {
	pkg, err := NewMediatedPKG(rng, pp, msgLen)
	if err != nil {
		return nil, err
	}
	return &MediatedOracles{
		Public: pkg.Public(),
		pkg:    pkg,
		sem:    NewIBESEM(pkg.Public(), NewRegistry()),
		users:  make(map[string]*UserKeyHalf),
		sems:   make(map[string]*SEMKeyHalf),
	}, nil
}

func (o *MediatedOracles) enroll(id string) error {
	if _, ok := o.users[id]; ok {
		return nil
	}
	u, s, err := o.pkg.SplitExtract(rand.Reader, id)
	if err != nil {
		return err
	}
	o.users[id] = u
	o.sems[id] = s
	o.sem.Register(s)
	return nil
}

// UserKey is the user-key-extraction oracle. Extraction for the challenge
// identity is refused, per the game.
func (o *MediatedOracles) UserKey(id string) (*UserKeyHalf, error) {
	if id == o.forbidden {
		return nil, fmt.Errorf("core: user key extraction for the challenge identity is forbidden")
	}
	if err := o.enroll(id); err != nil {
		return nil, err
	}
	return o.users[id], nil
}

// SEMKey is the SEM-key-extraction oracle (the adversary may corrupt the
// SEM entirely — this is what makes the notion "insider").
func (o *MediatedOracles) SEMKey(id string) (*SEMKeyHalf, error) {
	if err := o.enroll(id); err != nil {
		return nil, err
	}
	return o.sems[id], nil
}

// SEMQuery is the token oracle: the SEM's answer for any (id, ciphertext).
func (o *MediatedOracles) SEMQuery(id string, c *bf.Ciphertext) (*pairing.GT, error) {
	if err := o.enroll(id); err != nil {
		return nil, err
	}
	return o.sem.Token(id, c.U)
}

// Decrypt is the full-decryption oracle (both halves). Decryption of the
// challenge ciphertext itself is the caller's responsibility to forbid;
// RunWCCAGame wraps it accordingly.
func (o *MediatedOracles) Decrypt(id string, c *bf.Ciphertext) ([]byte, error) {
	if err := o.enroll(id); err != nil {
		return nil, err
	}
	full, err := RecombineKey(o.users[id], o.sems[id])
	if err != nil {
		return nil, err
	}
	return o.Public.Decrypt(full, c)
}

// RunWCCAGame plays one round of the IND-mID-wCCA game.
func RunWCCAGame(rng io.Reader, pp *pairing.Params, msgLen int, adv WCCAAdversary) (won bool, err error) {
	oracles, err := newMediatedOracles(rng, pp, msgLen)
	if err != nil {
		return false, err
	}
	id, m0, m1, err := adv.ChooseChallenge(oracles)
	if err != nil {
		return false, err
	}
	if len(m0) != msgLen || len(m1) != msgLen {
		return false, fmt.Errorf("core: challenge plaintexts must be %d bytes", msgLen)
	}
	oracles.forbidden = id
	if err := oracles.enroll(id); err != nil {
		return false, err
	}
	var bit [1]byte
	if _, err := io.ReadFull(orRand(rng), bit[:]); err != nil {
		return false, err
	}
	b := int(bit[0] & 1)
	msg := m0
	if b == 1 {
		msg = m1
	}
	c, err := oracles.Public.Encrypt(orRand(rng), id, msg)
	if err != nil {
		return false, err
	}
	guess, err := adv.Guess(oracles, id, c)
	if err != nil {
		return false, err
	}
	return guess == b, nil
}

// BoundedWCCAAdversary plays by the rules: it corrupts the SEM (takes every
// SEM half), extracts other users' halves, asks SEM tokens on the challenge
// — and still has to flip a coin.
type BoundedWCCAAdversary struct {
	ID     string
	MsgLen int
}

// ChooseChallenge implements WCCAAdversary.
func (a *BoundedWCCAAdversary) ChooseChallenge(o *MediatedOracles) (string, []byte, []byte, error) {
	// Warm up the oracles like an active insider: another user's whole key
	// and the challenge identity's SEM half.
	if _, err := o.UserKey("other@example.com"); err != nil {
		return "", nil, nil, err
	}
	if _, err := o.SEMKey(a.ID); err != nil {
		return "", nil, nil, err
	}
	m0 := bytes.Repeat([]byte{0x00}, a.MsgLen)
	m1 := bytes.Repeat([]byte{0xFF}, a.MsgLen)
	return a.ID, m0, m1, nil
}

// Guess implements WCCAAdversary.
func (a *BoundedWCCAAdversary) Guess(o *MediatedOracles, id string, c *bf.Ciphertext) (int, error) {
	// The definition allows a SEM query on the challenge — it must not
	// help without the user half.
	if _, err := o.SEMQuery(id, c); err != nil {
		return 0, err
	}
	// User-key extraction for the challenge must be refused.
	if _, err := o.UserKey(id); err == nil {
		return 0, fmt.Errorf("core: challenger leaked the challenge user key")
	}
	var b [1]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	return int(b[0] & 1), nil
}

// CheatingWCCAAdversary obtains the challenge identity's user half before
// committing to it (violating the game's restriction) — the positive
// control proving the harness measures the right boundary.
type CheatingWCCAAdversary struct {
	ID     string
	MsgLen int

	stolen *UserKeyHalf
}

// ChooseChallenge implements WCCAAdversary: steal the user half first.
func (a *CheatingWCCAAdversary) ChooseChallenge(o *MediatedOracles) (string, []byte, []byte, error) {
	u, err := o.UserKey(a.ID) // legal at this stage — that's the violation the
	if err != nil {           // game definition rules out for the target id
		return "", nil, nil, err
	}
	a.stolen = u
	m0 := bytes.Repeat([]byte{0x00}, a.MsgLen)
	m1 := bytes.Repeat([]byte{0xFF}, a.MsgLen)
	return a.ID, m0, m1, nil
}

// Guess implements WCCAAdversary: token + stolen user half = decryption.
func (a *CheatingWCCAAdversary) Guess(o *MediatedOracles, id string, c *bf.Ciphertext) (int, error) {
	token, err := o.SEMQuery(id, c)
	if err != nil {
		return 0, err
	}
	msg, err := UserDecrypt(o.Public, a.stolen, c, token)
	if err != nil {
		return 0, err
	}
	if msg[0] == 0xFF { //cryptolint:public (attack-game verdict on the recovered plaintext)
		return 1, nil
	}
	return 0, nil
}

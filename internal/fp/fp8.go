// The specialized CIOS path for the paper shape: 8 limbs / 512-bit moduli.
//
// Generate produces runtime primes, so unlike the BLS12-381 stacks there
// is no compile-time modulus to bake into the code; the specialization is
// keyed off the limb count instead. Converting the operand slices to
// fixed-size array pointers pins every loop bound at the constant 8, which
// eliminates all bounds checks and lets the compiler fully unroll the
// inner multiply-accumulate chains — the generic fallback pays per-access
// bounds checks and unknown trip counts on exactly the same arithmetic.
package fp

import "math/bits"

// montMul8 is montMulGeneric with every dimension fixed at 8 limbs.
// z = x·y·R⁻¹ mod p; aliasing of z with x and/or y is allowed.
//
//cryptolint:hotpath
func (f *Field) montMul8(z, x, y []uint64) {
	xp := (*[8]uint64)(x)
	yp := (*[8]uint64)(y)
	pp := (*[8]uint64)(f.p)
	n0 := f.n0

	var t [10]uint64
	for i := 0; i < 8; i++ {
		yi := yp[i]
		var c uint64
		for j := 0; j < 8; j++ {
			c, t[j] = madd(xp[j], yi, t[j], c)
		}
		var c2 uint64
		t[8], c2 = bits.Add64(t[8], c, 0)
		t[9] = c2

		m := t[0] * n0
		c, _ = madd(m, pp[0], t[0], 0)
		for j := 1; j < 8; j++ {
			c, t[j-1] = madd(m, pp[j], t[j], c)
		}
		t[7], c = bits.Add64(t[8], c, 0)
		t[8], _ = bits.Add64(t[9], c, 0)
	}

	zp := (*[8]uint64)(z)
	var s [8]uint64
	var b uint64
	for i := 0; i < 8; i++ {
		s[i], b = bits.Sub64(t[i], pp[i], b)
	}
	_, keepT := bits.Sub64(t[8], 0, b) // borrow ⇒ t < p ⇒ keep t
	mask := -keepT
	for i := 0; i < 8; i++ {
		zp[i] = (t[i] & mask) | (s[i] &^ mask)
	}
}

package mrsa

import (
	"fmt"
	"math/big"
	"sync"
)

// Embedded safe-prime pairs so tests and benchmarks do not pay safe-prime
// generation (minutes at 1024 bits) on every run. Both pairs were produced
// by mathx.RandomSafePrime; tests re-verify safety.
//
//   - test512:   512-bit modulus — unit/integration tests.
//   - paper1024: 1024-bit modulus — the IB-mRSA size the paper compares the
//     mediated pairing schemes against.
const (
	test512P   = "c3b520f46a4df99d692f761968e2daa3e6135124db3d800cb370b1d3534a7c83"
	test512Q   = "e247c29cee5a2d0364043c4f2f6b3d5ad017eedfd1f504ff761faaeb24dd1cdb"
	paper1024P = "d4b53598050ed13562ca52f3f2b2bcb4bdb75ab3bf5a430609bf170e71d526e1efc05088877afdb40e2a4f690898e8ccbc3ad5b56b0af5c41745c64436f008db"
	paper1024Q = "d5a2b1b9f488ad067a3162c453233c103561dd896a00aac9ec8bfd398b372b94d5e820189552eaec65832ab51bb1d84d7613f47858b51fa5346f359d88fa688b"
)

var (
	fixedOnce sync.Once
	fixedTest *IBPKG
	fixedPap  *IBPKG
	fixedErr  error
)

func loadFixed() {
	parse := func(hexP, hexQ string) (*IBPKG, error) {
		p, ok := new(big.Int).SetString(hexP, 16)
		if !ok {
			return nil, fmt.Errorf("mrsa: corrupt fixed prime constant")
		}
		q, ok := new(big.Int).SetString(hexQ, 16)
		if !ok {
			return nil, fmt.Errorf("mrsa: corrupt fixed prime constant")
		}
		return NewIBPKGFromPrimes(p, q)
	}
	fixedTest, fixedErr = parse(test512P, test512Q)
	if fixedErr != nil {
		return
	}
	fixedPap, fixedErr = parse(paper1024P, paper1024Q)
}

// FixedTestPKG returns the embedded 512-bit IB-mRSA system for tests.
func FixedTestPKG() (*IBPKG, error) {
	fixedOnce.Do(loadFixed)
	return fixedTest, fixedErr
}

// FixedPaperPKG returns the embedded 1024-bit IB-mRSA system — the modulus
// size of the paper's baseline.
func FixedPaperPKG() (*IBPKG, error) {
	fixedOnce.Do(loadFixed)
	return fixedPap, fixedErr
}

// FixedTestKeyPair returns a plain (non-identity) key pair over the 512-bit
// test modulus with e = 65537, for the mRSA tests and benches.
func FixedTestKeyPair() (*KeyPair, error) {
	pkg, err := FixedTestPKG()
	if err != nil {
		return nil, err
	}
	return KeyFromPrimes(pkg.p, pkg.q, big.NewInt(65537))
}

// FixedPaperKeyPair returns a plain key pair over the 1024-bit paper-size
// modulus with e = 65537.
func FixedPaperKeyPair() (*KeyPair, error) {
	pkg, err := FixedPaperPKG()
	if err != nil {
		return nil, err
	}
	return KeyFromPrimes(pkg.p, pkg.q, big.NewInt(65537))
}

package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJournalSequencing pins the replication contract every mutation now
// carries: sequence numbers start at 1, increase by exactly one, and
// survive a restart together with the epoch.
func TestJournalSequencing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := j.Revoke("a@x", "one"); err != nil {
		t.Fatal(err)
	}
	if err := j.Unrevoke("a@x"); err != nil {
		t.Fatal(err)
	}
	if err := j.Revoke("b@x", "two"); err != nil {
		t.Fatal(err)
	}
	if got := j.LastSeq(); got != 3 {
		t.Errorf("LastSeq = %d, want 3", got)
	}
	recs, ok := j.TailSince(0)
	if !ok || len(recs) != 3 {
		t.Fatalf("TailSince(0) = %d recs, ok=%v, want 3, true", len(recs), ok)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("rec %d seq = %d, want %d", i, r.Seq, i+1)
		}
		if r.Epoch != 3 {
			t.Errorf("rec %d epoch = %d, want 3", i, r.Epoch)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.LastSeq() != 3 || j2.Epoch() != 3 {
		t.Errorf("after reopen: seq %d epoch %d, want 3/3", j2.LastSeq(), j2.Epoch())
	}
	if !j2.Registry().IsRevoked("b@x") || j2.Registry().IsRevoked("a@x") {
		t.Error("replayed state wrong")
	}
}

// TestJournalLegacyUpgrade: a journal written before replication (records
// with no seq field) replays with synthesized sequence numbers, so an
// upgraded daemon is immediately replicable.
func TestJournalLegacyUpgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	legacy := `{"op":"revoke","id":"a@x","reason":"r1","when":"2025-01-01T00:00:00Z"}` + "\n" +
		`{"op":"revoke","id":"b@x","reason":"r2","when":"2025-01-01T00:00:01Z"}` + "\n" +
		`{"op":"unrevoke","id":"a@x","when":"2025-01-01T00:00:02Z"}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o600); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := j.LastSeq(); got != 3 {
		t.Errorf("LastSeq after legacy replay = %d, want 3", got)
	}
	if got := j.Epoch(); got != 0 {
		t.Errorf("Epoch after legacy replay = %d, want 0", got)
	}
	recs, ok := j.TailSince(0)
	if !ok || len(recs) != 3 || recs[0].Seq != 1 || recs[2].Seq != 3 {
		t.Fatalf("legacy tail = %+v, ok=%v", recs, ok)
	}
	// The next native mutation extends the synthesized numbering.
	if err := j.Revoke("c@x", "r3"); err != nil {
		t.Fatal(err)
	}
	if got := j.LastSeq(); got != 4 {
		t.Errorf("LastSeq after append = %d, want 4", got)
	}
}

// TestJournalUnknownOpAccounting is the satellite-3 regression: a
// well-formed record whose op this build does not know is skipped and
// counted as such — not silently folded into Replayed — and, unlike
// corruption, does not stop replay of what follows.
func TestJournalUnknownOpAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.jsonl")
	body := `{"op":"revoke","id":"a@x","when":"2025-01-01T00:00:00Z","seq":1}` + "\n" +
		`{"op":"rotate-epoch","fancy":"field","when":"2025-01-01T00:00:01Z","seq":2}` + "\n" +
		`{"op":"revoke","id":"b@x","when":"2025-01-01T00:00:02Z","seq":3}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := j.Replayed(); got != 2 {
		t.Errorf("Replayed = %d, want 2 (unknown op must not count)", got)
	}
	if got := j.UnknownOps(); got != 1 {
		t.Errorf("UnknownOps = %d, want 1", got)
	}
	if got := j.DroppedLines(); got != 0 {
		t.Errorf("DroppedLines = %d, want 0 (unknown op is not corruption)", got)
	}
	if !j.Registry().IsRevoked("b@x") {
		t.Error("record after the unknown op was not applied")
	}
}

// TestJournalCorruptMidFileLongSuffix extends the corrupt-tail accounting
// to the case the original test only brushed: a long once-valid suffix
// after a damaged line must be dropped entirely, with DroppedLines
// reporting the full extent (> 1 distinguishes body damage from the
// routine torn final write).
func TestJournalCorruptMidFileLongSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "damaged.jsonl")
	var b strings.Builder
	b.WriteString(`{"op":"revoke","id":"keep@x","when":"2025-01-01T00:00:00Z"}` + "\n")
	b.WriteString("\x00\x01 not json at all\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, `{"op":"revoke","id":"lost%02d@x","when":"2025-01-01T00:00:01Z"}`+"\n", i)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o600); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("damaged journal rejected: %v", err)
	}
	defer j.Close()
	if got := j.Replayed(); got != 1 {
		t.Errorf("Replayed = %d, want 1", got)
	}
	if got := j.DroppedLines(); got != 21 {
		t.Errorf("DroppedLines = %d, want 21 (bad line + 20-line suffix)", got)
	}
	reg := j.Registry()
	if !reg.IsRevoked("keep@x") {
		t.Error("intact prefix lost")
	}
	for i := 0; i < 20; i++ {
		if reg.IsRevoked(fmt.Sprintf("lost%02d@x", i)) {
			t.Fatalf("record %d after the corruption point was applied", i)
		}
	}
}

// TestJournalGroupCommitConcurrent drives many concurrent revocations
// through the group-commit path and checks nothing is lost or misordered:
// every mutation is durable across a reopen and the sequence numbers are
// a permutation-free 1..N.
func TestJournalGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := j.Revoke(fmt.Sprintf("w%d-i%d@x", w, i), "concurrent"); err != nil {
					t.Errorf("revoke: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	const total = writers * perWriter
	if got := j.LastSeq(); got != total {
		t.Errorf("LastSeq = %d, want %d", got, total)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replayed(); got != total {
		t.Errorf("Replayed = %d, want %d", got, total)
	}
	if got := len(j2.Registry().Entries()); got != total {
		t.Errorf("entries after replay = %d, want %d", got, total)
	}
	recs, ok := j2.TailSince(0)
	if !ok {
		t.Fatal("tail lost")
	}
	seqs := make([]int, 0, len(recs))
	for _, r := range recs {
		seqs = append(seqs, int(r.Seq))
	}
	if !sort.IntsAreSorted(seqs) {
		t.Error("replayed tail out of order")
	}
	if len(seqs) != total || seqs[0] != 1 || seqs[len(seqs)-1] != total {
		t.Errorf("tail covers %d..%d (%d recs), want 1..%d", seqs[0], seqs[len(seqs)-1], len(seqs), total)
	}
}

// TestJournalApplyReplicated covers the follower-side write path:
// redelivered records are skipped, gaps abort, and applied records keep
// the leader's sequence numbers and epochs.
func TestJournalApplyReplicated(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "f.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	when := time.Now().UTC()
	batch := []ReplRecord{
		{Seq: 1, Epoch: 2, Op: "revoke", ID: "a@x", Reason: "r", When: when},
		{Seq: 2, Epoch: 2, Op: "revoke", ID: "b@x", Reason: "r", When: when},
		{Seq: 3, Epoch: 2, Op: "unrevoke", ID: "a@x", When: when},
	}
	if n, err := j.ApplyReplicated(batch); err != nil || n != 3 {
		t.Fatalf("ApplyReplicated = %d, %v; want 3, nil", n, err)
	}
	if j.LastSeq() != 3 || j.Registry().IsRevoked("a@x") || !j.Registry().IsRevoked("b@x") {
		t.Fatal("replicated state wrong")
	}
	// Redelivery of the same batch is a no-op.
	if n, err := j.ApplyReplicated(batch); err != nil || n != 0 {
		t.Fatalf("redelivery applied %d, %v; want 0, nil", n, err)
	}
	// A gap aborts without applying past it.
	if n, err := j.ApplyReplicated([]ReplRecord{{Seq: 9, Epoch: 2, Op: "revoke", ID: "gap@x", When: when}}); err == nil {
		t.Fatalf("gap accepted (applied %d)", n)
	}
	if j.Registry().IsRevoked("gap@x") {
		t.Error("gapped record applied")
	}
	// Unknown op in a replicated record is refused, not persisted.
	if _, err := j.ApplyReplicated([]ReplRecord{{Seq: 4, Epoch: 2, Op: "frob", ID: "z@x", When: when}}); err == nil {
		t.Fatal("unknown replicated op accepted")
	}
}

// TestJournalTailSince pins the suffix-serving contract TailSince gives
// the leader: exact suffixes while the tail holds them, a clean miss once
// trimming has dropped the requested range.
func TestJournalTailSince(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "t.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetTailLimit(4)
	for i := 0; i < 12; i++ {
		if err := j.Revoke(fmt.Sprintf("id%02d@x", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	// Caught up: empty suffix, served.
	if recs, ok := j.TailSince(12); !ok || len(recs) != 0 {
		t.Errorf("TailSince(12) = %d recs, ok=%v; want 0, true", len(recs), ok)
	}
	// Recent suffix: served in order.
	recs, ok := j.TailSince(10)
	if !ok || len(recs) != 2 || recs[0].Seq != 11 || recs[1].Seq != 12 {
		t.Errorf("TailSince(10) = %+v, ok=%v", recs, ok)
	}
	// Ancient suffix: trimmed away, the caller must snapshot.
	if _, ok := j.TailSince(0); ok {
		t.Error("TailSince(0) served a suffix the 4-record tail cannot hold")
	}
}

// TestJournalCompaction: Compact folds the log into one snapshot record;
// state, sequence and epoch survive a reopen, and history before the
// snapshot is no longer servable.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := j.Revoke(fmt.Sprintf("id%d@x", i), "pre-compact"); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Unrevoke("id0@x"); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; lines != 1 {
		t.Errorf("compacted journal has %d lines, want 1", lines)
	}
	if _, ok := j.TailSince(2); ok {
		t.Error("pre-compaction suffix still served")
	}
	// Appends keep working after the file swap.
	if err := j.Revoke("post@x", "after"); err != nil {
		t.Fatal(err)
	}
	if got := j.LastSeq(); got != 8 {
		t.Errorf("LastSeq after compact+append = %d, want 8", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.LastSeq() != 8 || j2.Epoch() != 5 {
		t.Errorf("after reopen: seq %d epoch %d, want 8/5", j2.LastSeq(), j2.Epoch())
	}
	reg := j2.Registry()
	if reg.IsRevoked("id0@x") || !reg.IsRevoked("id5@x") || !reg.IsRevoked("post@x") {
		t.Error("compacted state wrong after reopen")
	}
}

// TestJournalAutoCompact: crossing the threshold rewrites the file inline,
// so a long-lived journal stays bounded.
func TestJournalAutoCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ac.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetAutoCompact(5)
	for i := 0; i < 12; i++ {
		if err := j.Revoke(fmt.Sprintf("id%02d@x", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// 12 appends with a threshold of 5 → compactions at 5 and 10, leaving a
	// snapshot line plus the 2 appends since.
	if lines := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; lines != 3 {
		t.Errorf("auto-compacted journal has %d lines, want 3", lines)
	}
	if got := j.LastSeq(); got != 12 {
		t.Errorf("LastSeq = %d, want 12", got)
	}
}

// TestJournalInstallSnapshot: installing a snapshot resets the registry to
// exactly the snapshot set, fires listeners for the symmetric difference,
// refuses epoch regressions, and survives a reopen.
func TestJournalInstallSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := j.Registry()
	var mu sync.Mutex
	revoked, unrevoked := map[string]int{}, map[string]int{}
	reg.OnRevoke(func(id string) { mu.Lock(); revoked[id]++; mu.Unlock() })
	reg.OnUnrevoke(func(id string) { mu.Lock(); unrevoked[id]++; mu.Unlock() })

	if err := j.Revoke("old@x", "pre"); err != nil {
		t.Fatal(err)
	}
	if err := j.Revoke("both@x", "pre"); err != nil {
		t.Fatal(err)
	}
	when := time.Now().UTC()
	snap := []RevocationEntry{
		{ID: "both@x", Reason: "kept", When: when},
		{ID: "new@x", Reason: "snap", When: when},
	}
	if err := j.InstallSnapshot(7, 40, snap); err != nil {
		t.Fatal(err)
	}
	if j.Epoch() != 7 || j.LastSeq() != 40 {
		t.Errorf("after install: epoch %d seq %d, want 7/40", j.Epoch(), j.LastSeq())
	}
	if reg.IsRevoked("old@x") || !reg.IsRevoked("new@x") || !reg.IsRevoked("both@x") {
		t.Error("snapshot state wrong")
	}
	mu.Lock()
	if revoked["new@x"] != 1 || unrevoked["old@x"] != 1 || revoked["both@x"] != 1 || unrevoked["both@x"] != 0 {
		t.Errorf("listener diff wrong: revoked=%v unrevoked=%v", revoked, unrevoked)
	}
	mu.Unlock()

	if err := j.InstallSnapshot(3, 50, nil); err == nil {
		t.Fatal("epoch regression accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Epoch() != 7 || j2.LastSeq() != 40 {
		t.Errorf("after reopen: epoch %d seq %d, want 7/40", j2.Epoch(), j2.LastSeq())
	}
	if !j2.Registry().IsRevoked("new@x") || j2.Registry().IsRevoked("old@x") {
		t.Error("installed snapshot lost across reopen")
	}
}

// TestJournalSetEpochRegress pins the fencing precondition: the journal
// never moves its epoch backwards.
func TestJournalSetEpochRegress(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "e.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.SetEpoch(4); err != nil {
		t.Fatal(err)
	}
	if err := j.SetEpoch(4); err != nil {
		t.Errorf("same-epoch SetEpoch refused: %v", err)
	}
	if err := j.SetEpoch(2); err == nil {
		t.Fatal("epoch regression accepted")
	}
}

// TestRegistryOnUnrevoke pins the satellite-1 listener symmetry: the hook
// fires only when an Unrevoke actually reinstated the identity.
func TestRegistryOnUnrevoke(t *testing.T) {
	reg := NewRegistry()
	var got []string
	reg.OnUnrevoke(func(id string) { got = append(got, id) })
	reg.Revoke("a@x", "r")
	if reg.Unrevoke("a@x") != true {
		t.Fatal("unrevoke of revoked identity reported false")
	}
	if reg.Unrevoke("never@x") != false {
		t.Fatal("unrevoke of unknown identity reported true")
	}
	if len(got) != 1 || got[0] != "a@x" {
		t.Errorf("OnUnrevoke fired for %v, want [a@x] only", got)
	}
}

// Package mrsa implements the paper's baseline from scratch: textbook RSA
// key generation (including the safe primes mediated RSA requires), OAEP
// padding, the mediated-RSA additive key split of Boneh-Ding-Tsudik-Wong,
// the identity based IB-mRSA variant, PKCS#1-v1.5-style mediated signatures,
// and the common-modulus attack (FactorFromED) that makes the paper's T4
// collusion claim executable.
//
// None of this is intended for production use — it exists so the mediated
// pairing schemes can be benchmarked against exactly the baseline the paper
// compares with, using the same measurement harness.
//
//cryptolint:vartime (legacy math/big scheme implementation; the limb discipline does not apply)
package mrsa

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/mathx"
)

var (
	// ErrKeySize is returned when a modulus is too small for OAEP.
	ErrKeySize = errors.New("mrsa: modulus too small")

	// ErrDecrypt is returned on RSA-OAEP decryption failure.
	ErrDecrypt = errors.New("mrsa: decryption error")

	// ErrVerify is returned when a signature does not verify.
	ErrVerify = errors.New("mrsa: invalid signature")

	// ErrFactorFailed is returned when the (e, d) factoring attack
	// exhausts its attempts (probability ≈ 2^−attempts for valid inputs).
	ErrFactorFailed = errors.New("mrsa: factoring from (e, d) failed")
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// PublicKey is an RSA public key (n, e).
type PublicKey struct {
	N *big.Int
	E *big.Int
}

// KeyPair is a full RSA key with its factorization retained (the PKG and
// the attack demonstrations need φ(n)).
//
//cryptolint:secret
type KeyPair struct {
	Public *PublicKey //cryptolint:public
	D      *big.Int
	P, Q   *big.Int
	Phi    *big.Int
}

// GenerateKeyPair creates an RSA key pair with a modulus of the given bit
// size and public exponent 65537. When safe is true, both primes are safe
// primes (p = 2p′+1), as the IB-mRSA setup in the paper requires.
func GenerateKeyPair(rng io.Reader, bits int, safe bool) (*KeyPair, error) {
	p, q, err := generatePrimes(rng, bits, safe)
	if err != nil {
		return nil, err
	}
	return keyFromPrimes(p, q, big.NewInt(65537))
}

// KeyFromPrimes assembles a key pair from explicit primes and exponent
// (used by the embedded fixed keys and by tests).
func KeyFromPrimes(p, q, e *big.Int) (*KeyPair, error) {
	return keyFromPrimes(new(big.Int).Set(p), new(big.Int).Set(q), new(big.Int).Set(e))
}

func generatePrimes(rng io.Reader, bits int, safe bool) (p, q *big.Int, err error) {
	gen := func(b int) (*big.Int, error) {
		if safe {
			return mathx.RandomSafePrime(rng, b)
		}
		return mathx.RandomPrime(rng, b)
	}
	for {
		p, err = gen(bits / 2)
		if err != nil {
			return nil, nil, err
		}
		q, err = gen(bits - bits/2)
		if err != nil {
			return nil, nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() == bits {
			return p, q, nil
		}
	}
}

func keyFromPrimes(p, q, e *big.Int) (*KeyPair, error) {
	n := new(big.Int).Mul(p, q)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	phi := new(big.Int).Mul(pm1, qm1)
	d, err := mathx.InverseMod(e, phi)
	if err != nil {
		return nil, fmt.Errorf("mrsa: e = %v not invertible mod φ(n): %w", e, err)
	}
	return &KeyPair{
		Public: &PublicKey{N: n, E: new(big.Int).Set(e)},
		D:      d,
		P:      p,
		Q:      q,
		Phi:    phi,
	}, nil
}

// ModulusBytes returns the modulus size k in bytes.
func (pk *PublicKey) ModulusBytes() int { return (pk.N.BitLen() + 7) / 8 }

// MaxMessageLen returns the largest OAEP plaintext the key can carry.
func (pk *PublicKey) MaxMessageLen() int { return pk.ModulusBytes() - 2*hashLen - 2 }

// EncryptOAEP performs RSA-OAEP encryption with an empty label.
func (pk *PublicKey) EncryptOAEP(rng io.Reader, msg []byte) ([]byte, error) {
	k := pk.ModulusBytes()
	if k < 2*hashLen+2 {
		return nil, ErrKeySize
	}
	em, err := oaepEncode(rng, msg, nil, k)
	if err != nil {
		return nil, err
	}
	m := new(big.Int).SetBytes(em)
	c := new(big.Int).Exp(m, pk.E, pk.N)
	return mathx.PadBytes(c, k)
}

// DecryptOAEP performs full (non-mediated) RSA-OAEP decryption.
func (kp *KeyPair) DecryptOAEP(ciphertext []byte) ([]byte, error) {
	k := kp.Public.ModulusBytes()
	if len(ciphertext) != k {
		return nil, ErrDecrypt
	}
	c := new(big.Int).SetBytes(ciphertext)
	if c.Cmp(kp.Public.N) >= 0 {
		return nil, ErrDecrypt
	}
	m := new(big.Int).Exp(c, kp.D, kp.Public.N)
	em, err := mathx.PadBytes(m, k)
	if err != nil {
		return nil, ErrDecrypt
	}
	msg, err := oaepDecode(em, nil, k)
	if err != nil {
		return nil, ErrDecrypt
	}
	return msg, nil
}

// pkcs1DigestInfo is the DER prefix for a SHA-256 DigestInfo (RFC 8017 §9.2).
var pkcs1DigestInfo = []byte{
	0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86,
	0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
	0x00, 0x04, 0x20,
}

// emsaEncode produces the EMSA-PKCS1-v1_5 encoding of msg for a k-byte
// modulus.
func emsaEncode(msg []byte, k int) ([]byte, error) {
	digest := sha256.Sum256(msg)
	tLen := len(pkcs1DigestInfo) + hashLen
	if k < tLen+11 {
		return nil, ErrKeySize
	}
	em := make([]byte, k)
	em[1] = 0x01
	for i := 2; i < k-tLen-1; i++ {
		em[i] = 0xff
	}
	copy(em[k-tLen:], pkcs1DigestInfo)
	copy(em[k-hashLen:], digest[:])
	return em, nil
}

// Sign produces a full (non-mediated) PKCS#1-v1.5 signature over msg.
func (kp *KeyPair) Sign(msg []byte) ([]byte, error) {
	k := kp.Public.ModulusBytes()
	em, err := emsaEncode(msg, k)
	if err != nil {
		return nil, err
	}
	m := new(big.Int).SetBytes(em)
	s := new(big.Int).Exp(m, kp.D, kp.Public.N)
	return mathx.PadBytes(s, k)
}

// Verify checks a PKCS#1-v1.5 signature.
func (pk *PublicKey) Verify(msg, sig []byte) error {
	k := pk.ModulusBytes()
	if len(sig) != k {
		return ErrVerify
	}
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(pk.N) >= 0 {
		return ErrVerify
	}
	m := new(big.Int).Exp(s, pk.E, pk.N)
	em, err := mathx.PadBytes(m, k)
	if err != nil {
		return ErrVerify
	}
	want, err := emsaEncode(msg, k)
	if err != nil {
		return ErrVerify
	}
	if subtleCompare(em, want) != 1 {
		return ErrVerify
	}
	return nil
}

func subtleCompare(a, b []byte) int {
	if len(a) != len(b) {
		return 0
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	if v == 0 {
		return 1
	}
	return 0
}

// FactorFromED recovers the factorization of n from a full exponent pair
// (e, d) — the classical result that knowing one (e, d) pair is equivalent
// to factoring. This is the executable form of the paper's warning that a
// user–SEM collusion (which reassembles d) *totally breaks* IB-mRSA: with
// the common modulus factored, every user's key falls.
func FactorFromED(rng io.Reader, n, e, d *big.Int) (p, q *big.Int, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	// Write e·d − 1 = 2^t · r with r odd.
	k := new(big.Int).Mul(e, d)
	k.Sub(k, one)
	if k.Sign() <= 0 {
		return nil, nil, fmt.Errorf("mrsa: e·d − 1 not positive")
	}
	t := 0
	r := new(big.Int).Set(k)
	for r.Bit(0) == 0 {
		r.Rsh(r, 1)
		t++
	}
	nm1 := new(big.Int).Sub(n, one)
	for attempt := 0; attempt < 128; attempt++ {
		g, err := mathx.RandomInRange(rng, two, n)
		if err != nil {
			return nil, nil, err
		}
		if gcd := new(big.Int).GCD(nil, nil, g, n); gcd.Cmp(one) != 0 {
			// Got lucky: g shares a factor with n.
			return splitFactors(n, gcd)
		}
		x := new(big.Int).Exp(g, r, n)
		if x.Cmp(one) == 0 || x.Cmp(nm1) == 0 {
			continue
		}
		for i := 0; i < t; i++ {
			y := new(big.Int).Mul(x, x)
			y.Mod(y, n)
			if y.Cmp(one) == 0 {
				// x is a nontrivial square root of 1 mod n.
				gcd := new(big.Int).Sub(x, one)
				gcd.GCD(nil, nil, gcd, n)
				if gcd.Cmp(one) != 0 && gcd.Cmp(n) != 0 {
					return splitFactors(n, gcd)
				}
				break
			}
			if y.Cmp(nm1) == 0 {
				break
			}
			x = y
		}
	}
	return nil, nil, ErrFactorFailed
}

func splitFactors(n, f *big.Int) (*big.Int, *big.Int, error) {
	other := new(big.Int).Div(n, f)
	check := new(big.Int).Mul(f, other)
	if check.Cmp(n) != 0 {
		return nil, nil, ErrFactorFailed
	}
	if f.Cmp(other) > 0 {
		f, other = other, f
	}
	return f, other, nil
}

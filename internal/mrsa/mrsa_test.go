package mrsa

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func testKey(t *testing.T) *KeyPair {
	t.Helper()
	kp, err := FixedTestKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func testPKG(t *testing.T) *IBPKG {
	t.Helper()
	pkg, err := FixedTestPKG()
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestFixedKeysAreSafePrimeProducts(t *testing.T) {
	for _, load := range []func() (*IBPKG, error){FixedTestPKG, FixedPaperPKG} {
		pkg, err := load()
		if err != nil {
			t.Fatal(err)
		}
		n := new(big.Int).Mul(pkg.p, pkg.q)
		if n.Cmp(pkg.n) != 0 {
			t.Fatal("modulus does not match primes")
		}
	}
	paper, _ := FixedPaperPKG()
	if got := paper.Modulus().BitLen(); got != 1024 {
		t.Fatalf("paper modulus is %d bits, want 1024", got)
	}
}

func TestGenerateKeyPair(t *testing.T) {
	kp, err := GenerateKeyPair(rand.Reader, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	if kp.Public.N.BitLen() != 512 {
		t.Fatalf("modulus %d bits, want 512", kp.Public.N.BitLen())
	}
	// e·d ≡ 1 mod φ
	check := new(big.Int).Mul(kp.Public.E, kp.D)
	check.Mod(check, kp.Phi)
	if check.Cmp(big.NewInt(1)) != 0 {
		t.Fatal("e·d ≠ 1 mod φ(n)")
	}
}

func TestOAEPRoundTrip(t *testing.T) {
	kp := testKey(t)
	msg := []byte("hello, OAEP")
	c, err := kp.Public.EncryptOAEP(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != kp.Public.ModulusBytes() {
		t.Fatalf("ciphertext %d bytes, want %d", len(c), kp.Public.ModulusBytes())
	}
	got, err := kp.DecryptOAEP(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestOAEPRejectsTamperedCiphertext(t *testing.T) {
	kp := testKey(t)
	c, _ := kp.Public.EncryptOAEP(rand.Reader, []byte("x"))
	c[len(c)-1] ^= 1
	if _, err := kp.DecryptOAEP(c); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("tampered ciphertext accepted: %v", err)
	}
	if _, err := kp.DecryptOAEP(c[:10]); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("truncated ciphertext accepted: %v", err)
	}
}

func TestOAEPMessageTooLong(t *testing.T) {
	kp := testKey(t)
	long := make([]byte, kp.Public.MaxMessageLen()+1)
	if _, err := kp.Public.EncryptOAEP(rand.Reader, long); err == nil {
		t.Fatal("oversized message accepted")
	}
	max := make([]byte, kp.Public.MaxMessageLen())
	if _, err := kp.Public.EncryptOAEP(rand.Reader, max); err != nil {
		t.Fatalf("max-size message rejected: %v", err)
	}
}

func TestOAEPEncryptionRandomized(t *testing.T) {
	kp := testKey(t)
	c1, _ := kp.Public.EncryptOAEP(rand.Reader, []byte("m"))
	c2, _ := kp.Public.EncryptOAEP(rand.Reader, []byte("m"))
	if bytes.Equal(c1, c2) {
		t.Fatal("OAEP must be randomized")
	}
}

func TestSignVerify(t *testing.T) {
	kp := testKey(t)
	msg := []byte("sign me")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kp.Public.Verify(msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := kp.Public.Verify([]byte("other"), sig); !errors.Is(err, ErrVerify) {
		t.Fatalf("wrong-message signature accepted: %v", err)
	}
	sig[0] ^= 1
	if err := kp.Public.Verify(msg, sig); !errors.Is(err, ErrVerify) {
		t.Fatalf("corrupted signature accepted: %v", err)
	}
}

func TestMediatedSplitCompleteness(t *testing.T) {
	kp := testKey(t)
	user, sem, err := Split(rand.Reader, kp)
	if err != nil {
		t.Fatal(err)
	}
	// c^{d_u}·c^{d_sem} must equal c^d for random c.
	c, _ := rand.Int(rand.Reader, kp.Public.N)
	full := new(big.Int).Exp(c, kp.D, kp.Public.N)
	combined := Combine(kp.Public.N, user.Op(c), sem.Op(c))
	if full.Cmp(combined) != 0 {
		t.Fatal("half operations do not compose to the full exponentiation")
	}
}

func TestMediatedDecrypt(t *testing.T) {
	kp := testKey(t)
	user, sem, _ := Split(rand.Reader, kp)
	msg := []byte("mediated hello")
	c, _ := kp.Public.EncryptOAEP(rand.Reader, msg)
	got, err := MediatedDecrypt(kp.Public, user, sem, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("mediated decrypt got %q, want %q", got, msg)
	}
}

func TestMediatedDecryptRejectsGarbage(t *testing.T) {
	kp := testKey(t)
	user, sem, _ := Split(rand.Reader, kp)
	junk := make([]byte, kp.Public.ModulusBytes())
	for i := range junk {
		junk[i] = 0xFF
	}
	if _, err := MediatedDecrypt(kp.Public, user, sem, junk); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("c ≥ n accepted: %v", err)
	}
	if _, err := MediatedDecrypt(kp.Public, user, sem, junk[:4]); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("short ciphertext accepted: %v", err)
	}
}

func TestHalfAloneCannotDecrypt(t *testing.T) {
	kp := testKey(t)
	user, _, _ := Split(rand.Reader, kp)
	msg := []byte("secret")
	c, _ := kp.Public.EncryptOAEP(rand.Reader, msg)
	ci := new(big.Int).SetBytes(c)
	half := user.Op(ci)
	// The half-result alone must not OAEP-decode.
	em := make([]byte, kp.Public.ModulusBytes())
	half.FillBytes(em)
	if _, err := oaepDecode(em, nil, len(em)); err == nil {
		t.Fatal("a single half decrypted the ciphertext")
	}
}

func TestMediatedSignature(t *testing.T) {
	kp := testKey(t)
	user, sem, _ := Split(rand.Reader, kp)
	msg := []byte("mediated signature")
	hu, err := SignHalf(user, msg)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := SignHalf(sem, msg)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := FinishSignature(kp.Public, msg, hu, hs)
	if err != nil {
		t.Fatal(err)
	}
	if err := kp.Public.Verify(msg, sig); err != nil {
		t.Fatalf("mediated signature invalid: %v", err)
	}
	// Signature must match the unsplit one (RSA is deterministic).
	direct, _ := kp.Sign(msg)
	if !bytes.Equal(sig, direct) {
		t.Fatal("mediated and direct signatures differ")
	}
}

func TestFinishSignatureDetectsBadHalf(t *testing.T) {
	kp := testKey(t)
	user, sem, _ := Split(rand.Reader, kp)
	msg := []byte("m")
	hu, _ := SignHalf(user, msg)
	hs, _ := SignHalf(sem, msg)
	hs.Add(hs, big.NewInt(1))
	if _, err := FinishSignature(kp.Public, msg, hu, hs); err == nil {
		t.Fatal("corrupted SEM half produced a valid signature")
	}
}

func TestIdentityExponent(t *testing.T) {
	e := IdentityExponent("alice@example.com")
	if e.Bit(0) != 1 {
		t.Fatal("identity exponent must be odd")
	}
	if e.BitLen() > 257 {
		t.Fatalf("identity exponent too wide: %d bits", e.BitLen())
	}
	if IdentityExponent("alice@example.com").Cmp(e) != 0 {
		t.Fatal("identity exponent not deterministic")
	}
	if IdentityExponent("bob@example.com").Cmp(e) == 0 {
		t.Fatal("distinct identities map to the same exponent")
	}
}

func TestIBmRSARoundTrip(t *testing.T) {
	pkg := testPKG(t)
	id := "alice@example.com"
	user, sem, err := pkg.IssueHalves(rand.Reader, id)
	if err != nil {
		t.Fatal(err)
	}
	pub := pkg.IdentityPublicKey(id)
	msg := []byte("identity based hello")
	c, err := pub.EncryptOAEP(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MediatedDecrypt(pub, user, sem, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("IB-mRSA decrypt got %q, want %q", got, msg)
	}
}

func TestIBmRSASignature(t *testing.T) {
	pkg := testPKG(t)
	id := "signer@example.com"
	user, sem, _ := pkg.IssueHalves(rand.Reader, id)
	pub := pkg.IdentityPublicKey(id)
	msg := []byte("identity based signature")
	hu, _ := SignHalf(user, msg)
	hs, _ := SignHalf(sem, msg)
	sig, err := FinishSignature(pub, msg, hu, hs)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("IB-mRSA signature invalid: %v", err)
	}
}

func TestIBmRSADistinctUsersShareModulus(t *testing.T) {
	pkg := testPKG(t)
	pa := pkg.IdentityPublicKey("a@x")
	pb := pkg.IdentityPublicKey("b@x")
	if pa.N.Cmp(pb.N) != 0 {
		t.Fatal("IB-mRSA must use a common modulus")
	}
	if pa.E.Cmp(pb.E) == 0 {
		t.Fatal("distinct identities got the same exponent")
	}
}

func TestFactorFromED(t *testing.T) {
	// The paper's "total break" claim: reassembling one user's (e, d) over
	// the common modulus factors it.
	pkg := testPKG(t)
	id := "victim@example.com"
	e := IdentityExponent(id)
	d, err := pkg.FullExponent(id)
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := FactorFromED(rand.Reader, pkg.Modulus(), e, d)
	if err != nil {
		t.Fatal(err)
	}
	n := new(big.Int).Mul(p, q)
	if n.Cmp(pkg.Modulus()) != 0 {
		t.Fatal("recovered factors do not multiply to n")
	}
	// With the factorization, the attacker derives any other user's key.
	otherE := IdentityExponent("other@example.com")
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	phi := new(big.Int).Mul(pm1, qm1)
	otherD := new(big.Int).ModInverse(otherE, phi)
	if otherD == nil {
		t.Fatal("could not derive other user's exponent")
	}
	wantD, _ := pkg.FullExponent("other@example.com")
	if otherD.Cmp(wantD) != 0 {
		t.Fatal("attacker-derived exponent mismatch")
	}
}

func TestFactorFromEDRejectsNonsense(t *testing.T) {
	if _, _, err := FactorFromED(rand.Reader, big.NewInt(35), big.NewInt(1), big.NewInt(1)); err == nil {
		t.Fatal("e·d = 1 must be rejected")
	}
}

func TestIBPKGValidation(t *testing.T) {
	if _, err := NewIBPKGFromPrimes(big.NewInt(17), big.NewInt(23)); err == nil {
		t.Fatal("non-safe prime accepted")
	}
	if _, err := NewIBPKGFromPrimes(big.NewInt(23), big.NewInt(23)); err == nil {
		t.Fatal("equal primes accepted")
	}
}

func TestQuickOAEPRoundTrip(t *testing.T) {
	kp := testKey(t)
	cfg := &quick.Config{MaxCount: 15}
	property := func(raw []byte) bool {
		if len(raw) > kp.Public.MaxMessageLen() {
			raw = raw[:kp.Public.MaxMessageLen()]
		}
		c, err := kp.Public.EncryptOAEP(rand.Reader, raw)
		if err != nil {
			return false
		}
		got, err := kp.DecryptOAEP(c)
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitCompleteness(t *testing.T) {
	kp := testKey(t)
	cfg := &quick.Config{MaxCount: 10}
	property := func(seed uint64) bool {
		user, sem, err := Split(rand.Reader, kp)
		if err != nil {
			return false
		}
		c := new(big.Int).SetUint64(seed | 2)
		full := new(big.Int).Exp(c, kp.D, kp.Public.N)
		return full.Cmp(Combine(kp.Public.N, user.Op(c), sem.Op(c))) == 0
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

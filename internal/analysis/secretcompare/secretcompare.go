// Package secretcompare forbids variable-time comparisons of secret
// material. Key halves, shares and tokens marked //cryptolint:secret must be
// compared with crypto/subtle (ConstantTimeCompare and friends): ==,
// bytes.Equal and reflect.DeepEqual all short-circuit on the first differing
// byte, which turns a remote equality check into a timing oracle on d_user.
//
// Secrets are tracked by the interprocedural taint layer (package taint),
// so material that moved through an assignment, a helper's return value or
// a struct field since leaving its annotated type is still recognized.
//
// The checker shares cttime's escape vocabulary — the two enforce the same
// constant-time discipline at different granularities. A //cryptolint:vartime
// marker on the package clause or a function's doc comment sanctions the
// deliberately variable-time code (the legacy math/big schemes), and a
// //cryptolint:public comment on the finding's line sanctions a single
// comparison (the accumulated-verdict collapse of a branch-free compare, a
// bounds check on a wire input).
package secretcompare

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/taint"
)

// Analyzer is the secretcompare checker.
var Analyzer = &analysis.Analyzer{
	Name: "secretcompare",
	Doc:  "require crypto/subtle for comparisons of //cryptolint:secret values",
	Run:  run,
}

// variableTime lists non-constant-time comparison functions by defining
// package path and name.
var variableTime = map[[2]string]bool{
	{"bytes", "Equal"}:       true,
	{"reflect", "DeepEqual"}: true,
}

// variableTimeMethods lists non-constant-time comparison methods by defining
// package path, receiver type name and method name. math/big's Cmp walks the
// limbs most-significant first and returns at the first difference, so both
// the receiver and the argument leak through its duration. Constant-time
// residue comparisons go through fp.Field.Equal, which XOR-accumulates every
// limb before collapsing to a verdict.
var variableTimeMethods = map[[3]string]bool{
	{"math/big", "Int", "Cmp"}:    true,
	{"math/big", "Int", "CmpAbs"}: true,
}

func run(pass *analysis.Pass) error {
	ta := taint.For(pass.All)
	if ta.Secrets.Names() == 0 {
		return nil
	}
	if analysis.PackageMarked(pass.Pkg, analysis.MarkerVartime) {
		return nil
	}
	info := pass.Pkg.Info
	marks := analysis.CollectLineMarks(pass.Pkg, analysis.MarkerPublic)

	check := func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return true
			}
			// Nil checks test presence, not key bytes; they carry no
			// timing signal about the secret's value.
			if isNil(info, x.X) || isNil(info, x.Y) {
				return true
			}
			if (ta.Tainted(info, x.X) || ta.Tainted(info, x.Y)) && !marks.Has(analysis.MarkerPublic, x.OpPos) {
				pass.Reportf(x.OpPos, "secret-bearing value compared with %s; use crypto/subtle", x.Op)
			}
		case *ast.CallExpr:
			fn, ok := calleeFunc(info, x)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if recv := receiverTypeName(fn); recv != "" {
				if !variableTimeMethods[[3]string{fn.Pkg().Path(), recv, fn.Name()}] {
					return true
				}
				// The receiver is as much an input to the comparison as
				// the arguments: k.D.Cmp(probe) and probe.Cmp(k.D) leak
				// identically.
				leaks := false
				if sel, selOK := ast.Unparen(x.Fun).(*ast.SelectorExpr); selOK && ta.Tainted(info, sel.X) {
					leaks = true
				}
				for _, arg := range x.Args {
					if ta.Tainted(info, arg) {
						leaks = true
						break
					}
				}
				if leaks && !marks.Has(analysis.MarkerPublic, x.Pos()) {
					pass.Reportf(x.Pos(), "secret-bearing value compared with %s.%s.%s; use crypto/subtle or fp.Field.Equal", fn.Pkg().Name(), recv, fn.Name())
				}
				return true
			}
			if !variableTime[[2]string{fn.Pkg().Path(), fn.Name()}] {
				return true
			}
			for _, arg := range x.Args {
				if ta.Tainted(info, arg) {
					if !marks.Has(analysis.MarkerPublic, x.Pos()) {
						pass.Reportf(x.Pos(), "secret-bearing value passed to %s.%s; use crypto/subtle", fn.Pkg().Name(), fn.Name())
					}
					break
				}
			}
		}
		return true
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.HasMarker(fd.Doc, analysis.MarkerVartime) {
				continue
			}
			ast.Inspect(fd.Body, check)
		}
	}
	return nil
}

func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := info.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

// receiverTypeName returns the name of fn's receiver type (through one
// pointer), or "" if fn is not a method on a named type.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isNil reports whether e is the predeclared nil.
func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

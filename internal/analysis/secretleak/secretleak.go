// Package secretleak forbids secret material from flowing into formatting
// and logging sinks. A //cryptolint:secret value passed to fmt, log or
// log/slog ends up in process output, crash reports and aggregated log
// pipelines — the exact channels the SEM threat model assumes an insider can
// read. Log the metadata (IDs, indices), never the key material.
//
// The metrics registry (repro/internal/obs) is a sink for the same reason:
// everything passed to it — series names and label values included — is
// published verbatim on the -debug-addr scrape endpoint. Secrets are
// detected inside composite-literal arguments too, so a value smuggled
// through an obs.Label{Value: ...} field is caught.
//
// Secrets are tracked by the interprocedural taint layer (package taint):
// key material that was copied into a local, returned from a helper or
// stashed in an unannotated struct field before reaching the sink is still
// recognized.
//
// Two escapes. A sink package is exempt from its own rule — the registry's
// internal plumbing handing a label slice to its own render helper is the
// sink working, not a leak into it; the boundary that matters is the call
// from outside. And a //cryptolint:public comment on the finding's line
// sanctions a deliberate disclosure with its reason (a key-generation
// tool's output path is the canonical one).
package secretleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/taint"
)

// Analyzer is the secretleak checker.
var Analyzer = &analysis.Analyzer{
	Name: "secretleak",
	Doc:  "forbid //cryptolint:secret values in fmt/log/error formatting",
	Run:  run,
}

// sinkPkgs lists packages whose every function and method is a formatting
// sink. Covers fmt.Errorf, so error construction is included, and the
// metrics registry, whose label values are exported over HTTP.
var sinkPkgs = map[string]bool{
	"fmt":                true,
	"log":                true,
	"log/slog":           true,
	"repro/internal/obs": true,
}

func run(pass *analysis.Pass) error {
	ta := taint.For(pass.All)
	if ta.Secrets.Names() == 0 {
		return nil
	}
	info := pass.Pkg.Info
	marks := analysis.CollectLineMarks(pass.Pkg, analysis.MarkerPublic)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeFunc(info, call)
			if !ok || fn.Pkg() == nil || !sinkPkgs[fn.Pkg().Path()] {
				return true
			}
			// A sink package's own internals are the sink, not callers of it.
			if fn.Pkg().Path() == pass.Pkg.Path {
				return true
			}
			for _, arg := range call.Args {
				if hit := secretIn(ta, info, arg); hit != nil && !marks.Has(analysis.MarkerPublic, hit.Pos()) {
					pass.Reportf(hit.Pos(), "secret-bearing value passed to %s.%s; log metadata, not key material", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// secretIn finds a secret-bearing expression inside a sink argument. The
// composite-literal recursion runs first so the diagnostic lands on the
// offending element, not the whole literal.
func secretIn(ta *taint.Analysis, info *types.Info, e ast.Expr) ast.Expr {
	if cl, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		for _, elt := range cl.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if hit := secretIn(ta, info, v); hit != nil {
				return hit
			}
		}
		return nil
	}
	if ta.Tainted(info, e) {
		return e
	}
	return nil
}

func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := info.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// ValueHistogram bucket layout. The latency histogram's buckets start at
// 1024 (nanoseconds below a microsecond are uninteresting), but raw values
// such as batch sizes start at 1 — so the value layout keeps the same
// four-sub-buckets-per-octave scheme with its own range: exact buckets up
// to 2^vhMinBits and log-linear growth to 2^vhMaxBits (~17 G), far above
// any frame size the wire layer can negotiate.
const (
	vhMinBits = 3  // buckets 0..8 are exact: one per value 0..2^vhMinBits
	vhMaxBits = 34 // overflow above ~17e9
	vhSubBits = 2  // 4 sub-buckets per octave
	vhSub     = 1 << vhSubBits

	// vhNumBuckets = exact region + 4 per octave + overflow.
	vhNumBuckets = (1 << vhMinBits) + 1 + (vhMaxBits-vhMinBits)*vhSub + 1
)

// vhBounds[i] is the inclusive upper bound of bucket i; the final overflow
// bucket is unbounded.
var vhBounds = func() [vhNumBuckets - 1]uint64 {
	var b [vhNumBuckets - 1]uint64
	for i := 0; i <= 1<<vhMinBits; i++ {
		b[i] = uint64(i)
	}
	for i := (1 << vhMinBits) + 1; i < len(b); i++ {
		k := i - (1 << vhMinBits) // 1-based sub-bucket rank past the exact region
		octave := vhMinBits + (k-1)/vhSub
		sub := uint64((k-1)%vhSub) + 1
		b[i] = 1<<octave + sub<<(octave-vhSubBits)
	}
	return b
}()

// vhBucketIndex maps a value to its bucket.
func vhBucketIndex(v uint64) int {
	if v <= 1<<vhMinBits {
		return int(v)
	}
	if v > 1<<vhMaxBits {
		return vhNumBuckets - 1
	}
	// Values in (2^o, 2^(o+1)] land in octave o; bounds are inclusive, so
	// index off v−1.
	octave := bits.Len64(v-1) - 1
	sub := ((v - 1) >> (uint(octave) - vhSubBits)) & (vhSub - 1)
	return 1<<vhMinBits + 1 + (octave-vhMinBits)*vhSub + int(sub)
}

// ValueHistogram is a log-bucketed histogram over raw non-negative values
// (batch sizes, frame bytes) rather than durations: small values bucket
// exactly and larger ones log-linearly, and exposition renders bounds and
// sums as plain numbers instead of seconds. The zero value is ready to
// use; Observe is safe for concurrent use, lock-free and allocation-free.
type ValueHistogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [vhNumBuckets]atomic.Uint64
}

// Observe records one value. Negative values record as zero.
//
//cryptolint:hotpath
func (h *ValueHistogram) Observe(v int) {
	if h == nil {
		return
	}
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.count.Add(1)
	h.sum.Add(u)
	h.buckets[vhBucketIndex(u)].Add(1)
}

// ValueHistogramSnapshot is a point-in-time copy of a value histogram's
// state, with the same cross-bucket skew caveat as HistogramSnapshot.
type ValueHistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	buckets [vhNumBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *ValueHistogram) Snapshot() ValueHistogramSnapshot {
	var s ValueHistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket holding that rank — exact for values up to 2^vhMinBits and a
// conservative overestimate within one sub-bucket beyond. Returns 0 for an
// empty histogram; ranks in the overflow bucket report the largest tracked
// bound.
func (s ValueHistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank > 0 {
		rank--
	}
	var cum uint64
	for i, c := range s.buckets {
		cum += c
		if cum > rank {
			if i >= len(vhBounds) {
				break
			}
			return vhBounds[i]
		}
	}
	return vhBounds[len(vhBounds)-1]
}

// Mean returns the average observed value (0 when empty).
func (s ValueHistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// ValueHistogram registers (or finds) a raw-value histogram series.
func (r *Registry) ValueHistogram(name, help string, labels ...Label) *ValueHistogram {
	c := r.register(kindHistogram, name, help, labels, func() collector { return new(ValueHistogram) })
	if h, ok := c.(*ValueHistogram); ok {
		return h
	}
	return new(ValueHistogram)
}

func (h *ValueHistogram) writeProm(w io.Writer, name, labels string) error {
	s := h.Snapshot()
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum uint64
	for i, bound := range vhBounds {
		c := s.buckets[i]
		cum += c
		if c == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"%d\"} %d\n", name, open, bound, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
	return err
}

func (h *ValueHistogram) jsonValue() any {
	s := h.Snapshot()
	return map[string]any{
		"count": s.Count,
		"sum":   s.Sum,
		"mean":  s.Mean(),
		"p50":   s.Quantile(0.50),
		"p95":   s.Quantile(0.95),
		"p99":   s.Quantile(0.99),
	}
}

package bench

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"time"

	"repro/internal/bf"
	"repro/internal/core"
	"repro/internal/mrsa"
)

// AttackOutcome records one cell of the T4 compromise matrix.
type AttackOutcome struct {
	Scheme      string
	Attack      string
	SystemBroke bool // true = the attack compromises OTHER users
	Elapsed     time.Duration
	Detail      string
}

// Attacks runs T4: the executable compromise/collusion matrix of the
// paper's security comparison.
//
//  1. IB-mRSA, user+SEM collusion: reassembling one identity's (e, d) over
//     the common modulus factors n in milliseconds, yielding EVERY user's
//     key — "completely broken if a user can corrupt a SEM".
//  2. Mediated IBE, user+SEM collusion: the colluders reassemble exactly
//     their own d_ID; decrypting another identity's ciphertext still fails.
//     They can at most tamper with revocation state.
//  3. Mediated GDH, user+SEM collusion: same containment — they recover one
//     signing key, not the TA's randomness for other users.
func Attacks(w *World) ([]AttackOutcome, error) {
	var out []AttackOutcome

	// --- IB-mRSA total break ---
	start := time.Now()
	e := mrsa.IdentityExponent(w.ID)
	fullD, err := w.RSAPKG.FullExponent(w.ID)
	if err != nil {
		return nil, err
	}
	p, q, err := mrsa.FactorFromED(rand.Reader, w.RSAPub.N, e, fullD)
	elapsed := time.Since(start)
	if err != nil {
		out = append(out, AttackOutcome{
			Scheme: "ib-mrsa", Attack: "user+SEM collusion → factor n",
			SystemBroke: false, Elapsed: elapsed,
			Detail: fmt.Sprintf("factoring unexpectedly failed: %v", err),
		})
	} else {
		// Derive a different victim's full key from the factorization.
		victimBroken := verifyRSAVictimBreak(w, p, q)
		out = append(out, AttackOutcome{
			Scheme: "ib-mrsa", Attack: "user+SEM collusion → factor n",
			SystemBroke: victimBroken, Elapsed: elapsed,
			Detail: "common modulus factored; every identity's exponent derivable",
		})
	}

	// --- Mediated IBE containment ---
	start = time.Now()
	broke, detail, err := ibeCollusion(w)
	if err != nil {
		return nil, err
	}
	out = append(out, AttackOutcome{
		Scheme: "mediated-ibe", Attack: "user+SEM collusion → other users' plaintext",
		SystemBroke: broke, Elapsed: time.Since(start), Detail: detail,
	})

	// --- Mediated GDH containment ---
	start = time.Now()
	gdhBroke, gdhDetail, err := gdhCollusion(w)
	if err != nil {
		return nil, err
	}
	out = append(out, AttackOutcome{
		Scheme: "mediated-gdh", Attack: "user+SEM collusion → forge for other users",
		SystemBroke: gdhBroke, Elapsed: time.Since(start), Detail: gdhDetail,
	})
	return out, nil
}

// verifyRSAVictimBreak checks that the recovered factors let the attacker
// decrypt a ciphertext addressed to a *different* identity.
func verifyRSAVictimBreak(w *World, p, q *big.Int) bool {
	victim := "victim@example.com"
	pub := w.RSAPKG.IdentityPublicKey(victim)
	msg := []byte("victim secret")
	ct, err := pub.EncryptOAEP(rand.Reader, msg)
	if err != nil {
		return false
	}
	kp, err := mrsa.KeyFromPrimes(p, q, mrsa.IdentityExponent(victim))
	if err != nil {
		return false
	}
	got, err := kp.DecryptOAEP(ct)
	return err == nil && string(got) == string(msg)
}

// ibeCollusion: Mallory holds her user half and (having corrupted the SEM)
// all SEM halves. Can she read Alice's mail?
func ibeCollusion(w *World) (broke bool, detail string, err error) {
	pub := w.IBEPKG.Public()
	malloryUser, mallorySEM, err := w.IBEPKG.SplitExtract(rand.Reader, "mallory@example.com")
	if err != nil {
		return false, "", err
	}
	// Alice's ciphertext; Mallory knows Alice's SEM half too.
	msg := make([]byte, w.MsgLen)
	for i := range msg {
		msg[i] = 0x5A
	}
	ct, err := pub.Encrypt(rand.Reader, w.ID, msg)
	if err != nil {
		return false, "", err
	}
	// Attempt 1: use Alice's SEM half as if it were her full key.
	bogus := &bf.PrivateKey{ID: w.ID, D: w.IBESEMK.D}
	if _, err := pub.Decrypt(bogus, ct); err == nil {
		return true, "Alice's SEM half alone decrypted her ciphertext", nil
	}
	// Attempt 2: use Mallory's reassembled full key on Alice's ciphertext.
	mKey, err := core.RecombineKey(malloryUser, mallorySEM)
	if err != nil {
		return false, "", err
	}
	if _, err := pub.Decrypt(mKey, ct); err == nil {
		return true, "Mallory's key decrypted Alice's ciphertext", nil
	}
	// Sanity: the collusion does recover Mallory's own capability.
	own, err := pub.Encrypt(rand.Reader, "mallory@example.com", msg)
	if err != nil {
		return false, "", err
	}
	if _, err := pub.Decrypt(mKey, own); err != nil {
		return false, "", fmt.Errorf("collusion failed to even recover Mallory's own key: %w", err)
	}
	return false, "colluders recovered only their own key; Alice's traffic stays safe (can at most unrevoke identities)", nil
}

// gdhCollusion: colluders reassemble Mallory's signing scalar; Alice's
// signing key remains out of reach — a signature in Alice's name still
// fails verification.
func gdhCollusion(w *World) (broke bool, detail string, err error) {
	malloryUser, mallorySEM, err := w.GDHAuth.Keygen(rand.Reader, "mallory@example.com")
	if err != nil {
		return false, "", err
	}
	full, err := core.RecombineGDHKey(malloryUser, mallorySEM)
	if err != nil {
		return false, "", err
	}
	msg := []byte("pay mallory one million")
	forged, err := full.Sign(msg)
	if err != nil {
		return false, "", err
	}
	// The forged signature verifies under MALLORY's key (her own capability,
	// fine)…
	if err := malloryUser.Public.Verify(msg, forged); err != nil {
		return false, "", errors.New("collusion failed to recover Mallory's own signing key")
	}
	// …but not under Alice's public key.
	if err := w.GDHUser.Public.Verify(msg, forged); err == nil {
		return true, "signature forged under Alice's key", nil
	}
	return false, "colluders recovered only their own signing key; no forgery under other identities", nil
}

// AttackTable renders the outcomes as the T4 table.
func AttackTable(outcomes []AttackOutcome) *Table {
	rows := make([][]string, 0, len(outcomes))
	for _, o := range outcomes {
		verdict := "contained"
		if o.SystemBroke {
			verdict = "SYSTEM BROKEN"
		}
		rows = append(rows, []string{o.Scheme, o.Attack, verdict, o.Elapsed.Round(time.Microsecond).String(), o.Detail})
	}
	return &Table{
		ID:      "T4",
		Caption: "compromise/collusion matrix (executable attacks)",
		Columns: []string{"scheme", "attack", "verdict", "time", "detail"},
		Rows:    rows,
		Notes: []string{
			"expected shape: IB-mRSA = SYSTEM BROKEN (factor n from one (e,d) pair); both pairing schemes = contained",
		},
	}
}

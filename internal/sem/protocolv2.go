package sem

import (
	"repro/internal/wire"
)

// Protocol v2: the binary framing of internal/wire (framev2.go) carried
// over the same listener as the v1 JSON protocol. A v2 connection opens
// with the client preamble ("SEM2" + version); the server answers with an
// acknowledgement carrying the negotiated per-connection limits (max batch
// size, max frame bytes) and then speaks length-delimited binary frames
// only. Each frame carries one op byte and up to maxBatch items, answered
// by one in-order response frame; items within a batch execute through the
// worker pool in one pass and their results keep request order.
//
// Every v1 operation has a v2 op byte. The three mediated hot ops
// (ibe_token, gdh_half_sign, rsa_half_dec) are the reason v2 exists —
// their items are raw compressed points / ciphertext bytes with no JSON or
// base64 in the path — but admin traffic uses the same frames so one
// connection never mixes protocol versions.
const (
	v2OpIBEToken   byte = 1  // item: id, compressed U → GT bytes
	v2OpGDHSign    byte = 2  // item: id, compressed h(M) → compressed S_sem
	v2OpRSADecrypt byte = 3  // item: id, c bytes → c^{d_sem} bytes
	v2OpRSASign    byte = 4  // item: id, message → EMSA(m)^{d_sem} bytes
	v2OpGMDecrypt  byte = 5  // item: id, packed GM elements → packed halves
	v2OpRevoke     byte = 6  // item: id, reason bytes → empty
	v2OpUnrevoke   byte = 7  // item: id → empty
	v2OpStatus     byte = 8  // item: id → 1 byte (1 = revoked)
	v2OpList       byte = 9  // item: none → JSON array of entries
	v2OpPing       byte = 10 // item: none → empty

	v2OpRegisterIBE byte = 11 // item: id, compressed D_sem → empty
	v2OpRegisterGDH byte = 12 // item: id, x_sem scalar bytes → empty

	v2OpReplAppend   byte = 13 // item: wire repl append batch → empty
	v2OpReplSnapshot byte = 14 // item: wire repl snapshot chunk → empty
	v2OpReplStatus   byte = 15 // item: none → wire repl status payload
)

// v2 response status bytes. Zero is success; the rest mirror the v1
// ErrorCode vocabulary so both protocol versions classify failures
// identically.
const (
	v2StatusOK              byte = 0
	v2StatusRevoked         byte = 1
	v2StatusUnknownIdentity byte = 2
	v2StatusBadRequest      byte = 3
	v2StatusUnsupported     byte = 4
	v2StatusInternal        byte = 5
	v2StatusStaleEpoch      byte = 6
	v2StatusSeqGap          byte = 7
	v2StatusNotLeader       byte = 8
)

// opForV2 maps a v2 op byte to the protocol Op ("" for unknown bytes).
func opForV2(b byte) Op {
	switch b {
	case v2OpIBEToken:
		return OpIBEToken
	case v2OpGDHSign:
		return OpGDHSign
	case v2OpRSADecrypt:
		return OpRSADecrypt
	case v2OpRSASign:
		return OpRSASign
	case v2OpGMDecrypt:
		return OpGMDecrypt
	case v2OpRevoke:
		return OpRevoke
	case v2OpUnrevoke:
		return OpUnrevoke
	case v2OpStatus:
		return OpStatus
	case v2OpList:
		return OpList
	case v2OpPing:
		return OpPing
	case v2OpRegisterIBE:
		return OpRegisterIBE
	case v2OpRegisterGDH:
		return OpRegisterGDH
	case v2OpReplAppend:
		return OpReplAppend
	case v2OpReplSnapshot:
		return OpReplSnapshot
	case v2OpReplStatus:
		return OpReplStatus
	default:
		return ""
	}
}

// v2StatusFor maps a response's error code to its v2 status byte.
func v2StatusFor(resp *Response) byte {
	if resp.OK {
		return v2StatusOK
	}
	switch resp.Code {
	case CodeRevoked:
		return v2StatusRevoked
	case CodeUnknownIdentity:
		return v2StatusUnknownIdentity
	case CodeBadRequest:
		return v2StatusBadRequest
	case CodeUnsupported:
		return v2StatusUnsupported
	case CodeStaleEpoch:
		return v2StatusStaleEpoch
	case CodeSeqGap:
		return v2StatusSeqGap
	case CodeNotLeader:
		return v2StatusNotLeader
	default:
		return v2StatusInternal
	}
}

// codeForV2Status inverts v2StatusFor for the client's error mapping.
func codeForV2Status(st byte) ErrorCode {
	switch st {
	case v2StatusRevoked:
		return CodeRevoked
	case v2StatusUnknownIdentity:
		return CodeUnknownIdentity
	case v2StatusBadRequest:
		return CodeBadRequest
	case v2StatusUnsupported:
		return CodeUnsupported
	case v2StatusStaleEpoch:
		return CodeStaleEpoch
	case v2StatusSeqGap:
		return CodeSeqGap
	case v2StatusNotLeader:
		return CodeNotLeader
	default:
		return CodeInternal
	}
}

// v2RespItemFor converts a dispatched Response into its v2 wire item. The
// status op folds the Revoked flag into a one-byte payload; error
// responses carry the error message as data.
func v2RespItemFor(op byte, resp *Response) wire.RespItem {
	st := v2StatusFor(resp)
	if st != v2StatusOK {
		return wire.RespItem{Status: st, Data: []byte(resp.Error)}
	}
	if op == v2OpStatus {
		if resp.Revoked {
			return wire.RespItem{Status: v2StatusOK, Data: []byte{1}}
		}
		return wire.RespItem{Status: v2StatusOK, Data: []byte{0}}
	}
	return wire.RespItem{Status: v2StatusOK, Data: resp.Payload}
}

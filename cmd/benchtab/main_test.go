package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestBenchtabQuickSubset(t *testing.T) {
	var out bytes.Buffer
	// T1 + T4 + F1 at toy parameters keeps the test fast while covering a
	// size table, an attack run and a simulation sweep.
	if err := run([]string{"-exp", "t1,t4,f1", "-params", "toy", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"== T1", "== T4", "== F1", "SYSTEM BROKEN", "contained", "sem"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchtabF2Quick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "f2", "-params", "toy", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== F2") {
		t.Errorf("missing F2 table:\n%s", out.String())
	}
}

// writeSnapshot measures a quick toy-parameter baseline, rescales every
// entry by factor, and writes it to a temp file — a synthetic "committed"
// reference for the -check path.
func writeSnapshot(t *testing.T, factor float64) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run([]string{"-baseline", "-", "-params", "toy", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	var report bench.BaselineReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	for i := range report.Entries {
		report.Entries[i].NsPerOp *= factor
	}
	body, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchtabCheckFailsOnRegression(t *testing.T) {
	// A reference 1000× faster than the machine can possibly run makes the
	// fresh measurement an unambiguous "regression".
	path := writeSnapshot(t, 1.0/1000)
	var out bytes.Buffer
	err := run([]string{"-check", path, "-params", "toy", "-quick"}, &out)
	if err == nil {
		t.Fatalf("doctored snapshot passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("no regression lines printed:\n%s", out.String())
	}
}

func TestBenchtabCheckPassesWithGenerousTolerance(t *testing.T) {
	// A reference 1000× slower than reality cannot regress at any tolerance.
	path := writeSnapshot(t, 1000)
	var out bytes.Buffer
	if err := run([]string{"-check", path, "-params", "toy", "-quick"}, &out); err != nil {
		t.Fatalf("check failed against a generous snapshot: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all entries within") {
		t.Fatalf("missing pass summary:\n%s", out.String())
	}
}

func TestBenchtabCheckGuardsParamsMismatch(t *testing.T) {
	path := writeSnapshot(t, 1) // snapshot taken at toy parameters
	var out bytes.Buffer
	if err := run([]string{"-check", path, "-params", "fast", "-quick"}, &out); err == nil {
		t.Fatal("cross-parameter check accepted")
	}
}

func TestBenchtabCheckMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-check", "/nonexistent.json", "-params", "toy", "-quick"}, &out); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestBenchtabUnknownParams(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-params", "bogus"}, &out); err == nil {
		t.Fatal("unknown parameter set accepted")
	}
}

func TestBenchtabUnknownExperimentIsNoop(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "t9", "-params", "toy"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output for unknown experiment: %q", out.String())
	}
}

// TestBenchtabFilter covers the -filter regexp: a doctored snapshot whose
// pair.* entries regressed catastrophically must fail an unfiltered check
// but pass when the filter excludes them — and a filter matching nothing
// is an error, not a silent pass.
func TestBenchtabFilter(t *testing.T) {
	path := writeSnapshot(t, 1)
	var report bench.BaselineReport
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	poisoned, kept := 0, ""
	for i := range report.Entries {
		if strings.HasPrefix(report.Entries[i].Name, "pair.") {
			report.Entries[i].NsPerOp /= 1000 // impossible reference → guaranteed regression
			poisoned++
		} else if kept == "" {
			report.Entries[i].NsPerOp *= 1000 // generous → cannot regress
			kept = report.Entries[i].Name
		}
	}
	if poisoned == 0 || kept == "" {
		t.Fatalf("snapshot shape unexpected: %d pair entries, kept=%q", poisoned, kept)
	}
	body, err = report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-check", path, "-params", "toy", "-quick"}, &out); err == nil {
		t.Fatalf("poisoned snapshot passed unfiltered:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-check", path, "-params", "toy", "-quick", "-filter", "^" + regexp.QuoteMeta(kept) + "$"}, &out); err != nil {
		t.Fatalf("filtered check failed: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"-check", path, "-params", "toy", "-quick", "-filter", "^no-such-entry$"}, &out); err == nil {
		t.Fatal("filter matching nothing passed")
	}
	out.Reset()
	if err := run([]string{"-check", path, "-params", "toy", "-quick", "-filter", "("}, &out); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}

// TestBenchtabServingBaseline measures the serving-layer entries through
// the -serving -filter path and then gates them with -check, exercising
// the auto re-measure of sem.token.*/cluster.token.* snapshot entries.
func TestBenchtabServingBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("serving fleet benchmark")
	}
	path := filepath.Join(t.TempDir(), "serving.json")
	var out bytes.Buffer
	if err := run([]string{"-baseline", path, "-params", "toy", "-quick", "-serving", "-filter", `^(cluster|sem)\.token\..*\.c32$`}, &out); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report bench.BaselineReport
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range report.Entries {
		names[e.Name] = true
		if e.NsPerOp <= 0 || e.Iters <= 0 {
			t.Fatalf("entry %s has no measurement: %+v", e.Name, e)
		}
	}
	for _, want := range []string{"sem.token.conn.c32", "sem.token.pooled.c32", "cluster.token.shard1.c32", "cluster.token.shard4.c32"} {
		if !names[want] {
			t.Fatalf("serving baseline missing %s (have %v)", want, names)
		}
	}
	if len(names) != 4 {
		t.Fatalf("filter leaked extra entries: %v", names)
	}

	// Gate against itself with a generous tolerance: same machine, moments
	// later — must pass, via the serving auto re-measure.
	out.Reset()
	if err := run([]string{"-check", path, "-params", "toy", "-quick", "-tolerance", "400", "-filter", `^(cluster|sem)\.token\..*\.c32$`}, &out); err != nil {
		t.Fatalf("serving self-check failed: %v\n%s", err, out.String())
	}
}

package fanmerge_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fanmerge"
)

func TestFanMerge(t *testing.T) {
	analysistest.Run(t, "testdata", fanmerge.Analyzer,
		"repro/internal/fanbad",
		"repro/internal/fangood",
	)
}

// Package sem implements the paper's online security mediator as a network
// service: a TCP daemon that holds the SEM key halves for all three
// mediated schemes (pairing IBE, GDH signature, mRSA/IB-mRSA), enforces a
// shared revocation list, and serves the per-operation protocol steps —
// exactly the "SEM remains online all the system's lifetime" deployment the
// paper describes, with the PKG offline after enrollment.
//
// Wire format: two protocol versions share one listener. v1 is a 4-byte
// big-endian length prefix followed by a JSON body, one op per frame. v2
// (see protocolv2.go) is a binary framing negotiated by a "SEM2" preamble
// that carries batches of ops per frame with a zero-allocation codec.
// Frames are capped per connection at Config.MaxFrame (default 1 MiB).
package sem

import (
	"io"
	"math/big"

	"repro/internal/wire"
)

// Op identifies a protocol operation.
type Op string

// Protocol operations. The first group are the mediated crypto steps; the
// second are the admin/introspection endpoints.
const (
	OpIBEToken   Op = "ibe_token"     // payload: compressed U → payload: GT bytes
	OpGDHSign    Op = "gdh_half_sign" // payload: compressed h(M) → payload: compressed S_sem
	OpRSADecrypt Op = "rsa_half_dec"  // payload: c bytes → payload: c^{d_sem} bytes
	OpRSASign    Op = "rsa_half_sig"  // payload: message → payload: EMSA(m)^{d_sem} bytes
	OpGMDecrypt  Op = "gm_half_dec"   // payload: packed GM elements → payload: packed half-results
	OpRevoke     Op = "revoke"        // reason in Reason
	OpUnrevoke   Op = "unrevoke"      //
	OpStatus     Op = "status"        // → Revoked flag
	OpList       Op = "list_revoked"  // → payload: JSON array of entries
	OpPing       Op = "ping"          // liveness check

	// Enrollment ops, served only when Config.AllowRegister is set: the
	// PKG/TA (or a load generator standing in for one) delivers SEM key
	// halves over the wire instead of at construction time. Like
	// revoke/unrevoke they are unauthenticated — the daemon trusts its
	// network perimeter — so production deployments keep them disabled
	// unless the enrollment plane really runs through this listener.
	OpRegisterIBE Op = "register_ibe" // payload: compressed D_sem point
	OpRegisterGDH Op = "register_gdh" // payload: x_sem scalar bytes (big-endian)

	// Replication ops (internal/repl), served only when the daemon runs
	// with a journal. Like the admin ops they trust the network perimeter:
	// a replicated fleet runs leader and followers on one operator-owned
	// network.
	OpReplAppend   Op = "repl.append"   // payload: wire repl append batch → empty
	OpReplSnapshot Op = "repl.snapshot" // payload: wire repl snapshot chunk → empty
	OpReplStatus   Op = "repl.status"   // → payload: wire repl status (epoch, lastSeq)
)

// ErrorCode classifies failures so clients can map them back to the typed
// errors of internal/core.
type ErrorCode string

// Error codes carried in responses.
const (
	CodeRevoked         ErrorCode = "revoked"
	CodeUnknownIdentity ErrorCode = "unknown_identity"
	CodeBadRequest      ErrorCode = "bad_request"
	CodeUnsupported     ErrorCode = "unsupported"
	CodeInternal        ErrorCode = "internal"

	// Replication failure classes, mapped back to the typed errors of
	// internal/repl on the client side.
	CodeStaleEpoch ErrorCode = "stale_epoch"
	CodeSeqGap     ErrorCode = "seq_gap"
	CodeNotLeader  ErrorCode = "not_leader"
)

// Request is one client → SEM message.
type Request struct {
	Op      Op     `json:"op"`
	ID      string `json:"id,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Payload []byte `json:"payload,omitempty"`
}

// Response is one SEM → client message.
type Response struct {
	OK      bool      `json:"ok"`
	Code    ErrorCode `json:"code,omitempty"`
	Error   string    `json:"error,omitempty"`
	Payload []byte    `json:"payload,omitempty"`
	Revoked bool      `json:"revoked,omitempty"`
}

// Frame limits. The per-connection cap is part of Config (MaxFrame,
// MaxBatch) and is announced to v2 clients in the negotiation ack; these
// are the defaults when the config leaves them zero. The frame cap is
// bounded above by wire.V2MaxFrame so the version-sniffing byte stays
// unambiguous.
const (
	// DefaultMaxFrame is the per-connection frame cap applied when
	// Config.MaxFrame is zero.
	DefaultMaxFrame = wire.MaxFrame
	// DefaultMaxBatch is the per-frame batch cap applied when
	// Config.MaxBatch is zero.
	DefaultMaxBatch = 64
)

// Framing errors, re-exported so existing callers keep their errors.Is
// matches.
var (
	// ErrFrameTooLarge is returned when a peer announces an oversized frame.
	ErrFrameTooLarge = wire.ErrFrameTooLarge

	// ErrBatchTooLarge is returned when a v2 peer sends more items in one
	// frame than the negotiated batch limit.
	ErrBatchTooLarge = wire.ErrBatchTooLarge

	// ErrProtocol is returned on malformed frames.
	ErrProtocol = wire.ErrProtocol
)

func writeFrame(w io.Writer, v any, maxFrame int) (int, error) {
	return wire.WriteFrameLimit(w, v, maxFrame)
}

func readFrame(r io.Reader, v any, maxFrame int) (int, error) {
	return wire.ReadFrameLimit(r, v, maxFrame)
}

func packInts(xs []*big.Int) ([]byte, error) { return wire.PackInts(xs) }

func unpackInts(data []byte) ([]*big.Int, error) { return wire.UnpackInts(data) }

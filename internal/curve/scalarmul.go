// Scalar multiplication strategies.
//
// Variable base: width-w NAF over Jacobian coordinates. The scalar is
// recoded into signed odd digits so that on average only 1/(w+1) of the
// loop iterations perform an addition (vs 1/2 for double-and-add), and the
// odd multiples ±P, ±3P, …, ±(2^(w−1)−1)P are precomputed once and
// batch-normalized to affine so the loop uses cheap mixed additions.
//
// Fixed base: a Precomputed radix-2^w table (single-table comb) holding
// d·2^(wj)·P for every window j and digit d. A fixed-base multiply is then
// just one table lookup and one mixed addition per window — no doublings at
// all — at the cost of (2^w − 1)·⌈bits/w⌉ stored affine points.
package curve

import (
	"fmt"
	"math/big"
)

// wnafWidth picks the NAF window for a scalar of the given bit length:
// the precomputation (2^(w−2) points) must amortize over bits/(w+1)
// additions saved.
func wnafWidth(bits int) uint {
	switch {
	case bits >= 128:
		return 5
	case bits >= 24:
		return 4
	default:
		return 2 // plain NAF
	}
}

// wnaf recodes a positive scalar into width-w non-adjacent form: digits in
// {0, ±1, ±3, …, ±(2^(w−1)−1)}, least significant first, with at most one
// nonzero digit in any w consecutive positions.
func wnaf(k *big.Int, w uint) []int8 {
	digits := make([]int8, 0, k.BitLen()+1)
	n := new(big.Int).Set(k)
	mask := big.Word(1)<<w - 1
	half := int64(1) << (w - 1)
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			d := int64(n.Bits()[0] & mask)
			if d >= half {
				d -= int64(mask) + 1 // make the digit negative so the rest stays even
			}
			digits = append(digits, int8(d))
			if d > 0 {
				n.Sub(n, big.NewInt(d))
			} else {
				n.Add(n, big.NewInt(-d))
			}
		} else {
			digits = append(digits, 0)
		}
		n.Rsh(n, 1)
	}
	return digits
}

// oddMultiples returns the affine points {1, 3, 5, …, 2m−1}·P, computed in
// Jacobian coordinates and normalized with a single batch inversion.
func (c *Curve) oddMultiples(pt *Point, m int) []*Point {
	s := newJacScratch()
	twoP := c.toJac(pt)
	c.jacDouble(twoP, s)
	twoPAff := c.jacToAffine(twoP)

	jacs := make([]*jacPoint, m)
	jacs[0] = c.toJac(pt)
	for i := 1; i < m; i++ {
		next := newJac().set(jacs[i-1])
		if twoPAff.inf {
			// 2P = O (order-2 base): every odd multiple equals P.
			jacs[i] = next
			continue
		}
		c.jacAddMixed(next, twoPAff.x, twoPAff.y, s)
		jacs[i] = next
	}
	return c.batchToAffine(jacs)
}

// ScalarMul returns k·P. Negative scalars are handled as (−k)·(−P).
//
// The multiplication runs in Jacobian coordinates with a width-w NAF
// recoding of the scalar; the final result is normalized back to affine
// form, so outputs are bit-identical to the affine double-and-add ladder
// (retained as ScalarMulBinary, the differential-test oracle).
func (pt *Point) ScalarMul(k *big.Int) *Point {
	c := pt.curve
	if pt.inf || k.Sign() == 0 {
		return c.Infinity()
	}
	base := pt
	scalar := k
	if k.Sign() < 0 {
		base = pt.Neg()
		scalar = new(big.Int).Neg(k)
	}
	w := wnafWidth(scalar.BitLen())
	digits := wnaf(scalar, w)
	// Odd digits reach 2^(w−1)−1, so the table holds the 2^(w−2) odd
	// multiples {1, 3, …, 2^(w−1)−1}·P.
	table := c.oddMultiples(base, 1<<(w-2))

	s := newJacScratch()
	acc := newJac().setInfinity()
	negY := new(big.Int)
	for i := len(digits) - 1; i >= 0; i-- {
		c.jacDouble(acc, s)
		d := digits[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			e := table[(d-1)/2]
			c.jacAddMixed(acc, e.x, e.y, s)
		} else {
			e := table[(-d-1)/2]
			negY.Neg(e.y)
			negY.Mod(negY, c.p)
			c.jacAddMixed(acc, e.x, negY, s)
		}
	}
	return c.jacToAffine(acc)
}

// ScalarMulBinary is the original affine left-to-right double-and-add
// ladder. It is retained as the correctness oracle for the Jacobian/w-NAF
// path (differential tests) and for the coordinates ablation benchmark.
func (pt *Point) ScalarMulBinary(k *big.Int) *Point {
	c := pt.curve
	if pt.inf || k.Sign() == 0 {
		return c.Infinity()
	}
	base := pt
	scalar := k
	if k.Sign() < 0 {
		base = pt.Neg()
		scalar = new(big.Int).Neg(k)
	}
	acc := c.Infinity()
	for i := scalar.BitLen() - 1; i >= 0; i-- {
		acc = acc.Double()
		if scalar.Bit(i) == 1 {
			acc = acc.Add(base)
		}
	}
	return acc
}

// Precomputed is a fixed-base scalar-multiplication table for a long-lived
// point (the G1 generator, the PKG public key, key halves): a radix-2^w
// comb storing d·2^(wj)·base for every window j and digit d ∈ [1, 2^w−1].
// Immutable and safe for concurrent use after construction.
type Precomputed struct {
	curve   *Curve //cryptolint:public (curve parameters)
	base    *Point
	order   *big.Int //cryptolint:public (the point's public order)
	w       uint
	windows int
	table   [][]*Point // table[j][d-1] = d·2^(wj)·base
}

// precompWindow is the fixed-base radix; 4 keeps the table at
// (2^4−1)·⌈|q|/4⌉ points (600 for a 160-bit order) while cutting a
// multiply to ⌈|q|/4⌉ mixed additions.
const precompWindow = 4

// NewPrecomputed builds the fixed-base table for base, whose order must be
// the given positive integer (q for G1 points). Building costs one pass of
// Jacobian arithmetic plus one batch normalization; afterwards every
// ScalarMul is ~⌈bits(order)/w⌉ mixed additions and a single inversion.
func NewPrecomputed(base *Point, order *big.Int) (*Precomputed, error) {
	if base == nil || base.IsInfinity() {
		return nil, fmt.Errorf("curve: cannot precompute the point at infinity")
	}
	if order == nil || order.Sign() <= 0 {
		return nil, fmt.Errorf("curve: precomputation needs a positive point order")
	}
	c := base.curve
	w := uint(precompWindow)
	windows := (order.BitLen() + precompWindow - 1) / precompWindow
	perWindow := 1<<w - 1

	s := newJacScratch()
	flat := make([]*jacPoint, 0, windows*perWindow)
	running := base // affine 2^(wj)·base for the current window
	for j := 0; j < windows; j++ {
		entry := newJac().setInfinity()
		for d := 1; d <= perWindow; d++ {
			if !running.inf {
				c.jacAddMixed(entry, running.x, running.y, s)
			}
			flat = append(flat, newJac().set(entry))
		}
		// next window base: 2^w · running
		nextJ := c.toJac(running)
		for b := 0; b < precompWindow; b++ {
			c.jacDouble(nextJ, s)
		}
		running = c.jacToAffine(nextJ)
	}
	aff := c.batchToAffine(flat)
	table := make([][]*Point, windows)
	for j := 0; j < windows; j++ {
		table[j] = aff[j*perWindow : (j+1)*perWindow]
	}
	return &Precomputed{
		curve:   c,
		base:    base,
		order:   new(big.Int).Set(order),
		w:       w,
		windows: windows,
		table:   table,
	}, nil
}

// Base returns the point the table was built for.
func (pc *Precomputed) Base() *Point { return pc.base }

// TableSize returns the number of stored points (memory diagnostics).
func (pc *Precomputed) TableSize() int { return pc.windows * (1<<pc.w - 1) }

// ScalarMul returns (k mod order)·base using only table lookups and mixed
// additions — no doublings. The result is the same group element (and the
// same affine encoding) that base.ScalarMul(k) produces.
func (pc *Precomputed) ScalarMul(k *big.Int) *Point {
	c := pc.curve
	kr := new(big.Int).Mod(k, pc.order)
	if kr.Sign() == 0 {
		return c.Infinity()
	}
	s := newJacScratch()
	acc := newJac().setInfinity()
	mask := big.Word(1)<<pc.w - 1
	words := kr.Bits()
	const wordBits = 32 << (^big.Word(0) >> 63) // 32 or 64
	for j := 0; j < pc.windows; j++ {
		bit := uint(j) * pc.w
		wi := bit / wordBits
		if wi >= uint(len(words)) {
			break
		}
		d := words[wi] >> (bit % wordBits)
		if rem := wordBits - bit%wordBits; rem < pc.w && wi+1 < uint(len(words)) {
			d |= words[wi+1] << rem
		}
		d &= mask
		if d == 0 {
			continue
		}
		e := pc.table[j][d-1]
		if e.inf {
			continue
		}
		c.jacAddMixed(acc, e.x, e.y, s)
	}
	return c.jacToAffine(acc)
}

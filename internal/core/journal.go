package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// Revocation durability. The paper's SEM "remains online all the system's
// lifetime", which in practice means surviving restarts without forgetting
// who was revoked — otherwise a crash would silently unrevoke everyone.
// Journal gives Registry an append-only JSONL log: every Revoke/Unrevoke
// is recorded before it takes effect, and OpenJournal replays the log on
// startup. cmd/semd wires this behind its -journal flag.

// journalRecord is one line of the append-only log.
type journalRecord struct {
	Op     string    `json:"op"` // "revoke" | "unrevoke"
	ID     string    `json:"id"`
	Reason string    `json:"reason,omitempty"`
	When   time.Time `json:"when"`
}

// Journal is a Registry bound to an append-only log file. It embeds the
// registry semantics by delegation (not embedding, to keep the persisted
// mutations on the write path).
type Journal struct {
	mu  sync.Mutex
	reg *Registry
	f   *os.File
	enc *json.Encoder

	replayed     int
	droppedLines int
	appendTime   *obs.Histogram
}

// OpenJournal opens (creating if needed) the log at path, replays it into
// a fresh Registry and returns the bound journal. Corrupt trailing lines
// (a crash mid-write) are tolerated: replay stops at the first undecodable
// line. The outcome is never silent — Replayed reports how many records
// took effect and DroppedLines how many non-empty lines were abandoned
// after the corruption point, so operators can distinguish "torn final
// write" (DroppedLines == 1, routine) from a truncated or damaged journal
// body (DroppedLines > 1, revocations may have been lost). cmd/semd logs
// both at startup.
func OpenJournal(path string) (*Journal, error) {
	reg := NewRegistry()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("open revocation journal: %w", err)
	}
	j := &Journal{reg: reg}
	scanner := bufio.NewScanner(f)
	corrupt := false
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		if corrupt {
			// Count what the stop-at-corruption policy is discarding; a
			// long valid suffix after a bad line means real damage, not a
			// torn final write.
			j.droppedLines++
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			corrupt = true
			j.droppedLines++
			continue
		}
		j.replayed++
		switch rec.Op {
		case "revoke":
			reg.mu.Lock()
			reg.revoked[rec.ID] = RevocationEntry{ID: rec.ID, Reason: rec.Reason, When: rec.When}
			reg.mu.Unlock()
		case "unrevoke":
			reg.mu.Lock()
			delete(reg.revoked, rec.ID)
			reg.mu.Unlock()
		}
	}
	if err := scanner.Err(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("replay revocation journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("seek revocation journal: %w", err)
	}
	j.f = f
	j.enc = json.NewEncoder(f)
	return j, nil
}

// Replayed reports how many journal records were applied by OpenJournal.
func (j *Journal) Replayed() int { return j.replayed }

// DroppedLines reports how many non-empty journal lines OpenJournal
// abandoned at and after the first undecodable one. 0 means a clean
// replay; 1 is the expected torn-final-write crash signature; larger
// values indicate mid-file corruption and deserve operator attention.
func (j *Journal) DroppedLines() int { return j.droppedLines }

// Instrument registers the journal's series with reg: the append-latency
// histogram (every revocation mutation pays an fsync — this is the number
// that decides revocation throughput) plus replay/drop gauges from the
// last OpenJournal.
func (j *Journal) Instrument(reg *obs.Registry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendTime = reg.Histogram("journal_append_seconds", "revocation journal append + fsync time")
	reg.Gauge("journal_replayed_records", "journal records replayed at startup").Set(int64(j.replayed))
	reg.Gauge("journal_dropped_lines", "journal lines dropped at startup (corrupt tail)").Set(int64(j.droppedLines))
}

// Registry returns the replayed, live registry. SEMs share it as usual;
// only mutations made through the Journal are persisted.
func (j *Journal) Registry() *Registry { return j.reg }

// Revoke persists and applies a revocation. The write happens before the
// in-memory effect so a crash can lose an *intended* revocation's effect
// only together with its record, never record an effect it lost.
func (j *Journal) Revoke(id, reason string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now()
	if err := j.append(journalRecord{Op: "revoke", ID: id, Reason: reason, When: now}); err != nil {
		return err
	}
	j.reg.Revoke(id, reason)
	return nil
}

// Unrevoke persists and applies a reinstatement.
func (j *Journal) Unrevoke(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(journalRecord{Op: "unrevoke", ID: id, When: time.Now()}); err != nil {
		return err
	}
	j.reg.Unrevoke(id)
	return nil
}

func (j *Journal) append(rec journalRecord) error {
	if j.f == nil {
		return errors.New("core: journal is closed")
	}
	start := time.Now()
	if err := j.enc.Encode(rec); err != nil {
		return fmt.Errorf("append revocation journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sync revocation journal: %w", err)
	}
	j.appendTime.Observe(time.Since(start))
	return nil
}

// Close releases the log file. The registry stays usable (read-only
// semantics — further journal mutations fail).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Package conn stubs a net.Conn-shaped connection so fixtures don't have
// to type-check the real net package; deadlinecheck is duck-typed on the
// SetReadDeadline method.
package conn

import "time"

// Conn is a stub connection.
type Conn struct{}

// Dial returns a fresh stub connection.
func Dial(addr string) (*Conn, error) { return &Conn{}, nil }

func (c *Conn) Read(p []byte) (int, error)        { return 0, nil }
func (c *Conn) Write(p []byte) (int, error)       { return len(p), nil }
func (c *Conn) Close() error                      { return nil }
func (c *Conn) SetDeadline(t time.Time) error      { return nil }
func (c *Conn) SetReadDeadline(t time.Time) error  { return nil }
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// Package leakgood exercises the secretleak negative cases: metadata may be
// logged.
package leakgood

import (
	"fmt"
	"log"

	"repro/internal/keys"
)

// Announce logs basic-typed metadata fields.
func Announce(k *keys.PrivateKey) {
	log.Printf("serving key %s", k.ID)
}

// Describe formats through the metadata-only String method.
func Describe(k *keys.PrivateKey) string {
	return fmt.Sprintf("key[%s]", k.String())
}

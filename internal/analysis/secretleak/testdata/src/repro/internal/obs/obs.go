// Package obs stubs the metrics registry for fixture use: its import path
// matches the real repro/internal/obs so the sinkPkgs entry applies.
package obs

// Label is one metric dimension.
type Label struct{ Key, Value string }

// Counter is a stub series handle.
type Counter struct{}

// Inc is a stub.
func (c *Counter) Inc() {}

// Registry is a stub metric registry.
type Registry struct{}

// Counter registers a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return &Counter{} }

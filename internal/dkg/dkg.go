// Package dkg implements Pedersen-style distributed key generation (joint
// Feldman) over the pairing group G1, removing the trusted dealer from the
// paper's threshold IBE (Section 3 has the PKG "play the role of the
// trusted dealer"; with a DKG the master key s exists only as shares).
//
// Protocol (n players, threshold t):
//
//  1. Each player i samples a random degree t−1 polynomial f_i and
//     broadcasts the Feldman commitments A_i = {a_i0·P, …, a_i,t−1·P}.
//  2. Player i privately sends s_ij = f_i(j) to every player j.
//  3. Player j verifies each incoming share against the sender's
//     commitments: s_ij·P ≟ Σ_k j^k·A_ik, and complains about senders whose
//     shares fail (they are excluded from the qualified set).
//  4. Player j's final share is x_j = Σ_{i ∈ QUAL} s_ij — a Shamir share of
//     s = Σ_{i ∈ QUAL} f_i(0), which no party ever learns.
//
// The aggregate commitments yield both the system key P_pub = s·P and the
// per-player verification keys P_pub^(j) = x_j·P, which is exactly what
// core.ThresholdParams consumes — so the existing share verification,
// robustness proofs and recombination machinery work unchanged on DKG
// output.
//
//cryptolint:vartime (big.Int polynomial arithmetic over F_q; the dealing round is an offline operation)
package dkg

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/curve"
	"repro/internal/mathx"
	"repro/internal/pairing"
	"repro/internal/shamir"
)

var (
	// ErrBadShare is returned when an incoming share fails Feldman
	// verification — grounds for a complaint against the sender.
	ErrBadShare = errors.New("dkg: share fails commitment verification")

	// ErrConfig is returned for invalid (t, n) or index arguments.
	ErrConfig = errors.New("dkg: invalid configuration")

	// ErrIncomplete is returned when finalizing without shares from every
	// qualified player.
	ErrIncomplete = errors.New("dkg: missing shares from qualified players")
)

// Participant is one player's DKG state.
//
//cryptolint:secret
type Participant struct {
	pp    *pairing.Params //cryptolint:public (system parameters)
	index int
	t, n  int
	poly  *shamir.Polynomial
	comms []*curve.Point //cryptolint:public (broadcast Feldman commitments)
}

// NewParticipant creates player index's dealing: a random polynomial and
// its Feldman commitments.
func NewParticipant(rng io.Reader, pp *pairing.Params, index, t, n int) (*Participant, error) {
	if t < 1 || n < t {
		return nil, fmt.Errorf("%w: t=%d, n=%d", ErrConfig, t, n)
	}
	if index < 1 || index > n {
		return nil, fmt.Errorf("%w: index %d out of 1..%d", ErrConfig, index, n)
	}
	secret, err := mathx.RandomFieldElement(rng, pp.Q())
	if err != nil {
		return nil, fmt.Errorf("sample dealing secret: %w", err)
	}
	poly, err := shamir.NewPolynomial(rng, secret, pp.Q(), t)
	if err != nil {
		return nil, err
	}
	// The polynomial type deliberately hides raw coefficients, so the
	// broadcast commitments are in evaluation basis: {f(0)·P, …, f(t−1)·P}.
	// Feldman verification only needs to evaluate the committed polynomial
	// at arbitrary points, which evaluation-basis commitments support via
	// Lagrange interpolation in the exponent (see evalCommitment).
	comms := make([]*curve.Point, t)
	for k := 0; k < t; k++ {
		comms[k] = pp.GeneratorMul(poly.Eval(big.NewInt(int64(k))))
	}
	return &Participant{pp: pp, index: index, t: t, n: n, poly: poly, comms: comms}, nil
}

// Index returns the player's index.
func (p *Participant) Index() int { return p.index }

// Commitments returns the player's broadcast commitments (evaluation basis
// at x = 0..t−1).
func (p *Participant) Commitments() []*curve.Point {
	out := make([]*curve.Point, len(p.comms))
	copy(out, p.comms)
	return out
}

// ShareFor returns the private share s_ij = f_i(j) for player j.
func (p *Participant) ShareFor(j int) (*big.Int, error) {
	if j < 1 || j > p.n {
		return nil, fmt.Errorf("%w: recipient %d out of 1..%d", ErrConfig, j, p.n)
	}
	return p.poly.Eval(big.NewInt(int64(j))), nil
}

// evalCommitment evaluates a commitment vector (evaluation basis at
// x = 0..t−1) at the point x in the exponent: Σ λ_k(x)·C_k.
func evalCommitment(pp *pairing.Params, comms []*curve.Point, x *big.Int) (*curve.Point, error) {
	t := len(comms)
	xs := make([]*big.Int, t)
	for k := 0; k < t; k++ {
		xs[k] = big.NewInt(int64(k))
	}
	// Σ λ_k(x)·C_k as one Pippenger multi-scalar sum.
	lks := make([]*big.Int, t)
	for k := 0; k < t; k++ {
		lk, err := mathx.LagrangeAt(k, xs, x, pp.Q())
		if err != nil {
			return nil, err
		}
		lks[k] = lk
	}
	return pp.Curve().MSM(lks, comms)
}

// VerifyShare checks an incoming share from a dealer against that dealer's
// commitments: share·P ≟ F(j) in the exponent.
func VerifyShare(pp *pairing.Params, dealerComms []*curve.Point, j int, share *big.Int) error {
	want, err := evalCommitment(pp, dealerComms, big.NewInt(int64(j)))
	if err != nil {
		return err
	}
	got := pp.GeneratorMul(share)
	if !got.Equal(want) {
		return ErrBadShare
	}
	return nil
}

// Result is the public outcome of a DKG run.
type Result struct {
	// Qualified lists the dealer indices whose dealings were accepted.
	Qualified []int
	// PPub = s·P for the joint secret s.
	PPub *curve.Point
	// VerificationKeys[j-1] = x_j·P for each player j.
	VerificationKeys []*curve.Point
}

// Aggregate combines the qualified dealers' commitments into the system
// public key and the per-player verification keys for players 1..n.
func Aggregate(pp *pairing.Params, dealerComms map[int][]*curve.Point, qualified []int, n int) (*Result, error) {
	if len(qualified) == 0 {
		return nil, fmt.Errorf("%w: no qualified dealers", ErrConfig)
	}
	ppub := pp.Curve().Infinity()
	for _, i := range qualified {
		comms, ok := dealerComms[i]
		if !ok {
			return nil, fmt.Errorf("%w: missing commitments from dealer %d", ErrIncomplete, i)
		}
		c0, err := evalCommitment(pp, comms, big.NewInt(0))
		if err != nil {
			return nil, err
		}
		ppub = ppub.Add(c0)
	}
	vks := make([]*curve.Point, n)
	for j := 1; j <= n; j++ {
		acc := pp.Curve().Infinity()
		for _, i := range qualified {
			cj, err := evalCommitment(pp, dealerComms[i], big.NewInt(int64(j)))
			if err != nil {
				return nil, err
			}
			acc = acc.Add(cj)
		}
		vks[j-1] = acc
	}
	return &Result{Qualified: append([]int(nil), qualified...), PPub: ppub, VerificationKeys: vks}, nil
}

// FinalShare sums the verified incoming shares from all qualified dealers
// into player j's final secret share x_j.
func FinalShare(pp *pairing.Params, incoming map[int]*big.Int, qualified []int) (*big.Int, error) {
	x := new(big.Int)
	for _, i := range qualified {
		s, ok := incoming[i]
		if !ok {
			return nil, fmt.Errorf("%w: dealer %d", ErrIncomplete, i)
		}
		x.Add(x, s)
		x.Mod(x, pp.Q())
	}
	return x, nil
}

// Run orchestrates a full in-process DKG among n honest players (the
// network embedding is the caller's concern; misbehaving dealers are
// modelled by the tamper callback, which may alter the share dealer i
// sends to player j). It returns the public result and each player's final
// share.
func Run(rng io.Reader, pp *pairing.Params, t, n int, tamper func(dealer, recipient int, share *big.Int) *big.Int) (*Result, []*big.Int, error) {
	participants := make([]*Participant, n)
	comms := make(map[int][]*curve.Point, n)
	for i := 1; i <= n; i++ {
		p, err := NewParticipant(rng, pp, i, t, n)
		if err != nil {
			return nil, nil, err
		}
		participants[i-1] = p
		comms[i] = p.Commitments()
	}
	// Deliver and verify shares; dealers with any bad share are disqualified
	// (simplified complaint handling: one valid complaint excludes).
	badDealers := map[int]bool{}
	delivered := make([]map[int]*big.Int, n+1) // recipient → dealer → share
	for j := 1; j <= n; j++ {
		delivered[j] = make(map[int]*big.Int, n)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			share, err := participants[i-1].ShareFor(j)
			if err != nil {
				return nil, nil, err
			}
			if tamper != nil {
				share = tamper(i, j, share)
			}
			if err := VerifyShare(pp, comms[i], j, share); err != nil {
				badDealers[i] = true
				continue
			}
			delivered[j][i] = share
		}
	}
	var qualified []int
	for i := 1; i <= n; i++ {
		if !badDealers[i] {
			qualified = append(qualified, i)
		}
	}
	result, err := Aggregate(pp, comms, qualified, n)
	if err != nil {
		return nil, nil, err
	}
	shares := make([]*big.Int, n)
	for j := 1; j <= n; j++ {
		x, err := FinalShare(pp, delivered[j], qualified)
		if err != nil {
			return nil, nil, err
		}
		shares[j-1] = x
	}
	return result, shares, nil
}

package wire_test

import (
	"bytes"
	"testing"

	"repro/internal/pairing"
	"repro/internal/wire"
)

// FuzzUnmarshalG1 throws arbitrary byte strings at the validated G1 decoder.
// It must never panic, and every accepted point must round-trip through the
// canonical compressed encoding — so an attacker cannot smuggle in a second
// encoding of the same point past equality checks keyed on the wire bytes.
func FuzzUnmarshalG1(f *testing.F) {
	pp, err := pairing.Toy()
	if err != nil {
		f.Fatal(err)
	}
	c := pp.Curve()

	f.Add([]byte{})
	f.Add(pp.Generator().Marshal())
	f.Add(make([]byte, 1+c.CoordinateSize())) // canonical infinity
	bad := pp.Generator().Marshal()
	bad[0] ^= 1 // flip the parity tag
	f.Add(bad)
	f.Add(bytes.Repeat([]byte{0xff}, 1+c.CoordinateSize()))

	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := wire.UnmarshalG1(c, data)
		if err != nil {
			return
		}
		enc := pt.Marshal()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical encoding %x (canonical %x)", data, enc)
		}
		again, err := wire.UnmarshalG1(c, enc)
		if err != nil {
			t.Fatalf("re-decode of accepted point failed: %v", err)
		}
		if !again.Equal(pt) {
			t.Fatalf("round-trip changed the point")
		}
	})
}

package sem

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pairing"
	"repro/internal/repl"
	"repro/internal/wire"
)

// Server is the SEM daemon. It serves whichever mediated schemes it was
// configured with; requests for an unconfigured scheme get CodeUnsupported.
// All schemes share one revocation registry: a single Revoke removes every
// capability of the identity at once.
//
// Requests are executed by a bounded worker pool shared across connections,
// so token issuance — a pairing per request — saturates the configured
// parallelism even when clients arrive on few connections, and a flood of
// connections cannot spawn an unbounded number of pairing computations.
// Each connection pipelines: the reader keeps accepting frames while earlier
// requests are still in flight, and a per-connection writer puts responses
// back on the wire in request order.
type Server struct {
	cfg Config
	met *serverMetrics

	jobs        chan job
	workersOnce sync.Once
	workerWG    sync.WaitGroup
	// fanSlots holds the Workers−1 permits for widening a v2 batch fan
	// beyond the worker's own goroutine (see Server.acquireFanWidth), so
	// concurrent batches share — not multiply — the configured parallelism.
	fanSlots chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// job is one unit of work travelling through the worker pool: either a
// single v1 request (req/done) or a whole v2 batch (batch). done and
// batch.ready are buffered, so a worker never blocks on a slow (or dead)
// connection writer.
type job struct {
	req   *Request
	done  chan *Response
	batch *v2job
}

// pipelineDepth bounds the number of in-flight requests per connection;
// beyond it the connection's reader stalls, back-pressuring the client.
const pipelineDepth = 64

// Config wires the SEM's scheme backends. Registry is required; the scheme
// backends are optional but must share that registry.
type Config struct {
	Registry *core.Registry
	IBE      *core.IBESEM
	GDH      *core.GDHSEM
	RSA      *core.RSASEM
	GM       *core.GMSEM
	// Journal, when set, persists revocation mutations (its Registry must
	// be the same one the backends share).
	Journal *core.Journal
	// Repl, when set, serves the repl.append/repl.snapshot/repl.status ops
	// so this daemon can act as a replication follower. Its journal must be
	// Config.Journal.
	Repl *repl.Follower
	// Leader, when set, routes revoke/unrevoke through the replication
	// leader (which appends to the journal and streams to the fleet). Its
	// journal must be Config.Journal.
	Leader *repl.Leader
	// Pairing is required when IBE or GDH is configured (to parse points).
	Pairing *pairing.Params
	// Logf receives connection-level errors; nil silences them.
	Logf func(format string, args ...any)
	// Workers is the size of the request-execution pool; values ≤ 0 default
	// to runtime.GOMAXPROCS(0). One worker serializes all requests (still
	// across many pipelined connections); more workers add CPU parallelism.
	Workers int
	// IOTimeout bounds each frame read (so it doubles as the per-connection
	// idle limit) and each response write, protecting the daemon from hung
	// or glacial peers. 0 selects the default (2 minutes); negative
	// disables deadlines entirely.
	IOTimeout time.Duration
	// MaxFrame caps a single protocol frame (both versions; announced to
	// v2 clients in the negotiation ack). 0 selects DefaultMaxFrame
	// (1 MiB); values above wire.V2MaxFrame are rejected because the v1/v2
	// sniffing byte must stay unambiguous. Size it to MaxBatch times the
	// largest per-item payload the deployment serves.
	MaxFrame int
	// MaxBatch caps the number of items in one v2 frame. 0 selects
	// DefaultMaxBatch (64); the hard ceiling is wire.V2MaxBatch.
	MaxBatch int
	// AllowRegister enables the register_ibe/register_gdh enrollment ops,
	// letting a PKG/TA (or load generator) install SEM key halves over the
	// wire. Off by default: enrollment is normally done at construction
	// time, and the op is as unauthenticated as revoke.
	AllowRegister bool
	// Metrics, when set, registers the server's instrumentation (request
	// counts, error mix, service-time histograms, queue/in-flight/
	// connection gauges, pairer-cache stats) with the registry. Nil keeps
	// the server uninstrumented at zero additional cost on the wire path.
	Metrics *obs.Registry
}

// defaultIOTimeout is the per-frame read/write deadline applied when
// Config.IOTimeout is zero.
const defaultIOTimeout = 2 * time.Minute

// NewServer validates the configuration and returns an unstarted server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("sem: config needs a Registry")
	}
	if (cfg.IBE != nil || cfg.GDH != nil) && cfg.Pairing == nil {
		return nil, errors.New("sem: pairing params required for IBE/GDH backends")
	}
	if cfg.Repl != nil && cfg.Repl.Journal() != cfg.Journal { //cryptolint:public (pointer-identity wiring check on config; no key material)
		return nil, errors.New("sem: Repl follower must wrap Config.Journal")
	}
	if cfg.Leader != nil && cfg.Leader.Journal() != cfg.Journal { //cryptolint:public (pointer-identity wiring check on config; no key material)
		return nil, errors.New("sem: replication Leader must own Config.Journal")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.MaxFrame < 1024 || cfg.MaxFrame > wire.V2MaxFrame {
		return nil, fmt.Errorf("sem: MaxFrame %d outside [1024, %d]", cfg.MaxFrame, wire.V2MaxFrame)
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBatch < 1 || cfg.MaxBatch > wire.V2MaxBatch {
		return nil, fmt.Errorf("sem: MaxBatch %d outside [1, %d]", cfg.MaxBatch, wire.V2MaxBatch)
	}
	s := &Server{
		cfg:      cfg,
		jobs:     make(chan job, cfg.Workers),
		conns:    make(map[net.Conn]struct{}),
		fanSlots: make(chan struct{}, cfg.Workers-1),
	}
	for i := 0; i < cfg.Workers-1; i++ {
		s.fanSlots <- struct{}{}
	}
	s.met = newServerMetrics(cfg.Metrics, s)
	return s, nil
}

// Workers reports the size of the request-execution pool.
func (s *Server) Workers() int { return s.cfg.Workers }

// startWorkers launches the execution pool (once, from Serve). Workers exit
// when the jobs channel is closed by Close.
func (s *Server) startWorkers() {
	s.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go func() {
			defer s.workerWG.Done()
			for j := range s.jobs {
				s.met.inflight.Inc()
				if j.batch != nil {
					s.executeBatch(j.batch)
					s.met.inflight.Dec()
					j.batch.ready <- struct{}{}
					continue
				}
				start := time.Now()
				resp := s.dispatch(j.req)
				s.met.observe(j.req.Op, resp, time.Since(start))
				s.met.inflight.Dec()
				j.done <- resp
			}
		}()
	}
}

// Serve accepts connections on ln until Close is called. It blocks; run it
// in a goroutine when the caller needs to continue.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("sem: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.workersOnce.Do(s.startWorkers)

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("sem accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("sem listen: %w", err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes live connections, waits for handlers to
// drain and then stops the worker pool.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	// All connection handlers have drained, so nothing can submit another
	// job; closing the channel releases the workers.
	close(s.jobs)
	s.workerWG.Wait()
	return err
}

// handleConn sniffs the protocol version from the connection's first byte
// and hands off to the matching serving loop. A v1 frame always opens with
// a 0x00 length byte (MaxFrame is capped below 2^24), while a v2
// connection opens with the "SEM2" preamble — so one listener serves both
// protocol generations.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	if s.cfg.IOTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
	}
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return // connected and left without a byte; not worth logging
	}
	if first[0] == wire.V2MagicByte {
		version, err := wire.ReadV2HelloTail(conn)
		if err != nil {
			s.cfg.Logf("sem: v2 preamble from %v: %v", conn.RemoteAddr(), err)
			return
		}
		// Unknown proposed versions downgrade to the newest the server
		// speaks — the ack carries the version actually in force.
		if version > wire.V2Version || version < wire.V2Version {
			version = wire.V2Version
		}
		if s.cfg.IOTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		if err := wire.WriteV2Ack(conn, version, s.cfg.MaxBatch, s.cfg.MaxFrame); err != nil {
			s.cfg.Logf("sem: v2 ack to %v: %v", conn.RemoteAddr(), err)
			return
		}
		s.met.connects(2)
		s.serveV2(conn)
		return
	}
	s.met.connects(1)
	s.serveV1(conn, first[0])
}

// serveV1 is the JSON-protocol reader: it decodes frames, reserves a
// response slot in the FIFO and hands the request to the worker pool. A
// companion writer goroutine drains the FIFO so responses leave in request
// order no matter which worker finishes first. firstByte is the
// already-sniffed first byte of the first frame's length prefix.
func (s *Server) serveV1(conn net.Conn, firstByte byte) {
	rd := &prefixedReader{first: firstByte, r: conn}

	pending := make(chan chan *Response, pipelineDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for slot := range pending {
			resp := <-slot
			if broken {
				continue // keep draining so the reader never wedges
			}
			if s.cfg.IOTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
			}
			n, err := writeFrame(conn, resp, s.cfg.MaxFrame)
			s.met.frameTx(n)
			if err != nil {
				s.cfg.Logf("sem: write frame to %v: %v", conn.RemoteAddr(), err)
				broken = true
				_ = conn.Close() // unblock the reader
			}
		}
	}()

	for {
		var req Request
		if s.cfg.IOTimeout > 0 {
			// A per-frame read deadline: a peer that stops mid-frame (or
			// goes idle past the limit) releases the handler instead of
			// pinning it for the daemon's lifetime.
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		n, err := readFrame(rd, &req, s.cfg.MaxFrame)
		s.met.frameRx(n)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The peer gets told why before the (unsynchronizable)
				// connection drops, instead of a silent hangup.
				resp := oversizeResponse(s.cfg.MaxFrame)
				slot := make(chan *Response, 1)
				slot <- resp
				pending <- slot
				s.met.observe("", resp, 0)
			} else if !errors.Is(err, net.ErrClosed) && err.Error() != "EOF" {
				s.cfg.Logf("sem: read frame from %v: %v", conn.RemoteAddr(), err)
			}
			break
		}
		slot := make(chan *Response, 1)
		pending <- slot
		s.jobs <- job{req: &req, done: slot}
	}
	close(pending)
	<-writerDone
}

// prefixedReader replays the sniffed first byte ahead of the connection
// stream.
type prefixedReader struct {
	first byte
	used  bool
	r     io.Reader
}

func (p *prefixedReader) Read(b []byte) (int, error) {
	if !p.used {
		if len(b) == 0 {
			return 0, nil
		}
		b[0] = p.first
		p.used = true
		return 1, nil
	}
	return p.r.Read(b)
}

// oversizeResponse is the typed refusal for frames beyond the connection's
// negotiated cap.
func oversizeResponse(maxFrame int) *Response {
	return &Response{
		OK:    false,
		Code:  CodeBadRequest,
		Error: fmt.Sprintf("frame exceeds the %d-byte limit", maxFrame),
	}
}

// refuseIfFollower fences direct revocation mutations on a replication
// follower. A journal that has adopted a leader epoch (> 0) is driven
// solely by the leader's ordered stream; if this daemon self-sequenced a
// direct mutation, its numbering would fork from the leader's and a racing
// fast-path hint could shadow the authoritative order forever. The caller
// gets a typed not_leader refusal pointing at the real write path. A
// standalone journaled daemon (epoch 0, never spoken to by a leader) keeps
// accepting direct mutations. Returns nil when the mutation may proceed.
func (s *Server) refuseIfFollower() *Response {
	if epoch := s.cfg.Journal.Epoch(); epoch > 0 {
		return replErrorResponse(fmt.Errorf(
			"%w: this daemon follows a revocation leader at epoch %d; route the mutation through the leader shard", repl.ErrNotLeader, epoch))
	}
	return nil
}

// dispatch routes one request. It never panics; unexpected failures become
// CodeInternal responses.
func (s *Server) dispatch(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpIBEToken:
		return s.ibeToken(req)
	case OpGDHSign:
		return s.gdhSign(req)
	case OpRSADecrypt:
		return s.rsaDecrypt(req)
	case OpRSASign:
		return s.rsaSign(req)
	case OpGMDecrypt:
		return s.gmDecrypt(req)
	case OpRevoke:
		// On a replication leader the mutation goes through the Leader so it
		// is sequenced, made durable and streamed to the fleet in one motion.
		if s.cfg.Leader != nil {
			if err := s.cfg.Leader.Revoke(req.ID, req.Reason); err != nil {
				return replErrorResponse(err)
			}
		} else if s.cfg.Journal != nil {
			if resp := s.refuseIfFollower(); resp != nil {
				return resp
			}
			if err := s.cfg.Journal.Revoke(req.ID, req.Reason); err != nil {
				return errResponse(CodeInternal, err)
			}
		} else {
			s.cfg.Registry.Revoke(req.ID, req.Reason)
		}
		return &Response{OK: true}
	case OpUnrevoke:
		if s.cfg.Leader != nil {
			if err := s.cfg.Leader.Unrevoke(req.ID); err != nil {
				return replErrorResponse(err)
			}
		} else if s.cfg.Journal != nil {
			if resp := s.refuseIfFollower(); resp != nil {
				return resp
			}
			if err := s.cfg.Journal.Unrevoke(req.ID); err != nil {
				return errResponse(CodeInternal, err)
			}
		} else {
			s.cfg.Registry.Unrevoke(req.ID)
		}
		return &Response{OK: true}
	case OpReplAppend:
		return s.replAppend(req)
	case OpReplSnapshot:
		return s.replSnapshot(req)
	case OpReplStatus:
		return s.replStatus(req)
	case OpRegisterIBE:
		return s.registerIBE(req)
	case OpRegisterGDH:
		return s.registerGDH(req)
	case OpStatus:
		return &Response{OK: true, Revoked: s.cfg.Registry.IsRevoked(req.ID)}
	case OpList:
		body, err := json.Marshal(s.cfg.Registry.Entries())
		if err != nil {
			return errResponse(CodeInternal, err)
		}
		return &Response{OK: true, Payload: body}
	default:
		return &Response{OK: false, Code: CodeBadRequest, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) ibeToken(req *Request) *Response {
	if s.cfg.IBE == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "IBE backend not configured"}
	}
	u, err := wire.UnmarshalG1(s.cfg.Pairing.Curve(), req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	token, err := s.cfg.IBE.Token(req.ID, u)
	if err != nil {
		return coreError(err)
	}
	return &Response{OK: true, Payload: token.Bytes()}
}

func (s *Server) gdhSign(req *Request) *Response {
	if s.cfg.GDH == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "GDH backend not configured"}
	}
	h, err := wire.UnmarshalG1(s.cfg.Pairing.Curve(), req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	half, err := s.cfg.GDH.HalfSign(req.ID, h)
	if err != nil {
		return coreError(err)
	}
	return &Response{OK: true, Payload: half.Marshal()}
}

func (s *Server) rsaDecrypt(req *Request) *Response {
	if s.cfg.RSA == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "RSA backend not configured"}
	}
	half, err := s.cfg.RSA.HalfDecryptBytes(req.ID, req.Payload)
	if err != nil {
		return coreError(err)
	}
	return &Response{OK: true, Payload: half.Bytes()} //cryptolint:public (sanctioned wire serialization edge; the half-result goes to the user by design)
}

func (s *Server) rsaSign(req *Request) *Response {
	if s.cfg.RSA == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "RSA backend not configured"}
	}
	half, err := s.cfg.RSA.HalfSign(req.ID, req.Payload)
	if err != nil {
		return coreError(err)
	}
	return &Response{OK: true, Payload: half.Bytes()} //cryptolint:public (sanctioned wire serialization edge; the half-result goes to the user by design)
}

func (s *Server) gmDecrypt(req *Request) *Response {
	if s.cfg.GM == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "GM backend not configured"}
	}
	cs, err := unpackInts(req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	halves, err := s.cfg.GM.HalfDecrypt(req.ID, cs)
	if err != nil {
		return coreError(err)
	}
	payload, err := packInts(halves)
	if err != nil {
		return errResponse(CodeInternal, err)
	}
	return &Response{OK: true, Payload: payload}
}

func (s *Server) registerIBE(req *Request) *Response {
	if !s.cfg.AllowRegister {
		return &Response{OK: false, Code: CodeUnsupported, Error: "registration not enabled (AllowRegister)"}
	}
	if s.cfg.IBE == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "IBE backend not configured"}
	}
	if req.ID == "" {
		return &Response{OK: false, Code: CodeBadRequest, Error: "register needs an identity"}
	}
	d, err := wire.UnmarshalG1(s.cfg.Pairing.Curve(), req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	s.cfg.IBE.Register(&core.SEMKeyHalf{ID: req.ID, D: d})
	return &Response{OK: true}
}

func (s *Server) registerGDH(req *Request) *Response {
	if !s.cfg.AllowRegister {
		return &Response{OK: false, Code: CodeUnsupported, Error: "registration not enabled (AllowRegister)"}
	}
	if s.cfg.GDH == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "GDH backend not configured"}
	}
	if req.ID == "" {
		return &Response{OK: false, Code: CodeBadRequest, Error: "register needs an identity"}
	}
	x, err := wire.UnmarshalScalar(req.Payload, s.cfg.Pairing.Q())
	if err != nil || x.Sign() <= 0 {
		return &Response{OK: false, Code: CodeBadRequest, Error: "x_sem scalar outside [1, q-1]"}
	}
	s.cfg.GDH.Register(&core.GDHSEMKey{ID: req.ID, X: x})
	return &Response{OK: true}
}

// coreError maps the typed errors of internal/core onto protocol codes.
func coreError(err error) *Response {
	switch {
	case errors.Is(err, core.ErrRevoked):
		return errResponse(CodeRevoked, err)
	case errors.Is(err, core.ErrUnknownIdentity):
		return errResponse(CodeUnknownIdentity, err)
	default:
		return errResponse(CodeBadRequest, err)
	}
}

func errResponse(code ErrorCode, err error) *Response {
	return &Response{OK: false, Code: code, Error: err.Error()}
}

// Package gf stubs the module's extension-field API.
package gf

// Field is the extension field.
type Field struct{}

// Element is a field element.
type Element struct{}

// ElementFromBytes decodes coordinates without membership validation.
func (f *Field) ElementFromBytes(data []byte) (*Element, error) { return &Element{}, nil }

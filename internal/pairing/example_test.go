package pairing_test

import (
	"fmt"
	"math/big"

	"repro/internal/pairing"
)

// ExampleParams_Pair demonstrates the bilinearity that every scheme in this
// repository is built on: ê(aP, bP) = ê(P, P)^(ab).
func ExampleParams_Pair() {
	pp, err := pairing.Fast()
	if err != nil {
		fmt.Println(err)
		return
	}
	P := pp.Generator()
	a := big.NewInt(6)
	b := big.NewInt(7)

	lhs, err := pp.Pair(P.ScalarMul(a), P.ScalarMul(b))
	if err != nil {
		fmt.Println(err)
		return
	}
	base, err := pp.Pair(P, P)
	if err != nil {
		fmt.Println(err)
		return
	}
	rhs, err := base.Exp(big.NewInt(42))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("bilinear:", lhs.Equal(rhs))
	fmt.Println("non-degenerate:", !base.IsOne())
	// Output:
	// bilinear: true
	// non-degenerate: true
}

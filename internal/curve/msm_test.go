package curve

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"sync"
	"testing"
)

// Paper-size parameters (|p| = 512, |q| = 160) for the kernel benchmarks.
// These mirror internal/pairing's "paper" fixed set; they are duplicated
// here because importing pairing from curve's internal tests would cycle.
const (
	paperPHex = "b282da5c02935d5836473139df6751ee8e1fb07c917309c04088843b36435876d65dd173ce4ac63f883c05a59ad3a134e30ef32607e2a49c71e515d4dcc47eef"
	paperQHex = "d766107fb0eace0a6ccd9d42e9492ba8bf2298ed"
)

func paperCurve(tb testing.TB) *Curve {
	tb.Helper()
	p, _ := new(big.Int).SetString(paperPHex, 16)
	q, _ := new(big.Int).SetString(paperQHex, 16)
	c, err := New(p, q)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// msmFixture builds n distinct points (an Add-chain from a random G1 base,
// cheap even at paper size) and n scalars below q drawn from a deterministic
// stream.
func msmFixture(tb testing.TB, c *Curve, n int, seed int64) ([]*big.Int, []*Point) {
	tb.Helper()
	base, err := c.RandomG1(rand.Reader)
	if err != nil {
		tb.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(seed))
	scalars := make([]*big.Int, n)
	points := make([]*Point, n)
	acc := base
	for i := 0; i < n; i++ {
		points[i] = acc
		acc = acc.Add(base)
		scalars[i] = new(big.Int).Rand(rng, c.Q())
	}
	return scalars, points
}

func mustMSMBytes(t *testing.T, c *Curve, scalars []*big.Int, points []*Point) ([]byte, []byte) {
	t.Helper()
	got, err := c.MSM(scalars, points)
	if err != nil {
		t.Fatalf("MSM: %v", err)
	}
	want, err := c.MSMSequential(scalars, points)
	if err != nil {
		t.Fatalf("MSMSequential: %v", err)
	}
	return got.Marshal(), want.Marshal()
}

// TestMSMMatchesSequential drives the Pippenger kernel through the scalar
// and point shapes the schemes produce — zero/one/q−1/negative/unreduced
// scalars, repeated points, identities, cofactor-order points — and demands
// bit-identical output against the per-point oracle.
func TestMSMMatchesSequential(t *testing.T) {
	c := toyCurve(t)
	P, err := c.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var cof *Point
	for {
		R, err := c.RandomPoint(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if cof = R.ScalarMul(c.Q()); !cof.IsInfinity() {
			break
		}
	}
	q := c.Q()
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	big1 := new(big.Int).Lsh(q, 13) // far wider than the group order
	big1.Add(big1, big.NewInt(77))

	cases := []struct {
		name    string
		scalars []*big.Int
		points  []*Point
	}{
		{"empty", nil, nil},
		{"single", []*big.Int{big.NewInt(5)}, []*Point{P}},
		{"single.one", []*big.Int{big.NewInt(1)}, []*Point{P}},
		{"single.zero", []*big.Int{big.NewInt(0)}, []*Point{P}},
		{"single.neg", []*big.Int{big.NewInt(-9)}, []*Point{P}},
		{"single.qm1", []*big.Int{qm1}, []*Point{P}},
		{"single.q", []*big.Int{new(big.Int).Set(q)}, []*Point{P}},
		{"single.wide", []*big.Int{big1}, []*Point{P}},
		{"infinity.only", []*big.Int{big.NewInt(7)}, []*Point{c.Infinity()}},
		{"cofactor.point", []*big.Int{big.NewInt(11), big.NewInt(3)}, []*Point{cof, P}},
		{"repeated.point", []*big.Int{big.NewInt(2), big.NewInt(3), big.NewInt(4)}, []*Point{P, P, P}},
		{"cancel", []*big.Int{big.NewInt(6), big.NewInt(-6)}, []*Point{P, P}},
		{"mixed", []*big.Int{big.NewInt(0), qm1, big.NewInt(-1), big1, new(big.Int).Set(q)},
			[]*Point{P, P.Double(), c.Infinity(), cof, P.Add(P.Double())}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, want := mustMSMBytes(t, c, tc.scalars, tc.points)
			if !bytes.Equal(got, want) {
				t.Fatalf("MSM diverges from sequential oracle: %x vs %x", got, want)
			}
		})
	}

	for _, n := range []int{1, 2, 3, 7, 17, 64, 129} {
		scalars, points := msmFixture(t, c, n, int64(1000+n))
		got, want := mustMSMBytes(t, c, scalars, points)
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: MSM diverges from sequential oracle", n)
		}
	}
}

// TestMSMOrderTwoPoint exercises the order-2 point (0, 0) — the hardest
// degenerate input, since its doublings collapse to O inside the bucket
// arithmetic.
func TestMSMOrderTwoPoint(t *testing.T) {
	c := toyCurve(t)
	T, err := c.NewPoint(big.NewInt(0), big.NewInt(0))
	if err != nil {
		t.Fatalf("(0,0) must be on y² = x³ + x: %v", err)
	}
	P, err := c.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	odd, err := c.MSM([]*big.Int{big.NewInt(5)}, []*Point{T})
	if err != nil {
		t.Fatal(err)
	}
	if !odd.Equal(T) {
		t.Fatalf("5·(0,0) = %v, want (0,0)", odd)
	}
	even, err := c.MSM([]*big.Int{big.NewInt(4)}, []*Point{T})
	if err != nil {
		t.Fatal(err)
	}
	if !even.IsInfinity() {
		t.Fatalf("4·(0,0) = %v, want O", even)
	}
	mixed, err := c.MSM([]*big.Int{big.NewInt(3), big.NewInt(2)}, []*Point{T, P})
	if err != nil {
		t.Fatal(err)
	}
	if !mixed.Equal(T.Add(P.Double())) {
		t.Fatalf("3·(0,0) + 2·P mismatch")
	}
	if T.InSubgroup() {
		t.Fatal("order-2 point claims G1 membership (q is odd)")
	}
}

func TestMSMErrors(t *testing.T) {
	c := toyCurve(t)
	P, err := c.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	one := big.NewInt(1)
	if _, err := c.MSM([]*big.Int{one, one}, []*Point{P}); !errors.Is(err, errMSMShape) {
		t.Fatalf("length mismatch: err = %v", err)
	}
	if _, err := c.MSM([]*big.Int{nil}, []*Point{P}); !errors.Is(err, errMSMShape) {
		t.Fatalf("nil scalar: err = %v", err)
	}
	if _, err := c.MSM([]*big.Int{one}, []*Point{nil}); !errors.Is(err, errMSMShape) {
		t.Fatalf("nil point: err = %v", err)
	}
	if _, err := c.MSMSequential([]*big.Int{one}, []*Point{nil}); !errors.Is(err, errMSMShape) {
		t.Fatalf("sequential nil point: err = %v", err)
	}
}

// TestMSMConcurrent hammers one shared input from many goroutines; run with
// -race -cpu 1,4 it checks both the worker fan-out and the Point/Curve
// caches for data races, and that every run returns identical bytes.
func TestMSMConcurrent(t *testing.T) {
	c := toyCurve(t)
	scalars, points := msmFixture(t, c, 48, 42)
	want, err := c.MSM(scalars, points)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := want.Marshal()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				got, err := c.MSM(scalars, points)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got.Marshal(), wantBytes) {
					errs <- errors.New("concurrent MSM returned different bytes")
					return
				}
				for _, pt := range points[:8] {
					if !pt.InSubgroup() {
						errs <- errors.New("shared G1 point failed InSubgroup")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInSubgroupCached checks the limb ladder + memoized verdict against the
// definitional q·P oracle across subgroup, cofactor-order and random points,
// and that Neg propagates the cache.
func TestInSubgroupCached(t *testing.T) {
	c := toyCurve(t)
	oracle := func(pt *Point) bool { return pt.ScalarMul(c.Q()).IsInfinity() }

	for i := 0; i < 20; i++ {
		P, err := c.RandomPoint(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle(P)
		if got := P.InSubgroup(); got != want {
			t.Fatalf("InSubgroup(%v) = %v, oracle says %v", P, got, want)
		}
		if got := P.InSubgroup(); got != want {
			t.Fatalf("cached InSubgroup flipped to %v", got)
		}
		if got := P.Neg().InSubgroup(); got != want {
			t.Fatalf("InSubgroup(−P) = %v, want %v", got, want)
		}
	}
	G, err := c.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !G.InSubgroup() {
		t.Fatal("RandomG1 output rejected")
	}
	if !c.Infinity().InSubgroup() {
		t.Fatal("O must be in the subgroup")
	}
	var cof *Point
	for {
		R, err := c.RandomPoint(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if cof = R.ScalarMul(c.Q()); !cof.IsInfinity() {
			break
		}
	}
	if cof.InSubgroup() {
		t.Fatal("cofactor-order point accepted")
	}
	if cof.InSubgroup() {
		t.Fatal("cached cofactor verdict flipped")
	}
}

// FuzzMSM is the differential fuzzer of the acceptance criteria: random
// sizes, scalar shapes (zero, one, q−1, negative, unreduced) and point
// multisets (repeats, identity) must keep MSM bit-identical to the
// sequential oracle.
func FuzzMSM(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(2), uint8(3))
	f.Add(int64(3), uint8(17))
	f.Add(int64(99), uint8(64))
	p, _ := new(big.Int).SetString(toyPHex, 16)
	qv, _ := new(big.Int).SetString(toyQHex, 16)
	c, err := New(p, qv)
	if err != nil {
		f.Fatal(err)
	}
	base, err := c.RandomG1(rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	qm1 := new(big.Int).Sub(qv, big.NewInt(1))

	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		n := int(nRaw % 40)
		rng := mrand.New(mrand.NewSource(seed))
		scalars := make([]*big.Int, n)
		points := make([]*Point, n)
		var prev *Point
		for i := 0; i < n; i++ {
			switch rng.Intn(8) {
			case 0:
				scalars[i] = big.NewInt(0)
			case 1:
				scalars[i] = big.NewInt(1)
			case 2:
				scalars[i] = new(big.Int).Set(qm1)
			case 3:
				scalars[i] = new(big.Int).Neg(new(big.Int).Rand(rng, qv))
			case 4: // unreduced: k + q·r
				k := new(big.Int).Rand(rng, qv)
				scalars[i] = k.Add(k, new(big.Int).Lsh(qv, uint(rng.Intn(8)+1)))
			default:
				scalars[i] = new(big.Int).Rand(rng, qv)
			}
			switch {
			case rng.Intn(10) == 0:
				points[i] = c.Infinity()
			case prev != nil && rng.Intn(4) == 0:
				points[i] = prev // repeated point
			default:
				k := new(big.Int).Rand(rng, qv)
				points[i] = base.ScalarMul(k)
			}
			prev = points[i]
		}
		got, err := c.MSM(scalars, points)
		if err != nil {
			t.Fatalf("MSM: %v", err)
		}
		want, err := c.MSMSequential(scalars, points)
		if err != nil {
			t.Fatalf("MSMSequential: %v", err)
		}
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("seed=%d n=%d: MSM %x differs from oracle %x",
				seed, n, got.Marshal(), want.Marshal())
		}
	})
}

// BenchmarkMSM measures the Pippenger kernel against the per-point loop at
// paper size (512-bit p), the comparison behind the msm.* benchtab entries.
func BenchmarkMSM(b *testing.B) {
	c := paperCurve(b)
	for _, n := range []int{64, 256} {
		scalars, points := msmFixture(b, c, n, int64(n))
		b.Run(benchName("pippenger", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.MSM(scalars, points); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(benchName("sequential", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.MSMSequential(scalars, points); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(kind string, n int) string {
	return kind + "." + big.NewInt(int64(n)).String()
}

// BenchmarkValidateDecoded measures the untrusted-ingest path: decompress a
// wire point and run the subgroup check, each iteration on a fresh Point so
// the memoized verdict cannot help — this is the cost the limb ladder and
// limb square root actually removed.
func BenchmarkValidateDecoded(b *testing.B) {
	c := paperCurve(b)
	G, err := c.RandomG1(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	wire := G.Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := c.Unmarshal(wire)
		if err != nil {
			b.Fatal(err)
		}
		if err := pt.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

package pairing

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Amortized-engine accounting. The engine's economics — how often fixed
// Miller programs are (re)built versus replayed, and how large the
// multi-pairing products actually are in production — decide whether the
// PR3 amortizations pay for themselves outside benchmarks, so the serving
// daemons export them. Counters are process-global (programs are built
// across many Params-sharing components) and atomic; recording adds one
// uncontended atomic add to construction paths only, never to replays.
var engineCounters struct {
	fixedBuilds atomic.Uint64 // FixedPair programs constructed
	multiCalls  atomic.Uint64 // MultiPair invocations
	multiPairs  atomic.Uint64 // pairs summed across MultiPair invocations
}

// EngineStats is a snapshot of the amortized engine's counters.
type EngineStats struct {
	// FixedPairBuilds counts NewFixedPair precomputations (each costs
	// roughly one Miller loop; a high rate relative to replays means the
	// per-identity caches are thrashing).
	FixedPairBuilds uint64
	// MultiPairCalls counts MultiPair invocations.
	MultiPairCalls uint64
	// MultiPairPairs counts the pairs summed over all MultiPair
	// invocations; divided by MultiPairCalls it gives the mean product
	// size, the quantity that decides the shared-squaring payoff.
	MultiPairPairs uint64
}

// AmortizedEngineStats returns the current engine counters.
func AmortizedEngineStats() EngineStats {
	return EngineStats{
		FixedPairBuilds: engineCounters.fixedBuilds.Load(),
		MultiPairCalls:  engineCounters.multiCalls.Load(),
		MultiPairPairs:  engineCounters.multiPairs.Load(),
	}
}

// RegisterEngineMetrics exports the engine counters through reg as
// function-backed series (sampled at scrape time). Idempotent — the
// registry deduplicates the series — so every instrumented component may
// call it without coordination.
func RegisterEngineMetrics(reg *obs.Registry) {
	reg.CounterFunc("pairing_fixed_programs_total", "fixed-argument Miller programs precomputed",
		func() uint64 { return engineCounters.fixedBuilds.Load() })
	reg.CounterFunc("pairing_multipair_calls_total", "MultiPair product evaluations",
		func() uint64 { return engineCounters.multiCalls.Load() })
	reg.CounterFunc("pairing_multipair_pairs_total", "pairs accumulated across MultiPair evaluations",
		func() uint64 { return engineCounters.multiPairs.Load() })
}

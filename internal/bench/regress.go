package bench

import (
	"fmt"
	"sort"
)

// Regression describes one baseline entry that exceeded the allowed
// tolerance over its committed reference — in time (Metric "ns/op") or in
// heap allocations (Metric "allocs/op").
type Regression struct {
	Name    string  // entry name
	Metric  string  // "ns/op" or "allocs/op"
	RefNs   float64 // committed reference value
	FreshNs float64 // measured value
	Percent float64 // growth, percent over the reference
}

func (r Regression) String() string {
	metric := r.Metric
	if metric == "" {
		metric = "ns/op"
	}
	return fmt.Sprintf("%s: %.1f %s vs %.1f %s reference (+%.1f%%)",
		r.Name, r.FreshNs, metric, r.RefNs, metric, r.Percent)
}

// CompareBaselines checks a freshly measured report against a committed
// reference and returns the entries (by ascending name) whose ns/op grew by
// more than tolerancePct percent. Only the intersection of entry names is
// compared, so a reference from before a new primitive existed still guards
// the old ones. The parameter sets must match — cross-parameter ratios are
// meaningless — but Go version and GOARCH may differ (that is the point of
// re-measuring).
func CompareBaselines(ref, fresh *BaselineReport, tolerancePct float64) ([]Regression, error) {
	if ref.Params != fresh.Params {
		return nil, fmt.Errorf("bench: parameter sets differ (reference %q, fresh %q)", ref.Params, fresh.Params)
	}
	if tolerancePct < 0 {
		return nil, fmt.Errorf("bench: negative tolerance %.1f%%", tolerancePct)
	}
	refEnt := make(map[string]BaselineEntry, len(ref.Entries))
	for _, e := range ref.Entries {
		if e.NsPerOp > 0 {
			refEnt[e.Name] = e
		}
	}
	var regs []Regression
	common := 0
	for _, e := range fresh.Entries {
		old, ok := refEnt[e.Name]
		if !ok {
			continue
		}
		common++
		slowdown := (e.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		if slowdown > tolerancePct {
			regs = append(regs, Regression{Name: e.Name, Metric: "ns/op", RefNs: old.NsPerOp, FreshNs: e.NsPerOp, Percent: slowdown})
		}
		// Allocation gate: only when both snapshots measured the column.
		// Allocation counts are near-deterministic, so the bar is tighter
		// than the timing tolerance: a zero reference admits (almost) no
		// allocations at all, a nonzero one the same percent tolerance with
		// a small absolute slack for background-runtime noise.
		if old.AllocsPerOp == nil || e.AllocsPerOp == nil {
			continue
		}
		refA, freshA := *old.AllocsPerOp, *e.AllocsPerOp
		limit := refA*(1+tolerancePct/100) + 0.5
		if freshA > limit {
			pct := 100.0
			if refA > 0 {
				pct = (freshA - refA) / refA * 100
			}
			regs = append(regs, Regression{Name: e.Name, Metric: "allocs/op", RefNs: refA, FreshNs: freshA, Percent: pct})
		}
	}
	if common == 0 {
		return nil, fmt.Errorf("bench: no common entries between reference and fresh report")
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

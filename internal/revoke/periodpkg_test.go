package revoke

import (
	"bytes"
	"crypto/rand"
	"testing"
	"time"

	"repro/internal/pairing"
)

const periodMsgLen = 32

// periodFixture builds a PeriodPKG on a manually-driven virtual clock.
func periodFixture(t *testing.T, period time.Duration) (*PeriodPKG, *time.Time) {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	now := Epoch
	pkg, err := NewPeriodPKG(rand.Reader, pp, periodMsgLen, period, func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	return pkg, &now
}

func TestPeriodPKGRoundTrip(t *testing.T) {
	pkg, _ := periodFixture(t, 24*time.Hour)
	if err := pkg.Enroll("alice@example.com"); err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{7}, periodMsgLen)
	c, idx, err := pkg.EncryptCurrent(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pkg.Decrypt("alice@example.com", idx, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("period-key decryption mismatch")
	}
}

func TestPeriodPKGRevocationLagsUntilRollover(t *testing.T) {
	// The paper's criticism made executable: a revoked key KEEPS WORKING
	// for the rest of its validity period.
	pkg, now := periodFixture(t, 24*time.Hour)
	if err := pkg.Enroll("alice@example.com"); err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{1}, periodMsgLen)

	// Revoke 6 hours into day 0.
	*now = Epoch.Add(6 * time.Hour)
	pkg.Revoke("alice@example.com")

	// A message sent 10 hours into day 0 — the revoked Alice still reads it
	// with her day-0 key.
	*now = Epoch.Add(10 * time.Hour)
	c, idx, err := pkg.EncryptCurrent(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pkg.Decrypt("alice@example.com", idx, c)
	if err != nil {
		t.Fatalf("revoked key should still work within its period: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("plaintext mismatch")
	}

	// Day 1: the PKG skips Alice at rollover; a day-1 message is sealed to
	// a key she never receives.
	*now = Epoch.Add(25 * time.Hour)
	if err := pkg.Tick(); err != nil {
		t.Fatal(err)
	}
	c2, idx2, err := pkg.EncryptCurrent(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pkg.Decrypt("alice@example.com", idx2, c2); err == nil {
		t.Fatal("revoked user decrypted a next-period message")
	}
}

func TestPeriodPKGReissueCost(t *testing.T) {
	pkg, now := periodFixture(t, 24*time.Hour)
	for _, id := range []string{"a@x", "b@x", "c@x"} {
		if err := pkg.Enroll(id); err != nil {
			t.Fatal(err)
		}
	}
	pkg.Revoke("c@x")
	// Advance three days.
	*now = Epoch.Add(3*24*time.Hour + time.Hour)
	if err := pkg.Tick(); err != nil {
		t.Fatal(err)
	}
	// 3 rollovers × 2 live users = 6 reissues (c@x skipped).
	if got := pkg.Reissues(); got != 6 {
		t.Fatalf("reissues = %d, want 6", got)
	}
	// Live users can decrypt current-period traffic after the rollovers.
	msg := bytes.Repeat([]byte{2}, periodMsgLen)
	c, idx, err := pkg.EncryptCurrent(rand.Reader, "a@x", msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pkg.Decrypt("a@x", idx, c); err != nil {
		t.Fatalf("live user lost access after rollover: %v", err)
	}
}

func TestPeriodPKGValidation(t *testing.T) {
	pp, _ := pairing.Toy()
	if _, err := NewPeriodPKG(rand.Reader, pp, periodMsgLen, 0, nil); err == nil {
		t.Error("zero period accepted")
	}
	pkg, _ := periodFixture(t, time.Hour)
	if err := pkg.Enroll("a@x"); err != nil {
		t.Fatal(err)
	}
	if err := pkg.Enroll("a@x"); err == nil {
		t.Error("duplicate enrollment accepted")
	}
	if _, err := pkg.Decrypt("ghost@x", 0, nil); err == nil {
		t.Error("unenrolled decrypt accepted")
	}
}

func TestPeriodIdentityFormat(t *testing.T) {
	pkg, _ := periodFixture(t, 24*time.Hour)
	id0 := pkg.PeriodIdentity("alice@example.com", Epoch)
	id1 := pkg.PeriodIdentity("alice@example.com", Epoch.Add(25*time.Hour))
	if id0 == id1 {
		t.Fatal("different periods produced the same identity")
	}
	if id0 != "alice@example.com|0" {
		t.Fatalf("period identity = %q", id0)
	}
}

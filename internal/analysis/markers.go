package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //cryptolint marker vocabulary shared by the analyzers. Markers are
// ordinary comments; which positions they are honoured in depends on the
// marker (see each analyzer's package documentation):
//
//   - //cryptolint:secret — type declarations (see package secrets)
//   - //cryptolint:public — struct fields, and line-level escapes for the
//     taint analyzers (a sanctioned wire/keyfile edge, a value that is
//     public despite its taint)
//   - //cryptolint:hotpath — function declarations; the allocfree analyzer
//     forbids allocation inside
//   - //cryptolint:vartime — function declarations and package clauses; the
//     body (or package) is a sanctioned variable-time domain for cttime
//   - //cryptolint:nodeadline — line-level deadlinecheck escape
//   - //cryptolint:panic-ok — line-level nopanic escape (deliberate
//     re-raise, e.g. the parallel worker-panic propagation)
//
// Every escape marker is expected to carry a parenthesised reason; the
// marker's presence is what the analyzers test, the reason is for the
// reviewer.
const (
	MarkerPublic     = "//cryptolint:public"
	MarkerHotpath    = "//cryptolint:hotpath"
	MarkerVartime    = "//cryptolint:vartime"
	MarkerNoDeadline = "//cryptolint:nodeadline"
	MarkerPanicOK    = "//cryptolint:panic-ok"
)

// HasMarker reports whether any comment in cg begins with marker.
func HasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}

// LineMarks indexes every //cryptolint marker comment of one package by
// file and line, so analyzers can honour line-level escapes (a marker
// suppresses findings reported on the line it sits on).
type LineMarks struct {
	fset  *token.FileSet
	marks map[lineKey]bool
}

type lineKey struct {
	file   string
	line   int
	marker string
}

// CollectLineMarks scans pkg's comments for the given markers.
func CollectLineMarks(pkg *Package, markers ...string) *LineMarks {
	lm := &LineMarks{fset: pkg.Fset, marks: make(map[lineKey]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				for _, m := range markers {
					if strings.HasPrefix(text, m) {
						pos := pkg.Fset.Position(c.Pos())
						lm.marks[lineKey{pos.Filename, pos.Line, m}] = true
					}
				}
			}
		}
	}
	return lm
}

// Has reports whether marker sits on the line holding pos.
func (lm *LineMarks) Has(marker string, pos token.Pos) bool {
	p := lm.fset.Position(pos)
	return lm.marks[lineKey{p.Filename, p.Line, marker}]
}

// PackageMarked reports whether any file of pkg carries marker in its
// package-clause doc comment — a package-wide annotation.
func PackageMarked(pkg *Package, marker string) bool {
	for _, f := range pkg.Files {
		if HasMarker(f.Doc, marker) {
			return true
		}
	}
	return false
}

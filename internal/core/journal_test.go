package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestJournalPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Revoke("alice@example.com", "compromised"); err != nil {
		t.Fatal(err)
	}
	if err := j1.Revoke("bob@example.com", "departed"); err != nil {
		t.Fatal(err)
	}
	if err := j1.Unrevoke("alice@example.com"); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": replay the journal.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg := j2.Registry()
	if reg.IsRevoked("alice@example.com") {
		t.Error("unrevoked identity revoked after replay")
	}
	if !reg.IsRevoked("bob@example.com") {
		t.Error("revocation lost across restart")
	}
	entries := reg.Entries()
	if len(entries) != 1 || entries[0].Reason != "departed" {
		t.Errorf("entries after replay: %+v", entries)
	}
}

// TestJournalEpochDurableAcrossReopen pins the fence's durability: an
// epoch adopted via SetEpoch (the not_leader write fence a replication
// leader arms on a follower) must survive a restart — a journal that
// replayed back to epoch 0 would silently accept direct self-sequenced
// mutations again. The epoch record consumes no sequence number and never
// enters the replication tail.
func TestJournalEpochDurableAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Revoke("alice@example.com", "pre-fence"); err != nil {
		t.Fatal(err)
	}
	if err := j1.SetEpoch(7); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-set writes nothing new; regression is refused.
	if err := j1.SetEpoch(7); err != nil {
		t.Fatal(err)
	}
	if err := j1.SetEpoch(3); err == nil {
		t.Fatal("epoch regression accepted")
	}
	if seq := j1.LastSeq(); seq != 1 {
		t.Errorf("SetEpoch consumed a sequence number: lastSeq = %d, want 1", seq)
	}
	if recs, ok := j1.TailSince(0); !ok || len(recs) != 1 {
		t.Errorf("tail after SetEpoch = %d records (ok %v), want the 1 mutation only", len(recs), ok)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if epoch := j2.Epoch(); epoch != 7 {
		t.Errorf("epoch after reopen = %d, want 7 (fence must survive restart)", epoch)
	}
	if seq := j2.LastSeq(); seq != 1 {
		t.Errorf("lastSeq after reopen = %d, want 1", seq)
	}
	if j2.UnknownOps() != 0 {
		t.Errorf("epoch record misread as %d unknown op(s)", j2.UnknownOps())
	}
	if !j2.Registry().IsRevoked("alice@example.com") {
		t.Error("mutation lost across reopen")
	}
}

func TestJournalToleratesTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Revoke("alice@example.com", "x"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"revoke","id":"bo`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	defer j2.Close()
	if !j2.Registry().IsRevoked("alice@example.com") {
		t.Error("intact prefix lost")
	}
	if j2.Registry().IsRevoked("bo") {
		t.Error("torn record applied")
	}
}

func TestJournalClosedRejectsMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := j.Revoke("x", "y"); err == nil {
		t.Fatal("revoke on closed journal accepted")
	}
	if err := j.Unrevoke("x"); err == nil {
		t.Fatal("unrevoke on closed journal accepted")
	}
}

func TestJournalOpenErrors(t *testing.T) {
	if _, err := OpenJournal(filepath.Join(t.TempDir(), "missing-dir", "j.jsonl")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestJournalGatesSEM(t *testing.T) {
	// The journal's registry plugs into a SEM like any other.
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	sem := NewGMSEM(j.Registry())
	_ = sem
	if err := j.Revoke("a@x", "test"); err != nil {
		t.Fatal(err)
	}
	if err := j.Registry().Check("a@x"); !errors.Is(err, ErrRevoked) {
		t.Fatal("journal mutation not visible through registry")
	}
}

// TestJournalCorruptTailAccounting is the regression test for the silent
// replay stop: corruption must be *visible* — replayed-record and
// dropped-line counts — and a valid suffix after a corrupt line must not
// be silently applied (the stop-at-corruption policy stands, loudly).
func TestJournalCorruptTailAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Revoke("alice@example.com", "one"); err != nil {
		t.Fatal(err)
	}
	if err := j.Revoke("bob@example.com", "two"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Mid-file corruption: a damaged line followed by records that were
	// once valid.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{corrupt!!\n" +
		`{"op":"revoke","id":"carol@example.com"}` + "\n" +
		`{"op":"unrevoke","id":"alice@example.com"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("corrupt journal rejected: %v", err)
	}
	defer j2.Close()
	if got := j2.Replayed(); got != 2 {
		t.Errorf("Replayed = %d, want 2", got)
	}
	if got := j2.DroppedLines(); got != 3 {
		t.Errorf("DroppedLines = %d, want 3 (corrupt line + abandoned suffix)", got)
	}
	reg := j2.Registry()
	if !reg.IsRevoked("alice@example.com") || !reg.IsRevoked("bob@example.com") {
		t.Error("intact prefix lost")
	}
	if reg.IsRevoked("carol@example.com") {
		t.Error("record after the corruption point was applied")
	}

	// The torn-final-write crash signature stays the routine case: exactly
	// one dropped line.
	torn := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(torn, []byte(`{"op":"revoke","id":"a"}`+"\n"+`{"op":"rev`), 0o600); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(torn)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Replayed() != 1 || j3.DroppedLines() != 1 {
		t.Errorf("torn write: replayed %d dropped %d, want 1/1", j3.Replayed(), j3.DroppedLines())
	}
}

// TestJournalInstrument covers the observability hook: append latency is
// recorded and the replay gauges reflect OpenJournal's accounting.
func TestJournalInstrument(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	reg := obs.NewRegistry()
	j.Instrument(reg)
	if err := j.Revoke("alice@example.com", "x"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "journal_append_seconds_count 1") {
		t.Errorf("append latency not recorded:\n%s", out)
	}
	if !strings.Contains(out, "journal_replayed_records 0") {
		t.Errorf("replay gauge missing:\n%s", out)
	}
}

package revoke

import (
	"errors"
	"testing"
	"time"
)

func TestSEMInstantRevocation(t *testing.T) {
	m := NewSEM()
	m.Enroll([]string{"alice"})
	at := Epoch.Add(3 * time.Hour)
	if !m.Allowed("alice", at) {
		t.Fatal("enrolled identity not allowed")
	}
	m.Revoke("alice", at)
	if m.Allowed("alice", at) {
		t.Fatal("SEM revocation must be effective at the revocation instant")
	}
	if !m.Allowed("alice", at.Add(-time.Second)) {
		t.Fatal("SEM revocation affected the past")
	}
	lat, err := MeasureLatency(m, "alice", at, 24*time.Hour, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if lat > time.Second {
		t.Fatalf("SEM latency = %v, want ≈ 0", lat)
	}
	if m.KeysIssued(Epoch, Epoch.Add(365*24*time.Hour)) != 0 {
		t.Fatal("SEM model must not reissue keys")
	}
}

func TestSEMUnknownIdentityNotAllowed(t *testing.T) {
	m := NewSEM()
	if m.Allowed("ghost", Epoch) {
		t.Fatal("unenrolled identity allowed")
	}
}

func TestValidityPeriodLatency(t *testing.T) {
	period := 24 * time.Hour
	m := NewValidityPeriod(period)
	m.Enroll([]string{"alice"})
	// Revoke 6 hours into a period: the key must work for 18 more hours.
	at := Epoch.Add(6 * time.Hour)
	m.Revoke("alice", at)
	if !m.Allowed("alice", at.Add(17*time.Hour)) {
		t.Fatal("key died before its period expired")
	}
	if m.Allowed("alice", at.Add(18*time.Hour+time.Second)) {
		t.Fatal("key survived its period")
	}
	lat, err := MeasureLatency(m, "alice", at, 72*time.Hour, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := 18 * time.Hour
	if lat < want-2*time.Second || lat > want+2*time.Second {
		t.Fatalf("latency = %v, want ≈ %v", lat, want)
	}
}

func TestValidityPeriodReissueCost(t *testing.T) {
	period := 24 * time.Hour
	m := NewValidityPeriod(period)
	ids := []string{"a", "b", "c", "d"}
	m.Enroll(ids)
	// Over 7 days there are 6 strictly-interior boundaries (day 1..6) when
	// measuring [Epoch, Epoch+7d): boundaries at +24h, +48h, ... +144h.
	got := m.KeysIssued(Epoch, Epoch.Add(7*24*time.Hour))
	want := 6 * len(ids)
	if got != want {
		t.Fatalf("keys issued = %d, want %d", got, want)
	}
	// Revoking one user halfway stops their reissues from then on.
	m.Revoke("a", Epoch.Add(3*24*time.Hour+time.Hour))
	got = m.KeysIssued(Epoch, Epoch.Add(7*24*time.Hour))
	// "a" gets keys at boundaries 1, 2, 3 only → 3 instead of 6.
	want = 6*3 + 3
	if got != want {
		t.Fatalf("keys issued after revocation = %d, want %d", got, want)
	}
}

func TestValidityKeysIssuedEmptyWindow(t *testing.T) {
	m := NewValidityPeriod(time.Hour)
	m.Enroll([]string{"a"})
	if m.KeysIssued(Epoch, Epoch) != 0 {
		t.Fatal("empty window issued keys")
	}
}

func TestCRLLatency(t *testing.T) {
	m := NewCRL(12*time.Hour, 30*time.Minute)
	m.Enroll([]string{"alice"})
	// Revoke 2 hours after a publication: next CRL is 10h later, plus 30m
	// propagation.
	at := Epoch.Add(2 * time.Hour)
	m.Revoke("alice", at)
	lat, err := MeasureLatency(m, "alice", at, 48*time.Hour, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := 10*time.Hour + 30*time.Minute
	if lat < want-2*time.Second || lat > want+2*time.Second {
		t.Fatalf("latency = %v, want ≈ %v", lat, want)
	}
}

func TestMeasureLatencyNeverRevoked(t *testing.T) {
	m := NewSEM()
	m.Enroll([]string{"alice"})
	if _, err := MeasureLatency(m, "alice", Epoch, time.Hour, time.Second); !errors.Is(err, ErrNeverRevoked) {
		t.Fatalf("want ErrNeverRevoked, got %v", err)
	}
	if _, err := MeasureLatency(m, "alice", Epoch, time.Hour, 0); err == nil {
		t.Fatal("zero resolution accepted")
	}
}

func TestScenarioRun(t *testing.T) {
	sc := &Scenario{
		Population:  100,
		Duration:    7 * 24 * time.Hour,
		RevokeTimes: []time.Duration{6 * time.Hour, 30 * time.Hour, 50 * time.Hour},
	}
	sem, err := sc.Run(NewSEM())
	if err != nil {
		t.Fatal(err)
	}
	vp, err := sc.Run(NewValidityPeriod(24 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	crl, err := sc.Run(NewCRL(24*time.Hour, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's F1 shape: SEM latency ≈ 0, the others grow with their
	// period; only validity periods impose PKG reissue cost.
	if sem.MeanLatency > time.Second {
		t.Errorf("SEM mean latency = %v", sem.MeanLatency)
	}
	if vp.MeanLatency <= sem.MeanLatency {
		t.Errorf("validity latency %v not above SEM %v", vp.MeanLatency, sem.MeanLatency)
	}
	if crl.MeanLatency <= sem.MeanLatency {
		t.Errorf("CRL latency %v not above SEM %v", crl.MeanLatency, sem.MeanLatency)
	}
	if sem.KeysIssued != 0 || crl.KeysIssued != 0 {
		t.Errorf("SEM/CRL issued keys: %d/%d", sem.KeysIssued, crl.KeysIssued)
	}
	if vp.KeysIssued == 0 {
		t.Error("validity model issued no keys")
	}
	// 6 boundaries × 100 users minus the skipped reissues of the three
	// revoked users (6 + 5 + 4).
	if vp.KeysIssued != 585 {
		t.Errorf("validity reissue cost %d, want 585", vp.KeysIssued)
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := &Scenario{Population: 0}
	if _, err := sc.Run(NewSEM()); err == nil {
		t.Fatal("zero population accepted")
	}
}

func TestRevokeKeepsEarliestTime(t *testing.T) {
	m := NewSEM()
	m.Enroll([]string{"a"})
	t1 := Epoch.Add(time.Hour)
	t2 := Epoch.Add(2 * time.Hour)
	m.Revoke("a", t2)
	m.Revoke("a", t1) // earlier revocation wins
	if m.Allowed("a", t1) {
		t.Fatal("later revoke overwrote earlier one")
	}
}

func TestValidityPeriodScalesWithPeriod(t *testing.T) {
	// Mean latency over uniformly spread revocation instants ≈ period/2.
	for _, period := range []time.Duration{6 * time.Hour, 24 * time.Hour} {
		var total time.Duration
		n := 24
		for i := 0; i < n; i++ {
			m := NewValidityPeriod(period)
			m.Enroll([]string{"u"})
			at := Epoch.Add(time.Duration(i) * period / time.Duration(n))
			m.Revoke("u", at)
			lat, err := MeasureLatency(m, "u", at, 10*period, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			total += lat
		}
		mean := total / time.Duration(n)
		want := period / 2
		if mean < want*8/10 || mean > want*12/10 {
			t.Errorf("period %v: mean latency %v, want ≈ %v", period, mean, want)
		}
	}
}

// Package cttime forbids variable-time operations on secret-tainted
// values. It is the mechanical form of the constant-time discipline the
// limb backend (internal/fp) established: once a value is tainted by a
// //cryptolint:secret source — directly or through the interprocedural
// flow tracked by package taint — its bits must not steer control flow,
// memory addressing, or math/big's value-dependent loops.
//
// Three rules:
//
//   - branch: an if/switch/for condition containing a tainted
//     subexpression leaks through the instruction stream. Presence checks
//     (x == nil), crypto/subtle verdicts and basic-typed metadata results
//     (Sign(), BitLen(), IsZero()) are exempt.
//   - index: indexing a slice, array or map with a tainted index or key
//     leaks through the cache.
//   - vartime call: fp.Field.InvVarTime (binary extended GCD) and
//     math/big arithmetic run in time dependent on their operands' values;
//     neither may receive tainted input.
//
// Escapes, each expected to carry a reason:
//
//   - a //cryptolint:public comment on the finding's line sanctions that
//     expression (a wire/keyfile serialization edge, a value that is
//     published anyway);
//   - a //cryptolint:vartime marker on a function declaration sanctions the
//     whole body (the documented variable-time helpers themselves);
//   - a //cryptolint:vartime marker on the package clause sanctions the
//     package (the legacy math/big scheme implementations, where the
//     limb discipline deliberately does not apply).
package cttime

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/taint"
)

// Analyzer is the cttime checker.
var Analyzer = &analysis.Analyzer{
	Name: "cttime",
	Doc:  "forbid variable-time operations (branches, indexing, math/big, InvVarTime) on secret-tainted values",
	Run:  run,
}

// bigIntMethods lists math/big.Int methods whose running time depends on
// operand values (normalization, GCD loops, bit-length-driven ladders).
// Read-only metadata accessors (Sign, BitLen, Bit, Cmp — the latter
// secretcompare's business) are deliberately absent.
var bigIntMethods = map[string]bool{
	"Add": true, "Sub": true, "Mul": true, "Div": true, "Mod": true,
	"Quo": true, "Rem": true, "DivMod": true, "QuoRem": true,
	"Exp": true, "ModInverse": true, "ModSqrt": true, "GCD": true,
	"Neg": true, "Abs": true, "Lsh": true, "Rsh": true,
	"SetBytes": true, "FillBytes": true, "Bytes": true, "Text": true,
	"And": true, "Or": true, "Xor": true, "AndNot": true, "Sqrt": true,
}

func run(pass *analysis.Pass) error {
	ta := taint.For(pass.All)
	if ta.Secrets.Names() == 0 {
		return nil
	}
	if analysis.PackageMarked(pass.Pkg, analysis.MarkerVartime) {
		return nil
	}
	info := pass.Pkg.Info
	marks := analysis.CollectLineMarks(pass.Pkg, analysis.MarkerPublic)

	check := func(fd *ast.FuncDecl) {
		if fd.Body == nil || analysis.HasMarker(fd.Doc, analysis.MarkerVartime) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IfStmt:
				checkCond(pass, ta, marks, info, x.Cond)
			case *ast.ForStmt:
				checkCond(pass, ta, marks, info, x.Cond)
			case *ast.SwitchStmt:
				checkCond(pass, ta, marks, info, x.Tag)
			case *ast.IndexExpr:
				// A generic instantiation (newKeyStore[*GDHSEMKey]) parses
				// as an IndexExpr too; a type argument is not a memory
				// access.
				if tv, ok := info.Types[x.Index]; ok && tv.IsType() {
					return true
				}
				if ta.Tainted(info, x.Index) && !marks.Has(analysis.MarkerPublic, x.Pos()) {
					what := "index"
					if isMap(info.TypeOf(x.X)) {
						what = "map key"
					}
					pass.Reportf(x.Index.Pos(), "secret-tainted %s: memory access depends on secret data", what)
				}
			case *ast.CallExpr:
				checkCall(pass, ta, marks, info, x)
			}
			return true
		})
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				check(fd)
			}
		}
	}
	return nil
}

// checkCond reports a tainted subexpression steering a branch. The walk
// descends only through the transparent connectives of a condition —
// comparisons, logical and arithmetic operators, unary negation — and at
// every operand lets the taint verdict be final in both directions: a
// tainted operand is reported (the diagnostic lands on it, not the whole
// expression), and an untainted one is not looked inside. The second half
// matters as much as the first: `f.n == 8` on a flow-tainted f is a
// metadata check, and `x.Sign() < 0` summarized its input into a public
// verdict — descending past either would rediscover the tainted base and
// flag every branch that so much as mentions it.
func checkCond(pass *analysis.Pass, ta *taint.Analysis, marks *analysis.LineMarks, info *types.Info, cond ast.Expr) {
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if e == nil {
			return
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			// Presence checks carry no value timing signal.
			if isNil(info, x.X) || isNil(info, x.Y) {
				return
			}
			walk(x.X)
			walk(x.Y)
			return
		case *ast.UnaryExpr:
			walk(x.X)
			return
		}
		e = ast.Unparen(e)
		if ta.Tainted(info, e) && !marks.Has(analysis.MarkerPublic, e.Pos()) {
			pass.Reportf(e.Pos(), "branch condition on secret-tainted value: control flow depends on secret data")
		}
	}
	walk(cond)
}

// checkCall reports variable-time callees receiving tainted input.
func checkCall(pass *analysis.Pass, ta *taint.Analysis, marks *analysis.LineMarks, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	recv := receiverTypeName(fn)

	vartime := false
	var label string
	switch {
	case fn.Pkg().Path() == "repro/internal/fp" && recv == "Field" && fn.Name() == "InvVarTime":
		vartime, label = true, "fp.Field.InvVarTime (binary extended GCD)"
	case fn.Pkg().Path() == "math/big" && recv == "Int" && bigIntMethods[fn.Name()]:
		vartime, label = true, "math/big.Int."+fn.Name()
	}
	if !vartime {
		return
	}

	leaks := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && ta.Tainted(info, sel.X) {
		leaks = true
	}
	for _, arg := range call.Args {
		if leaks {
			break
		}
		leaks = ta.Tainted(info, arg)
	}
	if leaks && !marks.Has(analysis.MarkerPublic, call.Pos()) {
		pass.Reportf(call.Pos(), "secret-tainted value reaches variable-time %s; use the constant-time fp path or annotate the sanctioned edge", label)
	}
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// receiverTypeName returns the name of fn's receiver type (through one
// pointer), or "" for a plain function.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.Nil)
	return ok
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

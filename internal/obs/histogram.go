package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout. Durations are recorded in nanoseconds into
// log-linear buckets: four sub-buckets per power of two (so any quantile
// estimate is within ~12% of the true value), spanning 1µs-ish to ~73
// minutes. Everything below 2^histMinBits ns lands in bucket 0 and
// everything at or above 2^histMaxBits ns in the overflow bucket — the
// serving stack's interesting latencies (pairings through network round
// trips) live comfortably inside the range.
const (
	histMinBits = 10 // bucket 0 upper bound: 1024ns
	histMaxBits = 42 // overflow above ~73min
	histSubBits = 2  // 4 sub-buckets per octave
	histSub     = 1 << histSubBits

	// numBuckets = underflow + 4 per octave + overflow.
	numBuckets = 1 + (histMaxBits-histMinBits)*histSub + 1
)

// bucketBounds[i] is the exclusive upper bound, in nanoseconds, of bucket
// i; the final overflow bucket is unbounded (+Inf).
var bucketBounds = func() [numBuckets - 1]uint64 {
	var b [numBuckets - 1]uint64
	b[0] = 1 << histMinBits
	for i := 1; i < len(b); i++ {
		octave := histMinBits + (i-1)/histSub
		sub := uint64((i-1)%histSub) + 1
		b[i] = 1<<octave + sub<<(octave-histSubBits)
	}
	return b
}()

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns uint64) int {
	if ns < 1<<histMinBits {
		return 0
	}
	if ns >= 1<<histMaxBits {
		return numBuckets - 1
	}
	octave := bits.Len64(ns) - 1
	sub := (ns >> (uint(octave) - histSubBits)) & (histSub - 1)
	return 1 + (octave-histMinBits)*histSub + int(sub)
}

// Histogram is a log-bucketed latency histogram. The zero value is ready
// to use; Observe is safe for concurrent use, lock-free and
// allocation-free. Quantile estimates come from Snapshot.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [numBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations record as zero.
//
//cryptolint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// Since records the time elapsed since start; the idiomatic call is
// `defer h.Since(time.Now())`.
//
//cryptolint:hotpath
func (h *Histogram) Since(start time.Time) {
	h.Observe(time.Since(start))
}

// HistogramSnapshot is a point-in-time copy of a histogram's state. The
// copy is not atomic across buckets — concurrent Observe calls may land in
// the count but not yet a bucket — so Quantile clamps rather than assumes
// exact agreement; for monitoring this skew is harmless.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	buckets [numBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket holding that rank — a conservative (over-) estimate within
// one sub-bucket of the truth. Returns 0 for an empty histogram; ranks
// landing in the overflow bucket report the largest tracked bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank > 0 {
		rank-- // 1-based rank of the sample we want, 0-indexed
	}
	var cum uint64
	for i, c := range s.buckets {
		cum += c
		if cum > rank { //cryptolint:public (aggregate latency-bucket counts; quantile walks are observability, not key material)
			if i >= len(bucketBounds) {
				break // overflow bucket
			}
			return time.Duration(bucketBounds[i])
		}
	}
	return time.Duration(bucketBounds[len(bucketBounds)-1])
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

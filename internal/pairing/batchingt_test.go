package pairing

import (
	"math/big"
	"testing"
)

func TestBatchInGT(t *testing.T) {
	pp := toyParams(t)
	g := mustPair(t, pp, pp.Generator(), pp.Generator())
	members := []*GT{
		g,
		mustExp(t, g, big.NewInt(7)),
		mustExp(t, g, big.NewInt(123456789)),
		pp.One(),
	}
	outsider := &GT{v: pp.Field().NewElement(big.NewInt(2), big.NewInt(3)), q: pp.Q()}
	zero := &GT{v: pp.Field().Zero(), q: pp.Q()}

	t.Run("all members", func(t *testing.T) {
		ok, err := pp.BatchInGT(members)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range ok {
			if !b {
				t.Fatalf("member %d rejected", i)
			}
		}
	})

	t.Run("mixed batch pinpoints culprits", func(t *testing.T) {
		batch := []*GT{members[0], outsider, members[1], zero, nil, members[2]}
		ok, err := pp.BatchInGT(batch)
		if err != nil {
			t.Fatal(err)
		}
		want := []bool{true, false, true, false, false, true}
		for i := range want {
			if ok[i] != want[i] {
				t.Fatalf("verdicts = %v, want %v", ok, want)
			}
		}
	})

	t.Run("empty and all-bad", func(t *testing.T) {
		ok, err := pp.BatchInGT(nil)
		if err != nil || len(ok) != 0 {
			t.Fatalf("empty batch: %v %v", ok, err)
		}
		ok, err = pp.BatchInGT([]*GT{outsider, zero})
		if err != nil {
			t.Fatal(err)
		}
		if ok[0] || ok[1] {
			t.Fatalf("all-bad batch accepted: %v", ok)
		}
	})

	// A member multiplied by −1 (an order-2 element of F_p²*, outside the
	// odd-order q-subgroup) must be rejected every single time. This pins
	// the soundness bug in the retired random-linear-combination variant,
	// which accepted such an element whenever its 64-bit coefficient was
	// even — probability 1/2 per call, and freely retryable by the peer.
	t.Run("order-2 tampering always rejected", func(t *testing.T) {
		tampered := &GT{v: pp.Field().Zero().Neg(g.v), q: pp.Q()}
		if pp.InGT(tampered) {
			t.Fatal("−g reported inside the odd-order subgroup")
		}
		for trial := 0; trial < 64; trial++ {
			ok, err := pp.BatchInGT([]*GT{g, tampered, members[1]})
			if err != nil {
				t.Fatal(err)
			}
			if !ok[0] || ok[1] || !ok[2] {
				t.Fatalf("trial %d: verdicts = %v, want [true false true]", trial, ok)
			}
		}
	})

	// The batched verdict must agree with per-element InGT across many
	// batches (the batch check IS per-element InGT fanned across cores,
	// so disagreement would mean a results-placement bug in the fan).
	t.Run("agrees with InGT", func(t *testing.T) {
		for trial := 0; trial < 8; trial++ {
			batch := []*GT{
				mustExp(t, g, big.NewInt(int64(trial+2))),
				outsider,
				mustExp(t, g, big.NewInt(int64(3*trial+5))),
			}
			ok, err := pp.BatchInGT(batch)
			if err != nil {
				t.Fatal(err)
			}
			for i, b := range batch {
				if ok[i] != pp.InGT(b) {
					t.Fatalf("trial %d item %d: batch %v, individual %v", trial, i, ok[i], pp.InGT(b))
				}
			}
		}
	})
}

func BenchmarkBatchInGT32(b *testing.B) {
	pp, err := Toy()
	if err != nil {
		b.Fatal(err)
	}
	g, err := pp.Pair(pp.Generator(), pp.Generator())
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]*GT, 32)
	for i := range batch {
		batch[i], err = g.Exp(big.NewInt(int64(i + 2)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.BatchInGT(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// Jacobian-coordinate arithmetic: the performance layer under the public
// affine Point API.
//
// A Jacobian triple (X, Y, Z) with Z ≠ 0 denotes the affine point
// (X/Z², Y/Z³); Z = 0 denotes the point at infinity. Doubling and (mixed)
// addition in this representation cost a handful of field multiplications
// and no modular inversion, whereas every affine chord-and-tangent step
// pays one big.Int.ModInverse — by far the most expensive field operation.
// Scalar multiplication therefore runs entirely in Jacobian form and
// converts back to affine exactly once; when several points need conversion
// at the same time (precomputation tables), Montgomery's simultaneous-
// inversion trick shares a single inversion among all of them.
//
// The formulas are the standard ones for short Weierstrass curves with a
// generic a-coefficient (here a = 1, so M = 3X² + Z⁴):
//
//	doubling:   S = 4XY², M = 3X² + Z⁴,
//	            X' = M² − 2S, Y' = M(S − X') − 8Y⁴, Z' = 2YZ
//	mixed add:  U2 = x·Z², S2 = y·Z³, H = U2 − X, R = S2 − Y,
//	            X' = R² − H³ − 2XH², Y' = R(XH² − X') − YH³, Z' = ZH
//
// The same formulas, interleaved with line-coefficient extraction, drive
// the inversion-free Miller loop in internal/pairing.
package curve

import "math/big"

// jacPoint is a mutable Jacobian-coordinate point. The zero value is not
// usable; construct via newJac or (*Curve).toJac.
type jacPoint struct {
	x, y, z *big.Int
}

func newJac() *jacPoint {
	return &jacPoint{x: new(big.Int), y: new(big.Int), z: new(big.Int)}
}

// setInfinity marks j as the identity (Z = 0).
func (j *jacPoint) setInfinity() *jacPoint {
	j.x.SetInt64(1)
	j.y.SetInt64(1)
	j.z.SetInt64(0)
	return j
}

func (j *jacPoint) isInfinity() bool { return j.z.Sign() == 0 }

// setAffine loads the affine point (x, y) with Z = 1.
func (j *jacPoint) setAffine(x, y *big.Int) *jacPoint {
	j.x.Set(x)
	j.y.Set(y)
	j.z.SetInt64(1)
	return j
}

// set copies v into j.
func (j *jacPoint) set(v *jacPoint) *jacPoint {
	j.x.Set(v.x)
	j.y.Set(v.y)
	j.z.Set(v.z)
	return j
}

// toJac lifts an affine point into Jacobian coordinates.
func (c *Curve) toJac(pt *Point) *jacPoint {
	j := newJac()
	if pt.inf {
		return j.setInfinity()
	}
	return j.setAffine(pt.x, pt.y)
}

// jacScratch holds the temporaries for one chain of Jacobian operations so
// the hot loops of ScalarMul allocate a fixed number of big.Ints regardless
// of scalar size.
type jacScratch struct {
	t1, t2, t3, t4, t5, t6 *big.Int
}

func newJacScratch() *jacScratch {
	return &jacScratch{
		t1: new(big.Int), t2: new(big.Int), t3: new(big.Int),
		t4: new(big.Int), t5: new(big.Int), t6: new(big.Int),
	}
}

// jacDouble sets v = 2v in place. The identity and 2-torsion (Y = 0) cases
// degenerate gracefully to Z = 0.
func (c *Curve) jacDouble(v *jacPoint, s *jacScratch) {
	if v.isInfinity() {
		return
	}
	p := c.p
	xx := s.t1.Mul(v.x, v.x) // X²
	xx.Mod(xx, p)
	yy := s.t2.Mul(v.y, v.y) // Y²
	yy.Mod(yy, p)
	zz := s.t3.Mul(v.z, v.z) // Z²
	zz.Mod(zz, p)

	// S = 4·X·Y²
	sS := s.t4.Mul(v.x, yy)
	sS.Lsh(sS, 2)
	sS.Mod(sS, p)

	// M = 3·X² + Z⁴   (a = 1)
	m := s.t5.Mul(zz, zz)
	m.Add(m, xx)
	m.Add(m, xx)
	m.Add(m, xx)
	m.Mod(m, p)

	// Z' = 2·Y·Z (before Y is overwritten)
	v.z.Mul(v.y, v.z)
	v.z.Lsh(v.z, 1)
	v.z.Mod(v.z, p)

	// X' = M² − 2S
	v.x.Mul(m, m)
	v.x.Sub(v.x, sS)
	v.x.Sub(v.x, sS)
	v.x.Mod(v.x, p)

	// Y' = M·(S − X') − 8·Y⁴
	yyyy := s.t6.Mul(yy, yy)
	yyyy.Lsh(yyyy, 3)
	v.y.Sub(sS, v.x)
	v.y.Mul(v.y, m)
	v.y.Sub(v.y, yyyy)
	v.y.Mod(v.y, p)
}

// jacAddMixed sets v = v + (ax, ay) in place, where (ax, ay) is an affine
// non-identity point. Handles the degenerate cases: v = O, v = A (doubling)
// and v = −A (result O).
func (c *Curve) jacAddMixed(v *jacPoint, ax, ay *big.Int, s *jacScratch) {
	if v.isInfinity() {
		v.setAffine(ax, ay)
		return
	}
	p := c.p
	zz := s.t1.Mul(v.z, v.z) // Z²
	zz.Mod(zz, p)
	u2 := s.t2.Mul(ax, zz) // U2 = x·Z²
	u2.Mod(u2, p)
	s2 := s.t3.Mul(ay, zz) // S2 = y·Z³
	s2.Mul(s2, v.z)
	s2.Mod(s2, p)

	h := u2.Sub(u2, v.x) // H = U2 − X
	h.Mod(h, p)
	r := s2.Sub(s2, v.y) // R = S2 − Y
	r.Mod(r, p)

	if h.Sign() == 0 {
		if r.Sign() == 0 {
			c.jacDouble(v, s) // same point: fall through to doubling
		} else {
			v.setInfinity() // opposite points: vertical line
		}
		return
	}

	hh := s.t4.Mul(h, h) // H²
	hh.Mod(hh, p)
	hhh := s.t5.Mul(hh, h) // H³
	hhh.Mod(hhh, p)
	xh2 := s.t6.Mul(v.x, hh) // X·H²
	xh2.Mod(xh2, p)

	// Z' = Z·H (before the rest clobbers scratch)
	v.z.Mul(v.z, h)
	v.z.Mod(v.z, p)

	// X' = R² − H³ − 2·X·H²
	v.x.Mul(r, r)
	v.x.Sub(v.x, hhh)
	v.x.Sub(v.x, xh2)
	v.x.Sub(v.x, xh2)
	v.x.Mod(v.x, p)

	// Y' = R·(X·H² − X') − Y·H³
	xh2.Sub(xh2, v.x)
	xh2.Mul(xh2, r)
	hhh.Mul(hhh, v.y)
	v.y.Sub(xh2, hhh)
	v.y.Mod(v.y, p)
}

// jacToAffine converts a single Jacobian point back to the immutable affine
// representation (one modular inversion).
func (c *Curve) jacToAffine(v *jacPoint) *Point {
	if v.isInfinity() {
		return c.Infinity()
	}
	zInv := new(big.Int).ModInverse(v.z, c.p)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, c.p)
	x := new(big.Int).Mul(v.x, zInv2)
	x.Mod(x, c.p)
	y := new(big.Int).Mul(v.y, zInv2)
	y.Mul(y, zInv)
	y.Mod(y, c.p)
	return &Point{curve: c, x: x, y: y}
}

// batchToAffine normalizes a batch of Jacobian points with Montgomery's
// simultaneous-inversion trick: prefix products of the Z coordinates, one
// ModInverse on the total, then back-substitution — n points for the price
// of one inversion and 3(n−1) multiplications.
func (c *Curve) batchToAffine(pts []*jacPoint) []*Point {
	out := make([]*Point, len(pts))
	prefix := make([]*big.Int, len(pts))
	acc := big.NewInt(1)
	for i, v := range pts {
		if v.isInfinity() {
			continue
		}
		prefix[i] = new(big.Int).Set(acc)
		acc = new(big.Int).Mul(acc, v.z)
		acc.Mod(acc, c.p)
	}
	accInv := new(big.Int).ModInverse(acc, c.p)
	for i := len(pts) - 1; i >= 0; i-- {
		v := pts[i]
		if v.isInfinity() {
			out[i] = c.Infinity()
			continue
		}
		// zInv = accInv · (product of the other points' Z so far)
		zInv := new(big.Int).Mul(accInv, prefix[i])
		zInv.Mod(zInv, c.p)
		accInv.Mul(accInv, v.z)
		accInv.Mod(accInv, c.p)

		zInv2 := prefix[i].Mul(zInv, zInv) // reuse prefix slot as scratch
		zInv2.Mod(zInv2, c.p)
		x := new(big.Int).Mul(v.x, zInv2)
		x.Mod(x, c.p)
		y := new(big.Int).Mul(v.y, zInv2)
		y.Mul(y, zInv)
		y.Mod(y, c.p)
		out[i] = &Point{curve: c, x: x, y: y}
	}
	return out
}

// Quickstart: the mediated Boneh-Franklin IBE in one file.
//
// It walks the paper's Section 4 lifecycle in-process: PKG setup, split key
// extraction, identity based encryption (no certificate lookup!), SEM-aided
// decryption, and instant revocation.
//
// Run: go run ./examples/quickstart
package main

import (
	"crypto/rand"
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pairing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Setup. The PKG picks the pairing groups and a master key.
	// "fast" = 128-bit group order over a 256-bit field; use pairing.Paper()
	// for the sizes the paper compares against 1024-bit RSA.
	pp, err := pairing.Fast()
	if err != nil {
		return err
	}
	const msgLen = 32
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, msgLen)
	if err != nil {
		return err
	}
	fmt.Println("PKG ready: P_pub published, master key kept secret")

	// 2. The SEM comes online, sharing a revocation registry.
	sem := core.NewIBESEM(pkg.Public(), core.NewRegistry())

	// 3. Enroll Bob: the PKG splits d_bob = d_user + d_sem; Bob gets one
	// half, the SEM the other. The PKG can now go offline.
	const bob = "bob@example.com"
	bobKey, semHalf, err := pkg.SplitExtract(rand.Reader, bob)
	if err != nil {
		return err
	}
	sem.Register(semHalf)
	fmt.Printf("enrolled %s (user half %d bytes, SEM half %d bytes)\n",
		bob, len(bobKey.D.Marshal()), len(semHalf.D.Marshal()))

	// 4. Alice encrypts to the *identity string* — no certificate, no
	// revocation check, nothing but the public parameters.
	msg := []byte("lunch at noon? bring the pairing")
	padded := make([]byte, msgLen)
	copy(padded, msg)
	ct, err := pkg.Public().Encrypt(rand.Reader, bob, padded)
	if err != nil {
		return err
	}
	fmt.Printf("Alice encrypted %d plaintext bytes into a %d-byte ciphertext\n",
		len(msg), len(ct.Marshal()))

	// 5. Bob decrypts: he asks the SEM for the message-specific token
	// ê(U, d_sem), pairs his own half, and opens the ciphertext.
	plain, err := core.Decrypt(sem, bobKey, ct)
	if err != nil {
		return err
	}
	fmt.Printf("Bob decrypted: %q\n", plain[:len(msg)]) //cryptolint:public (the demo prints the recovered plaintext by design)

	// 6. Bob leaves the company. One call — no CRL, no key reissue.
	sem.Registry().Revoke(bob, "left the company")
	fmt.Println("admin revoked bob@example.com")

	// 7. The very next decryption attempt fails: the SEM refuses the token.
	_, err = core.Decrypt(sem, bobKey, ct)
	switch {
	case errors.Is(err, core.ErrRevoked):
		fmt.Println("Bob can no longer decrypt: ", err)
	case err == nil:
		return errors.New("revocation did not take effect")
	default:
		return err
	}

	// 8. Alice never noticed: encryption still works identically — the
	// message will simply stay sealed unless Bob is reinstated.
	if _, err := pkg.Public().Encrypt(rand.Reader, bob, padded); err != nil {
		return err
	}
	fmt.Println("senders are oblivious to revocation — that is the SEM architecture")
	return nil
}

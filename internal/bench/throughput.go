package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bls"
	"repro/internal/curve"
	"repro/internal/sem"
)

// ThroughputConfig parameterizes the F3 experiment.
type ThroughputConfig struct {
	Clients  []int         // concurrency sweep
	Duration time.Duration // measurement window per cell
}

// DefaultThroughputConfig is the F3 sweep used by EXPERIMENTS.md.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{Clients: []int{1, 4, 16}, Duration: 500 * time.Millisecond}
}

// Throughput runs F3: sustained SEM-daemon token throughput per scheme at
// increasing client concurrency, over the real TCP protocol.
//
// Expected shape: per-op cost orders the schemes — the mRSA half-op (one
// modexp) and the GDH half-sign (one scalar multiplication) sit far above
// the IBE token (one pairing); throughput scales with clients until CPU
// saturation.
func Throughput(w *World, cfg ThroughputConfig) (*Table, error) {
	if w.Addr() == "" {
		return nil, fmt.Errorf("bench: throughput needs a running SEM server")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	msg := make([]byte, w.MsgLen)
	ct, err := w.IBEPKG.Public().Encrypt(rand.Reader, w.ID, msg)
	if err != nil {
		return nil, err
	}
	h, err := bls.HashMessage(w.Pairing, []byte("f3 throughput probe"))
	if err != nil {
		return nil, err
	}
	// The half-decryption op computes c^{d_sem} mod n for any residue, so a
	// random element of Z_n stands in for a real OAEP ciphertext (which
	// would not even fit the 512-bit quick-mode modulus).
	rsaInt, err := rand.Int(rand.Reader, w.RSAPub.N)
	if err != nil {
		return nil, err
	}

	// Batch fixtures: the same requests replicated batchK-wide, served as
	// one protocol-v2 frame per round trip.
	const batchK = 64
	ids := make([]string, batchK)
	us := make([]*curve.Point, batchK)
	hs := make([]*curve.Point, batchK)
	cts := make([]*big.Int, batchK)
	for i := 0; i < batchK; i++ {
		ids[i] = w.ID
		us[i] = ct.U
		hs[i] = h
		cts[i] = rsaInt
	}
	firstBatchErr := func(errs []error) error {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}

	workloads := []struct {
		name string
		ops  int // requests served per body call
		body func(c *sem.Client) error
	}{
		{"ibe-token", 1, func(c *sem.Client) error {
			_, err := c.IBEToken(w.ID, ct.U)
			return err
		}},
		{"gdh-half-sign", 1, func(c *sem.Client) error {
			_, err := c.GDHHalfSign(w.ID, h)
			return err
		}},
		{"rsa-half-sign", 1, func(c *sem.Client) error {
			_, err := c.RSAHalfSign(w.RSAPub, w.ID, msg)
			return err
		}},
		{"ibe-token-batch64", batchK, func(c *sem.Client) error {
			_, errs, err := c.TokenBatch(ids, us)
			if err != nil {
				return err
			}
			return firstBatchErr(errs)
		}},
		{"gdh-half-sign-batch64", batchK, func(c *sem.Client) error {
			_, errs, err := c.GDHHalfSignBatch(ids, hs)
			if err != nil {
				return err
			}
			return firstBatchErr(errs)
		}},
		{"rsa-half-dec-batch64", batchK, func(c *sem.Client) error {
			_, errs, err := c.RSAHalfDecryptBatch(w.RSAPub, ids, cts)
			if err != nil {
				return err
			}
			return firstBatchErr(errs)
		}},
	}

	var rows [][]string
	for _, wl := range workloads {
		for _, nClients := range cfg.Clients {
			opsPerSec, err := w.measure(wl.body, wl.ops, nClients, cfg.Duration)
			if err != nil {
				return nil, fmt.Errorf("%s @%d clients: %w", wl.name, nClients, err)
			}
			rows = append(rows, []string{
				wl.name,
				fmt.Sprintf("%d", nClients),
				fmt.Sprintf("%.0f", opsPerSec),
			})
		}
	}
	return &Table{
		ID:      "F3",
		Caption: "SEM daemon throughput over TCP vs concurrent clients",
		Columns: []string{"operation", "clients", "tokens/sec"},
		Rows:    rows,
		Notes: []string{
			"expected shape: rsa-half-sign ≥ gdh-half-sign ≫ ibe-token (pairing-bound); scaling with clients up to CPU saturation",
			"batch64 rows serve 64 requests per protocol-v2 frame; the rate counts individual requests, so batch ≫ single is the framing+batching win",
		},
	}, nil
}

// measure hammers the SEM with nClients concurrent connections for the
// window and returns the aggregate request rate; opsPerCall is the number
// of requests one body call serves (1 for single ops, k for k-batches).
func (w *World) measure(body func(*sem.Client) error, opsPerCall, nClients int, d time.Duration) (float64, error) {
	var ops atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		client, err := w.Dial()
		if err != nil {
			close(stop)
			wg.Wait()
			return 0, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { _ = client.Close() }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := body(client); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(int64(opsPerCall))
			}
		}()
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if v := firstErr.Load(); v != nil {
		return 0, v.(error)
	}
	return float64(ops.Load()) / elapsed.Seconds(), nil
}

package wire

import (
	"errors"
	"strings"
	"testing"
)

func TestReplRecordsRoundTrip(t *testing.T) {
	recs := []ReplRecord{
		{Epoch: 3, Seq: 41, Op: ReplOpRevoke, ID: "alice@example.com", Reason: "compromised", WhenUnixNano: 1700000000000000001},
		{Epoch: 3, Seq: 42, Op: ReplOpUnrevoke, ID: "bob@example.com", WhenUnixNano: -5}, // pre-epoch times must survive
		{Epoch: 4, Seq: 43, Op: ReplOpRevoke, ID: "", Reason: ""},                        // empty strings are legal
	}
	payload, err := AppendReplRecords(nil, 7, recs)
	if err != nil {
		t.Fatal(err)
	}
	leaderEpoch, got, err := ParseReplRecords(payload)
	if err != nil {
		t.Fatal(err)
	}
	if leaderEpoch != 7 {
		t.Errorf("leaderEpoch = %d, want 7", leaderEpoch)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	// An empty batch is legal (a heartbeat-shaped append).
	empty, err := AppendReplRecords(nil, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e, rs, err := ParseReplRecords(empty); err != nil || e != 9 || len(rs) != 0 {
		t.Errorf("empty batch: epoch %d, %d recs, %v", e, len(rs), err)
	}
}

func TestReplRecordsMalformed(t *testing.T) {
	good, err := AppendReplRecords(nil, 1, []ReplRecord{{Epoch: 1, Seq: 1, Op: ReplOpRevoke, ID: "a@x", Reason: "r"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short hdr":   good[:8],
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0xff),
		"count lies":  append([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 9}, good[12:]...),
		"string runs": func() []byte { b := append([]byte{}, good...); b[12+17] = 0xff; b[12+18] = 0xff; return b }(),
	}
	for name, data := range cases {
		if _, _, err := ParseReplRecords(data); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: error %v does not wrap ErrProtocol", name, err)
		}
	}
	// Oversized batch refused at encode time.
	if _, err := AppendReplRecords(nil, 1, make([]ReplRecord, MaxReplRecords+1)); err == nil {
		t.Error("oversized batch encoded")
	}
	// Oversized id refused at encode time.
	if _, err := AppendReplRecords(nil, 1, []ReplRecord{{ID: strings.Repeat("x", 1<<16)}}); err == nil {
		t.Error("oversized id encoded")
	}
}

func TestReplStatusRoundTrip(t *testing.T) {
	for _, st := range []ReplStatus{
		{Epoch: 12, LastSeq: 1 << 40},
		{Epoch: 3, LastSeq: 7, Leader: true},
	} {
		got, err := ParseReplStatus(PackReplStatus(st))
		if err != nil {
			t.Fatal(err)
		}
		if got != st {
			t.Errorf("status = %+v, want %+v", got, st)
		}
	}
	// The 16-byte pre-leader-flag form still parses (Leader false), so a
	// mixed-version fleet keeps replicating through a rolling upgrade.
	legacy, err := ParseReplStatus(PackReplStatus(ReplStatus{Epoch: 2, LastSeq: 9})[:16])
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Leader || legacy.Epoch != 2 || legacy.LastSeq != 9 {
		t.Errorf("legacy status = %+v, want epoch 2, seq 9, leader false", legacy)
	}
	for _, n := range []int{0, 15, 18} {
		if _, err := ParseReplStatus(make([]byte, n)); !errors.Is(err, ErrProtocol) {
			t.Errorf("%d-byte status: err = %v, want ErrProtocol", n, err)
		}
	}
}

func TestReplSnapshotChunkRoundTrip(t *testing.T) {
	c := &ReplSnapshotChunk{
		Epoch:   2,
		BaseSeq: 99,
		Total:   5,
		Index:   1,
		Chunks:  3,
		Entries: []ReplEntry{
			{ID: "a@x", Reason: "one", WhenUnixNano: 111},
			{ID: "b@x", Reason: "", WhenUnixNano: 222},
		},
	}
	payload, err := MarshalReplSnapshotChunk(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseReplSnapshotChunk(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != c.Epoch || got.BaseSeq != c.BaseSeq || got.Total != c.Total ||
		got.Index != c.Index || got.Chunks != c.Chunks || len(got.Entries) != len(c.Entries) {
		t.Fatalf("chunk = %+v, want %+v", got, c)
	}
	for i := range c.Entries {
		if got.Entries[i] != c.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got.Entries[i], c.Entries[i])
		}
	}
	// An empty chunk (empty fleet state) still carries its header.
	ec := &ReplSnapshotChunk{Epoch: 1, BaseSeq: 0, Chunks: 1}
	if b, err := MarshalReplSnapshotChunk(ec); err != nil {
		t.Fatal(err)
	} else if got, err := ParseReplSnapshotChunk(b); err != nil || len(got.Entries) != 0 {
		t.Errorf("empty chunk: %+v, %v", got, err)
	}
}

func TestReplSnapshotChunkMalformed(t *testing.T) {
	good, err := MarshalReplSnapshotChunk(&ReplSnapshotChunk{
		Epoch: 1, Chunks: 1, Total: 1,
		Entries: []ReplEntry{{ID: "a@x", Reason: "r", WhenUnixNano: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short hdr": good[:20],
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte{}, good...), 1),
	}
	for name, data := range cases {
		if _, err := ParseReplSnapshotChunk(data); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: error %v does not wrap ErrProtocol", name, err)
		}
	}
	// Index outside Chunks refused both ways.
	if _, err := MarshalReplSnapshotChunk(&ReplSnapshotChunk{Chunks: 2, Index: 2}); err == nil {
		t.Error("bad index encoded")
	}
	bad := append([]byte{}, good...)
	bad[24], bad[25], bad[26], bad[27] = 0, 0, 0, 0 // chunks = 0
	if _, err := ParseReplSnapshotChunk(bad); !errors.Is(err, ErrProtocol) {
		t.Errorf("chunks=0: err = %v, want ErrProtocol", err)
	}
}

package bench

import (
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pairing"
	"repro/internal/sem"
)

// Serving-layer baseline entries: the token-op hot path measured through
// the three client transports against a local semd-style fleet —
//
//	sem.token.conn.c32     32 callers sharing one mutex-serialized Client
//	sem.token.pooled.c32   32 callers sharing one sem.Pool (coalesced frames)
//	cluster.token.shard1.c32  sharded client over a 1-shard fleet
//	cluster.token.shard4.c32  sharded client over a 4-shard fleet
//
// All run at toy parameters with Workers=1 per shard, so the numbers
// isolate the serving layer (framing, syscalls, scheduling) rather than
// pairing arithmetic, and stay meaningful on a single-core host — where
// shard scaling measures routing overhead, not parallel speedup.

// servingConcurrency is the closed-loop caller count for every entry.
const servingConcurrency = 32

// servingFleet is a local multi-shard SEM deployment for transport
// benchmarks: every shard serves the same identity set, so any routing is
// valid.
type servingFleet struct {
	pp      *pairing.Params
	ids     []string
	addrs   []string
	servers []*sem.Server
}

func newServingFleet(nShards, nIDs int) (*servingFleet, error) {
	pp, err := pairing.Toy()
	if err != nil {
		return nil, err
	}
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, 32)
	if err != nil {
		return nil, err
	}
	f := &servingFleet{pp: pp}
	halves := make([]*core.SEMKeyHalf, nIDs)
	for i := 0; i < nIDs; i++ {
		id := fmt.Sprintf("bench%03d@serving", i)
		_, half, err := pkg.SplitExtract(rand.Reader, id)
		if err != nil {
			return nil, err
		}
		f.ids = append(f.ids, id)
		halves[i] = half
	}
	for s := 0; s < nShards; s++ {
		reg := core.NewRegistry()
		ibe := core.NewIBESEM(pkg.Public(), reg)
		for _, h := range halves {
			ibe.Register(h)
		}
		srv, err := sem.NewServer(sem.Config{
			Registry: reg,
			IBE:      ibe,
			Pairing:  pp,
			Workers:  1,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		go func() { _ = srv.Serve(ln) }()
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, ln.Addr().String())
	}
	return f, nil
}

func (f *servingFleet) Close() {
	for _, s := range f.servers {
		_ = s.Close()
	}
}

// closedLoop drives op from servingConcurrency workers for the window and
// returns (total ops, wall ns/op). Worker w cycles through the identity
// set starting at a w-dependent offset so the per-identity pairing caches
// see realistic mixed traffic.
func (f *servingFleet) closedLoop(d time.Duration, op func(id string) error) (int64, float64, error) {
	// Warm-up: dials, v2 negotiation and cache fills stay out of the window.
	for i := 0; i < servingConcurrency; i++ {
		if err := op(f.ids[i%len(f.ids)]); err != nil {
			return 0, 0, err
		}
	}
	var ops atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < servingConcurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := op(f.ids[i%len(f.ids)]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if v := firstErr.Load(); v != nil {
		return 0, 0, v.(error)
	}
	n := ops.Load()
	if n == 0 {
		return 0, 0, fmt.Errorf("bench: no serving ops completed in %v", d)
	}
	return n, float64(elapsed.Nanoseconds()) / float64(n), nil
}

// ServingEntries measures the serving-layer transports and returns
// baseline entries (ns per token op at 32-way concurrency, wall-clock
// aggregate). window is the per-entry measurement window.
func ServingEntries(window time.Duration) ([]BaselineEntry, error) {
	if window <= 0 {
		window = 500 * time.Millisecond
	}
	fleet, err := newServingFleet(4, 64)
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	u := fleet.pp.Generator()

	var entries []BaselineEntry
	add := func(name string, op func(id string) error) error {
		n, nsPerOp, err := fleet.closedLoop(window, op)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		entries = append(entries, BaselineEntry{Name: name, NsPerOp: nsPerOp, Iters: int(n)})
		return nil
	}

	// Single mutex-serialized connection shared by every caller — the
	// pre-pool hot path, kept as the comparison point.
	client, err := sem.Dial(fleet.addrs[0], fleet.pp, 5*time.Second)
	if err != nil {
		return nil, err
	}
	err = add("sem.token.conn.c32", func(id string) error {
		_, err := client.IBEToken(id, u)
		return err
	})
	_ = client.Close()
	if err != nil {
		return nil, err
	}

	// Multiplexed pool (default size): callers coalesce into shared frames.
	pool := sem.NewPool(fleet.addrs[0], fleet.pp, sem.PoolConfig{})
	err = add("sem.token.pooled.c32", func(id string) error {
		_, err := pool.IBEToken(id, u)
		return err
	})
	_ = pool.Close()
	if err != nil {
		return nil, err
	}

	// Sharded client over 1 and 4 shards: the shard-scaling curve. On a
	// multi-core host the 4-shard number shows near-linear scaling; on one
	// core it measures pure routing overhead.
	for _, nShards := range []int{1, 4} {
		sc, err := sem.NewShardedClient(fleet.addrs[:nShards], fleet.pp, sem.ShardedConfig{})
		if err != nil {
			return nil, err
		}
		err = add(fmt.Sprintf("cluster.token.shard%d.c32", nShards), func(id string) error {
			_, err := sc.IBEToken(id, u)
			return err
		})
		_ = sc.Close()
		if err != nil {
			return nil, err
		}
	}
	return entries, nil
}

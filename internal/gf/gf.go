// Package gf implements arithmetic in the quadratic extension field F_p²
// with p ≡ 3 (mod 4), represented as F_p[i]/(i² + 1).
//
// Elements are pairs (a, b) denoting a + b·i with a, b ∈ F_p. The pairing
// substrate evaluates Miller line functions in this field and the target
// group GT of the modified Tate pairing is its order-q subgroup.
//
// Coordinates are stored as Montgomery-form limb vectors backed by
// internal/fp, so the tower multiplications run on raw uint64 arithmetic
// with zero heap allocations; *big.Int appears only at the edges
// (construction, serialization, String) where values enter or leave the
// field. Because inversion is Fermat-based in the limb backend, the modulus
// handed to NewField must be prime — every caller in this repository
// constructs fields over the primes produced by param generation.
//
// All operations are immutable with respect to their operands: methods on
// *Element write into the receiver and return it (math/big style), so
// chains like e.Mul(x, y).Square(e) work, and no method retains references
// to argument internals.
//
//cryptolint:vartime (big.Int extension-field backend; the constant-time GT path is the fp limb backend)
package gf

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/fp"
)

// ErrNotInvertible is returned when inverting the zero element.
var ErrNotInvertible = errors.New("gf: zero element is not invertible")

// Field describes F_p² for a fixed prime p ≡ 3 (mod 4). A Field value is
// immutable after construction and safe for concurrent use.
type Field struct {
	p    *big.Int  //cryptolint:public (field parameters)
	fp   *fp.Field //cryptolint:public (field parameters)
	size int       // bytes per serialized coordinate
	one  []uint64  // 1 in Montgomery form, for SquareUnitary
}

// NewField constructs the quadratic extension over the prime p.
// It returns an error unless p ≡ 3 (mod 4) (needed for i² = −1 to define a
// field: −1 must be a non-residue). Primality itself is the caller's
// contract — inversion is computed as a Fermat power x^(p−2).
func NewField(p *big.Int) (*Field, error) {
	if p.Sign() <= 0 {
		return nil, fmt.Errorf("gf: modulus must be positive")
	}
	if p.Bit(0) != 1 || p.Bit(1) != 1 {
		return nil, fmt.Errorf("gf: modulus must be ≡ 3 (mod 4), got %v (mod 4)", new(big.Int).Mod(p, big.NewInt(4)))
	}
	base, err := fp.New(p)
	if err != nil {
		return nil, fmt.Errorf("gf: %w", err)
	}
	f := &Field{
		p:    new(big.Int).Set(p),
		fp:   base,
		size: (p.BitLen() + 7) / 8,
		one:  base.NewElt(),
	}
	base.SetOne(f.one)
	return f, nil
}

// P returns (a copy of) the characteristic. Each call allocates; hot loops
// should hold the limb-level field from Fp instead.
func (f *Field) P() *big.Int { return new(big.Int).Set(f.p) }

// Fp exposes the Montgomery limb backend for the base field F_p. The
// pairing Miller loop computes its line coefficients there and injects them
// via SetMont, bypassing big.Int entirely.
func (f *Field) Fp() *fp.Field { return f.fp }

// Element is an element a + b·i of F_p², coordinates in Montgomery form.
// The zero value is usable as the receiver of any arithmetic method
// (storage is adopted from the operands' field on first use).
type Element struct {
	f    *Field
	a, b []uint64
}

// ensure makes the receiver's coordinate storage usable so the arithmetic
// methods can compute in place. The Miller loop and GT exponentiation call
// these methods millions of times; reusing receiver storage removes all
// per-op allocation after the first touch.
func (e *Element) ensure(f *Field) {
	n := f.fp.Limbs()
	if len(e.a) != n {
		e.a = make([]uint64, n)
	}
	if len(e.b) != n {
		e.b = make([]uint64, n)
	}
	e.f = f
}

// NewElement builds the element a + b·i (values are reduced mod p and copied).
func (f *Field) NewElement(a, b *big.Int) *Element {
	e := new(Element)
	return f.SetElement(e, a, b)
}

// Zero returns the additive identity.
func (f *Field) Zero() *Element {
	e := new(Element)
	e.ensure(f)
	return e
}

// One returns the multiplicative identity.
func (f *Field) One() *Element {
	e := f.Zero()
	f.fp.Set(e.a, f.one)
	return e
}

// FromInt lifts an F_p element into F_p².
func (f *Field) FromInt(a *big.Int) *Element { return f.NewElement(a, big.NewInt(0)) }

// SetElement loads (a mod p) + (b mod p)·i into e, reusing e's existing
// coordinate storage when present.
func (f *Field) SetElement(e *Element, a, b *big.Int) *Element {
	e.ensure(f)
	f.setCoord(e.a, a)
	f.setCoord(e.b, b)
	return e
}

func (f *Field) setCoord(dst []uint64, v *big.Int) {
	if v.Sign() < 0 || v.Cmp(f.p) >= 0 {
		v = new(big.Int).Mod(v, f.p)
	}
	// In range after the reduction above, so FromBig cannot fail; the
	// second reduction is defensive (keeps this path panic-free).
	if err := f.fp.FromBig(dst, v); err != nil {
		f.fp.SetZero(dst)
	}
}

// SetMont loads the Montgomery-form F_p coordinates (re, im) into e. This
// is the zero-conversion entry point for limb-level producers such as the
// pairing line evaluator; the slices are copied, not retained.
func (f *Field) SetMont(e *Element, re, im []uint64) *Element {
	e.ensure(f)
	f.fp.Set(e.a, re)
	f.fp.Set(e.b, im)
	return e
}

// Field returns the field the element belongs to.
func (e *Element) Field() *Field { return e.f }

// Re returns a copy of the real coordinate. Each call converts out of
// Montgomery form and allocates; not for hot loops.
func (e *Element) Re() *big.Int { return e.f.fp.ToBig(e.a) }

// Im returns a copy of the imaginary coordinate (same cost caveat as Re).
func (e *Element) Im() *big.Int { return e.f.fp.ToBig(e.b) }

// Copy returns an independent copy of e.
func (e *Element) Copy() *Element {
	c := new(Element)
	return c.Set(e)
}

// Set copies x into e and returns e.
func (e *Element) Set(x *Element) *Element {
	e.ensure(x.f)
	x.f.fp.Set(e.a, x.a)
	x.f.fp.Set(e.b, x.b)
	return e
}

// IsZero reports whether e is the additive identity.
func (e *Element) IsZero() bool { return e.f.fp.IsZero(e.a) && e.f.fp.IsZero(e.b) }

// IsOne reports whether e is the multiplicative identity.
func (e *Element) IsOne() bool { return e.f.fp.IsOne(e.a) && e.f.fp.IsZero(e.b) }

// Equal reports whether e and x denote the same field element.
func (e *Element) Equal(x *Element) bool {
	return e.f.fp.Equal(e.a, x.a) && e.f.fp.Equal(e.b, x.b)
}

// Add sets e = x + y and returns e. The coordinate-wise operations are
// aliasing-safe (each output coordinate depends only on the matching input
// coordinates), so the receiver's storage is reused directly.
func (e *Element) Add(x, y *Element) *Element {
	f := x.f
	e.ensure(f)
	f.fp.Add(e.a, x.a, y.a)
	f.fp.Add(e.b, x.b, y.b)
	return e
}

// Sub sets e = x − y and returns e.
func (e *Element) Sub(x, y *Element) *Element {
	f := x.f
	e.ensure(f)
	f.fp.Sub(e.a, x.a, y.a)
	f.fp.Sub(e.b, x.b, y.b)
	return e
}

// Neg sets e = −x and returns e.
func (e *Element) Neg(x *Element) *Element {
	f := x.f
	e.ensure(f)
	f.fp.Neg(e.a, x.a)
	f.fp.Neg(e.b, x.b)
	return e
}

// Mul sets e = x · y and returns e. The tower multiplication is Karatsuba
// over the limb backend (three base-field multiplications, with lazy
// reduction when the modulus leaves headroom in its top limb).
func (e *Element) Mul(x, y *Element) *Element {
	f := x.f
	e.ensure(f)
	f.fp.MulFp2(e.a, e.b, x.a, x.b, y.a, y.b)
	return e
}

// MulScalar sets e = k · x for k ∈ F_p and returns e.
func (e *Element) MulScalar(x *Element, k *big.Int) *Element {
	f := x.f
	e.ensure(f)
	var buf [fp.MaxLimbs]uint64
	km := buf[:f.fp.Limbs()]
	f.setCoord(km, k)
	f.fp.Mul(e.a, x.a, km)
	f.fp.Mul(e.b, x.b, km)
	return e
}

// Square sets e = x² and returns e, using (a+bi)² = (a+b)(a−b) + 2ab·i.
func (e *Element) Square(x *Element) *Element {
	f := x.f
	e.ensure(f)
	f.fp.SquareFp2(e.a, e.b, x.a, x.b)
	return e
}

// SquareUnitary sets e = x² for a *unitary* x (norm a² + b² = 1, e.g. any
// value of the form y^(p−1) = conj(y)/y, which is what a pairing final
// exponentiation produces after its easy part) and returns e. The norm
// relation collapses the square to
//
//	(a + bi)² = (2a² − 1) + ((a + b)² − 1)·i,
//
// two base-field squarings instead of the three multiplications of Square.
// The caller must guarantee unitarity; for a general x the result is
// simply wrong.
func (e *Element) SquareUnitary(x *Element) *Element {
	f := x.f
	e.ensure(f)
	var t1, t2 [fp.MaxLimbs]uint64
	n := f.fp.Limbs()
	aa, s := t1[:n], t2[:n]
	f.fp.Square(aa, x.a)
	f.fp.Double(aa, aa)
	f.fp.Sub(aa, aa, f.one)
	f.fp.Add(s, x.a, x.b)
	f.fp.Square(s, s)
	f.fp.Sub(s, s, f.one)
	f.fp.Set(e.a, aa)
	f.fp.Set(e.b, s)
	return e
}

// Conjugate sets e = a − b·i for x = a + b·i and returns e. Conjugation is
// the Frobenius map x ↦ x^p on F_p².
func (e *Element) Conjugate(x *Element) *Element {
	f := x.f
	e.ensure(f)
	f.fp.Set(e.a, x.a)
	f.fp.Neg(e.b, x.b)
	return e
}

// Inverse sets e = x⁻¹ and returns e, via x⁻¹ = conj(x)/(a² + b²).
// It returns ErrNotInvertible for x = 0.
//
// The norm inversion is variable-time (binary extended GCD), as it always
// has been in this package — F_p² inversion happens on public pairing
// values (final exponentiation, GT division). Code inverting secret
// residues should use fp.Field.Inv, the constant-exponent Fermat ladder.
func (e *Element) Inverse(x *Element) (*Element, error) {
	if x.IsZero() {
		return nil, ErrNotInvertible
	}
	f := x.f
	var t1, t2 [fp.MaxLimbs]uint64
	n := f.fp.Limbs()
	norm, bb := t1[:n], t2[:n]
	f.fp.Square(norm, x.a)
	f.fp.Square(bb, x.b)
	f.fp.Add(norm, norm, bb)
	if err := f.fp.InvVarTime(norm, norm); err != nil {
		return nil, ErrNotInvertible
	}
	e.ensure(f)
	f.fp.Mul(bb, x.b, norm) // before e.a is written: e may alias x
	f.fp.Mul(e.a, x.a, norm)
	f.fp.Neg(e.b, bb)
	return e, nil
}

// Exp sets e = x^k (k ≥ 0) and returns e, by square-and-multiply.
// A negative k is rejected; invert first when needed.
func (e *Element) Exp(x *Element, k *big.Int) (*Element, error) {
	if k.Sign() < 0 {
		return nil, errors.New("gf: negative exponent")
	}
	result := x.f.One()
	base := x.Copy()
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			result.Mul(result, base)
		}
		base.Square(base)
	}
	return e.Set(result), nil
}

// String renders the element as "a + b·i" for debugging.
func (e *Element) String() string {
	return fmt.Sprintf("%v + %v·i", e.Re(), e.Im())
}

// Bytes serializes the element as the fixed-width big-endian concatenation
// a ‖ b, each ⌈|p|/8⌉ bytes.
func (e *Element) Bytes() []byte {
	size := e.f.size
	out := make([]byte, 2*size)
	e.Re().FillBytes(out[:size])
	e.Im().FillBytes(out[size:])
	return out
}

// ElementFromBytes parses the serialization produced by Element.Bytes.
func (f *Field) ElementFromBytes(data []byte) (*Element, error) {
	size := f.size
	if len(data) != 2*size {
		return nil, fmt.Errorf("gf: element encoding must be %d bytes, got %d", 2*size, len(data))
	}
	a := new(big.Int).SetBytes(data[:size])
	b := new(big.Int).SetBytes(data[size:])
	if a.Cmp(f.p) >= 0 || b.Cmp(f.p) >= 0 {
		return nil, fmt.Errorf("gf: coordinate out of field range")
	}
	return f.NewElement(a, b), nil
}

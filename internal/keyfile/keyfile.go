// Package keyfile defines the JSON artifacts the command-line tools
// exchange: cmd/pkgen writes them at enrollment time, cmd/semd loads the
// SEM store, and cmd/medcli loads a user's credentials. Binary values are
// []byte fields (base64 in JSON); points use the compressed encoding.
//
// Layout produced by pkgen for a deployment directory:
//
//	system.json         — public parameters (everyone)
//	sem-store.json      — every identity's SEM key halves (semd only)
//	users/<id>.json     — one user's private halves (that user only)
package keyfile

import (
	"encoding/json"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bf"
	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/mrsa"
	"repro/internal/pairing"
)

// System is the public side of a deployment.
type System struct {
	// ParamSet names the fixed pairing parameter set ("toy", "fast",
	// "paper").
	ParamSet string `json:"paramSet"`
	// MsgLen is the IBE plaintext length in bytes.
	MsgLen int `json:"msgLen"`
	// PPub is the compressed Boneh-Franklin system key s·P.
	PPub []byte `json:"ppub"`
	// RSAModulus is the IB-mRSA common modulus (big-endian).
	RSAModulus []byte `json:"rsaModulus,omitempty"`
	// GDHKeys maps identities to their compressed GDH public keys R.
	GDHKeys map[string][]byte `json:"gdhKeys,omitempty"`
}

// SEMStore is the mediator's key material for all identities.
//
//cryptolint:secret
type SEMStore struct {
	// IBE maps identity → compressed d_ID,sem.
	IBE map[string][]byte `json:"ibe,omitempty"`
	// GDH maps identity → x_sem (big-endian scalar).
	GDH map[string][]byte `json:"gdh,omitempty"`
	// RSA maps identity → d_sem (big-endian).
	RSA map[string][]byte `json:"rsa,omitempty"`
}

// User is one user's private credential file.
//
//cryptolint:secret
type User struct {
	ID string `json:"id"`
	// IBEHalf is the compressed d_ID,user.
	IBEHalf []byte `json:"ibeHalf,omitempty"`
	// GDHHalf is x_user (big-endian scalar).
	GDHHalf []byte `json:"gdhHalf,omitempty"`
	// GDHPublic is the compressed combined public key R.
	GDHPublic []byte `json:"gdhPublic,omitempty"`
	// RSAHalf is d_user (big-endian).
	RSAHalf []byte `json:"rsaHalf,omitempty"`
}

// Save writes v as indented JSON with owner-only permissions for private
// material.
func Save(path string, v any, private bool) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("encode %s: %w", path, err)
	}
	mode := os.FileMode(0o644)
	if private {
		mode = 0o600
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("create directory for %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), mode); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

// Load reads a JSON artifact into v.
func Load(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	return nil
}

// UserFileName maps an identity to its credential file name (identities
// may contain '/' or other separators).
func UserFileName(id string) string {
	repl := strings.NewReplacer("/", "_", "\\", "_", ":", "_", "@", "_at_")
	return repl.Replace(id) + ".json"
}

// Params resolves the system's pairing parameter set.
func (s *System) Params() (*pairing.Params, error) {
	return pairing.ByName(s.ParamSet)
}

// PublicParams rebuilds the Boneh-Franklin public parameters.
func (s *System) PublicParams() (*bf.PublicParams, error) {
	pp, err := s.Params()
	if err != nil {
		return nil, err
	}
	ppub, err := pp.Curve().Unmarshal(s.PPub)
	if err != nil {
		return nil, fmt.Errorf("system P_pub: %w", err)
	}
	return &bf.PublicParams{Pairing: pp, PPub: ppub, MsgLen: s.MsgLen}, nil
}

// RSAPublicKey returns the IB-mRSA public key for an identity.
func (s *System) RSAPublicKey(id string) (*mrsa.PublicKey, error) {
	if len(s.RSAModulus) == 0 {
		return nil, fmt.Errorf("keyfile: system has no RSA modulus")
	}
	return &mrsa.PublicKey{
		N: new(big.Int).SetBytes(s.RSAModulus), //cryptolint:public (sanctioned keyfile serialization edge; the modulus is public)
		E: mrsa.IdentityExponent(id),
	}, nil
}

// GDHPublicKey returns an identity's GDH verification key.
func (s *System) GDHPublicKey(id string) (*bls.PublicKey, error) {
	raw, ok := s.GDHKeys[id]
	if !ok {
		return nil, fmt.Errorf("keyfile: no GDH key for %q", id)
	}
	pp, err := s.Params()
	if err != nil {
		return nil, err
	}
	r, err := pp.Curve().Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("GDH key for %q: %w", id, err)
	}
	return &bls.PublicKey{Pairing: pp, R: r}, nil
}

// IBEUserKey decodes the user's IBE half.
func (u *User) IBEUserKey(pp *pairing.Params) (*core.UserKeyHalf, error) {
	if len(u.IBEHalf) == 0 {
		return nil, fmt.Errorf("keyfile: user %q has no IBE half", u.ID)
	}
	d, err := pp.Curve().Unmarshal(u.IBEHalf)
	if err != nil {
		return nil, fmt.Errorf("IBE half for %q: %w", u.ID, err)
	}
	return &core.UserKeyHalf{ID: u.ID, D: d}, nil
}

// GDHUserKey decodes the user's GDH half plus combined public key.
func (u *User) GDHUserKey(pp *pairing.Params) (*core.GDHUserKey, error) {
	if len(u.GDHHalf) == 0 || len(u.GDHPublic) == 0 {
		return nil, fmt.Errorf("keyfile: user %q has no GDH material", u.ID)
	}
	r, err := pp.Curve().Unmarshal(u.GDHPublic)
	if err != nil {
		return nil, fmt.Errorf("GDH public for %q: %w", u.ID, err)
	}
	return &core.GDHUserKey{
		ID:     u.ID,
		X:      new(big.Int).SetBytes(u.GDHHalf), //cryptolint:public (sanctioned keyfile serialization edge)
		Public: &bls.PublicKey{Pairing: pp, R: r},
	}, nil
}

// RSAUserKey decodes the user's mRSA half bound to the system modulus.
func (u *User) RSAUserKey(sys *System) (*mrsa.HalfKey, error) {
	if len(u.RSAHalf) == 0 {
		return nil, fmt.Errorf("keyfile: user %q has no RSA half", u.ID)
	}
	if len(sys.RSAModulus) == 0 {
		return nil, fmt.Errorf("keyfile: system has no RSA modulus")
	}
	return &mrsa.HalfKey{
		N:    new(big.Int).SetBytes(sys.RSAModulus), //cryptolint:public (sanctioned keyfile serialization edge; the modulus is public)
		Half: new(big.Int).SetBytes(u.RSAHalf),      //cryptolint:public (sanctioned keyfile serialization edge)
	}, nil
}

// BuildSEMs reconstructs the three SEM backends from a store, all sharing
// one registry — what cmd/semd runs at startup.
func (st *SEMStore) BuildSEMs(sys *System, reg *core.Registry) (*core.IBESEM, *core.GDHSEM, *core.RSASEM, error) {
	pub, err := sys.PublicParams()
	if err != nil {
		return nil, nil, nil, err
	}
	pp := pub.Pairing

	ibe := core.NewIBESEM(pub, reg)
	for id, raw := range st.IBE {
		d, err := pp.Curve().Unmarshal(raw)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("SEM IBE half for %q: %w", id, err) //cryptolint:public (the identity label, not the key half)
		}
		ibe.Register(&core.SEMKeyHalf{ID: id, D: d})
	}
	gdh := core.NewGDHSEM(pp, reg)
	for id, raw := range st.GDH {
		gdh.Register(&core.GDHSEMKey{ID: id, X: new(big.Int).SetBytes(raw)}) //cryptolint:public (sanctioned keyfile serialization edge)
	}
	var rsa *core.RSASEM
	if len(st.RSA) > 0 {
		if len(sys.RSAModulus) == 0 {
			return nil, nil, nil, fmt.Errorf("keyfile: SEM store has RSA halves but system has no modulus")
		}
		rsa = core.NewRSASEM(reg)
		n := new(big.Int).SetBytes(sys.RSAModulus) //cryptolint:public (sanctioned keyfile serialization edge; the modulus is public)
		for id, raw := range st.RSA {
			rsa.Register(id, &mrsa.HalfKey{N: new(big.Int).Set(n), Half: new(big.Int).SetBytes(raw)}) //cryptolint:public (sanctioned keyfile serialization edge)
		}
	}
	return ibe, gdh, rsa, nil
}

// Package randbad exercises the randsource positive cases.
package randbad

import (
	"math/rand" // want `import of math/rand in crypto package repro/internal/randbad`
	"time"
)

type source struct{ r *rand.Rand }

// Nonce draws from the banned generator.
func Nonce() int64 {
	return rand.Int63()
}

// Reseed seeds from the clock.
func Reseed(s *rand.Rand) {
	s.Seed(time.Now().UnixNano()) // want `randomness seeded from time.Now`
}

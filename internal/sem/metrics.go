package sem

import (
	"time"

	"repro/internal/curve"
	"repro/internal/obs"
	"repro/internal/pairing"
	"repro/internal/parallel"
)

// Metric naming (see DESIGN.md §8): the server exports under the sem_
// prefix, the client under semclient_, and every per-op series carries an
// op="..." label whose value is the wire op name. Label values are always
// protocol constants — never identities, reasons or payloads — so no
// request-controlled (or secret-tainted) data can reach the metric
// namespace.

// knownOps enumerates every protocol operation, for per-op series
// registration. Requests with an op outside this set (rejected as
// CodeBadRequest) account under op="other".
var knownOps = []Op{
	OpIBEToken, OpGDHSign, OpRSADecrypt, OpRSASign, OpGMDecrypt,
	OpRevoke, OpUnrevoke, OpStatus, OpList, OpPing,
	OpRegisterIBE, OpRegisterGDH,
	OpReplAppend, OpReplSnapshot, OpReplStatus,
}

// knownCodes enumerates the protocol error codes for the error-mix
// counters.
var knownCodes = []ErrorCode{
	CodeRevoked, CodeUnknownIdentity, CodeBadRequest, CodeUnsupported, CodeInternal,
	CodeStaleEpoch, CodeSeqGap, CodeNotLeader,
}

// serverMetrics is the SEM daemon's instrumentation. All series are
// registered at server construction; the per-request record path is two
// map lookups and a handful of atomic adds — no locks, no allocation
// (asserted by TestServerRecordPathZeroAlloc).
type serverMetrics struct {
	requests map[Op]*obs.Counter        // sem_requests_total{op=...}
	latency  map[Op]*obs.Histogram      // sem_service_seconds{op=...}
	errors   map[ErrorCode]*obs.Counter // sem_errors_total{code=...}
	otherReq *obs.Counter
	otherLat *obs.Histogram
	otherErr *obs.Counter
	inflight *obs.Gauge // sem_inflight_requests

	connV1    *obs.Counter        // sem_connections_total{version="1"}
	connV2    *obs.Counter        // sem_connections_total{version="2"}
	batchSize *obs.ValueHistogram // sem_batch_size
	rxBytes   *obs.ValueHistogram // sem_frame_bytes{dir="rx"}
	txBytes   *obs.ValueHistogram // sem_frame_bytes{dir="tx"}
}

// newServerMetrics registers the server's series. reg may be nil (the
// metrics stay live but unexported). The queue-depth, connection-count and
// cache gauges are function-backed: they sample the server at scrape time
// instead of adding bookkeeping to the serving path.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		requests: make(map[Op]*obs.Counter, len(knownOps)),
		latency:  make(map[Op]*obs.Histogram, len(knownOps)),
		errors:   make(map[ErrorCode]*obs.Counter, len(knownCodes)),
	}
	for _, op := range knownOps {
		l := obs.Label{Key: "op", Value: string(op)}
		m.requests[op] = reg.Counter("sem_requests_total", "requests dispatched, by protocol op", l)
		m.latency[op] = reg.Histogram("sem_service_seconds", "request service time (dispatch, excluding queue wait)", l)
	}
	other := obs.Label{Key: "op", Value: "other"}
	m.otherReq = reg.Counter("sem_requests_total", "requests dispatched, by protocol op", other)
	m.otherLat = reg.Histogram("sem_service_seconds", "request service time (dispatch, excluding queue wait)", other)
	for _, code := range knownCodes {
		m.errors[code] = reg.Counter("sem_errors_total", "failed requests, by protocol error code",
			obs.Label{Key: "code", Value: string(code)})
	}
	m.otherErr = reg.Counter("sem_errors_total", "failed requests, by protocol error code",
		obs.Label{Key: "code", Value: "other"})
	m.inflight = reg.Gauge("sem_inflight_requests", "requests currently executing in the worker pool")

	m.connV1 = reg.Counter("sem_connections_total", "accepted client connections, by protocol version",
		obs.Label{Key: "version", Value: "1"})
	m.connV2 = reg.Counter("sem_connections_total", "accepted client connections, by protocol version",
		obs.Label{Key: "version", Value: "2"})
	m.batchSize = reg.ValueHistogram("sem_batch_size", "ops per received v2 frame")
	m.rxBytes = reg.ValueHistogram("sem_frame_bytes", "protocol frame sizes in bytes, by direction",
		obs.Label{Key: "dir", Value: "rx"})
	m.txBytes = reg.ValueHistogram("sem_frame_bytes", "protocol frame sizes in bytes, by direction",
		obs.Label{Key: "dir", Value: "tx"})

	reg.GaugeFunc("sem_queue_depth", "requests waiting in the worker-pool queue",
		func() int64 { return int64(len(s.jobs)) })
	reg.GaugeFunc("sem_open_connections", "live client connections",
		func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.conns))
		})
	reg.Gauge("sem_workers", "size of the request-execution pool").Set(int64(s.cfg.Workers))

	if s.cfg.IBE != nil {
		s.cfg.IBE.InstrumentPairerCache(reg)
	}
	pairing.RegisterEngineMetrics(reg)
	curve.RegisterMSMMetrics(reg)
	parallel.RegisterPoolMetrics(reg)
	return m
}

// connects counts one accepted connection of the given protocol version.
func (m *serverMetrics) connects(version int) {
	if m == nil {
		return
	}
	if version == 2 {
		m.connV2.Inc()
		return
	}
	m.connV1.Inc()
}

// batch records the item count of one received v2 frame.
func (m *serverMetrics) batch(n int) {
	if m == nil {
		return
	}
	m.batchSize.Observe(n)
}

// frameRx records the wire size of one received frame (0, from a failed
// read, records nothing).
func (m *serverMetrics) frameRx(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.rxBytes.Observe(n)
}

// frameTx records the wire size of one sent frame.
func (m *serverMetrics) frameTx(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.txBytes.Observe(n)
}

// observe records one dispatched request. Safe on a nil receiver (servers
// are always instrumented, but the guard keeps the method total).
func (m *serverMetrics) observe(op Op, resp *Response, d time.Duration) {
	if m == nil {
		return
	}
	req, lat := m.requests[op], m.latency[op]
	if req == nil {
		req, lat = m.otherReq, m.otherLat
	}
	req.Inc()
	lat.Observe(d)
	if resp != nil && !resp.OK {
		errc := m.errors[resp.Code]
		if errc == nil {
			errc = m.otherErr
		}
		errc.Inc()
	}
}

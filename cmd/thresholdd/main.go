// Command thresholdd runs the threshold-IBE cluster: in serve mode it is
// one player's decryption server; in -decrypt mode it is the recombiner,
// fanning a ciphertext out to the players and combining t verified shares.
//
// Generate a deployment with pkgen, then:
//
//	thresholdd -system tdeploy/threshold.json -player tdeploy/players/player-1.json -addr :7401 &
//	thresholdd -system tdeploy/threshold.json -player tdeploy/players/player-2.json -addr :7402 &
//	thresholdd -system tdeploy/threshold.json -player tdeploy/players/player-3.json -addr :7403 &
//	thresholdd -system tdeploy/threshold.json -decrypt -id vault@example.com \
//	           -players :7401,:7402,:7403,, <ct.b64 >plain.bin
//
// (-players is positional: entry i is player i's address; empty entries
// mark undeployed players.)
package main

import (
	"encoding/base64"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/keyfile"
	"repro/internal/obs"
)

func main() {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sigCh, nil, nil, os.Stdin, os.Stdout); err != nil { //cryptolint:nodeadline (stdio is local; player and recombiner connections set per-frame deadlines internally)
		fmt.Fprintln(os.Stderr, "thresholdd:", err)
		os.Exit(1)
	}
}

// run executes one thresholdd invocation. ready (serve mode) and
// debugReady (-debug-addr) receive the respective bound addresses when
// non-nil; debugReady is closed when the debug endpoint is disabled.
func run(args []string, stop <-chan os.Signal, ready, debugReady chan<- string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("thresholdd", flag.ContinueOnError)
	var (
		systemFn  = fs.String("system", "tdeploy/threshold.json", "threshold system file")
		playerFn  = fs.String("player", "", "player share file (serve mode)")
		addr      = fs.String("addr", "127.0.0.1:0", "listen address (serve mode)")
		decrypt   = fs.Bool("decrypt", false, "recombiner mode: decrypt stdin (base64 BasicIdent ciphertext)")
		encrypt   = fs.Bool("encrypt", false, "sender mode: encrypt stdin to -id, emit base64 ciphertext")
		id        = fs.String("id", "", "identity (encrypt/decrypt modes)")
		players   = fs.String("players", "", "comma-separated player addresses, entry i = player i (recombiner mode)")
		debugAddr = fs.String("debug-addr", "", "HTTP debug listener (Prometheus /metrics, /metrics.json, /debug/pprof); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var metrics *obs.Registry
	if *debugAddr != "" {
		metrics = obs.NewRegistry()
		dbg, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			return fmt.Errorf("thresholdd debug listen: %w", err)
		}
		defer func() { _ = dbg.Close() }()
		log.Printf("thresholdd: debug endpoint (metrics + pprof) on http://%s", dbg.Addr)
		if debugReady != nil {
			debugReady <- dbg.Addr
		}
	} else if debugReady != nil {
		close(debugReady)
	}
	var sys keyfile.ThresholdSystem
	if err := keyfile.Load(*systemFn, &sys); err != nil {
		return err
	}
	params, err := sys.Params()
	if err != nil {
		return err
	}
	if *encrypt {
		return encryptTo(params, *id, stdin, stdout)
	}
	if *decrypt {
		return recombine(params, *id, *players, metrics, stdin, stdout)
	}
	if *playerFn == "" {
		return fmt.Errorf("serve mode needs -player (or pass -decrypt)")
	}
	var pf keyfile.PlayerFile
	if err := keyfile.Load(*playerFn, &pf); err != nil {
		return err
	}
	srv, err := cluster.NewPlayerServer(params, pf.Index)
	if err != nil {
		return err
	}
	srv.Instrument(metrics)
	shares, err := pf.KeyShares(params)
	if err != nil {
		return err
	}
	for _, ks := range shares {
		if err := srv.Install(ks); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("thresholdd listen: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	log.Printf("thresholdd: player %d serving %d identities on %s", pf.Index, len(shares), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-done:
		return err
	case s := <-stop:
		log.Printf("thresholdd: %v — shutting down", s)
		if err := srv.Close(); err != nil {
			return err
		}
		return <-done
	}
}

func encryptTo(params *core.ThresholdParams, id string, stdin io.Reader, stdout io.Writer) error {
	if id == "" {
		return fmt.Errorf("sender mode needs -id")
	}
	msg, err := io.ReadAll(stdin)
	if err != nil {
		return err
	}
	if len(msg) > params.Public.MsgLen {
		return fmt.Errorf("plaintext is %d bytes; the block is %d", len(msg), params.Public.MsgLen)
	}
	block := make([]byte, params.Public.MsgLen)
	copy(block, msg)
	ct, err := params.Public.EncryptBasic(nil, id, block)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(stdout, base64.StdEncoding.EncodeToString(ct.Marshal()))
	return err
}

func recombine(params *core.ThresholdParams, id, players string, metrics *obs.Registry, stdin io.Reader, stdout io.Writer) error {
	if id == "" {
		return fmt.Errorf("recombiner mode needs -id")
	}
	addrs := strings.Split(players, ",")
	for len(addrs) < params.N {
		addrs = append(addrs, "")
	}
	if len(addrs) > params.N {
		return fmt.Errorf("%d player addresses for n=%d", len(addrs), params.N)
	}
	rec, err := cluster.NewRecombiner(params, addrs, 5*time.Second)
	if err != nil {
		return err
	}
	rec.Instrument(metrics)
	raw, err := io.ReadAll(stdin)
	if err != nil {
		return err
	}
	trimmed := strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' || r == ' ' || r == '\t' {
			return -1
		}
		return r
	}, string(raw))
	ctBytes, err := base64.StdEncoding.DecodeString(trimmed)
	if err != nil {
		return fmt.Errorf("decode ciphertext: %w", err)
	}
	ct, err := params.Public.UnmarshalBasicCiphertext(ctBytes)
	if err != nil {
		return err
	}
	msg, rejected, err := rec.Decrypt(id, ct)
	if err != nil {
		return err
	}
	if len(rejected) > 0 {
		log.Printf("thresholdd: rejected shares from players %v", rejected)
	}
	_, err = stdout.Write(msg)
	return err
}

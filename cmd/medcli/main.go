// Command medcli is the user-side client for the mediated cryptosystems:
// it encrypts to identities (no certificate or revocation lookup — the
// identity based property), decrypts and signs with the help of a running
// SEM daemon, verifies signatures locally, and administers revocation.
//
// Usage:
//
//	medcli -system deploy/system.json encrypt -to bob@example.com <plain.txt >ct.b64
//	medcli -system deploy/system.json -user deploy/users/bob_at_example.com.json \
//	       -sem 127.0.0.1:7300 decrypt <ct.b64 >plain.txt
//	medcli ... decrypt -batch <cts.b64lines >plain.b64lines
//	medcli ... sign <doc.txt >sig.b64
//	medcli -system ... verify -id alice@example.com -sig sig.b64 <doc.txt
//	medcli -sem ... revoke -id bob@example.com -reason "left the company"
//	medcli -sem ... status -id bob@example.com
//
// Against a sharded fleet, pass -shards a:7300,b:7300,c:7300 instead of
// -sem: ops route to the identity's shard on a consistent-hash ring with
// replica failover, revocation broadcasts fleet-wide, and list unions
// every shard's journal.
//
// Plaintexts for encrypt are limited to msgLen−1 bytes (one byte carries
// the length inside the fixed-size IBE block).
package main

import (
	"bufio"
	"encoding/base64"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bf"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/keyfile"
	"repro/internal/pairing"
	"repro/internal/sem"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil { //cryptolint:nodeadline (interactive CLI on local stdio; the SEM client sets per-operation deadlines internally)
		fmt.Fprintln(os.Stderr, "medcli:", err)
		os.Exit(1)
	}
}

type cli struct {
	system *keyfile.System
	user   *keyfile.User
	semAdr string
	shards []string
}

// mediator is the SEM-side surface medcli needs; *sem.Client (one daemon)
// and *sem.ShardedClient (a fleet behind -shards) both satisfy it.
type mediator interface {
	DecryptIBE(pub *bf.PublicParams, key *core.UserKeyHalf, ct *bf.Ciphertext) ([]byte, error)
	TokenBatch(ids []string, us []*curve.Point) ([]*pairing.GT, []error, error)
	SignGDH(key *core.GDHUserKey, msg []byte) (*curve.Point, error)
	Revoke(id, reason string) error
	Unrevoke(id string) error
	Status(id string) (bool, error)
	ListRevoked() ([]core.RevocationEntry, error)
	Close() error
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("medcli", flag.ContinueOnError)
	var (
		systemFn = fs.String("system", "deploy/system.json", "system parameters file")
		userFn   = fs.String("user", "", "user credential file (for decrypt/sign)")
		semAddr  = fs.String("sem", "127.0.0.1:7300", "SEM daemon address")
		shardsFl = fs.String("shards", "", "comma-separated SEM shard addresses; selects consistent-hash routing with replica failover instead of -sem")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command: encrypt|decrypt|sign|verify|revoke|unrevoke|status|list")
	}
	c := &cli{semAdr: *semAddr}
	for _, a := range strings.Split(*shardsFl, ",") {
		if a = strings.TrimSpace(a); a != "" {
			c.shards = append(c.shards, a)
		}
	}
	c.system = &keyfile.System{}
	if err := keyfile.Load(*systemFn, c.system); err != nil {
		return err
	}
	if *userFn != "" {
		c.user = &keyfile.User{}
		if err := keyfile.Load(*userFn, c.user); err != nil {
			return err
		}
	}
	cmd, cmdArgs := rest[0], rest[1:]
	switch cmd {
	case "encrypt":
		return c.encrypt(cmdArgs, stdin, stdout)
	case "decrypt":
		return c.decrypt(cmdArgs, stdin, stdout)
	case "sign":
		return c.sign(cmdArgs, stdin, stdout)
	case "verify":
		return c.verify(cmdArgs, stdin, stdout)
	case "revoke", "unrevoke", "status":
		return c.admin(cmd, cmdArgs, stdout)
	case "list":
		return c.list(stdout)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// pad embeds msg into the fixed IBE block: one length byte plus payload.
func pad(msg []byte, block int) ([]byte, error) {
	if len(msg) > block-1 || len(msg) > 255 {
		return nil, fmt.Errorf("plaintext is %d bytes; limit is %d", len(msg), min(block-1, 255))
	}
	out := make([]byte, block)
	out[0] = byte(len(msg))
	copy(out[1:], msg)
	return out, nil
}

func unpad(block []byte) ([]byte, error) {
	if len(block) == 0 || int(block[0]) > len(block)-1 { //cryptolint:public (padding-length check on the recovered plaintext)
		return nil, fmt.Errorf("corrupt padded block")
	}
	return block[1 : 1+int(block[0])], nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (c *cli) dial() (mediator, error) {
	pp, err := c.system.Params()
	if err != nil {
		return nil, err
	}
	if len(c.shards) > 0 {
		return sem.NewShardedClient(c.shards, pp, sem.ShardedConfig{Replicas: 2})
	}
	return sem.Dial(c.semAdr, pp, 5*time.Second)
}

func (c *cli) encrypt(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("encrypt", flag.ContinueOnError)
	to := fs.String("to", "", "recipient identity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("encrypt: missing -to identity")
	}
	pub, err := c.system.PublicParams()
	if err != nil {
		return err
	}
	msg, err := io.ReadAll(stdin)
	if err != nil {
		return err
	}
	padded, err := pad(msg, pub.MsgLen)
	if err != nil {
		return err
	}
	ct, err := pub.Encrypt(nil, *to, padded)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(stdout, base64.StdEncoding.EncodeToString(ct.Marshal()))
	return err
}

func (c *cli) decrypt(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("decrypt", flag.ContinueOnError)
	batch := fs.Bool("batch", false, "read one base64 ciphertext per line, fetch all tokens in one protocol-v2 frame, write one base64 plaintext per line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if c.user == nil {
		return fmt.Errorf("decrypt: pass -user <credential file>")
	}
	pub, err := c.system.PublicParams()
	if err != nil {
		return err
	}
	userKey, err := c.user.IBEUserKey(pub.Pairing)
	if err != nil {
		return err
	}
	client, err := c.dial()
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	if *batch {
		return c.decryptBatch(pub, userKey, client, stdin, stdout)
	}
	raw, err := readBase64(stdin)
	if err != nil {
		return err
	}
	ct, err := pub.UnmarshalCiphertext(raw)
	if err != nil {
		return err
	}
	padded, err := client.DecryptIBE(pub, userKey, ct)
	if err != nil {
		return err
	}
	msg, err := unpad(padded)
	if err != nil {
		return err
	}
	_, err = stdout.Write(msg)
	return err
}

// decryptBatch decrypts one base64 ciphertext per input line, requesting
// all the SEM tokens in a single batched round trip. Plaintexts come out
// base64-encoded one per line so binary messages stay line-aligned with
// their inputs; a failed line prints as "ERROR <reason>" and the command
// exits nonzero after processing every line.
func (c *cli) decryptBatch(pub *bf.PublicParams, userKey *core.UserKeyHalf, client mediator, stdin io.Reader, stdout io.Writer) error {
	var cts []*bf.Ciphertext
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		raw, err := base64.StdEncoding.DecodeString(line)
		if err != nil {
			return fmt.Errorf("line %d: decode base64 input: %w", lineNo, err)
		}
		ct, err := pub.UnmarshalCiphertext(raw)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		cts = append(cts, ct)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(cts) == 0 {
		return fmt.Errorf("decrypt -batch: no ciphertexts on stdin")
	}
	ids := make([]string, len(cts))
	us := make([]*curve.Point, len(cts))
	for i, ct := range cts {
		ids[i] = userKey.ID
		us[i] = ct.U
	}
	tokens, errs, err := client.TokenBatch(ids, us)
	if err != nil {
		return err
	}
	failed := 0
	for i, ct := range cts {
		if errs[i] != nil {
			failed++
			if _, err := fmt.Fprintf(stdout, "ERROR %v\n", errs[i]); err != nil {
				return err
			}
			continue
		}
		padded, err := core.UserDecrypt(pub, userKey, ct, tokens[i])
		if err == nil {
			var msg []byte
			if msg, err = unpad(padded); err == nil {
				if _, werr := fmt.Fprintln(stdout, base64.StdEncoding.EncodeToString(msg)); werr != nil {
					return werr
				}
				continue
			}
		}
		failed++
		if _, werr := fmt.Fprintf(stdout, "ERROR %v\n", err); werr != nil {
			return werr
		}
	}
	if failed > 0 {
		return fmt.Errorf("decrypt -batch: %d of %d ciphertexts failed", failed, len(cts))
	}
	return nil
}

func (c *cli) sign(_ []string, stdin io.Reader, stdout io.Writer) error {
	if c.user == nil {
		return fmt.Errorf("sign: pass -user <credential file>")
	}
	pp, err := c.system.Params()
	if err != nil {
		return err
	}
	key, err := c.user.GDHUserKey(pp)
	if err != nil {
		return err
	}
	msg, err := io.ReadAll(stdin)
	if err != nil {
		return err
	}
	client, err := c.dial()
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	sig, err := client.SignGDH(key, msg)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(stdout, base64.StdEncoding.EncodeToString(sig.Marshal()))
	return err
}

func (c *cli) verify(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	id := fs.String("id", "", "signer identity")
	sigFn := fs.String("sig", "", "signature file (base64)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *sigFn == "" {
		return fmt.Errorf("verify: need -id and -sig")
	}
	sigFile, err := os.Open(*sigFn)
	if err != nil {
		return err
	}
	defer func() { _ = sigFile.Close() }()
	sigRaw, err := readBase64(sigFile) //cryptolint:nodeadline (local file read; network deadlines do not apply)
	if err != nil {
		return err
	}
	pp, err := c.system.Params()
	if err != nil {
		return err
	}
	sig, err := wire.UnmarshalG1(pp.Curve(), sigRaw)
	if err != nil {
		return err
	}
	vk, err := c.system.GDHPublicKey(*id)
	if err != nil {
		return err
	}
	msg, err := io.ReadAll(stdin)
	if err != nil {
		return err
	}
	if err := vk.Verify(msg, sig); err != nil {
		return fmt.Errorf("signature INVALID: %w", err)
	}
	_, err = fmt.Fprintln(stdout, "signature OK")
	return err
}

func (c *cli) admin(cmd string, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	id := fs.String("id", "", "identity")
	reason := fs.String("reason", "administrative action", "revocation reason")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("%s: missing -id", cmd)
	}
	client, err := c.dial()
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	switch cmd {
	case "revoke":
		if err := client.Revoke(*id, *reason); err != nil {
			return err
		}
		_, err = fmt.Fprintf(stdout, "revoked %s\n", *id)
	case "unrevoke":
		if err := client.Unrevoke(*id); err != nil {
			return err
		}
		_, err = fmt.Fprintf(stdout, "unrevoked %s\n", *id)
	case "status":
		revoked, serr := client.Status(*id)
		if serr != nil {
			return serr
		}
		state := "active"
		if revoked {
			state = "REVOKED"
		}
		_, err = fmt.Fprintf(stdout, "%s: %s\n", *id, state)
	}
	return err
}

func (c *cli) list(stdout io.Writer) error {
	client, err := c.dial()
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	entries, err := client.ListRevoked()
	if err != nil {
		// A partially-invalid list still carries every entry the server
		// sent intact: print what survived and warn instead of failing
		// the whole administrative query.
		if !errors.Is(err, sem.ErrPartialList) {
			return err
		}
		fmt.Fprintln(os.Stderr, "medcli: warning:", err)
	}
	if len(entries) == 0 {
		_, err = fmt.Fprintln(stdout, "no revoked identities")
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(stdout, "%s\t%s\t%s\n", e.ID, e.When.Format(time.RFC3339), e.Reason); err != nil {
			return err
		}
	}
	return nil
}

func readBase64(r io.Reader) ([]byte, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := make([]byte, 0, len(raw))
	for _, b := range raw {
		if b != '\n' && b != '\r' && b != ' ' && b != '\t' {
			trimmed = append(trimmed, b)
		}
	}
	out := make([]byte, base64.StdEncoding.DecodedLen(len(trimmed)))
	n, err := base64.StdEncoding.Decode(out, trimmed)
	if err != nil {
		return nil, fmt.Errorf("decode base64 input: %w", err)
	}
	return out[:n], nil
}

// Package cttlegacy is a sanctioned variable-time domain: the marker on
// the package clause switches cttime off wholesale, the way the legacy
// math/big scheme implementations opt out.
//
//cryptolint:vartime (legacy math/big scheme; the limb discipline does not apply)
package cttlegacy

import (
	"math/big"

	"repro/internal/keys"
)

// Decrypt would trip every cttime rule; the package marker sanctions it.
func Decrypt(k *keys.PrivateKey, c, n *big.Int) *big.Int {
	if k.Bytes[0] != 0 {
		return new(big.Int).Exp(c, k.D, n)
	}
	return nil
}

// Package curve implements the supersingular elliptic curve
//
//	E(F_p): y² = x³ + x,   p ≡ 3 (mod 4)
//
// used by the paper's pairing-based schemes. The curve is supersingular with
// #E(F_p) = p + 1 and embedding degree 2; the distortion map
// φ(x, y) = (−x, i·y) sends points into E(F_p²) and makes the modified Tate
// pairing ê(P, Q) = e(P, φ(Q)) non-degenerate on a single cyclic subgroup.
//
// The group G1 of the schemes is the order-q subgroup, where q is a prime
// divisor of p + 1 chosen at parameter-generation time (see package pairing).
//
// The public Point API is affine and immutable (auditable, and the
// denominator-tracking Miller oracle needs affine line slopes), but the hot
// paths run on a Jacobian-coordinate layer underneath: ScalarMul uses
// width-w NAF recoding over Jacobian doublings and mixed additions with a
// single final normalization, and long-lived bases (the G1 generator,
// public keys) get radix-2^w fixed-base tables via Precomputed. The affine
// double-and-add ladder survives as ScalarMulBinary, the differential-test
// oracle and ablation baseline.
//
//cryptolint:vartime (big.Int affine/Jacobian backend; constant-time execution is the fp limb backend's contract)
package curve

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/fp"
	"repro/internal/mathx"
)

var (
	// ErrNotOnCurve is returned when decoding or constructing a point whose
	// coordinates do not satisfy the curve equation.
	ErrNotOnCurve = errors.New("curve: point is not on the curve")

	// ErrHashToPointFailed is returned when try-and-increment hashing
	// exhausts its counter budget (cryptographically negligible).
	ErrHashToPointFailed = errors.New("curve: hash-to-point failed after 255 attempts")
)

// Curve is the supersingular curve y² = x³ + x over F_p together with the
// prime subgroup order q and cofactor c = (p+1)/q. Immutable and safe for
// concurrent use after construction.
type Curve struct {
	p *big.Int //cryptolint:public (curve parameters)
	q *big.Int //cryptolint:public (curve parameters)
	c *big.Int //cryptolint:public (curve parameters)

	// limb caches the lazily built internal/fp backend and the constants
	// the limb kernels derive from the (immutable) parameters; see limb.go.
	//
	//cryptolint:public (derived from public curve parameters)
	limb struct {
		once    sync.Once
		F       *fp.Field
		sqrtExp *big.Int // (p+1)/4, the p ≡ 3 (mod 4) square-root exponent
		qW      uint     // w-NAF width used for the subgroup ladder
		qNAF    []int8   // w-NAF digits of q, least significant first
		err     error    // fp.New failure: all limb paths fall back to big.Int
	}
}

// New constructs the curve. It validates that p ≡ 3 (mod 4) and that
// q·c = p + 1 with q prime (probabilistically).
func New(p, q *big.Int) (*Curve, error) {
	if p.Bit(0) != 1 || p.Bit(1) != 1 {
		return nil, fmt.Errorf("curve: p must be ≡ 3 (mod 4)")
	}
	pPlus1 := new(big.Int).Add(p, big.NewInt(1))
	c, rem := new(big.Int).DivMod(pPlus1, q, new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("curve: q does not divide p + 1")
	}
	if !q.ProbablyPrime(20) {
		return nil, fmt.Errorf("curve: subgroup order q is not prime")
	}
	return &Curve{
		p: new(big.Int).Set(p),
		q: new(big.Int).Set(q),
		c: c,
	}, nil
}

// P returns a copy of the field characteristic.
func (c *Curve) P() *big.Int { return new(big.Int).Set(c.p) }

// Q returns a copy of the subgroup order.
func (c *Curve) Q() *big.Int { return new(big.Int).Set(c.q) }

// Cofactor returns a copy of the cofactor (p+1)/q.
func (c *Curve) Cofactor() *big.Int { return new(big.Int).Set(c.c) }

// CoordinateSize returns the byte length of one field coordinate.
func (c *Curve) CoordinateSize() int { return (c.p.BitLen() + 7) / 8 }

// Point is a point of E(F_p) in affine coordinates, or the point at
// infinity. Points are immutable: all group operations return new points.
type Point struct {
	curve *Curve //cryptolint:public (curve parameters)
	x, y  *big.Int
	inf   bool

	// g1 memoizes the subgroup-membership verdict (0 unknown, 1 in G1,
	// 2 outside). Immutability makes the verdict permanent; the atomic
	// makes concurrent validation of a shared point race-free. Benign
	// duplicate stores write the same value.
	g1 atomic.Int32
}

// Infinity returns the identity element O.
func (c *Curve) Infinity() *Point {
	return &Point{curve: c, inf: true}
}

// NewPoint constructs the affine point (x, y), validating the curve
// equation.
func (c *Curve) NewPoint(x, y *big.Int) (*Point, error) {
	xm := new(big.Int).Mod(x, c.p)
	ym := new(big.Int).Mod(y, c.p)
	if !c.isOnCurve(xm, ym) {
		return nil, ErrNotOnCurve
	}
	return &Point{curve: c, x: xm, y: ym}, nil
}

func (c *Curve) isOnCurve(x, y *big.Int) bool {
	// y² ≟ x³ + x
	lhs := new(big.Int).Mul(y, y)
	lhs.Mod(lhs, c.p)
	rhs := new(big.Int).Mul(x, x)
	rhs.Mul(rhs, x)
	rhs.Add(rhs, x)
	rhs.Mod(rhs, c.p)
	return lhs.Cmp(rhs) == 0
}

// IsInfinity reports whether the point is the identity.
func (pt *Point) IsInfinity() bool { return pt.inf }

// X returns a copy of the affine x-coordinate; nil for O.
func (pt *Point) X() *big.Int {
	if pt.inf {
		return nil
	}
	return new(big.Int).Set(pt.x)
}

// Y returns a copy of the affine y-coordinate; nil for O.
func (pt *Point) Y() *big.Int {
	if pt.inf {
		return nil
	}
	return new(big.Int).Set(pt.y)
}

// Curve returns the curve the point lives on.
func (pt *Point) Curve() *Curve { return pt.curve }

// Equal reports whether two points are the same group element.
func (pt *Point) Equal(other *Point) bool {
	if pt.inf || other.inf {
		return pt.inf == other.inf
	}
	return pt.x.Cmp(other.x) == 0 && pt.y.Cmp(other.y) == 0
}

// Neg returns −P.
func (pt *Point) Neg() *Point {
	if pt.inf {
		return pt
	}
	ny := new(big.Int).Neg(pt.y)
	ny.Mod(ny, pt.curve.p)
	out := &Point{curve: pt.curve, x: new(big.Int).Set(pt.x), y: ny}
	// −P has the same order as P: the subgroup verdict carries over.
	out.g1.Store(pt.g1.Load())
	return out
}

// Add returns P + Q using the affine chord-and-tangent rules.
func (pt *Point) Add(other *Point) *Point {
	c := pt.curve
	if pt.inf {
		return other
	}
	if other.inf {
		return pt
	}
	if pt.x.Cmp(other.x) == 0 {
		sum := new(big.Int).Add(pt.y, other.y)
		sum.Mod(sum, c.p)
		if sum.Sign() == 0 {
			return c.Infinity() // P + (−P)
		}
		return pt.Double()
	}
	// λ = (y2 − y1)/(x2 − x1)
	num := new(big.Int).Sub(other.y, pt.y)
	den := new(big.Int).Sub(other.x, pt.x)
	den.ModInverse(den, c.p)
	lambda := num.Mul(num, den)
	lambda.Mod(lambda, c.p)
	return c.chord(pt, other, lambda)
}

// Double returns 2P.
func (pt *Point) Double() *Point {
	c := pt.curve
	if pt.inf {
		return pt
	}
	if pt.y.Sign() == 0 {
		return c.Infinity() // order-2 point
	}
	// λ = (3x² + 1)/(2y)   (curve a-coefficient is 1)
	num := new(big.Int).Mul(pt.x, pt.x)
	num.Mul(num, big.NewInt(3))
	num.Add(num, big.NewInt(1))
	num.Mod(num, c.p)
	den := new(big.Int).Lsh(pt.y, 1)
	den.ModInverse(den, c.p)
	lambda := num.Mul(num, den)
	lambda.Mod(lambda, c.p)
	return c.chord(pt, pt, lambda)
}

// chord completes an addition given the line slope λ through p1 and p2.
func (c *Curve) chord(p1, p2 *Point, lambda *big.Int) *Point {
	x3 := new(big.Int).Mul(lambda, lambda)
	x3.Sub(x3, p1.x)
	x3.Sub(x3, p2.x)
	x3.Mod(x3, c.p)
	y3 := new(big.Int).Sub(p1.x, x3)
	y3.Mul(y3, lambda)
	y3.Sub(y3, p1.y)
	y3.Mod(y3, c.p)
	return &Point{curve: c, x: x3, y: y3}
}

// InSubgroup reports whether the point lies in the prime-order subgroup G1,
// i.e. q·P = O. The verdict is computed with the limb-backend ladder of
// subgroup.go (no final inversion, shared q recoding) and memoized on the
// point, so re-validating a long-lived element is a single atomic load.
func (pt *Point) InSubgroup() bool {
	if pt.inf {
		return true // O is in every subgroup
	}
	if s := pt.g1.Load(); s != 0 {
		return s == 1
	}
	in, ok := pt.curve.inSubgroupLimb(pt)
	if !ok {
		in = pt.ScalarMul(pt.curve.q).IsInfinity()
	}
	if in {
		pt.g1.Store(1)
	} else {
		pt.g1.Store(2)
	}
	return in
}

// ErrNotInSubgroup is returned by Validate for points of E(F_p) outside the
// order-q working subgroup G1 (e.g. cofactor-order points).
var ErrNotInSubgroup = errors.New("curve: point is not in the order-q subgroup")

// Validate checks that the point is a usable G1 element for untrusted
// inputs: not the identity and inside the order-q subgroup. Unmarshal only
// guarantees membership in the full group E(F_p), whose cofactor-order
// components are outside the security argument — every network-facing
// decode must call this (see wire.UnmarshalG1).
func (pt *Point) Validate() error {
	if pt.IsInfinity() {
		return fmt.Errorf("%w: point at infinity", ErrNotInSubgroup)
	}
	if !pt.InSubgroup() {
		return ErrNotInSubgroup
	}
	return nil
}

// RandomPoint returns a uniformly random point of the full group E(F_p)
// (not necessarily in G1) by sampling x until x³ + x is a residue.
func (c *Curve) RandomPoint(rng io.Reader) (*Point, error) {
	for {
		x, err := mathx.RandomInRange(rng, big.NewInt(0), c.p)
		if err != nil {
			return nil, err
		}
		rhs := new(big.Int).Mul(x, x)
		rhs.Mul(rhs, x)
		rhs.Add(rhs, x)
		rhs.Mod(rhs, c.p)
		y, err := c.sqrtMod(rhs)
		if err != nil {
			continue
		}
		pt, err := c.NewPoint(x, y)
		if err != nil {
			continue
		}
		if pt.IsInfinity() {
			continue
		}
		return pt, nil
	}
}

// RandomG1 returns a uniformly random nonidentity point of the order-q
// subgroup (cofactor-cleared random point).
func (c *Curve) RandomG1(rng io.Reader) (*Point, error) {
	for {
		pt, err := c.RandomPoint(rng)
		if err != nil {
			return nil, err
		}
		g := pt.ScalarMul(c.c)
		if !g.IsInfinity() {
			g.g1.Store(1) // cofactor-cleared by construction
			return g, nil
		}
	}
}

// HashToPoint maps an arbitrary byte string into the order-q subgroup G1
// using domain-separated try-and-increment (the MapToGroup construction of
// the BLS short-signature paper) followed by cofactor clearing. This is the
// H1 oracle of the Boneh-Franklin scheme and the h(·) oracle of the GDH
// signature.
func (c *Curve) HashToPoint(domain string, msg []byte) (*Point, error) {
	pt, err := c.HashToPointUncleared(domain, msg)
	if err != nil {
		return nil, err
	}
	out := pt.ScalarMul(c.c)
	if !out.inf {
		out.g1.Store(1) // cofactor-cleared by construction
	}
	return out, nil
}

// HashToPointUncleared is HashToPoint without the final cofactor
// multiplication: it returns the raw try-and-increment point T ∈ E(F_p)
// with HashToPoint(domain, msg) = c·T for cofactor c. Batch verifiers use
// it to defer and merge cofactor clearing across many hashes
// (Σ rᵢ·(c·Tᵢ) = c·Σ rᵢ·Tᵢ); anything needing a single subgroup element
// should call HashToPoint.
//
// A candidate whose cleared image would be the identity (T of cofactor
// order, probability q/(p+1) < 2⁻³⁵⁰ per attempt) is accepted here — the
// check would cost the very scalar multiplication this variant exists to
// skip. HashToPoint inherits the same behaviour: its output is the identity
// with that probability, which no caller can observe.
func (c *Curve) HashToPointUncleared(domain string, msg []byte) (*Point, error) {
	size := c.CoordinateSize()
	for ctr := 0; ctr < 256; ctr++ {
		digest := expandDigest(domain, uint8(ctr), msg, size+16)
		x := new(big.Int).SetBytes(digest[:size+8])
		x.Mod(x, c.p)
		rhs := new(big.Int).Mul(x, x)
		rhs.Mul(rhs, x)
		rhs.Add(rhs, x)
		rhs.Mod(rhs, c.p)
		y, err := c.sqrtMod(rhs)
		if err != nil {
			continue
		}
		// Use one post-coordinate digest byte to pick the root's sign so the
		// map does not systematically favour the "small" root.
		if digest[size+8]&1 == 1 {
			y.Neg(y)
			y.Mod(y, c.p)
		}
		pt, err := c.NewPoint(x, y)
		if err != nil {
			continue
		}
		return pt, nil
	}
	return nil, ErrHashToPointFailed
}

// expandDigest produces at least n bytes of SHA-256 output bound to
// (domain, ctr, msg) using simple counter-mode expansion. A single hash
// state is reset and reused across blocks and the header is assembled in
// one stack buffer, so each call allocates only the output slice.
func expandDigest(domain string, ctr uint8, msg []byte, n int) []byte {
	out := make([]byte, 0, ((n+31)/32)*32)
	h := sha256.New()
	var hdr [5]byte
	hdr[0] = ctr
	for block := uint32(0); len(out) < n; block++ {
		h.Reset()
		binary.BigEndian.PutUint32(hdr[1:], block)
		io.WriteString(h, domain)
		h.Write(hdr[:1])
		h.Write(hdr[1:])
		h.Write(msg)
		out = h.Sum(out)
	}
	return out[:n]
}

// Marshal serializes the point in compressed form: a one-byte tag (0 for O,
// 2 or 3 for the parity of y) followed by the fixed-width x-coordinate.
// This is the "point compression" the paper invokes when comparing key
// sizes with IB-mRSA.
func (pt *Point) Marshal() []byte {
	size := pt.curve.CoordinateSize()
	out := make([]byte, 1+size)
	if pt.inf {
		return out
	}
	out[0] = byte(2 + pt.y.Bit(0))
	pt.x.FillBytes(out[1:])
	return out
}

// Unmarshal parses a compressed point produced by Marshal, recomputing y
// from the curve equation and the parity bit.
func (c *Curve) Unmarshal(data []byte) (*Point, error) {
	size := c.CoordinateSize()
	if len(data) != 1+size {
		return nil, fmt.Errorf("curve: compressed point must be %d bytes, got %d", 1+size, len(data))
	}
	switch data[0] {
	case 0:
		for _, b := range data[1:] {
			if b != 0 {
				return nil, fmt.Errorf("curve: malformed infinity encoding")
			}
		}
		return c.Infinity(), nil
	case 2, 3:
		x := new(big.Int).SetBytes(data[1:])
		if x.Cmp(c.p) >= 0 {
			return nil, fmt.Errorf("curve: x-coordinate out of range")
		}
		rhs := new(big.Int).Mul(x, x)
		rhs.Mul(rhs, x)
		rhs.Add(rhs, x)
		rhs.Mod(rhs, c.p)
		y, err := c.sqrtMod(rhs)
		if err != nil {
			return nil, ErrNotOnCurve
		}
		if y.Bit(0) != uint(data[0]-2) {
			y.Neg(y)
			y.Mod(y, c.p)
		}
		return c.NewPoint(x, y)
	default:
		return nil, fmt.Errorf("curve: unknown compression tag 0x%02x", data[0]) //cryptolint:public (the format tag byte, not coordinate material)
	}
}

// String renders the point for debugging.
func (pt *Point) String() string {
	if pt.inf {
		return "O"
	}
	return fmt.Sprintf("(%v, %v)", pt.x, pt.y)
}

// Package cmpgood exercises the secretcompare negative cases.
package cmpgood

import (
	"crypto/subtle"
	"math/big"

	"repro/internal/keys"
)

// Owner compares metadata: basic-typed fields of a secret struct are not
// secret.
func Owner(k *keys.PrivateKey, id string) bool {
	return k.ID == id
}

// MatchMaterial is the sanctioned constant-time comparison.
func MatchMaterial(k *keys.PrivateKey, probe []byte) bool {
	return subtle.ConstantTimeCompare(k.Material(), probe) == 1
}

// Loaded is a presence check: comparing a secret pointer against nil says
// nothing about the key bytes.
func Loaded(k *keys.PrivateKey) bool {
	return k != nil && nil != k.D
}

// InRange compares public parameters: big.Int.Cmp on non-secret values is
// fine (moduli, group orders, wire-decoded coordinates).
func InRange(x, p *big.Int) bool {
	return x.Sign() > 0 && x.Cmp(p) < 0
}

// CiphertextInRange range-checks against the //cryptolint:public modulus
// field of an otherwise secret key — a comparison of two public values.
func CiphertextInRange(k *keys.PrivateKey, c *big.Int) bool {
	return c.Sign() > 0 && c.Cmp(k.N) < 0
}

package dkg

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"repro/internal/curve"
	"repro/internal/pairing"
	"repro/internal/shamir"
)

func toyParams(t *testing.T) *pairing.Params {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestHonestRun(t *testing.T) {
	pp := toyParams(t)
	result, shares, err := Run(rand.Reader, pp, 3, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Qualified) != 5 {
		t.Fatalf("qualified = %v, want all 5", result.Qualified)
	}
	// The shares are a valid (3,5) sharing of some secret s with
	// P_pub = s·P: reconstruct s from any 3 and check.
	sh := []shamir.Share{
		{Index: 1, Value: shares[0]},
		{Index: 3, Value: shares[2]},
		{Index: 5, Value: shares[4]},
	}
	s, err := shamir.Reconstruct(sh, 3, pp.Q())
	if err != nil {
		t.Fatal(err)
	}
	if !pp.Generator().ScalarMul(s).Equal(result.PPub) {
		t.Fatal("reconstructed secret does not match P_pub")
	}
	// A different subset reconstructs the SAME secret.
	sh2 := []shamir.Share{
		{Index: 2, Value: shares[1]},
		{Index: 4, Value: shares[3]},
		{Index: 5, Value: shares[4]},
	}
	s2, err := shamir.Reconstruct(sh2, 3, pp.Q())
	if err != nil {
		t.Fatal(err)
	}
	if s.Cmp(s2) != 0 {
		t.Fatal("different subsets reconstruct different secrets")
	}
	// Verification keys match the shares.
	for j, xj := range shares {
		if !pp.Generator().ScalarMul(xj).Equal(result.VerificationKeys[j]) {
			t.Fatalf("verification key %d mismatch", j+1)
		}
	}
}

func TestByzantineDealerExcluded(t *testing.T) {
	pp := toyParams(t)
	// Dealer 2 sends player 4 a corrupted share.
	tamper := func(dealer, recipient int, share *big.Int) *big.Int {
		if dealer == 2 && recipient == 4 {
			return new(big.Int).Add(share, big.NewInt(1))
		}
		return share
	}
	result, shares, err := Run(rand.Reader, pp, 2, 4, tamper)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range result.Qualified {
		if q == 2 {
			t.Fatalf("byzantine dealer remained qualified: %v", result.Qualified)
		}
	}
	if len(result.Qualified) != 3 {
		t.Fatalf("qualified = %v, want the 3 honest dealers", result.Qualified)
	}
	// The remaining sharing is still consistent.
	sh := []shamir.Share{
		{Index: 1, Value: shares[0]},
		{Index: 3, Value: shares[2]},
	}
	s, err := shamir.Reconstruct(sh, 2, pp.Q())
	if err != nil {
		t.Fatal(err)
	}
	if !pp.Generator().ScalarMul(s).Equal(result.PPub) {
		t.Fatal("post-exclusion sharing inconsistent with P_pub")
	}
}

func TestVerifyShareDetectsTampering(t *testing.T) {
	pp := toyParams(t)
	p, err := NewParticipant(rand.Reader, pp, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	share, err := p.ShareFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShare(pp, p.Commitments(), 2, share); err != nil {
		t.Fatalf("honest share rejected: %v", err)
	}
	bad := new(big.Int).Add(share, big.NewInt(1))
	if err := VerifyShare(pp, p.Commitments(), 2, bad); !errors.Is(err, ErrBadShare) {
		t.Fatalf("tampered share accepted: %v", err)
	}
	// Right share, wrong recipient index.
	if err := VerifyShare(pp, p.Commitments(), 3, share); !errors.Is(err, ErrBadShare) {
		t.Fatalf("misdirected share accepted: %v", err)
	}
}

func TestParticipantValidation(t *testing.T) {
	pp := toyParams(t)
	if _, err := NewParticipant(rand.Reader, pp, 1, 0, 3); !errors.Is(err, ErrConfig) {
		t.Error("t=0 accepted")
	}
	if _, err := NewParticipant(rand.Reader, pp, 1, 4, 3); !errors.Is(err, ErrConfig) {
		t.Error("t>n accepted")
	}
	if _, err := NewParticipant(rand.Reader, pp, 0, 2, 3); !errors.Is(err, ErrConfig) {
		t.Error("index 0 accepted")
	}
	p, _ := NewParticipant(rand.Reader, pp, 1, 2, 3)
	if _, err := p.ShareFor(0); !errors.Is(err, ErrConfig) {
		t.Error("recipient 0 accepted")
	}
	if _, err := p.ShareFor(4); !errors.Is(err, ErrConfig) {
		t.Error("recipient n+1 accepted")
	}
}

func TestAggregateErrors(t *testing.T) {
	pp := toyParams(t)
	if _, err := Aggregate(pp, nil, nil, 3); !errors.Is(err, ErrConfig) {
		t.Error("empty qualified set accepted")
	}
	// Qualified dealer whose commitments are missing.
	p, _ := NewParticipant(rand.Reader, pp, 1, 2, 3)
	comms := map[int][]*curve.Point{1: p.Commitments()}
	if _, err := Aggregate(pp, comms, []int{1, 2}, 3); !errors.Is(err, ErrIncomplete) {
		t.Errorf("missing commitments accepted: %v", err)
	}
}

func TestFinalShareMissingDealer(t *testing.T) {
	pp := toyParams(t)
	if _, err := FinalShare(pp, map[int]*big.Int{1: big.NewInt(5)}, []int{1, 2}); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("missing dealer share accepted: %v", err)
	}
	x, err := FinalShare(pp, map[int]*big.Int{1: big.NewInt(5), 2: big.NewInt(7)}, []int{1, 2})
	if err != nil || x.Int64() != 12 {
		t.Fatalf("final share = %v, %v", x, err)
	}
}

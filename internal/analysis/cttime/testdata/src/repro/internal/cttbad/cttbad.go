// Package cttbad exercises the cttime positive cases.
package cttbad

import (
	"math/big"

	"repro/internal/fp"
	"repro/internal/keys"
)

var table [256]byte

// Branches leaks key bits through the instruction stream.
func Branches(k *keys.PrivateKey) int {
	if k.Bytes[0] == 0x80 { // want `branch condition on secret-tainted value`
		return 1
	}
	for i := 0; i < int(k.Bytes[1]); i++ { // want `branch condition on secret-tainted value`
		_ = i
	}
	switch k.Bytes[2] { // want `branch condition on secret-tainted value`
	case 0:
		return 0
	}
	return -1
}

// Lookup leaks key bits through the data cache.
func Lookup(k *keys.PrivateKey) byte {
	return table[k.Bytes[0]] // want `secret-tainted index: memory access depends on secret data`
}

// Route leaks key bits through map bucket addressing.
func Route(k *keys.PrivateKey, m map[byte]int) int {
	return m[k.Bytes[0]] // want `secret-tainted map key: memory access depends on secret data`
}

// Blind runs math/big's value-dependent loops on the secret exponent.
func Blind(k *keys.PrivateKey, n *big.Int) *big.Int {
	return new(big.Int).Mul(k.D, k.D) // want `secret-tainted value reaches variable-time math/big.Int.Mul`
}

// Reduce mutates the secret in place; the receiver is tainted.
func Reduce(k *keys.PrivateKey, n *big.Int) {
	k.D.Mod(k.D, n) // want `secret-tainted value reaches variable-time math/big.Int.Mod`
}

// Invert hands secret limbs to the variable-time GCD.
func Invert(f *fp.Field, k *keys.PrivateKey) *fp.Element {
	var z fp.Element
	return f.InvVarTime(&z, k.E) // want `secret-tainted value reaches variable-time fp.Field.InvVarTime`
}

// derive moves the secret through a call boundary; the taint layer tracks
// the result summary.
func derive(k *keys.PrivateKey) *big.Int { return k.D }

// Chained shows interprocedural taint: derive's result is as secret as D.
func Chained(k *keys.PrivateKey, n *big.Int) *big.Int {
	d := derive(k)
	return new(big.Int).Exp(d, d, n) // want `secret-tainted value reaches variable-time math/big.Int.Exp`
}

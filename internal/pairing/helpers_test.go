package pairing

import (
	"math/big"
	"testing"

	"repro/internal/curve"
)

// mustPair computes ê(a, b), failing the test on the (never-expected)
// internal error path.
func mustPair(t testing.TB, pp *Params, a, b *curve.Point) *GT {
	t.Helper()
	g, err := pp.Pair(a, b)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	return g
}

// mustExp computes g^k, failing the test on the internal error path.
func mustExp(t testing.TB, g *GT, k *big.Int) *GT {
	t.Helper()
	out, err := g.Exp(k)
	if err != nil {
		t.Fatalf("GT.Exp: %v", err)
	}
	return out
}

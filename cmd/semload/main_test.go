package main

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/keyfile"
	"repro/internal/pairing"
	"repro/internal/sem"
)

// startFleet boots n in-process SEM servers sharing toy parameters (each
// with its own registry, like independent semd shards) and writes the
// matching system.json. It returns the comma-joined shard list.
func startFleet(t *testing.T, n int) (shards, systemFn string) {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, 32)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < n; i++ {
		reg := core.NewRegistry()
		srv, err := sem.NewServer(sem.Config{
			Registry:      reg,
			IBE:           core.NewIBESEM(pkg.Public(), reg),
			GDH:           core.NewGDHSEM(pp, reg),
			Pairing:       pp,
			Workers:       1,
			AllowRegister: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	systemFn = filepath.Join(t.TempDir(), "system.json")
	if err := keyfile.Save(systemFn, &keyfile.System{ParamSet: "toy", MsgLen: 32}, false); err != nil {
		t.Fatal(err)
	}
	return strings.Join(addrs, ","), systemFn
}

func TestSemloadMixedTraffic(t *testing.T) {
	shards, systemFn := startFleet(t, 3)
	benchFn := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-shards", shards, "-system", systemFn,
		"-n", "120", "-c", "8", "-duration", "400ms",
		"-mix", "token=16,sign=3,revoke=1",
		"-register-batch", "50",
		"-json", "-bench-json", benchFn,
	}, &out)
	if err != nil {
		t.Fatalf("semload: %v\n%s", err, out.String())
	}

	var rep loadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, out.String())
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("transport errors against a healthy fleet: %d", rep.TransportErrors)
	}
	for _, k := range []string{"token", "sign", "revoke"} {
		o, ok := rep.Ops[k]
		if !ok || o.Count == 0 {
			t.Fatalf("no %s ops recorded: %+v", k, rep.Ops)
		}
		if o.RemoteErrors != 0 {
			t.Errorf("%s: %d remote errors (revocable tail leaked into live traffic?)", k, o.RemoteErrors)
		}
		if o.P50Ms <= 0 || o.P99Ms < o.P50Ms {
			t.Errorf("%s: implausible quantiles %+v", k, o)
		}
	}
	if rep.TotalRPS <= 0 {
		t.Errorf("no throughput measured: %+v", rep)
	}
	// Client-side ring and pool series must be scrapeable from the report.
	for _, want := range []string{"shard_ring_lookups_total", "sempool_frames_total", "shardclient_shard_batches_total"} {
		if !strings.Contains(string(rep.Metrics), want) {
			t.Errorf("metrics dump missing %s", want)
		}
	}

	// The bench entry landed, named for the topology.
	var snap bench.BaselineReport
	body := readFile(t, benchFn)
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	wantName := "semload.token.shard3.pool4.c8"
	found := false
	for _, e := range snap.Entries {
		if e.Name == wantName {
			found = true
			if e.NsPerOp <= 0 || e.Iters <= 0 {
				t.Errorf("empty bench entry: %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("bench snapshot missing %s: %+v", wantName, snap.Entries)
	}

	// Re-running merges (replaces the same-named entry, no duplicates).
	out.Reset()
	if err := run([]string{
		"-shards", shards, "-system", systemFn,
		"-n", "40", "-c", "8", "-duration", "150ms",
		"-mix", "token=1", "-register-batch", "50",
		"-json", "-bench-json", benchFn,
	}, &out); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if err := json.Unmarshal(readFile(t, benchFn), &snap); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range snap.Entries {
		if e.Name == wantName {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("entry %s appears %d times after merge", wantName, seen)
	}
}

func TestSemloadOpsBudget(t *testing.T) {
	shards, systemFn := startFleet(t, 1)
	var out bytes.Buffer
	start := time.Now()
	err := run([]string{
		"-shards", shards, "-system", systemFn,
		"-n", "16", "-c", "4", "-duration", "30s", "-ops", "64",
		"-mix", "token=1", "-register-batch", "16", "-json",
	}, &out)
	if err != nil {
		t.Fatalf("semload: %v\n%s", err, out.String())
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("-ops budget did not cut the 30s window short (took %v)", elapsed)
	}
	var rep loadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if n := rep.Ops["token"].Count; n == 0 || n > 64 {
		t.Fatalf("op budget not honored: %d ops", n)
	}
}

func TestSemloadFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-c", "0"},
		{"-pool", "-1"},
		{"-replicas", "0"},
		{"-register-batch", "0"},
		{"-mix", "bogus=3"},
		{"-mix", "token=0,sign=0"},
		{"-shards", " , "},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestSemloadDeadFleet(t *testing.T) {
	// A listener that is immediately closed: connection refused on dial.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	systemFn := filepath.Join(t.TempDir(), "system.json")
	if err := keyfile.Save(systemFn, &keyfile.System{ParamSet: "toy", MsgLen: 32}, false); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-shards", addr, "-system", systemFn, "-n", "4", "-c", "1", "-duration", "100ms"}, &out); err == nil {
		t.Fatal("dead fleet accepted")
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

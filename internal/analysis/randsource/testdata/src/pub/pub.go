// Package pub is outside any internal/ tree, so math/rand is allowed
// (simulation and benchmark helpers live in such packages).
package pub

import "math/rand"

// Shuffle permutes indices for a load-balancing simulation.
func Shuffle(n int) []int {
	return rand.Perm(n)
}

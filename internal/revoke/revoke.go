// Package revoke models the three revocation architectures the paper
// compares, on a simulated clock, so the F1 experiment (revocation latency
// and PKG cost) is reproducible and deterministic:
//
//   - SEM: the paper's proposal. Revocation takes effect at the identity's
//     next mediated operation — the SEM simply refuses its half. No key is
//     ever reissued.
//   - Validity periods: the Boneh-Franklin built-in workaround ([4], [3])
//     where identities are "ID ‖ period" and the PKG stops issuing next
//     period's key for revoked users. A revoked key keeps working until its
//     current period expires, and the PKG must reissue EVERY live user's key
//     EVERY period.
//   - CRL: classical certificate revocation lists published on a fixed
//     schedule with a propagation delay; included as the PKI status quo the
//     paper's introduction argues against.
//
// Each model answers Allowed(id, at) — can the identity still use its key
// at this instant — and accounts the PKG/issuer work needed to sustain the
// scheme over a window. Revocation latency is measured against these
// predicates by binary search (they are monotone in time).
package revoke

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Model is one revocation architecture under test.
type Model interface {
	// Name labels the model in experiment output.
	Name() string
	// Enroll registers identities at the epoch.
	Enroll(ids []string)
	// Revoke marks an identity revoked at the given instant.
	Revoke(id string, at time.Time)
	// Allowed reports whether the identity's key still works at the
	// instant. Monotone: once false for an identity, it stays false.
	Allowed(id string, at time.Time) bool
	// KeysIssued returns how many private keys the PKG issues during
	// [from, to) to keep the scheme running (initial enrollment excluded).
	KeysIssued(from, to time.Time) int
}

// ErrNeverRevoked is returned by MeasureLatency when the key still works at
// the horizon.
var ErrNeverRevoked = errors.New("revoke: key still valid at measurement horizon")

// Epoch is the simulation start; all models treat period boundaries as
// aligned to it.
var Epoch = time.Date(2003, time.July, 13, 0, 0, 0, 0, time.UTC) // PODC'03

// SEMModel: instant revocation via an online mediator.
type SEMModel struct {
	enrolled map[string]bool
	revoked  map[string]time.Time
}

// NewSEM returns the SEM revocation model.
func NewSEM() *SEMModel {
	return &SEMModel{enrolled: map[string]bool{}, revoked: map[string]time.Time{}}
}

// Name implements Model.
func (m *SEMModel) Name() string { return "sem" }

// Enroll implements Model.
func (m *SEMModel) Enroll(ids []string) {
	for _, id := range ids {
		m.enrolled[id] = true
	}
}

// Revoke implements Model.
func (m *SEMModel) Revoke(id string, at time.Time) {
	if cur, ok := m.revoked[id]; !ok || at.Before(cur) {
		m.revoked[id] = at
	}
}

// Allowed implements Model: the SEM refuses from the revocation instant on.
func (m *SEMModel) Allowed(id string, at time.Time) bool {
	if !m.enrolled[id] {
		return false
	}
	rt, ok := m.revoked[id]
	return !ok || at.Before(rt)
}

// KeysIssued implements Model: the SEM never reissues keys.
func (m *SEMModel) KeysIssued(_, _ time.Time) int { return 0 }

// ValidityPeriodModel: keys are bound to fixed periods; the PKG reissues
// every live user's key at each boundary and simply skips revoked users.
type ValidityPeriodModel struct {
	period   time.Duration
	enrolled map[string]bool
	revoked  map[string]time.Time
}

// NewValidityPeriod returns the validity-period model with the given period
// length.
func NewValidityPeriod(period time.Duration) *ValidityPeriodModel {
	return &ValidityPeriodModel{
		period:   period,
		enrolled: map[string]bool{},
		revoked:  map[string]time.Time{},
	}
}

// Name implements Model.
func (m *ValidityPeriodModel) Name() string { return "validity-period" }

// Enroll implements Model.
func (m *ValidityPeriodModel) Enroll(ids []string) {
	for _, id := range ids {
		m.enrolled[id] = true
	}
}

// Revoke implements Model.
func (m *ValidityPeriodModel) Revoke(id string, at time.Time) {
	if cur, ok := m.revoked[id]; !ok || at.Before(cur) {
		m.revoked[id] = at
	}
}

// periodEnd returns the end of the period containing the instant.
func (m *ValidityPeriodModel) periodEnd(at time.Time) time.Time {
	elapsed := at.Sub(Epoch)
	n := elapsed / m.period
	return Epoch.Add((n + 1) * m.period)
}

// Allowed implements Model: a key revoked at t_r keeps working until the end
// of t_r's validity period (the PKG cannot claw back an issued key).
func (m *ValidityPeriodModel) Allowed(id string, at time.Time) bool {
	if !m.enrolled[id] {
		return false
	}
	rt, ok := m.revoked[id]
	if !ok {
		return true
	}
	return at.Before(m.periodEnd(rt))
}

// KeysIssued implements Model: at every boundary in the window, one key per
// still-live user.
func (m *ValidityPeriodModel) KeysIssued(from, to time.Time) int {
	if !to.After(from) {
		return 0
	}
	issued := 0
	// First boundary strictly after `from`.
	b := m.periodEnd(from)
	for ; b.Before(to); b = b.Add(m.period) {
		for id := range m.enrolled {
			if rt, ok := m.revoked[id]; ok && !b.Before(rt) {
				continue // revoked before this boundary: PKG skips it
			}
			issued++
			_ = id
		}
	}
	return issued
}

// CRLModel: revocations take effect when the next scheduled CRL reaches
// relying parties.
type CRLModel struct {
	interval    time.Duration
	propagation time.Duration
	enrolled    map[string]bool
	revoked     map[string]time.Time
}

// NewCRL returns the CRL model with the given publication interval and
// propagation delay.
func NewCRL(interval, propagation time.Duration) *CRLModel {
	return &CRLModel{
		interval:    interval,
		propagation: propagation,
		enrolled:    map[string]bool{},
		revoked:     map[string]time.Time{},
	}
}

// Name implements Model.
func (m *CRLModel) Name() string { return "crl" }

// Enroll implements Model.
func (m *CRLModel) Enroll(ids []string) {
	for _, id := range ids {
		m.enrolled[id] = true
	}
}

// Revoke implements Model.
func (m *CRLModel) Revoke(id string, at time.Time) {
	if cur, ok := m.revoked[id]; !ok || at.Before(cur) {
		m.revoked[id] = at
	}
}

// effectiveAt returns when a revocation at rt is visible to relying parties.
func (m *CRLModel) effectiveAt(rt time.Time) time.Time {
	elapsed := rt.Sub(Epoch)
	n := elapsed/m.interval + 1
	return Epoch.Add(n * m.interval).Add(m.propagation)
}

// Allowed implements Model.
func (m *CRLModel) Allowed(id string, at time.Time) bool {
	if !m.enrolled[id] {
		return false
	}
	rt, ok := m.revoked[id]
	if !ok {
		return true
	}
	return at.Before(m.effectiveAt(rt))
}

// KeysIssued implements Model: CRLs do not reissue keys; the recurring cost
// is list distribution, not key generation.
func (m *CRLModel) KeysIssued(_, _ time.Time) int { return 0 }

// MeasureLatency returns how long after the revocation instant the key kept
// working, by binary-searching the monotone Allowed predicate at the given
// resolution. The horizon bounds the search.
func MeasureLatency(m Model, id string, revokedAt time.Time, horizon, resolution time.Duration) (time.Duration, error) {
	if resolution <= 0 {
		return 0, fmt.Errorf("revoke: resolution must be positive")
	}
	if m.Allowed(id, revokedAt.Add(horizon)) {
		return 0, fmt.Errorf("%w: %s", ErrNeverRevoked, id)
	}
	if !m.Allowed(id, revokedAt) {
		return 0, nil // instant revocation (the SEM case)
	}
	lo, hi := time.Duration(0), horizon
	// Invariant: Allowed at revokedAt+lo−ε may be true; not Allowed at hi.
	for hi-lo > resolution {
		mid := lo + (hi-lo)/2
		if m.Allowed(id, revokedAt.Add(mid)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// Scenario drives one population through one model and aggregates the F1
// metrics.
type Scenario struct {
	Population  int
	Duration    time.Duration   // simulation window length
	RevokeTimes []time.Duration // offsets from Epoch at which user i is revoked
}

// Result summarizes one (model, scenario) run.
type Result struct {
	Model       string
	Population  int
	MeanLatency time.Duration
	MaxLatency  time.Duration
	KeysIssued  int
}

// Run enrolls the population, applies the revocations and measures latency
// for each revoked user plus the PKG cost over the window.
func (sc *Scenario) Run(m Model) (*Result, error) {
	if sc.Population <= 0 {
		return nil, fmt.Errorf("revoke: population must be positive")
	}
	ids := make([]string, sc.Population)
	for i := range ids {
		ids[i] = fmt.Sprintf("user-%05d", i)
	}
	m.Enroll(ids)

	var latencies []time.Duration
	for i, off := range sc.RevokeTimes {
		if i >= len(ids) {
			break
		}
		at := Epoch.Add(off)
		m.Revoke(ids[i], at)
		lat, err := MeasureLatency(m, ids[i], at, sc.Duration, time.Second)
		if err != nil {
			return nil, fmt.Errorf("measure %s: %w", ids[i], err)
		}
		latencies = append(latencies, lat)
	}
	res := &Result{
		Model:      m.Name(),
		Population: sc.Population,
		KeysIssued: m.KeysIssued(Epoch, Epoch.Add(sc.Duration)),
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatency = sum / time.Duration(len(latencies))
		res.MaxLatency = latencies[len(latencies)-1]
	}
	return res, nil
}

package sem

import (
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pairing"
	"repro/internal/repl"
	"repro/internal/shard"
)

// replNode is one journal-backed SEM daemon with its follower wired in,
// optionally carrying a replication leader.
type replNode struct {
	journal  *core.Journal
	follower *repl.Follower
	server   *Server
	addr     string
}

func newReplNode(t *testing.T, pp *pairing.Params, leader *repl.Leader, j *core.Journal) *replNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return newReplNodeOn(t, pp, leader, j, ln)
}

// newReplNodeOn serves a replication node on a pre-bound listener, so a
// test can know the fleet's addresses (and hence the ring's leader
// designation) before deciding which daemon actually runs the leader.
func newReplNodeOn(t *testing.T, pp *pairing.Params, leader *repl.Leader, j *core.Journal, ln net.Listener) *replNode {
	t.Helper()
	f := repl.NewFollower(j)
	// A minimal IBE backend so revocation refusal is observable over the
	// wire (the SEM checks the registry before the key lookup, so no
	// enrollment is needed).
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Registry: j.Registry(),
		IBE:      core.NewIBESEM(pkg.Public(), j.Registry()),
		Journal:  j,
		Repl:     f,
		Leader:   leader,
		Pairing:  pp,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})
	return &replNode{journal: j, follower: f, server: srv, addr: ln.Addr().String()}
}

func tmpJournal(t *testing.T) *core.Journal {
	t.Helper()
	j, err := core.OpenJournal(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j
}

// TestReplOpsOverTheWire drives the three repl.* ops through a real
// server and client: status reflects applied appends, records land in the
// follower's journal, and the typed refusals (stale epoch, sequence gap)
// survive the protocol round trip as errors.Is-able sentinels.
func TestReplOpsOverTheWire(t *testing.T) {
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	node := newReplNode(t, pp, nil, tmpJournal(t))
	c, err := Dial(node.addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if epoch, seq, err := c.ReplStatus(); err != nil || epoch != 0 || seq != 0 {
		t.Fatalf("fresh status = %d/%d, %v", epoch, seq, err)
	}
	when := time.Now().UTC().Truncate(time.Nanosecond)
	recs := []core.ReplRecord{
		{Seq: 1, Epoch: 2, Op: "revoke", ID: "a@x", Reason: "first", When: when},
		{Seq: 2, Epoch: 2, Op: "revoke", ID: "b@x", Reason: "second", When: when},
		{Seq: 3, Epoch: 2, Op: "unrevoke", ID: "a@x", When: when},
	}
	if err := c.ReplAppend(2, recs); err != nil {
		t.Fatal(err)
	}
	if epoch, seq, err := c.ReplStatus(); err != nil || epoch != 2 || seq != 3 {
		t.Fatalf("status after append = %d/%d, %v; want 2/3", epoch, seq, err)
	}
	reg := node.journal.Registry()
	if reg.IsRevoked("a@x") || !reg.IsRevoked("b@x") {
		t.Fatal("appended records not applied")
	}

	// Stale sender: the wire must hand back something errors.Is-able.
	err = c.ReplAppend(1, []core.ReplRecord{{Seq: 4, Epoch: 1, Op: "revoke", ID: "z@x", When: when}})
	if !errors.Is(err, repl.ErrStaleEpoch) {
		t.Fatalf("stale append error = %v, want repl.ErrStaleEpoch", err)
	}
	if !errors.Is(err, ErrRemote) {
		t.Errorf("stale append error %v should also wrap ErrRemote (server answered)", err)
	}
	// Gapped batch: same discipline for ErrSeqGap.
	err = c.ReplAppend(2, []core.ReplRecord{{Seq: 9, Epoch: 2, Op: "revoke", ID: "z@x", When: when}})
	if !errors.Is(err, repl.ErrSeqGap) {
		t.Fatalf("gapped append error = %v, want repl.ErrSeqGap", err)
	}

	// The journal has adopted epoch 2, so this daemon is a replication
	// follower now: direct mutations are refused with a typed not_leader
	// error instead of forking the leader's sequence numbering.
	if err := c.Revoke("direct@x", "forbidden"); !errors.Is(err, repl.ErrNotLeader) {
		t.Fatalf("direct revoke on a follower = %v, want repl.ErrNotLeader", err)
	}
	if err := c.Unrevoke("b@x"); !errors.Is(err, repl.ErrNotLeader) {
		t.Fatalf("direct unrevoke on a follower = %v, want repl.ErrNotLeader", err)
	}
	if reg.IsRevoked("direct@x") {
		t.Fatal("refused mutation was applied anyway")
	}

	// Snapshot transfer replaces the state wholesale.
	if err := c.ReplSnapshot(&repl.SnapshotChunk{
		Epoch:   3,
		BaseSeq: 50,
		Total:   1,
		Index:   0,
		Chunks:  1,
		Entries: []core.RevocationEntry{{ID: "snap@x", Reason: "installed", When: when}},
	}); err != nil {
		t.Fatal(err)
	}
	if epoch, seq, err := c.ReplStatus(); err != nil || epoch != 3 || seq != 50 {
		t.Fatalf("status after snapshot = %d/%d, %v; want 3/50", epoch, seq, err)
	}
	if !reg.IsRevoked("snap@x") || reg.IsRevoked("b@x") {
		t.Error("snapshot not installed")
	}
}

// TestReplOpsRequireJournal: a daemon without a journal answers repl ops
// with a typed refusal instead of a crash or silent success.
func TestReplOpsRequireJournal(t *testing.T) {
	f := newFixture(t) // journal-less fixture from sem_test.go
	if _, _, err := f.client.ReplStatus(); err == nil {
		t.Fatal("repl.status accepted without a journal")
	} else if !errors.Is(err, ErrRemote) {
		t.Errorf("refusal %v should be a remote (server-answered) error", err)
	}
	if err := f.client.ReplAppend(1, []core.ReplRecord{{Seq: 1, Epoch: 1, Op: "revoke", ID: "a@x", When: time.Now()}}); err == nil {
		t.Fatal("repl.append accepted without a journal")
	}
}

// TestReplLeaderOverSockets is the tentpole end-to-end at package level,
// over real TCP: a leader daemon replicates Revokes (issued by an ordinary
// client against the leader) to a follower daemon; the follower then
// refuses the revoked identity like the paper demands.
func TestReplLeaderOverSockets(t *testing.T) {
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	followerNode := newReplNode(t, pp, nil, tmpJournal(t))

	leaderJournal := tmpJournal(t)
	leader, err := repl.NewLeader(repl.LeaderConfig{
		Journal:       leaderJournal,
		Epoch:         1,
		Peers:         []string{followerNode.addr},
		Dial:          ReplDialer(2 * time.Second),
		RetryInterval: 20 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	leaderNode := newReplNode(t, pp, leader, leaderJournal)

	c, err := Dial(leaderNode.addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Revoke(fmt.Sprintf("id%02d@x", i), "e2e"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Unrevoke("id00@x"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for followerNode.journal.LastSeq() < 11 {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want 11", followerNode.journal.LastSeq())
		}
		time.Sleep(10 * time.Millisecond)
	}
	freg := followerNode.journal.Registry()
	if freg.IsRevoked("id00@x") || !freg.IsRevoked("id09@x") {
		t.Fatal("follower state diverged from leader")
	}
	// The follower itself now refuses the revoked identity.
	fc, err := Dial(followerNode.addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	u := pp.Generator()
	if _, err := fc.IBEToken("id09@x", u); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("follower served revoked identity: %v", err)
	}
	// And it refuses to take direct mutations now that it follows a leader.
	if err := fc.Revoke("direct@x", "forbidden"); !errors.Is(err, repl.ErrNotLeader) {
		t.Fatalf("direct revoke on the follower = %v, want repl.ErrNotLeader", err)
	}
}

// TestShardedRevokeRoutesThroughLeader pins the new ShardedClient write
// path: the mutation must land on the ring's leader shard, the hint
// broadcast must reach the healthy rest of the fleet synchronously, and a
// dead non-leader shard must not fail the call (that is the catch-up
// path's job now). A dead leader, by contrast, is a hard error.
func TestShardedRevokeRoutesThroughLeader(t *testing.T) {
	fl := newFleet(t, 3)
	sc, err := NewShardedClient(fl.addrs, fl.pp, ShardedConfig{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ids, _ := fl.enrollIBE(sc, 8)

	if err := sc.Revoke(ids[0], "via leader"); err != nil {
		t.Fatal(err)
	}
	// The hint broadcast is synchronous: every shard sees it immediately.
	for _, addr := range fl.addrs {
		c, err := Dial(addr, fl.pp, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := c.ListRevoked()
		_ = c.Close()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range entries {
			if e.ID == ids[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %s missing the revocation", addr)
		}
	}

	leader := sc.LeaderAddr()
	// Kill a non-leader shard: Revoke must still succeed (the hint is
	// best-effort; in a replicated fleet catch-up finishes the job).
	var victim string
	for _, a := range fl.addrs {
		if a != leader {
			victim = a
			break
		}
	}
	vp := fl.proxyFor(victim)
	vp.setDown(true)
	vp.killAll()
	if err := sc.Revoke(ids[1], "non-leader down"); err != nil {
		t.Fatalf("Revoke with a non-leader shard down: %v", err)
	}
	if err := sc.Unrevoke(ids[1]); err != nil {
		t.Fatalf("Unrevoke with a non-leader shard down: %v", err)
	}

	// Kill the leader: the authoritative write path is gone, so the
	// mutation must fail loudly rather than degrade to best-effort.
	lp := fl.proxyFor(leader)
	lp.setDown(true)
	lp.killAll()
	if err := sc.Revoke(ids[2], "leader down"); err == nil {
		t.Fatal("Revoke succeeded with the leader shard dead")
	}
}

// TestShardedRevokeFollowsLeaderDrift pins the rebalance-hazard recovery:
// when the ring's leader designation points at a daemon running as a
// follower (the fleet list changed after the daemons were started with a
// fixed -repl-leader), the designated shard refuses the mutation with
// not_leader. The ShardedClient must then probe repl.status, find the
// daemon actually leading, and land the mutation there — authoritative
// writes keep working instead of failing until an operator restart.
func TestShardedRevokeFollowsLeaderDrift(t *testing.T) {
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	// Bind listeners first so the ring designation over the final address
	// set is known before choosing which daemon actually leads.
	const n = 3
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ring, err := shard.New(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	designated := ring.Leader()
	// Deliberately run the real leader on a shard the ring does NOT
	// designate — the post-rebalance drift scenario.
	actual := ""
	var peers []string
	for _, a := range addrs {
		if a != designated && actual == "" {
			actual = a
		}
	}
	for _, a := range addrs {
		if a != actual {
			peers = append(peers, a)
		}
	}
	journals := make(map[string]*core.Journal, n)
	for _, a := range addrs {
		journals[a] = tmpJournal(t)
	}
	leader, err := repl.NewLeader(repl.LeaderConfig{
		Journal:       journals[actual],
		Epoch:         1,
		Peers:         peers,
		Dial:          ReplDialer(2 * time.Second),
		RetryInterval: 20 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for i, a := range addrs {
		var l *repl.Leader
		if a == actual {
			l = leader
		}
		newReplNodeOn(t, pp, l, journals[a], lns[i])
	}
	// Wait for the leader to arm every follower's fence: the designated
	// shard only refuses direct mutations once it has adopted epoch 1.
	deadline := time.Now().Add(10 * time.Second)
	for _, a := range peers {
		for journals[a].Epoch() < 1 {
			if time.Now().After(deadline) {
				t.Fatalf("follower %s never adopted the leader epoch", a)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	sc, err := NewShardedClient(addrs, pp, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if got := sc.LeaderAddr(); got != designated {
		t.Fatalf("ring designation = %s, want %s", got, designated)
	}
	if err := sc.Revoke("drift@x", "ring moved"); err != nil {
		t.Fatalf("Revoke with drifted leader designation: %v", err)
	}
	// The mutation must have landed authoritatively on the actual leader…
	if !journals[actual].Registry().IsRevoked("drift@x") {
		t.Fatal("mutation missing from the actual leader")
	}
	// …and replicate to every follower, including the ring-designated one.
	for _, a := range peers {
		for !journals[a].Registry().IsRevoked("drift@x") {
			if time.Now().After(deadline) {
				t.Fatalf("follower %s never converged", a)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := sc.Unrevoke("drift@x"); err != nil {
		t.Fatalf("Unrevoke with drifted leader designation: %v", err)
	}
}

// TestRingLeaderStability: the ring's leader designation is a pure
// function of the node set — same fleet, any listing order, same leader.
func TestRingLeaderStability(t *testing.T) {
	fl := newFleet(t, 3)
	sc, err := NewShardedClient(fl.addrs, fl.pp, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	leader := sc.LeaderAddr()
	found := false
	for _, a := range fl.addrs {
		if a == leader {
			found = true
		}
	}
	if !found {
		t.Fatalf("leader %s not in fleet %v", leader, fl.addrs)
	}
	// Reversed listing, same designation.
	rev := []string{fl.addrs[2], fl.addrs[1], fl.addrs[0]}
	sc2, err := NewShardedClient(rev, fl.pp, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if got := sc2.LeaderAddr(); got != leader {
		t.Errorf("leader depends on listing order: %s vs %s", got, leader)
	}
}

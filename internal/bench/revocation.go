package bench

import (
	"fmt"
	"time"

	"repro/internal/revoke"
)

// RevocationConfig parameterizes the F1 sweep.
type RevocationConfig struct {
	Periods     []time.Duration // validity-period / CRL-interval sweep
	Populations []int           // user-count sweep
	Revocations int             // revocations per run, spread over one week
	Window      time.Duration   // simulation window
}

// DefaultRevocationConfig is the F1 sweep used by EXPERIMENTS.md.
func DefaultRevocationConfig() RevocationConfig {
	return RevocationConfig{
		Periods:     []time.Duration{time.Hour, 24 * time.Hour, 7 * 24 * time.Hour},
		Populations: []int{100, 1000, 10000},
		Revocations: 20,
		Window:      30 * 24 * time.Hour,
	}
}

// Revocation runs F1: for each (period, population) cell it measures the
// mean revocation latency and PKG reissue cost under the three models.
//
// Expected shape: SEM latency ≈ 0 and cost 0, independent of both axes;
// validity-period latency ≈ period/2 and cost ≈ population × boundaries;
// CRL latency ≈ interval/2 + propagation with no key reissue (but stale
// relying parties).
func Revocation(cfg RevocationConfig) (*Table, error) {
	if cfg.Revocations <= 0 {
		return nil, fmt.Errorf("bench: revocations must be positive")
	}
	revokeTimes := make([]time.Duration, cfg.Revocations)
	for i := range revokeTimes {
		// Spread over the first week, with a sub-hour offset so the sample
		// points never alias onto period boundaries (which would bias the
		// measured latency to a full period instead of ≈ period/2).
		revokeTimes[i] = time.Duration(i+1)*(7*24*time.Hour)/time.Duration(cfg.Revocations+1) +
			time.Duration(7*i+3)*time.Minute
	}

	var rows [][]string
	for _, pop := range cfg.Populations {
		sc := &revoke.Scenario{
			Population:  pop,
			Duration:    cfg.Window,
			RevokeTimes: revokeTimes,
		}
		semRes, err := sc.Run(revoke.NewSEM())
		if err != nil {
			return nil, fmt.Errorf("sem scenario: %w", err)
		}
		rows = append(rows, []string{
			"sem", fmt.Sprintf("%d", pop), "—",
			semRes.MeanLatency.Round(time.Second).String(),
			semRes.MaxLatency.Round(time.Second).String(),
			fmt.Sprintf("%d", semRes.KeysIssued),
		})
		for _, period := range cfg.Periods {
			vpRes, err := sc.Run(revoke.NewValidityPeriod(period))
			if err != nil {
				return nil, fmt.Errorf("validity scenario: %w", err)
			}
			rows = append(rows, []string{
				"validity-period", fmt.Sprintf("%d", pop), period.String(),
				vpRes.MeanLatency.Round(time.Second).String(),
				vpRes.MaxLatency.Round(time.Second).String(),
				fmt.Sprintf("%d", vpRes.KeysIssued),
			})
			crlRes, err := sc.Run(revoke.NewCRL(period, 10*time.Minute))
			if err != nil {
				return nil, fmt.Errorf("crl scenario: %w", err)
			}
			rows = append(rows, []string{
				"crl", fmt.Sprintf("%d", pop), period.String(),
				crlRes.MeanLatency.Round(time.Second).String(),
				crlRes.MaxLatency.Round(time.Second).String(),
				fmt.Sprintf("%d", crlRes.KeysIssued),
			})
		}
	}
	return &Table{
		ID:      "F1",
		Caption: "revocation latency and PKG reissue cost vs period and population (simulated clock)",
		Columns: []string{"model", "population", "period", "mean latency", "max latency", "keys reissued"},
		Rows:    rows,
		Notes: []string{
			"expected shape: SEM column constant at ≈0s/0 keys; validity-period mean latency ≈ period/2 and reissue cost linear in population",
		},
	}, nil
}

package pairing

import (
	"crypto/rand"
	"math/big"

	"repro/internal/gf"
)

// BatchInGT reports, per element, whether each gᵢ lies in the order-q
// subgroup of F_p²* — the batched form of InGT for validating a batch of
// decryption tokens in one pass.
//
// A single InGT costs one full q-width exponentiation, which at paper
// sizes rivals the pairing that produced the token; checking a batch of k
// one by one costs k of them. Instead this draws independent uniform
// 64-bit coefficients rᵢ (crypto/rand; unpredictable to whoever produced
// the elements), forms the random linear combination t = ∏ gᵢ^{rᵢ}, and
// checks t^q = 1 with ONE q-width exponentiation plus k cheap 64-bit
// exponentiations. Writing gᵢ = hᵢ·εᵢ with hᵢ order-q and εᵢ the cofactor
// component, t^q = ∏ εᵢ^{q·rᵢ}; if any εᵢ ≠ 1 the combination survives
// unless the rᵢ hit one of the adversary's kernel cosets, probability at
// most 2⁻⁶⁴ per offending element. On combination failure (or a zero
// element, which can never be in the subgroup) it falls back to individual
// InGT checks so the caller learns exactly which items were bad.
//
// The returned slice has len(gs) entries; a nil element reports false. The
// error reports a randomness or arithmetic failure, not a membership
// verdict.
func (pp *Params) BatchInGT(gs []*GT) ([]bool, error) {
	ok := make([]bool, len(gs))
	if len(gs) == 0 {
		return ok, nil
	}
	// Zero or nil elements would absorb the whole product; screen them out
	// of the combination and report them false directly.
	live := make([]*GT, 0, len(gs))
	liveIdx := make([]int, 0, len(gs))
	for i, g := range gs {
		if g == nil || g.v.IsZero() {
			continue
		}
		live = append(live, g)
		liveIdx = append(liveIdx, i)
	}
	if len(live) == 0 {
		return ok, nil
	}

	// t = ∏ gᵢ^{rᵢ} with fresh uniform 64-bit rᵢ. The coefficients are
	// public once used, but must be unpredictable before the elements are
	// fixed — crypto/rand, never a seeded PRNG.
	var buf [8]byte
	r := new(big.Int)
	acc := pp.field.One()
	term := new(gf.Element)
	for _, g := range live {
		if _, err := rand.Read(buf[:]); err != nil {
			return nil, err
		}
		// Force the top bit so rᵢ ≠ 0 never wastes an element; the
		// adversary's hit probability is unchanged at 2⁻⁶³ ≈ 2⁻⁶⁴.
		buf[0] |= 0x80
		r.SetBytes(buf[:])
		if _, err := term.Exp(g.v, r); err != nil {
			return nil, err
		}
		acc.Mul(acc, term)
	}
	raw := new(gf.Element)
	if _, err := raw.Exp(acc, pp.curve.Q()); err != nil {
		return nil, err
	}
	if raw.IsOne() {
		for _, i := range liveIdx {
			ok[i] = true
		}
		return ok, nil
	}

	// At least one live element is outside the subgroup: identify the
	// culprits individually.
	for j, g := range live {
		ok[liveIdx[j]] = pp.InGT(g)
	}
	return ok, nil
}

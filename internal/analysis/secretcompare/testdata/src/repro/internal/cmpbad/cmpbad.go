// Package cmpbad exercises the secretcompare positive cases.
package cmpbad

import (
	"bytes"
	"math/big"
	"reflect"

	"repro/internal/keys"
)

// SameKey compares secret exponent pointers with ==.
func SameKey(a, b *keys.PrivateKey) bool {
	return a.D == b.D // want `secret-bearing value compared with ==; use crypto/subtle`
}

// Changed compares with !=.
func Changed(a, b *keys.PrivateKey) bool {
	return a.D != b.D // want `secret-bearing value compared with !=; use crypto/subtle`
}

// MatchMaterial short-circuits over key bytes.
func MatchMaterial(k *keys.PrivateKey, probe []byte) bool {
	return bytes.Equal(k.Bytes, probe) // want `secret-bearing value passed to bytes.Equal; use crypto/subtle`
}

// DeepMatch reflects over the whole secret.
func DeepMatch(a, b *keys.PrivateKey) bool {
	return reflect.DeepEqual(a, b) // want `secret-bearing value passed to reflect.DeepEqual; use crypto/subtle`
}

// OrderKeys ranks secret exponents via the receiver of big.Int.Cmp, which
// returns at the first differing limb.
func OrderKeys(a, b *keys.PrivateKey) bool {
	return a.D.Cmp(b.D) < 0 // want `secret-bearing value compared with big.Int.Cmp; use crypto/subtle or fp.Field.Equal`
}

// ProbeMagnitude leaks the secret through the CmpAbs argument even though
// the receiver is public.
func ProbeMagnitude(k *keys.PrivateKey, probe *big.Int) bool {
	return probe.CmpAbs(k.D) == 0 // want `secret-bearing value compared with big.Int.CmpAbs; use crypto/subtle or fp.Field.Equal`
}

// material moves the key bytes through a call boundary; the interprocedural
// taint layer tracks the result summary.
func material(k *keys.PrivateKey) []byte { return k.Bytes }

// MatchDerived compares bytes that are two hops from the annotated type:
// a helper return assigned to a local.
func MatchDerived(k *keys.PrivateKey, probe []byte) bool {
	m := material(k)
	return bytes.Equal(m, probe) // want `secret-bearing value passed to bytes.Equal; use crypto/subtle`
}

// Package connbad exercises the deadlinecheck positive cases.
package connbad

import (
	"repro/internal/conn"
	"repro/internal/wire"
)

// Probe reads directly from a freshly dialed connection with no deadline.
func Probe(addr string) ([]byte, error) {
	c, err := conn.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	buf := make([]byte, 64)
	if _, err := c.Read(buf); err != nil { // want `direct Read on connection without a preceding SetDeadline`
		return nil, err
	}
	return buf, nil
}

// Send funnels through the framing helper; the I/O classification follows
// the connection into wire.WriteFrame.
func Send(addr string, msg []byte) error {
	c, err := conn.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = wire.WriteFrame(c, msg) // want `WriteFrame \(which reads/writes the connection\) on connection without a preceding SetDeadline`
	return err
}

// pump does undeadlined I/O on its parameter: not flagged here (the
// caller owns the connection), but classified I/O-performing.
func pump(c *conn.Conn, buf []byte) error {
	_, err := wire.ReadFrame(c, buf)
	return err
}

// Fetch owns the connection and delegates to pump without a deadline; the
// classification surfaces the flag at this call site.
func Fetch(addr string) ([]byte, error) {
	c, err := conn.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	buf := make([]byte, 64)
	if err := pump(c, buf); err != nil { // want `pump \(which reads/writes the connection\) on connection without a preceding SetDeadline`
		return nil, err
	}
	return buf, nil
}

// server holds a connection in a field; field-rooted I/O carries the same
// duty.
type server struct {
	c *conn.Conn
}

// Greet writes through the field without a deadline.
func (s *server) Greet() error {
	_, err := s.c.Write([]byte("hello")) // want `direct Write on connection without a preceding SetDeadline`
	return err
}

package keyfile

import (
	"testing"

	"repro/internal/core"
)

// Failure-injection tests: corrupt artifacts must be rejected at load/build
// time, never at first use.

func TestBuildSEMsRejectsCorruptStore(t *testing.T) {
	d := testDeployment(t)
	sys := d.System()

	// Corrupt IBE point.
	badIBE := &SEMStore{IBE: map[string][]byte{"x@x": {1, 2, 3}}}
	if _, _, _, err := badIBE.BuildSEMs(sys, core.NewRegistry()); err == nil {
		t.Error("corrupt IBE half accepted")
	}

	// RSA halves without a system modulus.
	noMod := &System{ParamSet: sys.ParamSet, MsgLen: sys.MsgLen, PPub: sys.PPub}
	rsaOnly := &SEMStore{RSA: map[string][]byte{"x@x": {1}}}
	if _, _, _, err := rsaOnly.BuildSEMs(noMod, core.NewRegistry()); err == nil {
		t.Error("RSA store without modulus accepted")
	}

	// Unknown parameter set.
	badSys := &System{ParamSet: "nope", MsgLen: 32, PPub: sys.PPub}
	if _, _, _, err := (&SEMStore{}).BuildSEMs(badSys, core.NewRegistry()); err == nil {
		t.Error("unknown parameter set accepted")
	}

	// Corrupt system P_pub.
	badPPub := &System{ParamSet: sys.ParamSet, MsgLen: sys.MsgLen, PPub: []byte{9, 9}}
	if _, _, _, err := (&SEMStore{}).BuildSEMs(badPPub, core.NewRegistry()); err == nil {
		t.Error("corrupt P_pub accepted")
	}
}

func TestUserAccessorErrors(t *testing.T) {
	d := testDeployment(t)
	pp, err := d.System().Params()
	if err != nil {
		t.Fatal(err)
	}
	empty := &User{ID: "x@x"}
	if _, err := empty.IBEUserKey(pp); err == nil {
		t.Error("missing IBE half accepted")
	}
	if _, err := empty.GDHUserKey(pp); err == nil {
		t.Error("missing GDH material accepted")
	}
	if _, err := empty.RSAUserKey(d.System()); err == nil {
		t.Error("missing RSA half accepted")
	}
	corrupt := &User{ID: "x@x", IBEHalf: []byte{1}, GDHHalf: []byte{2}, GDHPublic: []byte{3}}
	if _, err := corrupt.IBEUserKey(pp); err == nil {
		t.Error("corrupt IBE half accepted")
	}
	if _, err := corrupt.GDHUserKey(pp); err == nil {
		t.Error("corrupt GDH public accepted")
	}
}

func TestGDHPublicKeyCorrupt(t *testing.T) {
	d := testDeployment(t)
	sys := d.System()
	sysBad := &System{
		ParamSet: sys.ParamSet,
		MsgLen:   sys.MsgLen,
		PPub:     sys.PPub,
		GDHKeys:  map[string][]byte{"x@x": {1, 2}},
	}
	if _, err := sysBad.GDHPublicKey("x@x"); err == nil {
		t.Error("corrupt GDH key accepted")
	}
}

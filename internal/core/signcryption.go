package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/bf"
	"repro/internal/bls"
)

// Mediated signcryption — the paper's closing open problem: "find [a]
// signcryption scheme where both the capabilities of the sender and those
// of the receiver can be removed using this kind of architecture."
//
// This realizes it as the sign-then-encrypt composition of the two
// mediated primitives already in this package:
//
//	Signcrypt(sender → recipient, m):
//	  1. S = mediated-GDH-sign(sender, m ‖ recipient)   [sender's SEM gate]
//	  2. C = mediated-IBE-encrypt(recipient, m ‖ S)      [no gate to send]
//	Designcrypt:
//	  3. m ‖ S = mediated-IBE-decrypt(C)                 [recipient's SEM gate]
//	  4. verify S under the sender's GDH key
//
// Revoking the SENDER makes step 1 fail: no new signcryptions. Revoking
// the RECIPIENT makes step 3 fail: no more designcryptions. The recipient
// identity is bound inside the signature, so a ciphertext cannot be
// re-targeted.
//
// The composition is generic sign-then-encrypt, not a bespoke signcryption
// scheme with a joint security proof — it demonstrates the *revocation*
// property the paper asks for, which is the SEM architecture's
// contribution.

var (
	// ErrSigncryptTooLong is returned when the message plus signature do
	// not fit the IBE block.
	ErrSigncryptTooLong = errors.New("core: message too long for signcryption block")

	// ErrDesigncrypt is returned when the embedded signature does not
	// verify or the envelope is malformed.
	ErrDesigncrypt = errors.New("core: designcryption failed")
)

// Signcrypter wires the two SEMs a deployment already runs.
type Signcrypter struct {
	IBE    *IBESEM
	GDH    *GDHSEM
	Public *bf.PublicParams
}

// NewSigncrypter builds the composite over existing mediated
// infrastructure.
func NewSigncrypter(pub *bf.PublicParams, ibe *IBESEM, gdh *GDHSEM) *Signcrypter {
	return &Signcrypter{IBE: ibe, GDH: gdh, Public: pub}
}

// Overhead returns the bytes of the IBE block consumed by the embedded
// signature and length framing.
func (sc *Signcrypter) Overhead() int {
	return 2 + 1 + sc.Public.Pairing.Curve().CoordinateSize()
}

// MaxMessageLen returns the longest message Signcrypt accepts.
func (sc *Signcrypter) MaxMessageLen() int {
	return sc.Public.MsgLen - sc.Overhead()
}

// Signcrypt signs msg with the sender's mediated GDH key (SEM-gated) and
// encrypts message plus signature to the recipient identity.
func (sc *Signcrypter) Signcrypt(rng io.Reader, sender *GDHUserKey, recipient string, msg []byte) (*bf.Ciphertext, error) {
	if len(msg) > sc.MaxMessageLen() {
		return nil, fmt.Errorf("%w: %d > %d", ErrSigncryptTooLong, len(msg), sc.MaxMessageLen())
	}
	// Bind the recipient into the signed payload so the envelope cannot be
	// re-encrypted to someone else without detection.
	signed := signcryptionPayload(sender.ID, recipient, msg)
	sig, err := Sign(sc.GDH, sender, signed)
	if err != nil {
		return nil, fmt.Errorf("signcrypt (sender gate): %w", err)
	}
	block := make([]byte, sc.Public.MsgLen)
	block[0] = byte(len(msg) >> 8)
	block[1] = byte(len(msg))
	copy(block[2:], msg)
	copy(block[2+len(msg):], sig.Marshal())
	return sc.Public.Encrypt(rng, recipient, block)
}

// Designcrypt decrypts with the recipient's mediated IBE key (SEM-gated),
// extracts and verifies the embedded signature, and returns the message.
func (sc *Signcrypter) Designcrypt(recipient *UserKeyHalf, senderID string, senderKey *bls.PublicKey, c *bf.Ciphertext) ([]byte, error) {
	block, err := Decrypt(sc.IBE, recipient, c)
	if err != nil {
		return nil, fmt.Errorf("designcrypt (recipient gate): %w", err)
	}
	sigLen := 1 + sc.Public.Pairing.Curve().CoordinateSize()
	if len(block) < 2 {
		return nil, fmt.Errorf("%w: short block", ErrDesigncrypt)
	}
	msgLen := int(block[0])<<8 | int(block[1])
	if msgLen > sc.MaxMessageLen() || 2+msgLen+sigLen > len(block) { //cryptolint:public (framing validation on the recovered plaintext; the length is revealed by design)
		return nil, fmt.Errorf("%w: malformed framing", ErrDesigncrypt)
	}
	msg := bytes.Clone(block[2 : 2+msgLen])
	sig, err := sc.Public.Pairing.Curve().Unmarshal(block[2+msgLen : 2+msgLen+sigLen])
	if err != nil {
		return nil, fmt.Errorf("%w: embedded signature: %v", ErrDesigncrypt, err)
	}
	signed := signcryptionPayload(senderID, recipient.ID, msg)
	if err := senderKey.Verify(signed, sig); err != nil {
		return nil, fmt.Errorf("%w: signature invalid: %v", ErrDesigncrypt, err)
	}
	return msg, nil
}

// signcryptionPayload is the domain-separated byte string the sender signs.
func signcryptionPayload(senderID, recipientID string, msg []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString("SIGNCRYPT-V1\x00")
	buf.WriteString(senderID)
	buf.WriteByte(0)
	buf.WriteString(recipientID)
	buf.WriteByte(0)
	buf.Write(msg)
	return buf.Bytes()
}

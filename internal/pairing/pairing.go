// Package pairing implements the modified Tate pairing on the supersingular
// curve E(F_p): y² = x³ + x (p ≡ 3 mod 4, embedding degree 2) that the
// paper's schemes are built on:
//
//	ê : G1 × G1 → GT,   ê(P, Q) = e_q(P, φ(Q))^((p²−1)/q)
//
// where e_q is the order-q Tate pairing computed with Miller's algorithm,
// φ(x, y) = (−x, i·y) is the distortion map into E(F_p²), and GT is the
// order-q subgroup of F_p²*. The map is bilinear, non-degenerate
// (ê(P, P) ≠ 1 for P ≠ O) and efficiently computable — the three properties
// Section 3.1 of the paper requires.
//
// Implementation notes:
//
//   - Denominator elimination: the x-coordinate of φ(Q) lies in F_p, so
//     every vertical-line factor of the Miller loop lands in F_p*, which the
//     final exponentiation (p²−1)/q = (p−1)·(p+1)/q annihilates. The default
//     loop therefore skips vertical lines entirely. millerFull keeps them and
//     exists for the ablation benchmark and as a cross-check oracle in tests.
//   - Final exponentiation: f^(p−1) = conj(f)/f (Frobenius on F_p² is
//     conjugation), then one square-and-multiply by (p+1)/q.
//
//cryptolint:vartime (big.Int Miller loop and GT arithmetic; constant-time execution is the fp limb backend's contract)
package pairing

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"repro/internal/curve"
	"repro/internal/gf"
	"repro/internal/mathx"
)

// ErrDegenerate is returned by operations that require a non-identity GT
// element.
var ErrDegenerate = errors.New("pairing: degenerate (identity) pairing value")

// Params bundles everything the schemes need: the groups G1 (order-q curve
// subgroup), GT (order-q subgroup of F_p²*) and the pairing between them.
// Immutable (the generator table is built lazily under a sync.Once) and safe
// for concurrent use.
type Params struct {
	curve    *curve.Curve //cryptolint:public (system parameters)
	field    *gf.Field    //cryptolint:public (system parameters)
	gen      *curve.Point //cryptolint:public (system parameters)
	expTail  *big.Int     //cryptolint:public (derived from public p and q)
	qBits    int
	security string

	genTabOnce sync.Once
	genTab     *curve.Precomputed //cryptolint:public (comb for the public generator)

	genFPOnce sync.Once
	genFP     *FixedPair //cryptolint:public (Miller program for the public generator)
}

// Generate creates fresh pairing parameters with a qBits-bit prime group
// order and a pBits-bit field. pBits − qBits should be at least 16 so a
// cofactor exists. Generation retries until p = q·c − 1 is prime with
// c ≡ 0 (mod 4), guaranteeing p ≡ 3 (mod 4).
func Generate(rng io.Reader, qBits, pBits int) (*Params, error) {
	if pBits-qBits < 16 {
		return nil, fmt.Errorf("pairing: pBits−qBits = %d too small for a cofactor", pBits-qBits)
	}
	q, err := mathx.RandomPrime(rng, qBits)
	if err != nil {
		return nil, fmt.Errorf("generate group order: %w", err)
	}
	kBits := pBits - qBits - 2 // c = 4k, so |c| = kBits + 2
	lo := new(big.Int).Lsh(big.NewInt(1), uint(kBits-1))
	hi := new(big.Int).Lsh(big.NewInt(1), uint(kBits))
	for attempt := 0; attempt < 100000; attempt++ {
		k, err := mathx.RandomInRange(rng, lo, hi)
		if err != nil {
			return nil, err
		}
		c := new(big.Int).Lsh(k, 2)
		if new(big.Int).Mod(c, q).Sign() == 0 {
			continue // keep q ∥ p+1 exactly once
		}
		p := new(big.Int).Mul(q, c)
		p.Sub(p, big.NewInt(1))
		if p.BitLen() != pBits || !p.ProbablyPrime(20) {
			continue
		}
		return fromPQ(rng, p, q)
	}
	return nil, fmt.Errorf("pairing: no suitable prime found for qBits=%d pBits=%d", qBits, pBits)
}

// fromPQ finishes parameter construction once p and q are fixed.
func fromPQ(rng io.Reader, p, q *big.Int) (*Params, error) {
	cv, err := curve.New(p, q)
	if err != nil {
		return nil, err
	}
	fld, err := gf.NewField(p)
	if err != nil {
		return nil, err
	}
	gen, err := cv.RandomG1(rng)
	if err != nil {
		return nil, fmt.Errorf("generate G1 generator: %w", err)
	}
	if !gen.InSubgroup() {
		return nil, fmt.Errorf("pairing: generated point escapes subgroup (q² | p+1?)")
	}
	tail := new(big.Int).Add(p, big.NewInt(1))
	tail.Div(tail, q)
	return &Params{
		curve:   cv,
		field:   fld,
		gen:     gen,
		expTail: tail,
		qBits:   q.BitLen(),
	}, nil
}

// Curve returns the underlying curve (the group G1 lives on it).
func (pp *Params) Curve() *curve.Curve { return pp.curve }

// Field returns the extension field F_p² hosting GT.
func (pp *Params) Field() *gf.Field { return pp.field }

// Generator returns the fixed public generator P of G1.
func (pp *Params) Generator() *curve.Point { return pp.gen }

// GeneratorMul returns k·P for the fixed generator P, using a fixed-base
// comb table built lazily on first use (and shared by all callers). Every
// scheme layer multiplies the generator constantly — key generation, BLS
// signing, DKG commitments, BF encryption — so this is the hot path the
// table exists for. The result is bit-identical to Generator().ScalarMul(k).
func (pp *Params) GeneratorMul(k *big.Int) *curve.Point {
	pp.genTabOnce.Do(func() {
		tab, err := curve.NewPrecomputed(pp.gen, pp.curve.Q())
		if err == nil {
			pp.genTab = tab
		}
		// err is impossible for a valid generator (non-infinity, positive
		// order); if Params were built by hand with a bad generator we fall
		// through to the generic path below.
	})
	if pp.genTab != nil {
		return pp.genTab.ScalarMul(k)
	}
	return pp.gen.ScalarMul(k)
}

// Q returns a copy of the prime group order.
func (pp *Params) Q() *big.Int { return pp.curve.Q() }

// P returns a copy of the field characteristic.
func (pp *Params) P() *big.Int { return pp.curve.P() }

// Name returns a human-readable label for fixed parameter sets ("" for
// generated ones).
func (pp *Params) Name() string { return pp.security }

// GT is an element of the order-q target group, a thin wrapper over F_p²
// that carries the group order for exponent reduction.
type GT struct {
	v *gf.Element
	q *big.Int
}

// One returns the identity of GT.
func (pp *Params) One() *GT {
	return &GT{v: pp.field.One(), q: pp.curve.Q()}
}

// Element exposes the raw F_p² value (a copy).
func (g *GT) Element() *gf.Element { return g.v.Copy() }

// IsOne reports whether g is the identity.
func (g *GT) IsOne() bool { return g.v.IsOne() }

// Equal reports whether two GT elements are equal.
func (g *GT) Equal(h *GT) bool { return g.v.Equal(h.v) }

// Mul returns g·h.
func (g *GT) Mul(h *GT) *GT {
	out := g.v.Copy()
	out.Mul(out, h.v)
	return &GT{v: out, q: g.q}
}

// Inverse returns g⁻¹. GT elements produced by the pairing are never zero.
func (g *GT) Inverse() (*GT, error) {
	inv, err := new(gf.Element).Inverse(g.v)
	if err != nil {
		return nil, fmt.Errorf("invert GT element: %w", err)
	}
	return &GT{v: inv, q: g.q}, nil
}

// Exp returns g^k with k reduced modulo the group order (negative k
// allowed). The exponent is non-negative after the reduction, so the
// underlying field exponentiation can only fail on a corrupted receiver;
// that condition is surfaced as an error rather than a panic so no request
// path can crash the process.
func (g *GT) Exp(k *big.Int) (*GT, error) {
	e := new(big.Int).Mod(k, g.q)
	out := new(gf.Element)
	if _, err := out.Exp(g.v, e); err != nil {
		return nil, fmt.Errorf("pairing: GT exponentiation: %w", err)
	}
	return &GT{v: out, q: g.q}, nil
}

// Bytes returns the canonical fixed-width serialization of g.
func (g *GT) Bytes() []byte { return g.v.Bytes() }

// GTFromBytes parses a GT element serialized by GT.Bytes. The order-q
// subgroup membership of untrusted inputs can be checked with
// Params.InGT.
func (pp *Params) GTFromBytes(data []byte) (*GT, error) {
	el, err := pp.field.ElementFromBytes(data)
	if err != nil {
		return nil, err
	}
	return &GT{v: el, q: pp.curve.Q()}, nil
}

// InGT reports whether g lies in the order-q subgroup of F_p²*.
func (pp *Params) InGT(g *GT) bool {
	if g.v.IsZero() {
		return false
	}
	raw := new(gf.Element)
	if _, err := raw.Exp(g.v, pp.curve.Q()); err != nil {
		return false
	}
	return raw.IsOne()
}

// Pair computes the modified Tate pairing ê(P, Q) with denominator
// elimination and an inversion-free Miller loop. ê(P, O) = ê(O, Q) = 1.
// An error indicates corrupted inputs (the internal exponentiations cannot
// fail for points produced by this package).
func (pp *Params) Pair(p1, q1 *curve.Point) (*GT, error) {
	if p1.IsInfinity() || q1.IsInfinity() {
		return pp.One(), nil
	}
	f := pp.millerJacobian(p1, q1)
	v, err := pp.finalExp(f)
	if err != nil {
		return nil, err
	}
	return &GT{v: v, q: pp.curve.Q()}, nil
}

// PairWithGenerator computes ê(P, q1) for the fixed system generator P via
// a lazily built FixedPair program shared by all callers — the pairing
// analogue of GeneratorMul. Verification equations pair against the
// generator constantly (BLS, threshold share proofs), which is the hot path
// the cached program exists for. Bit-identical to Pair(Generator(), q1).
func (pp *Params) PairWithGenerator(q1 *curve.Point) (*GT, error) {
	pp.genFPOnce.Do(func() {
		fp, err := pp.NewFixedPair(pp.gen)
		if err == nil {
			pp.genFP = fp
		}
		// err is impossible for a valid generator; hand-built Params with a
		// bad generator fall through to the generic path below.
	})
	if pp.genFP != nil {
		return pp.genFP.Pair(q1)
	}
	return pp.Pair(pp.gen, q1)
}

// PairFull computes the same pairing along the affine Miller loop without
// denominator elimination (tracking vertical-line factors explicitly). It
// exists as a correctness oracle for the optimized Jacobian loop and for
// the Miller-loop ablation benchmark. It returns an error only on
// degenerate line slopes, which valid odd-order inputs never produce.
func (pp *Params) PairFull(p1, q1 *curve.Point) (*GT, error) {
	if p1.IsInfinity() || q1.IsInfinity() {
		return pp.One(), nil
	}
	f, err := pp.millerAffine(p1, q1, true)
	if err != nil {
		return nil, err
	}
	v, err := pp.finalExp(f)
	if err != nil {
		return nil, err
	}
	return &GT{v: v, q: pp.curve.Q()}, nil
}

// millerJacobian evaluates f_{q,P}(φ(Q)) with the running point V kept in
// Jacobian coordinates, deriving the line coefficients directly from the
// doubling/addition intermediates — no modular inversion anywhere in the
// loop (the affine loop pays one ModInverse per iteration for the slope).
//
// Validity of the scaling: the affine line through V with slope λ = n/d is
// replaced by d·l, i.e. each Miller factor is multiplied by some d ∈ F_p*.
// The final exponentiation (p²−1)/q = (p−1)·(p+1)/q annihilates all of
// F_p* — the same argument that justifies denominator elimination — so the
// output GT element is bit-identical to the affine loop's.
//
// Line coefficients at φ(Q) = (−x_Q, i·y_Q), derived from the Jacobian
// doubling intermediates (V = (X, Y, Z), M = 3X² + Z⁴, Z₃ = 2YZ), scaling
// the affine tangent by 2YZ³:
//
//	l_dbl = [M·(X + Z²·x_Q) − 2Y²] + [Z₃·Z²·y_Q]·i
//
// and for mixed addition of the affine base P (H = x_P·Z² − X,
// R = y_P·Z³ − Y, Z₃ = ZH), scaling the affine chord by Z₃:
//
//	l_add = [R·(x_Q + x_P) − Z₃·y_P] + [Z₃·y_Q]·i
//
// The step formulas live in millerVars (amortized.go), which emits each line
// as generic coefficients (a, b, c) with l = (a + b·x_Q) + (c·y_Q)·i; this
// loop is one of three consumers of that machinery alongside MultiPair and
// NewFixedPair.
func (pp *Params) millerJacobian(p1, q1 *curve.Point) *gf.Element {
	fld := pp.field
	F := fld.Fp()
	xQ, yQ := toMont(F, q1.X()), toMont(F, q1.Y())
	mv := newMillerVars(F, p1)

	f := fld.One()
	line := fld.One()
	a, b, c := F.NewElt(), F.NewElt(), F.NewElt()
	lr, li := F.NewElt(), F.NewElt()
	n := pp.curve.Q()

	mulLine := func() {
		F.Mul(lr, b, xQ)
		F.Add(lr, lr, a)
		F.Mul(li, c, yQ)
		f.Mul(f, fld.SetMont(line, lr, li))
	}
	for i := n.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		if mv.doubleStep(a, b, c) {
			mulLine()
		}
		if n.Bit(i) == 1 && mv.addStep(a, b, c) {
			mulLine()
		}
	}
	return f
}

// millerAffine evaluates f_{q,P}(φ(Q)) by the original affine Miller loop.
// When withDenominators is true, vertical-line factors are divided out
// explicitly; otherwise they are skipped (denominator elimination).
//
// With φ(Q) = (−x_Q, i·y_Q), the line through V with slope λ evaluated at
// φ(Q) is
//
//	l(φQ) = i·y_Q − y_V − λ·(−x_Q − x_V)  =  (−y_V − λ·(−x_Q − x_V)) + y_Q·i
//
// whose real part stays in F_p, so each step multiplies f by a cheap
// "almost-F_p" element.
func (pp *Params) millerAffine(p1, q1 *curve.Point, withDenominators bool) (*gf.Element, error) {
	fld := pp.field
	pMod := pp.curve.P()
	xQneg := new(big.Int).Neg(q1.X())
	xQneg.Mod(xQneg, pMod)
	yQ := q1.Y()

	f := fld.One()
	fden := fld.One()
	v := p1
	n := pp.curve.Q()

	lineAt := func(vPt *curve.Point, lambda *big.Int) *gf.Element {
		// real = −y_V − λ·(−x_Q − x_V) mod p
		re := new(big.Int).Sub(xQneg, vPt.X())
		re.Mul(re, lambda)
		re.Add(re, vPt.Y())
		re.Neg(re)
		re.Mod(re, pMod)
		return fld.NewElement(re, yQ)
	}
	vertical := func(xV *big.Int) *gf.Element {
		// x(φQ) − x_V = −x_Q − x_V ∈ F_p
		re := new(big.Int).Sub(xQneg, xV)
		re.Mod(re, pMod)
		return fld.FromInt(re)
	}

	for i := n.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		if withDenominators {
			fden.Square(fden)
		}
		if !v.IsInfinity() {
			if v.Y().Sign() == 0 {
				// Order-2 point: tangent is vertical (cannot occur in the
				// odd-order subgroup, handled for completeness).
				f.Mul(f, vertical(v.X()))
				v = v.Double()
			} else {
				lambda, err := tangentSlope(v, pMod)
				if err != nil {
					return nil, err
				}
				l := lineAt(v, lambda)
				f.Mul(f, l)
				v = v.Double()
				if withDenominators && !v.IsInfinity() {
					fden.Mul(fden, vertical(v.X()))
				}
			}
		}
		if n.Bit(i) == 1 && !v.IsInfinity() {
			if v.Equal(p1.Neg()) {
				// Line through V and P is vertical.
				if withDenominators {
					f.Mul(f, vertical(p1.X()))
				}
				v = pp.curve.Infinity()
			} else if v.Equal(p1) {
				lambda, err := tangentSlope(v, pMod)
				if err != nil {
					return nil, err
				}
				f.Mul(f, lineAt(v, lambda))
				v = v.Double()
				if withDenominators && !v.IsInfinity() {
					fden.Mul(fden, vertical(v.X()))
				}
			} else {
				lambda, err := chordSlope(v, p1, pMod)
				if err != nil {
					return nil, err
				}
				f.Mul(f, lineAt(v, lambda))
				v = v.Add(p1)
				if withDenominators && !v.IsInfinity() {
					fden.Mul(fden, vertical(v.X()))
				}
			}
		}
	}
	if withDenominators {
		inv, err := new(gf.Element).Inverse(fden)
		if err != nil {
			return nil, fmt.Errorf("pairing: invert denominator product: %w", err)
		}
		f.Mul(f, inv)
	}
	return f, nil
}

// ErrBadSlope reports a line-slope denominator that is not invertible mod p.
// It cannot arise for points on the curve over a prime field (2y and x_W−x_V
// are nonzero in the branches that compute a slope), so seeing it means the
// inputs were corrupted; the affine loop surfaces it instead of letting
// big.Int.ModInverse return nil and crash a later multiplication.
var ErrBadSlope = errors.New("pairing: line slope denominator is not invertible")

func tangentSlope(v *curve.Point, p *big.Int) (*big.Int, error) {
	num := new(big.Int).Mul(v.X(), v.X())
	num.Mul(num, big.NewInt(3))
	num.Add(num, big.NewInt(1))
	num.Mod(num, p)
	den := new(big.Int).Lsh(v.Y(), 1)
	if den.ModInverse(den, p) == nil {
		return nil, fmt.Errorf("%w: 2·y_V not invertible mod p", ErrBadSlope)
	}
	num.Mul(num, den)
	num.Mod(num, p)
	return num, nil
}

func chordSlope(v, w *curve.Point, p *big.Int) (*big.Int, error) {
	num := new(big.Int).Sub(w.Y(), v.Y())
	den := new(big.Int).Sub(w.X(), v.X())
	if den.ModInverse(den, p) == nil {
		return nil, fmt.Errorf("%w: x_W − x_V not invertible mod p", ErrBadSlope)
	}
	num.Mul(num, den)
	num.Mod(num, p)
	return num, nil
}

// finalExp raises f to (p²−1)/q = (p−1)·(p+1)/q. The easy part
// f^(p−1) = conj(f)·f⁻¹ lands in the norm-1 (unitary) subgroup, so the tail
// exponentiation by (p+1)/q runs with 4-bit windows over the cheap unitary
// squaring — same result as the generic square-and-multiply, fewer and
// cheaper F_p multiplications. The error return is kept for signature
// stability with earlier revisions; the current implementation cannot fail.
func (pp *Params) finalExp(f *gf.Element) (*gf.Element, error) {
	// f^(p−1) = conj(f) · f⁻¹
	inv, err := new(gf.Element).Inverse(f)
	if err != nil {
		// A zero Miller value cannot occur for valid inputs (line functions
		// vanish only on the points themselves).
		return pp.field.One(), nil
	}
	g := new(gf.Element).Conjugate(f)
	g.Mul(g, inv)
	return expUnitary(pp.field, g, pp.expTail), nil
}

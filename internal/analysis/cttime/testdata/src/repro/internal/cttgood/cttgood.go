// Package cttgood exercises the cttime negative cases: metadata verdicts,
// nil presence checks, public fields, and the sanctioned escapes.
package cttgood

import (
	"crypto/subtle"
	"math/big"

	"repro/internal/keys"
)

// Presence checks carry no value timing signal.
func Loaded(k *keys.PrivateKey) bool {
	if k.D == nil {
		return false
	}
	return true
}

// Metadata verdicts (basic-typed method results) are public.
func Usable(k *keys.PrivateKey) bool {
	if k.D.Sign() == 0 {
		return false
	}
	return k.String() != ""
}

// Match branches on a constant-time comparison verdict.
func Match(k *keys.PrivateKey, probe []byte) bool {
	if subtle.ConstantTimeCompare(k.Bytes, probe) == 1 {
		return true
	}
	return false
}

// PublicModulus works on the declared-public field; no taint.
func PublicModulus(k *keys.PrivateKey, x *big.Int) *big.Int {
	return new(big.Int).Mod(x, k.N)
}

// Marshal is a sanctioned keyfile edge, annotated on the line.
func Marshal(k *keys.PrivateKey) []byte {
	return k.D.Bytes() //cryptolint:public (keyfile serialization edge)
}

// Recode is a documented variable-time helper; the whole body is
// sanctioned.
//
//cryptolint:vartime (offline extract-time recoding, not on the serving path)
func Recode(k *keys.PrivateKey) int {
	w := 0
	for d := new(big.Int).Set(k.D); d.Sign() > 0; d.Rsh(d, 1) {
		w++
	}
	return w
}

// store is a minimal generic container: instantiating it with an explicit
// type argument parses as an ast.IndexExpr whose index is a *type*, not a
// memory access.
type store[T any] struct{ items []T }

func newStore[T any]() *store[T] { return &store[T]{} }

// Instantiate names the secret-marked key type as a type argument; the
// index position of newStore[*keys.PrivateKey] must not be reported as a
// secret-tainted index.
func Instantiate() *store[*keys.PrivateKey] {
	return newStore[*keys.PrivateKey]()
}

package bench

import (
	"crypto/rand"
	"fmt"

	"repro/internal/sem"
)

// Communication runs T2: one operation of each mediated scheme through the
// real TCP protocol, reporting the SEM→user payload (the cryptographic
// token itself, the paper's unit of comparison) and the full framed wire
// traffic.
//
// Expected shape (paper §5): the mediated GDH half-signature is a single
// compressed G1 point (≈ |p|+8 bits; 160 bits with a subgroup encoding)
// versus 1024 bits for the mRSA half-signature; the mediated-IBE token is a
// GT element (≈ 2|p| ≈ 1000 bits), comparable to IB-mRSA's 1024.
func Communication(w *World) (*Table, error) {
	client, err := w.Dial()
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()

	msg := make([]byte, w.MsgLen)

	// Mediated IBE decryption.
	ct, err := w.IBEPKG.Public().Encrypt(rand.Reader, w.ID, msg)
	if err != nil {
		return nil, err
	}
	if _, err := client.DecryptIBE(w.IBEPKG.Public(), w.IBEUser, ct); err != nil {
		return nil, fmt.Errorf("ibe decrypt: %w", err)
	}

	// Mediated GDH signature.
	if _, err := client.SignGDH(w.GDHUser, []byte("t2 communication probe")); err != nil {
		return nil, fmt.Errorf("gdh sign: %w", err)
	}

	// IB-mRSA decryption.
	rsaCT, err := w.RSAPub.EncryptOAEP(rand.Reader, msg[:min(w.MsgLen, w.RSAPub.MaxMessageLen())])
	if err != nil {
		return nil, err
	}
	if _, err := client.DecryptRSA(w.RSAPub, w.ID, w.RSAUser, rsaCT); err != nil {
		return nil, fmt.Errorf("rsa decrypt: %w", err)
	}

	// mRSA signature.
	if _, err := client.SignRSA(w.RSAPub, w.RSAUser, w.ID, []byte("t2 communication probe")); err != nil {
		return nil, fmt.Errorf("rsa sign: %w", err)
	}

	stats := client.Stats()
	row := func(label string, op sem.Op) []string {
		st := stats[op]
		return []string{
			label,
			bits(st.PayloadReceived),
			fmt.Sprintf("%d", st.BytesSent),
			fmt.Sprintf("%d", st.BytesReceived),
		}
	}
	return &Table{
		ID: "T2",
		Caption: fmt.Sprintf("SEM→user communication per operation (|q|=%d, |p|=%d pairing vs %d-bit RSA)",
			w.Pairing.Q().BitLen(), w.Pairing.P().BitLen(), w.RSAPub.N.BitLen()),
		Columns: []string{"operation", "SEM token (bits)", "wire sent (B)", "wire recv (B)"},
		Rows: [][]string{
			row("mediated GDH half-signature", sem.OpGDHSign),
			row("mRSA half-signature", sem.OpRSASign),
			row("mediated IBE decryption token", sem.OpIBEToken),
			row("IB-mRSA half-decryption", sem.OpRSADecrypt),
		},
		Notes: []string{
			"paper §5: GDH token ≈ 160 bits vs 1024 bits for mRSA — the GDH/RSA ratio here reflects |p|+8 vs |n|",
			"paper §4.1: the IBE token (GT element ≈ 2|p| bits ≈ 1000) does not beat IB-mRSA's 1024; only the GDH signature does",
		},
	}, nil
}

package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/keyfile"
)

const testIdent = "vault@example.com"

func writeThresholdDeployment(t *testing.T) string {
	t.Helper()
	d, err := keyfile.NewThresholdDeployment(keyfile.ThresholdDeploymentConfig{
		ParamSet: "toy",
		MsgLen:   32,
		T:        2,
		N:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(testIdent); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.Write(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startPlayer launches one player daemon and returns its address and a stop
// function.
func startPlayer(t *testing.T, dir string, index int) (string, func()) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-system", filepath.Join(dir, "threshold.json"),
			"-player", filepath.Join(dir, "players", playerFile(index)),
			"-addr", "127.0.0.1:0",
		}, stop, ready, nil, nil, nil)
	}()
	select {
	case addr := <-ready:
		return addr, func() {
			stop <- syscall.SIGTERM
			if err := <-done; err != nil {
				t.Errorf("player %d shutdown: %v", index, err)
			}
		}
	case err := <-done:
		t.Fatalf("player %d exited early: %v", index, err)
		return "", nil
	case <-time.After(5 * time.Second):
		t.Fatalf("player %d never became ready", index)
		return "", nil
	}
}

func playerFile(i int) string {
	return "player-" + string(rune('0'+i)) + ".json"
}

func TestThresholdDaemonEndToEnd(t *testing.T) {
	dir := writeThresholdDeployment(t)
	a1, stop1 := startPlayer(t, dir, 1)
	defer stop1()
	a3, stop3 := startPlayer(t, dir, 3)
	defer stop3()

	system := filepath.Join(dir, "threshold.json")

	// Encrypt.
	var ct bytes.Buffer
	err := run([]string{"-system", system, "-encrypt", "-id", testIdent},
		nil, nil, nil, strings.NewReader("split me"), &ct)
	if err != nil {
		t.Fatal(err)
	}

	// Decrypt with players {1, 3} (player 2 undeployed).
	var plain bytes.Buffer
	err = run([]string{
		"-system", system, "-decrypt", "-id", testIdent,
		"-players", a1 + ",," + a3,
	}, nil, nil, nil, bytes.NewReader(ct.Bytes()), &plain)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(plain.String(), "split me") {
		t.Fatalf("decrypted %q", plain.String()[:16])
	}
}

func TestThresholdDaemonFailsBelowT(t *testing.T) {
	dir := writeThresholdDeployment(t)
	a1, stop1 := startPlayer(t, dir, 1)
	defer stop1()
	system := filepath.Join(dir, "threshold.json")

	var ct bytes.Buffer
	if err := run([]string{"-system", system, "-encrypt", "-id", testIdent},
		nil, nil, nil, strings.NewReader("x"), &ct); err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	err := run([]string{
		"-system", system, "-decrypt", "-id", testIdent,
		"-players", a1 + ",,",
	}, nil, nil, nil, bytes.NewReader(ct.Bytes()), &plain)
	if err == nil {
		t.Fatal("decryption with 1 < t players succeeded")
	}
}

func TestThresholdDaemonArgErrors(t *testing.T) {
	dir := writeThresholdDeployment(t)
	system := filepath.Join(dir, "threshold.json")
	if err := run([]string{"-system", "/nonexistent.json"}, nil, nil, nil, nil, nil); err == nil {
		t.Error("missing system accepted")
	}
	if err := run([]string{"-system", system}, nil, nil, nil, nil, nil); err == nil {
		t.Error("serve mode without -player accepted")
	}
	if err := run([]string{"-system", system, "-decrypt"}, nil, nil, nil, strings.NewReader(""), nil); err == nil {
		t.Error("decrypt without -id accepted")
	}
	if err := run([]string{"-system", system, "-encrypt"}, nil, nil, nil, strings.NewReader(""), nil); err == nil {
		t.Error("encrypt without -id accepted")
	}
	var out bytes.Buffer
	if err := run([]string{
		"-system", system, "-decrypt", "-id", testIdent,
		"-players", "a,b,c,d",
	}, nil, nil, nil, strings.NewReader("eA=="), &out); err == nil {
		t.Error("too many player addresses accepted")
	}
	long := strings.Repeat("x", 64)
	if err := run([]string{"-system", system, "-encrypt", "-id", testIdent},
		nil, nil, nil, strings.NewReader(long), &out); err == nil {
		t.Error("oversized plaintext accepted")
	}
}

// TestThresholdDebugEndpoint starts a player with -debug-addr, routes one
// decryption through it and checks the share-serving metrics moved.
func TestThresholdDebugEndpoint(t *testing.T) {
	dir := writeThresholdDeployment(t)
	system := filepath.Join(dir, "threshold.json")

	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	debugReady := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-system", system,
			"-player", filepath.Join(dir, "players", playerFile(1)),
			"-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
		}, stop, ready, debugReady, nil, nil)
	}()
	var a1, dbgAddr string
	select {
	case dbgAddr = <-debugReady:
	case err := <-done:
		t.Fatalf("player exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("debug endpoint never became ready")
	}
	a1 = <-ready
	a3, stop3 := startPlayer(t, dir, 3)
	defer stop3()

	var ct bytes.Buffer
	if err := run([]string{"-system", system, "-encrypt", "-id", testIdent},
		nil, nil, nil, strings.NewReader("x"), &ct); err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := run([]string{
		"-system", system, "-decrypt", "-id", testIdent,
		"-players", a1 + ",," + a3,
	}, nil, nil, nil, bytes.NewReader(ct.Bytes()), &plain); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + dbgAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`player_share_requests_total{player="1"} 1`,
		`player_share_seconds_count{player="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("player metrics missing %q:\n%s", want, out)
		}
	}

	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("shutdown error: %v", err)
	}
}

// Package fanmerge pins the deterministic-merge discipline of
// internal/parallel: a Fan/FanChunks callback writes results into
// per-index slots, and the caller combines them in index order after the
// fan returns. That is the whole argument for why a parallel kernel is
// bit-identical to its sequential run; any completion-order collection
// inside the callback silently reintroduces schedule dependence.
//
// Inside a function literal passed to parallel.Fan or parallel.FanChunks
// the analyzer flags the constructs that order results by completion
// rather than by index:
//
//   - select statements (whichever case is ready first wins);
//   - channel sends and receives (the channel serializes results in
//     completion order);
//   - range over a map (iteration order is randomized);
//   - append to a slice declared outside the callback (elements land in
//     completion order, racing besides).
//
// Writes like sums[i] = ... or copies into chunk-local scratch are the
// sanctioned pattern and pass untouched. There is no escape marker: a
// callback that needs a channel is not a fan callback, it is a pipeline,
// and should not run under parallel.Fan's determinism contract.
package fanmerge

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the fanmerge checker.
var Analyzer = &analysis.Analyzer{
	Name: "fanmerge",
	Doc:  "forbid completion-order collection (channels, select, map ranges, shared append) in parallel.Fan/FanChunks callbacks",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/parallel" {
				return true
			}
			if fn.Name() != "Fan" && fn.Name() != "FanChunks" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit); ok {
				checkCallback(pass, info, fn.Name(), lit)
			}
			return true
		})
	}
	return nil
}

func checkCallback(pass *analysis.Pass, info *types.Info, fan string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			pass.Reportf(x.Pos(), "select in %s callback collects results in completion order; write into per-index slots instead", fan)
			return false
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send in %s callback serializes results in completion order; write into per-index slots instead", fan)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.Pos(), "channel receive in %s callback depends on completion order; write into per-index slots instead", fan)
			}
		case *ast.RangeStmt:
			if isMap(info.TypeOf(x.X)) {
				pass.Reportf(x.Pos(), "map iteration in %s callback is randomly ordered; iterate the index range instead", fan)
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isAppend(info, call) || i >= len(x.Lhs) {
					continue
				}
				if obj := identObj(info, x.Lhs[i]); obj != nil && obj.Pos() < lit.Pos() {
					pass.Reportf(rhs.Pos(), "append to %s declared outside the %s callback merges in completion order (and races); write into per-index slots instead", obj.Name(), fan)
				}
			}
		}
		return true
	})
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

package sem

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/curve"
	"repro/internal/mrsa"
	"repro/internal/pairing"
	"repro/internal/wire"
)

// batchCaller is the raw-bytes batch transport shared by every client
// flavor: the single-conn Client, the multiplexed Pool, and the
// ring-routing ShardedClient. Results and errs are index-aligned with the
// inputs; err reports a transport failure partway through, with the voided
// slots carrying that error in errs (see Client.batchCall for the full
// contract).
type batchCaller interface {
	batchCall(op Op, ids []string, payloads [][]byte) ([][]byte, []error, error)
}

// tokenBatch is the shared front half of TokenBatch: marshal the U points,
// run the op through whichever transport, then decode and validate the
// returned tokens with the batch variant of wire.UnmarshalGT (order-q
// membership for the whole batch in one combined exponentiation, per-item
// fallback pinpointing offenders only when something is actually bad).
func tokenBatch(bc batchCaller, pp *pairing.Params, ids []string, us []*curve.Point) ([]*pairing.GT, []error, error) {
	if pp == nil {
		return nil, nil, errors.New("sem: client has no pairing params")
	}
	if len(ids) != len(us) {
		return nil, nil, fmt.Errorf("sem: batch has %d ids but %d points", len(ids), len(us))
	}
	payloads := make([][]byte, len(us))
	for i, u := range us {
		payloads[i] = u.Marshal()
	}
	raws, errs, err := bc.batchCall(OpIBEToken, ids, payloads)
	if raws == nil {
		return nil, nil, err
	}
	okRaws := make([][]byte, len(raws))
	for i, raw := range raws {
		if errs[i] == nil {
			okRaws[i] = raw
		}
	}
	tokens, gtErrs, berr := wire.UnmarshalGTBatch(pp, okRaws)
	if berr != nil {
		return nil, nil, fmt.Errorf("sem: batch token validation: %w", berr)
	}
	for i, e := range gtErrs {
		if errs[i] == nil && e != nil {
			errs[i] = e
		}
	}
	return tokens, errs, err
}

// gdhHalfSignBatch is the shared front half of GDHHalfSignBatch; each
// returned point passes the same subgroup validation as the single-op path.
func gdhHalfSignBatch(bc batchCaller, pp *pairing.Params, ids []string, hs []*curve.Point) ([]*curve.Point, []error, error) {
	if pp == nil {
		return nil, nil, errors.New("sem: client has no pairing params")
	}
	if len(ids) != len(hs) {
		return nil, nil, fmt.Errorf("sem: batch has %d ids but %d points", len(ids), len(hs))
	}
	payloads := make([][]byte, len(hs))
	for i, h := range hs {
		payloads[i] = h.Marshal()
	}
	raws, errs, err := bc.batchCall(OpGDHSign, ids, payloads)
	if raws == nil {
		return nil, nil, err
	}
	halves := make([]*curve.Point, len(ids))
	for i, raw := range raws {
		if errs[i] != nil {
			continue
		}
		pt, perr := wire.UnmarshalG1(pp.Curve(), raw)
		if perr != nil {
			errs[i] = perr
			continue
		}
		halves[i] = pt
	}
	return halves, errs, err
}

// rsaHalfDecryptBatch is the shared front half of RSAHalfDecryptBatch;
// responses are range-checked against the public modulus like the
// single-op path.
func rsaHalfDecryptBatch(bc batchCaller, pub *mrsa.PublicKey, ids []string, cts []*big.Int) ([]*big.Int, []error, error) {
	if len(ids) != len(cts) {
		return nil, nil, fmt.Errorf("sem: batch has %d ids but %d ciphertexts", len(ids), len(cts))
	}
	payloads := make([][]byte, len(cts))
	for i, ct := range cts {
		payloads[i] = ct.Bytes() //cryptolint:public (sanctioned wire serialization edge; the ciphertext is on the wire by design)
	}
	raws, errs, err := bc.batchCall(OpRSADecrypt, ids, payloads)
	if raws == nil {
		return nil, nil, err
	}
	halves := make([]*big.Int, len(ids))
	for i, raw := range raws {
		if errs[i] != nil {
			continue
		}
		x, xerr := wire.UnmarshalScalar(raw, pub.N)
		if xerr != nil {
			errs[i] = xerr
			continue
		}
		halves[i] = x
	}
	return halves, errs, err
}

// registerIBEBatch is the shared front half of RegisterIBEBatch.
func registerIBEBatch(bc batchCaller, ids []string, ds []*curve.Point) ([]error, error) {
	if len(ids) != len(ds) {
		return nil, fmt.Errorf("sem: batch has %d ids but %d points", len(ids), len(ds))
	}
	payloads := make([][]byte, len(ds))
	for i, d := range ds {
		payloads[i] = d.Marshal()
	}
	_, errs, err := bc.batchCall(OpRegisterIBE, ids, payloads)
	return errs, err
}

// registerGDHBatch is the shared front half of RegisterGDHBatch.
func registerGDHBatch(bc batchCaller, ids []string, xs []*big.Int) ([]error, error) {
	if len(ids) != len(xs) {
		return nil, fmt.Errorf("sem: batch has %d ids but %d scalars", len(ids), len(xs))
	}
	payloads := make([][]byte, len(xs))
	for i, x := range xs {
		payloads[i] = x.Bytes() //cryptolint:public (sanctioned wire serialization edge; SEM half delivery is the enrollment protocol)
	}
	_, errs, err := bc.batchCall(OpRegisterGDH, ids, payloads)
	return errs, err
}

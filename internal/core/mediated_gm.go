package core

import (
	"fmt"
	"math/big"

	"repro/internal/gm"
)

// GMSEM is the mediator side of mediated Goldwasser-Micali encryption —
// the first of the two extensions the paper's conclusion conjectures
// ("we conjecture the SEM method can also be integrated into many other
// existing public key cryptosystems including the Goldwasser-Micali
// probabilistic encryption"). It plugs into the same Registry as the
// other SEMs. Safe for concurrent use.
type GMSEM struct {
	reg  *Registry
	keys *keyStore[*gm.HalfKey]
}

// NewGMSEM constructs a GM SEM over a (possibly shared) revocation
// registry.
func NewGMSEM(reg *Registry) *GMSEM {
	return &GMSEM{reg: reg, keys: newKeyStore[*gm.HalfKey]()}
}

// Register installs an identity's SEM exponent half.
func (s *GMSEM) Register(id string, half *gm.HalfKey) { s.keys.put(id, half) }

// Registry exposes the revocation registry (admin interface).
func (s *GMSEM) Registry() *Registry { return s.reg }

// HalfDecrypt applies the SEM half to every element of a bitwise GM
// ciphertext after checking revocation.
func (s *GMSEM) HalfDecrypt(id string, cs []*big.Int) ([]*big.Int, error) {
	if err := s.reg.Check(id); err != nil {
		return nil, err
	}
	half, ok := s.keys.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownIdentity, id)
	}
	out := make([]*big.Int, len(cs))
	for i, c := range cs {
		if c.Sign() <= 0 || c.Cmp(half.N) >= 0 {
			return nil, fmt.Errorf("core: GM ciphertext element %d out of range", i)
		}
		out[i] = half.Op(c)
	}
	return out, nil
}

// GMDecrypt runs the full two-party GM decryption in-process: the user
// applies its half, fetches the SEM halves, combines element-wise and
// interprets the residuosity bits.
func GMDecrypt(sem *GMSEM, id string, pk *gm.PublicKey, user *gm.HalfKey, cs []*big.Int) ([]byte, error) {
	if len(cs)%8 != 0 {
		return nil, fmt.Errorf("core: GM ciphertext length %d not a multiple of 8", len(cs))
	}
	semParts, err := sem.HalfDecrypt(id, cs)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(cs)/8)
	for i, c := range cs {
		bit, err := gm.CombineBit(pk, user.Op(c), semParts[i])
		if err != nil {
			return nil, fmt.Errorf("element %d: %w", i, err)
		}
		out[i/8] |= bit << uint(7-i%8)
	}
	return out, nil
}

package sem

import (
	"bytes"
	"crypto/rand"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/mrsa"
	"repro/internal/pairing"
)

const msgLen = 32

// fixture spins up a complete SEM daemon (all three backends) on a loopback
// listener and enrolls one identity in each scheme.
type fixture struct {
	t       *testing.T
	pp      *pairing.Params
	addr    string
	server  *Server
	client  *Client
	reg     *core.Registry
	pkg     *core.MediatedPKG
	ibeUser *core.UserKeyHalf
	gdhUser *core.GDHUserKey
	rsaPub  *mrsa.PublicKey
	rsaUser *mrsa.HalfKey
	gmKey   *gm.PrivateKey
	gmUser  *gm.HalfKey
}

const testID = "alice@example.com"

func newFixture(t *testing.T) *fixture {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()

	// IBE enrollment.
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	ibeSEM := core.NewIBESEM(pkg.Public(), reg)
	ibeUser, ibeSEMHalf, err := pkg.SplitExtract(rand.Reader, testID)
	if err != nil {
		t.Fatal(err)
	}
	ibeSEM.Register(ibeSEMHalf)

	// GDH enrollment.
	ta := core.NewGDHAuthority(pp)
	gdhSEM := core.NewGDHSEM(pp, reg)
	gdhUser, gdhSEMHalf, err := ta.Keygen(rand.Reader, testID)
	if err != nil {
		t.Fatal(err)
	}
	gdhSEM.Register(gdhSEMHalf)

	// RSA enrollment (IB-mRSA over the fixed 512-bit test modulus).
	ibpkg, err := mrsa.FixedTestPKG()
	if err != nil {
		t.Fatal(err)
	}
	rsaSEM := core.NewRSASEM(reg)
	rsaUser, rsaSEMHalf, err := ibpkg.IssueHalves(rand.Reader, testID)
	if err != nil {
		t.Fatal(err)
	}
	rsaSEM.Register(testID, rsaSEMHalf)

	// GM enrollment (extension scheme).
	gmKey, err := gm.GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	gmSEM := core.NewGMSEM(reg)
	gmUser, gmSEMHalf, err := gm.Split(rand.Reader, gmKey)
	if err != nil {
		t.Fatal(err)
	}
	gmSEM.Register(testID, gmSEMHalf)

	srv, err := NewServer(Config{
		Registry:      reg,
		IBE:           ibeSEM,
		GDH:           gdhSEM,
		RSA:           rsaSEM,
		GM:            gmSEM,
		Pairing:       pp,
		AllowRegister: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	client, err := Dial(ln.Addr().String(), pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = srv.Close()
		wg.Wait()
	})
	return &fixture{
		t:       t,
		pp:      pp,
		addr:    ln.Addr().String(),
		server:  srv,
		client:  client,
		reg:     reg,
		pkg:     pkg,
		ibeUser: ibeUser,
		gdhUser: gdhUser,
		rsaPub:  ibpkg.IdentityPublicKey(testID),
		rsaUser: rsaUser,
		gmKey:   gmKey,
		gmUser:  gmUser,
	}
}

func TestPing(t *testing.T) {
	f := newFixture(t)
	if err := f.client.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkedIBEDecryption(t *testing.T) {
	f := newFixture(t)
	msg := bytes.Repeat([]byte{0x42}, msgLen)
	ct, err := f.pkg.Public().Encrypt(rand.Reader, testID, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.client.DecryptIBE(f.pkg.Public(), f.ibeUser, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %x, want %x", got, msg)
	}
}

func TestNetworkedGDHSigning(t *testing.T) {
	f := newFixture(t)
	msg := []byte("sign me over the network")
	sig, err := f.client.SignGDH(f.gdhUser, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.gdhUser.Public.Verify(msg, sig); err != nil {
		t.Fatalf("networked mediated signature invalid: %v", err)
	}
}

func TestNetworkedRSADecryption(t *testing.T) {
	f := newFixture(t)
	msg := []byte("ib-mrsa online")
	ct, err := f.rsaPub.EncryptOAEP(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.client.DecryptRSA(f.rsaPub, testID, f.rsaUser, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestNetworkedRSASigning(t *testing.T) {
	f := newFixture(t)
	msg := []byte("mrsa signature online")
	sig, err := f.client.SignRSA(f.rsaPub, f.rsaUser, testID, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.rsaPub.Verify(msg, sig); err != nil {
		t.Fatalf("networked mRSA signature invalid: %v", err)
	}
}

func TestRevocationOverTheWire(t *testing.T) {
	f := newFixture(t)
	msg := bytes.Repeat([]byte{1}, msgLen)
	ct, _ := f.pkg.Public().Encrypt(rand.Reader, testID, msg)

	if err := f.client.Revoke(testID, "terminated"); err != nil {
		t.Fatal(err)
	}
	revoked, err := f.client.Status(testID)
	if err != nil || !revoked {
		t.Fatalf("status = %v, %v; want revoked", revoked, err)
	}
	// Revocation kills all three capabilities at once.
	if _, err := f.client.DecryptIBE(f.pkg.Public(), f.ibeUser, ct); !errors.Is(err, core.ErrRevoked) {
		t.Errorf("IBE after revoke: %v", err)
	}
	if _, err := f.client.SignGDH(f.gdhUser, msg); !errors.Is(err, core.ErrRevoked) {
		t.Errorf("GDH after revoke: %v", err)
	}
	if _, err := f.client.RSAHalfSign(f.rsaPub, testID, msg); !errors.Is(err, core.ErrRevoked) {
		t.Errorf("RSA after revoke: %v", err)
	}
	// Unrevoke restores everything.
	if err := f.client.Unrevoke(testID); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.DecryptIBE(f.pkg.Public(), f.ibeUser, ct); err != nil {
		t.Errorf("IBE after unrevoke: %v", err)
	}
}

func TestUnknownIdentityOverTheWire(t *testing.T) {
	f := newFixture(t)
	h, _ := f.pp.Curve().HashToPoint("x", []byte("m"))
	if _, err := f.client.GDHHalfSign("nobody@example.com", h); !errors.Is(err, core.ErrUnknownIdentity) {
		t.Fatalf("unknown identity: %v", err)
	}
}

func TestMalformedPayloadRejected(t *testing.T) {
	f := newFixture(t)
	resp, err := f.client.roundTrip(&Request{Op: OpIBEToken, ID: testID, Payload: []byte{1, 2, 3}})
	if err == nil {
		t.Fatalf("malformed point accepted: %+v", resp)
	}
}

func TestUnknownOpRejected(t *testing.T) {
	f := newFixture(t)
	if _, err := f.client.roundTrip(&Request{Op: "nonsense"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestWireStatsAccumulate(t *testing.T) {
	f := newFixture(t)
	msg := []byte("stats")
	if _, err := f.client.SignGDH(f.gdhUser, msg); err != nil {
		t.Fatal(err)
	}
	stats := f.client.Stats()
	st, ok := stats[OpGDHSign]
	if !ok || st.Calls != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// The SEM→user payload for GDH is one compressed point.
	want := 1 + f.pp.Curve().CoordinateSize()
	if st.PayloadReceived != want {
		t.Fatalf("GDH payload %d bytes, want %d", st.PayloadReceived, want)
	}
}

func TestConcurrentClients(t *testing.T) {
	f := newFixture(t)
	msg := bytes.Repeat([]byte{9}, msgLen)
	const workers = 6
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			client, err := Dial(f.server.Addr().String(), f.pp, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			ct, err := f.pkg.Public().Encrypt(rand.Reader, testID, msg)
			if err != nil {
				errs <- err
				return
			}
			got, err := client.DecryptIBE(f.pkg.Public(), f.ibeUser, ct)
			if err == nil && !bytes.Equal(got, msg) {
				err = errors.New("wrong plaintext")
			}
			errs <- err
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerCloseIsIdempotentAndDrains(t *testing.T) {
	f := newFixture(t)
	if err := f.server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.server.Close(); err != nil {
		t.Fatal(err)
	}
	// Client operations now fail cleanly.
	if err := f.client.Ping(); err == nil {
		t.Fatal("ping succeeded after server close")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("missing registry accepted")
	}
	reg := core.NewRegistry()
	pp, _ := pairing.Toy()
	ibe := core.NewIBESEM(nil, reg)
	if _, err := NewServer(Config{Registry: reg, IBE: ibe}); err == nil {
		t.Error("IBE backend without pairing params accepted")
	}
	if _, err := NewServer(Config{Registry: reg, IBE: ibe, Pairing: pp}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestUnsupportedBackend(t *testing.T) {
	// A server with only the registry configured refuses crypto ops.
	reg := core.NewRegistry()
	srv, err := NewServer(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	client, err := Dial(ln.Addr().String(), nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ibpkg, err := mrsa.FixedTestPKG()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RSAHalfSign(ibpkg.IdentityPublicKey("x"), "x", []byte("m")); err == nil {
		t.Fatal("unsupported backend served a request")
	}
}

func TestFrameLimit(t *testing.T) {
	f := newFixture(t)
	huge := make([]byte, DefaultMaxFrame+1)
	if _, err := f.client.roundTrip(&Request{Op: OpRSASign, ID: testID, Payload: huge}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
}

func TestTruncatedFrameHandled(t *testing.T) {
	// A raw connection that sends garbage must not wedge the server.
	f := newFixture(t)
	conn, err := net.Dial("tcp", f.server.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte{0, 0, 0, 50, 'x'}) // announces 50 bytes, sends 1
	_ = conn.Close()
	// Server must still serve others.
	if err := f.client.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkedGMDecryption(t *testing.T) {
	f := newFixture(t)
	msg := []byte("gm over tcp")
	cs, err := f.gmKey.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.client.DecryptGM(f.gmKey.Public, testID, f.gmUser, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
	// Revocation gates GM too (shared registry).
	if err := f.client.Revoke(testID, "gm test"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.DecryptGM(f.gmKey.Public, testID, f.gmUser, cs); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("revoked GM identity decrypted over the wire: %v", err)
	}
}

func TestGMPackUnpackRoundTrip(t *testing.T) {
	f := newFixture(t)
	cs, _ := f.gmKey.Public.Encrypt(rand.Reader, []byte{0xA5})
	packed, err := packInts(cs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := unpackInts(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(cs) {
		t.Fatalf("unpacked %d elements, want %d", len(back), len(cs))
	}
	for i := range cs {
		if cs[i].Cmp(back[i]) != 0 {
			t.Fatalf("element %d mismatch", i)
		}
	}
	// Truncations are rejected.
	if _, err := unpackInts(packed[:1]); !errors.Is(err, ErrProtocol) {
		t.Errorf("truncated header accepted: %v", err)
	}
	if _, err := unpackInts(packed[:len(packed)-1]); !errors.Is(err, ErrProtocol) {
		t.Errorf("truncated body accepted: %v", err)
	}
}

func TestListRevokedOverTheWire(t *testing.T) {
	f := newFixture(t)
	entries, err := f.client.ListRevoked()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh SEM lists %d revocations", len(entries))
	}
	if err := f.client.Revoke("a@x", "one"); err != nil {
		t.Fatal(err)
	}
	if err := f.client.Revoke("b@x", "two"); err != nil {
		t.Fatal(err)
	}
	entries, err = f.client.ListRevoked()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("listed %d revocations, want 2", len(entries))
	}
	reasons := map[string]string{}
	for _, e := range entries {
		reasons[e.ID] = e.Reason
	}
	if reasons["a@x"] != "one" || reasons["b@x"] != "two" {
		t.Fatalf("entries = %+v", entries)
	}
}

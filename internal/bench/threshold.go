package bench

import (
	"crypto/rand"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pairing"
)

// ThresholdConfig parameterizes the F2 sweep.
type ThresholdConfig struct {
	Pairing    *pairing.Params // defaults to the "fast" set for tolerable sweeps
	Thresholds []int           // t values; n = 2t−1 (honest majority, as §3.2 requires)
	MsgLen     int
	Iters      int // timing iterations per cell
}

// DefaultThresholdConfig is the F2 sweep used by EXPERIMENTS.md.
func DefaultThresholdConfig() ThresholdConfig {
	return ThresholdConfig{Thresholds: []int{1, 2, 3, 4, 6, 8}, MsgLen: 32, Iters: 3}
}

// ThresholdCell is one (t, n) measurement.
type ThresholdCell struct {
	T, N            int
	ShareTime       time.Duration // one player's ê(U, d_IDi)
	ProofTime       time.Duration // one player's share + NIZK proof
	VerifyProofTime time.Duration // recombiner checking one proof
	CombineTime     time.Duration // Lagrange recombination of t shares
	RobustTotal     time.Duration // verify n proofs + recombine
}

// Threshold runs F2: threshold-IBE decryption cost versus (t, n = 2t−1),
// with and without robustness proofs.
//
// Expected shape: per-player share cost flat in t (one pairing);
// recombination linear in t (t GT exponentiations); robustness adds ≈4
// pairings per verified share, so the robust total grows linearly in n.
func Threshold(cfg ThresholdConfig) ([]ThresholdCell, error) {
	if cfg.Pairing == nil {
		pp, err := pairing.Fast()
		if err != nil {
			return nil, err
		}
		cfg.Pairing = pp
	}
	if cfg.MsgLen == 0 {
		cfg.MsgLen = 32
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	var cells []ThresholdCell
	for _, t := range cfg.Thresholds {
		n := 2*t - 1
		cell, err := thresholdCell(cfg, t, n)
		if err != nil {
			return nil, fmt.Errorf("t=%d: %w", t, err)
		}
		cells = append(cells, *cell)
	}
	return cells, nil
}

func thresholdCell(cfg ThresholdConfig, t, n int) (*ThresholdCell, error) {
	pkg, err := core.SetupThreshold(rand.Reader, cfg.Pairing, cfg.MsgLen, t, n)
	if err != nil {
		return nil, err
	}
	p := pkg.Params()
	id := "alice@example.com"
	keyShares := make([]*core.KeyShare, n)
	for i := 1; i <= n; i++ {
		ks, err := pkg.ExtractShare(id, i)
		if err != nil {
			return nil, err
		}
		keyShares[i-1] = ks
	}
	msg := make([]byte, cfg.MsgLen)
	ct, err := p.Public.EncryptBasic(rand.Reader, id, msg)
	if err != nil {
		return nil, err
	}

	timeIt := func(body func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < cfg.Iters; i++ {
			if err := body(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(cfg.Iters), nil
	}

	cell := &ThresholdCell{T: t, N: n}
	if cell.ShareTime, err = timeIt(func() error {
		p.ComputeShare(keyShares[0], ct.U)
		return nil
	}); err != nil {
		return nil, err
	}
	var proved *core.DecryptionShare
	if cell.ProofTime, err = timeIt(func() error {
		proved, err = p.ComputeShareWithProof(rand.Reader, keyShares[0], ct.U)
		return err
	}); err != nil {
		return nil, err
	}
	if cell.VerifyProofTime, err = timeIt(func() error {
		return p.VerifyShareProof(id, ct.U, proved)
	}); err != nil {
		return nil, err
	}
	plain := make([]*core.DecryptionShare, t)
	for i := 0; i < t; i++ {
		if plain[i], err = p.ComputeShare(keyShares[i], ct.U); err != nil {
			return nil, err
		}
	}
	if cell.CombineTime, err = timeIt(func() error {
		_, err := p.CombineShares(plain)
		return err
	}); err != nil {
		return nil, err
	}
	robust := make([]*core.DecryptionShare, n)
	for i := 0; i < n; i++ {
		if robust[i], err = p.ComputeShareWithProof(rand.Reader, keyShares[i], ct.U); err != nil {
			return nil, err
		}
	}
	if cell.RobustTotal, err = timeIt(func() error {
		_, _, err := p.RobustDecrypt(id, robust, ct)
		return err
	}); err != nil {
		return nil, err
	}
	return cell, nil
}

// ThresholdTable renders F2 cells.
func ThresholdTable(cells []ThresholdCell, pp *pairing.Params) *Table {
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{
			fmt.Sprintf("(%d, %d)", c.T, c.N),
			c.ShareTime.Round(time.Microsecond).String(),
			c.ProofTime.Round(time.Microsecond).String(),
			c.VerifyProofTime.Round(time.Microsecond).String(),
			c.CombineTime.Round(time.Microsecond).String(),
			c.RobustTotal.Round(time.Microsecond).String(),
		})
	}
	caption := "threshold IBE decryption scaling vs (t, n = 2t−1)"
	if pp != nil {
		caption += fmt.Sprintf(" at |q|=%d, |p|=%d", pp.Q().BitLen(), pp.P().BitLen())
	}
	return &Table{
		ID:      "F2",
		Caption: caption,
		Columns: []string{"(t, n)", "share", "share+proof", "verify proof", "combine t", "robust total (n proofs)"},
		Rows:    rows,
		Notes: []string{
			"expected shape: share cost flat in t; combine linear in t; robust total linear in n (≈4 extra pairings per share verified)",
		},
	}
}

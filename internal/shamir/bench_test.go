package shamir

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// benchPoly builds a 512-bit-order polynomial of the paper's threshold
// sizes; the scalar-field hot loops (Eval, interpolation) must run
// allocation-free per iteration after the scratch hoisting.
func benchPoly(b *testing.B, t int) (*Polynomial, *big.Int) {
	b.Helper()
	q, _ := new(big.Int).SetString(
		"d766107fb0eace0a6ccd9d42e9492ba8bf2298ed", 16)
	secret, err := rand.Int(rand.Reader, q)
	if err != nil {
		b.Fatal(err)
	}
	poly, err := NewPolynomial(rand.Reader, secret, q, t)
	if err != nil {
		b.Fatal(err)
	}
	return poly, q
}

func BenchmarkPolynomialEval(b *testing.B) {
	poly, q := benchPoly(b, 16)
	x, err := rand.Int(rand.Reader, q)
	if err != nil {
		b.Fatal(err)
	}
	dst, tmp, quo := new(big.Int), new(big.Int), new(big.Int)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poly.evalInto(dst, x, tmp, quo)
	}
}

func BenchmarkIssueShares(b *testing.B) {
	poly, _ := benchPoly(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := poly.IssueShares(64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpolateAt(b *testing.B) {
	poly, q := benchPoly(b, 16)
	shares, err := poly.IssueShares(16)
	if err != nil {
		b.Fatal(err)
	}
	at := big.NewInt(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InterpolateAt(shares, 16, at, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Package hotbad exercises the allocfree positive cases.
package hotbad

import "fmt"

var sink interface{}

type point struct{ x, y uint64 }

func consume(v interface{}) {}

// Accumulate is marked hot and trips every allocation rule.
//
//cryptolint:hotpath
func Accumulate(xs []uint64) uint64 {
	var acc uint64
	for i, x := range xs {
		fmt.Printf("step %d\n", i) // want `fmt.Printf call in hotpath function`
		f := func() uint64 { return x } // want `closure in hotpath function`
		acc += f()
	}
	return acc
}

// Grow reallocates on the hot path.
//
//cryptolint:hotpath
func Grow(xs []uint64) []uint64 {
	out := []uint64{} // want `slice/map literal allocates in hotpath function`
	for _, x := range xs {
		out = append(out, x) // want `append in hotpath function may grow`
	}
	return out
}

// Escape heap-allocates a scratch struct per call.
//
//cryptolint:hotpath
func Escape(x, y uint64) *point {
	return &point{x, y} // want `address-taken composite literal in hotpath function`
}

// Box converts a concrete value to an interface in three positions.
//
//cryptolint:hotpath
func Box(n uint64) interface{} {
	sink = n // want `concrete value boxed into interface interface\{\} in hotpath assignment`
	consume(n) // want `concrete value boxed into interface interface\{\} at hotpath call`
	return n // want `concrete value boxed into interface interface\{\} at hotpath return`
}

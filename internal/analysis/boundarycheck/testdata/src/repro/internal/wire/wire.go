// Package wire stubs the sanctioned validated decoders. Raw decodes inside
// this package are exempt — it is where validation lives.
package wire

import (
	"math/big"

	"repro/internal/curve"
	"repro/internal/pairing"
)

// UnmarshalG1 decodes and subgroup-checks a curve point.
func UnmarshalG1(c *curve.Curve, data []byte) (*curve.Point, error) {
	return c.Unmarshal(data)
}

// UnmarshalScalar decodes and range-checks a scalar.
func UnmarshalScalar(data []byte, max *big.Int) (*big.Int, error) {
	return new(big.Int).SetBytes(data), nil
}

// UnmarshalGT decodes and membership-checks a GT element.
func UnmarshalGT(pp *pairing.Params, data []byte) (*pairing.GT, error) {
	return pp.GTFromBytes(data)
}

// Command semload is a closed-loop load generator for a sharded semd
// fleet: it enrolls a population of synthetic identities across the shards
// through the sharded client (so enrollment exercises replica broadcast),
// then drives mixed token/sign/revoke traffic at a fixed concurrency and
// reports request rate and latency quantiles straight from the obs
// registry.
//
// Usage:
//
//	semload -shards 127.0.0.1:7300,127.0.0.1:7301,127.0.0.1:7302 \
//	        -system deploy/system.json -n 1000000 -c 32 -duration 30s
//
// semload acts as its own PKG: the fleet only needs -allow-register. The
// synthetic key halves are sampled exactly like real ones (SplitExtract /
// GDH Keygen), so the server-side cost per op is identical to production
// traffic; the halves simply do not combine with any real user key.
//
// The process exits non-zero if any operation failed at the transport
// layer (dial, routing, failover exhausted) — remote application errors
// (revoked, unknown identity) are reported but do not fail the run, since
// a load mix that includes revocations produces them by design.
package main

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/big"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/keyfile"
	"repro/internal/obs"
	"repro/internal/pairing"
	"repro/internal/sem"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "semload:", err)
		os.Exit(1)
	}
}

// opKinds in mix order; revoke alternates revoke/unrevoke wire ops so the
// revocable pool is reusable for arbitrarily long runs.
var opKinds = []string{"token", "sign", "revoke"}

type mixWeights map[string]int

func parseMix(s string) (mixWeights, error) {
	mix := mixWeights{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix element %q (want op=weight)", part)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", part)
		}
		switch name {
		case "token", "sign", "revoke":
			mix[name] = w
		default:
			return nil, fmt.Errorf("unknown -mix op %q (want token, sign or revoke)", name)
		}
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return nil, errors.New("-mix selects no traffic")
	}
	return mix, nil
}

// pick maps a monotone tick onto an op kind proportionally to the weights.
func (m mixWeights) pick(tick int) string {
	total := 0
	for _, k := range opKinds {
		total += m[k]
	}
	r := tick % total
	for _, k := range opKinds {
		if r < m[k] { //cryptolint:public (traffic-mix weights from the command line; not key material)
			return k
		}
		r -= m[k]
	}
	return "token"
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("semload", flag.ContinueOnError)
	var (
		shards    = fs.String("shards", "127.0.0.1:7300", "comma-separated semd shard addresses")
		systemFn  = fs.String("system", "deploy/system.json", "system parameters file (pairing parameter set + message length)")
		n         = fs.Int("n", 1_000_000, "synthetic identities to enroll")
		c         = fs.Int("c", 32, "closed-loop concurrency (worker goroutines)")
		duration  = fs.Duration("duration", 10*time.Second, "measured load window (after enrollment)")
		ops       = fs.Int64("ops", 0, "stop after this many total ops even if -duration has not elapsed (0 = duration only)")
		mixFlag   = fs.String("mix", "token=90,sign=8,revoke=2", "traffic mix as op=weight pairs (token, sign, revoke)")
		poolSize  = fs.Int("pool", sem.DefaultPoolSize, "connections per shard pool")
		replicas  = fs.Int("replicas", 2, "ring replicas per identity (failover depth; clamped to the shard count)")
		regBatch  = fs.Int("register-batch", 1024, "identities per enrollment batch frame")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of a table")
		benchFn   = fs.String("bench-json", "", "merge a bench baseline entry (semload.token.*) into this snapshot file")
		debugAddr = fs.String("debug-addr", "", "HTTP debug listener (Prometheus /metrics with shard_ring_*/sempool_* series); empty disables")
		printLead = fs.Bool("print-leader", false, "print the shard the ring designates as revocation leader for -shards, then exit (for scripting: start that daemon with -repl-leader)")
		assertCnv = fs.Bool("assert-converged", false, "after the run, poll every shard's revocation list until they agree; exit non-zero on divergence")
		cnvWindow = fs.Duration("converge-timeout", 15*time.Second, "how long -assert-converged waits for the fleet to agree (replication catch-up window)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for name, v := range map[string]int{"n": *n, "c": *c, "pool": *poolSize, "replicas": *replicas, "register-batch": *regBatch} {
		if v < 1 {
			return fmt.Errorf("-%s must be >= 1, got %d", name, v)
		}
	}
	if *duration <= 0 && *ops <= 0 {
		return errors.New("one of -duration or -ops must be positive")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	addrs := splitAddrs(*shards)
	if len(addrs) == 0 {
		return errors.New("-shards selects no addresses")
	}
	if *printLead {
		// Same ring construction as the load path (default virtual-node
		// count), so the printed shard is exactly where Revoke will land.
		// Nothing is dialed: the pools connect lazily.
		sc, err := sem.NewShardedClient(addrs, nil, sem.ShardedConfig{})
		if err != nil {
			return err
		}
		defer func() { _ = sc.Close() }()
		_, err = fmt.Fprintln(out, sc.LeaderAddr()) //cryptolint:public (the leader shard address is deployment metadata; printing it is the flag's purpose)
		return err
	}

	var sys keyfile.System
	if err := keyfile.Load(*systemFn, &sys); err != nil {
		return err
	}
	pp, err := sys.Params()
	if err != nil {
		return err
	}
	msgLen := sys.MsgLen
	if msgLen <= 0 {
		msgLen = 32
	}

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			return fmt.Errorf("semload debug listen: %w", err)
		}
		defer func() { _ = dbg.Close() }()
		log.Printf("semload: debug endpoint on http://%s", dbg.Addr)
	}
	sc, err := sem.NewShardedClient(addrs, pp, sem.ShardedConfig{
		Replicas: *replicas,
		Pool:     sem.PoolConfig{Size: *poolSize},
		Metrics:  reg,
	})
	if err != nil {
		return err
	}
	defer func() { _ = sc.Close() }()
	if err := sc.Ping(); err != nil {
		return fmt.Errorf("fleet unreachable: %w", err)
	}

	gen := &loadgen{
		sc: sc, pp: pp, mix: mix, reg: reg,
		concurrency: *c, duration: *duration, maxOps: *ops,
	}
	if err := gen.enroll(*n, msgLen, *regBatch); err != nil {
		return err
	}
	if err := gen.drive(); err != nil {
		return err
	}
	report := gen.report(addrs, *n, *poolSize, *replicas)
	if *benchFn != "" {
		if err := mergeBenchEntry(*benchFn, pp, report, len(addrs), *poolSize, *c); err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		report.table(out)
	}
	if *assertCnv {
		if err := assertConverged(addrs, pp, *cnvWindow); err != nil {
			return err
		}
	}
	if report.TransportErrors > 0 {
		return fmt.Errorf("%d transport errors (see report)", report.TransportErrors)
	}
	return nil
}

// assertConverged polls every shard's revocation list directly (one
// dedicated client per shard, no ring routing) until all shards report the
// same identity set or the window closes. With a replicated fleet this is
// the end-to-end convergence check: a revoke that raced a dead follower
// must still appear there once catch-up replication delivers it.
func assertConverged(addrs []string, pp *pairing.Params, window time.Duration) error {
	clients := make([]*sem.Client, len(addrs))
	for i, a := range addrs {
		c, err := sem.Dial(a, pp, 3*time.Second)
		if err != nil {
			return fmt.Errorf("assert-converged: dial shard %s: %w", a, err)
		}
		defer func() { _ = c.Close() }()
		clients[i] = c
	}
	deadline := time.Now().Add(window)
	var last []string // per-shard sorted id-set fingerprints, for the failure report
	for attempt := 0; ; attempt++ {
		sets := make([]string, len(clients))
		var fetchErr error
		for i, c := range clients {
			entries, err := c.ListRevoked()
			if err != nil {
				fetchErr = fmt.Errorf("shard %s: %w", addrs[i], err)
				break
			}
			ids := make([]string, len(entries))
			for j, e := range entries {
				ids[j] = e.ID
			}
			sort.Strings(ids)
			sets[i] = strings.Join(ids, "\n")
		}
		if fetchErr == nil {
			agreed := true
			for _, s := range sets[1:] {
				if s != sets[0] { //cryptolint:public (convergence check compares whole revocation-set fingerprints; set membership is what the tool reports)
					agreed = false
					break
				}
			}
			if agreed {
				n := 0
				if sets[0] != "" {
					n = strings.Count(sets[0], "\n") + 1
				}
				log.Printf("semload: fleet converged — %d shards agree on %d revoked identities (%d poll(s))",
					len(addrs), n, attempt+1)
				return nil
			}
			last = sets
		}
		if time.Now().After(deadline) {
			if fetchErr != nil {
				return fmt.Errorf("assert-converged: %w", fetchErr)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "assert-converged: fleet diverged after %v:", window)
			for i, s := range last {
				n := 0
				if s != "" {
					n = strings.Count(s, "\n") + 1
				}
				fmt.Fprintf(&b, " %s=%d", addrs[i], n)
			}
			return errors.New(b.String())
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// loadgen owns the synthetic population and the closed-loop drivers.
type loadgen struct {
	sc  *sem.ShardedClient
	pp  *pairing.Params
	mix mixWeights
	reg *obs.Registry

	concurrency int
	duration    time.Duration
	maxOps      int64

	safe []string // identities token/sign traffic draws from
	rev  []string // disjoint revocable tail for revoke/unrevoke ops
	hs   []*curve.Point

	wall time.Duration
}

// enroll split-extracts n synthetic identities and registers the SEM
// halves across the fleet in batches; sign traffic additionally gets GDH
// scalar halves. Enrollment happens through the sharded client, so it
// lands on every ring replica of each identity.
func (g *loadgen) enroll(n, msgLen, batch int) error {
	pkg, err := core.NewMediatedPKG(rand.Reader, g.pp, msgLen)
	if err != nil {
		return err
	}
	ta := core.NewGDHAuthority(g.pp)
	wantGDH := g.mix["sign"] > 0

	start := time.Now()
	ids := make([]string, 0, n)
	dsBuf := make([]*curve.Point, 0, batch)
	xsBuf := make([]*big.Int, 0, batch)
	idBuf := make([]string, 0, batch)
	flush := func() error {
		if len(idBuf) == 0 {
			return nil
		}
		if errs, err := g.sc.RegisterIBEBatch(idBuf, dsBuf); err != nil {
			return fmt.Errorf("enroll (ibe): %w", err)
		} else if err := firstErr(errs); err != nil {
			return fmt.Errorf("enroll (ibe): %w", err)
		}
		if wantGDH {
			if errs, err := g.sc.RegisterGDHBatch(idBuf, xsBuf); err != nil {
				return fmt.Errorf("enroll (gdh): %w", err)
			} else if err := firstErr(errs); err != nil {
				return fmt.Errorf("enroll (gdh): %w", err)
			}
		}
		idBuf, dsBuf, xsBuf = idBuf[:0], dsBuf[:0], xsBuf[:0]
		return nil
	}
	logEvery := n / 10
	if logEvery < 100_000 {
		logEvery = 100_000
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("load%07d@semload", i)
		_, semHalf, err := pkg.SplitExtract(rand.Reader, id)
		if err != nil {
			return err
		}
		idBuf = append(idBuf, id)
		dsBuf = append(dsBuf, semHalf.D)
		if wantGDH {
			_, semKey, err := ta.Keygen(rand.Reader, id)
			if err != nil {
				return err
			}
			xsBuf = append(xsBuf, semKey.X)
		}
		ids = append(ids, id)
		if len(idBuf) >= batch {
			if err := flush(); err != nil {
				return err
			}
		}
		if (i+1)%logEvery == 0 {
			log.Printf("semload: enrolled %d/%d identities", i+1, n)
		}
	}
	if err := flush(); err != nil {
		return err
	}
	log.Printf("semload: enrolled %d identities across %d shards in %v",
		n, len(g.sc.Addrs()), time.Since(start).Round(time.Millisecond))

	// Carve a disjoint revocable tail so revoke traffic never poisons the
	// token/sign population mid-run.
	tail := 0
	if g.mix["revoke"] > 0 { //cryptolint:public (traffic-mix weights from the command line; not key material)
		tail = n / 10
		if tail > 1024 {
			tail = 1024
		}
		if tail < 1 {
			tail = 1
		}
		if tail >= n {
			tail = n - 1
		}
	}
	g.safe, g.rev = ids[:n-tail], ids[n-tail:]
	if len(g.safe) == 0 {
		g.safe = g.rev // degenerate single-identity population
	}

	// Pre-hash a handful of messages for the sign path; the per-op
	// hash-to-point belongs to the user, not to the serving layer under
	// test.
	for i := 0; i < 16; i++ {
		h, err := bls.HashMessage(g.pp, []byte(fmt.Sprintf("semload message %d", i)))
		if err != nil {
			return err
		}
		g.hs = append(g.hs, h)
	}
	return nil
}

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// drive runs the closed loop: concurrency workers issuing ops drawn from
// the mix until the window elapses (or the op budget is spent).
func (g *loadgen) drive() error {
	u := g.pp.Generator()
	var (
		hist  = map[string]*obs.Histogram{}
		okC   = map[string]*obs.Counter{}
		remC  = map[string]*obs.Counter{}
		tranC = map[string]*obs.Counter{}
	)
	for _, k := range opKinds {
		l := obs.Label{Key: "op", Value: k}
		hist[k] = g.reg.Histogram("semload_op_seconds", "per-op latency by kind", l)
		okC[k] = g.reg.Counter("semload_ops_total", "completed ops by kind", l)
		remC[k] = g.reg.Counter("semload_errors_total", "failed ops by kind and class", l, obs.Label{Key: "class", Value: "remote"})
		tranC[k] = g.reg.Counter("semload_errors_total", "failed ops by kind and class", l, obs.Label{Key: "class", Value: "transport"})
	}

	var total atomic.Int64
	stop := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(stop) }) }
	if g.duration > 0 {
		t := time.AfterFunc(g.duration, halt)
		defer t.Stop()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// One shared tick stream across all workers: per-worker
				// counters would hand every worker the same mix prefix, so
				// a short (or race-slowed) run degenerates to pure token
				// traffic before any worker's counter reaches the sign or
				// revoke band.
				n := total.Add(1)
				if g.maxOps > 0 && n > g.maxOps {
					halt()
					return
				}
				i := int(n - 1)
				kind := g.mix.pick(i)
				opStart := time.Now()
				var err error
				switch kind {
				case "token":
					_, err = g.sc.IBEToken(g.safe[i%len(g.safe)], u)
				case "sign":
					_, err = g.sc.GDHHalfSign(g.safe[i%len(g.safe)], g.hs[i%len(g.hs)])
				case "revoke":
					id := g.rev[(i/2)%len(g.rev)]
					if i%2 == 0 {
						err = g.sc.Revoke(id, "semload churn")
					} else {
						err = g.sc.Unrevoke(id)
					}
				}
				hist[kind].Since(opStart)
				switch {
				case err == nil:
					okC[kind].Inc()
				case errors.Is(err, sem.ErrRemote):
					remC[kind].Inc()
				default:
					tranC[kind].Inc()
				}
			}
		}()
	}
	wg.Wait()
	g.wall = time.Since(start)
	return nil
}

// opReport is the per-kind slice of the final report.
type opReport struct {
	Count           uint64  `json:"count"`
	RPS             float64 `json:"rps"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`
	RemoteErrors    uint64  `json:"remote_errors"`
	TransportErrors uint64  `json:"transport_errors"`
}

type loadReport struct {
	Shards          []string            `json:"shards"`
	Identities      int                 `json:"identities"`
	Concurrency     int                 `json:"concurrency"`
	PoolSize        int                 `json:"pool_size"`
	Replicas        int                 `json:"replicas"`
	WallSeconds     float64             `json:"wall_seconds"`
	TotalRPS        float64             `json:"total_rps"`
	TransportErrors uint64              `json:"transport_errors"`
	Ops             map[string]opReport `json:"ops"`
	Metrics         json.RawMessage     `json:"metrics"`
}

func (g *loadgen) report(addrs []string, n, pool, replicas int) *loadReport {
	rep := &loadReport{
		Shards:      addrs,
		Identities:  n,
		Concurrency: g.concurrency,
		PoolSize:    pool,
		Replicas:    replicas,
		WallSeconds: g.wall.Seconds(),
		Ops:         map[string]opReport{},
	}
	var totalOps uint64
	for _, k := range opKinds {
		if g.mix[k] == 0 { //cryptolint:public (traffic-mix weights from the command line; not key material)
			continue
		}
		l := obs.Label{Key: "op", Value: k}
		snap := g.reg.Histogram("semload_op_seconds", "", l).Snapshot()
		o := opReport{
			Count:           g.reg.Counter("semload_ops_total", "", l).Value(),
			P50Ms:           float64(snap.Quantile(0.50)) / 1e6,
			P95Ms:           float64(snap.Quantile(0.95)) / 1e6,
			P99Ms:           float64(snap.Quantile(0.99)) / 1e6,
			RemoteErrors:    g.reg.Counter("semload_errors_total", "", l, obs.Label{Key: "class", Value: "remote"}).Value(),
			TransportErrors: g.reg.Counter("semload_errors_total", "", l, obs.Label{Key: "class", Value: "transport"}).Value(),
		}
		if g.wall > 0 {
			o.RPS = float64(o.Count) / g.wall.Seconds()
		}
		rep.Ops[k] = o
		totalOps += o.Count
		rep.TransportErrors += o.TransportErrors
	}
	if g.wall > 0 {
		rep.TotalRPS = float64(totalOps) / g.wall.Seconds()
	}
	var buf strings.Builder
	if err := g.reg.WriteJSON(&buf); err == nil {
		rep.Metrics = json.RawMessage(buf.String())
	}
	return rep
}

func (r *loadReport) table(out io.Writer) {
	fmt.Fprintf(out, "== semload: %d ids, %d shards, c=%d, pool=%d, replicas=%d, %.1fs ==\n",
		r.Identities, len(r.Shards), r.Concurrency, r.PoolSize, r.Replicas, r.WallSeconds)
	kinds := make([]string, 0, len(r.Ops))
	for k := range r.Ops {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(out, "%-8s %10s %10s %9s %9s %9s %8s %8s\n",
		"op", "count", "req/s", "p50(ms)", "p95(ms)", "p99(ms)", "remote", "transp")
	for _, k := range kinds {
		o := r.Ops[k] //cryptolint:public (aggregate per-op throughput stats; observability output)
		fmt.Fprintf(out, "%-8s %10d %10.1f %9.3f %9.3f %9.3f %8d %8d\n",
			k, o.Count, o.RPS, o.P50Ms, o.P95Ms, o.P99Ms, o.RemoteErrors, o.TransportErrors) //cryptolint:public (aggregate throughput stats; the report is the tool's purpose)
	}
	fmt.Fprintf(out, "total    %10.1f req/s, %d transport errors\n", r.TotalRPS, r.TransportErrors)
}

// mergeBenchEntry folds the token-op closed-loop measurement into a bench
// baseline snapshot (creating it if absent), alongside whatever benchtab
// -baseline wrote. The entry name carries the shard count, pool size and
// concurrency so snapshots from different topologies never collide.
func mergeBenchEntry(path string, pp *pairing.Params, rep *loadReport, shards, pool, c int) error {
	tok, ok := rep.Ops["token"]
	if !ok || tok.Count == 0 {
		return errors.New("-bench-json: no token ops measured (is token in -mix?)")
	}
	report := &bench.BaselineReport{
		Params:    pp.Name(),
		QBits:     pp.Q().BitLen(),
		PBits:     pp.P().BitLen(),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	if body, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(body, report); err != nil {
			return fmt.Errorf("-bench-json: parse %s: %w", path, err)
		}
		if report.Params != pp.Name() {
			return fmt.Errorf("-bench-json: %s holds %s-parameter entries, fleet runs %s", path, report.Params, pp.Name())
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	name := fmt.Sprintf("semload.token.shard%d.pool%d.c%d", shards, pool, c)
	entry := bench.BaselineEntry{Name: name, NsPerOp: 1e9 / tok.RPS, Iters: int(tok.Count)}
	kept := report.Entries[:0]
	for _, e := range report.Entries {
		if e.Name != name {
			kept = append(kept, e)
		}
	}
	report.Entries = append(kept, entry)
	body, err := report.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, body, 0o644)
}

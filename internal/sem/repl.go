package sem

// Replication over the SEM protocol: the server-side handlers for the
// repl.append / repl.snapshot / repl.status ops, the matching client
// methods, and the adapter that lets a repl.Leader speak to followers
// through an ordinary SEM client connection. The application logic lives
// in internal/repl; this file only moves its records across the wire.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/wire"
)

// wireReplOp maps a journal op name to its wire op byte.
func wireReplOp(op string) (byte, bool) {
	switch op {
	case "revoke":
		return wire.ReplOpRevoke, true
	case "unrevoke":
		return wire.ReplOpUnrevoke, true
	default:
		return 0, false
	}
}

// coreReplOp inverts wireReplOp.
func coreReplOp(b byte) (string, bool) {
	switch b {
	case wire.ReplOpRevoke:
		return "revoke", true
	case wire.ReplOpUnrevoke:
		return "unrevoke", true
	default:
		return "", false
	}
}

// replErrorResponse maps the typed errors of internal/repl onto protocol
// codes so the leader-side client can reconstruct them with errors.Is.
func replErrorResponse(err error) *Response {
	switch {
	case errors.Is(err, repl.ErrStaleEpoch):
		return errResponse(CodeStaleEpoch, err)
	case errors.Is(err, repl.ErrSeqGap):
		return errResponse(CodeSeqGap, err)
	case errors.Is(err, repl.ErrNotLeader):
		return errResponse(CodeNotLeader, err)
	default:
		return errResponse(CodeInternal, err)
	}
}

// replAppend applies a leader's record batch to the local follower. The
// whole batch travels inside ONE v2 item on purpose: the v2 server fans a
// frame's items across workers in parallel, and replication must apply in
// sequence order.
func (s *Server) replAppend(req *Request) *Response {
	if s.cfg.Repl == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "replication not enabled (no journal)"}
	}
	leaderEpoch, wrecs, err := wire.ParseReplRecords(req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	recs := make([]core.ReplRecord, len(wrecs))
	for i, w := range wrecs {
		op, ok := coreReplOp(w.Op)
		if !ok {
			return &Response{OK: false, Code: CodeBadRequest, Error: fmt.Sprintf("unknown replication op byte %#x", w.Op)}
		}
		recs[i] = core.ReplRecord{
			Seq:    w.Seq,
			Epoch:  w.Epoch,
			Op:     op,
			ID:     w.ID,
			Reason: w.Reason,
			When:   time.Unix(0, w.WhenUnixNano).UTC(),
		}
	}
	if err := s.cfg.Repl.ApplyAppend(leaderEpoch, recs); err != nil {
		return replErrorResponse(err)
	}
	return &Response{OK: true}
}

// replSnapshot feeds one chunk of a leader's full-state transfer.
func (s *Server) replSnapshot(req *Request) *Response {
	if s.cfg.Repl == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "replication not enabled (no journal)"}
	}
	wc, err := wire.ParseReplSnapshotChunk(req.Payload)
	if err != nil {
		return errResponse(CodeBadRequest, err)
	}
	entries := make([]core.RevocationEntry, len(wc.Entries))
	for i, e := range wc.Entries {
		entries[i] = core.RevocationEntry{ID: e.ID, Reason: e.Reason, When: time.Unix(0, e.WhenUnixNano).UTC()}
	}
	c := &repl.SnapshotChunk{
		Epoch:   wc.Epoch,
		BaseSeq: wc.BaseSeq,
		Total:   int(wc.Total),
		Index:   int(wc.Index),
		Chunks:  int(wc.Chunks),
		Entries: entries,
	}
	if err := s.cfg.Repl.ApplySnapshotChunk(c); err != nil {
		return replErrorResponse(err)
	}
	return &Response{OK: true}
}

// replStatus reports this daemon's replication position, flagging whether
// it is the fleet's active leader — the signal ShardedClient probes for
// when the ring's leader designation has drifted from the daemon actually
// running with -repl-leader (see shard.Ring.Leader for the hazard).
func (s *Server) replStatus(req *Request) *Response {
	if s.cfg.Repl == nil {
		return &Response{OK: false, Code: CodeUnsupported, Error: "replication not enabled (no journal)"}
	}
	epoch, lastSeq := s.cfg.Repl.Status()
	isLeader := s.cfg.Leader != nil && !s.cfg.Leader.Deposed()
	return &Response{OK: true, Payload: wire.PackReplStatus(wire.ReplStatus{Epoch: epoch, LastSeq: lastSeq, Leader: isLeader})}
}

// ReplStatus asks the SEM for its replication position (epoch, last
// durable sequence number).
func (c *Client) ReplStatus() (epoch, lastSeq uint64, err error) {
	resp, err := c.roundTrip(&Request{Op: OpReplStatus})
	if err != nil {
		return 0, 0, err
	}
	st, err := wire.ParseReplStatus(resp.Payload)
	if err != nil {
		return 0, 0, err
	}
	return st.Epoch, st.LastSeq, nil
}

// ReplAppend ships a contiguous batch of journal records to the SEM,
// packed into a single request so the follower applies them in order. The
// error unwraps to repl.ErrStaleEpoch / repl.ErrSeqGap when the follower
// refused the batch.
func (c *Client) ReplAppend(leaderEpoch uint64, recs []core.ReplRecord) error {
	wrecs := make([]wire.ReplRecord, len(recs))
	for i, r := range recs {
		op, ok := wireReplOp(r.Op)
		if !ok {
			return fmt.Errorf("sem: record %d has unknown replication op %q", i, r.Op)
		}
		wrecs[i] = wire.ReplRecord{
			Epoch:        r.Epoch,
			Seq:          r.Seq,
			Op:           op,
			ID:           r.ID,
			Reason:       r.Reason,
			WhenUnixNano: r.When.UnixNano(),
		}
	}
	payload, err := wire.AppendReplRecords(nil, leaderEpoch, wrecs)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(&Request{Op: OpReplAppend, Payload: payload})
	return err
}

// ReplSnapshot ships one chunk of a full-state transfer to the SEM.
func (c *Client) ReplSnapshot(chunk *repl.SnapshotChunk) error {
	entries := make([]wire.ReplEntry, len(chunk.Entries))
	for i, e := range chunk.Entries {
		entries[i] = wire.ReplEntry{ID: e.ID, Reason: e.Reason, WhenUnixNano: e.When.UnixNano()}
	}
	wc := &wire.ReplSnapshotChunk{
		Epoch:   chunk.Epoch,
		BaseSeq: chunk.BaseSeq,
		Total:   uint32(chunk.Total),
		Index:   uint32(chunk.Index),
		Chunks:  uint32(chunk.Chunks),
		Entries: entries,
	}
	payload, err := wire.MarshalReplSnapshotChunk(wc)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(&Request{Op: OpReplSnapshot, Payload: payload})
	return err
}

// replPeer adapts a Client to the repl.Peer interface the Leader speaks.
type replPeer struct{ c *Client }

func (p *replPeer) ReplStatus() (epoch, lastSeq uint64, err error) { return p.c.ReplStatus() }
func (p *replPeer) ReplAppend(leaderEpoch uint64, recs []core.ReplRecord) error {
	return p.c.ReplAppend(leaderEpoch, recs)
}
func (p *replPeer) ReplSnapshot(chunk *repl.SnapshotChunk) error { return p.c.ReplSnapshot(chunk) }
func (p *replPeer) Close() error                                 { return p.c.Close() }

// ReplDialer returns the peer dialer a repl.Leader uses to reach its
// followers over the SEM protocol. timeout covers the connection attempt;
// replication ops run under the client's default op deadline.
func ReplDialer(timeout time.Duration) func(addr string) (repl.Peer, error) {
	return func(addr string) (repl.Peer, error) {
		c, err := Dial(addr, nil, timeout)
		if err != nil {
			return nil, err
		}
		return &replPeer{c: c}, nil
	}
}

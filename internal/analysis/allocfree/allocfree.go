// Package allocfree enforces the zero-allocation discipline on functions
// marked //cryptolint:hotpath: the limb field kernels (internal/fp), the
// obs record paths, the MSM inner loops and the Miller loop. Those
// functions sit inside per-element loops measured by AllocsPerRun guards;
// this analyzer turns the guard's "0 allocs" observation into a reviewable
// source-level rule.
//
// Inside a hotpath body the analyzer flags the constructs that defeat
// stack allocation or drag in allocation-heavy machinery:
//
//   - calls into fmt or reflect (interface boxing, scan state, method
//     caches);
//   - function literals (closure environments escape);
//   - append (growth reallocates; hot paths index into pre-sized slabs);
//   - slice, map and address-taken composite literals (value struct
//     literals stay, they live in registers or on the stack);
//   - concrete-to-interface conversions at calls, returns and assignments
//     (boxing allocates for anything wider than a word).
//
// The marker is the escape in reverse: an unmarked function is not
// checked, and the fix for a false positive is to narrow the marker to
// the genuinely hot callee, not to annotate around the rule.
package allocfree

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the allocfree checker.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "forbid allocating constructs (fmt/reflect, closures, append, boxing) in //cryptolint:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasMarker(fd.Doc, analysis.MarkerHotpath) {
				continue
			}
			sig, _ := info.Defs[fd.Name].Type().(*types.Signature)
			checkBody(pass, info, sig, fd.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, info *types.Info, sig *types.Signature, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure in hotpath function: the environment escapes to the heap")
			return false // the literal runs elsewhere; don't double-report its body
		case *ast.CallExpr:
			checkCall(pass, info, x)
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "address-taken composite literal in hotpath function escapes to the heap")
					ast.Inspect(cl, func(n ast.Node) bool { checkInner(pass, info, n); return true })
					return false
				}
			}
		case *ast.CompositeLit:
			if isRefLit(info.TypeOf(x)) {
				pass.Reportf(x.Pos(), "slice/map literal allocates in hotpath function; use a pre-sized slab")
			}
		case *ast.ReturnStmt:
			if sig == nil {
				break
			}
			res := sig.Results()
			if res.Len() != len(x.Results) {
				break // naked return or multi-value pass-through: nothing converts here
			}
			for i, r := range x.Results {
				if boxes(info, r, res.At(i).Type()) {
					pass.Reportf(r.Pos(), "concrete value boxed into interface %s at hotpath return", res.At(i).Type())
				}
			}
		case *ast.AssignStmt:
			if x.Tok.String() != "=" || len(x.Lhs) != len(x.Rhs) {
				break
			}
			for i, r := range x.Rhs {
				if boxes(info, r, info.TypeOf(x.Lhs[i])) {
					pass.Reportf(r.Pos(), "concrete value boxed into interface %s in hotpath assignment", info.TypeOf(x.Lhs[i]))
				}
			}
		}
		return true
	})
}

// checkInner re-checks nodes nested under an already-reported literal so a
// closure or fmt call inside it still gets its own diagnostic.
func checkInner(pass *analysis.Pass, info *types.Info, n ast.Node) {
	if call, ok := n.(*ast.CallExpr); ok {
		checkCall(pass, info, call)
	}
}

func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			pass.Reportf(call.Pos(), "append in hotpath function may grow and reallocate; index into a pre-sized slab")
			return
		}
	}
	if fn := callee(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "reflect":
			pass.Reportf(call.Pos(), "%s.%s call in hotpath function (boxing and scan state allocate)", fn.Pkg().Name(), fn.Name())
			return
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarded slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, arg, pt) {
			pass.Reportf(arg.Pos(), "concrete value boxed into interface %s at hotpath call", pt)
		}
	}
}

// boxes reports whether assigning expr e to destination type dst performs a
// concrete-to-interface conversion.
func boxes(info *types.Info, e ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return tv.Value == nil // untyped constants fold; anything else still boxes
	}
	return !types.IsInterface(tv.Type)
}

// isRefLit reports whether t is a slice or map type (whose literals allocate
// backing storage). Arrays and structs are value types.
func isRefLit(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

package bf

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/pairing"
)

const msgLen = 32

func setup(t *testing.T) (*PKG, *PublicParams) {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := Setup(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, pkg.Public()
}

func TestSetupValidation(t *testing.T) {
	pp, _ := pairing.Toy()
	if _, err := Setup(rand.Reader, pp, 0); err == nil {
		t.Error("zero message length accepted")
	}
	if _, err := SetupWithMaster(pp, big.NewInt(0), msgLen); err == nil {
		t.Error("zero master key accepted")
	}
	if _, err := SetupWithMaster(pp, pp.Q(), msgLen); err == nil {
		t.Error("master key ≡ 0 mod q accepted")
	}
}

func TestBasicRoundTrip(t *testing.T) {
	pkg, pub := setup(t)
	key, err := pkg.Extract("alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("attack at dawn, bring the cheese")
	c, err := pub.EncryptBasic(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pub.DecryptBasic(key, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestBasicWrongKeyGarbles(t *testing.T) {
	pkg, pub := setup(t)
	keyBob, _ := pkg.Extract("bob@example.com")
	msg := bytes.Repeat([]byte{0x42}, msgLen)
	c, _ := pub.EncryptBasic(rand.Reader, "alice@example.com", msg)
	got, err := pub.DecryptBasic(keyBob, c)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("Bob's key decrypted Alice's BasicIdent ciphertext")
	}
}

func TestBasicIsMalleable(t *testing.T) {
	// The paper relies on BasicIdent's malleability to motivate FullIdent:
	// flipping bit i of V flips bit i of the plaintext.
	pkg, pub := setup(t)
	key, _ := pkg.Extract("alice@example.com")
	msg := bytes.Repeat([]byte{0x00}, msgLen)
	c, _ := pub.EncryptBasic(rand.Reader, "alice@example.com", msg)
	c.V[0] ^= 0x01
	got, err := pub.DecryptBasic(key, c)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte{0x01}, msg[1:]...)
	if !bytes.Equal(got, want) {
		t.Fatal("BasicIdent is expected to be malleable bit-for-bit")
	}
}

func TestFullRoundTrip(t *testing.T) {
	pkg, pub := setup(t)
	key, err := pkg.Extract("alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("attack at dawn, bring the cheese")
	c, err := pub.Encrypt(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pub.Decrypt(key, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestFullRejectsMauledCiphertext(t *testing.T) {
	pkg, pub := setup(t)
	key, _ := pkg.Extract("alice@example.com")
	msg := bytes.Repeat([]byte{7}, msgLen)
	c, _ := pub.Encrypt(rand.Reader, "alice@example.com", msg)

	mauledV := &Ciphertext{U: c.U, V: bytes.Clone(c.V), W: bytes.Clone(c.W)}
	mauledV.V[0] ^= 1
	if _, err := pub.Decrypt(key, mauledV); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("mauled V accepted: %v", err)
	}
	mauledW := &Ciphertext{U: c.U, V: bytes.Clone(c.V), W: bytes.Clone(c.W)}
	mauledW.W[3] ^= 0x80
	if _, err := pub.Decrypt(key, mauledW); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("mauled W accepted: %v", err)
	}
	mauledU := &Ciphertext{U: c.U.Double(), V: bytes.Clone(c.V), W: bytes.Clone(c.W)}
	if _, err := pub.Decrypt(key, mauledU); !errors.Is(err, ErrInvalidCiphertext) {
		t.Errorf("mauled U accepted: %v", err)
	}
}

func TestFullWrongIdentityRejected(t *testing.T) {
	pkg, pub := setup(t)
	keyBob, _ := pkg.Extract("bob@example.com")
	msg := bytes.Repeat([]byte{7}, msgLen)
	c, _ := pub.Encrypt(rand.Reader, "alice@example.com", msg)
	if _, err := pub.Decrypt(keyBob, c); !errors.Is(err, ErrInvalidCiphertext) {
		t.Fatalf("Bob's key decrypting Alice's ciphertext: %v", err)
	}
}

func TestMessageLengthEnforced(t *testing.T) {
	_, pub := setup(t)
	if _, err := pub.Encrypt(rand.Reader, "x", []byte("short")); !errors.Is(err, ErrMessageLength) {
		t.Errorf("short message accepted: %v", err)
	}
	if _, err := pub.EncryptBasic(rand.Reader, "x", make([]byte, msgLen+1)); !errors.Is(err, ErrMessageLength) {
		t.Errorf("long message accepted: %v", err)
	}
}

func TestExtractDeterministic(t *testing.T) {
	pkg, _ := setup(t)
	k1, err := pkg.Extract("carol@example.com")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := pkg.Extract("carol@example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !k1.D.Equal(k2.D) {
		t.Fatal("extraction is not deterministic")
	}
}

func TestExtractConsistency(t *testing.T) {
	// d_ID must satisfy ê(P, d_ID) = ê(P_pub, Q_ID) — the share-check
	// equation from the paper with t = 1.
	pkg, pub := setup(t)
	key, _ := pkg.Extract("dave@example.com")
	qid, _ := HashIdentity(pub.Pairing, "dave@example.com")
	lhs, err := pub.Pairing.Pair(pub.Pairing.Generator(), key.D)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := pub.Pairing.Pair(pub.PPub, qid)
	if err != nil {
		t.Fatal(err)
	}
	if !lhs.Equal(rhs) {
		t.Fatal("extracted key fails pairing consistency check")
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	pkg, pub := setup(t)
	key, _ := pkg.Extract("alice@example.com")
	msg := bytes.Repeat([]byte{0xAB}, msgLen)
	c, _ := pub.Encrypt(rand.Reader, "alice@example.com", msg)
	data := c.Marshal()
	c2, err := pub.UnmarshalCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pub.Decrypt(key, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round-tripped ciphertext failed to decrypt")
	}
	if _, err := pub.UnmarshalCiphertext(data[:len(data)-1]); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	pkg, pub := setup(t)
	key, _ := pkg.Extract("alice@example.com")
	data := key.Marshal()
	k2, err := pub.UnmarshalPrivateKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if k2.ID != key.ID || !k2.D.Equal(key.D) {
		t.Fatal("private key round trip mismatch")
	}
	if _, err := pub.UnmarshalPrivateKey(data[:2]); err == nil {
		t.Fatal("truncated key accepted")
	}
	if _, err := pub.UnmarshalPrivateKey(append(data, 0)); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestDeriveRInRange(t *testing.T) {
	pp, _ := pairing.Toy()
	q := pp.Q()
	for i := 0; i < 50; i++ {
		sigma := []byte{byte(i)}
		r := DeriveR(sigma, []byte("m"), q)
		if r.Sign() <= 0 || r.Cmp(q) >= 0 {
			t.Fatalf("r = %v outside [1, q)", r)
		}
	}
}

func TestCiphertextsRandomized(t *testing.T) {
	_, pub := setup(t)
	msg := bytes.Repeat([]byte{1}, msgLen)
	c1, _ := pub.Encrypt(rand.Reader, "alice@example.com", msg)
	c2, _ := pub.Encrypt(rand.Reader, "alice@example.com", msg)
	if c1.U.Equal(c2.U) {
		t.Fatal("two encryptions shared the same U (randomness reuse)")
	}
}

func TestQuickFullIdentRoundTrip(t *testing.T) {
	pkg, pub := setup(t)
	key, _ := pkg.Extract("quick@example.com")
	cfg := &quick.Config{MaxCount: 10}
	property := func(raw [msgLen]byte) bool {
		msg := raw[:]
		c, err := pub.Encrypt(rand.Reader, "quick@example.com", msg)
		if err != nil {
			return false
		}
		got, err := pub.Decrypt(key, c)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// Multi-scalar multiplication: a bucketed Pippenger kernel over the limb
// Jacobian layer, with the window fan-out parallelized through
// internal/parallel.
//
// The batch operations of the threshold schemes — BLS batch-verification
// aggregation, Feldman commitment evaluation, point-share recombination —
// all reduce to Σ eᵢ·Pᵢ. Computed point-by-point that costs one full w-NAF
// ladder per term; Pippenger's algorithm instead slices every scalar into
// b-bit signed digits, accumulates the points with equal digit d into
// bucket d (one mixed addition per point per window), collapses each
// window's buckets with a running suffix sum (Σ d·bucket_d via 2·2^(b−1)
// additions, no multiplications), and merges the window sums with b
// doublings per window. Total cost ≈ windows·(n + 2^b) additions versus
// n·(bits + bits/w) for the per-point loop — asymptotically bits/b times
// fewer group operations, and every one of them runs on internal/fp limbs
// instead of big.Int.
//
// Determinism: windows are distributed across workers but each window sum
// is written to its own slot and the merge walks the slots in index order
// on the caller's goroutine, so the result is the exact group element of
// the sequential evaluation regardless of scheduling — and equal group
// elements have equal affine coordinates, making MSM bit-identical to the
// MSMSequential oracle (fuzzed in msm_test.go).
package curve

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"time"

	"repro/internal/parallel"
)

// errMSMShape is wrapped by the argument-validation errors of MSM and
// MSMSequential.
var errMSMShape = errors.New("curve: invalid MSM arguments")

// msmWindowBits picks the Pippenger window width for n points: wider
// windows amortize the 2^(b−1)-bucket collapse over more points. The
// b ≈ log2(n) − 1 rule tracks the cost minimum of
// (bits/b)·(n + 1.5·2^(b−1)) within a fraction of a percent for every n the
// schemes produce; the cap bounds the per-worker bucket slab.
func msmWindowBits(n int) int {
	b := bits.Len(uint(n)) - 2
	if b < 2 {
		b = 2
	}
	if b > 12 {
		b = 12
	}
	return b
}

// msmCheckArgs validates the shared MSM/MSMSequential contract.
func msmCheckArgs(scalars []*big.Int, points []*Point) error {
	if len(scalars) != len(points) {
		return fmt.Errorf("%w: %d scalars for %d points", errMSMShape, len(scalars), len(points))
	}
	for i := range scalars {
		if scalars[i] == nil {
			return fmt.Errorf("%w: scalar %d is nil", errMSMShape, i)
		}
		if points[i] == nil {
			return fmt.Errorf("%w: point %d is nil", errMSMShape, i)
		}
	}
	return nil
}

// scalarWords returns |k| as little-endian uint64 words.
func scalarWords(k *big.Int) []uint64 {
	ws := k.Bits()
	if bits.UintSize == 64 {
		out := make([]uint64, len(ws))
		for i, w := range ws {
			out[i] = uint64(w)
		}
		return out
	}
	out := make([]uint64, (len(ws)+1)/2)
	for i, w := range ws { // 32-bit big.Word
		out[i/2] |= uint64(w) << (32 * uint(i%2))
	}
	return out
}

// windowDigit extracts b bits of words starting at bit position bit.
//
//cryptolint:hotpath
func windowDigit(words []uint64, bit, b int) uint64 {
	wi := bit >> 6
	if wi >= len(words) {
		return 0
	}
	d := words[wi] >> (uint(bit) & 63)
	if rem := 64 - (bit & 63); rem < b && wi+1 < len(words) {
		d |= words[wi+1] << uint(rem)
	}
	return d & (1<<uint(b) - 1)
}

// MSM computes the multi-scalar sum Σ scalars[i]·points[i] with the
// bucketed Pippenger kernel. Scalars may be negative, zero or wider than
// the group order (they are not reduced — the sum matches the sequential
// ScalarMul semantics for arbitrary curve points, including cofactor-order
// ones); identity points and zero scalars contribute nothing. The result is
// bit-identical to MSMSequential. Falls back to the sequential path when
// the limb backend cannot host the curve prime.
func (c *Curve) MSM(scalars []*big.Int, points []*Point) (*Point, error) {
	if err := msmCheckArgs(scalars, points); err != nil {
		return nil, err
	}
	F, ok := c.limbField()
	if !ok {
		return c.MSMSequential(scalars, points)
	}
	start := time.Now()

	// Collect the contributing terms: |kᵢ| as words, the Montgomery affine
	// coordinates, and ±y with the scalar's sign folded into which y a
	// positive digit selects.
	n := 0
	words := make([][]uint64, 0, len(points))
	xs := make([][]uint64, 0, len(points))
	ysPos := make([][]uint64, 0, len(points))
	ysNeg := make([][]uint64, 0, len(points))
	maxBits := 0
	for i := range points {
		k, pt := scalars[i], points[i]
		if pt.inf || k.Sign() == 0 {
			continue
		}
		abs := k
		if k.Sign() < 0 {
			abs = new(big.Int).Neg(k)
		}
		x, y, ny := F.NewElt(), F.NewElt(), F.NewElt()
		if err := F.FromBig(x, pt.x); err != nil {
			return nil, fmt.Errorf("curve: MSM point %d: %w", i, err)
		}
		if err := F.FromBig(y, pt.y); err != nil {
			return nil, fmt.Errorf("curve: MSM point %d: %w", i, err)
		}
		F.Neg(ny, y)
		if k.Sign() < 0 {
			y, ny = ny, y
		}
		words = append(words, scalarWords(abs))
		xs = append(xs, x)
		ysPos = append(ysPos, y)
		ysNeg = append(ysNeg, ny)
		if b := abs.BitLen(); b > maxBits {
			maxBits = b
		}
		n++
	}
	if n == 0 {
		recordMSM(0, 0, 0, time.Since(start))
		return c.Infinity(), nil
	}

	b := msmWindowBits(n)
	// One extra window absorbs the final carry of the signed-digit
	// recoding (digits in (−2^(b−1), 2^(b−1)]).
	windows := (maxBits+b-1)/b + 1
	half := int64(1) << uint(b-1)
	digits := make([]int32, n*windows)
	for i := 0; i < n; i++ {
		carry := int64(0)
		for j := 0; j < windows; j++ {
			v := int64(windowDigit(words[i], j*b, b)) + carry
			carry = 0
			if v > half {
				v -= int64(1) << uint(b)
				carry = 1
			}
			digits[i*windows+j] = int32(v)
		}
		// carry is always absorbed: the top window extracts zero bits, so
		// its digit is the carry itself (≤ 1 ≤ half).
	}

	// Fan the windows across workers. Each worker owns one bucket slab and
	// scratch, reused across its contiguous window range; window sums land
	// in per-window slots for the deterministic in-order merge below.
	K := int(half)
	windowSums := make([]limbJac, windows)
	windowErrs := make([]error, windows)
	parallel.FanChunks(windows, func(lo, hi int) {
		s := newLjScratch(F)
		buckets := make([]limbJac, K)
		prefix := make([][]uint64, K)
		for d := 0; d < K; d++ {
			buckets[d] = newLimbJac(F)
			prefix[d] = F.NewElt()
		}
		sum := newLimbJac(F)
		for j := lo; j < hi; j++ {
			for d := 0; d < K; d++ {
				F.SetZero(buckets[d].z)
			}
			any := false
			for i := 0; i < n; i++ {
				d := digits[i*windows+j]
				if d == 0 {
					continue
				}
				any = true
				if d > 0 {
					ljAddMixed(F, &buckets[d-1], xs[i], ysPos[i], s)
				} else {
					ljAddMixed(F, &buckets[-d-1], xs[i], ysNeg[i], s)
				}
			}
			wj := newLimbJac(F)
			if any {
				// Batch-affine collapse: normalize the live buckets with one
				// shared inversion so the suffix running sum uses cheap mixed
				// additions, then T = Σ d·bucket_d via S += bucket_d; T += S.
				if err := ljBatchNormalize(F, buckets, prefix, s); err != nil {
					windowErrs[j] = err
					continue
				}
				F.SetZero(sum.z)
				for d := K - 1; d >= 0; d-- {
					if !F.IsZero(buckets[d].z) {
						ljAddMixed(F, &sum, buckets[d].x, buckets[d].y, s)
					}
					if !F.IsZero(sum.z) {
						ljAdd(F, &wj, &sum, s)
					}
				}
			}
			windowSums[j] = wj
		}
	})
	for _, err := range windowErrs {
		if err != nil {
			// Unreachable in theory (see ljBatchNormalize); keep the kernel
			// total by deferring to the oracle.
			return c.MSMSequential(scalars, points)
		}
	}

	// Merge window sums most-significant first: b doublings then one
	// general addition per window, in index order.
	s := newLjScratch(F)
	acc := newLimbJac(F)
	for j := windows - 1; j >= 0; j-- {
		if !F.IsZero(acc.z) {
			for i := 0; i < b; i++ {
				ljDouble(F, &acc, s)
			}
		}
		ljAdd(F, &acc, &windowSums[j], s)
	}
	out := c.ljToPoint(F, &acc, s)
	recordMSM(n, windows, b, time.Since(start))
	return out, nil
}

// MSMSequential is the point-by-point oracle for MSM: Σ scalars[i]·points[i]
// evaluated with one w-NAF ScalarMul per term and affine additions. It is
// the differential-test baseline (FuzzMSM) and the fallback when the limb
// backend is unavailable.
func (c *Curve) MSMSequential(scalars []*big.Int, points []*Point) (*Point, error) {
	if err := msmCheckArgs(scalars, points); err != nil {
		return nil, err
	}
	acc := c.Infinity()
	for i := range points {
		acc = acc.Add(points[i].ScalarMul(scalars[i]))
	}
	return acc, nil
}

package mrsa

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/mathx"
)

// This file implements the mediated-RSA key split of Boneh, Ding, Tsudik and
// Wong and the identity based IB-mRSA variant the paper reviews in
// Section 2: the private exponent is split additively,
//
//	d = d_user + d_sem  (mod φ(n)),
//
// so the user's and the SEM's half-results multiply to the full RSA
// operation: c^d = c^{d_user} · c^{d_sem} (mod n). Revocation = the SEM
// stops producing its half.

// ErrIdentityExponent is returned when an identity hashes to an exponent
// that is not invertible mod φ(n) — the event the paper argues is
// negligible with safe primes.
var ErrIdentityExponent = errors.New("mrsa: identity exponent not invertible mod φ(n)")

// HalfKey is one half of a split private exponent, bound to the modulus.
//
//cryptolint:secret
type HalfKey struct {
	N    *big.Int //cryptolint:public (the modulus)
	Half *big.Int
}

// Split divides kp's private exponent into a user half and a SEM half.
// Following the paper's Keygen, the user half is drawn uniformly from Z_n
// and the SEM half is d − d_user mod φ(n).
func Split(rng io.Reader, kp *KeyPair) (user, sem *HalfKey, err error) {
	du, err := mathx.RandomInRange(rng, big.NewInt(1), kp.Public.N)
	if err != nil {
		return nil, nil, fmt.Errorf("sample user half: %w", err)
	}
	dsem := new(big.Int).Sub(kp.D, du)
	dsem.Mod(dsem, kp.Phi)
	return &HalfKey{N: new(big.Int).Set(kp.Public.N), Half: du},
		&HalfKey{N: new(big.Int).Set(kp.Public.N), Half: dsem},
		nil
}

// Op applies the half exponent: x^half mod n. It is the single primitive
// both the user and the SEM run, for decryption and signing alike.
func (h *HalfKey) Op(x *big.Int) *big.Int {
	return new(big.Int).Exp(x, h.Half, h.N)
}

// Combine multiplies two half-results modulo n.
func Combine(n, a, b *big.Int) *big.Int {
	out := new(big.Int).Mul(a, b)
	return out.Mod(out, n)
}

// MediatedDecrypt runs the full two-party decryption locally (both halves
// in-process): c → c^{d_u}·c^{d_sem} → OAEP decode. The networked variant
// lives in internal/sem; this is the protocol reference and the benchmark
// body.
func MediatedDecrypt(pub *PublicKey, user, sem *HalfKey, ciphertext []byte) ([]byte, error) {
	k := pub.ModulusBytes()
	if len(ciphertext) != k {
		return nil, ErrDecrypt
	}
	c := new(big.Int).SetBytes(ciphertext)
	if c.Cmp(pub.N) >= 0 {
		return nil, ErrDecrypt
	}
	m := Combine(pub.N, user.Op(c), sem.Op(c))
	em, err := mathx.PadBytes(m, k)
	if err != nil {
		return nil, ErrDecrypt
	}
	msg, err := oaepDecode(em, nil, k)
	if err != nil {
		return nil, ErrDecrypt
	}
	return msg, nil
}

// FinishDecrypt OAEP-decodes a recombined mediated-decryption result
// m = m_user·m_sem mod n. It is the user's final protocol step when the SEM
// half arrived over the network (see internal/sem).
func FinishDecrypt(pub *PublicKey, combined *big.Int) ([]byte, error) {
	k := pub.ModulusBytes()
	em, err := mathx.PadBytes(combined, k)
	if err != nil {
		return nil, ErrDecrypt
	}
	msg, err := oaepDecode(em, nil, k)
	if err != nil {
		return nil, ErrDecrypt
	}
	return msg, nil
}

// SignHalf computes one party's signature half over msg: EMSA(msg)^half.
func SignHalf(h *HalfKey, msg []byte) (*big.Int, error) {
	em, err := emsaEncode(msg, (h.N.BitLen()+7)/8)
	if err != nil {
		return nil, err
	}
	return h.Op(new(big.Int).SetBytes(em)), nil
}

// FinishSignature combines two signature halves, checks the result against
// the public key (the user-side step 3 of the paper's protocols) and
// serializes it.
func FinishSignature(pub *PublicKey, msg []byte, userHalf, semHalf *big.Int) ([]byte, error) {
	s := Combine(pub.N, userHalf, semHalf)
	sig, err := mathx.PadBytes(s, pub.ModulusBytes())
	if err != nil {
		return nil, ErrVerify
	}
	if err := pub.Verify(msg, sig); err != nil {
		return nil, fmt.Errorf("combined mediated signature: %w", err)
	}
	return sig, nil
}

// IBPKG is the IB-mRSA key generation center: it owns the common modulus'
// factorization and derives every user's exponent pair from their identity.
// Unlike plain mRSA, *all* users share n — which is exactly why the paper
// stresses that a single reassembled (e, d) pair destroys the whole system
// (see FactorFromED).
//
//cryptolint:secret
type IBPKG struct {
	n   *big.Int
	phi *big.Int
	p   *big.Int
	q   *big.Int
}

// NewIBPKG generates an IB-mRSA system with a bits-size Blum-style modulus
// built from safe primes, per the paper's Setup.
func NewIBPKG(rng io.Reader, bits int) (*IBPKG, error) {
	p, q, err := generatePrimes(rng, bits, true)
	if err != nil {
		return nil, fmt.Errorf("ib-mrsa setup: %w", err)
	}
	return NewIBPKGFromPrimes(p, q)
}

// NewIBPKGFromPrimes builds the PKG from explicit safe primes (for the
// embedded fixed parameters).
func NewIBPKGFromPrimes(p, q *big.Int) (*IBPKG, error) {
	if !mathx.IsSafePrime(p) || !mathx.IsSafePrime(q) {
		return nil, fmt.Errorf("mrsa: IB-mRSA requires safe primes")
	}
	if p.Cmp(q) == 0 {
		return nil, fmt.Errorf("mrsa: primes must differ")
	}
	n := new(big.Int).Mul(p, q)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	return &IBPKG{
		n:   n,
		phi: new(big.Int).Mul(pm1, qm1),
		p:   new(big.Int).Set(p),
		q:   new(big.Int).Set(q),
	}, nil
}

// Modulus returns a copy of the shared modulus n.
func (g *IBPKG) Modulus() *big.Int { return new(big.Int).Set(g.n) }

// IdentityExponent maps an identity to its public exponent following the
// paper's Keygen: e = 0^s ‖ H(ID) ‖ 1 — the SHA-256 digest left-padded with
// zeros into the k-bit frame and forced odd by the trailing 1 bit.
func IdentityExponent(id string) *big.Int {
	digest := sha256.Sum256([]byte(id))
	e := new(big.Int).SetBytes(digest[:])
	e.Lsh(e, 1)
	return e.Or(e, one)
}

// IdentityPublicKey returns the RSA public key (n, e_ID) any sender can
// derive from the identity alone — the identity based property.
func (g *IBPKG) IdentityPublicKey(id string) *PublicKey {
	return &PublicKey{N: g.Modulus(), E: IdentityExponent(id)}
}

// IssueHalves derives the identity's private exponent and splits it between
// the user and the SEM, per the paper's four-step Keygen.
func (g *IBPKG) IssueHalves(rng io.Reader, id string) (user, sem *HalfKey, err error) {
	e := IdentityExponent(id)
	d, err := mathx.InverseMod(e, g.phi)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: identity %q", ErrIdentityExponent, id)
	}
	du, err := mathx.RandomInRange(rng, one, g.n)
	if err != nil {
		return nil, nil, fmt.Errorf("sample user half: %w", err)
	}
	dsem := new(big.Int).Sub(d, du)
	dsem.Mod(dsem, g.phi)
	return &HalfKey{N: g.Modulus(), Half: du}, &HalfKey{N: g.Modulus(), Half: dsem}, nil
}

// FullExponent returns the unsplit private exponent for an identity. Only
// the attack demonstrations use it (a real PKG never hands this out).
func (g *IBPKG) FullExponent(id string) (*big.Int, error) {
	d, err := mathx.InverseMod(IdentityExponent(id), g.phi)
	if err != nil {
		return nil, fmt.Errorf("%w: identity %q", ErrIdentityExponent, id)
	}
	return d, nil
}

// V2 binary framing.
//
// The v1 framing of this package (4-byte length + JSON body) spends a JSON
// marshal, a base64 expansion and several transient buffers on every
// protocol operation — acceptable for admin traffic, hostile to a mediator
// that serves a pairing-bound token per request. The v2 framing replaces
// the JSON body with a fixed binary header and length-delimited fields
// copied straight from the compressed-point/scalar encodings, and carries
// up to maxBatch operations per frame so batched requests amortize both
// the framing and the round trip.
//
// Connection preamble (client → server, once, before any frame):
//
//	magic "SEM2" (4 bytes) | version (1 byte)
//
// Server acknowledgement (server → client, once):
//
//	magic "SEM2" (4 bytes) | version (1 byte) |
//	maxBatch (2 bytes BE)  | maxFrame (4 bytes BE)
//
// The magic's first byte 'S' (0x53) can never open a v1 frame: v1 frames
// are length-prefixed and capped well below 2^24, so their first byte is
// always 0x00. A server sniffs one byte and serves both protocol versions
// on the same listener.
//
// Frame layout (both directions):
//
//	frameLen (4 bytes BE, body length) | body
//	request body:  op (1) | count (2 BE) | count × item
//	request item:  idLen (2 BE) | id | payloadLen (4 BE) | payload
//	response body: op (1) | count (2 BE) | count × item
//	response item: status (1) | dataLen (4 BE) | data
//
// Encode and decode run against caller-owned reused buffers and are
// allocation-free in steady state (the //cryptolint:hotpath markers make
// the allocfree analyzer enforce it); decoded items alias the decoder's
// frame buffer and stay valid until its next Read call.

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// V2Version is the protocol version negotiated by the v2 preamble.
const V2Version = 2

// v2Magic opens every v2 connection preamble and acknowledgement.
var v2Magic = [4]byte{'S', 'E', 'M', '2'}

// V2MagicByte is the first byte of the v2 preamble, used by servers to
// sniff the protocol version of an incoming connection (v1 frames always
// start with 0x00).
const V2MagicByte = byte('S')

// V2 frame geometry.
const (
	v2FrameHdrLen = 4     // big-endian body length
	v2BodyHdrLen  = 3     // op (1) + count (2)
	v2ReqItemHdr  = 2 + 4 // idLen + payloadLen
	v2RespItemHdr = 1 + 4 // status + dataLen
	v2HelloLen    = 5     // magic + version
	v2AckLen      = 4 + 1 + 2 + 4
	v2MaxIDLen    = 0xFFFF // idLen is a uint16
	// V2MaxFrame caps any negotiable frame limit: the length prefix must
	// keep its top byte zero so v1/v2 sniffing stays unambiguous.
	V2MaxFrame = 1<<24 - 1
	// V2MaxBatch caps any negotiable batch limit (count is a uint16).
	V2MaxBatch = 0xFFFF
)

var (
	// ErrBatchTooLarge is returned when a peer sends more items in one
	// frame than the negotiated batch limit allows.
	ErrBatchTooLarge = errors.New("wire: batch exceeds negotiated limit")

	// Pre-wrapped protocol errors for the hotpath decode routines (which
	// must not call fmt).
	errV2Truncated       = fmt.Errorf("%w: truncated v2 frame", ErrProtocol)
	errV2BadItem         = fmt.Errorf("%w: v2 item overruns its frame", ErrProtocol)
	errV2TrailingGarbage = fmt.Errorf("%w: v2 frame has bytes after its last item", ErrProtocol)
	errV2BadMagic        = fmt.Errorf("%w: bad v2 preamble magic", ErrProtocol)
	errV2BadVersion      = fmt.Errorf("%w: unsupported v2 protocol version", ErrProtocol)
)

// ReqItem is one request of a v2 frame: an identity and an op-specific
// payload (a compressed point, a scalar, packed integers — whatever the op
// defines). Decoded items alias the decoder's buffer.
type ReqItem struct {
	ID      []byte
	Payload []byte
}

// RespItem is one response of a v2 frame: a status byte (0 = OK, anything
// else an op-layer error code) and the result or error-message bytes.
// Decoded items alias the decoder's buffer.
type RespItem struct {
	Status byte
	Data   []byte
}

// WriteV2Hello sends the client-side connection preamble.
func WriteV2Hello(w io.Writer, version byte) error {
	var buf [v2HelloLen]byte
	copy(buf[:4], v2Magic[:])
	buf[4] = version
	_, err := w.Write(buf[:])
	return err
}

// ReadV2HelloTail completes a preamble whose first byte the server already
// consumed while sniffing the protocol version: it reads and validates the
// remaining magic bytes and returns the announced version.
func ReadV2HelloTail(r io.Reader) (version byte, err error) {
	var buf [v2HelloLen - 1]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: short v2 preamble: %w", ErrProtocol, err)
	}
	if buf[0] != v2Magic[1] || buf[1] != v2Magic[2] || buf[2] != v2Magic[3] {
		return 0, errV2BadMagic
	}
	return buf[3], nil
}

// WriteV2Ack sends the server acknowledgement carrying the accepted
// version and the connection's negotiated limits.
func WriteV2Ack(w io.Writer, version byte, maxBatch, maxFrame int) error {
	if maxBatch < 1 || maxBatch > V2MaxBatch {
		return fmt.Errorf("wire: ack maxBatch %d outside 1..%d", maxBatch, V2MaxBatch)
	}
	if maxFrame < 1 || maxFrame > V2MaxFrame {
		return fmt.Errorf("wire: ack maxFrame %d outside 1..%d", maxFrame, V2MaxFrame)
	}
	var buf [v2AckLen]byte
	copy(buf[:4], v2Magic[:])
	buf[4] = version
	binary.BigEndian.PutUint16(buf[5:7], uint16(maxBatch))
	binary.BigEndian.PutUint32(buf[7:11], uint32(maxFrame))
	_, err := w.Write(buf[:])
	return err
}

// ReadV2Ack reads the server acknowledgement and returns the negotiated
// version and limits.
func ReadV2Ack(r io.Reader) (version byte, maxBatch, maxFrame int, err error) {
	var buf [v2AckLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: short v2 ack: %w", ErrProtocol, err)
	}
	if [4]byte(buf[:4]) != v2Magic {
		return 0, 0, 0, errV2BadMagic
	}
	if buf[4] != V2Version {
		return 0, 0, 0, errV2BadVersion
	}
	maxBatch = int(binary.BigEndian.Uint16(buf[5:7]))
	maxFrame = int(binary.BigEndian.Uint32(buf[7:11]))
	if maxBatch < 1 || maxFrame < v2BodyHdrLen {
		return 0, 0, 0, fmt.Errorf("%w: v2 ack announces degenerate limits (%d, %d)", ErrProtocol, maxBatch, maxFrame)
	}
	return buf[4], maxBatch, maxFrame, nil
}

// FrameEncoder builds v2 frames into one reused buffer. The slice returned
// by EncodeRequest/EncodeResponse (including the 4-byte length prefix,
// ready for a single Write) is valid until the next Encode call. The zero
// value is ready to use; an encoder is not safe for concurrent use.
type FrameEncoder struct {
	// The working buffer holds post-serialization wire bytes: everything
	// written here is addressed to the peer by design, the module's
	// sanctioned output edge (tokens and half-results go to the user; the
	// taint question for their inputs is settled at the compute sites).
	buf []byte //cryptolint:public (serialized wire bytes, addressed to the peer by design)
}

// grow resizes the working buffer to exactly n bytes, reallocating only
// when capacity is short — the amortized path of the zero-alloc encode.
func (e *FrameEncoder) grow(n int) []byte {
	if cap(e.buf) < n {
		e.buf = make([]byte, n)
	}
	e.buf = e.buf[:n]
	return e.buf
}

// EncodeRequest encodes op plus its batch of items and returns the
// complete frame, rejecting frames beyond maxFrame body bytes. maxFrame
// ≤ 0 selects the package default MaxFrame.
func (e *FrameEncoder) EncodeRequest(op byte, items []ReqItem, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	if len(items) > V2MaxBatch {
		return nil, ErrBatchTooLarge
	}
	body := v2BodyHdrLen
	for i := range items {
		if len(items[i].ID) > v2MaxIDLen {
			return nil, fmt.Errorf("%w: item %d identity is %d bytes (limit %d)", ErrProtocol, i, len(items[i].ID), v2MaxIDLen)
		}
		body += v2ReqItemHdr + len(items[i].ID) + len(items[i].Payload)
	}
	if body > maxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := e.grow(v2FrameHdrLen + body)
	fillRequest(buf, op, items)
	return buf, nil
}

// fillRequest writes the frame into a pre-sized buffer.
//
//cryptolint:hotpath
func fillRequest(buf []byte, op byte, items []ReqItem) {
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(buf)-v2FrameHdrLen))
	buf[4] = op
	binary.BigEndian.PutUint16(buf[5:7], uint16(len(items)))
	off := v2FrameHdrLen + v2BodyHdrLen
	for i := range items {
		id, payload := items[i].ID, items[i].Payload
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(id)))
		off += 2
		off += copy(buf[off:], id)
		binary.BigEndian.PutUint32(buf[off:off+4], uint32(len(payload)))
		off += 4
		off += copy(buf[off:], payload)
	}
}

// EncodeResponse encodes op plus its batch of response items and returns
// the complete frame, rejecting frames beyond maxFrame body bytes.
// maxFrame ≤ 0 selects the package default MaxFrame.
func (e *FrameEncoder) EncodeResponse(op byte, items []RespItem, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	if len(items) > V2MaxBatch {
		return nil, ErrBatchTooLarge
	}
	body := v2BodyHdrLen
	for i := range items {
		body += v2RespItemHdr + len(items[i].Data)
	}
	if body > maxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := e.grow(v2FrameHdrLen + body)
	fillResponse(buf, op, items)
	return buf, nil
}

// fillResponse writes the frame into a pre-sized buffer.
//
//cryptolint:hotpath
func fillResponse(buf []byte, op byte, items []RespItem) {
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(buf)-v2FrameHdrLen))
	buf[4] = op
	binary.BigEndian.PutUint16(buf[5:7], uint16(len(items)))
	off := v2FrameHdrLen + v2BodyHdrLen
	for i := range items {
		buf[off] = items[i].Status
		off++
		binary.BigEndian.PutUint32(buf[off:off+4], uint32(len(items[i].Data)))
		off += 4
		off += copy(buf[off:], items[i].Data)
	}
}

// FrameDecoder reads v2 frames into reused buffers. Returned item slices
// and their ID/Payload/Data fields alias the decoder's buffer and are valid
// until the next Read call, so a pipelining server keeps one decoder per
// in-flight frame. The zero value is ready to use; a decoder is not safe
// for concurrent use.
// Decoder state is received wire bytes — data the peer already holds, the
// mirror image of the encoder's output edge — so the buffers and the item
// views aliasing them are declared public to the taint layer.
type FrameDecoder struct {
	hdr  [v2FrameHdrLen]byte //cryptolint:public (prefix scratch; a local would escape through io.ReadFull)
	buf  []byte              //cryptolint:public (received wire bytes, known to the peer)
	req  []ReqItem           //cryptolint:public (views aliasing buf)
	resp []RespItem          //cryptolint:public (views aliasing buf)
}

// readBody reads the length prefix and body, enforcing maxFrame, and
// returns the body and total bytes consumed. An error from the length
// prefix read is returned verbatim so callers can distinguish a clean EOF
// from a torn frame.
//
//cryptolint:hotpath
func (d *FrameDecoder) readBody(r io.Reader, maxFrame int) ([]byte, int, error) {
	if _, err := io.ReadFull(r, d.hdr[:]); err != nil {
		return nil, 0, err
	}
	// Unsigned compare before narrowing so a length ≥ 2³¹ classifies as
	// ErrFrameTooLarge on 32-bit platforms too, instead of wrapping
	// negative.
	n32 := binary.BigEndian.Uint32(d.hdr[:])
	if uint64(n32) > uint64(maxFrame) {
		return nil, 0, ErrFrameTooLarge
	}
	n := int(n32)
	if n < v2BodyHdrLen {
		return nil, 0, errV2Truncated
	}
	if cap(d.buf) < n {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(r, d.buf); err != nil {
		return nil, 0, errV2Truncated
	}
	return d.buf, v2FrameHdrLen + n, nil
}

// ReadRequest reads one request frame, enforcing the connection's
// negotiated frame and batch limits (values ≤ 0 select the package
// defaults MaxFrame and V2MaxBatch). On ErrFrameTooLarge the announced
// body has not been consumed; the connection cannot be resynchronized.
//
//cryptolint:hotpath
func (d *FrameDecoder) ReadRequest(r io.Reader, maxFrame, maxBatch int) (op byte, items []ReqItem, n int, err error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	if maxBatch <= 0 {
		maxBatch = V2MaxBatch
	}
	body, n, err := d.readBody(r, maxFrame)
	if err != nil {
		return 0, nil, 0, err
	}
	op = body[0]
	count := int(binary.BigEndian.Uint16(body[1:3]))
	if count > maxBatch {
		return op, nil, n, ErrBatchTooLarge
	}
	if cap(d.req) < count {
		d.req = make([]ReqItem, count)
	}
	d.req = d.req[:count]
	off := v2BodyHdrLen
	for i := 0; i < count; i++ {
		if len(body)-off < v2ReqItemHdr {
			return op, nil, n, errV2BadItem
		}
		idLen := int(binary.BigEndian.Uint16(body[off : off+2]))
		off += 2
		if len(body)-off < idLen+4 {
			return op, nil, n, errV2BadItem
		}
		id := body[off : off+idLen]
		off += idLen
		// Compare the 32-bit wire length unsigned before narrowing to int:
		// on 32-bit platforms int(Uint32) goes negative for lengths ≥ 2³¹
		// and a signed `< payLen` guard would let the slice expression
		// panic on attacker-chosen input.
		payLen32 := binary.BigEndian.Uint32(body[off : off+4])
		off += 4
		if uint64(payLen32) > uint64(len(body)-off) {
			return op, nil, n, errV2BadItem
		}
		payLen := int(payLen32)
		d.req[i] = ReqItem{ID: id, Payload: body[off : off+payLen]}
		off += payLen
	}
	if off != len(body) {
		return op, nil, n, errV2TrailingGarbage
	}
	return op, d.req, n, nil
}

// ReadResponse reads one response frame, enforcing the connection's
// negotiated frame and batch limits (values ≤ 0 select the package
// defaults MaxFrame and V2MaxBatch).
//
//cryptolint:hotpath
func (d *FrameDecoder) ReadResponse(r io.Reader, maxFrame, maxBatch int) (op byte, items []RespItem, n int, err error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	if maxBatch <= 0 {
		maxBatch = V2MaxBatch
	}
	body, n, err := d.readBody(r, maxFrame)
	if err != nil {
		return 0, nil, 0, err
	}
	op = body[0]
	count := int(binary.BigEndian.Uint16(body[1:3]))
	if count > maxBatch {
		return op, nil, n, ErrBatchTooLarge
	}
	if cap(d.resp) < count {
		d.resp = make([]RespItem, count)
	}
	d.resp = d.resp[:count]
	off := v2BodyHdrLen
	for i := 0; i < count; i++ {
		if len(body)-off < v2RespItemHdr {
			return op, nil, n, errV2BadItem
		}
		status := body[off]
		off++
		// Unsigned bound check before narrowing — see ReadRequest.
		dataLen32 := binary.BigEndian.Uint32(body[off : off+4])
		off += 4
		if uint64(dataLen32) > uint64(len(body)-off) {
			return op, nil, n, errV2BadItem
		}
		dataLen := int(dataLen32)
		d.resp[i] = RespItem{Status: status, Data: body[off : off+dataLen]}
		off += dataLen
	}
	if off != len(body) {
		return op, nil, n, errV2TrailingGarbage
	}
	return op, d.resp, n, nil
}

package main

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/keyfile"
	"repro/internal/pairing"
	"repro/internal/sem"
)

func writeDeployment(t *testing.T) string {
	t.Helper()
	d, err := keyfile.NewDeployment(keyfile.DeploymentConfig{ParamSet: "toy", MsgLen: 32, RSABits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll("alice@example.com"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.Write(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSemdServeAndShutdown(t *testing.T) {
	dir := writeDeployment(t)
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-system", filepath.Join(dir, "system.json"),
			"-store", filepath.Join(dir, "sem-store.json"),
			"-revoked", "mallory@example.com",
		}, stop, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	client, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	// The -revoked flag took effect.
	revoked, err := client.Status("mallory@example.com")
	if err != nil || !revoked {
		t.Fatalf("startup revocation missing: %v %v", revoked, err)
	}
	_ = client.Close()

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestSemdMissingFiles(t *testing.T) {
	stop := make(chan os.Signal)
	if err := run([]string{"-system", "/nonexistent.json"}, stop, nil); err == nil {
		t.Fatal("missing system file accepted")
	}
	dir := writeDeployment(t)
	if err := run([]string{
		"-system", filepath.Join(dir, "system.json"),
		"-store", "/nonexistent.json",
	}, stop, nil); err == nil {
		t.Fatal("missing store file accepted")
	}
}

func TestSemdBadAddress(t *testing.T) {
	dir := writeDeployment(t)
	stop := make(chan os.Signal)
	if err := run([]string{
		"-addr", "256.256.256.256:99999",
		"-system", filepath.Join(dir, "system.json"),
		"-store", filepath.Join(dir, "sem-store.json"),
	}, stop, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

func TestSemdJournalSurvivesRestart(t *testing.T) {
	dir := writeDeployment(t)
	journal := filepath.Join(dir, "revocations.jsonl")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-system", filepath.Join(dir, "system.json"),
		"-store", filepath.Join(dir, "sem-store.json"),
		"-journal", journal,
	}
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}

	// First life: revoke alice over the wire, then shut down.
	stop1 := make(chan os.Signal, 1)
	ready1 := make(chan string, 1)
	done1 := make(chan error, 1)
	go func() { done1 <- run(args, stop1, ready1) }()
	addr := <-ready1
	client, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Revoke("alice@example.com", "incident"); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	stop1 <- syscall.SIGTERM
	if err := <-done1; err != nil {
		t.Fatal(err)
	}

	// Second life: the revocation must have survived.
	stop2 := make(chan os.Signal, 1)
	ready2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() { done2 <- run(args, stop2, ready2) }()
	addr = <-ready2
	client2, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	revoked, err := client2.Status("alice@example.com")
	if err != nil || !revoked {
		t.Fatalf("revocation lost across restart: %v %v", revoked, err)
	}
	// Unrevoke also persists.
	if err := client2.Unrevoke("alice@example.com"); err != nil {
		t.Fatal(err)
	}
	_ = client2.Close()
	stop2 <- syscall.SIGTERM
	if err := <-done2; err != nil {
		t.Fatal(err)
	}

	// Third life: unrevocation visible.
	stop3 := make(chan os.Signal, 1)
	ready3 := make(chan string, 1)
	done3 := make(chan error, 1)
	go func() { done3 <- run(args, stop3, ready3) }()
	addr = <-ready3
	client3, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	revoked, err = client3.Status("alice@example.com")
	if err != nil || revoked {
		t.Fatalf("unrevocation lost across restart: %v %v", revoked, err)
	}
	_ = client3.Close()
	stop3 <- syscall.SIGTERM
	if err := <-done3; err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchtabQuickSubset(t *testing.T) {
	var out bytes.Buffer
	// T1 + T4 + F1 at toy parameters keeps the test fast while covering a
	// size table, an attack run and a simulation sweep.
	if err := run([]string{"-exp", "t1,t4,f1", "-params", "toy", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"== T1", "== T4", "== F1", "SYSTEM BROKEN", "contained", "sem"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchtabF2Quick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "f2", "-params", "toy", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== F2") {
		t.Errorf("missing F2 table:\n%s", out.String())
	}
}

func TestBenchtabUnknownParams(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-params", "bogus"}, &out); err == nil {
		t.Fatal("unknown parameter set accepted")
	}
}

func TestBenchtabUnknownExperimentIsNoop(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "t9", "-params", "toy"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output for unknown experiment: %q", out.String())
	}
}

package deadlinecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/deadlinecheck"
)

func TestDeadlineCheck(t *testing.T) {
	analysistest.Run(t, "testdata", deadlinecheck.Analyzer,
		"repro/internal/connbad",
		"repro/internal/conngood",
	)
}

// Package nopanic forbids panics reachable from the exported API of library
// packages. A panic that attacker-controlled input can trigger is a denial
// of service against the SEM: one malformed revocation request must never
// take down the mediator serving every other user.
//
// The analyzer builds the intra-package static call graph (identifier and
// selector calls resolved through the type checker; function literals are
// attributed to their enclosing declaration), marks every exported function
// and every exported method on an exported type as an entry point, and
// reports each panic call site reachable from one. Dynamic calls through
// interfaces and function values are not followed — the check is a
// lower bound, which is the useful direction for a linter that must stay
// free of false positives.
//
// main packages and everything under cmd/ are exempt: a command aborting on
// startup misconfiguration is conventional. Test files never reach the
// analyzer (the loader feeds it non-test sources only). A panic call on a
// line carrying //cryptolint:panic-ok is sanctioned — the marker exists for
// deliberate re-raises, like internal/parallel re-panicking a worker's
// panic on the caller's goroutine, and is expected to carry a reason.
package nopanic

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the nopanic checker.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panics reachable from the exported API of library packages",
	Run:  run,
}

type funcInfo struct {
	obj    *types.Func
	panics []token.Pos
	calls  map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Types.Name() == "main" || underCmd(pass.Pkg.Path) {
		return nil
	}

	marks := analysis.CollectLineMarks(pass.Pkg, analysis.MarkerPanicOK)
	funcs := make(map[*types.Func]*funcInfo)
	var order []*funcInfo
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj, calls: make(map[*types.Func]bool)}
			collect(pass, marks, fd.Body, fi)
			funcs[obj] = fi
			order = append(order, fi)
		}
	}

	reported := make(map[token.Pos]bool)
	for _, fi := range order {
		if !entryPoint(fi.obj) {
			continue
		}
		// Breadth-first walk of the call graph from this entry point.
		seen := map[*types.Func]bool{fi.obj: true}
		queue := []*types.Func{fi.obj}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			info := funcs[cur]
			if info == nil {
				continue
			}
			for _, pos := range info.panics {
				if !reported[pos] {
					reported[pos] = true
					pass.Reportf(pos, "panic reachable from exported function %s", fi.obj.Name())
				}
			}
			callees := make([]*types.Func, 0, len(info.calls))
			for callee := range info.calls {
				callees = append(callees, callee)
			}
			sort.Slice(callees, func(i, j int) bool { return callees[i].Pos() < callees[j].Pos() })
			for _, callee := range callees {
				if !seen[callee] {
					seen[callee] = true
					queue = append(queue, callee)
				}
			}
		}
	}
	return nil
}

// collect records the panic sites and same-package callees of one function
// body. Function literals are walked in place, attributing their panics and
// calls to the enclosing declaration. Panic calls on //cryptolint:panic-ok
// lines are skipped.
func collect(pass *analysis.Pass, marks *analysis.LineMarks, body *ast.BlockStmt, fi *funcInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch obj := pass.Pkg.Info.Uses[fun].(type) {
			case *types.Builtin:
				if obj.Name() == "panic" && !marks.Has(analysis.MarkerPanicOK, call.Pos()) {
					fi.panics = append(fi.panics, call.Pos())
				}
			case *types.Func:
				if samePackage(obj, pass) {
					fi.calls[obj] = true
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func); ok && samePackage(obj, pass) {
				fi.calls[obj] = true
			}
		}
		return true
	})
}

func samePackage(fn *types.Func, pass *analysis.Pass) bool {
	return fn.Pkg() == pass.Pkg.Types
}

// entryPoint reports whether fn is part of the package's exported API: an
// exported function, or an exported method on an exported type.
func entryPoint(fn *types.Func) bool {
	if !fn.Exported() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Exported()
	}
	return false
}

func underCmd(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestLoadErrorExitCode pins the loader-failure contract: a package that
// does not type-check must produce exit status 2, never a clean 0 — a
// broken package is unanalyzed, not finding-free. The sibling package must
// still be loaded and analyzed.
func TestLoadErrorExitCode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run("testdata/brokenmod", []string{"./..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run over broken module: exit %d, want 2\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "brokenmod/broken") {
		t.Errorf("stderr does not identify the broken package:\n%s", stderr.String())
	}
}

// TestLoadErrorJSON checks that -json reports the load error in the
// document (so CI archives it) and still exits 2.
func TestLoadErrorJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run("testdata/brokenmod", []string{"-json", "./..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run -json over broken module: exit %d, want 2\nstderr:\n%s", code, stderr.String())
	}
	var report jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(report.LoadErrors) != 1 || !strings.Contains(report.LoadErrors[0], "brokenmod/broken") {
		t.Errorf("loadErrors = %q, want one entry naming brokenmod/broken", report.LoadErrors)
	}
	if len(report.Findings) != 0 {
		t.Errorf("findings = %v, want none from the ok package", report.Findings)
	}
}

// TestCleanSubtree checks exit 0 and an empty JSON document when only the
// healthy package is targeted.
func TestCleanSubtree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run("testdata/brokenmod", []string{"-json", "brokenmod/ok"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run over clean package: exit %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	var report jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(report.Findings) != 0 || len(report.LoadErrors) != 0 {
		t.Errorf("want empty report, got %+v", report)
	}
}

// TestAnalyzerSelection exercises the -enable/-disable flags, including
// the typo guard.
func TestAnalyzerSelection(t *testing.T) {
	if _, err := selectAnalyzers("cttime,nopanic", ""); err != nil {
		t.Errorf("enable two known analyzers: %v", err)
	}
	if _, err := selectAnalyzers("", "allocfree"); err != nil {
		t.Errorf("disable one known analyzer: %v", err)
	}
	if _, err := selectAnalyzers("", "alocfree"); err == nil {
		t.Error("misspelled -disable silently accepted; want usage error")
	}
	if _, err := selectAnalyzers("cttime", "cttime"); err == nil {
		t.Error("empty selection accepted; want usage error")
	}
	active, err := selectAnalyzers("", "")
	if err != nil || len(active) != len(analyzers) {
		t.Errorf("default selection: %d analyzers, err %v; want all %d", len(active), err, len(analyzers))
	}
}

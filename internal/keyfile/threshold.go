package keyfile

import (
	"crypto/rand"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/pairing"
)

// Threshold deployment artifacts, produced by `pkgen -threshold t,n` and
// consumed by cmd/thresholdd:
//
//	threshold.json          — public threshold parameters (everyone)
//	players/player-<i>.json — player i's identity-key shares (that player)

// ThresholdSystem is the public artifact of a threshold deployment.
type ThresholdSystem struct {
	ParamSet string `json:"paramSet"`
	MsgLen   int    `json:"msgLen"`
	T        int    `json:"t"`
	N        int    `json:"n"`
	PPub     []byte `json:"ppub"`
	// VerificationKeys[i-1] is player i's compressed P_pub^(i).
	VerificationKeys [][]byte `json:"verificationKeys"`
}

// PlayerFile is one player's private artifact.
type PlayerFile struct {
	Index int `json:"index"`
	// Shares maps identity → compressed d_IDi.
	Shares map[string][]byte `json:"shares"`
}

// Params reconstructs the threshold parameters for verification and
// recombination.
func (ts *ThresholdSystem) Params() (*core.ThresholdParams, error) {
	pp, err := pairing.ByName(ts.ParamSet)
	if err != nil {
		return nil, err
	}
	ppub, err := pp.Curve().Unmarshal(ts.PPub)
	if err != nil {
		return nil, fmt.Errorf("threshold P_pub: %w", err)
	}
	vks := make([]*curve.Point, len(ts.VerificationKeys))
	for i, raw := range ts.VerificationKeys {
		if vks[i], err = pp.Curve().Unmarshal(raw); err != nil {
			return nil, fmt.Errorf("verification key %d: %w", i+1, err)
		}
	}
	return core.NewThresholdParams(pp, ts.MsgLen, ts.T, ts.N, ppub, vks)
}

// KeyShares decodes the player's identity-key shares.
func (pf *PlayerFile) KeyShares(params *core.ThresholdParams) ([]*core.KeyShare, error) {
	pp := params.Public.Pairing
	out := make([]*core.KeyShare, 0, len(pf.Shares))
	for id, raw := range pf.Shares {
		d, err := pp.Curve().Unmarshal(raw)
		if err != nil {
			return nil, fmt.Errorf("share for %q: %w", id, err) //cryptolint:public (the share-holder label, not the share)
		}
		out = append(out, &core.KeyShare{ID: id, Index: pf.Index, D: d})
	}
	return out, nil
}

// ThresholdDeployment is an in-progress threshold enrollment session.
type ThresholdDeployment struct {
	sys     *ThresholdSystem
	pkg     *core.ThresholdPKG
	players []*PlayerFile
	rng     io.Reader
}

// ThresholdDeploymentConfig configures NewThresholdDeployment.
type ThresholdDeploymentConfig struct {
	ParamSet string // default "paper"
	MsgLen   int    // default 32
	T, N     int
	Rand     io.Reader
}

// NewThresholdDeployment runs the dealer setup (use internal/dkg for the
// dealerless variant).
func NewThresholdDeployment(cfg ThresholdDeploymentConfig) (*ThresholdDeployment, error) {
	if cfg.ParamSet == "" {
		cfg.ParamSet = "paper"
	}
	if cfg.MsgLen == 0 {
		cfg.MsgLen = 32
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	pp, err := pairing.ByName(cfg.ParamSet)
	if err != nil {
		return nil, err
	}
	pkg, err := core.SetupThreshold(cfg.Rand, pp, cfg.MsgLen, cfg.T, cfg.N)
	if err != nil {
		return nil, err
	}
	params := pkg.Params()
	vks := make([][]byte, cfg.N)
	for i, vk := range params.VerificationKeys {
		vks[i] = vk.Marshal()
	}
	players := make([]*PlayerFile, cfg.N)
	for i := range players {
		players[i] = &PlayerFile{Index: i + 1, Shares: map[string][]byte{}}
	}
	return &ThresholdDeployment{
		sys: &ThresholdSystem{
			ParamSet:         cfg.ParamSet,
			MsgLen:           cfg.MsgLen,
			T:                cfg.T,
			N:                cfg.N,
			PPub:             params.Public.PPub.Marshal(),
			VerificationKeys: vks,
		},
		pkg:     pkg,
		players: players,
		rng:     cfg.Rand,
	}, nil
}

// Enroll issues every player's share for one identity.
func (d *ThresholdDeployment) Enroll(id string) error {
	for i := 1; i <= d.sys.N; i++ {
		if _, ok := d.players[i-1].Shares[id]; ok {
			return fmt.Errorf("keyfile: identity %q already enrolled", id)
		}
		ks, err := d.pkg.ExtractShare(id, i)
		if err != nil {
			return err
		}
		d.players[i-1].Shares[id] = ks.D.Marshal()
	}
	return nil
}

// System returns the public artifact.
func (d *ThresholdDeployment) System() *ThresholdSystem { return d.sys }

// Player returns player i's artifact.
func (d *ThresholdDeployment) Player(i int) (*PlayerFile, error) {
	if i < 1 || i > d.sys.N {
		return nil, fmt.Errorf("keyfile: player %d out of 1..%d", i, d.sys.N)
	}
	return d.players[i-1], nil
}

// Write lays the deployment out under dir: threshold.json plus
// players/player-<i>.json.
func (d *ThresholdDeployment) Write(dir string) error {
	if err := Save(filepath.Join(dir, "threshold.json"), d.sys, false); err != nil {
		return err
	}
	for _, pf := range d.players {
		path := filepath.Join(dir, "players", fmt.Sprintf("player-%d.json", pf.Index))
		if err := Save(path, pf, true); err != nil {
			return err
		}
	}
	return nil
}

package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/bf"
	"repro/internal/curve"
	"repro/internal/mathx"
	"repro/internal/pairing"
)

// Mediated Boneh-Franklin IBE (Section 4 of the paper).
//
// The PKG computes the FullIdent key d_ID = s·Q_ID, then splits it
// additively in G1:
//
//	d_ID = d_ID,user + d_ID,sem,   d_ID,user ∈R G1.
//
// Encryption is unchanged FullIdent, so the SEM architecture is transparent
// to senders. To decrypt <U, V, W>, the user asks the SEM for the
// message-specific token g_sem = ê(U, d_ID,sem), computes
// g_user = ê(U, d_ID,user), multiplies g = g_sem·g_user = ê(P_pub, Q_ID)^r
// and finishes FullIdent decryption (including the validity check that makes
// tokens single-use). The SEM refuses tokens for revoked identities —
// instant, fine-grained revocation with no key reissue, unlike the
// validity-period workaround of [4]/[3].

// ErrTokenMismatch is returned when a SEM token does not correspond to the
// ciphertext being decrypted (the FullIdent validity check fails).
var ErrTokenMismatch = errors.New("core: SEM token does not open this ciphertext")

// UserKeyHalf is the user's piece d_ID,user of an identity key.
//
//cryptolint:secret
type UserKeyHalf struct {
	ID string
	D  *curve.Point
}

// SEMKeyHalf is the mediator's piece d_ID,sem of an identity key.
//
//cryptolint:secret
type SEMKeyHalf struct {
	ID string
	D  *curve.Point
}

// MediatedPKG wraps the Boneh-Franklin PKG with the key-splitting Keygen of
// Section 4. The PKG can go offline once every user's halves are delivered;
// only the SEM stays online.
type MediatedPKG struct {
	pkg *bf.PKG
}

// NewMediatedPKG runs Setup: pairing groups, master key s, P_pub = s·P.
func NewMediatedPKG(rng io.Reader, pp *pairing.Params, msgLen int) (*MediatedPKG, error) {
	pkg, err := bf.Setup(rng, pp, msgLen)
	if err != nil {
		return nil, fmt.Errorf("mediated IBE setup: %w", err)
	}
	return &MediatedPKG{pkg: pkg}, nil
}

// Public returns the system parameters senders use. Encryption is plain
// FullIdent: Public().Encrypt(rng, id, msg).
func (m *MediatedPKG) Public() *bf.PublicParams { return m.pkg.Public() }

// SplitExtract derives d_ID = s·H1(ID), draws d_ID,user uniformly from G1
// and returns the two halves. The PKG retains nothing.
func (m *MediatedPKG) SplitExtract(rng io.Reader, id string) (*UserKeyHalf, *SEMKeyHalf, error) {
	full, err := m.pkg.Extract(id)
	if err != nil {
		return nil, nil, err
	}
	pp := m.pkg.Public().Pairing
	r, err := mathx.RandomFieldElement(orRand(rng), pp.Q())
	if err != nil {
		return nil, nil, fmt.Errorf("sample user half: %w", err)
	}
	dUser := pp.GeneratorMul(r)
	dSem := full.D.Add(dUser.Neg())
	return &UserKeyHalf{ID: id, D: dUser}, &SEMKeyHalf{ID: id, D: dSem}, nil
}

// IBESEM is the mediator's half of the mediated IBE: it stores the SEM key
// halves, enforces revocation and issues decryption tokens. Safe for
// concurrent use.
type IBESEM struct {
	pub  *bf.PublicParams
	reg  *Registry
	keys *keyStore[*SEMKeyHalf]
}

// NewIBESEM constructs a SEM bound to the system parameters and a (possibly
// shared) revocation registry.
func NewIBESEM(pub *bf.PublicParams, reg *Registry) *IBESEM {
	return &IBESEM{pub: pub, reg: reg, keys: newKeyStore[*SEMKeyHalf]()}
}

// Register installs an identity's SEM key half.
func (s *IBESEM) Register(half *SEMKeyHalf) { s.keys.put(half.ID, half) }

// Registry exposes the revocation registry (admin interface).
func (s *IBESEM) Registry() *Registry { return s.reg }

// Token implements the SEM side of the decryption protocol: check
// revocation, then return g_sem = ê(U, d_ID,sem).
//
// The token is bound to U = H3(σ, M)·P, so it opens exactly one ciphertext;
// it reveals nothing about d_ID,sem (it is a random-looking GT element) and
// is useless to anyone but the key-half holder.
func (s *IBESEM) Token(id string, u *curve.Point) (*pairing.GT, error) {
	if err := s.reg.Check(id); err != nil {
		return nil, err
	}
	half, ok := s.keys.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownIdentity, id)
	}
	if u == nil || u.IsInfinity() || !u.InSubgroup() {
		return nil, fmt.Errorf("core: ciphertext point U is not a valid G1 element")
	}
	return s.pub.Pairing.Pair(u, half.D)
}

// UserDecrypt completes decryption on the user side given the SEM token:
// g = g_sem · ê(U, d_ID,user), then the FullIdent opening with its validity
// check.
func UserDecrypt(pub *bf.PublicParams, key *UserKeyHalf, c *bf.Ciphertext, token *pairing.GT) ([]byte, error) {
	gUser, err := pub.Pairing.Pair(c.U, key.D)
	if err != nil {
		return nil, err
	}
	g := token.Mul(gUser)
	msg, err := pub.OpenWithPairingValue(g, c)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTokenMismatch, err)
	}
	return msg, nil
}

// Decrypt runs the full two-party protocol in-process (user and SEM in the
// same address space) — the reference flow and benchmark body. The
// networked flow lives in internal/sem.
func Decrypt(sem *IBESEM, key *UserKeyHalf, c *bf.Ciphertext) ([]byte, error) {
	token, err := sem.Token(key.ID, c.U)
	if err != nil {
		return nil, err
	}
	return UserDecrypt(sem.pub, key, c, token)
}

// RecombineKey reassembles the full FullIdent key from both halves. Only
// the collusion experiments use it: it is exactly what a user who corrupts
// the SEM can do — and the point of Theorem 4.1 is that this yields *one*
// identity's key, never other users' plaintext.
func RecombineKey(user *UserKeyHalf, sem *SEMKeyHalf) (*bf.PrivateKey, error) {
	if user.ID != sem.ID {
		return nil, fmt.Errorf("core: halves belong to different identities (%q, %q)", user.ID, sem.ID)
	}
	return &bf.PrivateKey{ID: user.ID, D: user.D.Add(sem.D)}, nil
}

func orRand(rng io.Reader) io.Reader {
	if rng == nil {
		return rand.Reader
	}
	return rng
}

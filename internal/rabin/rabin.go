// Package rabin implements the modified Rabin encryption and signature
// schemes the paper's conclusion conjectures the SEM method extends to
// ("the modified Rabin signature and encryption schemes ([24]) for which
// efficient threshold adaptations have been described in [18]" — Katz &
// Yung). Encryption uses Boneh's SAEP padding.
//
// The threshold-friendly observation (Katz-Yung): over a Blum modulus
// n = pq (p ≡ q ≡ 3 mod 4) the quadratic-residue square root is a single
// exponentiation,
//
//	sqrt(c) = c^d with d = (φ(n)+4)/8,   for c a QR mod n,
//
// because (c^d)² = c^(φ/4 + 1) = c when c^(φ/4) = 1. A single
// exponentiation splits additively exactly like mRSA, so the SEM
// architecture transfers.
//
// Root disambiguation: the four square roots of c are {±x, ±y} with
// Jacobi(±x) = −Jacobi(±y) (for Blum moduli). Encryptors re-randomize the
// SAEP padding until the pre-square value x has Jacobi(x, n) = +1, making
// the exponentiation land on ±x; the SAEP redundancy then picks the sign.
// Signers loop a counter until the full-domain hash is an actual QR
// (checkable after the root computation: s² ≟ h), expected two attempts.
//
//cryptolint:vartime (legacy math/big scheme implementation; the limb discipline does not apply)
package rabin

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/mathx"
)

var (
	// ErrDecrypt is returned on any decryption failure (opaque on purpose).
	ErrDecrypt = errors.New("rabin: decryption error")

	// ErrVerify is returned when a signature does not verify.
	ErrVerify = errors.New("rabin: invalid signature")

	// ErrKeygen is returned when key material is inconsistent.
	ErrKeygen = errors.New("rabin: key generation error")

	// ErrMessageLength is returned when a plaintext exceeds the SAEP
	// capacity of the modulus.
	ErrMessageLength = errors.New("rabin: message too long")

	// ErrSignRetry is returned by half-signature combination when the
	// hashed message was not a quadratic residue; callers bump the counter
	// and retry (expected twice).
	ErrSignRetry = errors.New("rabin: hash not a quadratic residue, retry with next counter")
)

var one = big.NewInt(1)

const (
	saepRandLen = 16 // SAEP randomizer bytes (r)
	saepZeroLen = 8  // SAEP redundancy bytes (s0 zeros)
)

// PublicKey is the Rabin public key: just the Blum modulus.
type PublicKey struct {
	N *big.Int
}

// PrivateKey holds the square-root exponent d = (φ(n)+4)/8 and φ(n).
//
//cryptolint:secret
type PrivateKey struct {
	Public *PublicKey //cryptolint:public (the public key)
	D      *big.Int
	Phi    *big.Int
}

// GenerateKey creates a Rabin key with a bits-size Blum modulus.
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	p, err := blumPrime(rng, bits/2)
	if err != nil {
		return nil, err
	}
	q, err := blumPrime(rng, bits-bits/2)
	if err != nil {
		return nil, err
	}
	for p.Cmp(q) == 0 {
		if q, err = blumPrime(rng, bits-bits/2); err != nil {
			return nil, err
		}
	}
	return KeyFromPrimes(p, q)
}

// KeyFromPrimes assembles a key from explicit Blum primes.
func KeyFromPrimes(p, q *big.Int) (*PrivateKey, error) {
	if p.Bit(0) != 1 || p.Bit(1) != 1 || q.Bit(0) != 1 || q.Bit(1) != 1 {
		return nil, fmt.Errorf("%w: primes must be ≡ 3 (mod 4)", ErrKeygen)
	}
	if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) || p.Cmp(q) == 0 {
		return nil, fmt.Errorf("%w: need two distinct primes", ErrKeygen)
	}
	n := new(big.Int).Mul(p, q)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	phi := new(big.Int).Mul(pm1, qm1)
	d := new(big.Int).Add(phi, big.NewInt(4))
	d.Rsh(d, 3) // (φ+4)/8; φ ≡ 4 (mod 8) for Blum primes
	pk := &PublicKey{N: n}
	if pk.MaxMessageLen() < 1 {
		return nil, fmt.Errorf("%w: modulus too small for SAEP (need ≥ %d bits)",
			ErrKeygen, (saepRandLen+saepZeroLen+1)*8+2)
	}
	return &PrivateKey{Public: pk, D: d, Phi: phi}, nil
}

func blumPrime(rng io.Reader, bits int) (*big.Int, error) {
	for {
		p, err := mathx.RandomPrime(rng, bits)
		if err != nil {
			return nil, err
		}
		if p.Bit(0) == 1 && p.Bit(1) == 1 {
			return p, nil
		}
	}
}

// MaxMessageLen returns the SAEP plaintext capacity of the key.
func (pk *PublicKey) MaxMessageLen() int {
	k := (pk.N.BitLen() - 2) / 8 // stay below n
	return k - saepRandLen - saepZeroLen
}

// saepPad builds x = ((m ‖ 0^s0) ⊕ G(r)) ‖ r for a fresh randomizer r.
func saepPad(rng io.Reader, msg []byte, k int) (*big.Int, error) {
	bodyLen := k - saepRandLen
	body := make([]byte, bodyLen)
	copy(body, msg)
	// zero redundancy already in place (bytes len(msg)..bodyLen)
	r := make([]byte, saepRandLen)
	if _, err := io.ReadFull(rng, r); err != nil {
		return nil, fmt.Errorf("saep randomizer: %w", err)
	}
	mask := expand("RABIN-SAEP-G", r, bodyLen)
	subtle.XORBytes(body, body, mask)
	buf := make([]byte, k)
	copy(buf, body)
	copy(buf[bodyLen:], r)
	return new(big.Int).SetBytes(buf), nil
}

// saepUnpad inverts saepPad, checking the zero redundancy. msgLen is the
// expected plaintext length.
func saepUnpad(x *big.Int, k, msgLen int) ([]byte, error) {
	buf, err := mathx.PadBytes(x, k)
	if err != nil {
		return nil, ErrDecrypt
	}
	bodyLen := k - saepRandLen
	body := buf[:bodyLen]
	r := buf[bodyLen:]
	mask := expand("RABIN-SAEP-G", r, bodyLen)
	subtle.XORBytes(body, body, mask)
	if msgLen > bodyLen-saepZeroLen {
		return nil, ErrDecrypt
	}
	for _, b := range body[msgLen:] {
		if b != 0 {
			return nil, ErrDecrypt
		}
	}
	return body[:msgLen], nil
}

// Encrypt produces c = x² mod n for SAEP-padded x with Jacobi(x, n) = +1,
// re-randomizing until the Jacobi condition holds (expected two tries).
func (pk *PublicKey) Encrypt(rng io.Reader, msg []byte) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if len(msg) > pk.MaxMessageLen() {
		return nil, fmt.Errorf("%w: %d > %d", ErrMessageLength, len(msg), pk.MaxMessageLen())
	}
	k := (pk.N.BitLen() - 2) / 8
	for attempt := 0; attempt < 256; attempt++ {
		x, err := saepPad(rng, msg, k)
		if err != nil {
			return nil, err
		}
		if x.Sign() == 0 || big.Jacobi(x, pk.N) != 1 {
			continue
		}
		c := new(big.Int).Mul(x, x)
		c.Mod(c, pk.N)
		return mathx.PadBytes(c, pk.ModulusBytes())
	}
	return nil, fmt.Errorf("rabin: could not find a Jacobi-(+1) padding (broken RNG?)")
}

// ModulusBytes returns the modulus size in bytes.
func (pk *PublicKey) ModulusBytes() int { return (pk.N.BitLen() + 7) / 8 }

// Decrypt recovers a msgLen-byte plaintext with the full key.
func (sk *PrivateKey) Decrypt(ciphertext []byte, msgLen int) ([]byte, error) {
	c, err := sk.Public.parseCiphertext(ciphertext)
	if err != nil {
		return nil, err
	}
	s := new(big.Int).Exp(c, sk.D, sk.Public.N)
	return sk.Public.FinishDecrypt(c, s, msgLen)
}

// parseCiphertext validates the wire form.
func (pk *PublicKey) parseCiphertext(ciphertext []byte) (*big.Int, error) {
	if len(ciphertext) != pk.ModulusBytes() {
		return nil, ErrDecrypt
	}
	c := new(big.Int).SetBytes(ciphertext)
	if c.Sign() == 0 || c.Cmp(pk.N) >= 0 {
		return nil, ErrDecrypt
	}
	return c, nil
}

// FinishDecrypt completes decryption given the computed root s = c^d
// (however the exponentiation was assembled): verify s² ≡ c, then try both
// signs through the SAEP decoder.
func (pk *PublicKey) FinishDecrypt(c, s *big.Int, msgLen int) ([]byte, error) {
	check := new(big.Int).Mul(s, s)
	check.Mod(check, pk.N)
	if check.Cmp(c) != 0 {
		return nil, ErrDecrypt // c was not a QR: invalid ciphertext
	}
	k := (pk.N.BitLen() - 2) / 8
	if msg, err := saepUnpad(s, k, msgLen); err == nil {
		return msg, nil
	}
	neg := new(big.Int).Sub(pk.N, s)
	if msg, err := saepUnpad(neg, k, msgLen); err == nil {
		return msg, nil
	}
	return nil, ErrDecrypt
}

// HalfKey is one additive half of the square-root exponent.
//
//cryptolint:secret
type HalfKey struct {
	N    *big.Int //cryptolint:public (the modulus)
	Half *big.Int
}

// Split divides d into user and SEM halves mod φ(n).
func Split(rng io.Reader, sk *PrivateKey) (user, sem *HalfKey, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	du, err := mathx.RandomInRange(rng, one, sk.Public.N)
	if err != nil {
		return nil, nil, fmt.Errorf("sample user half: %w", err)
	}
	dsem := new(big.Int).Sub(sk.D, du)
	dsem.Mod(dsem, sk.Phi)
	return &HalfKey{N: new(big.Int).Set(sk.Public.N), Half: du},
		&HalfKey{N: new(big.Int).Set(sk.Public.N), Half: dsem},
		nil
}

// Op applies the half exponent.
func (h *HalfKey) Op(x *big.Int) *big.Int {
	return new(big.Int).Exp(x, h.Half, h.N)
}

// MediatedDecrypt runs the two-party decryption in-process.
func MediatedDecrypt(pk *PublicKey, user, sem *HalfKey, ciphertext []byte, msgLen int) ([]byte, error) {
	c, err := pk.parseCiphertext(ciphertext)
	if err != nil {
		return nil, err
	}
	s := new(big.Int).Mul(user.Op(c), sem.Op(c))
	s.Mod(s, pk.N)
	return pk.FinishDecrypt(c, s, msgLen)
}

// HashToJacobiPlus maps (msg, ctr) to an element h < n with
// Jacobi(h, n) = +1, incrementing an inner counter as needed. It is the
// public "full-domain hash" of the modified Rabin signature; the outer ctr
// lets the signer skip hashes that turn out to be non-residues.
func HashToJacobiPlus(n *big.Int, msg []byte, ctr uint32) *big.Int {
	size := (n.BitLen()+7)/8 + 16
	for inner := uint32(0); ; inner++ {
		var seed [8]byte
		binary.BigEndian.PutUint32(seed[:4], ctr)
		binary.BigEndian.PutUint32(seed[4:], inner)
		digest := expand("RABIN-FDH", append(seed[:], msg...), size)
		h := new(big.Int).SetBytes(digest)
		h.Mod(h, n)
		if h.Sign() != 0 && big.Jacobi(h, n) == 1 {
			return h
		}
	}
}

// Signature is a modified-Rabin signature: the root plus the counter that
// made the hash a quadratic residue.
type Signature struct {
	S   *big.Int
	Ctr uint32
}

// Sign produces a signature with the full key, searching counters until
// the hash is a QR (expected two attempts).
func (sk *PrivateKey) Sign(msg []byte) (*Signature, error) {
	for ctr := uint32(0); ctr < 128; ctr++ {
		h := HashToJacobiPlus(sk.Public.N, msg, ctr)
		s := new(big.Int).Exp(h, sk.D, sk.Public.N)
		check := new(big.Int).Mul(s, s)
		check.Mod(check, sk.Public.N)
		if check.Cmp(h) == 0 {
			return &Signature{S: s, Ctr: ctr}, nil
		}
	}
	return nil, fmt.Errorf("rabin: no QR hash found in 128 counters (astronomically unlikely)")
}

// CombineSignature assembles a mediated signature from the two halves for
// a given counter. It returns ErrSignRetry when the hash was not a QR —
// the caller advances the counter and asks the SEM again.
func CombineSignature(pk *PublicKey, msg []byte, ctr uint32, userPart, semPart *big.Int) (*Signature, error) {
	h := HashToJacobiPlus(pk.N, msg, ctr)
	s := new(big.Int).Mul(userPart, semPart)
	s.Mod(s, pk.N)
	check := new(big.Int).Mul(s, s)
	check.Mod(check, pk.N)
	if check.Cmp(h) != 0 {
		return nil, ErrSignRetry
	}
	return &Signature{S: s, Ctr: ctr}, nil
}

// Verify checks s² ≡ H(msg, ctr) (mod n).
func (pk *PublicKey) Verify(msg []byte, sig *Signature) error {
	if sig == nil || sig.S == nil || sig.S.Sign() <= 0 || sig.S.Cmp(pk.N) >= 0 {
		return ErrVerify
	}
	h := HashToJacobiPlus(pk.N, msg, sig.Ctr)
	check := new(big.Int).Mul(sig.S, sig.S)
	check.Mod(check, pk.N)
	if check.Cmp(h) != 0 {
		return ErrVerify
	}
	return nil
}

// expand is counter-mode SHA-256 expansion with domain separation.
func expand(domain string, seed []byte, n int) []byte {
	out := make([]byte, 0, ((n+31)/32)*32)
	var block uint32
	for len(out) < n {
		h := sha256.New()
		var be [4]byte
		binary.BigEndian.PutUint32(be[:], block)
		h.Write([]byte(domain))
		h.Write(be[:])
		h.Write(seed)
		out = h.Sum(out)
		block++
	}
	return out[:n]
}

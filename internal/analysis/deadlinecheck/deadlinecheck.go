// Package deadlinecheck enforces the IOTimeout discipline on connection
// I/O: every read or write on a net.Conn-like value (anything whose method
// set offers SetReadDeadline) must be preceded, in the function that owns
// the connection, by a SetDeadline/SetReadDeadline/SetWriteDeadline call
// on the same connection. A slow or stalled peer must cost a bounded
// amount of server time; an undeadlined ReadFrame parks a goroutine
// forever.
//
// I/O rarely happens on the conn directly — the serving stack funnels
// through wire.ReadFrame/WriteFrame, which take io.Reader/io.Writer. The
// analyzer therefore classifies module functions interprocedurally: a
// function performs I/O on a parameter if it calls Read/Write on it, hands
// it to an io/binary primitive (io.ReadFull, io.Copy, ...), or passes it
// to another module function at an I/O-performing parameter, in each case
// without first setting a deadline on it. Call sites that pass a
// connection to such a function are I/O sites themselves.
//
// Responsibility follows ownership: a function doing I/O on its own
// parameter is never flagged — its caller is, if the caller obtained the
// connection (Dial, Accept, a struct field) and neither set a deadline
// nor delegated to a function that does. The check is source-order, not
// path-sensitive: a deadline call anywhere earlier in the owning
// function's body satisfies it, including the conditional
// `if timeout > 0 { conn.SetReadDeadline(...) }` idiom.
//
// Escapes: //cryptolint:nodeadline on the finding's line or on the
// enclosing function's doc comment, each expected to carry a reason (a
// test harness, an in-memory pipe).
package deadlinecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the deadlinecheck checker.
var Analyzer = &analysis.Analyzer{
	Name: "deadlinecheck",
	Doc:  "require net.Conn reads/writes to be preceded by a Set{Read,Write}Deadline in the function owning the connection",
	Run:  run,
}

// ioPrimitives names the io/binary helpers that perform I/O on an argument.
// Maps package path to function name to the argument indices read/written.
var ioPrimitives = map[string]map[string][]int{
	"io": {
		"ReadFull":    {0},
		"ReadAtLeast": {0},
		"Copy":        {0, 1},
		"CopyN":       {0, 1},
		"WriteString": {0},
		"ReadAll":     {0},
	},
	"encoding/binary": {
		"Read":  {0},
		"Write": {0},
	},
}

var deadlineMethods = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

func run(pass *analysis.Pass) error {
	cls := classify(pass.All)
	marks := analysis.CollectLineMarks(pass.Pkg, analysis.MarkerNoDeadline)
	info := pass.Pkg.Info

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.HasMarker(fd.Doc, analysis.MarkerNoDeadline) {
				continue
			}
			params := paramObjs(info, fd)
			for _, ev := range ioEvents(info, fd.Body, cls) {
				if !isConnLike(info.TypeOf(ev.conn)) {
					continue // io.Reader plumbing: no deadline method to call
				}
				obj := rootObj(info, ev.conn)
				if obj == nil || params[obj] {
					continue // the caller owns the conn and carries the duty
				}
				if deadlineBefore(info, fd.Body, obj, ev.pos) {
					continue
				}
				if marks.Has(analysis.MarkerNoDeadline, ev.pos) {
					continue
				}
				pass.Reportf(ev.pos, "%s on connection without a preceding SetDeadline/SetReadDeadline/SetWriteDeadline (IOTimeout discipline); set one or annotate //cryptolint:nodeadline with a reason", ev.what)
			}
		}
	}
	return nil
}

// event is one I/O operation on a connection-typed expression.
type event struct {
	conn ast.Expr
	pos  token.Pos
	what string
}

// ioEvents collects the I/O operations in body: direct Read/Write method
// calls, io/binary primitives, and calls into module functions classified
// as I/O-performing on the corresponding parameter.
func ioEvents(info *types.Info, body *ast.BlockStmt, cls *classification) []event {
	var evs []event
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn, _ := info.Uses[sel.Sel].(*types.Func); fn != nil {
				if recvOf(fn) != nil && (fn.Name() == "Read" || fn.Name() == "Write") {
					evs = append(evs, event{sel.X, call.Pos(), "direct " + fn.Name()})
					return true
				}
			}
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if byName, ok := ioPrimitives[fn.Pkg().Path()]; ok {
			// No conn-likeness filter here: inside wire.ReadFrame the stream
			// is a plain io.Reader, and the event must still propagate to the
			// caller holding the conn. Reporting filters by type.
			for _, i := range byName[fn.Name()] {
				if i < len(call.Args) {
					evs = append(evs, event{call.Args[i], call.Pos(), fn.Pkg().Name() + "." + fn.Name()})
				}
			}
			return true
		}
		for _, i := range cls.ioParams[fn] {
			if i < len(call.Args) {
				evs = append(evs, event{call.Args[i], call.Pos(), fn.Name() + " (which reads/writes the connection)"})
			}
		}
		return true
	})
	return evs
}

// classification is the fixed point of "function fn performs undeadlined
// I/O on parameter i" over every source-loaded module function.
type classification struct {
	ioParams map[*types.Func][]int
}

func classify(all []*analysis.Package) *classification {
	type fnBody struct {
		info *types.Info
		decl *ast.FuncDecl
	}
	bodies := make(map[*types.Func]fnBody)
	for _, pkg := range all {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					bodies[fn] = fnBody{pkg.Info, fd}
				}
			}
		}
	}

	cls := &classification{ioParams: make(map[*types.Func][]int)}
	has := func(fn *types.Func, i int) bool {
		for _, j := range cls.ioParams[fn] {
			if j == i {
				return true
			}
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		for fn, fb := range bodies {
			if analysis.HasMarker(fb.decl.Doc, analysis.MarkerNoDeadline) {
				continue // sanctioned: callers are off the hook too
			}
			params := paramIndex(fb.info, fb.decl)
			for _, ev := range ioEvents(fb.info, fb.decl.Body, cls) {
				obj := rootObj(fb.info, ev.conn)
				if obj == nil {
					continue
				}
				i, isParam := params[obj]
				if !isParam || has(fn, i) {
					continue
				}
				if deadlineBefore(fb.info, fb.decl.Body, obj, ev.pos) {
					continue
				}
				cls.ioParams[fn] = append(cls.ioParams[fn], i)
				changed = true
			}
		}
	}
	return cls
}

// deadlineBefore reports whether body contains a Set*Deadline call on obj
// at a position before pos.
func deadlineBefore(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !deadlineMethods[sel.Sel.Name] {
			return true
		}
		if rootObj(info, sel.X) == obj {
			found = true
		}
		return true
	})
	return found
}

// paramObjs returns the set of fd's parameter (and receiver) objects.
func paramObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	set := make(map[types.Object]bool)
	for obj := range paramIndex(info, fd) {
		set[obj] = true
	}
	return set
}

// paramIndex maps fd's parameter objects to their positional index.
// The receiver, if any, is index -1 (callers cannot pass it positionally
// through ioParams, but it still counts as caller-owned).
func paramIndex(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	idx := make(map[types.Object]int)
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					idx[obj] = -1
				}
			}
		}
	}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					idx[obj] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	return idx
}

// rootObj resolves the object an expression names: the identifier's
// object, or a selector's field object (c.conn → the conn field).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// isConnLike reports whether t's method set offers SetReadDeadline —
// net.Conn and every concrete conn satisfy this; plain io.Reader/io.Writer
// plumbing does not.
func isConnLike(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "SetReadDeadline")
	_, ok := obj.(*types.Func)
	return ok
}

func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

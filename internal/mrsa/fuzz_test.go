package mrsa

import (
	"bytes"
	"crypto/sha1"
	"errors"
	"testing"
)

// fuzzK is the encoded-message length the fuzzer drives oaepDecode with:
// the smallest legal block plus some payload room.
const fuzzK = 2*hashLen + 2 + 22

// FuzzOAEPDecode exercises the OAEP decoder two ways. First the raw input
// goes straight into oaepDecode, which must never panic and must fail with
// exactly ErrOAEPDecode (one indistinguishable error — the Manger-attack
// countermeasure). Then the input is treated as a plaintext and pushed
// through encode→decode, which must reproduce it bit for bit.
func FuzzOAEPDecode(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, fuzzK), []byte{})
	f.Add(bytes.Repeat([]byte{0xff}, fuzzK), []byte("label"))
	seed, err := oaepEncode(bytes.NewReader(bytes.Repeat([]byte{0x42}, hashLen)), []byte("hello"), nil, fuzzK)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, []byte{})

	f.Fuzz(func(t *testing.T, em, label []byte) {
		if msg, err := oaepDecode(em, label, fuzzK); err != nil {
			if !errors.Is(err, ErrOAEPDecode) {
				t.Fatalf("decoder leaked a distinguishable error: %v", err)
			}
		} else if len(msg) > fuzzK-2*hashLen-2 {
			t.Fatalf("decoded message of %d bytes exceeds the OAEP capacity", len(msg))
		}

		// Round-trip: any short-enough plaintext must survive
		// encode→decode under a deterministic seed.
		msg := em
		if max := fuzzK - 2*hashLen - 2; len(msg) > max {
			msg = msg[:max]
		}
		rng := sha1.Sum(append(bytes.Clone(label), em...))
		enc, err := oaepEncode(bytes.NewReader(rng[:]), msg, label, fuzzK)
		if err != nil {
			t.Fatalf("encode rejected %d-byte message: %v", len(msg), err)
		}
		dec, err := oaepDecode(enc, label, fuzzK)
		if err != nil {
			t.Fatalf("decode of freshly encoded block failed: %v", err)
		}
		if !bytes.Equal(dec, msg) {
			t.Fatalf("round-trip mangled the message: in %x out %x", msg, dec)
		}
	})
}

// Package pairing stubs the module's pairing API.
package pairing

import "repro/internal/curve"

// Params is a pairing parameter set.
type Params struct{}

// GT is a target-group element.
type GT struct{}

// GTFromBytes decodes without an order-q membership check.
func (pp *Params) GTFromBytes(data []byte) (*GT, error) { return &GT{}, nil }

// Curve returns the underlying curve.
func (pp *Params) Curve() *curve.Curve { return &curve.Curve{} }

// Package randgood exercises the randsource negative cases: crypto/rand in
// an internal package is fine.
package randgood

import (
	"crypto/rand"
	"math/big"
)

// Scalar draws a uniform scalar below max.
func Scalar(max *big.Int) (*big.Int, error) {
	return rand.Int(rand.Reader, max)
}

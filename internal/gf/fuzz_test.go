package gf

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzElementSetBytes feeds arbitrary byte strings to the F_p² element
// decoder. It must never panic, must reject out-of-range coordinates, and
// every accepted element must re-serialize to exactly the input — the
// encoding is fixed-width and canonical.
func FuzzElementSetBytes(f *testing.F) {
	p, ok := new(big.Int).SetString("c88410b59ac4fa20d9a0256b", 16)
	if !ok {
		f.Fatal("bad prime literal")
	}
	field, err := NewField(p)
	if err != nil {
		f.Fatal(err)
	}
	size := (p.BitLen() + 7) / 8

	f.Add([]byte{})
	f.Add(make([]byte, 2*size))
	f.Add(field.One().Bytes())
	f.Add(bytes.Repeat([]byte{0xff}, 2*size)) // both coordinates ≥ p
	f.Add(make([]byte, 2*size+1))             // wrong length

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := field.ElementFromBytes(data)
		if err != nil {
			return
		}
		if got := e.Bytes(); !bytes.Equal(got, data) {
			t.Fatalf("accepted encoding %x re-serializes as %x", data, got)
		}
	})
}

package sem

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/obs"
	"repro/internal/pairing"
)

// fleet is a multi-shard SEM fixture: n independent servers sharing one
// PKG's system parameters, each reachable only through its own
// killableProxy so tests can sever individual shards.
type fleet struct {
	t       *testing.T
	pp      *pairing.Params
	pkg     *core.MediatedPKG
	ta      *core.GDHAuthority
	proxies []*killableProxy
	addrs   []string // proxy addresses, what clients route on
}

func newFleet(t *testing.T, n int) *fleet {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	fl := &fleet{t: t, pp: pp, pkg: pkg, ta: core.NewGDHAuthority(pp)}
	for i := 0; i < n; i++ {
		reg := core.NewRegistry()
		srv, err := NewServer(Config{
			Registry:      reg,
			IBE:           core.NewIBESEM(pkg.Public(), reg),
			GDH:           core.NewGDHSEM(pp, reg),
			Pairing:       pp,
			AllowRegister: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = srv.Serve(ln)
		}()
		t.Cleanup(func() {
			_ = srv.Close()
			wg.Wait()
		})
		proxy := newKillableProxy(t, ln.Addr().String())
		fl.proxies = append(fl.proxies, proxy)
		fl.addrs = append(fl.addrs, proxy.addr())
	}
	return fl
}

// proxyFor finds the proxy fronting a shard address.
func (fl *fleet) proxyFor(addr string) *killableProxy {
	for i, a := range fl.addrs {
		if a == addr {
			return fl.proxies[i]
		}
	}
	fl.t.Fatalf("no proxy for %s", addr)
	return nil
}

// enrollIBE split-extracts n identities and enrolls the SEM halves across
// the fleet through the sharded client (replica broadcast included).
func (fl *fleet) enrollIBE(sc *ShardedClient, n int) ([]string, []*core.UserKeyHalf) {
	fl.t.Helper()
	ids := make([]string, n)
	users := make([]*core.UserKeyHalf, n)
	ds := make([]*curve.Point, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("user%03d@shards.example", i)
		user, semHalf, err := fl.pkg.SplitExtract(rand.Reader, ids[i])
		if err != nil {
			fl.t.Fatal(err)
		}
		users[i] = user
		ds[i] = semHalf.D
	}
	errs, err := sc.RegisterIBEBatch(ids, ds)
	if err != nil {
		fl.t.Fatalf("bulk enroll: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			fl.t.Fatalf("enroll %s: %v", ids[i], e)
		}
	}
	return ids, users
}

func TestShardedRoutingAndOps(t *testing.T) {
	fl := newFleet(t, 3)
	reg := obs.NewRegistry()
	sc, err := NewShardedClient(fl.addrs, fl.pp, ShardedConfig{Replicas: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Ping(); err != nil {
		t.Fatal(err)
	}

	ids, users := fl.enrollIBE(sc, 24)

	// Identities actually spread across shards.
	dist := sc.Ring().Distribution(ids)
	if len(dist) < 2 {
		t.Fatalf("all %d ids landed on one shard: %v", len(ids), dist)
	}

	// Full mediated decryption through the fleet for a routed sample.
	msg := bytes.Repeat([]byte{0x5a}, msgLen)
	for _, i := range []int{0, 7, 23} {
		ct, err := fl.pkg.Public().Encrypt(rand.Reader, ids[i], msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.DecryptIBE(fl.pkg.Public(), users[i], ct)
		if err != nil {
			t.Fatalf("decrypt %s: %v", ids[i], err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("decrypted %x, want %x", got, msg)
		}
	}

	// Shard-split batch: every id in one call, merged in input order.
	us := make([]*curve.Point, len(ids))
	for i := range us {
		us[i] = fl.pp.Generator()
	}
	tokens, errs, err := sc.TokenBatch(ids, us)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if errs[i] != nil || tokens[i] == nil {
			t.Fatalf("batch slot %d (%s): token=%v err=%v", i, ids[i], tokens[i], errs[i])
		}
	}
	// Input-order merge: slot i's token must equal the directly-requested one.
	direct, err := sc.IBEToken(ids[5], us[5])
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(tokens[5]) {
		t.Fatal("batch result not merged in input order")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shard_ring_lookups_total", "shardclient_shard_batches_total", "sempool_frames_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("fleet metrics missing %q", want)
		}
	}
}

func TestShardedGDHSigning(t *testing.T) {
	fl := newFleet(t, 2)
	sc, err := NewShardedClient(fl.addrs, fl.pp, ShardedConfig{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	id := "signer@shards.example"
	user, semHalf, err := fl.ta.Keygen(rand.Reader, id)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.RegisterGDH(id, semHalf.X); err != nil {
		t.Fatal(err)
	}
	msg := []byte("sign me across the fleet")
	sig, err := sc.SignGDH(user, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Public.Verify(msg, sig); err != nil {
		t.Fatalf("fleet-mediated signature invalid: %v", err)
	}
}

// TestShardedFailoverMidBatch kills one shard and checks a fleet-wide batch
// still completes: the sharded client retries the dead shard's slots on
// each identity's next ring replica, which holds the key half because
// enrollment broadcast to the whole replica set.
func TestShardedFailoverMidBatch(t *testing.T) {
	fl := newFleet(t, 3)
	reg := obs.NewRegistry()
	sc, err := NewShardedClient(fl.addrs, fl.pp, ShardedConfig{Replicas: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ids, _ := fl.enrollIBE(sc, 24)

	// Kill the shard owning the most identities.
	dist := sc.Ring().Distribution(ids)
	var victim string
	for addr, n := range dist {
		if victim == "" || n > dist[victim] {
			victim = addr
		}
	}
	proxy := fl.proxyFor(victim)
	proxy.setDown(true)
	proxy.killAll()

	us := make([]*curve.Point, len(ids))
	for i := range us {
		us[i] = fl.pp.Generator()
	}
	tokens, errs, err := sc.TokenBatch(ids, us)
	if err != nil {
		t.Fatalf("batch with one dead shard: %v", err)
	}
	for i := range ids {
		if errs[i] != nil || tokens[i] == nil {
			t.Fatalf("slot %d (%s) lost despite a live replica: %v", i, ids[i], errs[i])
		}
	}
	if fo := sc.met.failovers.Value(); fo == 0 {
		t.Fatal("no failovers recorded with a dead shard")
	}

	// Kill a second shard: identities whose whole replica set is dead are
	// truly lost and must carry transport errors — everyone else still
	// succeeds.
	var second string
	for _, addr := range fl.addrs {
		if addr != victim {
			second = addr
			break
		}
	}
	p2 := fl.proxyFor(second)
	p2.setDown(true)
	p2.killAll()
	tokens, errs, err = sc.TokenBatch(ids, us)
	if tokens == nil {
		t.Fatalf("batch voided entirely: %v", err)
	}
	var scratch [4]string
	lost, served := 0, 0
	for i, id := range ids {
		reps := sc.Ring().Replicas(scratch[:0], id, 2)
		alive := false
		for _, r := range reps {
			if r != victim && r != second {
				alive = true
			}
		}
		switch {
		case alive && (errs[i] != nil || tokens[i] == nil):
			t.Fatalf("slot %d (%s) has a live replica but failed: %v", i, id, errs[i])
		case !alive && errs[i] == nil:
			t.Fatalf("slot %d (%s) has no live replica but succeeded", i, id)
		case !alive && errors.Is(errs[i], ErrRemote):
			t.Fatalf("lost slot %d misclassified as remote error: %v", i, errs[i])
		case alive:
			served++
		default:
			lost++
		}
	}
	if lost > 0 && err == nil {
		t.Fatalf("%d slots lost but batch error is nil", lost)
	}
	t.Logf("two shards dead: %d served via replicas, %d truly lost", served, lost)
}

// TestShardedRevocationSurvivesFailover checks the paper's central claim
// under failover: revocation broadcasts to every shard, so a revoked
// identity stays revoked even when its primary dies and a replica serves it.
func TestShardedRevocationSurvivesFailover(t *testing.T) {
	fl := newFleet(t, 3)
	sc, err := NewShardedClient(fl.addrs, fl.pp, ShardedConfig{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ids, _ := fl.enrollIBE(sc, 4)
	id := ids[0]
	u := fl.pp.Generator()

	if err := sc.Revoke(id, "compromised"); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.IBEToken(id, u); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("token for revoked id = %v, want ErrRevoked", err)
	}

	// Primary dies; the replica must also refuse.
	primary := sc.Ring().Lookup(id)
	proxy := fl.proxyFor(primary)
	proxy.setDown(true)
	proxy.killAll()
	if _, err := sc.IBEToken(id, u); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("token after primary death = %v, want ErrRevoked via replica", err)
	}

	// Others remain unaffected.
	if _, err := sc.IBEToken(ids[1], u); err != nil {
		t.Fatalf("unrevoked id failed: %v", err)
	}
}

func TestShardedClientClosed(t *testing.T) {
	fl := newFleet(t, 2)
	sc, err := NewShardedClient(fl.addrs, fl.pp, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := sc.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Ping after Close = %v, want ErrClientClosed", err)
	}
	if _, err := sc.IBEToken("x", fl.pp.Generator()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("IBEToken after Close = %v, want ErrClientClosed", err)
	}
	if _, _, err := sc.TokenBatch([]string{"x"}, []*curve.Point{fl.pp.Generator()}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("TokenBatch after Close = %v, want ErrClientClosed", err)
	}
}

// TestShardedPoolChurn hammers a fleet while one shard's connections are
// repeatedly severed — the sharded layer's failover plus the pool's
// re-dial must keep every op succeeding.
func TestShardedPoolChurn(t *testing.T) {
	fl := newFleet(t, 3)
	sc, err := NewShardedClient(fl.addrs, fl.pp, ShardedConfig{Replicas: 2, Pool: PoolConfig{Size: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	ids, _ := fl.enrollIBE(sc, 8)
	u := fl.pp.Generator()

	stop := make(chan struct{})
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fl.proxies[0].killAll()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := ids[(w*25+i)%len(ids)]
				if _, err := sc.IBEToken(id, u); err != nil {
					t.Errorf("op under churn failed: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	killWG.Wait()
}

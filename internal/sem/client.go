package sem

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bf"
	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/gm"
	"repro/internal/mrsa"
	"repro/internal/obs"
	"repro/internal/pairing"
	"repro/internal/repl"
	"repro/internal/wire"
)

// Client is the user-side SEM connection. It multiplexes sequential
// request/response pairs over one TCP connection; methods are safe for
// concurrent use (calls serialize on the connection).
//
// The client tracks wire bytes per operation class, which is how the T2
// communication experiment measures the paper's "160 bits vs 1024 bits"
// claim on the actual protocol rather than on back-of-envelope sizes. The
// accounting lives in obs counters (optionally exported by Instrument);
// Stats keeps presenting the accumulated WireStats view.
//
// Every round trip runs under an operation deadline (SetOpTimeout,
// default 30s), so a hung or glacial SEM fails the call instead of
// stalling the caller forever — Dial's timeout only ever covered the
// connection attempt.
//
// Protocol version: a client constructed by Dial/NewClient negotiates the
// binary v2 protocol on first use (preamble + ack, then binary frames and
// batch support within the server's announced limits). NewClientV1/DialV1
// construct a JSON-only client for servers predating v2 — the server
// serves both on one listener, so this is strictly a compatibility knob.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	closeOnce sync.Once
	closed    atomic.Bool
	opTimeout time.Duration

	// Protocol state, guarded by mu.
	version    int // 0 until negotiated, then 1 or 2
	maxBatch   int // server's announced per-frame item cap (v2)
	maxFrame   int // server's announced frame cap (v2)
	enc        wire.FrameEncoder
	dec        wire.FrameDecoder
	reqScratch []wire.ReqItem

	pairing *pairing.Params

	statsMu sync.Mutex
	stats   map[Op]*opStats
	reg     *obs.Registry
	latency *obs.Histogram
}

// WireStats accumulates protocol traffic for one operation class.
type WireStats struct {
	Calls         int
	BytesSent     int
	BytesReceived int
	// PayloadReceived counts only the SEM→user payload (the token/half),
	// excluding protocol framing — the quantity the paper compares.
	PayloadReceived int
}

// opStats is the per-op counter set behind WireStats. The counters are
// plain obs metrics; Instrument swaps in registered series.
type opStats struct {
	calls   *obs.Counter
	sent    *obs.Counter
	recv    *obs.Counter
	payload *obs.Counter
}

// defaultOpTimeout bounds one request/response exchange unless
// SetOpTimeout overrides it.
const defaultOpTimeout = 30 * time.Second

// Dial connects to a SEM daemon. pp may be nil when only RSA/admin
// operations will be used. timeout covers the connection attempt; the
// per-operation deadline defaults to 30s (SetOpTimeout adjusts it).
func Dial(addr string, pp *pairing.Params, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial SEM: %w", err)
	}
	return NewClient(conn, pp), nil
}

// NewClient wraps an established connection (tests use net.Pipe). The
// first operation negotiates protocol v2 with the server.
func NewClient(conn net.Conn, pp *pairing.Params) *Client {
	return &Client{
		conn:      conn,
		opTimeout: defaultOpTimeout,
		pairing:   pp,
		stats:     make(map[Op]*opStats),
	}
}

// DialV1 connects to a SEM daemon speaking only the v1 JSON protocol.
func DialV1(addr string, pp *pairing.Params, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial SEM: %w", err)
	}
	return NewClientV1(conn, pp), nil
}

// NewClientV1 wraps an established connection with the legacy JSON
// protocol pinned — no preamble is sent, every op is one JSON frame.
// Batch methods still work, executed as sequential round trips.
func NewClientV1(conn net.Conn, pp *pairing.Params) *Client {
	c := NewClient(conn, pp)
	c.version = 1
	c.maxFrame = wire.MaxFrame
	return c
}

// negotiate runs the v2 preamble exchange once. Callers hold c.mu.
func (c *Client) negotiate() error {
	if c.version != 0 {
		return nil
	}
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := wire.WriteV2Hello(c.conn, wire.V2Version); err != nil {
		return fmt.Errorf("sem: send v2 preamble: %w", err)
	}
	version, maxBatch, maxFrame, err := wire.ReadV2Ack(c.conn)
	if err != nil {
		return fmt.Errorf("sem: v2 negotiation: %w", err)
	}
	if version != wire.V2Version {
		return fmt.Errorf("sem: server negotiated unsupported version %d", version)
	}
	c.version = 2
	c.maxBatch = maxBatch
	c.maxFrame = maxFrame
	return nil
}

// Version reports the negotiated protocol version (0 before the first
// operation of a v2-capable client).
func (c *Client) Version() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// MaxBatch reports the server's announced per-frame batch limit (0 before
// negotiation or on a v1 connection). Larger batches passed to the batch
// methods are split transparently.
func (c *Client) MaxBatch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBatch
}

// SetOpTimeout changes the per-operation deadline applied to each round
// trip; d ≤ 0 disables deadlines.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opTimeout = d
}

// Instrument exports the client's wire accounting through reg:
// semclient_requests_total / semclient_bytes_sent_total /
// semclient_bytes_received_total / semclient_payload_bytes_total, each
// labelled by op, plus the semclient_roundtrip_seconds histogram. Call it
// before issuing requests — ops already exercised keep counting, but on
// unregistered series.
func (c *Client) Instrument(reg *obs.Registry) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	c.reg = reg
	c.latency = reg.Histogram("semclient_roundtrip_seconds", "full request/response round trip time")
}

// ErrClientClosed is returned by every operation on a client whose Close
// has been called. The pool layer relies on the distinction: an op failing
// with ErrClientClosed means "we tore this connection down ourselves"
// (eviction, shutdown) and is retried on another connection, while a raw
// net error means the peer died.
var ErrClientClosed = errors.New("sem: client closed")

// Close closes the underlying connection. It is idempotent: the first call
// closes the connection and returns its error, later calls return nil.
// Close never waits for an in-flight op — closing the conn wakes a blocked
// read, and that op then fails with ErrClientClosed.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		err = c.conn.Close()
	})
	return err
}

// checkOpen reports ErrClientClosed once Close has run.
func (c *Client) checkOpen() error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	return nil
}

// opError converts a transport failure into ErrClientClosed when the client
// was closed while the op was in flight (the conn error is then our own
// teardown, not the peer's). Server-answered errors pass through: the
// exchange completed before the teardown.
func (c *Client) opError(err error) error {
	if err != nil && c.closed.Load() && !errors.Is(err, ErrRemote) {
		return ErrClientClosed
	}
	return err
}

// getStats returns (creating if needed) the counter set for op, plus the
// round-trip histogram (nil until Instrument; nil histograms record
// nothing).
func (c *Client) getStats(op Op) (*opStats, *obs.Histogram) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	st, ok := c.stats[op]
	if !ok {
		l := obs.Label{Key: "op", Value: string(op)}
		// A nil registry hands back live, unregistered counters, so the
		// uninstrumented client needs no separate path.
		st = &opStats{
			calls:   c.reg.Counter("semclient_requests_total", "client requests, by protocol op", l),
			sent:    c.reg.Counter("semclient_bytes_sent_total", "wire bytes sent, by protocol op", l),
			recv:    c.reg.Counter("semclient_bytes_received_total", "wire bytes received, by protocol op", l),
			payload: c.reg.Counter("semclient_payload_bytes_total", "SEM→user payload bytes (excluding framing), by protocol op", l),
		}
		c.stats[op] = st
	}
	return st, c.latency
}

// Stats returns a snapshot of the wire statistics per operation.
func (c *Client) Stats() map[Op]WireStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	out := make(map[Op]WireStats, len(c.stats))
	for op, st := range c.stats {
		out[op] = WireStats{ //cryptolint:public (the operation code is metadata, not key material)
			Calls:           int(st.calls.Value()),
			BytesSent:       int(st.sent.Value()),
			BytesReceived:   int(st.recv.Value()),
			PayloadReceived: int(st.payload.Value()),
		}
	}
	return out
}

// roundTrip performs one request/response exchange over whichever protocol
// version the connection negotiated.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	if err := c.negotiate(); err != nil {
		return nil, c.opError(err)
	}
	if c.version == 2 {
		resp, err := c.roundTripV2(req)
		return resp, c.opError(err)
	}
	start := time.Now()
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(start.Add(c.opTimeout))
	}
	sent, err := writeFrame(c.conn, req, c.maxFrame)
	if err != nil {
		return nil, c.opError(fmt.Errorf("send %s: %w", req.Op, err))
	}
	var resp Response
	recv, err := readFrame(c.conn, &resp, c.maxFrame)
	if err != nil {
		return nil, c.opError(fmt.Errorf("receive %s: %w", req.Op, err))
	}
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
	st, lat := c.getStats(req.Op)
	st.calls.Inc()
	st.sent.Add(uint64(sent))
	st.recv.Add(uint64(recv))
	st.payload.Add(uint64(len(resp.Payload)))
	lat.Observe(time.Since(start))
	if !resp.OK {
		return nil, decodeError(&resp)
	}
	return &resp, nil
}

// v2ByteFor maps a protocol Op to its v2 op byte (0 for ops with no v2
// encoding — there are none today).
func v2ByteFor(op Op) byte {
	switch op {
	case OpIBEToken:
		return v2OpIBEToken
	case OpGDHSign:
		return v2OpGDHSign
	case OpRSADecrypt:
		return v2OpRSADecrypt
	case OpRSASign:
		return v2OpRSASign
	case OpGMDecrypt:
		return v2OpGMDecrypt
	case OpRevoke:
		return v2OpRevoke
	case OpUnrevoke:
		return v2OpUnrevoke
	case OpStatus:
		return v2OpStatus
	case OpList:
		return v2OpList
	case OpPing:
		return v2OpPing
	case OpRegisterIBE:
		return v2OpRegisterIBE
	case OpRegisterGDH:
		return v2OpRegisterGDH
	case OpReplAppend:
		return v2OpReplAppend
	case OpReplSnapshot:
		return v2OpReplSnapshot
	case OpReplStatus:
		return v2OpReplStatus
	default:
		return 0 // no v2 encoding; the server rejects op 0 as bad request
	}
}

// roundTripV2 sends one request as a single-item v2 frame and converts the
// response item back into the v1 Response shape so every public method
// works identically across protocol versions. Callers hold c.mu.
func (c *Client) roundTripV2(req *Request) (*Response, error) {
	opByte := v2ByteFor(req.Op)
	payload := req.Payload
	if req.Op == OpRevoke {
		payload = []byte(req.Reason)
	}
	if cap(c.reqScratch) < 1 {
		c.reqScratch = make([]wire.ReqItem, 1)
	}
	c.reqScratch = c.reqScratch[:1]
	c.reqScratch[0] = wire.ReqItem{ID: []byte(req.ID), Payload: payload}
	items, err := c.exchangeV2(req.Op, opByte, c.reqScratch)
	if err != nil {
		return nil, err
	}
	if len(items) != 1 {
		return nil, fmt.Errorf("%w: v2 response carries %d items, want 1", ErrProtocol, len(items))
	}
	resp := responseFromV2(req.Op, items[0])
	if !resp.OK {
		return nil, decodeError(resp)
	}
	return resp, nil
}

// exchangeV2 writes one v2 frame and reads its response frame, updating
// the wire accounting. The returned items alias the client's decoder and
// are valid until the next exchange; callers hold c.mu and must convert
// before releasing it.
func (c *Client) exchangeV2(op Op, opByte byte, reqs []wire.ReqItem) ([]wire.RespItem, error) {
	start := time.Now()
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(start.Add(c.opTimeout))
	}
	frame, err := c.enc.EncodeRequest(opByte, reqs, c.maxFrame)
	if err != nil {
		return nil, fmt.Errorf("encode %s batch: %w", op, err)
	}
	if _, err := c.conn.Write(frame); err != nil {
		return nil, fmt.Errorf("send %s: %w", op, err)
	}
	respOp, items, recv, err := c.dec.ReadResponse(c.conn, c.maxFrame, 0)
	if err != nil {
		return nil, fmt.Errorf("receive %s: %w", op, err)
	}
	if respOp != opByte {
		return nil, fmt.Errorf("%w: v2 response op %#x does not match request op %#x", ErrProtocol, respOp, opByte)
	}
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
	// A single-item error response to a multi-item batch is the server's
	// frame-level refusal (over-batch / over-frame).
	if len(reqs) != 1 && len(items) == 1 && items[0].Status != v2StatusOK {
		return nil, decodeError(responseFromV2(op, items[0]))
	}
	if len(items) != len(reqs) {
		return nil, fmt.Errorf("%w: v2 response carries %d items, want %d", ErrProtocol, len(items), len(reqs))
	}
	st, lat := c.getStats(op)
	st.calls.Add(uint64(len(reqs)))
	st.sent.Add(uint64(len(frame)))
	st.recv.Add(uint64(recv))
	var payloadBytes int
	for i := range items {
		if items[i].Status == v2StatusOK {
			payloadBytes += len(items[i].Data)
		}
	}
	st.payload.Add(uint64(payloadBytes))
	lat.Observe(time.Since(start))
	return items, nil
}

// responseFromV2 converts one v2 response item into the v1 Response shape.
// The data is copied out of the decoder buffer, so the result outlives the
// next exchange.
func responseFromV2(op Op, item wire.RespItem) *Response {
	if item.Status != v2StatusOK {
		return &Response{OK: false, Code: codeForV2Status(item.Status), Error: string(item.Data)}
	}
	if op == OpStatus {
		return &Response{OK: true, Revoked: len(item.Data) == 1 && item.Data[0] == 1}
	}
	return &Response{OK: true, Payload: bytes.Clone(item.Data)}
}

// ErrRemote marks every error the SEM answered over a healthy connection —
// revoked, unknown identity, bad request, internal failure. errors.Is(err,
// ErrRemote) == false therefore means a transport failure (dial, write,
// read, protocol violation), which is the router's cue to fail over to the
// next ring replica; a remote error would only repeat there.
var ErrRemote = errors.New("sem: remote error")

// decodeError maps protocol error codes back onto the typed core errors:
// the returned error's message is the SEM's own message, and errors.Is
// matches the corresponding sentinel as well as ErrRemote.
func decodeError(resp *Response) error {
	switch resp.Code {
	case CodeRevoked:
		return &remoteError{msg: resp.Error, sentinel: core.ErrRevoked}
	case CodeUnknownIdentity:
		return &remoteError{msg: resp.Error, sentinel: core.ErrUnknownIdentity}
	case CodeStaleEpoch:
		return &remoteError{msg: resp.Error, sentinel: repl.ErrStaleEpoch}
	case CodeSeqGap:
		return &remoteError{msg: resp.Error, sentinel: repl.ErrSeqGap}
	case CodeNotLeader:
		return &remoteError{msg: resp.Error, sentinel: repl.ErrNotLeader}
	default:
		return &remoteError{msg: fmt.Sprintf("sem: %s (%s)", resp.Error, resp.Code)}
	}
}

// remoteError carries a SEM-side message while unwrapping to the typed
// sentinel the server classified it as, plus ErrRemote.
type remoteError struct {
	msg      string
	sentinel error // nil when the code has no typed sentinel
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Unwrap() []error {
	if e.sentinel == nil {
		return []error{ErrRemote}
	}
	return []error{e.sentinel, ErrRemote}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Request{Op: OpPing})
	return err
}

// IBEToken requests the decryption token ê(U, d_ID,sem) for a ciphertext's
// U component.
func (c *Client) IBEToken(id string, u *curve.Point) (*pairing.GT, error) {
	if c.pairing == nil {
		return nil, errors.New("sem: client has no pairing params")
	}
	resp, err := c.roundTrip(&Request{Op: OpIBEToken, ID: id, Payload: u.Marshal()})
	if err != nil {
		return nil, err
	}
	// The token comes from the SEM, which the threat model treats as
	// honest-but-curious at best: enforce order-q membership before the
	// value enters the user's decryption arithmetic.
	return wire.UnmarshalGT(c.pairing, resp.Payload)
}

// DecryptIBE runs the user side of the full mediated-IBE decryption
// protocol over the network: request token, pair the user half, open.
func (c *Client) DecryptIBE(pub *bf.PublicParams, key *core.UserKeyHalf, ct *bf.Ciphertext) ([]byte, error) {
	token, err := c.IBEToken(key.ID, ct.U)
	if err != nil {
		return nil, err
	}
	return core.UserDecrypt(pub, key, ct, token)
}

// GDHHalfSign requests the SEM half-signature S_sem = x_sem·h for an
// already-hashed message point.
func (c *Client) GDHHalfSign(id string, h *curve.Point) (*curve.Point, error) {
	if c.pairing == nil {
		return nil, errors.New("sem: client has no pairing params")
	}
	resp, err := c.roundTrip(&Request{Op: OpGDHSign, ID: id, Payload: h.Marshal()})
	if err != nil {
		return nil, err
	}
	// The SEM's half-signature is also untrusted input: a compromised or
	// impersonated SEM must not be able to feed back out-of-subgroup points.
	return wire.UnmarshalG1(c.pairing.Curve(), resp.Payload)
}

// SignGDH runs the user side of the full mediated-GDH signing protocol over
// the network.
func (c *Client) SignGDH(key *core.GDHUserKey, msg []byte) (*curve.Point, error) {
	h, err := bls.HashMessage(key.Public.Pairing, msg)
	if err != nil {
		return nil, err
	}
	semHalf, err := c.GDHHalfSign(key.ID, h)
	if err != nil {
		return nil, err
	}
	return core.UserSign(key, msg, semHalf)
}

// RSAHalfDecrypt requests m_sem = c^{d_sem} mod n. The public key carries
// the modulus the SEM's response is range-checked against.
func (c *Client) RSAHalfDecrypt(pub *mrsa.PublicKey, id string, ciphertext *big.Int) (*big.Int, error) {
	resp, err := c.roundTrip(&Request{Op: OpRSADecrypt, ID: id, Payload: ciphertext.Bytes()}) //cryptolint:public (sanctioned wire serialization edge; the ciphertext is on the wire by design)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalScalar(resp.Payload, pub.N)
}

// DecryptRSA runs the user side of the mediated-RSA decryption protocol
// over the network.
func (c *Client) DecryptRSA(pub *mrsa.PublicKey, id string, userHalf *mrsa.HalfKey, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) != pub.ModulusBytes() {
		return nil, mrsa.ErrDecrypt
	}
	ci, err := wire.UnmarshalScalar(ciphertext, pub.N)
	if err != nil {
		return nil, mrsa.ErrDecrypt
	}
	semHalf, err := c.RSAHalfDecrypt(pub, id, ci)
	if err != nil {
		return nil, err
	}
	combined := mrsa.Combine(pub.N, userHalf.Op(ci), semHalf)
	return mrsa.FinishDecrypt(pub, combined)
}

// RSAHalfSign requests EMSA(msg)^{d_sem} mod n. The public key carries the
// modulus the SEM's response is range-checked against.
func (c *Client) RSAHalfSign(pub *mrsa.PublicKey, id string, msg []byte) (*big.Int, error) {
	resp, err := c.roundTrip(&Request{Op: OpRSASign, ID: id, Payload: bytes.Clone(msg)})
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalScalar(resp.Payload, pub.N)
}

// SignRSA runs the user side of the mediated-RSA signing protocol over the
// network.
func (c *Client) SignRSA(pub *mrsa.PublicKey, userHalf *mrsa.HalfKey, id string, msg []byte) ([]byte, error) {
	semHalf, err := c.RSAHalfSign(pub, id, msg)
	if err != nil {
		return nil, err
	}
	mine, err := mrsa.SignHalf(userHalf, msg)
	if err != nil {
		return nil, err
	}
	return mrsa.FinishSignature(pub, msg, mine, semHalf)
}

// GMHalfDecrypt requests the SEM half-results for a bitwise GM ciphertext.
func (c *Client) GMHalfDecrypt(id string, cs []*big.Int) ([]*big.Int, error) {
	payload, err := packInts(cs)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&Request{Op: OpGMDecrypt, ID: id, Payload: payload})
	if err != nil {
		return nil, err
	}
	halves, err := unpackInts(resp.Payload)
	if err != nil {
		return nil, err
	}
	if len(halves) != len(cs) {
		return nil, fmt.Errorf("sem: GM response has %d elements, want %d", len(halves), len(cs))
	}
	return halves, nil
}

// DecryptGM runs the user side of the mediated Goldwasser-Micali
// decryption protocol over the network.
func (c *Client) DecryptGM(pk *gm.PublicKey, id string, userHalf *gm.HalfKey, cs []*big.Int) ([]byte, error) {
	if len(cs)%8 != 0 {
		return nil, fmt.Errorf("sem: GM ciphertext length %d not a multiple of 8", len(cs))
	}
	semParts, err := c.GMHalfDecrypt(id, cs)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(cs)/8)
	for i, ct := range cs {
		bit, err := gm.CombineBit(pk, userHalf.Op(ct), semParts[i])
		if err != nil {
			return nil, fmt.Errorf("element %d: %w", i, err)
		}
		out[i/8] |= bit << uint(7-i%8)
	}
	return out, nil
}

// Revoke instructs the SEM to revoke an identity.
func (c *Client) Revoke(id, reason string) error {
	_, err := c.roundTrip(&Request{Op: OpRevoke, ID: id, Reason: reason})
	return err
}

// Unrevoke restores an identity.
func (c *Client) Unrevoke(id string) error {
	_, err := c.roundTrip(&Request{Op: OpUnrevoke, ID: id})
	return err
}

// RegisterIBE installs the SEM half of id's mediated IBE key on the
// server. The server must have been started with AllowRegister.
func (c *Client) RegisterIBE(id string, d *curve.Point) error {
	_, err := c.roundTrip(&Request{Op: OpRegisterIBE, ID: id, Payload: d.Marshal()})
	return err
}

// RegisterGDH installs the SEM half of id's GDH signing key on the server.
// The server must have been started with AllowRegister.
func (c *Client) RegisterGDH(id string, x *big.Int) error {
	_, err := c.roundTrip(&Request{Op: OpRegisterGDH, ID: id, Payload: x.Bytes()}) //cryptolint:public (sanctioned wire serialization edge; SEM half delivery is the enrollment protocol)
	return err
}

// RegisterIBEBatch installs k SEM IBE halves in one v2 frame per
// negotiated chunk — the bulk-enrollment path semload uses to seed a
// million identities. errs is index-aligned; err reports a transport
// failure partway through (see batchCall).
func (c *Client) RegisterIBEBatch(ids []string, ds []*curve.Point) ([]error, error) {
	return registerIBEBatch(c, ids, ds)
}

// RegisterGDHBatch installs k SEM GDH halves in one v2 frame per
// negotiated chunk.
func (c *Client) RegisterGDHBatch(ids []string, xs []*big.Int) ([]error, error) {
	return registerGDHBatch(c, ids, xs)
}

// Status reports whether an identity is revoked.
func (c *Client) Status(id string) (bool, error) {
	resp, err := c.roundTrip(&Request{Op: OpStatus, ID: id})
	if err != nil {
		return false, err
	}
	return resp.Revoked, nil
}

// ErrPartialList reports that ListRevoked dropped entries it could not
// parse; the returned slice still carries every valid entry.
var ErrPartialList = errors.New("sem: revocation list contained invalid entries")

// ListRevoked fetches the SEM's full revocation list. A malformed element
// in the server's response does not void the whole call: valid entries are
// returned alongside an ErrPartialList error describing how many were
// dropped, so an operator listing revocations during an incident still
// sees everything parseable.
func (c *Client) ListRevoked() ([]core.RevocationEntry, error) {
	resp, err := c.roundTrip(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return parseRevocationList(resp.Payload)
}

// parseRevocationList decodes a revocation-list payload tolerantly: valid
// entries survive a malformed sibling, which instead surfaces as an
// ErrPartialList error alongside them.
func parseRevocationList(payload []byte) ([]core.RevocationEntry, error) {
	var raw []json.RawMessage
	if err := json.Unmarshal(payload, &raw); err != nil {
		return nil, fmt.Errorf("sem: parse revocation list: %w", err)
	}
	entries := make([]core.RevocationEntry, 0, len(raw))
	dropped := 0
	for _, el := range raw {
		var e core.RevocationEntry
		if err := json.Unmarshal(el, &e); err != nil || e.ID == "" {
			dropped++
			continue
		}
		entries = append(entries, e)
	}
	if dropped > 0 {
		return entries, fmt.Errorf("%w: dropped %d of %d", ErrPartialList, dropped, len(raw))
	}
	return entries, nil
}

// batchCall runs one op over k (id, payload) items: a single v2 frame per
// maxBatch-sized chunk on a v2 connection, or sequential round trips on
// v1. Results and errs are index-aligned with the inputs (errs[i] nil on
// success). A transport/protocol failure mid-batch is returned as the
// call error AND stamped into errs[i] for every item the failure voided —
// results from chunks that already completed are kept, so callers get the
// tokens/halves they paid round trips for even when a later chunk dies.
func (c *Client) batchCall(op Op, ids []string, payloads [][]byte) ([][]byte, []error, error) {
	if len(ids) != len(payloads) {
		return nil, nil, fmt.Errorf("sem: batch has %d ids but %d payloads", len(ids), len(payloads))
	}
	results := make([][]byte, len(ids))
	errs := make([]error, len(ids))
	if len(ids) == 0 {
		return results, errs, nil
	}

	c.mu.Lock()
	if err := c.checkOpen(); err != nil {
		c.mu.Unlock()
		return nil, nil, err
	}
	if err := c.negotiate(); err != nil {
		c.mu.Unlock()
		return nil, nil, c.opError(err)
	}
	version := c.version
	c.mu.Unlock()

	if version != 2 {
		// v1 fallback: the batch degrades to sequential calls so callers
		// never need a version switch of their own.
		for i := range ids {
			resp, err := c.roundTrip(&Request{Op: op, ID: ids[i], Payload: payloads[i]})
			if err != nil {
				errs[i] = err
				continue
			}
			results[i] = resp.Payload
		}
		return results, errs, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	opByte := v2ByteFor(op)
	for lo := 0; lo < len(ids); lo += c.maxBatch {
		hi := lo + c.maxBatch
		if hi > len(ids) {
			hi = len(ids)
		}
		n := hi - lo
		if cap(c.reqScratch) < n {
			c.reqScratch = make([]wire.ReqItem, n)
		}
		c.reqScratch = c.reqScratch[:n]
		for i := 0; i < n; i++ {
			c.reqScratch[i] = wire.ReqItem{ID: []byte(ids[lo+i]), Payload: payloads[lo+i]}
		}
		items, err := c.exchangeV2(op, opByte, c.reqScratch)
		if err != nil {
			// The failed chunk and everything after it never produced
			// results; keep the chunks already fetched and mark the rest.
			err = c.opError(err)
			for i := lo; i < len(ids); i++ {
				errs[i] = err
			}
			return results, errs, err
		}
		for i := 0; i < n; i++ {
			if items[i].Status != v2StatusOK {
				errs[lo+i] = decodeError(responseFromV2(op, items[i]))
				continue
			}
			// The item data aliases the decoder buffer; copy it out
			// before the next chunk overwrites it.
			results[lo+i] = bytes.Clone(items[i].Data)
		}
	}
	return results, errs, nil
}

// TokenBatch requests decryption tokens for k (id, U) pairs in one v2
// frame (chunked to the server's negotiated batch limit) and validates the
// returned tokens with a single batched subgroup check — the batch
// counterpart of IBEToken. tokens and errs are index-aligned with the
// inputs; a non-nil err reports a transport failure partway through, in
// which case tokens fetched before the failure are still returned and the
// voided slots carry that error in errs.
func (c *Client) TokenBatch(ids []string, us []*curve.Point) (tokens []*pairing.GT, errs []error, err error) {
	return tokenBatch(c, c.pairing, ids, us)
}

// GDHHalfSignBatch requests SEM half-signatures for k (id, h(M)) pairs in
// one v2 frame — the batch counterpart of GDHHalfSign. Each returned point
// passes the same subgroup validation as the single-op path.
func (c *Client) GDHHalfSignBatch(ids []string, hs []*curve.Point) (halves []*curve.Point, errs []error, err error) {
	return gdhHalfSignBatch(c, c.pairing, ids, hs)
}

// RSAHalfDecryptBatch requests m_sem = c^{d_sem} mod n for k ciphertexts
// in one v2 frame — the batch counterpart of RSAHalfDecrypt. Responses are
// range-checked against the public modulus like the single-op path.
func (c *Client) RSAHalfDecryptBatch(pub *mrsa.PublicKey, ids []string, cts []*big.Int) (halves []*big.Int, errs []error, err error) {
	return rsaHalfDecryptBatch(c, pub, ids, cts)
}

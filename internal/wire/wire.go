// Package wire provides the framing shared by the repository's network
// services (the SEM daemon and the threshold-IBE cluster): the v1 framing
// is a 4-byte big-endian length followed by a JSON body, capped at MaxFrame
// by default or at a caller-negotiated limit; framev2.go adds the binary
// batched v2 framing. The package also carries the untrusted-input decoders
// (points, scalars, GT elements) every network boundary must use, plus a
// packed encoding for vectors of big integers.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/curve"
	"repro/internal/pairing"
)

// MaxFrame bounds a single protocol frame when the caller does not
// negotiate a per-connection limit of its own.
const MaxFrame = 1 << 20

var (
	// ErrFrameTooLarge is returned when a peer announces or requests a
	// frame beyond the applicable limit.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

	// ErrProtocol is returned on malformed frames.
	ErrProtocol = errors.New("wire: protocol error")
)

// WriteFrame sends one length-prefixed JSON message and reports the bytes
// written, capping the body at the package default MaxFrame.
func WriteFrame(w io.Writer, v any) (int, error) {
	return WriteFrameLimit(w, v, MaxFrame)
}

// WriteFrameLimit is WriteFrame with a caller-chosen body cap (maxFrame
// ≤ 0 selects the package default).
func WriteFrameLimit(w io.Writer, v any, maxFrame int) (int, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	body, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("encode frame: %w", err)
	}
	if len(body) > maxFrame {
		return 0, ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(body)
	return 4 + n, err
}

// ReadFrame receives one length-prefixed JSON message into v, returning
// the wire size consumed and capping the body at the package default
// MaxFrame.
func ReadFrame(r io.Reader, v any) (int, error) {
	return ReadFrameLimit(r, v, MaxFrame)
}

// ReadFrameLimit is ReadFrame with a caller-chosen body cap (maxFrame ≤ 0
// selects the package default). On ErrFrameTooLarge the announced body has
// not been consumed, so the connection cannot be resynchronized.
func ReadFrameLimit(r io.Reader, v any, maxFrame int) (int, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(maxFrame) {
		return 0, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, fmt.Errorf("%w: truncated frame: %v", ErrProtocol, err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return 4 + int(n), nil
}

// UnmarshalG1 decodes a compressed curve point received from an untrusted
// peer and checks order-q subgroup membership. curve.Unmarshal alone only
// verifies the point is on the curve — the curve has cofactor c > 1, so a
// malicious peer can otherwise smuggle in low-order components that leak
// information through protocol responses (small-subgroup attacks). Every
// network boundary (SEM daemon, cluster nodes) must decode through this.
func UnmarshalG1(c *curve.Curve, data []byte) (*curve.Point, error) {
	pt, err := c.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if err := pt.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	return pt, nil
}

// UnmarshalScalar decodes a big-endian scalar received from an untrusted
// peer and range-checks it against max: the result lies in [0, max). A raw
// big.Int.SetBytes accepts arbitrarily large values, which downstream code
// would silently reduce (or worse, use unreduced in comparisons and
// branchings), so every peer-supplied exponent, challenge or RSA residue
// must decode through this with the appropriate modulus.
func UnmarshalScalar(data []byte, max *big.Int) (*big.Int, error) {
	if max == nil || max.Sign() <= 0 {
		return nil, fmt.Errorf("%w: scalar bound must be positive", ErrProtocol)
	}
	// Oversized buffers are rejected before decoding: a minimal or
	// fixed-width encoding of any value below max never exceeds the bound's
	// own width, and this caps the bigint allocation at the modulus size.
	if maxLen := (max.BitLen() + 7) / 8; len(data) > maxLen {
		return nil, fmt.Errorf("%w: scalar encoding %d bytes exceeds bound width %d", ErrProtocol, len(data), maxLen)
	}
	x := new(big.Int).SetBytes(data) //cryptolint:public (sanctioned wire decode edge; the encoding length is attacker-visible on the wire by definition)
	if x.Cmp(max) >= 0 {             //cryptolint:public (range-validity check against the public bound at the wire edge)
		return nil, fmt.Errorf("%w: scalar out of range (%d bits, bound %d bits)", ErrProtocol, x.BitLen(), max.BitLen())
	}
	return x, nil
}

// UnmarshalGT decodes a GT element received from an untrusted peer and
// checks order-q subgroup membership. GTFromBytes alone only verifies the
// coordinates are canonical field elements — the multiplicative group of
// F_p² has order p²−1 = c·q with a large cofactor, so an unchecked element
// lets a malicious SEM or cluster node smuggle low-order components into
// decryption tokens (the GT analogue of the small-subgroup attacks that
// UnmarshalG1 blocks on the curve side).
func UnmarshalGT(pp *pairing.Params, data []byte) (*pairing.GT, error) {
	g, err := pp.GTFromBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if !pp.InGT(g) {
		return nil, fmt.Errorf("%w: element outside the order-q subgroup of GT", ErrProtocol)
	}
	return g, nil
}

// UnmarshalGTBatch decodes k GT elements received from an untrusted peer
// and checks order-q subgroup membership of the whole batch with
// pairing.BatchInGT, which fans the per-element q-exponentiations across
// cores — the validated decoder behind the batch token path. Each element
// is checked deterministically (random-linear-combination batching is
// unsound in GT: the cofactor has small-order subgroups, see BatchInGT).
// A nil raws[i] yields a nil element with a nil error (the
// caller already failed that slot upstream); a malformed or out-of-subgroup
// element sets errs[i] and leaves gs[i] nil. The error return is non-nil
// only for batch-level failures such as randomness exhaustion.
func UnmarshalGTBatch(pp *pairing.Params, raws [][]byte) (gs []*pairing.GT, errs []error, err error) {
	gs = make([]*pairing.GT, len(raws))
	errs = make([]error, len(raws))
	for i, raw := range raws {
		if raw == nil {
			continue
		}
		g, gerr := pp.GTFromBytes(raw)
		if gerr != nil {
			errs[i] = fmt.Errorf("%w: %v", ErrProtocol, gerr)
			continue
		}
		gs[i] = g
	}
	ok, berr := pp.BatchInGT(gs)
	if berr != nil {
		return nil, nil, fmt.Errorf("batch GT validation: %w", berr)
	}
	for i := range gs {
		if gs[i] != nil && !ok[i] {
			gs[i] = nil
			errs[i] = fmt.Errorf("%w: element outside the order-q subgroup of GT", ErrProtocol)
		}
	}
	return gs, errs, nil
}

// PackInts serializes a vector of non-negative integers as 2-byte-length-
// prefixed big-endian chunks.
func PackInts(xs []*big.Int) ([]byte, error) {
	var buf bytes.Buffer
	for _, x := range xs {
		b := x.Bytes() //cryptolint:public (sanctioned wire serialization edge)
		if len(b) > 0xFFFF {
			return nil, fmt.Errorf("wire: element too large (%d bytes)", len(b))
		}
		var hdr [2]byte
		binary.BigEndian.PutUint16(hdr[:], uint16(len(b)))
		buf.Write(hdr[:])
		buf.Write(b)
	}
	return buf.Bytes(), nil
}

// UnpackInts inverts PackInts.
func UnpackInts(data []byte) ([]*big.Int, error) {
	var out []*big.Int
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, fmt.Errorf("%w: truncated element header", ErrProtocol)
		}
		n := int(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
		if len(data) < n {
			return nil, fmt.Errorf("%w: truncated element body", ErrProtocol)
		}
		out = append(out, new(big.Int).SetBytes(data[:n]))
		data = data[n:]
	}
	return out, nil
}

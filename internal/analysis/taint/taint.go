// Package taint is the interprocedural secret-taint layer under the
// cryptolint analyzers. The structural rules of package secrets answer "is
// this expression secret by its type?"; this package adds data flow: a
// //cryptolint:secret value assigned to a local, passed to a function,
// returned from one, or stored into a field taints the local, the
// parameter, the call result and the field. The analyzers (cttime,
// secretcompare, secretleak) then ask one question — Tainted(expr) — and
// get the union of both views.
//
// The engine builds a module-wide index of function declarations (the call
// graph's nodes; edges are the identifier/selector call sites resolved
// through the type checker) and runs a monotone fixed point over three
// fact sets:
//
//   - tainted objects: parameters, locals, named results and package
//     variables observed to receive secret material;
//   - tainted fields: struct fields of un-annotated types observed to
//     receive secret material (annotated types are covered structurally);
//   - function summaries: per-result-index taint for every module function,
//     so call results propagate across package boundaries.
//
// Mutation is modelled conservatively: a call with a tainted input taints
// every other mutable (pointer, slice, map, interface) argument and the
// receiver, which is what makes out-parameter kernels — F.Square(dst, src),
// z.Mod(x, q) — propagate without per-API modelling. Two deliberate
// stops keep the flood bounded: basic-typed method results are metadata
// (k.D.Sign() is not the key), and comparison operators produce public
// verdicts (acting on an equality result is the point of computing it;
// the comparison itself is secretcompare's business).
//
// Dynamic calls through interfaces and function values are not followed —
// like nopanic's call graph, the engine is a lower bound, which is the
// useful direction for a linter that must stay free of false positives.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/secrets"
)

// maxRounds bounds the fixed point; each round only ever adds facts, so
// the loop terminates as soon as a round adds nothing.
const maxRounds = 64

// Analysis is the module-wide taint fixed point.
type Analysis struct {
	// Secrets carries the type-level annotations the flow facts grow from.
	Secrets *secrets.Set

	pkgs    []*analysis.Package
	bodies  map[*types.Func]*funcBody
	objs    map[types.Object]bool
	fields  map[types.Object]bool
	writes  map[types.Object]bool
	results map[*types.Func][]bool
	changed bool
}

type funcBody struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
}

// cache memoizes the fixed point for one loaded package set: every
// analyzer pass of a cryptolint run shares the same slice, and the fixed
// point is deterministic, so recomputing it per pass would only burn time.
var cache struct {
	key []*analysis.Package
	a   *Analysis
}

// For returns the taint analysis over all source-loaded packages,
// computing the fixed point on first use per package set.
func For(all []*analysis.Package) *Analysis {
	if cache.a != nil && len(cache.key) == len(all) {
		same := true
		for i := range all {
			if cache.key[i] != all[i] {
				same = false
				break
			}
		}
		if same {
			return cache.a
		}
	}
	a := compute(all)
	cache.key = append([]*analysis.Package(nil), all...)
	cache.a = a
	return a
}

func compute(all []*analysis.Package) *Analysis {
	a := &Analysis{
		Secrets: secrets.Collect(all),
		pkgs:    all,
		bodies:  make(map[*types.Func]*funcBody),
		objs:    make(map[types.Object]bool),
		fields:  make(map[types.Object]bool),
		writes:  make(map[types.Object]bool),
		results: make(map[*types.Func][]bool),
	}
	for _, pkg := range all {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					a.bodies[fn] = &funcBody{pkg: pkg, decl: fd}
				}
			}
		}
	}
	if a.Secrets.Names() == 0 {
		return a
	}
	for round := 0; round < maxRounds; round++ {
		a.changed = false
		for _, pkg := range all {
			a.propagatePackage(pkg)
		}
		if !a.changed {
			break
		}
	}
	return a
}

// Tainted reports whether e carries secret material: secret by type
// (package secrets' structural rules) or secret by flow (the fixed point's
// object, field and summary facts).
func (a *Analysis) Tainted(info *types.Info, e ast.Expr) bool {
	return a.tainted(info, e, 0)
}

// TaintedObj reports whether a variable object was observed to receive
// secret material.
func (a *Analysis) TaintedObj(obj types.Object) bool { return a.objs[obj] }

// Body returns the declaration of a module function, or nil for functions
// without source (standard library, interface methods).
func (a *Analysis) Body(fn *types.Func) *ast.FuncDecl {
	if b := a.bodies[fn]; b != nil {
		return b.decl
	}
	return nil
}

func (a *Analysis) tainted(info *types.Info, e ast.Expr, depth int) bool {
	if depth > 32 {
		return false
	}
	e = ast.Unparen(e)
	// An error is a report about the data, not the data: wrapping a secret
	// into an error message is secretleak's finding at the format site, and
	// letting the error value itself carry taint would smear err across
	// every return path in the module.
	if tv, ok := info.Types[e]; ok && isErrorType(tv.Type) {
		return false
	}
	if a.Secrets.SecretExpr(info, e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := useOrDef(info, x); obj != nil {
			return a.objs[obj]
		}
	case *ast.SelectorExpr:
		obj := info.Uses[x.Sel]
		if _, isFunc := obj.(*types.Func); isFunc {
			// A method value is code, not data; its calls are judged by the
			// CallExpr rules.
			return false
		}
		if obj != nil && a.Secrets.Public(obj) {
			return false
		}
		if obj != nil && (a.fields[obj] || a.objs[obj]) {
			return true
		}
		// Field or method value on a flow-tainted base: same metadata rule
		// as the structural layer — basic-typed selections are identifiers
		// and sizes, not key material.
		if a.tainted(info, x.X, depth+1) {
			return !isBasic(info.TypeOf(e))
		}
	case *ast.CallExpr:
		// A conversion renames the bits; string(k.Bytes) stays secret.
		if tv, ok := info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			return a.tainted(info, x.Args[0], depth+1)
		}
		if fn := callee(info, x); fn != nil {
			for _, t := range a.results[fn] {
				if t {
					return true
				}
			}
		}
		// A method on a tainted receiver returns tainted non-basic values
		// (big.Int chaining: z.Mod(secret, q) returns z). Basic results —
		// Sign(), BitLen(), Cmp() — are metadata/verdicts.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && a.tainted(info, sel.X, depth+1) {
			return !isBasic(info.TypeOf(e))
		}
		// A sourceless callee (standard library) with a tainted argument:
		// assume the non-basic result is derived from it.
		if fn := callee(info, x); fn == nil || a.bodies[fn] == nil {
			for _, arg := range x.Args {
				if a.tainted(info, arg, depth+1) {
					return !isBasic(info.TypeOf(e))
				}
			}
		}
	case *ast.IndexExpr:
		return a.tainted(info, x.X, depth+1)
	case *ast.SliceExpr:
		return a.tainted(info, x.X, depth+1)
	case *ast.StarExpr:
		return a.tainted(info, x.X, depth+1)
	case *ast.UnaryExpr:
		return a.tainted(info, x.X, depth+1)
	case *ast.BinaryExpr:
		// Comparison verdicts are public (see the package comment);
		// arithmetic on secret operands stays secret.
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return false
		}
		return a.tainted(info, x.X, depth+1) || a.tainted(info, x.Y, depth+1)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if a.tainted(info, v, depth+1) {
				return true
			}
		}
	}
	return false
}

// propagatePackage runs one monotone round over every declaration of pkg.
func (a *Analysis) propagatePackage(pkg *analysis.Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					a.propagateAssign(info, identExprs(vs.Names), vs.Values)
				}
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, _ := info.Defs[d.Name].(*types.Func)
				a.propagateBody(pkg, fn, d.Body)
			}
		}
	}
}

// propagateBody walks one function body, recording flows. Statements inside
// function literals are walked too (their assignments and calls propagate
// the same way); only their return statements are skipped, since a literal
// has no *types.Func to summarize.
func (a *Analysis) propagateBody(pkg *analysis.Package, fn *types.Func, body *ast.BlockStmt) {
	info := pkg.Info
	var walk func(n ast.Node, owner *types.Func) bool
	walk = func(n ast.Node, owner *types.Func) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(x.Body, func(n ast.Node) bool { return walk(n, nil) })
			return false
		case *ast.AssignStmt:
			a.propagateAssign(info, x.Lhs, x.Rhs)
		case *ast.RangeStmt:
			if a.tainted(info, x.X, 0) {
				if x.Value != nil {
					a.markLHS(info, x.Value)
				}
				if x.Key != nil && isMap(info.TypeOf(x.X)) {
					a.markLHS(info, x.Key)
				}
			}
		case *ast.ReturnStmt:
			if owner != nil {
				a.propagateReturn(info, owner, x)
			}
		case *ast.CallExpr:
			a.propagateCall(info, x)
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, fn) })
}

// propagateAssign marks LHS targets receiving tainted RHS values, handling
// both the pairwise form and the single multi-value call form.
func (a *Analysis) propagateAssign(info *types.Info, lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if fn := callee(info, call); fn != nil {
				for i, t := range a.results[fn] {
					if t && i < len(lhs) {
						a.markLHS(info, lhs[i])
					}
				}
			}
			return
		}
		// Comma-ok forms: v, ok := m[k] / ch recv / type assert.
		if a.tainted(info, rhs[0], 0) {
			a.markLHS(info, lhs[0])
		}
		return
	}
	for i, r := range rhs {
		if i < len(lhs) && a.tainted(info, r, 0) {
			a.markLHS(info, lhs[i])
		}
	}
}

// propagateReturn folds returned taint into fn's summary.
func (a *Analysis) propagateReturn(info *types.Info, fn *types.Func, ret *ast.ReturnStmt) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results() == nil {
		return
	}
	nres := sig.Results().Len()
	if nres == 0 {
		return
	}
	summary := a.results[fn]
	if summary == nil {
		summary = make([]bool, nres)
		a.results[fn] = summary
	}
	switch {
	case len(ret.Results) == 0:
		// Naked return: named results are ordinary objects the walk has
		// already been marking.
		for i := 0; i < nres; i++ {
			if a.objs[sig.Results().At(i)] {
				a.markResult(summary, i)
			}
		}
	case len(ret.Results) == 1 && nres > 1:
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if callee := callee(info, call); callee != nil {
				for i, t := range a.results[callee] {
					if t && i < nres {
						a.markResult(summary, i)
					}
				}
			}
		}
	default:
		for i, r := range ret.Results {
			if i < nres && !isErrorType(sig.Results().At(i).Type()) && a.tainted(info, r, 0) {
				a.markResult(summary, i)
			}
		}
	}
}

// propagateCall pushes argument taint into callee parameters and applies
// the call-site mutation rule: a call with a tainted input taints the
// site's other mutable arguments (the out-parameter kernels: F.Square(dst,
// secret) taints dst here, not at every other Square site), and — for
// fluent mutator methods only, where the result type is the receiver type,
// the z.Mod(x, y) / e.Mul(x, y) shape — the receiver. Engine receivers
// (pp.Pair, c.MSM) are never smeared: tainting the parameter set or the
// curve object would taint every public computation that shares it.
func (a *Analysis) propagateCall(info *types.Info, call *ast.CallExpr) {
	fn := callee(info, call)

	var recvExpr ast.Expr
	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sig != nil && sig.Recv() != nil {
		recvExpr = sel.X
	}

	anyTainted := recvExpr != nil && a.tainted(info, recvExpr, 0)
	for _, arg := range call.Args {
		if anyTainted {
			break
		}
		anyTainted = a.tainted(info, arg, 0)
	}
	if !anyTainted {
		return
	}

	// Parameter marking, for callees with source.
	if fn != nil && a.bodies[fn] != nil {
		a.markParams(info, fn, call, recvExpr)
	}

	if recvExpr != nil && isFluent(sig) && isMutable(info.TypeOf(recvExpr)) {
		a.markLHS(info, recvExpr)
	}
	// Out-parameter smear: only pointer and slice arguments, the shapes the
	// kernels actually write through (F.Square(dst, src), bucket slabs). An
	// interface argument is a sink, not an out-parameter — smearing it would
	// taint every io.Writer and net.Conn a secret is ever serialized into.
	//
	// For a callee with source the smear is further gated on the callee's
	// own view of the parameter: unless the callee's body (or something it
	// calls) stores secret material THROUGH that parameter — a writes fact,
	// not mere input taint — nothing can have flowed back out and the
	// argument stays clean. This is what keeps context pointers — the
	// *Curve threaded through every Jacobian helper next to secret
	// coordinates, the modulus handed to a constructor that also gets
	// secrets from elsewhere — from being swallowed whole.
	//
	// Sourceless callees (the stdlib) have no parameter view, so the gate
	// is by shape instead: a stdlib METHOD writes its receiver (covered by
	// the fluent rule above) and treats its arguments as inputs —
	// acc.Mod(secret, q) must not smear the modulus q. Only sourceless
	// plain functions (rand.Read(buf), hkdf-style fills) smear their
	// pointer arguments unconditionally.
	sourceless := fn == nil || a.bodies[fn] == nil
	if sourceless && sig != nil && sig.Recv() != nil {
		return
	}
	for i, arg := range call.Args {
		if !isOutParam(info.TypeOf(arg)) || a.tainted(info, arg, 0) {
			continue
		}
		// The callee's declared parameter type wins over the argument's
		// shape: a *big.Int handed to fmt.Errorf's ...any lands in an
		// interface — a sink, not a writable pointer.
		if pt := paramTypeAt(sig, i); pt != nil && !isOutParam(pt) {
			continue
		}
		if !sourceless && !a.writes[paramAt(sig, i)] {
			continue
		}
		a.markLHS(info, arg)
	}
}

// paramTypeAt returns the declared type of the parameter receiving argument
// i, unwrapping the variadic slice; nil when the signature is unknown.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	if sig == nil || sig.Params().Len() == 0 {
		return nil
	}
	last := sig.Params().Len() - 1
	if i >= last && sig.Variadic() {
		if s, ok := sig.Params().At(last).Type().(*types.Slice); ok {
			return s.Elem()
		}
	}
	if i > last {
		i = last
	}
	return sig.Params().At(i).Type()
}

// paramAt returns the i'th parameter object of sig, clamping into the
// variadic tail; nil when sig carries no parameters.
func paramAt(sig *types.Signature, i int) types.Object {
	if sig == nil || sig.Params().Len() == 0 {
		return nil
	}
	if i >= sig.Params().Len() {
		i = sig.Params().Len() - 1
	}
	return sig.Params().At(i)
}

// isOutParam reports whether an argument of type t can act as an
// out-parameter a callee writes results through.
func isOutParam(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice:
		return true
	}
	return false
}

// isFluent reports the mutator-method shape: the first result has the
// receiver's type, so the receiver is (by convention) written in place.
func isFluent(sig *types.Signature) bool {
	if sig == nil || sig.Recv() == nil || sig.Results() == nil || sig.Results().Len() == 0 {
		return false
	}
	return types.Identical(sig.Results().At(0).Type(), sig.Recv().Type())
}

// markParams taints the callee's parameter objects fed by tainted
// arguments (and its receiver when the receiver expression is tainted).
func (a *Analysis) markParams(info *types.Info, fn *types.Func, call *ast.CallExpr, recvExpr ast.Expr) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if !a.tainted(info, arg, 0) {
			continue
		}
		idx := i
		if idx >= params.Len() {
			idx = params.Len() - 1 // variadic tail
		}
		if idx >= 0 {
			a.markObj(params.At(idx))
		}
	}
	if recvExpr != nil && sig.Recv() != nil && a.tainted(info, recvExpr, 0) {
		a.markObj(sig.Recv())
	}
}

// markLHS taints the object behind an assignable expression: identifiers
// directly, selectors as field facts, and container writes as taint on the
// container's base.
func (a *Analysis) markLHS(info *types.Info, e ast.Expr) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if obj := useOrDef(info, x); obj != nil {
			a.markWrite(obj)
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[x.Sel]; obj != nil && !a.Secrets.Public(obj) {
			if !a.fields[obj] {
				a.fields[obj] = true
				a.changed = true
			}
		}
	case *ast.IndexExpr:
		a.markLHS(info, x.X)
	case *ast.StarExpr:
		a.markLHS(info, x.X)
	}
}

func (a *Analysis) markObj(obj types.Object) {
	if obj == nil || a.objs[obj] || isErrorType(obj.Type()) {
		return
	}
	a.objs[obj] = true
	a.changed = true
}

// markWrite records that obj had secret material stored INTO it — an
// assignment target or a smeared out-parameter — as opposed to receiving
// it as a call input. The distinction gates the out-parameter smear: only
// a parameter some body writes through can carry taint back out of a call.
func (a *Analysis) markWrite(obj types.Object) {
	if obj == nil || isErrorType(obj.Type()) {
		return
	}
	if !a.writes[obj] {
		a.writes[obj] = true
		a.changed = true
	}
	a.markObj(obj)
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func (a *Analysis) markResult(summary []bool, i int) {
	if !summary[i] {
		summary[i] = true
		a.changed = true
	}
}

// identExprs adapts a ValueSpec's name list to the assignment walker.
func identExprs(names []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

// callee resolves the static callee of a call, or nil for dynamic calls.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func useOrDef(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isBasic(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isMutable reports whether a value of type t lets a callee write through
// it (the mutation rule's targets).
func isMutable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface, *types.Chan:
		return true
	}
	return false
}

// Package ok type-checks cleanly and carries no findings.
package ok

// Add adds.
func Add(a, b int) int { return a + b }

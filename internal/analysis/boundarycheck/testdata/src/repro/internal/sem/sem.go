// Package sem exercises the boundarycheck positive cases: raw decodes of
// peer-supplied bytes in a network-facing package.
package sem

import (
	"math/big"

	"repro/internal/curve"
	"repro/internal/gf"
	"repro/internal/pairing"
)

// HandlePoint decodes a peer point without validation.
func HandlePoint(c *curve.Curve, payload []byte) (*curve.Point, error) {
	return c.Unmarshal(payload) // want `raw curve.Unmarshal decode at a network boundary; use wire.UnmarshalG1`
}

// HandleToken decodes a peer GT element without a membership check.
func HandleToken(pp *pairing.Params, payload []byte) (*pairing.GT, error) {
	return pp.GTFromBytes(payload) // want `raw pairing.GTFromBytes decode at a network boundary; use wire.UnmarshalGT`
}

// HandleElement decodes field coordinates without validation.
func HandleElement(f *gf.Field, payload []byte) (*gf.Element, error) {
	return f.ElementFromBytes(payload) // want `raw gf.ElementFromBytes decode at a network boundary; use wire.UnmarshalGT`
}

// HandleScalar decodes a scalar without a range check.
func HandleScalar(payload []byte) *big.Int {
	return new(big.Int).SetBytes(payload) // want `raw big.SetBytes decode at a network boundary; use wire.UnmarshalScalar`
}

package pairing

import (
	"repro/internal/parallel"
)

// BatchInGT reports, per element, whether each gᵢ lies in the order-q
// subgroup of F_p²* — the batched form of InGT for validating a batch of
// decryption tokens in one pass.
//
// Each element gets its own full q-width exponentiation (exactly InGT),
// fanned across cores with parallel.Fan; the wall-clock cost of a batch of
// k is ~⌈k/cores⌉ exponentiations. An earlier version combined the batch
// into one exponentiation via a random linear combination t = ∏ gᵢ^{rᵢ},
// but that check is UNSOUND here: the cofactor c = (p²−1)/q is even, so
// F_p²* has small-order components outside the q-subgroup (e.g. −1, order
// 2), and gᵢ·ε with ord(ε) = m slips through whenever rᵢ ≡ 0 (mod m) —
// probability 1/m per attempt, retryable, nowhere near 2⁻⁶⁴. Random
// combinations only reach 2⁻λ soundness when the quotient group has no
// small-order subgroups, which this one structurally cannot satisfy, so
// the deterministic per-element check is the batch check.
//
// The returned slice has len(gs) entries; a nil or zero element reports
// false. The error return is kept for API stability and is always nil.
func (pp *Params) BatchInGT(gs []*GT) ([]bool, error) {
	ok := make([]bool, len(gs))
	parallel.Fan(len(gs), func(i int) {
		ok[i] = gs[i] != nil && pp.InGT(gs[i])
	})
	return ok, nil
}

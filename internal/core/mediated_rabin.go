package core

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/rabin"
)

// RabinSEM is the mediator side of the mediated modified-Rabin schemes —
// the second extension from the paper's conclusion ("the modified Rabin
// signature and encryption schemes ([24]) for which efficient threshold
// adaptations have been described in [18]"). One half exponent serves both
// SAEP decryption and modified-Rabin signing, mirroring mRSA. Safe for
// concurrent use.
type RabinSEM struct {
	reg  *Registry
	keys *keyStore[*rabin.HalfKey]
}

// NewRabinSEM constructs a Rabin SEM over a (possibly shared) revocation
// registry.
func NewRabinSEM(reg *Registry) *RabinSEM {
	return &RabinSEM{reg: reg, keys: newKeyStore[*rabin.HalfKey]()}
}

// Register installs an identity's SEM exponent half.
func (s *RabinSEM) Register(id string, half *rabin.HalfKey) { s.keys.put(id, half) }

// Registry exposes the revocation registry (admin interface).
func (s *RabinSEM) Registry() *Registry { return s.reg }

// HalfOp applies the SEM half exponent to one element (a ciphertext for
// decryption or a hashed message for signing) after checking revocation.
func (s *RabinSEM) HalfOp(id string, x *big.Int) (*big.Int, error) {
	if err := s.reg.Check(id); err != nil {
		return nil, err
	}
	half, ok := s.keys.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownIdentity, id)
	}
	if x.Sign() <= 0 || x.Cmp(half.N) >= 0 {
		return nil, fmt.Errorf("core: Rabin operand out of range")
	}
	return half.Op(x), nil
}

// RabinDecrypt runs the two-party SAEP decryption in-process.
//
//cryptolint:vartime (legacy math/big Rabin combination; the limb discipline does not apply to the mediated-Rabin scheme)
func RabinDecrypt(sem *RabinSEM, id string, pk *rabin.PublicKey, user *rabin.HalfKey, ciphertext []byte, msgLen int) ([]byte, error) {
	if len(ciphertext) != pk.ModulusBytes() {
		return nil, rabin.ErrDecrypt
	}
	c := new(big.Int).SetBytes(ciphertext)
	if c.Sign() <= 0 || c.Cmp(pk.N) >= 0 {
		return nil, rabin.ErrDecrypt
	}
	semPart, err := sem.HalfOp(id, c)
	if err != nil {
		return nil, err
	}
	s := new(big.Int).Mul(user.Op(c), semPart)
	s.Mod(s, pk.N)
	return pk.FinishDecrypt(c, s, msgLen)
}

// RabinSign runs the two-party modified-Rabin signing protocol in-process:
// for each counter, both parties exponentiate the Jacobi-(+1) hash; the
// combination fails with ErrSignRetry when the hash was not a residue, and
// the protocol advances the counter (expected two rounds).
func RabinSign(sem *RabinSEM, id string, pk *rabin.PublicKey, user *rabin.HalfKey, msg []byte) (*rabin.Signature, error) {
	for ctr := uint32(0); ctr < 128; ctr++ {
		h := rabin.HashToJacobiPlus(pk.N, msg, ctr)
		semPart, err := sem.HalfOp(id, h)
		if err != nil {
			return nil, err
		}
		sig, err := rabin.CombineSignature(pk, msg, ctr, user.Op(h), semPart)
		if err == nil {
			return sig, nil
		}
		if !errors.Is(err, rabin.ErrSignRetry) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("core: no QR hash in 128 counters (astronomically unlikely)")
}

package bench

import (
	"crypto/rand"
	"fmt"

	"repro/internal/core"
	"repro/internal/mrsa"
	"repro/internal/pairing"
)

// SizesConfig parameterizes the T1 experiment.
type SizesConfig struct {
	Pairing *pairing.Params // defaults to the paper set (|q|=160, |p|=512)
	RSABits int             // defaults to 1024
	MsgLen  int             // plaintext length, defaults to 32 bytes
}

// Sizes runs T1: it builds one identity in the mediated IBE at the pairing
// parameters and one in IB-mRSA at the RSA size, then measures the actual
// serialized artifacts — private key material per party, public key
// material, and a ciphertext for the same plaintext length.
//
// Expected shape (paper §4.1): mediated-IBE private keys are compressed G1
// points — 512-bit level here, "or even 160 bits" with subgroup-position
// encodings — versus 1024 bits for IB-mRSA; the IBE ciphertext beats the
// 1024-bit RSA block once parameters are small.
func Sizes(cfg SizesConfig) (*Table, error) {
	if cfg.Pairing == nil {
		pp, err := pairing.Paper()
		if err != nil {
			return nil, err
		}
		cfg.Pairing = pp
	}
	if cfg.RSABits == 0 {
		cfg.RSABits = 1024
	}
	if cfg.MsgLen == 0 {
		cfg.MsgLen = 32
	}

	// Mediated IBE artifacts.
	pkg, err := core.NewMediatedPKG(rand.Reader, cfg.Pairing, cfg.MsgLen)
	if err != nil {
		return nil, err
	}
	userHalf, semHalf, err := pkg.SplitExtract(rand.Reader, "alice@example.com")
	if err != nil {
		return nil, err
	}
	msg := make([]byte, cfg.MsgLen)
	ct, err := pkg.Public().Encrypt(rand.Reader, "alice@example.com", msg)
	if err != nil {
		return nil, err
	}
	ibeUserKey := len(userHalf.D.Marshal())
	ibeSEMKey := len(semHalf.D.Marshal())
	ibeCipher := len(ct.Marshal())
	ibePublic := len(pkg.Public().PPub.Marshal())

	// IB-mRSA artifacts.
	var ibpkg *mrsa.IBPKG
	switch cfg.RSABits {
	case 1024:
		ibpkg, err = mrsa.FixedPaperPKG()
	case 512:
		ibpkg, err = mrsa.FixedTestPKG()
	default:
		ibpkg, err = mrsa.NewIBPKG(rand.Reader, cfg.RSABits)
	}
	if err != nil {
		return nil, err
	}
	rsaUser, rsaSEM, err := ibpkg.IssueHalves(rand.Reader, "alice@example.com")
	if err != nil {
		return nil, err
	}
	rsaPub := ibpkg.IdentityPublicKey("alice@example.com")
	rsaCT, err := rsaPub.EncryptOAEP(rand.Reader, msg[:min(cfg.MsgLen, rsaPub.MaxMessageLen())])
	if err != nil {
		return nil, err
	}
	rsaUserKey := len(rsaUser.Half.Bytes()) //cryptolint:public (size measurement; only the length reaches the table)
	rsaSEMKey := len(rsaSEM.Half.Bytes())   //cryptolint:public (size measurement; only the length reaches the table)
	rsaCipher := len(rsaCT)
	rsaPublic := len(rsaPub.N.Bytes()) //cryptolint:public (the public modulus size)

	qBits := cfg.Pairing.Q().BitLen()
	pBits := cfg.Pairing.P().BitLen()
	return &Table{
		ID: "T1",
		Caption: fmt.Sprintf("key and ciphertext sizes: mediated IBE (|q|=%d, |p|=%d) vs IB-mRSA (%d-bit), %d-byte plaintext",
			qBits, pBits, cfg.RSABits, cfg.MsgLen),
		Columns: []string{"artifact", "mediated IBE (bits)", "IB-mRSA (bits)"},
		Rows: [][]string{
			{"user private-key half", bits(ibeUserKey), bits(rsaUserKey)},
			{"SEM private-key half", bits(ibeSEMKey), bits(rsaSEMKey)},
			{"system public value (P_pub / n)", bits(ibePublic), bits(rsaPublic)},
			{"ciphertext", bits(ibeCipher), bits(rsaCipher)},
		},
		Notes: []string{
			"IBE key halves are compressed G1 points (x + sign); the paper's §4.1 claim is 512 or even 160 bits vs 1024 for IB-mRSA",
			"the IBE subgroup position carries only |q| bits of entropy; a subgroup-index encoding would reach the paper's 160-bit figure",
		},
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package lru

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestBasicGetAdd(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	if evicted := c.Add("a", 1); evicted {
		t.Fatal("insert below capacity evicted")
	}
	v, ok := c.Get("a")
	if !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 evictions", s)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a") // a is now more recent than b
	if evicted := c.Add("c", 3); !evicted {
		t.Fatal("over-capacity insert did not evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestAddReplacesInPlace(t *testing.T) {
	c := New[string, int](1)
	c.Add("a", 1)
	if evicted := c.Add("a", 2); evicted {
		t.Fatal("replacing an existing key evicted")
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestRemoveIsNotAnEviction(t *testing.T) {
	c := New[string, int](4)
	c.Add("a", 1)
	if !c.Remove("a") {
		t.Fatal("Remove of present key reported absent")
	}
	if c.Remove("a") {
		t.Fatal("Remove of absent key reported present")
	}
	if got := c.Stats().Evictions; got != 0 {
		t.Fatalf("deliberate removal counted as eviction (%d)", got)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after removal", c.Len())
	}
}

func TestCapacityClamped(t *testing.T) {
	c := New[string, int](0)
	c.Add("a", 1)
	c.Add("b", 2)
	if c.Len() != 1 {
		t.Fatalf("capacity-0 cache holds %d entries, want clamp to 1", c.Len())
	}
}

func TestPurgeAndResize(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 8; i++ {
		c.Add(i, i)
	}
	c.Resize(3)
	if c.Len() != 3 {
		t.Fatalf("len after Resize(3) = %d", c.Len())
	}
	// The three survivors are the most recently inserted.
	for i := 5; i < 8; i++ {
		if _, ok := c.Get(i); !ok {
			t.Fatalf("entry %d missing after resize", i)
		}
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after Purge = %d", c.Len())
	}
	if c.Stats().Evictions != 5 {
		t.Fatalf("evictions = %d, want 5 from resize only", c.Stats().Evictions)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%32)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Errorf("corrupt value %d", v)
				}
				c.Add(k, i)
				if i%17 == 0 {
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

func TestInstrumentExportsCounters(t *testing.T) {
	c := New[string, int](2)
	reg := obs.NewRegistry()
	c.Instrument(reg, "test_cache")
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a")
	c.Get("zzz")
	c.Add("c", 3) // evicts b

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lru_hits_total{cache="test_cache"} 1`,
		`lru_misses_total{cache="test_cache"} 1`,
		`lru_evictions_total{cache="test_cache"} 1`,
		`lru_entries{cache="test_cache"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("lru metrics missing %q:\n%s", want, out)
		}
	}
}

package bench

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/bf"
	"repro/internal/curve"
	"repro/internal/pairing"
)

// BaselineEntry is one timed primitive in a baseline snapshot.
// AllocsPerOp is the mean number of heap allocations per iteration — nil in
// snapshots taken before the column existed, so comparisons can tell
// "unmeasured" from a genuine zero (the limb-arithmetic entries are gated at
// exactly zero).
type BaselineEntry struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	Iters       int      `json:"iters"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// BaselineReport is a machine-readable snapshot of the group-arithmetic
// primitives the schemes are built from. A committed snapshot gives future
// changes a reference point: rerun with the same parameter set and compare
// ratios (absolute numbers are machine-dependent; the ratios between entries
// and between two runs on one machine are the signal).
type BaselineReport struct {
	Params    string          `json:"params"`
	QBits     int             `json:"q_bits"`
	PBits     int             `json:"p_bits"`
	GoVersion string          `json:"go_version"`
	GOARCH    string          `json:"goarch"`
	Entries   []BaselineEntry `json:"entries"`
}

// Baseline times the primitive operations behind every scheme: the pairing
// (optimized and full-Miller oracle), the three scalar-multiplication
// strategies, fixed-base vs generic GT exponentiation, and one BF FullIdent
// encrypt/decrypt pair. Each body runs for at least minIters iterations and
// minDuration wall time, whichever is larger.
func Baseline(pp *pairing.Params, minIters int, minDuration time.Duration) (*BaselineReport, error) {
	P := pp.Generator()
	Q, err := pp.Curve().HashToPoint("baseline", []byte("x"))
	if err != nil {
		return nil, err
	}
	k, err := rand.Int(rand.Reader, pp.Q())
	if err != nil {
		return nil, err
	}
	g, err := pp.Pair(P, Q)
	if err != nil {
		return nil, err
	}
	gtTab, err := pairing.NewGTTable(g)
	if err != nil {
		return nil, err
	}
	fp, err := pp.NewFixedPair(P)
	if err != nil {
		return nil, err
	}
	pp.GeneratorMul(k) // build the lazy generator table outside the timers

	pkg, err := bf.Setup(rand.Reader, pp, 32)
	if err != nil {
		return nil, err
	}
	pub := pkg.Public()
	const id = "baseline@example.com"
	key, err := pkg.Extract(id)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 32)
	ct, err := pub.Encrypt(rand.Reader, id, msg)
	if err != nil {
		return nil, err
	}

	// Field-layer bodies: the F_p² tower and the raw Montgomery limb ops it
	// is built from. These are the entries the zero-alloc gate watches.
	fld := pp.Field()
	e1 := fld.NewElement(P.X(), P.Y())
	e2 := fld.NewElement(Q.X(), Q.Y())
	eOut := fld.One()
	F := fld.Fp()
	fx, fy, fz := F.NewElt(), F.NewElt(), F.NewElt()
	if err := F.FromBig(fx, P.X()); err != nil {
		return nil, err
	}
	if err := F.FromBig(fy, Q.X()); err != nil {
		return nil, err
	}

	bodies := []struct {
		name string
		run  func() error
	}{
		{"fp.add", func() error { F.Add(fz, fx, fy); return nil }},
		{"fp.sub", func() error { F.Sub(fz, fx, fy); return nil }},
		{"fp.mul", func() error { F.Mul(fz, fx, fy); return nil }},
		{"fp.square", func() error { F.Square(fz, fx); return nil }},
		{"gf.mul", func() error { eOut.Mul(e1, e2); return nil }},
		{"gf.square", func() error { eOut.Square(e1); return nil }},
		{"pair", func() error { _, err := pp.Pair(P, Q); return err }},
		{"pair.full-miller", func() error { _, err := pp.PairFull(P, Q); return err }},
		{"pair.fixed", func() error { _, err := fp.Pair(Q); return err }},
		{"pair.fixed.precompute", func() error { _, err := pp.NewFixedPair(P); return err }},
		{"multipair.2", func() error {
			_, err := pp.MultiPair([]*curve.Point{P, Q}, []*curve.Point{Q, P})
			return err
		}},
		{"scalarmul.variable-wnaf", func() error { P.ScalarMul(k); return nil }},
		{"scalarmul.fixed-base", func() error { pp.GeneratorMul(k); return nil }},
		{"scalarmul.binary-ladder", func() error { P.ScalarMulBinary(k); return nil }},
		{"gtexp.square-multiply", func() error { _, err := g.Exp(k); return err }},
		{"gtexp.fixed-base", func() error { gtTab.Exp(k); return nil }},
		{"bf.encrypt", func() error { _, err := pub.Encrypt(rand.Reader, id, msg); return err }},
		{"bf.decrypt", func() error { _, err := pub.Decrypt(key, ct); return err }},
	}

	report := &BaselineReport{
		Params:    pp.Name(),
		QBits:     pp.Q().BitLen(),
		PBits:     pp.P().BitLen(),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	var m0, m1 runtime.MemStats
	for _, body := range bodies {
		iters, batch := 0, 1
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for {
			for j := 0; j < batch; j++ {
				if err := body.run(); err != nil {
					return nil, fmt.Errorf("baseline %s: %w", body.name, err)
				}
			}
			iters += batch
			elapsed := time.Since(start)
			if elapsed >= minDuration && iters >= minIters {
				break
			}
			if batch == 1 && iters >= 64 && elapsed < minDuration/64 {
				// Sub-microsecond body (the field-layer entries): batch
				// iterations so the clock reads stop dominating the timing.
				batch = 256
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		// Rounded to 1e-4 so a stray background-runtime allocation across
		// millions of iterations does not smear the zero-alloc entries.
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(iters)
		allocs = math.Round(allocs*1e4) / 1e4
		report.Entries = append(report.Entries, BaselineEntry{
			Name:        body.name,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			Iters:       iters,
			AllocsPerOp: &allocs,
		})
	}
	return report, nil
}

// JSON renders the report with stable formatting for committing to the repo.
func (r *BaselineReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Package shard maps identities onto SEM shards with a consistent-hash
// ring. One SEM daemon serves one shard; the ring decides, purely
// client-side, which shard owns an identity and which shards stand behind
// it for failover.
//
// The mapping must be stable across processes and releases — the client
// that registered an identity and the client that decrypts with it five
// minutes later must land on the same shard — so the ring hashes with
// FNV-1a over the literal node name and identity string, never with
// anything seeded or randomized. Each node contributes a configurable
// number of virtual nodes so load spreads evenly even with few shards, and
// the replica order for an identity is the deterministic clockwise walk
// from its hash, skipping duplicates — the same failover sequence on every
// client.
//
// Rebalances (SetNodes) are measured, not guessed: the ring counts how
// many virtual-node points changed owner, which is the fraction of the
// identity space that moved — the churn a deployment pays for growing or
// shrinking the fleet.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// DefaultVirtualNodes is the per-node virtual-node count when the caller
// passes 0. 64 keeps the worst/best shard load ratio within a few percent
// for small fleets while the ring stays tiny (64·N points).
const DefaultVirtualNodes = 64

// ErrNoNodes is returned by New/SetNodes for an empty node list.
var ErrNoNodes = errors.New("shard: ring has no nodes")

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the index of the node that owns the arc ending at it.
type ringPoint struct {
	hash uint64
	node int32
}

// Ring is a consistent-hash ring over a set of named nodes (shard
// addresses). Safe for concurrent use; lookups take a read lock only.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  []string
	points []ringPoint // sorted by hash

	// Metrics are nil-safe: an uninstrumented ring records into live,
	// unregistered counters.
	lookups  *obs.Counter
	rebuilds *obs.Counter
	moved    *obs.Counter
	sizeG    *obs.Gauge
}

// New builds a ring over nodes (deduplicated, order-insensitive) with
// vnodes virtual nodes per node (0 selects DefaultVirtualNodes).
func New(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	if err := r.SetNodes(nodes); err != nil {
		return nil, err
	}
	return r, nil
}

// Instrument registers the ring's series with reg: shard_ring_lookups_total,
// shard_ring_rebuilds_total, shard_ring_moved_vnodes_total and the
// shard_ring_nodes gauge. Call before serving traffic.
func (r *Ring) Instrument(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookups = reg.Counter("shard_ring_lookups_total", "identity→shard ring lookups")
	r.rebuilds = reg.Counter("shard_ring_rebuilds_total", "ring rebuilds (SetNodes calls)")
	r.moved = reg.Counter("shard_ring_moved_vnodes_total", "virtual nodes whose owner changed across rebuilds (rebalance churn)")
	r.sizeG = reg.Gauge("shard_ring_nodes", "nodes currently on the ring")
	r.sizeG.Set(int64(len(r.nodes)))
}

// hashString is the stable 64-bit FNV-1a the whole ring keys on.
func hashString(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
	}
	return h.Sum64()
}

// SetNodes replaces the node set and rebuilds the ring, recording how many
// virtual-node points changed owner (the rebalance churn). Duplicate names
// collapse to one node.
func (r *Ring) SetNodes(nodes []string) error {
	seen := make(map[string]bool, len(nodes))
	distinct := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] { //cryptolint:public (shard-name dedup; node names are deployment metadata)
			continue
		}
		seen[n] = true //cryptolint:public (shard-name dedup; node names are deployment metadata)
		distinct = append(distinct, n)
	}
	if len(distinct) == 0 {
		return ErrNoNodes
	}
	// Sort so the ring is identical no matter the order the caller listed
	// the fleet in — the stability guarantee is over the *set* of nodes.
	sort.Strings(distinct)

	points := make([]ringPoint, 0, len(distinct)*r.vnodes)
	for ni, name := range distinct {
		for v := 0; v < r.vnodes; v++ {
			points = append(points, ringPoint{
				hash: hashString(name, "#", strconv.Itoa(v)),
				node: int32(ni),
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Hash ties (astronomically rare) break by node index so the ring
		// stays deterministic.
		return points[i].node < points[j].node
	})

	r.mu.Lock()
	defer r.mu.Unlock()
	// Churn: a virtual-node point stands for the arc of identity space
	// ending at it; count the old points whose owning *name* differs under
	// the new ring. On first build there is nothing to move.
	if len(r.points) > 0 {
		moved := 0
		for _, p := range r.points {
			oldName := r.nodes[p.node]
			newName := distinct[ownerOf(points, p.hash)]
			if oldName != newName { //cryptolint:public (rebalance-churn accounting on node names; deployment metadata)
				moved++
			}
		}
		if r.moved != nil {
			r.moved.Add(uint64(moved))
		}
	}
	if r.rebuilds != nil {
		r.rebuilds.Inc()
	}
	if r.sizeG != nil {
		r.sizeG.Set(int64(len(distinct)))
	}
	r.nodes = distinct
	r.points = points
	return nil
}

// ownerOf returns the node index of the first ring point at or clockwise
// of h (wrapping past the top of the circle).
func ownerOf(points []ringPoint, h uint64) int32 {
	i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
	if i == len(points) {
		i = 0
	}
	return points[i].node
}

// Nodes returns the current node set (sorted, deduplicated).
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len reports the number of nodes on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Lookup returns the node owning id — the shard every client must send
// this identity's operations to.
func (r *Ring) Lookup(id string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.lookups != nil {
		r.lookups.Inc()
	}
	return r.nodes[ownerOf(r.points, hashString(id))]
}

// leaderToken is the reserved key whose ring owner is the fleet's leader
// shard — the daemon that sequences revocation mutations for replication.
// The NUL bytes keep it out of the identity namespace (identities are
// caller-facing strings), so no identity can collide with the leader
// designation. Because the token is fixed and the ring is deterministic
// over the node *set*, every client and every daemon that knows the fleet
// list independently agrees on the same leader without coordination.
const leaderToken = "\x00repl-leader\x00"

// Leader returns the node designated as the fleet's revocation leader:
// the owner of a fixed reserved key. Deterministic for a given node set;
// changes only when a rebalance moves the token's arc.
//
// REBALANCE HAZARD: the designation is a pure function of the node *set*,
// while the daemon actually running as leader is fixed at startup by
// -repl-leader. Adding or removing any shard can silently move the token's
// arc onto a daemon running as a follower — from that moment the ring
// points authoritative revocation writes at a shard that refuses them with
// not_leader. sem.ShardedClient recovers by probing repl.status for the
// daemon whose status reports leadership, so mutations keep landing, but
// the designation stays wrong until the operator restarts the fleet with
// -repl-leader on the newly designated shard (and a bumped -repl-epoch).
func (r *Ring) Leader() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[ownerOf(r.points, hashString(leaderToken))]
}

// Replicas appends to dst the first k distinct nodes on the clockwise walk
// from id's hash: dst[0] is the owner (same node Lookup returns), the rest
// the deterministic failover order. k is clamped to the node count. The
// returned slice reuses dst's backing array, so a caller with a scratch
// slice performs no allocation.
func (r *Ring) Replicas(dst []string, id string, k int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.lookups != nil {
		r.lookups.Inc()
	}
	if k <= 0 || k > len(r.nodes) {
		k = len(r.nodes)
	}
	dst = dst[:0]
	h := hashString(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(dst) < k; i++ {
		name := r.nodes[r.points[(start+i)%len(r.points)].node]
		if !containsStr(dst, name) {
			dst = append(dst, name)
		}
	}
	return dst
}

// containsStr is a linear scan; replica lists are ≤ the fleet size (single
// digits), where a map would cost more than it saves.
func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s { //cryptolint:public (replica-list membership on node names; deployment metadata)
			return true
		}
	}
	return false
}

// Distribution counts, per node, how many of the ids map to it — the
// load-skew introspection semload prints before a run.
func (r *Ring) Distribution(ids []string) map[string]int {
	out := make(map[string]int)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, id := range ids {
		out[r.nodes[ownerOf(r.points, hashString(id))]]++ //cryptolint:public (load-skew introspection keyed by node name; deployment metadata)
	}
	return out
}

// String renders the ring topology for logs.
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("ring{%d nodes, %d vnodes/node}", len(r.nodes), r.vnodes)
}

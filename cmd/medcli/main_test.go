package main

import (
	"bytes"
	"encoding/base64"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/keyfile"
	"repro/internal/sem"
)

// cliWorld writes a deployment to disk and starts an in-process SEM daemon
// — the full environment medcli expects.
type cliWorld struct {
	dir     string
	semAddr string
}

func newCLIWorld(t *testing.T) *cliWorld {
	t.Helper()
	d, err := keyfile.NewDeployment(keyfile.DeploymentConfig{ParamSet: "toy", MsgLen: 48, RSABits: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"alice@example.com", "bob@example.com"} {
		if err := d.Enroll(id); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := d.Write(dir); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	ibe, gdh, rsa, err := d.Store().BuildSEMs(d.System(), reg)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := d.System().Params()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := sem.NewServer(sem.Config{Registry: reg, IBE: ibe, GDH: gdh, RSA: rsa, Pairing: pp})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return &cliWorld{dir: dir, semAddr: ln.Addr().String()}
}

func (w *cliWorld) exec(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	base := []string{
		"-system", filepath.Join(w.dir, "system.json"),
		"-sem", w.semAddr,
	}
	err := run(append(base, args...), strings.NewReader(stdin), &out)
	return out.String(), err
}

func (w *cliWorld) userFlag(id string) []string {
	return []string{"-user", filepath.Join(w.dir, "users", keyfile.UserFileName(id))}
}

func TestCLIEncryptDecrypt(t *testing.T) {
	w := newCLIWorld(t)
	ct, err := w.exec(t, "top secret", "encrypt", "-to", "bob@example.com")
	if err != nil {
		t.Fatal(err)
	}
	args := append(w.userFlag("bob@example.com"), "decrypt")
	plain, err := w.exec(t, ct, args...)
	if err != nil {
		t.Fatal(err)
	}
	if plain != "top secret" {
		t.Fatalf("decrypted %q", plain)
	}
}

func TestCLISignVerify(t *testing.T) {
	w := newCLIWorld(t)
	doc := "the signed document"
	args := append(w.userFlag("alice@example.com"), "sign")
	sig, err := w.exec(t, doc, args...)
	if err != nil {
		t.Fatal(err)
	}
	sigFile := filepath.Join(w.dir, "sig.b64")
	if err := os.WriteFile(sigFile, []byte(sig), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := w.exec(t, doc, "verify", "-id", "alice@example.com", "-sig", sigFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "signature OK") {
		t.Fatalf("verify output: %q", out)
	}
	// Wrong document fails.
	if _, err := w.exec(t, "other doc", "verify", "-id", "alice@example.com", "-sig", sigFile); err == nil {
		t.Fatal("verify accepted a different document")
	}
}

func TestCLIRevocationFlow(t *testing.T) {
	w := newCLIWorld(t)
	ct, err := w.exec(t, "msg", "encrypt", "-to", "bob@example.com")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.exec(t, "", "revoke", "-id", "bob@example.com", "-reason", "test"); err != nil {
		t.Fatal(err)
	}
	out, err := w.exec(t, "", "status", "-id", "bob@example.com")
	if err != nil || !strings.Contains(out, "REVOKED") {
		t.Fatalf("status: %q %v", out, err)
	}
	args := append(w.userFlag("bob@example.com"), "decrypt")
	if _, err := w.exec(t, ct, args...); err == nil {
		t.Fatal("revoked identity decrypted")
	}
	if _, err := w.exec(t, "", "unrevoke", "-id", "bob@example.com"); err != nil {
		t.Fatal(err)
	}
	plain, err := w.exec(t, ct, args...)
	if err != nil || plain != "msg" {
		t.Fatalf("post-unrevoke decrypt: %q %v", plain, err)
	}
}

func TestCLIErrors(t *testing.T) {
	w := newCLIWorld(t)
	if _, err := w.exec(t, "", "bogus"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := w.exec(t, "x"); err == nil {
		t.Error("missing command accepted")
	}
	if _, err := w.exec(t, "x", "encrypt"); err == nil {
		t.Error("encrypt without -to accepted")
	}
	if _, err := w.exec(t, "x", "decrypt"); err == nil {
		t.Error("decrypt without -user accepted")
	}
	if _, err := w.exec(t, "x", "sign"); err == nil {
		t.Error("sign without -user accepted")
	}
	if _, err := w.exec(t, "", "revoke"); err == nil {
		t.Error("revoke without -id accepted")
	}
	// Message too long for the 48-byte block (47 usable).
	long := strings.Repeat("x", 48)
	if _, err := w.exec(t, long, "encrypt", "-to", "bob@example.com"); err == nil {
		t.Error("oversized plaintext accepted")
	}
}

func TestPadUnpad(t *testing.T) {
	block, err := pad([]byte("abc"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(block) != 16 || block[0] != 3 {
		t.Fatalf("block = %v", block)
	}
	msg, err := unpad(block)
	if err != nil || string(msg) != "abc" {
		t.Fatalf("unpad: %q %v", msg, err)
	}
	if _, err := pad(make([]byte, 16), 16); err == nil {
		t.Error("overfull pad accepted")
	}
	if _, err := unpad([]byte{200, 1, 2}); err == nil {
		t.Error("corrupt length byte accepted")
	}
	if _, err := unpad(nil); err == nil {
		t.Error("empty block accepted")
	}
}

func TestCLIList(t *testing.T) {
	w := newCLIWorld(t)
	out, err := w.exec(t, "", "list")
	if err != nil || !strings.Contains(out, "no revoked identities") {
		t.Fatalf("empty list: %q %v", out, err)
	}
	if _, err := w.exec(t, "", "revoke", "-id", "bob@example.com", "-reason", "offboarded"); err != nil {
		t.Fatal(err)
	}
	out, err = w.exec(t, "", "list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bob@example.com") || !strings.Contains(out, "offboarded") {
		t.Fatalf("list output: %q", out)
	}
}

// newShardedCLIWorld is newCLIWorld with n independent SEM shards, each
// serving the full deployment store (as after a fleet-wide enrollment
// broadcast).
func newShardedCLIWorld(t *testing.T, n int) *cliWorld {
	t.Helper()
	d, err := keyfile.NewDeployment(keyfile.DeploymentConfig{ParamSet: "toy", MsgLen: 48, RSABits: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"alice@example.com", "bob@example.com", "carol@example.com"} {
		if err := d.Enroll(id); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := d.Write(dir); err != nil {
		t.Fatal(err)
	}
	pp, err := d.System().Params()
	if err != nil {
		t.Fatal(err)
	}
	w := &cliWorld{dir: dir}
	var addrs []string
	for i := 0; i < n; i++ {
		reg := core.NewRegistry()
		ibe, gdh, rsa, err := d.Store().BuildSEMs(d.System(), reg)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := sem.NewServer(sem.Config{Registry: reg, IBE: ibe, GDH: gdh, RSA: rsa, Pairing: pp})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	w.semAddr = strings.Join(addrs, ",")
	return w
}

func (w *cliWorld) execSharded(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	base := []string{
		"-system", filepath.Join(w.dir, "system.json"),
		"-shards", w.semAddr,
	}
	err := run(append(base, args...), strings.NewReader(stdin), &out)
	return out.String(), err
}

// TestCLISharded drives the user-facing flows through -shards routing:
// mediated decryption routes to the owning shard, revocation broadcasts to
// the whole fleet, and list unions the shards' journals.
func TestCLISharded(t *testing.T) {
	w := newShardedCLIWorld(t, 3)

	ct, err := w.execSharded(t, "fleet secret", "encrypt", "-to", "bob@example.com")
	if err != nil {
		t.Fatal(err)
	}
	args := append(w.userFlag("bob@example.com"), "decrypt")
	plain, err := w.execSharded(t, ct, args...)
	if err != nil {
		t.Fatal(err)
	}
	if plain != "fleet secret" {
		t.Fatalf("decrypted %q", plain)
	}

	signArgs := append(w.userFlag("alice@example.com"), "sign")
	sig, err := w.execSharded(t, "doc", signArgs...)
	if err != nil {
		t.Fatal(err)
	}
	sigFile := filepath.Join(w.dir, "sig.b64")
	if err := os.WriteFile(sigFile, []byte(sig), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := w.execSharded(t, "doc", "verify", "-id", "alice@example.com", "-sig", sigFile); err != nil || !strings.Contains(out, "signature OK") {
		t.Fatalf("verify: %q %v", out, err)
	}

	// Revocation must bite on EVERY shard: decrypt routes by ring, so if
	// the broadcast missed the owning shard the next decrypt would succeed.
	if _, err := w.execSharded(t, "", "revoke", "-id", "bob@example.com", "-reason", "fleet test"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.execSharded(t, ct, args...); err == nil {
		t.Fatal("revoked identity decrypted through the fleet")
	}
	out, err := w.execSharded(t, "", "status", "-id", "bob@example.com")
	if err != nil || !strings.Contains(out, "REVOKED") {
		t.Fatalf("status: %q %v", out, err)
	}
	out, err = w.execSharded(t, "", "list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bob@example.com") || strings.Count(out, "bob@example.com") != 1 {
		t.Fatalf("list union wrong: %q", out)
	}
	if _, err := w.execSharded(t, "", "unrevoke", "-id", "bob@example.com"); err != nil {
		t.Fatal(err)
	}
	plain, err = w.execSharded(t, ct, args...)
	if err != nil || plain != "fleet secret" {
		t.Fatalf("post-unrevoke decrypt: %q %v", plain, err)
	}
}

// TestCLIShardedBatchDecrypt routes a batch across the ring: every line
// must come back in input order even though the ids map to one shard and
// the frames split per shard under the hood.
func TestCLIShardedBatchDecrypt(t *testing.T) {
	w := newShardedCLIWorld(t, 3)
	var lines []string
	msgs := []string{"first", "second", "third", "fourth"}
	for _, m := range msgs {
		ct, err := w.execSharded(t, m, "encrypt", "-to", "carol@example.com")
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, strings.TrimSpace(ct))
	}
	args := append(w.userFlag("carol@example.com"), "decrypt", "-batch")
	out, err := w.execSharded(t, strings.Join(lines, "\n")+"\n", args...)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Fields(strings.TrimSpace(out))
	if len(got) != len(msgs) {
		t.Fatalf("got %d lines for %d inputs:\n%s", len(got), len(msgs), out)
	}
	for i, m := range msgs {
		raw, err := base64.StdEncoding.DecodeString(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != m {
			t.Errorf("line %d: got %q want %q", i, raw, m)
		}
	}
}

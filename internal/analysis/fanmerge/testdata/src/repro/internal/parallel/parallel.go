// Package parallel stubs the worker-fan API for fixture use; the analyzer
// matches callees by import path and name, not by behaviour.
package parallel

// Fan runs fn(i) for every i in [0, n).
func Fan(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// FanChunks runs chunk over [0, n) in one piece.
func FanChunks(n int, chunk func(lo, hi int)) {
	if n > 0 {
		chunk(0, n)
	}
}

package gf

import (
	"math/big"
	"testing"
)

// paperPHex is the 512-bit characteristic of the committed "paper"
// parameter set — the field size every headline benchmark runs at.
const paperPHex = "b282da5c02935d5836473139df6751ee8e1fb07c917309c04088843b36435876d65dd173ce4ac63f883c05a59ad3a134e30ef32607e2a49c71e515d4dcc47eef"

func benchField(b *testing.B) (*Field, *big.Int) {
	b.Helper()
	p, ok := new(big.Int).SetString(paperPHex, 16)
	if !ok {
		b.Fatal("bad paper prime literal")
	}
	f, err := NewField(p)
	if err != nil {
		b.Fatal(err)
	}
	return f, p
}

func benchElements(b *testing.B) (*Field, *Element, *Element) {
	f, p := benchField(b)
	x := f.NewElement(new(big.Int).Div(p, big.NewInt(3)), new(big.Int).Div(p, big.NewInt(5)))
	y := f.NewElement(new(big.Int).Div(p, big.NewInt(7)), new(big.Int).Div(p, big.NewInt(11)))
	return f, x, y
}

func BenchmarkMul(b *testing.B) {
	_, x, y := benchElements(b)
	out := new(Element)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Mul(x, y)
	}
}

func BenchmarkSquare(b *testing.B) {
	_, x, _ := benchElements(b)
	out := new(Element)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Square(x)
	}
}

func BenchmarkSquareUnitary(b *testing.B) {
	f, x, _ := benchElements(b)
	// Make x unitary: u = conj(x)/x is norm-1 for any nonzero x.
	inv, err := new(Element).Inverse(x)
	if err != nil {
		b.Fatal(err)
	}
	u := new(Element).Conjugate(x)
	u.Mul(u, inv)
	_ = f
	out := new(Element)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.SquareUnitary(u)
	}
}

func BenchmarkInverse(b *testing.B) {
	_, x, _ := benchElements(b)
	out := new(Element)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := out.Inverse(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	_, x, y := benchElements(b)
	out := new(Element)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Add(x, y)
	}
}

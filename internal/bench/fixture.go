package bench

import (
	"crypto/rand"
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/mrsa"
	"repro/internal/pairing"
	"repro/internal/sem"
)

// World is a fully-enrolled deployment of every scheme under test: PKGs,
// a SEM daemon on a loopback listener, and one user ("alice") enrolled in
// the mediated IBE, the mediated GDH signature and IB-mRSA. The experiment
// drivers share it so every number comes from the same code paths the
// examples and tests exercise.
type World struct {
	Pairing *pairing.Params
	MsgLen  int
	ID      string

	IBEPKG  *core.MediatedPKG
	IBESEM  *core.IBESEM
	IBEUser *core.UserKeyHalf
	IBESEMK *core.SEMKeyHalf

	GDHAuth *core.GDHAuthority
	GDHSEM  *core.GDHSEM
	GDHUser *core.GDHUserKey
	GDHSEMK *core.GDHSEMKey

	RSAPKG  *mrsa.IBPKG
	RSASEM  *core.RSASEM
	RSAPub  *mrsa.PublicKey
	RSAUser *mrsa.HalfKey
	RSASEMK *mrsa.HalfKey

	Registry *core.Registry

	server *sem.Server
	addr   string
}

// WorldConfig selects the parameter sizes of a World.
type WorldConfig struct {
	Pairing *pairing.Params // default: paper parameters
	RSABits int             // 512 or 1024 (fixed moduli); default 1024
	MsgLen  int             // default 32
	// StartServer spins up the TCP SEM daemon (needed by T2/F3).
	StartServer bool
}

// NewWorld builds and enrolls the deployment.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Pairing == nil {
		pp, err := pairing.Paper()
		if err != nil {
			return nil, err
		}
		cfg.Pairing = pp
	}
	if cfg.MsgLen == 0 {
		cfg.MsgLen = 32
	}
	if cfg.RSABits == 0 {
		cfg.RSABits = 1024
	}
	w := &World{
		Pairing:  cfg.Pairing,
		MsgLen:   cfg.MsgLen,
		ID:       "alice@example.com",
		Registry: core.NewRegistry(),
	}

	var err error
	if w.IBEPKG, err = core.NewMediatedPKG(rand.Reader, cfg.Pairing, cfg.MsgLen); err != nil {
		return nil, fmt.Errorf("ibe pkg: %w", err)
	}
	w.IBESEM = core.NewIBESEM(w.IBEPKG.Public(), w.Registry)
	if w.IBEUser, w.IBESEMK, err = w.IBEPKG.SplitExtract(rand.Reader, w.ID); err != nil {
		return nil, fmt.Errorf("ibe enroll: %w", err)
	}
	w.IBESEM.Register(w.IBESEMK)

	w.GDHAuth = core.NewGDHAuthority(cfg.Pairing)
	w.GDHSEM = core.NewGDHSEM(cfg.Pairing, w.Registry)
	if w.GDHUser, w.GDHSEMK, err = w.GDHAuth.Keygen(rand.Reader, w.ID); err != nil {
		return nil, fmt.Errorf("gdh enroll: %w", err)
	}
	w.GDHSEM.Register(w.GDHSEMK)

	switch cfg.RSABits {
	case 1024:
		w.RSAPKG, err = mrsa.FixedPaperPKG()
	case 512:
		w.RSAPKG, err = mrsa.FixedTestPKG()
	default:
		w.RSAPKG, err = mrsa.NewIBPKG(rand.Reader, cfg.RSABits)
	}
	if err != nil {
		return nil, fmt.Errorf("rsa pkg: %w", err)
	}
	w.RSASEM = core.NewRSASEM(w.Registry)
	if w.RSAUser, w.RSASEMK, err = w.RSAPKG.IssueHalves(rand.Reader, w.ID); err != nil {
		return nil, fmt.Errorf("rsa enroll: %w", err)
	}
	w.RSASEM.Register(w.ID, w.RSASEMK)
	w.RSAPub = w.RSAPKG.IdentityPublicKey(w.ID)

	if cfg.StartServer {
		srv, err := sem.NewServer(sem.Config{
			Registry: w.Registry,
			IBE:      w.IBESEM,
			GDH:      w.GDHSEM,
			RSA:      w.RSASEM,
			Pairing:  cfg.Pairing,
		})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listen: %w", err)
		}
		go func() { _ = srv.Serve(ln) }()
		w.server = srv
		w.addr = ln.Addr().String()
	}
	return w, nil
}

// Addr returns the SEM daemon address ("" when no server was started).
func (w *World) Addr() string { return w.addr }

// Dial opens a client to the World's SEM daemon.
func (w *World) Dial() (*sem.Client, error) {
	if w.addr == "" {
		return nil, fmt.Errorf("bench: world has no running SEM server")
	}
	return sem.Dial(w.addr, w.Pairing, 5*time.Second)
}

// Close shuts the SEM daemon down.
func (w *World) Close() error {
	if w.server == nil {
		return nil
	}
	return w.server.Close()
}

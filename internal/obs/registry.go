package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// kind is the Prometheus metric type of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// collector is one registered series: it can render itself as Prometheus
// text lines and as a JSON value. Export samples the live metric, so
// function-backed series (queue depths, cache stats) are read at scrape
// time.
type collector interface {
	writeProm(w io.Writer, name, labels string) error
	jsonValue() any
}

// series is one labelled instance within a family.
type series struct {
	labels string // rendered, "" or `{k="v",...}`
	col    collector
}

// family groups the series sharing one metric name (and therefore one
// HELP/TYPE header).
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
	index  map[string]*series
}

// Registry holds named metrics and renders them. All methods are safe for
// concurrent use, and safe on a nil *Registry: registration on nil returns
// a live, unregistered metric, so components can be instrumented
// unconditionally and wired to a registry only where one exists.
//
// Registration is idempotent: requesting an existing (name, labels) pair
// of the same kind returns the already-registered metric. A kind conflict
// (the same name registered as two different types) does not panic — the
// conflicting registration returns a functional but unregistered metric,
// and the first registration wins the name. This keeps the API total: a
// misnamed metric degrades visibility, never the serving path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register finds or creates the series for (name, labels); mk builds the
// collector when the series is new.
func (r *Registry) register(k kind, name, help string, labels []Label, mk func() collector) collector {
	if r == nil {
		return mk()
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: k, index: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.kind != k {
		return mk() // kind conflict: live but unregistered
	}
	if s, ok := fam.index[rendered]; ok {
		return s.col
	}
	s := &series{labels: rendered, col: mk()}
	fam.index[rendered] = s
	fam.series = append(fam.series, s)
	return s.col
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.register(kindCounter, name, help, labels, func() collector { return new(Counter) })
	if c, ok := c.(*Counter); ok {
		return c
	}
	return new(Counter)
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.register(kindGauge, name, help, labels, func() collector { return new(Gauge) })
	if g, ok := c.(*Gauge); ok {
		return g
	}
	return new(Gauge)
}

// Histogram registers (or finds) a latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	c := r.register(kindHistogram, name, help, labels, func() collector { return new(Histogram) })
	if h, ok := c.(*Histogram); ok {
		return h
	}
	return new(Histogram)
}

// funcCounter samples a monotonic external counter at export time.
type funcCounter struct{ f func() uint64 }

// funcGauge samples an external instantaneous value at export time.
type funcGauge struct{ f func() int64 }

// CounterFunc registers a counter series whose value is sampled from f at
// every export — the bridge for components that keep their own atomic
// counters (the pairing engine, lru caches). f must be safe for concurrent
// use and monotonic.
func (r *Registry) CounterFunc(name, help string, f func() uint64, labels ...Label) {
	r.register(kindCounter, name, help, labels, func() collector { return &funcCounter{f: f} })
}

// GaugeFunc registers a gauge series sampled from f at every export (queue
// depths, open connections, cache sizes). f must be safe for concurrent
// use.
func (r *Registry) GaugeFunc(name, help string, f func() int64, labels ...Label) {
	r.register(kindGauge, name, help, labels, func() collector { return &funcGauge{f: f} })
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4). Histograms render in seconds, with
// only their non-empty buckets (cumulative counts stay correct — a
// Prometheus histogram may expose any subset of bounds plus +Inf).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.series {
			if err := s.col.writeProm(w, fam.name, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders an expvar-style JSON object: one key per series (name
// plus rendered labels), counters and gauges as numbers, histograms as
// {count, sum_seconds, mean_seconds, p50/p95/p99 in seconds}.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, fam := range r.sortedFamilies() {
		for _, s := range fam.series {
			out[fam.name+s.labels] = s.col.jsonValue()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func (c *Counter) writeProm(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
	return err
}

func (c *Counter) jsonValue() any { return c.Value() }

func (g *Gauge) writeProm(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, g.Value())
	return err
}

func (g *Gauge) jsonValue() any { return g.Value() }

func (c *funcCounter) writeProm(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.f())
	return err
}

func (c *funcCounter) jsonValue() any { return c.f() }

func (g *funcGauge) writeProm(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, g.f())
	return err
}

func (g *funcGauge) jsonValue() any { return g.f() }

// secondsString formats a nanosecond quantity as seconds for exposition.
func secondsString(ns uint64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

func (h *Histogram) writeProm(w io.Writer, name, labels string) error {
	s := h.Snapshot()
	// Labels for _bucket lines need le merged into the existing set.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum uint64
	for i, bound := range bucketBounds {
		c := s.buckets[i]
		cum += c
		if c == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"%s\"} %d\n", name, open, secondsString(bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, secondsString(uint64(s.Sum))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
	return err
}

func (h *Histogram) jsonValue() any {
	s := h.Snapshot()
	return map[string]any{
		"count":        s.Count,
		"sum_seconds":  s.Sum.Seconds(),
		"mean_seconds": s.Mean().Seconds(),
		"p50_seconds":  s.Quantile(0.50).Seconds(),
		"p95_seconds":  s.Quantile(0.95).Seconds(),
		"p99_seconds":  s.Quantile(0.99).Seconds(),
	}
}

// Timer measures one interval into a histogram:
//
//	defer reg.Histogram("op_seconds", "…").Start().Stop()
//
// is spelled here as two small methods so call sites that cannot defer
// (pipelined loops) can hold the start explicitly.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start begins timing against h.
func (h *Histogram) Start() Timer {
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time.
func (t Timer) Stop() {
	t.h.Observe(time.Since(t.start))
}

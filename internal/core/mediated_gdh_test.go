package core

import (
	"crypto/rand"
	"errors"
	"testing"

	"repro/internal/bls"
	"repro/internal/pairing"
)

func gdhFixture(t *testing.T) (*GDHAuthority, *GDHSEM) {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	return NewGDHAuthority(pp), NewGDHSEM(pp, NewRegistry())
}

func gdhEnroll(t *testing.T, ta *GDHAuthority, sem *GDHSEM, id string) *GDHUserKey {
	t.Helper()
	user, semHalf, err := ta.Keygen(rand.Reader, id)
	if err != nil {
		t.Fatal(err)
	}
	sem.Register(semHalf)
	return user
}

func TestMediatedGDHSignVerify(t *testing.T) {
	ta, sem := gdhFixture(t)
	key := gdhEnroll(t, ta, sem, "signer@example.com")
	msg := []byte("the contract text")
	sig, err := Sign(sem, key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := key.Public.Verify(msg, sig); err != nil {
		t.Fatalf("mediated signature invalid: %v", err)
	}
	// Verifier needs only (P, R); signature rejects other messages.
	if err := key.Public.Verify([]byte("other"), sig); err == nil {
		t.Fatal("signature verified for a different message")
	}
}

func TestMediatedMatchesUnsplitSignature(t *testing.T) {
	// Combined halves must equal the deterministic signature of the full
	// scalar.
	ta, sem := gdhFixture(t)
	user, semHalf, _ := ta.Keygen(rand.Reader, "signer@example.com")
	sem.Register(semHalf)
	msg := []byte("determinism")
	sig, err := Sign(sem, user, msg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RecombineGDHKey(user, semHalf)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := full.Sign(msg)
	if !sig.Equal(direct) {
		t.Fatal("mediated and unsplit signatures differ")
	}
}

func TestGDHRevocationStopsSigning(t *testing.T) {
	ta, sem := gdhFixture(t)
	key := gdhEnroll(t, ta, sem, "signer@example.com")
	msg := []byte("m")
	if _, err := Sign(sem, key, msg); err != nil {
		t.Fatalf("pre-revocation signing failed: %v", err)
	}
	sem.Registry().Revoke("signer@example.com", "key compromise")
	if _, err := Sign(sem, key, msg); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked identity still signs: %v", err)
	}
	sem.Registry().Unrevoke("signer@example.com")
	if _, err := Sign(sem, key, msg); err != nil {
		t.Fatalf("post-unrevoke signing failed: %v", err)
	}
}

func TestGDHUnknownIdentity(t *testing.T) {
	ta, sem := gdhFixture(t)
	user, _, _ := ta.Keygen(rand.Reader, "ghost@example.com")
	if _, err := Sign(sem, user, []byte("m")); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("unknown identity served: %v", err)
	}
}

func TestGDHUserDetectsBadSEMHalf(t *testing.T) {
	ta, sem := gdhFixture(t)
	key := gdhEnroll(t, ta, sem, "signer@example.com")
	msg := []byte("m")
	h, _ := bls.HashMessage(key.Public.Pairing, msg)
	good, err := sem.HalfSign("signer@example.com", h)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the SEM's half: the user-side verification (protocol step 3)
	// must catch it rather than emit a bad signature.
	if _, err := UserSign(key, msg, good.Double()); err == nil {
		t.Fatal("corrupted SEM half produced an accepted signature")
	}
}

func TestGDHHalfSignValidatesInput(t *testing.T) {
	ta, sem := gdhFixture(t)
	gdhEnroll(t, ta, sem, "signer@example.com")
	if _, err := sem.HalfSign("signer@example.com", nil); err == nil {
		t.Error("nil hash point accepted")
	}
	pp, _ := pairing.Toy()
	if _, err := sem.HalfSign("signer@example.com", pp.Curve().Infinity()); err == nil {
		t.Error("infinity hash point accepted")
	}
}

func TestGDHUserHalfAloneCannotSign(t *testing.T) {
	// Without the SEM half, the user's half-signature does not verify.
	ta, sem := gdhFixture(t)
	key := gdhEnroll(t, ta, sem, "signer@example.com")
	msg := []byte("m")
	h, _ := bls.HashMessage(key.Public.Pairing, msg)
	userHalf := h.ScalarMul(key.X)
	if err := key.Public.Verify(msg, userHalf); err == nil {
		t.Fatal("user half alone verified as a full signature")
	}
}

func TestGDHSEMHalfIsShort(t *testing.T) {
	// The SEM→user payload is one compressed G1 point — the paper's
	// "160 bits" vs 1024 for mRSA (measured exactly in the T2 bench).
	ta, sem := gdhFixture(t)
	key := gdhEnroll(t, ta, sem, "signer@example.com")
	h, _ := bls.HashMessage(key.Public.Pairing, []byte("m"))
	half, _ := sem.HalfSign("signer@example.com", h)
	want := 1 + key.Public.Pairing.Curve().CoordinateSize()
	if got := len(half.Marshal()); got != want {
		t.Fatalf("SEM half is %d bytes, want %d", got, want)
	}
}

func TestRecombineGDHKeyMismatch(t *testing.T) {
	ta, _ := gdhFixture(t)
	ua, _, _ := ta.Keygen(rand.Reader, "a@x")
	_, sb, _ := ta.Keygen(rand.Reader, "b@x")
	if _, err := RecombineGDHKey(ua, sb); err == nil {
		t.Fatal("cross-identity recombination accepted")
	}
}

func TestRegistrySemantics(t *testing.T) {
	reg := NewRegistry()
	if reg.IsRevoked("a") {
		t.Fatal("fresh registry revokes")
	}
	reg.Revoke("a", "reason-1")
	if !reg.IsRevoked("a") {
		t.Fatal("revocation not recorded")
	}
	if err := reg.Check("a"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("Check: %v", err)
	}
	if err := reg.Check("b"); err != nil {
		t.Fatalf("unrevoked identity fails Check: %v", err)
	}
	entries := reg.Entries()
	if len(entries) != 1 || entries[0].ID != "a" || entries[0].Reason != "reason-1" {
		t.Fatalf("entries = %+v", entries)
	}
	if reg.Unrevoke("nope") {
		t.Fatal("unrevoke of unknown identity reported true")
	}
	if !reg.Unrevoke("a") {
		t.Fatal("unrevoke failed")
	}
	if reg.IsRevoked("a") {
		t.Fatal("identity still revoked after unrevoke")
	}
}

// Package core exercises the boundarycheck negative cases: raw decodes are
// fine outside network-facing packages (local key material, test vectors).
package core

import "math/big"

// LoadScalar decodes locally stored key material.
func LoadScalar(data []byte) *big.Int {
	return new(big.Int).SetBytes(data)
}

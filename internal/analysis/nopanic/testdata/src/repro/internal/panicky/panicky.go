// Package panicky exercises the nopanic positive cases.
package panicky

import "errors"

// Decode panics directly on malformed input.
func Decode(data []byte) []byte {
	if len(data) == 0 {
		panic("empty input") // want `panic reachable from exported function Decode`
	}
	return data
}

// Parse reaches a panic through an unexported helper.
func Parse(data []byte) ([]byte, error) {
	return helper(data), nil
}

func helper(data []byte) []byte {
	if len(data) > 1<<20 {
		panic("oversized input") // want `panic reachable from exported function Parse`
	}
	return data
}

// Codec is an exported type whose exported method panics two hops down.
type Codec struct{ strict bool }

// Check validates through a chain of unexported calls.
func (c *Codec) Check(data []byte) error {
	c.inner(data)
	return nil
}

func (c *Codec) inner(data []byte) {
	deep(data)
}

func deep(data []byte) {
	if data == nil {
		panic("nil input") // want `panic reachable from exported function Check`
	}
}

// Validate shows the sanctioned pattern: errors, not panics.
func Validate(data []byte) error {
	if len(data) == 0 {
		return errors.New("empty input")
	}
	return nil
}

// unreachablePanic is never called from an exported function, so its panic
// is not a finding.
func unreachablePanic() {
	panic("internal assertion")
}

// Rethrow shows the sanctioned deliberate re-raise: a recovered worker
// panic re-thrown on the caller's goroutine, annotated on the line.
func Rethrow(f func()) {
	defer func() {
		if v := recover(); v != nil {
			panic(v) //cryptolint:panic-ok (deliberate re-raise on the caller's goroutine)
		}
	}()
	f()
}

package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryConcurrentStress(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const opsPerWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("user-%d", w%4) // contend on 4 identities
			for i := 0; i < opsPerWorker; i++ {
				switch i % 4 {
				case 0:
					reg.Revoke(id, "stress")
				case 1:
					reg.IsRevoked(id)
				case 2:
					_ = reg.Check(id)
				case 3:
					reg.Unrevoke(id)
				}
			}
		}(w)
	}
	wg.Wait()
	// Steady state: reachable, no panics; entries snapshot is coherent.
	entries := reg.Entries()
	for _, e := range entries {
		if e.ID == "" {
			t.Fatal("empty entry after stress")
		}
	}
}

func TestRegistryClockInjection(t *testing.T) {
	reg := NewRegistry()
	fixed := time.Date(2003, 7, 13, 12, 0, 0, 0, time.UTC)
	reg.SetClock(func() time.Time { return fixed })
	reg.Revoke("a@x", "r")
	entries := reg.Entries()
	if len(entries) != 1 || !entries[0].When.Equal(fixed) {
		t.Fatalf("entries = %+v, want timestamp %v", entries, fixed)
	}
}

func TestRegistryEntriesSnapshotIsolation(t *testing.T) {
	reg := NewRegistry()
	reg.Revoke("a@x", "r")
	entries := reg.Entries()
	entries[0].ID = "tampered"
	if reg.IsRevoked("tampered") || !reg.IsRevoked("a@x") {
		t.Fatal("Entries leaked internal state")
	}
}

package gf

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

// testField returns F_p² for a small p ≡ 3 (mod 4).
func testField(t *testing.T) *Field {
	t.Helper()
	f, err := NewField(big.NewInt(1000003))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFieldRejectsBadModulus(t *testing.T) {
	if _, err := NewField(big.NewInt(13)); err == nil { // 13 ≡ 1 mod 4
		t.Fatal("p ≡ 1 mod 4 must be rejected")
	}
	if _, err := NewField(big.NewInt(-7)); err == nil {
		t.Fatal("negative modulus must be rejected")
	}
	if _, err := NewField(big.NewInt(0)); err == nil {
		t.Fatal("zero modulus must be rejected")
	}
}

func TestBasicIdentities(t *testing.T) {
	f := testField(t)
	x := f.NewElement(big.NewInt(1234), big.NewInt(5678))

	sum := new(Element).Add(x, f.Zero())
	if !sum.Equal(x) {
		t.Error("x + 0 ≠ x")
	}
	prod := new(Element).Mul(x, f.One())
	if !prod.Equal(x) {
		t.Error("x · 1 ≠ x")
	}
	diff := new(Element).Sub(x, x)
	if !diff.IsZero() {
		t.Error("x − x ≠ 0")
	}
	neg := new(Element).Neg(x)
	zero := new(Element).Add(x, neg)
	if !zero.IsZero() {
		t.Error("x + (−x) ≠ 0")
	}
}

func TestISquaredIsMinusOne(t *testing.T) {
	f := testField(t)
	i := f.NewElement(big.NewInt(0), big.NewInt(1))
	sq := new(Element).Square(i)
	minusOne := f.FromInt(big.NewInt(-1))
	if !sq.Equal(minusOne) {
		t.Fatalf("i² = %v, want −1", sq)
	}
}

func TestInverse(t *testing.T) {
	f := testField(t)
	x := f.NewElement(big.NewInt(31337), big.NewInt(4242))
	inv, err := new(Element).Inverse(x)
	if err != nil {
		t.Fatal(err)
	}
	prod := new(Element).Mul(x, inv)
	if !prod.IsOne() {
		t.Fatalf("x · x⁻¹ = %v, want 1", prod)
	}
	if _, err := new(Element).Inverse(f.Zero()); !errors.Is(err, ErrNotInvertible) {
		t.Fatalf("inverse of zero: got %v, want ErrNotInvertible", err)
	}
}

func TestConjugateIsFrobenius(t *testing.T) {
	f := testField(t)
	x := f.NewElement(big.NewInt(999), big.NewInt(777))
	// x^p must equal conj(x) in F_p².
	pow := new(Element)
	if _, err := pow.Exp(x, f.P()); err != nil {
		t.Fatal(err)
	}
	conj := new(Element).Conjugate(x)
	if !pow.Equal(conj) {
		t.Fatalf("x^p = %v, conj(x) = %v", pow, conj)
	}
}

func TestSquareUnitaryMatchesSquare(t *testing.T) {
	f := testField(t)
	// Unitary elements are exactly the image of y ↦ y^(p−1) = conj(y)/y,
	// which is how the final exponentiation's easy part produces them.
	for i := int64(1); i <= 200; i++ {
		y := f.NewElement(big.NewInt(i*7+1), big.NewInt(i*13+3))
		inv, err := new(Element).Inverse(y)
		if err != nil {
			t.Fatal(err)
		}
		u := new(Element).Conjugate(y)
		u.Mul(u, inv)

		want := new(Element).Square(u)
		got := new(Element).SquareUnitary(u)
		if !got.Equal(want) {
			t.Fatalf("iteration %d: SquareUnitary(%v) = %v, Square = %v", i, u, got, want)
		}
		// Aliased receiver: e.SquareUnitary(e).
		aliased := u.Copy()
		aliased.SquareUnitary(aliased)
		if !aliased.Equal(want) {
			t.Fatalf("iteration %d: aliased SquareUnitary diverges", i)
		}
	}
}

func TestExpMatchesRepeatedMul(t *testing.T) {
	f := testField(t)
	x := f.NewElement(big.NewInt(5), big.NewInt(3))
	want := f.One()
	for k := 0; k <= 16; k++ {
		got := new(Element)
		if _, err := got.Exp(x, big.NewInt(int64(k))); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("x^%d mismatch", k)
		}
		want = new(Element).Mul(want, x)
	}
}

func TestExpRejectsNegative(t *testing.T) {
	f := testField(t)
	x := f.One()
	if _, err := new(Element).Exp(x, big.NewInt(-1)); err == nil {
		t.Fatal("negative exponent must error")
	}
}

func TestFermatInExtension(t *testing.T) {
	// x^(p²−1) = 1 for x ≠ 0.
	f := testField(t)
	x := f.NewElement(big.NewInt(123456), big.NewInt(654321))
	p := f.P()
	order := new(big.Int).Mul(p, p)
	order.Sub(order, big.NewInt(1))
	got := new(Element)
	if _, err := got.Exp(x, order); err != nil {
		t.Fatal(err)
	}
	if !got.IsOne() {
		t.Fatalf("x^(p²−1) = %v, want 1", got)
	}
}

func TestMulScalar(t *testing.T) {
	f := testField(t)
	x := f.NewElement(big.NewInt(10), big.NewInt(20))
	got := new(Element).MulScalar(x, big.NewInt(3))
	want := f.NewElement(big.NewInt(30), big.NewInt(60))
	if !got.Equal(want) {
		t.Fatalf("3x = %v, want %v", got, want)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := testField(t)
	x := f.NewElement(big.NewInt(424242), big.NewInt(1))
	data := x.Bytes()
	y, err := f.ElementFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(x) {
		t.Fatalf("round trip: %v ≠ %v", y, x)
	}
}

func TestElementFromBytesRejectsBadInput(t *testing.T) {
	f := testField(t)
	if _, err := f.ElementFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("short encoding must be rejected")
	}
	size := (f.P().BitLen() + 7) / 8
	big := make([]byte, 2*size)
	for i := range big {
		big[i] = 0xff
	}
	if _, err := f.ElementFromBytes(big); err == nil {
		t.Fatal("out-of-range coordinates must be rejected")
	}
}

func TestCopyIsIndependent(t *testing.T) {
	f := testField(t)
	x := f.NewElement(big.NewInt(7), big.NewInt(8))
	y := x.Copy()
	y.Add(y, f.One())
	if x.Equal(y) {
		t.Fatal("mutating a copy changed the original")
	}
}

func TestSetAliasesSafely(t *testing.T) {
	f := testField(t)
	x := f.NewElement(big.NewInt(7), big.NewInt(8))
	var e Element
	e.Set(x)
	if !e.Equal(x) {
		t.Fatal("Set did not copy value")
	}
	e.Add(&e, f.One())
	if x.Equal(&e) {
		t.Fatal("Set aliased the source internals")
	}
}

// randomElement derives a pseudorandom field element from quick-generated
// ints.
func randomElement(f *Field, a, b int64) *Element {
	return f.NewElement(big.NewInt(a), big.NewInt(b))
}

func TestQuickRingAxioms(t *testing.T) {
	f := testField(t)
	cfg := &quick.Config{MaxCount: 200}

	commutativeMul := func(a1, b1, a2, b2 int64) bool {
		x := randomElement(f, a1, b1)
		y := randomElement(f, a2, b2)
		xy := new(Element).Mul(x, y)
		yx := new(Element).Mul(y, x)
		return xy.Equal(yx)
	}
	if err := quick.Check(commutativeMul, cfg); err != nil {
		t.Errorf("multiplication not commutative: %v", err)
	}

	associativeMul := func(a1, b1, a2, b2, a3, b3 int64) bool {
		x := randomElement(f, a1, b1)
		y := randomElement(f, a2, b2)
		z := randomElement(f, a3, b3)
		l := new(Element).Mul(new(Element).Mul(x, y), z)
		r := new(Element).Mul(x, new(Element).Mul(y, z))
		return l.Equal(r)
	}
	if err := quick.Check(associativeMul, cfg); err != nil {
		t.Errorf("multiplication not associative: %v", err)
	}

	distributive := func(a1, b1, a2, b2, a3, b3 int64) bool {
		x := randomElement(f, a1, b1)
		y := randomElement(f, a2, b2)
		z := randomElement(f, a3, b3)
		l := new(Element).Mul(x, new(Element).Add(y, z))
		r := new(Element).Add(new(Element).Mul(x, y), new(Element).Mul(x, z))
		return l.Equal(r)
	}
	if err := quick.Check(distributive, cfg); err != nil {
		t.Errorf("distributivity fails: %v", err)
	}

	squareIsMul := func(a, b int64) bool {
		x := randomElement(f, a, b)
		sq := new(Element).Square(x)
		mu := new(Element).Mul(x, x)
		return sq.Equal(mu)
	}
	if err := quick.Check(squareIsMul, cfg); err != nil {
		t.Errorf("square ≠ self-multiplication: %v", err)
	}

	inverseWorks := func(a, b int64) bool {
		x := randomElement(f, a, b)
		if x.IsZero() {
			return true
		}
		inv, err := new(Element).Inverse(x)
		if err != nil {
			return false
		}
		return new(Element).Mul(x, inv).IsOne()
	}
	if err := quick.Check(inverseWorks, cfg); err != nil {
		t.Errorf("inverse law fails: %v", err)
	}

	conjMultiplicative := func(a1, b1, a2, b2 int64) bool {
		x := randomElement(f, a1, b1)
		y := randomElement(f, a2, b2)
		l := new(Element).Conjugate(new(Element).Mul(x, y))
		r := new(Element).Mul(new(Element).Conjugate(x), new(Element).Conjugate(y))
		return l.Equal(r)
	}
	if err := quick.Check(conjMultiplicative, cfg); err != nil {
		t.Errorf("conjugation not multiplicative: %v", err)
	}
}

package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Revocation durability. The paper's SEM "remains online all the system's
// lifetime", which in practice means surviving restarts without forgetting
// who was revoked — otherwise a crash would silently unrevoke everyone.
// Journal gives Registry an append-only JSONL log: every Revoke/Unrevoke
// is recorded before it takes effect, and OpenJournal replays the log on
// startup. cmd/semd wires this behind its -journal flag.
//
// Since PR 10 the journal is also the unit of replication: every mutation
// carries a monotonically increasing sequence number and the epoch of the
// leader that issued it, the journal keeps an in-memory tail of recent
// records so a leader can stream the suffix a follower is missing, and the
// log can be compacted to a single snapshot record once the prefix is no
// longer needed. internal/repl builds the leader/follower protocol on top
// of these primitives; the journal itself stays transport-agnostic.

// journalRecord is one line of the append-only log. Seq/Epoch are zero on
// logs written before replication existed ("legacy" records); replay
// assigns those sequential numbers so an upgraded journal is immediately
// replicable. Op "snapshot" replaces the whole state: Entries holds the
// complete revocation set as of Seq, and replay discards everything before
// it — the compaction format. Op "epoch" durably records an epoch adoption
// (a follower fenced by a new leader, or a leader assuming its term): it
// raises the journal's epoch without consuming a sequence number, so the
// not_leader write fence survives a restart.
type journalRecord struct {
	Op      string            `json:"op"` // "revoke" | "unrevoke" | "snapshot" | "epoch"
	ID      string            `json:"id,omitempty"`
	Reason  string            `json:"reason,omitempty"`
	When    time.Time         `json:"when"`
	Seq     uint64            `json:"seq,omitempty"`
	Epoch   uint64            `json:"epoch,omitempty"`
	Entries []RevocationEntry `json:"entries,omitempty"`
}

// ReplRecord is one replicable journal mutation — the unit internal/repl
// ships from leader to follower. Op uses the journal's own op names
// ("revoke"/"unrevoke"); snapshot records never appear here, they travel
// over the dedicated snapshot path.
type ReplRecord struct {
	Seq    uint64
	Epoch  uint64
	Op     string
	ID     string
	Reason string
	When   time.Time
}

// defaultTailLimit bounds the in-memory record tail kept for serving
// replication suffixes. A follower further behind than this is served a
// snapshot instead, so the limit trades leader memory against how long a
// follower may be down and still catch up incrementally.
const defaultTailLimit = 1024

// maxJournalLine is the scanner budget for one journal line. Snapshot
// records carry the whole revocation set on a single line, so the limit
// must comfortably exceed bufio's 64 KiB default.
const maxJournalLine = 64 << 20

var errJournalClosed = errors.New("core: journal is closed")

// Journal is a Registry bound to an append-only log file. It embeds the
// registry semantics by delegation (not embedding, to keep the persisted
// mutations on the write path).
type Journal struct {
	mu   sync.Mutex
	reg  *Registry
	f    *os.File
	enc  *json.Encoder
	path string

	lastSeq uint64
	epoch   uint64

	// tail holds the most recent records (ascending Seq, contiguous) so
	// TailSince can serve a follower's catch-up without re-reading the file.
	// Trimmed to tailLimit amortized; empty right after a snapshot install.
	tail      []ReplRecord
	tailLimit int

	// Group commit: writers append under mu, then wait for a sync covering
	// their write. One writer becomes the syncer and fsyncs on behalf of
	// everyone that wrote before it looked — concurrent revocations pay one
	// disk flush between them instead of one each.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	writeGen uint64 // records written to the OS
	syncGen  uint64 // generation covered by the last completed fsync
	syncing  bool
	syncErr  error // outcome of the last fsync, covering gens ≤ syncGen

	// Compaction bookkeeping: records appended since the last snapshot.
	sinceSnap   int
	autoCompact int

	replayed     int
	droppedLines int
	unknownOps   int

	appendTime  *obs.Histogram
	appends     *obs.Counter
	fsyncs      *obs.Counter
	compactions *obs.Counter
}

// OpenJournal opens (creating if needed) the log at path, replays it into
// a fresh Registry and returns the bound journal. Corrupt trailing lines
// (a crash mid-write) are tolerated: replay stops at the first undecodable
// line. The outcome is never silent — Replayed reports how many records
// took effect, DroppedLines how many non-empty lines were abandoned after
// the corruption point, and UnknownOps how many well-formed records carried
// an op this build does not understand (skipped, not applied — a journal
// written by a newer version). cmd/semd logs all three at startup.
func OpenJournal(path string) (*Journal, error) {
	reg := NewRegistry()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("open revocation journal: %w", err)
	}
	j := &Journal{reg: reg, path: path, tailLimit: defaultTailLimit}
	j.syncCond = sync.NewCond(&j.syncMu)
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 64*1024), maxJournalLine)
	corrupt := false
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		if corrupt {
			// Count what the stop-at-corruption policy is discarding; a
			// long valid suffix after a bad line means real damage, not a
			// torn final write.
			j.droppedLines++
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			corrupt = true
			j.droppedLines++
			continue
		}
		switch rec.Op {
		case "revoke":
			j.replaySeq(&rec)
			reg.mu.Lock()
			reg.revoked[rec.ID] = RevocationEntry{ID: rec.ID, Reason: rec.Reason, When: rec.When}
			reg.mu.Unlock()
			j.pushTail(ReplRecord{Seq: rec.Seq, Epoch: rec.Epoch, Op: rec.Op, ID: rec.ID, Reason: rec.Reason, When: rec.When})
			j.replayed++
		case "unrevoke":
			j.replaySeq(&rec)
			reg.mu.Lock()
			delete(reg.revoked, rec.ID)
			reg.mu.Unlock()
			j.pushTail(ReplRecord{Seq: rec.Seq, Epoch: rec.Epoch, Op: rec.Op, ID: rec.ID, When: rec.When})
			j.replayed++
		case "snapshot":
			// A snapshot supersedes everything before it: reset the registry
			// to exactly its entries and restart the tail after its seq.
			next := make(map[string]RevocationEntry, len(rec.Entries))
			for _, e := range rec.Entries {
				next[e.ID] = e
			}
			reg.mu.Lock()
			reg.revoked = next
			reg.mu.Unlock()
			if rec.Seq > j.lastSeq {
				j.lastSeq = rec.Seq
			}
			if rec.Epoch > j.epoch {
				j.epoch = rec.Epoch
			}
			j.tail = j.tail[:0]
			j.replayed++
		case "epoch":
			// Durable epoch adoption: the fence a replication leader armed
			// on this journal. Raises the epoch only — no sequence number
			// was consumed and no registry state changes.
			if rec.Epoch > j.epoch {
				j.epoch = rec.Epoch
			}
			j.replayed++
		default:
			// A record from a newer build. Skipping it silently as "replayed"
			// would overstate how much of the journal took effect, so it is
			// accounted separately and the operator decides whether to care.
			j.unknownOps++
		}
	}
	if err := scanner.Err(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("replay revocation journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("seek revocation journal: %w", err)
	}
	j.f = f
	j.enc = json.NewEncoder(f)
	return j, nil
}

// replaySeq fixes up a replayed mutation's sequence/epoch bookkeeping.
// Legacy records (Seq == 0, written before replication) are assigned the
// next sequence number so an upgraded journal replicates immediately.
func (j *Journal) replaySeq(rec *journalRecord) {
	if rec.Seq == 0 {
		rec.Seq = j.lastSeq + 1
	}
	if rec.Seq > j.lastSeq {
		j.lastSeq = rec.Seq
	}
	if rec.Epoch > j.epoch {
		j.epoch = rec.Epoch
	}
}

// pushTail appends a record to the in-memory tail, trimming amortized so
// the slice never holds more than 2×tailLimit and never memmoves per call.
func (j *Journal) pushTail(rec ReplRecord) {
	j.tail = append(j.tail, rec)
	if len(j.tail) >= 2*j.tailLimit {
		keep := j.tail[len(j.tail)-j.tailLimit:]
		next := make([]ReplRecord, len(keep))
		copy(next, keep)
		j.tail = next
	}
}

// Replayed reports how many journal records were applied by OpenJournal.
func (j *Journal) Replayed() int { return j.replayed }

// DroppedLines reports how many non-empty journal lines OpenJournal
// abandoned at and after the first undecodable one. 0 means a clean
// replay; 1 is the expected torn-final-write crash signature; larger
// values indicate mid-file corruption and deserve operator attention.
func (j *Journal) DroppedLines() int { return j.droppedLines }

// UnknownOps reports how many well-formed records OpenJournal skipped
// because their op is not understood by this build. Unlike corruption this
// does not stop replay — later records still apply — but the journal was
// written by software with more vocabulary than ours, which an operator
// rolling back a fleet needs to know.
func (j *Journal) UnknownOps() int { return j.unknownOps }

// LastSeq reports the sequence number of the newest durable mutation.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// Epoch reports the highest leader epoch the journal has recorded or been
// assigned via SetEpoch.
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// SetEpoch raises the journal's epoch — the leader's startup handshake and
// the follower's fence adoption. A replacement leader must be configured
// with an epoch strictly above its predecessor's; asking for one below what
// the journal has already seen is refused, because appending under a stale
// epoch is exactly the confusion epoch fencing exists to prevent.
//
// Raising the epoch is durable: an "epoch" record is appended and fsynced
// (via group commit) before SetEpoch returns, so a follower that restarts
// keeps refusing direct mutations with not_leader instead of silently
// reopening the self-sequencing write path at epoch 0. Setting the epoch
// the journal already holds is a no-op and writes nothing.
func (j *Journal) SetEpoch(epoch uint64) error {
	j.mu.Lock()
	if epoch < j.epoch {
		cur := j.epoch
		j.mu.Unlock()
		return fmt.Errorf("core: journal already at epoch %d, refusing to regress to %d", cur, epoch)
	}
	if epoch == j.epoch {
		j.mu.Unlock()
		return nil
	}
	if j.f == nil {
		j.mu.Unlock()
		return errJournalClosed
	}
	// Not writeLocked: an epoch record consumes no sequence number and must
	// never enter the replication tail (it is local fencing state, not a
	// mutation a leader ships to followers).
	rec := journalRecord{Op: "epoch", When: time.Now(), Seq: j.lastSeq, Epoch: epoch}
	if err := j.enc.Encode(rec); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("append revocation journal epoch: %w", err)
	}
	j.epoch = epoch
	j.appends.Inc()
	j.syncMu.Lock()
	j.writeGen++
	gen := j.writeGen
	j.syncMu.Unlock()
	j.mu.Unlock()
	return j.commitSync(gen)
}

// SetTailLimit overrides how many recent records the journal retains for
// serving replication suffixes (tests shrink it to force snapshot
// catch-up). Must be called before the journal is shared.
func (j *Journal) SetTailLimit(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n > 0 {
		j.tailLimit = n
	}
}

// SetAutoCompact makes the journal rewrite itself as a single snapshot
// record after every n appended mutations (0 disables). Compaction runs
// inline on the append that crosses the threshold.
func (j *Journal) SetAutoCompact(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.autoCompact = n
}

// Instrument registers the journal's series with reg: the append-latency
// histogram (every revocation mutation pays — or shares — an fsync; this
// is the number that decides revocation throughput), append/fsync counters
// whose ratio is the group-commit coalescing factor, sequence/epoch gauges
// the replication smoke scrapes for convergence, and replay accounting
// from the last OpenJournal.
func (j *Journal) Instrument(reg *obs.Registry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendTime = reg.Histogram("journal_append_seconds", "revocation journal append + fsync time")
	j.appends = reg.Counter("journal_appends_total", "journal records appended")
	j.fsyncs = reg.Counter("journal_fsyncs_total", "journal fsyncs issued (appends/fsyncs = group-commit factor)")
	j.compactions = reg.Counter("journal_compactions_total", "journal snapshot compactions")
	reg.Gauge("journal_replayed_records", "journal records replayed at startup").Set(int64(j.replayed))
	reg.Gauge("journal_dropped_lines", "journal lines dropped at startup (corrupt tail)").Set(int64(j.droppedLines))
	reg.Gauge("journal_unknown_ops", "journal records skipped at startup (op unknown to this build)").Set(int64(j.unknownOps))
	reg.GaugeFunc("journal_last_seq", "sequence number of the newest durable revocation mutation", func() int64 {
		return int64(j.LastSeq())
	})
	reg.GaugeFunc("journal_epoch", "highest replication epoch the journal has recorded", func() int64 {
		return int64(j.Epoch())
	})
}

// Registry returns the replayed, live registry. SEMs share it as usual;
// only mutations made through the Journal are persisted.
func (j *Journal) Registry() *Registry { return j.reg }

// Revoke persists and applies a revocation. The record is written (and the
// in-memory effect applied) under the journal lock, which fixes the order
// of mutations; the fsync happens outside it via group commit, so
// concurrent revocations coalesce into one flush. Revoke does not return
// until its record is durable — a crash can only lose mutations nobody was
// told succeeded.
func (j *Journal) Revoke(id, reason string) error {
	return j.appendMutation("revoke", id, reason)
}

// Unrevoke persists and applies a reinstatement.
func (j *Journal) Unrevoke(id string) error {
	return j.appendMutation("unrevoke", id, "")
}

func (j *Journal) appendMutation(op, id, reason string) error {
	start := time.Now()
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return errJournalClosed
	}
	rec := journalRecord{Op: op, ID: id, Reason: reason, When: time.Now(), Seq: j.lastSeq + 1, Epoch: j.epoch}
	gen, err := j.writeLocked(rec)
	if err != nil {
		j.mu.Unlock()
		return err
	}
	switch op {
	case "revoke":
		j.reg.Revoke(id, reason)
	case "unrevoke":
		j.reg.Unrevoke(id)
	}
	err = j.maybeCompactLocked()
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if err := j.commitSync(gen); err != nil {
		return err
	}
	j.appendTime.Observe(time.Since(start))
	return nil
}

// writeLocked encodes rec to the OS, advances the sequence/tail state and
// returns the write generation the caller must wait on for durability.
// Caller holds j.mu.
func (j *Journal) writeLocked(rec journalRecord) (uint64, error) {
	if err := j.enc.Encode(rec); err != nil {
		return 0, fmt.Errorf("append revocation journal: %w", err)
	}
	j.lastSeq = rec.Seq
	if rec.Epoch > j.epoch {
		j.epoch = rec.Epoch
	}
	j.pushTail(ReplRecord{Seq: rec.Seq, Epoch: rec.Epoch, Op: rec.Op, ID: rec.ID, Reason: rec.Reason, When: rec.When})
	j.sinceSnap++
	j.appends.Inc()
	j.syncMu.Lock()
	j.writeGen++
	gen := j.writeGen
	j.syncMu.Unlock()
	return gen, nil
}

// commitSync blocks until an fsync covering write generation gen has
// completed, electing this goroutine as the syncer when none is running.
// The elected syncer flushes everything written up to the moment it looks,
// so every writer queued behind it is covered by the one flush.
func (j *Journal) commitSync(gen uint64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	for {
		if j.syncGen >= gen {
			// Covered. A failed fsync poisons its whole cohort: if the flush
			// that covered gen reported an error, the record may not be
			// durable and the caller must hear about it. A later successful
			// fsync clears syncErr — at that point the data demonstrably
			// reached disk.
			return j.syncErr
		}
		if j.syncing {
			j.syncCond.Wait()
			continue
		}
		j.syncing = true
		target := j.writeGen
		j.syncMu.Unlock()

		j.mu.Lock()
		f := j.f
		j.mu.Unlock()
		var err error
		if f == nil {
			err = errJournalClosed
		} else if err = f.Sync(); err != nil {
			err = fmt.Errorf("sync revocation journal: %w", err)
		}
		j.fsyncs.Inc()

		j.syncMu.Lock()
		j.syncing = false
		if target > j.syncGen {
			j.syncGen = target
			j.syncErr = err
		}
		j.syncCond.Broadcast()
	}
}

// ApplyReplicated appends a batch of leader-issued records with their
// original sequence numbers and epochs, applies them to the registry in
// order, and fsyncs once for the whole batch. Records at or below the
// journal's current sequence are skipped (idempotent redelivery); a record
// that would leave a gap aborts the batch — internal/repl fences epochs
// and detects gaps *before* calling this, so the check here is defense in
// depth, not protocol. Returns how many records were applied.
func (j *Journal) ApplyReplicated(recs []ReplRecord) (int, error) {
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return 0, errJournalClosed
	}
	applied := 0
	var gen uint64
	for _, rec := range recs {
		if rec.Seq <= j.lastSeq {
			continue
		}
		if rec.Seq != j.lastSeq+1 {
			j.mu.Unlock()
			if applied > 0 {
				// The contiguous prefix was written; make it durable before
				// reporting the gap so the follower's Status is honest.
				if err := j.commitSync(gen); err != nil {
					return applied, err
				}
			}
			return applied, fmt.Errorf("core: replicated record seq %d does not extend journal at %d", rec.Seq, j.lastSeq)
		}
		switch rec.Op {
		case "revoke", "unrevoke":
		default:
			j.mu.Unlock()
			return applied, fmt.Errorf("core: replicated record has unknown op %q", rec.Op)
		}
		g, err := j.writeLocked(journalRecord{Op: rec.Op, ID: rec.ID, Reason: rec.Reason, When: rec.When, Seq: rec.Seq, Epoch: rec.Epoch})
		if err != nil {
			j.mu.Unlock()
			return applied, err
		}
		gen = g
		switch rec.Op {
		case "revoke":
			j.reg.Revoke(rec.ID, rec.Reason)
		case "unrevoke":
			j.reg.Unrevoke(rec.ID)
		}
		applied++
	}
	var compactErr error
	if applied > 0 {
		compactErr = j.maybeCompactLocked()
	}
	j.mu.Unlock()
	if compactErr != nil {
		return applied, compactErr
	}
	if applied == 0 {
		return 0, nil
	}
	return applied, j.commitSync(gen)
}

// TailSince returns copies of the records with sequence numbers strictly
// above after, in order. ok is false when the journal can no longer serve
// that suffix contiguously — the tail was trimmed or compacted past it —
// in which case the caller must fall back to a snapshot.
func (j *Journal) TailSince(after uint64) (recs []ReplRecord, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after >= j.lastSeq {
		return nil, true
	}
	if len(j.tail) == 0 || j.tail[0].Seq > after+1 {
		return nil, false
	}
	i := len(j.tail)
	for i > 0 && j.tail[i-1].Seq > after {
		i--
	}
	out := make([]ReplRecord, len(j.tail)-i)
	copy(out, j.tail[i:])
	return out, true
}

// SnapshotState returns the journal's epoch, last sequence number and the
// complete revocation set — the payload a leader streams to a follower too
// far behind for the tail.
func (j *Journal) SnapshotState() (epoch, lastSeq uint64, entries []RevocationEntry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch, j.lastSeq, j.reg.Entries()
}

// InstallSnapshot replaces the journal's entire state with a leader
// snapshot: the file is atomically rewritten as a single snapshot record,
// the registry is reset to exactly entries (firing OnRevoke/OnUnrevoke for
// the differences), and the sequence counter jumps to seq. The journal's
// epoch may only move forward.
func (j *Journal) InstallSnapshot(epoch, seq uint64, entries []RevocationEntry) error {
	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return errJournalClosed
	}
	if epoch < j.epoch {
		j.mu.Unlock()
		return fmt.Errorf("core: snapshot epoch %d below journal epoch %d", epoch, j.epoch)
	}
	if err := j.rewriteLocked(epoch, seq, entries); err != nil {
		j.mu.Unlock()
		return err
	}
	j.epoch = epoch
	j.lastSeq = seq
	j.reg.resetTo(entries)
	j.mu.Unlock()
	return nil
}

// Compact rewrites the journal file as one snapshot record of the current
// state. The mutation history before the snapshot is gone — a follower
// whose last durable seq predates it will be served the snapshot instead
// of a suffix.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errJournalClosed
	}
	return j.rewriteLocked(j.epoch, j.lastSeq, j.reg.Entries())
}

// maybeCompactLocked runs an inline compaction when the auto-compact
// threshold is crossed. Caller holds j.mu.
func (j *Journal) maybeCompactLocked() error {
	if j.autoCompact <= 0 || j.sinceSnap < j.autoCompact {
		return nil
	}
	return j.rewriteLocked(j.epoch, j.lastSeq, j.reg.Entries())
}

// syncDir fsyncs a directory so a rename inside it is durable. A renamed
// file's data being on disk means nothing if the directory entry pointing
// at the new inode is lost with the page cache — after a power cut the
// journal would silently revert to its pre-compaction contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// rewriteLocked atomically replaces the journal file with a single
// snapshot record: write to a temp file, fsync, rename over the journal,
// fsync the directory (the rename itself is not durable until its
// directory entry is). On success the in-memory tail resets (the history
// is gone) and every pending group-commit waiter is released — their
// records are durable via the snapshot. Caller holds j.mu.
func (j *Journal) rewriteLocked(epoch, seq uint64, entries []RevocationEntry) error {
	tmpPath := j.path + ".tmp"
	tf, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("compact revocation journal: %w", err)
	}
	enc := json.NewEncoder(tf)
	rec := journalRecord{Op: "snapshot", When: time.Now(), Seq: seq, Epoch: epoch, Entries: entries}
	if err := enc.Encode(rec); err != nil {
		_ = tf.Close()
		_ = os.Remove(tmpPath)
		return fmt.Errorf("compact revocation journal: %w", err)
	}
	if err := tf.Sync(); err != nil {
		_ = tf.Close()
		_ = os.Remove(tmpPath)
		return fmt.Errorf("compact revocation journal: %w", err)
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		_ = tf.Close()
		_ = os.Remove(tmpPath)
		return fmt.Errorf("compact revocation journal: %w", err)
	}
	old := j.f
	j.f = tf
	j.enc = enc
	_ = old.Close()
	j.tail = j.tail[:0]
	j.sinceSnap = 0
	j.compactions.Inc()
	// The rename only persists once the directory entry does. Waiters must
	// not be told their records are durable before that — a power loss
	// could revert the whole file to its pre-compaction state, taking every
	// acknowledged append that rode the compaction with it.
	dirErr := syncDir(filepath.Dir(j.path))
	if dirErr != nil {
		dirErr = fmt.Errorf("sync revocation journal directory: %w", dirErr)
	}
	// Everything written before the rename is captured by the fsynced
	// snapshot: release any group-commit waiters — poisoned with the
	// directory-sync error if the rename's durability is in doubt.
	j.syncMu.Lock()
	if j.writeGen > j.syncGen {
		j.syncGen = j.writeGen
		j.syncErr = dirErr
	}
	j.syncCond.Broadcast()
	j.syncMu.Unlock()
	return dirErr
}

// Close releases the log file. The registry stays usable (read-only
// semantics — further journal mutations fail).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

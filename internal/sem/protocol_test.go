package sem

import (
	"bytes"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Op: OpIBEToken, ID: "alice@example.com", Payload: []byte{1, 2, 3}}
	sent, err := writeFrame(&buf, req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sent != buf.Len() {
		t.Fatalf("reported %d bytes, wrote %d", sent, buf.Len())
	}
	var got Request
	recv, err := readFrame(&buf, &got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recv != sent {
		t.Fatalf("read %d bytes, wrote %d", recv, sent)
	}
	if got.Op != req.Op || got.ID != req.ID || !bytes.Equal(got.Payload, req.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	huge := &Request{Payload: make([]byte, DefaultMaxFrame)}
	if _, err := writeFrame(&buf, huge, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write accepted: %v", err)
	}
	// Oversized announced length on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var req Request
	if _, err := readFrame(&buf, &req, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read accepted: %v", err)
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	// Truncated body.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	var req Request
	if _, err := readFrame(&buf, &req, 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated body accepted: %v", err)
	}
	// Non-JSON body.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 3, 'x', 'y', 'z'})
	if _, err := readFrame(&buf, &req, 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("non-JSON body accepted: %v", err)
	}
	// Empty reader → io error, not ErrProtocol (caller treats as EOF).
	buf.Reset()
	if _, err := readFrame(&buf, &req, 0); err == nil {
		t.Fatal("empty reader accepted")
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	property := func(op string, id string, payload []byte) bool {
		if len(op) > 100 || len(id) > 1000 || len(payload) > 10000 {
			return true // stay under the frame cap
		}
		var buf bytes.Buffer
		req := &Request{Op: Op(op), ID: id, Payload: payload}
		if _, err := writeFrame(&buf, req, 0); err != nil {
			return false
		}
		var got Request
		if _, err := readFrame(&buf, &got, 0); err != nil {
			return false
		}
		payloadEqual := bytes.Equal(got.Payload, payload) ||
			(len(payload) == 0 && len(got.Payload) == 0)
		return got.Op == Op(op) && got.ID == id && payloadEqual
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPackIntsRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	property := func(raw [][]byte) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		xs := make([]*big.Int, len(raw))
		for i, b := range raw {
			if len(b) > 1000 {
				b = b[:1000]
			}
			xs[i] = new(big.Int).SetBytes(b)
		}
		packed, err := packInts(xs)
		if err != nil {
			return false
		}
		back, err := unpackInts(packed)
		if err != nil {
			return false
		}
		if len(back) != len(xs) {
			return false
		}
		for i := range xs {
			if xs[i].Cmp(back[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

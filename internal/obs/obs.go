// Package obs is the serving stack's observability subsystem: atomic
// counters and gauges, log-bucketed latency histograms with quantile
// snapshots, a registry that renders both Prometheus text format and an
// expvar-style JSON document, and a debug HTTP mux that serves them next to
// net/http/pprof.
//
// The paper's SEM "remains online all the system's lifetime"; a mediator
// serving millions of users needs its request rates, error mix, service
// times and cache behaviour visible while it runs, not only in benchmarks.
// obs is stdlib-only and designed around one contract: the record path —
// Counter.Add, Gauge.Set, Histogram.Observe — performs no allocation and
// takes no lock, so instrumentation can sit on the pairing hot paths
// without disturbing the zero-alloc discipline established by the limb
// field backend (asserted by testing.AllocsPerRun in the package tests).
// All allocation happens at registration time, which is why metric labels
// are fixed at construction: a per-op counter is one registered series per
// op, looked up by the caller, never rendered per event.
//
// Every constructor is nil-tolerant: calling Counter/Gauge/Histogram on a
// nil *Registry returns a live, unregistered metric, so instrumented
// components need no "is observability on?" branches — recording into an
// unregistered metric is cheap and invisible.
package obs

import (
	"strings"
	"sync/atomic"
)

// Label is one key="value" pair attached to a metric series at
// registration. Label values are rendered once, at registration — never on
// the record path — so they must be static (an op name, a player index),
// not per-event data. Identities and payloads do not belong in labels.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; all methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//cryptolint:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//cryptolint:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. The zero value is ready to use;
// all methods are safe for concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
//
//cryptolint:hotpath
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds delta (negative deltas decrease the gauge).
//
//cryptolint:hotpath
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// renderLabels formats a label set as {k="v",k2="v2"} with Prometheus
// escaping, or "" for an empty set. Called only at registration.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

package sem

import (
	"errors"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// metricsFixture is a minimal SEM (registry-only backends) with an obs
// registry wired in: enough to exercise the dispatch path and the
// exported series without the full crypto enrollment.
func metricsFixture(t *testing.T, cfg Config) (*Server, *Client, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	if cfg.Registry == nil {
		cfg.Registry = core.NewRegistry()
	}
	cfg.Metrics = reg
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = srv.Serve(ln) }()
	client, err := Dial(ln.Addr().String(), nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = srv.Close()
		wg.Wait()
	})
	return srv, client, reg
}

func TestServerMetricsExported(t *testing.T) {
	_, client, reg := metricsFixture(t, Config{})
	clientReg := obs.NewRegistry()
	client.Instrument(clientReg)

	for i := 0; i < 3; i++ {
		if err := client.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Revoke("mallory@example.com", "test"); err != nil {
		t.Fatal(err)
	}
	// An unsupported op becomes an error-code metric.
	if _, err := client.roundTrip(&Request{Op: OpIBEToken, ID: "x"}); err == nil {
		t.Fatal("IBE op on IBE-less server succeeded")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`sem_requests_total{op="ping"} 3`,
		`sem_requests_total{op="revoke"} 1`,
		`sem_errors_total{code="unsupported"} 1`,
		`sem_service_seconds_count{op="ping"} 3`,
		"sem_queue_depth 0",
		"sem_workers",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("server metrics missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := clientReg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	for _, want := range []string{
		`semclient_requests_total{op="ping"} 3`,
		`semclient_bytes_sent_total{op="ping"}`,
		"semclient_roundtrip_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("client metrics missing %q:\n%s", want, out)
		}
	}

	// The folded counters still present the WireStats view.
	stats := client.Stats()
	if st := stats[OpPing]; st.Calls != 3 || st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Fatalf("folded WireStats = %+v", st)
	}
}

// TestServerRecordPathZeroAlloc pins the instrumentation contract on the
// dispatch path: per-request accounting allocates nothing.
func TestServerRecordPathZeroAlloc(t *testing.T) {
	srv, err := NewServer(Config{Registry: core.NewRegistry(), Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	okResp := &Response{OK: true}
	errResp := &Response{OK: false, Code: CodeRevoked}
	if n := testing.AllocsPerRun(1000, func() {
		srv.met.observe(OpPing, okResp, 42*time.Microsecond)
		srv.met.observe(OpIBEToken, errResp, 1300*time.Microsecond)
		srv.met.observe(Op("bogus"), errResp, time.Microsecond)
	}); n != 0 {
		t.Fatalf("server metric record path allocates %v bytes/op", n)
	}
}

// TestClientOpTimeout proves the deadline satellite: a SEM that accepts
// and then hangs fails the call within the operation timeout instead of
// stalling the caller forever.
func TestClientOpTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	hung := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		hung <- conn // accept, read nothing, answer nothing
	}()
	client, err := Dial(ln.Addr().String(), nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	client.SetOpTimeout(100 * time.Millisecond)
	start := time.Now()
	err = client.Ping()
	if err == nil {
		t.Fatal("ping against a hung SEM succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("timeout took %v", waited)
	}
	select {
	case conn := <-hung:
		_ = conn.Close()
	default:
	}
}

// TestServerIdleTimeout proves the server side: a peer that goes silent
// past the IO timeout has its connection released.
func TestServerIdleTimeout(t *testing.T) {
	_, client, _ := metricsFixture(t, Config{IOTimeout: 100 * time.Millisecond})
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	// Go idle past the server's limit; the server must drop the
	// connection, so the next op fails.
	time.Sleep(300 * time.Millisecond)
	err := client.Ping()
	if err == nil {
		t.Fatal("ping on an idle-reaped connection succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) && !strings.Contains(err.Error(), "EOF") &&
		!strings.Contains(err.Error(), "reset") && !strings.Contains(err.Error(), "closed") {
		t.Logf("connection failed as expected: %v", err)
	}
}

// Package gm implements Goldwasser-Micali probabilistic encryption and its
// mediated (2-out-of-2 threshold) adaptation — one of the two schemes the
// paper's conclusion conjectures the SEM method extends to ("the
// Goldwasser-Micali probabilistic encryption […] for which efficient
// threshold adaptations have been described in [18]" — Katz & Yung,
// Asiacrypt 2002).
//
// Setup uses a Blum modulus n = pq with p ≡ q ≡ 3 (mod 4). A bit b is
// encrypted as c = y^b·r² mod n for random r, where y is a fixed
// pseudosquare (Jacobi symbol +1 but not a quadratic residue). Decryption
// is deciding quadratic residuosity, and for Blum moduli that is a single
// exponentiation:
//
//	c^(φ(n)/4) ≡ +1 (mod n)  ⇔  c is a QR  ⇔  b = 0
//	c^(φ(n)/4) ≡ −1 (mod n)  ⇔  b = 1
//
// The exponent d = φ(n)/4 splits additively exactly like the mRSA
// exponent: d = d_user + d_sem (mod φ(n)), and the two half-results
// multiply — so the SEM architecture transfers verbatim.
//
//cryptolint:vartime (legacy math/big scheme implementation; the limb discipline does not apply)
package gm

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/mathx"
)

var (
	// ErrDecrypt is returned when a ciphertext element is malformed (not a
	// unit, out of range, or with Jacobi symbol ≠ +1).
	ErrDecrypt = errors.New("gm: decryption error")

	// ErrKeygen is returned when key material is inconsistent.
	ErrKeygen = errors.New("gm: key generation error")
)

var one = big.NewInt(1)

// PublicKey is the GM public key: the Blum modulus and the pseudosquare.
type PublicKey struct {
	N *big.Int
	Y *big.Int
}

// PrivateKey holds the residuosity-deciding exponent d = φ(n)/4 together
// with φ(n) (needed for splitting).
//
//cryptolint:secret
type PrivateKey struct {
	Public *PublicKey //cryptolint:public (the public key)
	D      *big.Int
	Phi    *big.Int
}

// GenerateKey creates a GM key pair with a bits-size Blum modulus.
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	p, err := blumPrime(rng, bits/2)
	if err != nil {
		return nil, err
	}
	q, err := blumPrime(rng, bits-bits/2)
	if err != nil {
		return nil, err
	}
	for p.Cmp(q) == 0 {
		if q, err = blumPrime(rng, bits-bits/2); err != nil {
			return nil, err
		}
	}
	return KeyFromPrimes(p, q)
}

// KeyFromPrimes assembles a key from explicit Blum primes (p ≡ q ≡ 3 mod 4).
func KeyFromPrimes(p, q *big.Int) (*PrivateKey, error) {
	if p.Bit(0) != 1 || p.Bit(1) != 1 || q.Bit(0) != 1 || q.Bit(1) != 1 {
		return nil, fmt.Errorf("%w: primes must be ≡ 3 (mod 4)", ErrKeygen)
	}
	if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) || p.Cmp(q) == 0 {
		return nil, fmt.Errorf("%w: need two distinct primes", ErrKeygen)
	}
	n := new(big.Int).Mul(p, q)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	phi := new(big.Int).Mul(pm1, qm1)
	d := new(big.Int).Rsh(phi, 2) // φ(n)/4

	// For a Blum modulus, −1 has Jacobi symbol +1 but is a non-residue:
	// the canonical pseudosquare.
	y := new(big.Int).Sub(n, one)
	return &PrivateKey{
		Public: &PublicKey{N: n, Y: y},
		D:      d,
		Phi:    phi,
	}, nil
}

// blumPrime samples a prime ≡ 3 (mod 4).
func blumPrime(rng io.Reader, bits int) (*big.Int, error) {
	for {
		p, err := mathx.RandomPrime(rng, bits)
		if err != nil {
			return nil, err
		}
		if p.Bit(0) == 1 && p.Bit(1) == 1 {
			return p, nil
		}
	}
}

// EncryptBit encrypts one bit: c = y^b · r² mod n.
func (pk *PublicKey) EncryptBit(rng io.Reader, bit byte) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	r, err := unit(rng, pk.N)
	if err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(r, r)
	c.Mod(c, pk.N)
	if bit&1 == 1 {
		c.Mul(c, pk.Y)
		c.Mod(c, pk.N)
	}
	return c, nil
}

// Encrypt encrypts a byte string bit by bit (MSB first), producing
// 8·len(msg) group elements — the scheme's notorious ciphertext expansion,
// kept faithful here.
func (pk *PublicKey) Encrypt(rng io.Reader, msg []byte) ([]*big.Int, error) {
	out := make([]*big.Int, 0, len(msg)*8)
	for _, b := range msg {
		for i := 7; i >= 0; i-- {
			c, err := pk.EncryptBit(rng, (b>>uint(i))&1)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
	}
	return out, nil
}

// DecryptBit decides the residuosity of one ciphertext element with the
// full exponent.
func (sk *PrivateKey) DecryptBit(c *big.Int) (byte, error) {
	if err := checkElement(c, sk.Public.N); err != nil {
		return 0, err
	}
	t := new(big.Int).Exp(c, sk.D, sk.Public.N)
	return interpretResiduosity(t, sk.Public.N)
}

// Decrypt decrypts a bitwise ciphertext back into bytes.
func (sk *PrivateKey) Decrypt(cs []*big.Int) ([]byte, error) {
	return decryptBits(cs, sk.DecryptBit)
}

// HalfKey is one additive half of the residuosity exponent.
//
//cryptolint:secret
type HalfKey struct {
	N    *big.Int //cryptolint:public (the modulus)
	Half *big.Int
}

// Split divides d = φ(n)/4 into user and SEM halves mod φ(n), mirroring
// the mRSA split.
func Split(rng io.Reader, sk *PrivateKey) (user, sem *HalfKey, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	du, err := mathx.RandomInRange(rng, one, sk.Public.N)
	if err != nil {
		return nil, nil, fmt.Errorf("sample user half: %w", err)
	}
	dsem := new(big.Int).Sub(sk.D, du)
	dsem.Mod(dsem, sk.Phi)
	return &HalfKey{N: new(big.Int).Set(sk.Public.N), Half: du},
		&HalfKey{N: new(big.Int).Set(sk.Public.N), Half: dsem},
		nil
}

// Op applies the half exponent to one ciphertext element.
func (h *HalfKey) Op(c *big.Int) *big.Int {
	return new(big.Int).Exp(c, h.Half, h.N)
}

// CombineBit multiplies the two half-results and interprets the
// residuosity: +1 → 0, −1 → 1.
func CombineBit(pk *PublicKey, userPart, semPart *big.Int) (byte, error) {
	t := new(big.Int).Mul(userPart, semPart)
	t.Mod(t, pk.N)
	return interpretResiduosity(t, pk.N)
}

// MediatedDecrypt runs the two-party decryption in-process over a bitwise
// ciphertext.
func MediatedDecrypt(pk *PublicKey, user, sem *HalfKey, cs []*big.Int) ([]byte, error) {
	return decryptBits(cs, func(c *big.Int) (byte, error) {
		if err := checkElement(c, pk.N); err != nil {
			return 0, err
		}
		return CombineBit(pk, user.Op(c), sem.Op(c))
	})
}

func decryptBits(cs []*big.Int, decryptBit func(*big.Int) (byte, error)) ([]byte, error) {
	if len(cs)%8 != 0 {
		return nil, fmt.Errorf("%w: ciphertext length %d not a multiple of 8", ErrDecrypt, len(cs))
	}
	out := make([]byte, len(cs)/8)
	for i, c := range cs {
		bit, err := decryptBit(c)
		if err != nil {
			return nil, err
		}
		out[i/8] |= bit << uint(7-i%8)
	}
	return out, nil
}

// checkElement validates a ciphertext element: in range, a unit, and with
// Jacobi symbol +1 (anything else cannot be an honest encryption).
func checkElement(c *big.Int, n *big.Int) error {
	if c.Sign() <= 0 || c.Cmp(n) >= 0 {
		return fmt.Errorf("%w: element out of range", ErrDecrypt)
	}
	if new(big.Int).GCD(nil, nil, c, n).Cmp(one) != 0 {
		return fmt.Errorf("%w: element not a unit", ErrDecrypt)
	}
	if big.Jacobi(c, n) != 1 {
		return fmt.Errorf("%w: element has Jacobi symbol ≠ +1", ErrDecrypt)
	}
	return nil
}

// interpretResiduosity maps c^(φ/4) ∈ {+1, −1} to a plaintext bit.
func interpretResiduosity(t, n *big.Int) (byte, error) {
	if t.Cmp(one) == 0 {
		return 0, nil
	}
	nm1 := new(big.Int).Sub(n, one)
	if t.Cmp(nm1) == 0 {
		return 1, nil
	}
	return 0, fmt.Errorf("%w: residuosity test returned neither ±1", ErrDecrypt)
}

// unit samples a random element of Z_n*.
func unit(rng io.Reader, n *big.Int) (*big.Int, error) {
	for {
		r, err := mathx.RandomInRange(rng, one, n)
		if err != nil {
			return nil, err
		}
		if new(big.Int).GCD(nil, nil, r, n).Cmp(one) == 0 {
			return r, nil
		}
	}
}

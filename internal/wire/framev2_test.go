package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func mkReqItems(n int) []ReqItem {
	items := make([]ReqItem, n)
	for i := range items {
		id := []byte{'u', byte(i), '@', 'e', 'x'}
		pay := bytes.Repeat([]byte{byte(i + 1)}, 65)
		items[i] = ReqItem{ID: id, Payload: pay}
	}
	return items
}

func mkRespItems(n int) []RespItem {
	items := make([]RespItem, n)
	for i := range items {
		items[i] = RespItem{Status: byte(i % 3), Data: bytes.Repeat([]byte{byte(i)}, 129)}
	}
	return items
}

func TestV2RequestRoundTrip(t *testing.T) {
	var enc FrameEncoder
	var dec FrameDecoder
	for _, n := range []int{0, 1, 2, 64} {
		items := mkReqItems(n)
		frame, err := enc.EncodeRequest(0x07, items, 0)
		if err != nil {
			t.Fatalf("encode n=%d: %v", n, err)
		}
		op, got, wireN, err := dec.ReadRequest(bytes.NewReader(frame), 0, 0)
		if err != nil {
			t.Fatalf("decode n=%d: %v", n, err)
		}
		if op != 0x07 {
			t.Fatalf("op = %#x, want 0x07", op)
		}
		if wireN != len(frame) {
			t.Fatalf("wire size = %d, want %d", wireN, len(frame))
		}
		if len(got) != n {
			t.Fatalf("decoded %d items, want %d", len(got), n)
		}
		for i := range got {
			if !bytes.Equal(got[i].ID, items[i].ID) || !bytes.Equal(got[i].Payload, items[i].Payload) {
				t.Fatalf("item %d mismatch", i)
			}
		}
	}
}

func TestV2ResponseRoundTrip(t *testing.T) {
	var enc FrameEncoder
	var dec FrameDecoder
	for _, n := range []int{0, 1, 5, 100} {
		items := mkRespItems(n)
		frame, err := enc.EncodeResponse(0x11, items, 0)
		if err != nil {
			t.Fatalf("encode n=%d: %v", n, err)
		}
		op, got, _, err := dec.ReadResponse(bytes.NewReader(frame), 0, 0)
		if err != nil {
			t.Fatalf("decode n=%d: %v", n, err)
		}
		if op != 0x11 || len(got) != n {
			t.Fatalf("op=%#x len=%d, want 0x11/%d", op, len(got), n)
		}
		for i := range got {
			if got[i].Status != items[i].Status || !bytes.Equal(got[i].Data, items[i].Data) {
				t.Fatalf("item %d mismatch", i)
			}
		}
	}
}

// Empty payloads and empty IDs must survive the round trip distinctly from
// absent items.
func TestV2EmptyFields(t *testing.T) {
	var enc FrameEncoder
	var dec FrameDecoder
	items := []ReqItem{{ID: nil, Payload: nil}, {ID: []byte("x"), Payload: nil}, {ID: nil, Payload: []byte{9}}}
	frame, err := enc.EncodeRequest(1, items, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, _, err := dec.ReadRequest(bytes.NewReader(frame), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0].ID) != 0 || len(got[0].Payload) != 0 ||
		string(got[1].ID) != "x" || len(got[2].Payload) != 1 {
		t.Fatalf("empty-field round trip mangled: %+v", got)
	}
}

func TestV2HelloAck(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteV2Hello(&buf, V2Version); err != nil {
		t.Fatal(err)
	}
	first, _ := buf.ReadByte()
	if first != V2MagicByte {
		t.Fatalf("preamble first byte %#x, want %#x", first, V2MagicByte)
	}
	ver, err := ReadV2HelloTail(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ver != V2Version {
		t.Fatalf("hello version %d, want %d", ver, V2Version)
	}

	buf.Reset()
	if err := WriteV2Ack(&buf, V2Version, 64, 1<<20); err != nil {
		t.Fatal(err)
	}
	gotVer, maxBatch, maxFrame, err := ReadV2Ack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotVer != V2Version || maxBatch != 64 || maxFrame != 1<<20 {
		t.Fatalf("ack = (%d, %d, %d)", gotVer, maxBatch, maxFrame)
	}

	// Corrupted magic and unsupported version are both protocol errors.
	if _, err := ReadV2HelloTail(bytes.NewReader([]byte{'X', 'M', '2', 2})); !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad magic tail: %v", err)
	}
	bad := []byte{'S', 'E', 'M', '2', 9, 0, 64, 0, 0, 16, 0}
	if _, _, _, err := ReadV2Ack(bytes.NewReader(bad)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad ack version: %v", err)
	}
	if err := WriteV2Ack(io.Discard, V2Version, 0, 1<<20); err == nil {
		t.Fatal("ack accepted maxBatch 0")
	}
	if err := WriteV2Ack(io.Discard, V2Version, 1, V2MaxFrame+1); err == nil {
		t.Fatal("ack accepted maxFrame beyond the sniffable bound")
	}
}

func TestV2Limits(t *testing.T) {
	var enc FrameEncoder
	var dec FrameDecoder

	// Encoder-side: frame cap and batch cap.
	if _, err := enc.EncodeRequest(1, mkReqItems(3), 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize encode: %v", err)
	}
	if _, err := enc.EncodeResponse(1, mkRespItems(2), 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize response encode: %v", err)
	}

	// Decoder-side frame cap: the announced body must be rejected before
	// any allocation or read of the body.
	frame, err := enc.EncodeRequest(1, mkReqItems(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := dec.ReadRequest(bytes.NewReader(frame), 64, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize decode: %v", err)
	}

	// Decoder-side batch cap.
	if _, _, _, err := dec.ReadRequest(bytes.NewReader(frame), 0, 4); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("over-batch decode: %v", err)
	}
	resp, err := enc.EncodeResponse(1, mkRespItems(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := dec.ReadResponse(bytes.NewReader(resp), 0, 4); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("over-batch response decode: %v", err)
	}
}

func TestV2Malformed(t *testing.T) {
	var enc FrameEncoder
	var dec FrameDecoder
	frame, err := enc.EncodeRequest(2, mkReqItems(3), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Clean EOF before any byte surfaces as io.EOF so servers can tell a
	// closed connection from a torn frame.
	if _, _, _, err := dec.ReadRequest(bytes.NewReader(nil), 0, 0); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}

	// Every strict prefix of a valid frame must fail as a protocol error
	// (or unexpected EOF inside the length prefix), never succeed.
	for cut := 1; cut < len(frame); cut++ {
		_, _, _, err := dec.ReadRequest(bytes.NewReader(frame[:cut]), 0, 0)
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}

	// A declared item length overrunning the frame is a protocol error.
	over := bytes.Clone(frame)
	binary.BigEndian.PutUint32(over[len(over)-4-65:], 1<<20)
	if _, _, _, err := dec.ReadRequest(bytes.NewReader(over), 0, 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("overrunning item: %v", err)
	}

	// An item length with the sign bit set (≥ 2³¹) must be the same
	// protocol error — on 32-bit platforms int(uint32) wraps negative, and
	// a signed bound check would let the slice expression panic.
	huge := bytes.Clone(frame)
	binary.BigEndian.PutUint32(huge[len(huge)-4-65:], 1<<31)
	if _, _, _, err := dec.ReadRequest(bytes.NewReader(huge), 0, 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("sign-bit item length: %v", err)
	}

	// Trailing bytes after the last item are a protocol error.
	junk := bytes.Clone(frame)
	junk = append(junk, 0xAA)
	binary.BigEndian.PutUint32(junk[:4], uint32(len(junk)-4))
	if _, _, _, err := dec.ReadRequest(bytes.NewReader(junk), 0, 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("trailing garbage: %v", err)
	}

	// A body shorter than the op+count header is a protocol error.
	short := []byte{0, 0, 0, 2, 1, 0}
	if _, _, _, err := dec.ReadRequest(bytes.NewReader(short), 0, 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("short body: %v", err)
	}
}

// resettableReader replays one frame without per-iteration allocation so
// AllocsPerRun measures only the codec.
type resettableReader struct {
	data []byte
	off  int
}

func (r *resettableReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestV2CodecZeroAlloc(t *testing.T) {
	var enc FrameEncoder
	var dec FrameDecoder
	items := mkReqItems(64)
	resp := mkRespItems(64)

	// Warm the reused buffers once.
	frame, err := enc.EncodeRequest(1, items, 0)
	if err != nil {
		t.Fatal(err)
	}
	rr := &resettableReader{data: bytes.Clone(frame)}
	if _, _, _, err := dec.ReadRequest(rr, 0, 0); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		if _, err := enc.EncodeRequest(1, items, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("EncodeRequest allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		rr.off = 0
		if _, _, _, err := dec.ReadRequest(rr, 0, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ReadRequest allocates %.1f/op, want 0", n)
	}

	respFrame, err := enc.EncodeResponse(1, resp, 0)
	if err != nil {
		t.Fatal(err)
	}
	rr2 := &resettableReader{data: bytes.Clone(respFrame)}
	if _, _, _, err := dec.ReadResponse(rr2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := enc.EncodeResponse(1, resp, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("EncodeResponse allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		rr2.off = 0
		if _, _, _, err := dec.ReadResponse(rr2, 0, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ReadResponse allocates %.1f/op, want 0", n)
	}
}

// Decoded views must alias the decoder buffer (zero-copy), so a second
// Read invalidates them — the documented contract.
func TestV2DecodeAliasesBuffer(t *testing.T) {
	var enc FrameEncoder
	var dec FrameDecoder
	a, _ := enc.EncodeRequest(1, []ReqItem{{ID: []byte("alice"), Payload: []byte{1, 2, 3}}}, 0)
	a = bytes.Clone(a)
	b, _ := enc.EncodeRequest(1, []ReqItem{{ID: []byte("bobby"), Payload: []byte{9, 9, 9}}}, 0)

	_, first, _, err := dec.ReadRequest(bytes.NewReader(a), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := first[0].ID
	if _, _, _, err := dec.ReadRequest(bytes.NewReader(b), 0, 0); err != nil {
		t.Fatal(err)
	}
	if string(id) == "alice" {
		t.Fatal("decode copied the buffer; expected aliasing reuse")
	}
}

func FuzzFrameV2(f *testing.F) {
	var seedEnc FrameEncoder
	seed1, _ := seedEnc.EncodeRequest(1, mkReqItems(3), 0)
	f.Add(bytes.Clone(seed1), true)
	seed2, _ := seedEnc.EncodeResponse(2, mkRespItems(2), 0)
	f.Add(bytes.Clone(seed2), false)
	f.Add([]byte{0, 0, 0, 3, 1, 0, 0}, true)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, false)
	f.Add([]byte{}, true)

	f.Fuzz(func(t *testing.T, data []byte, asRequest bool) {
		var dec FrameDecoder
		var enc FrameEncoder
		if asRequest {
			op, items, n, err := dec.ReadRequest(bytes.NewReader(data), 0, 0)
			if err != nil {
				return
			}
			if n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			// Differential check: re-encoding the decoded view must
			// reproduce the consumed bytes exactly.
			re, err := enc.EncodeRequest(op, items, 0)
			if err != nil {
				t.Fatalf("re-encode of valid decode failed: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("request round trip mismatch:\n in  %x\n out %x", data[:n], re)
			}
		} else {
			op, items, n, err := dec.ReadResponse(bytes.NewReader(data), 0, 0)
			if err != nil {
				return
			}
			re, err := enc.EncodeResponse(op, items, 0)
			if err != nil {
				t.Fatalf("re-encode of valid decode failed: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("response round trip mismatch:\n in  %x\n out %x", data[:n], re)
			}
		}
	})
}

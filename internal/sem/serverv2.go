package sem

import (
	"errors"
	"io"
	"net"
	"time"

	"repro/internal/parallel"
	"repro/internal/wire"
)

// v2job is one in-flight v2 frame. Each job owns its own frame decoder and
// encoder: decoded items alias the decoder's buffer, so with pipelining a
// shared decoder would be overwritten while earlier batches still execute.
// Jobs cycle through a per-connection free list, so a settled connection
// serves batches with no per-frame allocation in the framing layer (the
// dispatch layer allocates its crypto objects as in v1).
type v2job struct {
	dec     wire.FrameDecoder
	enc     wire.FrameEncoder
	op      byte
	items   []wire.ReqItem
	results []wire.RespItem
	reqs    []Request
	ready   chan struct{}
	// failed, when non-nil, short-circuits the writer with a single-item
	// error frame built by the reader (over-batch refusals).
	failed []wire.RespItem
}

// executeBatch runs every item of a v2 batch through the scheme backends
// in one pass, fanning across the configured parallelism, and stores the
// per-item results in request order. Executed on a worker-pool goroutine,
// so one batch occupies one queue slot no matter its size.
func (s *Server) executeBatch(j *v2job) {
	n := len(j.items)
	if cap(j.results) < n {
		j.results = make([]wire.RespItem, n)
	}
	j.results = j.results[:n]
	if cap(j.reqs) < n {
		j.reqs = make([]Request, n)
	}
	j.reqs = j.reqs[:n]

	op := opForV2(j.op)
	if op == "" {
		for i := range j.results {
			j.results[i] = wire.RespItem{Status: v2StatusBadRequest, Data: []byte("unknown v2 op")}
		}
		return
	}

	// Width derates with the batch so tiny batches stay inline, and with
	// the server's load: extra width beyond this worker's own goroutine is
	// borrowed from the shared fanSlots permits, so concurrent batch jobs
	// cannot multiply into Workers² crypto goroutines (the bounded-
	// parallelism invariant: at most 2·Workers−1 in flight, exactly
	// Workers at saturation, when every fan runs width 1 inline). The fan
	// re-raises worker panics, but dispatch never panics by contract.
	width := s.acquireFanWidth(n)
	defer s.releaseFanWidth(width)
	parallel.FanChunks(width, func(lo, hi int) {
		chunkLo, chunkHi := lo*n/width, hi*n/width
		for i := chunkLo; i < chunkHi; i++ {
			item := j.items[i]
			req := &j.reqs[i]
			req.Op = op
			req.ID = string(item.ID)
			req.Reason = ""
			req.Payload = item.Payload
			if j.op == v2OpRevoke {
				// The revoke item carries the reason where crypto ops
				// carry their operand.
				req.Reason = string(item.Payload)
				req.Payload = nil
			}
			start := time.Now()
			resp := s.dispatch(req)
			s.met.observe(op, resp, time.Since(start))
			j.results[i] = v2RespItemFor(j.op, resp)
		}
	})
}

// acquireFanWidth returns the parallelism a batch of n items may use right
// now: 1 for the calling worker's own goroutine plus however many of the
// shared fanSlots permits are free, capped at min(n, Workers). It never
// blocks — under load it degrades to 1 and the batch executes inline on
// its worker, which is exactly the bounded-pool behavior of the v1 path.
// Pair every call with releaseFanWidth(width).
func (s *Server) acquireFanWidth(n int) int {
	width := 1
	limit := n
	if limit > s.cfg.Workers {
		limit = s.cfg.Workers
	}
	for width < limit {
		select {
		case <-s.fanSlots:
			width++
		default:
			return width
		}
	}
	return width
}

// releaseFanWidth returns the width−1 borrowed fan permits.
func (s *Server) releaseFanWidth(width int) {
	for i := 1; i < width; i++ {
		s.fanSlots <- struct{}{}
	}
}

// serveV2 is the binary-protocol counterpart of serveV1: a reader that
// decodes frames into pooled jobs and submits each batch to the worker
// pool as one unit, and a writer that encodes and sends response frames in
// request order.
func (s *Server) serveV2(conn net.Conn) {
	free := make(chan *v2job, pipelineDepth)
	pending := make(chan *v2job, pipelineDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for j := range pending {
			results := j.failed
			if results == nil {
				<-j.ready
				results = j.results
			}
			if broken {
				free <- j
				continue // keep draining so the reader never wedges
			}
			frame, err := j.enc.EncodeResponse(j.op, results, s.cfg.MaxFrame)
			if err != nil {
				// The batch's results exceed the frame cap (or the batch
				// grew past the wire ceiling) — the stream cannot carry
				// the response, so refuse it in one typed item instead.
				j.failed = j.failed[:0]
				j.failed = append(j.failed, wire.RespItem{
					Status: v2StatusBadRequest,
					Data:   []byte("response exceeds the negotiated frame limit"),
				})
				frame, err = j.enc.EncodeResponse(j.op, j.failed, s.cfg.MaxFrame)
				if err != nil {
					s.cfg.Logf("sem: encode v2 refusal: %v", err)
					broken = true
					_ = conn.Close()
					free <- j
					continue
				}
			}
			if s.cfg.IOTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
			}
			_, werr := conn.Write(frame)
			s.met.frameTx(len(frame))
			if werr != nil {
				s.cfg.Logf("sem: write v2 frame to %v: %v", conn.RemoteAddr(), werr)
				broken = true
				_ = conn.Close() // unblock the reader
			}
			free <- j
		}
	}()

	created := 0
	for {
		var j *v2job
		select {
		case j = <-free:
		default:
			if created < pipelineDepth {
				j = &v2job{ready: make(chan struct{}, 1)}
				created++
			} else {
				j = <-free
			}
		}
		j.failed = nil

		if s.cfg.IOTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		op, items, n, err := j.dec.ReadRequest(conn, s.cfg.MaxFrame, s.cfg.MaxBatch)
		s.met.frameRx(n)
		if err != nil {
			if errors.Is(err, wire.ErrBatchTooLarge) {
				// The frame was fully consumed — the stream is still
				// synchronized — but its batch breaks the negotiated
				// contract. Refuse it with a typed single-item response
				// (the op echo lets a pipelined client correlate it) and
				// keep serving.
				s.refuseV2(j, op, "batch exceeds the negotiated limit", pending)
				continue
			}
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// The announced body was never read, so the stream cannot
				// be resynchronized: answer with a typed refusal, then
				// drop the connection.
				s.refuseV2(j, op, "frame exceeds the negotiated limit", pending)
			} else if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("sem: read v2 frame from %v: %v", conn.RemoteAddr(), err)
			}
			break
		}
		s.met.batch(len(items))
		j.op, j.items = op, items
		pending <- j
		s.jobs <- job{batch: j}
	}
	close(pending)
	<-writerDone
}

// refuseV2 queues a typed single-item CodeBadRequest response for a frame
// the reader rejected at the protocol layer.
func (s *Server) refuseV2(j *v2job, op byte, msg string, pending chan *v2job) {
	resp := &Response{OK: false, Code: CodeBadRequest, Error: msg}
	s.met.observe(opForV2(op), resp, 0)
	j.op = op
	j.failed = []wire.RespItem{{Status: v2StatusBadRequest, Data: []byte(msg)}}
	pending <- j
}

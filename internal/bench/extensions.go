package bench

import (
	"crypto/rand"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dkg"
	"repro/internal/gm"
	"repro/internal/pairing"
	"repro/internal/rabin"
)

// ExtensionsConfig parameterizes the EXT experiment (the paper-conclusion
// conjectures, DESIGN.md §6).
type ExtensionsConfig struct {
	Pairing   *pairing.Params // default: fast
	GMBits    int             // GM modulus, default 512
	RabinBits int             // Rabin modulus, default 1024
	Iters     int             // timing iterations, default 3
}

// Extensions measures the extension schemes: mediated GM, mediated
// Rabin-SAEP (+ modified-Rabin signature), dual-revocable signcryption and
// the joint-Feldman DKG.
func Extensions(cfg ExtensionsConfig) (*Table, error) {
	if cfg.Pairing == nil {
		pp, err := pairing.Fast()
		if err != nil {
			return nil, err
		}
		cfg.Pairing = pp
	}
	if cfg.GMBits == 0 {
		cfg.GMBits = 512
	}
	if cfg.RabinBits == 0 {
		cfg.RabinBits = 1024
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	timeIt := func(body func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < cfg.Iters; i++ {
			if err := body(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(cfg.Iters), nil
	}
	var rows [][]string
	addRow := func(scheme, op string, body func() error) error {
		d, err := timeIt(body)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", scheme, op, err)
		}
		rows = append(rows, []string{scheme, op, d.Round(time.Microsecond).String()})
		return nil
	}

	// Mediated GM.
	gmKey, err := gm.GenerateKey(rand.Reader, cfg.GMBits)
	if err != nil {
		return nil, err
	}
	gmUser, gmSEMHalf, err := gm.Split(rand.Reader, gmKey)
	if err != nil {
		return nil, err
	}
	gmSEM := core.NewGMSEM(core.NewRegistry())
	gmSEM.Register("x", gmSEMHalf)
	gmMsg := []byte("extension probe")
	gmCT, err := gmKey.Public.Encrypt(rand.Reader, gmMsg)
	if err != nil {
		return nil, err
	}
	if err := addRow("mediated-gm", "encrypt-15B", func() error {
		_, err := gmKey.Public.Encrypt(rand.Reader, gmMsg)
		return err
	}); err != nil {
		return nil, err
	}
	if err := addRow("mediated-gm", "decrypt-15B", func() error {
		_, err := core.GMDecrypt(gmSEM, "x", gmKey.Public, gmUser, gmCT)
		return err
	}); err != nil {
		return nil, err
	}

	// Mediated Rabin.
	rbKey, err := rabin.GenerateKey(rand.Reader, cfg.RabinBits)
	if err != nil {
		return nil, err
	}
	rbUser, rbSEMHalf, err := rabin.Split(rand.Reader, rbKey)
	if err != nil {
		return nil, err
	}
	rbSEM := core.NewRabinSEM(core.NewRegistry())
	rbSEM.Register("x", rbSEMHalf)
	rbCT, err := rbKey.Public.Encrypt(rand.Reader, gmMsg)
	if err != nil {
		return nil, err
	}
	if err := addRow("mediated-rabin", "decrypt", func() error {
		_, err := core.RabinDecrypt(rbSEM, "x", rbKey.Public, rbUser, rbCT, len(gmMsg))
		return err
	}); err != nil {
		return nil, err
	}
	if err := addRow("mediated-rabin", "sign", func() error {
		_, err := core.RabinSign(rbSEM, "x", rbKey.Public, rbUser, gmMsg)
		return err
	}); err != nil {
		return nil, err
	}

	// Signcryption.
	reg := core.NewRegistry()
	pkg, err := core.NewMediatedPKG(rand.Reader, cfg.Pairing, 128)
	if err != nil {
		return nil, err
	}
	ibeSEM := core.NewIBESEM(pkg.Public(), reg)
	bobUser, bobSEM, err := pkg.SplitExtract(rand.Reader, "bob")
	if err != nil {
		return nil, err
	}
	ibeSEM.Register(bobSEM)
	ta := core.NewGDHAuthority(cfg.Pairing)
	gdhSEM := core.NewGDHSEM(cfg.Pairing, reg)
	alice, aliceSEM, err := ta.Keygen(rand.Reader, "alice")
	if err != nil {
		return nil, err
	}
	gdhSEM.Register(aliceSEM)
	sc := core.NewSigncrypter(pkg.Public(), ibeSEM, gdhSEM)
	scCT, err := sc.Signcrypt(rand.Reader, alice, "bob", gmMsg)
	if err != nil {
		return nil, err
	}
	if err := addRow("signcryption", "signcrypt", func() error {
		_, err := sc.Signcrypt(rand.Reader, alice, "bob", gmMsg)
		return err
	}); err != nil {
		return nil, err
	}
	if err := addRow("signcryption", "designcrypt", func() error {
		_, err := sc.Designcrypt(bobUser, "alice", alice.Public, scCT)
		return err
	}); err != nil {
		return nil, err
	}

	// DKG.
	if err := addRow("dkg", "run(3,5)", func() error {
		_, _, err := dkg.Run(rand.Reader, cfg.Pairing, 3, 5, nil)
		return err
	}); err != nil {
		return nil, err
	}

	return &Table{
		ID: "EXT",
		Caption: fmt.Sprintf("extension schemes (paper-conclusion conjectures) at |q|=%d/|p|=%d pairing, %d-bit GM, %d-bit Rabin",
			cfg.Pairing.Q().BitLen(), cfg.Pairing.P().BitLen(), cfg.GMBits, cfg.RabinBits),
		Columns: []string{"scheme", "operation", "time/op"},
		Rows:    rows,
		Notes: []string{
			"GM pays 8 group elements per plaintext byte; Rabin-SAEP costs ≈ mRSA; signcryption = GDH-sign + FullIdent-encrypt",
		},
	}, nil
}

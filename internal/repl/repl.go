// Package repl replicates the revocation journal across a SEM fleet.
//
// The paper's revocation guarantee — a revoked identity loses its
// capabilities the moment the SEM refuses its half of an operation — is
// only as strong as every mediator's view of the revocation list. A
// sharded fleet where each daemon keeps its own journal re-opens the hole
// the SEM closed: a shard that was down during a Revoke comes back serving
// the revoked identity. repl closes it by making one shard the *leader*
// for revocation writes and streaming its sequenced journal to every
// other shard (the followers).
//
// The design is deliberately smaller than consensus. There is no
// election: the operator assigns the leader and its epoch (-repl-leader /
// -repl-epoch on cmd/semd), and a replacement leader must be started with
// a strictly higher epoch. What the protocol does guarantee:
//
//   - Ordered, exactly-once application: every mutation carries the
//     leader-assigned sequence number; followers apply in order, skip
//     redelivered records, and refuse gaps with ErrSeqGap.
//   - Epoch fencing: a follower that has heard from epoch E rejects
//     appends and snapshots from any sender below E with ErrStaleEpoch,
//     so a deposed leader cannot un-converge the fleet once its successor
//     has spoken.
//   - Catch-up with log matching: a restarting follower reports its epoch
//     and last durable sequence (repl.status). The leader streams the
//     missing suffix only when that position is verifiably within its own
//     history — the follower has already adopted this leader's epoch and
//     is at or behind the leader's last seq. Any other position (a legacy
//     pre-replication journal with self-assigned seqs, a fleet member left
//     over from a deposed leader's reign, a follower ahead of the leader)
//     is resynced with a full snapshot install, never a suffix: seq
//     numbers from different histories must not be compared.
//   - A single write path: once a journal has adopted a leader epoch its
//     daemon refuses direct revoke/unrevoke ops with ErrNotLeader, so a
//     follower can never self-sequence a mutation that would fork its
//     numbering from the leader's. The leader arms this fence on first
//     contact via the resync snapshot, and the adoption is durable (the
//     journal persists epoch changes), so the fence survives follower
//     restarts.
//
// What the protocol cannot catch: two leaders started with the *same*
// epoch. Each would accept and sequence its own mutations, and their
// followers cannot tell the histories apart. Operators must assign epochs
// strictly monotonically (cmd/semd refuses -repl-epoch 0; promote with a
// higher value than any predecessor's).
//
// Transport is the existing SEM v2 wire protocol: three ops
// (repl.append / repl.snapshot / repl.status) whose payloads are encoded
// by internal/wire. This package never touches sockets — the Leader
// speaks through the Peer interface and internal/sem provides the
// concrete client adapter, keeping repl testable with in-memory peers.
package repl

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

var (
	// ErrStaleEpoch is returned (and sent over the wire) when a replication
	// message arrives from a sender whose epoch is below the receiver's —
	// the deposed-leader signature.
	ErrStaleEpoch = errors.New("repl: stale epoch")

	// ErrSeqGap is returned when an append does not contiguously extend the
	// follower's journal. The leader reacts by falling back to a snapshot.
	ErrSeqGap = errors.New("repl: sequence gap")

	// ErrNotLeader is returned when a direct revocation mutation reaches a
	// daemon that follows a replication leader (its journal has adopted an
	// epoch > 0). A follower that self-sequenced the mutation would fork
	// the journal numbering — and a racing fast-path hint could then shadow
	// the leader's authoritative order forever — so the write is refused
	// and the caller pointed at the leader.
	ErrNotLeader = errors.New("repl: not the revocation leader")
)

// SnapshotChunk is one slice of a full-state transfer, in application
// form. Entries across all Chunks chunks of the same (Epoch, BaseSeq)
// snapshot concatenate to the complete revocation set as of BaseSeq.
type SnapshotChunk struct {
	Epoch   uint64
	BaseSeq uint64
	Total   int
	Index   int
	Chunks  int
	Entries []core.RevocationEntry
}

// Follower applies leader-issued replication traffic to the local
// journal. One Follower serves one journal; the SEM server routes the
// repl.* ops here. Safe for concurrent use — applies are serialized.
type Follower struct {
	mu sync.Mutex
	j  *core.Journal

	// In-progress snapshot assembly. Chunks must arrive in order on one
	// connection; a chunk that does not continue the pending assembly
	// resets it (the leader restarts snapshots from chunk 0 on reconnect).
	snapEpoch   uint64
	snapBase    uint64
	snapTotal   int
	snapChunks  int
	snapNext    int
	snapEntries []core.RevocationEntry

	applied      *obs.Counter
	snapshots    *obs.Counter
	staleRejects *obs.Counter
	gapRejects   *obs.Counter
}

// NewFollower wraps j as the target of replication traffic.
func NewFollower(j *core.Journal) *Follower {
	return &Follower{j: j}
}

// Journal returns the journal the follower applies into.
func (f *Follower) Journal() *core.Journal { return f.j }

// Instrument registers the follower's series with reg. The journal's own
// Instrument (last-seq/epoch gauges) is what the convergence checks
// scrape; these counters narrate how the follower got there.
func (f *Follower) Instrument(reg *obs.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applied = reg.Counter("repl_applied_records_total", "replicated records applied to the local journal")
	f.snapshots = reg.Counter("repl_snapshots_installed_total", "full snapshots installed from the leader")
	f.staleRejects = reg.Counter("repl_stale_epoch_rejects_total", "replication messages rejected for a stale sender epoch")
	f.gapRejects = reg.Counter("repl_seq_gap_rejects_total", "appends rejected for a sequence gap")
}

// Status reports the follower's replication position: the highest epoch
// it has adopted and the sequence number of its newest durable mutation.
func (f *Follower) Status() (epoch, lastSeq uint64) {
	return f.j.Epoch(), f.j.LastSeq()
}

// ApplyAppend applies a contiguous batch of records from a sender at
// leaderEpoch. Records at or below the journal's current sequence are
// skipped (redelivery is idempotent); a batch from a stale sender fails
// with ErrStaleEpoch, and one that would leave a hole fails with
// ErrSeqGap — the leader answers that with a snapshot.
func (f *Follower) ApplyAppend(leaderEpoch uint64, recs []core.ReplRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur := f.j.Epoch(); leaderEpoch < cur {
		f.staleRejects.Inc()
		return fmt.Errorf("%w: append from epoch %d, follower at epoch %d", ErrStaleEpoch, leaderEpoch, cur)
	}
	// Adopting the sender's epoch arms the fence — durably, the journal
	// persists epoch adoption — so the predecessor leader stays stale even
	// across a follower restart.
	if err := f.j.SetEpoch(leaderEpoch); err != nil {
		return err
	}
	last := f.j.LastSeq()
	start := 0
	for start < len(recs) && recs[start].Seq <= last {
		start++
	}
	recs = recs[start:]
	if len(recs) == 0 {
		return nil
	}
	if recs[0].Seq != last+1 {
		f.gapRejects.Inc()
		return fmt.Errorf("%w: append starts at seq %d, journal at %d", ErrSeqGap, recs[0].Seq, last)
	}
	n, err := f.j.ApplyReplicated(recs)
	f.applied.Add(uint64(n))
	return err
}

// ApplySnapshotChunk feeds one chunk of a full-state transfer. When the
// final chunk arrives the assembled snapshot is installed atomically —
// the journal file is rewritten and the registry reset, firing
// revoke/unrevoke listeners for the differences. Chunks must arrive in
// order; an out-of-sequence chunk drops the pending assembly and errors,
// and the leader restarts the snapshot from chunk 0.
func (f *Follower) ApplySnapshotChunk(c *SnapshotChunk) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur := f.j.Epoch(); c.Epoch < cur {
		f.staleRejects.Inc()
		return fmt.Errorf("%w: snapshot from epoch %d, follower at epoch %d", ErrStaleEpoch, c.Epoch, cur)
	}
	if c.Chunks <= 0 || c.Index < 0 || c.Index >= c.Chunks {
		return fmt.Errorf("repl: snapshot chunk index %d outside 0..%d", c.Index, c.Chunks)
	}
	if c.Index == 0 {
		f.snapEpoch, f.snapBase = c.Epoch, c.BaseSeq
		f.snapTotal, f.snapChunks, f.snapNext = c.Total, c.Chunks, 0
		f.snapEntries = f.snapEntries[:0]
	} else if c.Epoch != f.snapEpoch || c.BaseSeq != f.snapBase || c.Chunks != f.snapChunks || c.Index != f.snapNext {
		f.snapNext = 0
		f.snapEntries = nil
		return fmt.Errorf("repl: snapshot chunk %d/%d (epoch %d, base %d) does not continue the pending assembly", c.Index, c.Chunks, c.Epoch, c.BaseSeq)
	}
	f.snapEntries = append(f.snapEntries, c.Entries...)
	f.snapNext = c.Index + 1
	if f.snapNext < f.snapChunks {
		return nil
	}
	entries := f.snapEntries
	f.snapEntries = nil
	f.snapNext = 0
	if len(entries) != f.snapTotal {
		return fmt.Errorf("repl: snapshot assembled %d entries, leader announced %d", len(entries), f.snapTotal)
	}
	if err := f.j.InstallSnapshot(f.snapEpoch, f.snapBase, entries); err != nil {
		return err
	}
	f.snapshots.Inc()
	return nil
}

package keyfile

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mrsa"
)

func testDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := NewDeployment(DeploymentConfig{ParamSet: "toy", MsgLen: 32, RSABits: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"alice@example.com", "bob@example.com"} {
		if err := d.Enroll(id); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDeploymentWriteAndReload(t *testing.T) {
	d := testDeployment(t)
	dir := t.TempDir()
	if err := d.Write(dir); err != nil {
		t.Fatal(err)
	}

	var sys System
	if err := Load(filepath.Join(dir, "system.json"), &sys); err != nil {
		t.Fatal(err)
	}
	var store SEMStore
	if err := Load(filepath.Join(dir, "sem-store.json"), &store); err != nil {
		t.Fatal(err)
	}
	var alice User
	if err := Load(filepath.Join(dir, "users", UserFileName("alice@example.com")), &alice); err != nil {
		t.Fatal(err)
	}

	// Rebuild everything and run a full IBE round trip.
	reg := core.NewRegistry()
	ibeSEM, gdhSEM, rsaSEM, err := store.BuildSEMs(&sys, reg)
	if err != nil {
		t.Fatal(err)
	}
	if gdhSEM == nil || rsaSEM == nil {
		t.Fatal("SEM backends missing")
	}
	pub, err := sys.PublicParams()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := sys.Params()
	if err != nil {
		t.Fatal(err)
	}
	userKey, err := alice.IBEUserKey(pp)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{0xAA}, sys.MsgLen)
	ct, err := pub.Encrypt(rand.Reader, "alice@example.com", msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Decrypt(ibeSEM, userKey, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("reloaded deployment failed to decrypt")
	}

	// GDH round trip from reloaded material.
	gdhKey, err := alice.GDHUserKey(pp)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := core.Sign(gdhSEM, gdhKey, []byte("reloaded"))
	if err != nil {
		t.Fatal(err)
	}
	vk, err := sys.GDHPublicKey("alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := vk.Verify([]byte("reloaded"), sig); err != nil {
		t.Fatal(err)
	}

	// RSA round trip from reloaded material.
	rsaPub, err := sys.RSAPublicKey("alice@example.com")
	if err != nil {
		t.Fatal(err)
	}
	rsaUser, err := alice.RSAUserKey(&sys)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := rsaPub.EncryptOAEP(rand.Reader, []byte("rsa reload"))
	if err != nil {
		t.Fatal(err)
	}
	ci := new(big.Int).SetBytes(rct)
	semHalf, err := rsaSEM.HalfDecrypt("alice@example.com", ci)
	if err != nil {
		t.Fatal(err)
	}
	combined := mrsa.Combine(rsaPub.N, rsaUser.Op(ci), semHalf)
	plain, err := mrsa.FinishDecrypt(rsaPub, combined)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != "rsa reload" {
		t.Fatal("RSA reload round trip failed")
	}
}

func TestEnrollDuplicate(t *testing.T) {
	d := testDeployment(t)
	if err := d.Enroll("alice@example.com"); err == nil {
		t.Fatal("duplicate enrollment accepted")
	}
}

func TestUsersList(t *testing.T) {
	d := testDeployment(t)
	if got := len(d.Users()); got != 2 {
		t.Fatalf("users = %d, want 2", got)
	}
}

func TestUserFileName(t *testing.T) {
	got := UserFileName("a/b\\c:d@e")
	if got != "a_b_c_d_at_e.json" {
		t.Fatalf("UserFileName = %q", got)
	}
}

func TestLoadErrors(t *testing.T) {
	var sys System
	if err := Load("/nonexistent/system.json", &sys); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := Save(bad, map[string]int{"x": 1}, false); err != nil {
		t.Fatal(err)
	}
	var user User
	if err := Load(bad, &user); err != nil {
		// JSON of wrong shape unmarshals without error into a struct with
		// no matching fields; corrupt the file to force a parse error.
		t.Fatalf("unexpected: %v", err)
	}
}

func TestDeploymentWithoutRSA(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{ParamSet: "toy", MsgLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll("x@x"); err != nil {
		t.Fatal(err)
	}
	if len(d.System().RSAModulus) != 0 {
		t.Fatal("RSA modulus present without baseline")
	}
	var u User
	*(&u) = *d.users["x@x"]
	if _, err := u.RSAUserKey(d.System()); err == nil {
		t.Fatal("RSA key decoded without modulus")
	}
	var sys System
	*(&sys) = *d.System()
	if _, err := sys.RSAPublicKey("x@x"); err == nil {
		t.Fatal("RSA public key without modulus")
	}
}

func TestSystemAccessorErrors(t *testing.T) {
	sys := &System{ParamSet: "nope"}
	if _, err := sys.Params(); err == nil {
		t.Fatal("unknown param set accepted")
	}
	sys2 := &System{ParamSet: "toy", MsgLen: 32, PPub: []byte{1, 2}}
	if _, err := sys2.PublicParams(); err == nil {
		t.Fatal("garbage PPub accepted")
	}
	sys3 := &System{ParamSet: "toy", GDHKeys: map[string][]byte{}}
	if _, err := sys3.GDHPublicKey("missing"); err == nil {
		t.Fatal("missing GDH key accepted")
	}
}

func TestThresholdDeploymentRoundTrip(t *testing.T) {
	d, err := NewThresholdDeployment(ThresholdDeploymentConfig{
		ParamSet: "toy", MsgLen: 32, T: 2, N: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll("vault@example.com"); err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll("vault@example.com"); err == nil {
		t.Fatal("duplicate threshold enrollment accepted")
	}
	dir := t.TempDir()
	if err := d.Write(dir); err != nil {
		t.Fatal(err)
	}
	var sys ThresholdSystem
	if err := Load(filepath.Join(dir, "threshold.json"), &sys); err != nil {
		t.Fatal(err)
	}
	params, err := sys.Params()
	if err != nil {
		t.Fatal(err)
	}
	if params.T != 2 || params.N != 3 {
		t.Fatalf("params (t,n) = (%d,%d)", params.T, params.N)
	}
	// Reload player 2 and verify its shares.
	var pf PlayerFile
	if err := Load(filepath.Join(dir, "players", "player-2.json"), &pf); err != nil {
		t.Fatal(err)
	}
	shares, err := pf.KeyShares(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 1 {
		t.Fatalf("player 2 holds %d shares", len(shares))
	}
	if err := params.VerifyKeyShare(shares[0]); err != nil {
		t.Fatalf("reloaded share fails verification: %v", err)
	}
	// Player index bounds.
	if _, err := d.Player(0); err == nil {
		t.Error("player 0 accepted")
	}
	if _, err := d.Player(4); err == nil {
		t.Error("player n+1 accepted")
	}
	// Corrupt system material is rejected.
	bad := sys
	bad.PPub = []byte{1}
	if _, err := bad.Params(); err == nil {
		t.Error("corrupt threshold P_pub accepted")
	}
	bad2 := sys
	bad2.VerificationKeys = [][]byte{{1}, {2}, {3}}
	if _, err := bad2.Params(); err == nil {
		t.Error("corrupt verification keys accepted")
	}
}

package rabin

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

// Fixed 128-bit Blum primes (shared with internal/gm's fixtures' sizes).
const (
	fixP = "dd6abb53e8b9cfa3a99600683c141a8f"
	fixQ = "d1ad296f648dd92aecd8a08056be2f5b"
)

func testKey(t *testing.T) *PrivateKey {
	t.Helper()
	p, _ := new(big.Int).SetString(fixP, 16)
	q, _ := new(big.Int).SetString(fixQ, 16)
	sk, err := KeyFromPrimes(p, q)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestKeyFromPrimesValidation(t *testing.T) {
	if _, err := KeyFromPrimes(big.NewInt(13), big.NewInt(7)); !errors.Is(err, ErrKeygen) {
		t.Errorf("p ≡ 1 mod 4 accepted: %v", err)
	}
	if _, err := KeyFromPrimes(big.NewInt(7), big.NewInt(7)); !errors.Is(err, ErrKeygen) {
		t.Errorf("equal primes accepted: %v", err)
	}
}

func TestExponentIsSquareRoot(t *testing.T) {
	// For random x, c = x² must have c^d as a square root.
	sk := testKey(t)
	for i := 0; i < 10; i++ {
		x, err := rand.Int(rand.Reader, sk.Public.N)
		if err != nil {
			t.Fatal(err)
		}
		if x.Sign() == 0 {
			continue
		}
		c := new(big.Int).Mul(x, x)
		c.Mod(c, sk.Public.N)
		s := new(big.Int).Exp(c, sk.D, sk.Public.N)
		check := new(big.Int).Mul(s, s)
		check.Mod(check, sk.Public.N)
		if check.Cmp(c) != 0 {
			t.Fatalf("(c^d)² ≠ c for x = %v", x)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t)
	msg := []byte("saep!")
	ct, err := sk.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestEncryptRandomized(t *testing.T) {
	sk := testKey(t)
	c1, _ := sk.Public.Encrypt(rand.Reader, []byte("m"))
	c2, _ := sk.Public.Encrypt(rand.Reader, []byte("m"))
	if bytes.Equal(c1, c2) {
		t.Fatal("SAEP encryption must be randomized")
	}
}

func TestEncryptRejectsLongMessage(t *testing.T) {
	sk := testKey(t)
	long := make([]byte, sk.Public.MaxMessageLen()+1)
	if _, err := sk.Public.Encrypt(rand.Reader, long); !errors.Is(err, ErrMessageLength) {
		t.Fatalf("oversized message accepted: %v", err)
	}
	max := make([]byte, sk.Public.MaxMessageLen())
	if _, err := sk.Public.Encrypt(rand.Reader, max); err != nil {
		t.Fatalf("max message rejected: %v", err)
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	sk := testKey(t)
	junk := make([]byte, sk.Public.ModulusBytes())
	for i := range junk {
		junk[i] = 0xFF
	}
	if _, err := sk.Decrypt(junk, 4); !errors.Is(err, ErrDecrypt) {
		t.Errorf("c ≥ n accepted: %v", err)
	}
	if _, err := sk.Decrypt(junk[:3], 4); !errors.Is(err, ErrDecrypt) {
		t.Errorf("short ciphertext accepted: %v", err)
	}
	// Tampered ciphertext: either not a QR (root check fails) or SAEP
	// redundancy fails.
	ct, _ := sk.Public.Encrypt(rand.Reader, []byte("m"))
	ct[len(ct)-1] ^= 1
	if _, err := sk.Decrypt(ct, 1); !errors.Is(err, ErrDecrypt) {
		t.Errorf("tampered ciphertext accepted: %v", err)
	}
}

func TestMediatedDecrypt(t *testing.T) {
	sk := testKey(t)
	user, sem, err := Split(rand.Reader, sk)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("med-rab")
	ct, err := sk.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MediatedDecrypt(sk.Public, user, sem, ct, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("mediated decrypt got %q, want %q", got, msg)
	}
}

func TestSignVerify(t *testing.T) {
	sk := testKey(t)
	msg := []byte("rabin signature")
	sig, err := sk.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Public.Verify(msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := sk.Public.Verify([]byte("other"), sig); !errors.Is(err, ErrVerify) {
		t.Fatalf("wrong message accepted: %v", err)
	}
	bad := &Signature{S: new(big.Int).Add(sig.S, big.NewInt(1)), Ctr: sig.Ctr}
	if err := sk.Public.Verify(msg, bad); !errors.Is(err, ErrVerify) {
		t.Fatalf("corrupted signature accepted: %v", err)
	}
	if err := sk.Public.Verify(msg, nil); !errors.Is(err, ErrVerify) {
		t.Fatalf("nil signature accepted: %v", err)
	}
	// A signature under a mismatched counter fails (hash differs).
	wrongCtr := &Signature{S: sig.S, Ctr: sig.Ctr + 1}
	if err := sk.Public.Verify(msg, wrongCtr); !errors.Is(err, ErrVerify) {
		t.Fatalf("wrong counter accepted: %v", err)
	}
}

func TestMediatedSignature(t *testing.T) {
	sk := testKey(t)
	user, sem, _ := Split(rand.Reader, sk)
	msg := []byte("mediated rabin signature")
	var sig *Signature
	for ctr := uint32(0); ctr < 128; ctr++ {
		h := HashToJacobiPlus(sk.Public.N, msg, ctr)
		s, err := CombineSignature(sk.Public, msg, ctr, user.Op(h), sem.Op(h))
		if errors.Is(err, ErrSignRetry) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		sig = s
		break
	}
	if sig == nil {
		t.Fatal("no QR counter found")
	}
	if err := sk.Public.Verify(msg, sig); err != nil {
		t.Fatalf("mediated signature invalid: %v", err)
	}
	// Mediated and direct signatures agree up to sign for the same ctr
	// (the exponentiation is deterministic); verify interchangeably.
	direct, err := sk.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Public.Verify(msg, direct); err != nil {
		t.Fatal(err)
	}
}

func TestHashToJacobiPlus(t *testing.T) {
	sk := testKey(t)
	h1 := HashToJacobiPlus(sk.Public.N, []byte("m"), 0)
	if big.Jacobi(h1, sk.Public.N) != 1 {
		t.Fatal("hash does not have Jacobi symbol +1")
	}
	h2 := HashToJacobiPlus(sk.Public.N, []byte("m"), 0)
	if h1.Cmp(h2) != 0 {
		t.Fatal("hash not deterministic")
	}
	h3 := HashToJacobiPlus(sk.Public.N, []byte("m"), 1)
	if h1.Cmp(h3) == 0 {
		t.Fatal("different counters gave the same hash")
	}
}

func TestGenerateKey(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("k")
	ct, err := sk.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct, 1)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("fresh key round trip: %q %v", got, err)
	}
}

func TestQuickRoundTrips(t *testing.T) {
	sk := testKey(t)
	user, sem, _ := Split(rand.Reader, sk)
	cfg := &quick.Config{MaxCount: 10}
	property := func(raw [4]byte) bool {
		msg := raw[:]
		ct, err := sk.Public.Encrypt(rand.Reader, msg)
		if err != nil {
			return false
		}
		d1, err := sk.Decrypt(ct, len(msg))
		if err != nil || !bytes.Equal(d1, msg) {
			return false
		}
		d2, err := MediatedDecrypt(sk.Public, user, sem, ct, len(msg))
		return err == nil && bytes.Equal(d2, msg)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

package fp

import (
	"bytes"
	"math/big"
	"testing"
)

// fuzzFields are constructed once: the paper-shaped 8-limb prime drives the
// specialized montMul8 path and the 9-limb prime drives the generic
// fallback, so every fuzz input is replayed through both code paths.
var fuzzFields = func() []*fuzzField {
	var out []*fuzzField
	for _, name := range []string{"paper-8limb", "9limb", "toy-2limb"} {
		var p *big.Int
		for _, tm := range testModuli {
			if tm.name != name {
				continue
			}
			if tm.hex != "" {
				p, _ = new(big.Int).SetString(tm.hex, 16)
			} else {
				p = primeWithBits(tm.bits)
			}
		}
		f, err := New(p)
		if err != nil {
			panic(err)
		}
		out = append(out, &fuzzField{name: name, f: f, p: p})
	}
	return out
}()

type fuzzField struct {
	name string
	f    *Field
	p    *big.Int
}

// FuzzFpArith cross-checks every fp operation against a math/big oracle.
// The two input byte strings are reduced mod p to obtain field elements, so
// arbitrary fuzzer output maps onto the full input domain; the seed corpus
// pins the boundary cases (0, 1, p−1, p−2, high-limb-set patterns).
func FuzzFpArith(f *testing.F) {
	// Boundary seeds, expressed for the widest modulus — reduction maps
	// them onto the corners of the smaller fields too.
	wide := fuzzFields[1].p // 9-limb
	seed := func(a, b *big.Int) {
		f.Add(a.Bytes(), b.Bytes())
	}
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(wide, one)
	pm2 := new(big.Int).Sub(pm1, one)
	top := new(big.Int).Lsh(one, 512) // sets only the top limb of the 9-limb field
	allHigh := new(big.Int).Sub(new(big.Int).Lsh(one, 576), one)
	for _, a := range []*big.Int{big.NewInt(0), one, pm1, pm2, top, allHigh} {
		for _, b := range []*big.Int{big.NewInt(0), one, pm1, top} {
			seed(a, b)
		}
	}

	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		for _, ff := range fuzzFields {
			a := new(big.Int).Mod(new(big.Int).SetBytes(rawA), ff.p)
			b := new(big.Int).Mod(new(big.Int).SetBytes(rawB), ff.p)
			checkFieldOps(t, ff, a, b)
		}
	})
}

func checkFieldOps(t *testing.T, ff *fuzzField, a, b *big.Int) {
	t.Helper()
	f, p := ff.f, ff.p
	x, y, z := f.NewElt(), f.NewElt(), f.NewElt()
	if err := f.FromBig(x, a); err != nil {
		t.Fatalf("[%s] FromBig(%v): %v", ff.name, a, err)
	}
	if err := f.FromBig(y, b); err != nil {
		t.Fatalf("[%s] FromBig(%v): %v", ff.name, b, err)
	}

	// Round trip.
	if got := f.ToBig(x); got.Cmp(a) != 0 {
		t.Fatalf("[%s] round trip %v → %v", ff.name, a, got)
	}

	check := func(op string, want *big.Int) {
		t.Helper()
		if got := f.ToBig(z); got.Cmp(want) != 0 {
			t.Fatalf("[%s] %s(%v, %v) = %v, want %v", ff.name, op, a, b, got, want)
		}
	}
	mod := func(v *big.Int) *big.Int { return v.Mod(v, p) }

	f.Add(z, x, y)
	check("Add", mod(new(big.Int).Add(a, b)))
	f.Sub(z, x, y)
	check("Sub", mod(new(big.Int).Sub(a, b)))
	f.Mul(z, x, y)
	check("Mul", mod(new(big.Int).Mul(a, b)))
	f.Square(z, x)
	check("Square", mod(new(big.Int).Mul(a, a)))
	f.Neg(z, x)
	check("Neg", mod(new(big.Int).Neg(a)))
	f.Double(z, x)
	check("Double", mod(new(big.Int).Lsh(a, 1)))

	// Predicates and constant-time equality.
	if f.IsZero(x) != (a.Sign() == 0) {
		t.Fatalf("[%s] IsZero(%v) wrong", ff.name, a)
	}
	if f.Equal(x, y) != (a.Cmp(b) == 0) {
		t.Fatalf("[%s] Equal(%v, %v) wrong", ff.name, a, b)
	}

	// Inverse: error iff zero, else x·x⁻¹ = 1; the Fermat and extended-GCD
	// paths must agree.
	err := f.Inv(z, x)
	if a.Sign() == 0 {
		if err != ErrNotInvertible {
			t.Fatalf("[%s] Inv(0) = %v", ff.name, err)
		}
		if err := f.InvVarTime(z, x); err != ErrNotInvertible {
			t.Fatalf("[%s] InvVarTime(0) = %v", ff.name, err)
		}
	} else {
		if err != nil {
			t.Fatalf("[%s] Inv(%v): %v", ff.name, a, err)
		}
		vt := f.NewElt()
		if err := f.InvVarTime(vt, x); err != nil {
			t.Fatalf("[%s] InvVarTime(%v): %v", ff.name, a, err)
		}
		if !f.Equal(vt, z) {
			t.Fatalf("[%s] InvVarTime ≠ Inv for %v", ff.name, a)
		}
		f.Mul(z, z, x)
		if !f.IsOne(z) {
			t.Fatalf("[%s] x·x⁻¹ ≠ 1 for %v", ff.name, a)
		}
	}

	// Exp against big.Int.Exp, using b as the exponent.
	f.Exp(z, x, b)
	check("Exp", new(big.Int).Exp(a, b, p))

	// F_p² tower: (a+bi)(b+ai) and (a+bi)².
	zi := f.NewElt()
	f.MulFp2(z, zi, x, y, y, x)
	wr := mod(new(big.Int).Sub(new(big.Int).Mul(a, b), new(big.Int).Mul(b, a))) // = 0
	wi := mod(new(big.Int).Add(new(big.Int).Mul(a, a), new(big.Int).Mul(b, b)))
	if gr, gi := f.ToBig(z), f.ToBig(zi); gr.Cmp(wr) != 0 || gi.Cmp(wi) != 0 {
		t.Fatalf("[%s] MulFp2 = (%v,%v), want (%v,%v)", ff.name, gr, gi, wr, wi)
	}
	f.SquareFp2(z, zi, x, y)
	sr := mod(new(big.Int).Sub(new(big.Int).Mul(a, a), new(big.Int).Mul(b, b)))
	si := mod(new(big.Int).Lsh(new(big.Int).Mul(a, b), 1))
	if gr, gi := f.ToBig(z), f.ToBig(zi); gr.Cmp(sr) != 0 || gi.Cmp(si) != 0 {
		t.Fatalf("[%s] SquareFp2 = (%v,%v), want (%v,%v)", ff.name, gr, gi, sr, si)
	}

	// Canonical byte round trip through the big.Int edge.
	ab := a.Bytes()
	if got := f.ToBig(x).Bytes(); !bytes.Equal(got, ab) {
		t.Fatalf("[%s] byte round trip mismatch", ff.name)
	}
}

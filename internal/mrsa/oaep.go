package mrsa

import (
	"bytes"
	"crypto/sha1"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
)

// EME-OAEP (RFC 8017 §7.1 style) with SHA-1 and MGF1 — the instantiation
// deployed RSA-OAEP used in the paper's era, which also fits the 512-bit
// test modulus (SHA-256 OAEP needs a ≥528-bit modulus). Implemented from
// scratch because the mediated decryption path needs OAEP decoding applied
// to a *recombined* RSA output, which crypto/rsa does not expose.

// ErrOAEPDecode is returned on any OAEP decoding failure. Implementations
// must not reveal which check failed (Manger's attack), so a single opaque
// error covers all cases.
var ErrOAEPDecode = errors.New("mrsa: oaep decoding error")

const hashLen = sha1.Size

// mgf1 fills out with the MGF1 expansion of seed.
func mgf1(seed []byte, out []byte) {
	var counter uint32
	var digest [hashLen]byte
	done := 0
	for done < len(out) {
		h := sha1.New()
		h.Write(seed)
		h.Write([]byte{byte(counter >> 24), byte(counter >> 16), byte(counter >> 8), byte(counter)})
		h.Sum(digest[:0])
		done += copy(out[done:], digest[:])
		counter++
	}
}

// oaepEncode produces the k-byte encoded message EM for a plaintext msg and
// label. k is the modulus length in bytes; the maximum message length is
// k − 2·hashLen − 2.
func oaepEncode(rng io.Reader, msg, label []byte, k int) ([]byte, error) {
	if len(msg) > k-2*hashLen-2 {
		return nil, fmt.Errorf("mrsa: message too long for %d-byte modulus", k)
	}
	lHash := sha1.Sum(label)
	em := make([]byte, k)
	seed := em[1 : 1+hashLen]
	db := em[1+hashLen:]
	copy(db, lHash[:])
	db[len(db)-len(msg)-1] = 0x01
	copy(db[len(db)-len(msg):], msg)
	if _, err := io.ReadFull(rng, seed); err != nil {
		return nil, fmt.Errorf("oaep seed: %w", err)
	}
	dbMask := make([]byte, len(db))
	mgf1(seed, dbMask)
	subtle.XORBytes(db, db, dbMask)
	seedMask := make([]byte, hashLen)
	mgf1(db, seedMask)
	subtle.XORBytes(seed, seed, seedMask)
	return em, nil
}

// oaepDecode inverts oaepEncode, returning the plaintext. All failure modes
// collapse into ErrOAEPDecode.
func oaepDecode(em, label []byte, k int) ([]byte, error) {
	if len(em) != k || k < 2*hashLen+2 {
		return nil, ErrOAEPDecode
	}
	if em[0] != 0 {
		return nil, ErrOAEPDecode
	}
	lHash := sha1.Sum(label)
	seed := bytes.Clone(em[1 : 1+hashLen])
	db := bytes.Clone(em[1+hashLen:])
	seedMask := make([]byte, hashLen)
	mgf1(db, seedMask)
	subtle.XORBytes(seed, seed, seedMask)
	dbMask := make([]byte, len(db))
	mgf1(seed, dbMask)
	subtle.XORBytes(db, db, dbMask)
	if subtle.ConstantTimeCompare(db[:hashLen], lHash[:]) != 1 {
		return nil, ErrOAEPDecode
	}
	rest := db[hashLen:]
	idx := bytes.IndexByte(rest, 0x01)
	if idx < 0 {
		return nil, ErrOAEPDecode
	}
	for _, b := range rest[:idx] {
		if b != 0 {
			return nil, ErrOAEPDecode
		}
	}
	return bytes.Clone(rest[idx+1:]), nil
}

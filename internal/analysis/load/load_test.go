package load

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func TestLoadModulePackage(t *testing.T) {
	l, err := New(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("repro/internal/wire")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || len(pkg.Files) == 0 {
		t.Fatalf("package loaded without types or syntax: %+v", pkg)
	}
	if pkg.Types.Scope().Lookup("UnmarshalG1") == nil {
		t.Error("wire.UnmarshalG1 not found in type information")
	}
	// The dependency repro/internal/curve must have been source-loaded too.
	found := false
	for _, p := range l.Loaded() {
		if p.Path == "repro/internal/curve" {
			found = true
		}
	}
	if !found {
		t.Error("dependency repro/internal/curve missing from Loaded()")
	}
}

func TestModulePackagesListsTree(t *testing.T) {
	l, err := New(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro":                  false,
		"repro/internal/pairing": false,
		"repro/cmd/cryptolint":   false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, ok := range want {
		if !ok {
			t.Errorf("ModulePackages missing %s (got %v)", p, paths)
		}
	}
}

// TestLoadNetworkFacingClosure exercises the heaviest standard-library
// closure the driver meets (net via internal/sem) to prove offline
// source-based loading covers it.
func TestLoadNetworkFacingClosure(t *testing.T) {
	if testing.Short() {
		t.Skip("full stdlib closure typecheck is slow")
	}
	l, err := New(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("repro/internal/sem"); err != nil {
		t.Fatal(err)
	}
}

package pairing_test

import (
	"fmt"
	"math/big"

	"repro/internal/pairing"
)

// ExampleParams_Pair demonstrates the bilinearity that every scheme in this
// repository is built on: ê(aP, bP) = ê(P, P)^(ab).
func ExampleParams_Pair() {
	pp, err := pairing.Fast()
	if err != nil {
		fmt.Println(err)
		return
	}
	P := pp.Generator()
	a := big.NewInt(6)
	b := big.NewInt(7)

	lhs := pp.Pair(P.ScalarMul(a), P.ScalarMul(b))
	rhs := pp.Pair(P, P).Exp(big.NewInt(42))
	fmt.Println("bilinear:", lhs.Equal(rhs))
	fmt.Println("non-degenerate:", !pp.Pair(P, P).IsOne())
	// Output:
	// bilinear: true
	// non-degenerate: true
}

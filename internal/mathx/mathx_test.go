package mathx

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func TestSqrtModPFastPath(t *testing.T) {
	// p ≡ 3 (mod 4)
	p := big.NewInt(1000003)
	if new(big.Int).Mod(p, big.NewInt(4)).Int64() != 3 {
		t.Fatalf("test prime is not 3 mod 4")
	}
	for i := int64(1); i < 200; i++ {
		a := big.NewInt(i * i % 1000003)
		r, err := SqrtModP(a, p)
		if err != nil {
			t.Fatalf("SqrtModP(%d): %v", i*i, err)
		}
		got := new(big.Int).Mul(r, r)
		got.Mod(got, p)
		if got.Cmp(a) != 0 {
			t.Fatalf("sqrt(%v)² = %v, want %v", a, got, a)
		}
	}
}

func TestSqrtModPNonResidue(t *testing.T) {
	p := big.NewInt(23) // 23 ≡ 3 mod 4
	// 5 is a non-residue mod 23 (residues: 1,2,3,4,6,8,9,12,13,16,18)
	if _, err := SqrtModP(big.NewInt(5), p); !errors.Is(err, ErrNoSquareRoot) {
		t.Fatalf("want ErrNoSquareRoot, got %v", err)
	}
}

func TestSqrtModPZero(t *testing.T) {
	r, err := SqrtModP(big.NewInt(0), big.NewInt(23))
	if err != nil || r.Sign() != 0 {
		t.Fatalf("sqrt(0) = %v, %v; want 0, nil", r, err)
	}
}

func TestSqrtModPTonelliFallback(t *testing.T) {
	// p ≡ 1 (mod 4) exercises the ModSqrt fallback.
	p := big.NewInt(1000033)
	if new(big.Int).Mod(p, big.NewInt(4)).Int64() != 1 {
		t.Fatalf("test prime is not 1 mod 4")
	}
	a := big.NewInt(4)
	r, err := SqrtModP(a, p)
	if err != nil {
		t.Fatal(err)
	}
	got := new(big.Int).Mul(r, r)
	got.Mod(got, p)
	if got.Cmp(a) != 0 {
		t.Fatalf("sqrt(4)² = %v mod %v", got, p)
	}
}

func TestIsQuadraticResidue(t *testing.T) {
	p := big.NewInt(23)
	if !IsQuadraticResidue(big.NewInt(4), p) {
		t.Error("4 should be a residue mod 23")
	}
	if IsQuadraticResidue(big.NewInt(5), p) {
		t.Error("5 should be a non-residue mod 23")
	}
	if !IsQuadraticResidue(big.NewInt(0), p) {
		t.Error("0 counts as a residue")
	}
	if !IsQuadraticResidue(big.NewInt(23+4), p) {
		t.Error("residue test must reduce its operand")
	}
}

func TestInverseMod(t *testing.T) {
	m := big.NewInt(101)
	for i := int64(1); i < 101; i++ {
		inv, err := InverseMod(big.NewInt(i), m)
		if err != nil {
			t.Fatalf("inverse of %d: %v", i, err)
		}
		prod := new(big.Int).Mul(inv, big.NewInt(i))
		prod.Mod(prod, m)
		if prod.Int64() != 1 {
			t.Fatalf("%d · %v ≠ 1 mod 101", i, inv)
		}
	}
	if _, err := InverseMod(big.NewInt(0), m); !errors.Is(err, ErrNotInvertible) {
		t.Fatalf("inverse of 0 should fail, got %v", err)
	}
	if _, err := InverseMod(big.NewInt(4), big.NewInt(12)); !errors.Is(err, ErrNotInvertible) {
		t.Fatalf("inverse of 4 mod 12 should fail, got %v", err)
	}
}

func TestRandomInRange(t *testing.T) {
	min := big.NewInt(10)
	max := big.NewInt(20)
	for i := 0; i < 100; i++ {
		r, err := RandomInRange(rand.Reader, min, max)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cmp(min) < 0 || r.Cmp(max) >= 0 {
			t.Fatalf("value %v outside [10, 20)", r)
		}
	}
	if _, err := RandomInRange(rand.Reader, max, min); err == nil {
		t.Fatal("empty range must error")
	}
	if _, err := RandomInRange(rand.Reader, min, min); err == nil {
		t.Fatal("zero-width range must error")
	}
}

func TestRandomFieldElementNonzero(t *testing.T) {
	q := big.NewInt(7)
	for i := 0; i < 200; i++ {
		r, err := RandomFieldElement(rand.Reader, q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Sign() == 0 || r.Cmp(q) >= 0 {
			t.Fatalf("field element %v outside [1, 7)", r)
		}
	}
}

func TestRandomPrime(t *testing.T) {
	p, err := RandomPrime(rand.Reader, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitLen() != 64 || !p.ProbablyPrime(20) {
		t.Fatalf("bad prime %v (bits=%d)", p, p.BitLen())
	}
	if _, err := RandomPrime(rand.Reader, 1); err == nil {
		t.Fatal("1-bit prime must be rejected")
	}
}

func TestRandomSafePrime(t *testing.T) {
	p, err := RandomSafePrime(rand.Reader, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSafePrime(p) {
		t.Fatalf("%v is not a safe prime", p)
	}
	if p.BitLen() != 64 {
		t.Fatalf("safe prime has %d bits, want 64", p.BitLen())
	}
}

func TestIsSafePrime(t *testing.T) {
	if !IsSafePrime(big.NewInt(23)) { // 23 = 2·11 + 1
		t.Error("23 is a safe prime")
	}
	if IsSafePrime(big.NewInt(17)) { // (17−1)/2 = 8 composite
		t.Error("17 is not a safe prime")
	}
	if IsSafePrime(big.NewInt(15)) {
		t.Error("15 is not prime at all")
	}
}

func TestLagrange0Reconstruction(t *testing.T) {
	q := big.NewInt(2147483647) // Mersenne prime
	// f(x) = 42 + 7x + 3x² ; shares at x = 1, 2, 3 must reconstruct f(0) = 42.
	f := func(x int64) *big.Int {
		v := big.NewInt(42 + 7*x + 3*x*x)
		return v.Mod(v, q)
	}
	xs := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(3)}
	sum := new(big.Int)
	for i, x := range xs {
		li, err := Lagrange0(i, xs, q)
		if err != nil {
			t.Fatal(err)
		}
		term := new(big.Int).Mul(li, f(x.Int64()))
		sum.Add(sum, term)
		sum.Mod(sum, q)
	}
	if sum.Int64() != 42 {
		t.Fatalf("reconstructed %v, want 42", sum)
	}
}

func TestLagrangeAtRecoversMissingShare(t *testing.T) {
	q := big.NewInt(2147483647)
	f := func(x int64) *big.Int {
		v := big.NewInt(42 + 7*x + 3*x*x)
		return v.Mod(v, q)
	}
	// Interpolate f(5) from shares at 1, 2, 3 (degree-2 polynomial).
	xs := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(3)}
	at := big.NewInt(5)
	sum := new(big.Int)
	for i, x := range xs {
		li, err := LagrangeAt(i, xs, at, q)
		if err != nil {
			t.Fatal(err)
		}
		term := new(big.Int).Mul(li, f(x.Int64()))
		sum.Add(sum, term)
		sum.Mod(sum, q)
	}
	if sum.Cmp(f(5)) != 0 {
		t.Fatalf("interpolated f(5) = %v, want %v", sum, f(5))
	}
}

func TestLagrangeIndexOutOfRange(t *testing.T) {
	xs := []*big.Int{big.NewInt(1)}
	if _, err := Lagrange0(1, xs, big.NewInt(7)); err == nil {
		t.Fatal("out-of-range index must error")
	}
	if _, err := Lagrange0(-1, xs, big.NewInt(7)); err == nil {
		t.Fatal("negative index must error")
	}
}

func TestLagrangeDuplicatePoints(t *testing.T) {
	xs := []*big.Int{big.NewInt(1), big.NewInt(1)}
	if _, err := Lagrange0(0, xs, big.NewInt(7)); err == nil {
		t.Fatal("duplicate evaluation points must error (zero denominator)")
	}
}

func TestPadBytes(t *testing.T) {
	b, err := PadBytes(big.NewInt(0x1234), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 0x12, 0x34}
	if string(b) != string(want) {
		t.Fatalf("got % x want % x", b, want)
	}
	if _, err := PadBytes(big.NewInt(0x123456), 2); err == nil {
		t.Fatal("overflow must error")
	}
}

func TestBytesToIntMod(t *testing.T) {
	m := big.NewInt(100)
	x := BytesToIntMod([]byte{0x01, 0x00}, m) // 256 mod 100 = 56
	if x.Int64() != 56 {
		t.Fatalf("got %v want 56", x)
	}
}

// Property: Lagrange-interpolating any random degree-(t−1) polynomial at 0
// from t random distinct points returns its constant term.
func TestQuickLagrangeInterpolation(t *testing.T) {
	q := big.NewInt(1000003)
	cfg := &quick.Config{MaxCount: 50}
	property := func(seed int64) bool {
		rng := newDetRand(seed)
		tt := 2 + int(rng.next()%4) // threshold 2..5
		coeffs := make([]*big.Int, tt)
		for i := range coeffs {
			coeffs[i] = big.NewInt(int64(rng.next() % 1000003))
		}
		eval := func(x int64) *big.Int {
			acc := new(big.Int)
			xb := big.NewInt(x)
			pow := big.NewInt(1)
			for _, cf := range coeffs {
				term := new(big.Int).Mul(cf, pow)
				acc.Add(acc, term)
				pow = new(big.Int).Mul(pow, xb)
				pow.Mod(pow, q)
			}
			return acc.Mod(acc, q)
		}
		xs := make([]*big.Int, tt)
		for i := range xs {
			xs[i] = big.NewInt(int64(i + 1 + int(rng.next()%3)*10)) // distinct
		}
		// ensure distinctness
		seen := map[string]bool{}
		for i, x := range xs {
			for seen[x.String()] {
				x = new(big.Int).Add(x, big.NewInt(int64(i+100)))
				xs[i] = x
			}
			seen[x.String()] = true
		}
		sum := new(big.Int)
		for i, x := range xs {
			li, err := Lagrange0(i, xs, q)
			if err != nil {
				return false
			}
			term := new(big.Int).Mul(li, eval(x.Int64()))
			sum.Add(sum, term)
			sum.Mod(sum, q)
		}
		return sum.Cmp(coeffs[0]) == 0
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// newDetRand is a tiny deterministic generator for property tests that need
// reproducible sub-randomness from a quick-provided seed.
type detRand struct{ state uint64 }

func newDetRand(seed int64) *detRand { return &detRand{state: uint64(seed)*2654435761 + 1} }

func (d *detRand) next() uint64 {
	d.state ^= d.state << 13
	d.state ^= d.state >> 7
	d.state ^= d.state << 17
	return d.state
}

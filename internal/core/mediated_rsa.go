package core

import (
	"fmt"
	"math/big"

	"repro/internal/mrsa"
	"repro/internal/wire"
)

// RSASEM is the mediator side of mRSA / IB-mRSA — the paper's baseline —
// wired to the same Registry as the pairing SEMs so the comparison
// experiments revoke all schemes through one call. Safe for concurrent use.
type RSASEM struct {
	reg  *Registry
	keys *keyStore[*mrsa.HalfKey]
}

// NewRSASEM constructs an RSA SEM over a (possibly shared) revocation
// registry.
func NewRSASEM(reg *Registry) *RSASEM {
	return &RSASEM{reg: reg, keys: newKeyStore[*mrsa.HalfKey]()}
}

// Register installs an identity's SEM exponent half.
func (s *RSASEM) Register(id string, half *mrsa.HalfKey) { s.keys.put(id, half) }

// Registry exposes the revocation registry (admin interface).
func (s *RSASEM) Registry() *Registry { return s.reg }

// HalfDecrypt is the SEM step of mediated RSA decryption: check revocation,
// then return m_sem = c^{d_sem} mod n.
func (s *RSASEM) HalfDecrypt(id string, c *big.Int) (*big.Int, error) {
	half, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if c.Sign() < 0 || c.Cmp(half.N) >= 0 {
		return nil, fmt.Errorf("core: RSA ciphertext out of range")
	}
	return half.Op(c), nil
}

// HalfDecryptBytes is HalfDecrypt for a raw network payload: the ciphertext
// is decoded through wire.UnmarshalScalar against the identity's modulus, so
// out-of-range values are rejected before any arithmetic. The SEM daemon
// must use this entry point rather than decoding the payload itself.
func (s *RSASEM) HalfDecryptBytes(id string, payload []byte) (*big.Int, error) {
	half, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	c, err := wire.UnmarshalScalar(payload, half.N)
	if err != nil {
		return nil, fmt.Errorf("core: RSA ciphertext: %w", err)
	}
	return half.Op(c), nil
}

// HalfSign is the SEM step of mediated RSA signing: check revocation, then
// return EMSA(msg)^{d_sem} mod n.
func (s *RSASEM) HalfSign(id string, msg []byte) (*big.Int, error) {
	half, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return mrsa.SignHalf(half, msg)
}

func (s *RSASEM) lookup(id string) (*mrsa.HalfKey, error) {
	if err := s.reg.Check(id); err != nil {
		return nil, err
	}
	half, ok := s.keys.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownIdentity, id)
	}
	return half, nil
}

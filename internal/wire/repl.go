package wire

// Replication payload encodings. The repl.append / repl.snapshot /
// repl.status operations ride inside ordinary v2 frame items; what this
// file defines is the binary layout of those items' payloads. The
// encodings use only primitive types — wire sits below core in the import
// graph, so the replication subsystem converts to and from its own record
// types at the boundary.
//
// All integers are big-endian, matching the rest of the v2 framing.
//
//	record        = epoch u64 | seq u64 | op u8 | idLen u16 | id |
//	                reasonLen u16 | reason | when i64 (unix nanos)
//	append        = leaderEpoch u64 | count u32 | count × record
//	status        = epoch u64 | lastSeq u64 | leader u8
//	snapshotChunk = epoch u64 | baseSeq u64 | total u32 | index u32 |
//	                chunks u32 | n u32 | n × entry
//	entry         = idLen u16 | id | reasonLen u16 | reason | when i64
//
// One append payload carries a whole batch of records on purpose: the v2
// server fans the *items* of a batch frame across workers in parallel, so
// ordered replication must pack its ordered records inside a single item.
//
// leaderEpoch is the *sender's* current epoch, distinct from the epochs
// stamped on the records: a freshly promoted leader relays suffix records
// its predecessor sequenced (stamped with the old epoch), so the follower's
// fence must judge the sender, not the records.

import (
	"encoding/binary"
	"fmt"
)

// Replication record op codes.
const (
	ReplOpRevoke   byte = 1
	ReplOpUnrevoke byte = 2
)

// MaxReplRecords caps how many records one append payload may carry, and
// MaxReplEntries the entries in one snapshot chunk — both defend the
// decoder against a hostile count field, the same discipline as
// V2MaxBatch.
const (
	MaxReplRecords = 1 << 16
	MaxReplEntries = 1 << 16
)

// ReplRecord is one sequenced revocation mutation in wire form.
type ReplRecord struct {
	Epoch        uint64
	Seq          uint64
	Op           byte // ReplOpRevoke | ReplOpUnrevoke
	ID           string
	Reason       string
	WhenUnixNano int64
}

// ReplStatus is a daemon's replication position. Leader reports whether
// the answering daemon is the fleet's active (not deposed) replication
// leader — the probe signal ShardedClient uses to locate the real write
// path when a ring rebalance has moved the leader designation away from
// the daemon actually started with -repl-leader.
type ReplStatus struct {
	Epoch   uint64
	LastSeq uint64
	Leader  bool
}

// ReplSnapshotChunk is one slice of a full-state transfer. Entries across
// all Chunks chunks of the same (Epoch, BaseSeq) snapshot concatenate to
// the complete revocation set as of BaseSeq; Total is that full count so
// the receiver can pre-size and sanity-check.
type ReplSnapshotChunk struct {
	Epoch   uint64
	BaseSeq uint64
	Total   uint32
	Index   uint32
	Chunks  uint32
	Entries []ReplEntry
}

// ReplEntry is one revocation-list entry in wire form.
type ReplEntry struct {
	ID           string
	Reason       string
	WhenUnixNano int64
}

const (
	replRecordFixed = 8 + 8 + 1 + 2 + 2 + 8 // epoch, seq, op, idLen, reasonLen, when
	replEntryFixed  = 2 + 2 + 8
	replStatusLenV1 = 8 + 8     // epoch, lastSeq (pre-leader-flag encoders)
	replStatusLen   = 8 + 8 + 1 // epoch, lastSeq, leader flag
	replChunkHdrLen = 8 + 8 + 4 + 4 + 4 + 4
)

var (
	errReplTruncated = fmt.Errorf("%w: truncated replication payload", ErrProtocol)
	errReplTrailing  = fmt.Errorf("%w: replication payload has trailing bytes", ErrProtocol)
)

// AppendReplRecords appends the append-payload encoding of recs, sent by a
// leader at leaderEpoch, to dst and returns the extended slice.
func AppendReplRecords(dst []byte, leaderEpoch uint64, recs []ReplRecord) ([]byte, error) {
	if len(recs) > MaxReplRecords {
		return nil, fmt.Errorf("wire: %d replication records exceeds limit %d", len(recs), MaxReplRecords)
	}
	dst = binary.BigEndian.AppendUint64(dst, leaderEpoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		r := &recs[i]
		if len(r.ID) > int(^uint16(0)) || len(r.Reason) > int(^uint16(0)) {
			return nil, fmt.Errorf("wire: replication record %d id/reason exceeds 64 KiB", i)
		}
		dst = binary.BigEndian.AppendUint64(dst, r.Epoch)
		dst = binary.BigEndian.AppendUint64(dst, r.Seq)
		dst = append(dst, r.Op)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.ID)))
		dst = append(dst, r.ID...)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Reason)))
		dst = append(dst, r.Reason...)
		dst = binary.BigEndian.AppendUint64(dst, uint64(r.WhenUnixNano))
	}
	return dst, nil
}

// ParseReplRecords decodes an append payload, returning the sender's epoch
// and the records. The returned records' string fields are copies — they
// do not alias data.
func ParseReplRecords(data []byte) (uint64, []ReplRecord, error) {
	if len(data) < 12 {
		return 0, nil, errReplTruncated
	}
	leaderEpoch := binary.BigEndian.Uint64(data[:8])
	count := binary.BigEndian.Uint32(data[8:12])
	if count > MaxReplRecords {
		return 0, nil, fmt.Errorf("%w: replication record count %d exceeds limit", ErrProtocol, count)
	}
	off := 12
	recs := make([]ReplRecord, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(data)-off < replRecordFixed {
			return 0, nil, errReplTruncated
		}
		var r ReplRecord
		r.Epoch = binary.BigEndian.Uint64(data[off : off+8])
		r.Seq = binary.BigEndian.Uint64(data[off+8 : off+16])
		r.Op = data[off+16]
		off += 17
		var err error
		r.ID, off, err = replString(data, off)
		if err != nil {
			return 0, nil, err
		}
		r.Reason, off, err = replString(data, off)
		if err != nil {
			return 0, nil, err
		}
		if len(data)-off < 8 {
			return 0, nil, errReplTruncated
		}
		r.WhenUnixNano = int64(binary.BigEndian.Uint64(data[off : off+8]))
		off += 8
		recs = append(recs, r)
	}
	if off != len(data) {
		return 0, nil, errReplTrailing
	}
	return leaderEpoch, recs, nil
}

// replString reads a u16-length-prefixed string at off, returning the
// copied string and the new offset.
func replString(data []byte, off int) (string, int, error) {
	if len(data)-off < 2 {
		return "", 0, errReplTruncated
	}
	n := int(binary.BigEndian.Uint16(data[off : off+2]))
	off += 2
	if len(data)-off < n {
		return "", 0, errReplTruncated
	}
	s := string(data[off : off+n])
	return s, off + n, nil
}

// PackReplStatus encodes a daemon's replication position.
func PackReplStatus(st ReplStatus) []byte {
	buf := make([]byte, replStatusLen)
	binary.BigEndian.PutUint64(buf[0:8], st.Epoch)
	binary.BigEndian.PutUint64(buf[8:16], st.LastSeq)
	if st.Leader {
		buf[16] = 1
	}
	return buf
}

// ParseReplStatus decodes a status payload. The 16-byte form written by
// pre-leader-flag encoders is accepted with Leader false, so a mixed-
// version fleet keeps replicating during a rolling upgrade.
func ParseReplStatus(data []byte) (ReplStatus, error) {
	if len(data) != replStatusLen && len(data) != replStatusLenV1 {
		return ReplStatus{}, fmt.Errorf("%w: replication status is %d bytes, want %d or %d", ErrProtocol, len(data), replStatusLen, replStatusLenV1)
	}
	st := ReplStatus{
		Epoch:   binary.BigEndian.Uint64(data[0:8]),
		LastSeq: binary.BigEndian.Uint64(data[8:16]),
	}
	if len(data) == replStatusLen {
		st.Leader = data[16] == 1
	}
	return st, nil
}

// MarshalReplSnapshotChunk encodes one snapshot chunk.
func MarshalReplSnapshotChunk(c *ReplSnapshotChunk) ([]byte, error) {
	if len(c.Entries) > MaxReplEntries {
		return nil, fmt.Errorf("wire: %d snapshot entries exceeds limit %d", len(c.Entries), MaxReplEntries)
	}
	if c.Chunks == 0 || c.Index >= c.Chunks {
		return nil, fmt.Errorf("wire: snapshot chunk index %d outside 0..%d", c.Index, c.Chunks)
	}
	size := replChunkHdrLen
	for i := range c.Entries {
		e := &c.Entries[i]
		if len(e.ID) > int(^uint16(0)) || len(e.Reason) > int(^uint16(0)) {
			return nil, fmt.Errorf("wire: snapshot entry %d id/reason exceeds 64 KiB", i)
		}
		size += replEntryFixed + len(e.ID) + len(e.Reason)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, c.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, c.BaseSeq)
	buf = binary.BigEndian.AppendUint32(buf, c.Total)
	buf = binary.BigEndian.AppendUint32(buf, c.Index)
	buf = binary.BigEndian.AppendUint32(buf, c.Chunks)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Entries)))
	for i := range c.Entries {
		e := &c.Entries[i]
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.ID)))
		buf = append(buf, e.ID...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Reason)))
		buf = append(buf, e.Reason...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.WhenUnixNano))
	}
	return buf, nil
}

// ParseReplSnapshotChunk decodes one snapshot chunk. Entry strings are
// copies — they do not alias data.
func ParseReplSnapshotChunk(data []byte) (*ReplSnapshotChunk, error) {
	if len(data) < replChunkHdrLen {
		return nil, errReplTruncated
	}
	c := &ReplSnapshotChunk{
		Epoch:   binary.BigEndian.Uint64(data[0:8]),
		BaseSeq: binary.BigEndian.Uint64(data[8:16]),
		Total:   binary.BigEndian.Uint32(data[16:20]),
		Index:   binary.BigEndian.Uint32(data[20:24]),
		Chunks:  binary.BigEndian.Uint32(data[24:28]),
	}
	n := binary.BigEndian.Uint32(data[28:32])
	if n > MaxReplEntries {
		return nil, fmt.Errorf("%w: snapshot entry count %d exceeds limit", ErrProtocol, n)
	}
	if c.Chunks == 0 || c.Index >= c.Chunks {
		return nil, fmt.Errorf("%w: snapshot chunk index %d outside 0..%d", ErrProtocol, c.Index, c.Chunks)
	}
	off := replChunkHdrLen
	c.Entries = make([]ReplEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		var e ReplEntry
		var err error
		e.ID, off, err = replString(data, off)
		if err != nil {
			return nil, err
		}
		e.Reason, off, err = replString(data, off)
		if err != nil {
			return nil, err
		}
		if len(data)-off < 8 {
			return nil, errReplTruncated
		}
		e.WhenUnixNano = int64(binary.BigEndian.Uint64(data[off : off+8]))
		off += 8
		c.Entries = append(c.Entries, e)
	}
	if off != len(data) {
		return nil, errReplTrailing
	}
	return c, nil
}

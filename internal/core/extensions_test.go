package core

// Tests for the two extension features built from the paper's conclusion
// (§6 of DESIGN.md): mediated Goldwasser-Micali and mediated signcryption.

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"repro/internal/gm"
	"repro/internal/pairing"
	"repro/internal/rabin"
)

func gmFixture(t *testing.T) (*gm.PrivateKey, *gm.HalfKey, *GMSEM) {
	t.Helper()
	sk, err := gm.GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	user, semHalf, err := gm.Split(rand.Reader, sk)
	if err != nil {
		t.Fatal(err)
	}
	sem := NewGMSEM(NewRegistry())
	sem.Register("gm-user@example.com", semHalf)
	return sk, user, sem
}

func TestMediatedGMRoundTrip(t *testing.T) {
	sk, user, sem := gmFixture(t)
	msg := []byte("conjecture, executed")
	cs, err := sk.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GMDecrypt(sem, "gm-user@example.com", sk.Public, user, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestMediatedGMRevocation(t *testing.T) {
	sk, user, sem := gmFixture(t)
	cs, _ := sk.Public.Encrypt(rand.Reader, []byte("x"))
	sem.Registry().Revoke("gm-user@example.com", "test")
	if _, err := GMDecrypt(sem, "gm-user@example.com", sk.Public, user, cs); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked GM identity decrypted: %v", err)
	}
	sem.Registry().Unrevoke("gm-user@example.com")
	if _, err := GMDecrypt(sem, "gm-user@example.com", sk.Public, user, cs); err != nil {
		t.Fatalf("unrevoked GM identity failed: %v", err)
	}
}

func TestMediatedGMUnknownIdentity(t *testing.T) {
	sk, user, sem := gmFixture(t)
	cs, _ := sk.Public.Encrypt(rand.Reader, []byte("x"))
	if _, err := GMDecrypt(sem, "ghost@example.com", sk.Public, user, cs); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("unknown GM identity served: %v", err)
	}
}

func TestMediatedGMValidation(t *testing.T) {
	sk, user, sem := gmFixture(t)
	// Out-of-range element.
	if _, err := sem.HalfDecrypt("gm-user@example.com", []*big.Int{sk.Public.N}); err == nil {
		t.Error("out-of-range element accepted")
	}
	// Non-multiple-of-8 ciphertext.
	cs, _ := sk.Public.Encrypt(rand.Reader, []byte("ab"))
	if _, err := GMDecrypt(sem, "gm-user@example.com", sk.Public, user, cs[:3]); err == nil {
		t.Error("ragged ciphertext accepted")
	}
}

// --- mediated signcryption ---

type signcryptFixture struct {
	sc        *Signcrypter
	pkg       *MediatedPKG
	reg       *Registry
	sender    *GDHUserKey
	recipient *UserKeyHalf
}

const (
	scSender    = "alice@example.com"
	scRecipient = "bob@example.com"
	scMsgLen    = 96 // leave room for the embedded signature at toy sizes
)

func newSigncryptFixture(t *testing.T) *signcryptFixture {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	pkg, err := NewMediatedPKG(rand.Reader, pp, scMsgLen)
	if err != nil {
		t.Fatal(err)
	}
	ibeSEM := NewIBESEM(pkg.Public(), reg)
	bobUser, bobSEMHalf, err := pkg.SplitExtract(rand.Reader, scRecipient)
	if err != nil {
		t.Fatal(err)
	}
	ibeSEM.Register(bobSEMHalf)

	ta := NewGDHAuthority(pp)
	gdhSEM := NewGDHSEM(pp, reg)
	aliceKey, aliceSEMHalf, err := ta.Keygen(rand.Reader, scSender)
	if err != nil {
		t.Fatal(err)
	}
	gdhSEM.Register(aliceSEMHalf)

	return &signcryptFixture{
		sc:        NewSigncrypter(pkg.Public(), ibeSEM, gdhSEM),
		pkg:       pkg,
		reg:       reg,
		sender:    aliceKey,
		recipient: bobUser,
	}
}

func TestSigncryptRoundTrip(t *testing.T) {
	f := newSigncryptFixture(t)
	msg := []byte("both gates must open")
	ct, err := f.sc.Signcrypt(rand.Reader, f.sender, scRecipient, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.sc.Designcrypt(f.recipient, scSender, f.sender.Public, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("designcrypted %q, want %q", got, msg)
	}
}

func TestSigncryptSenderRevocation(t *testing.T) {
	f := newSigncryptFixture(t)
	f.reg.Revoke(scSender, "sender gone")
	if _, err := f.sc.Signcrypt(rand.Reader, f.sender, scRecipient, []byte("m")); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked sender signcrypted: %v", err)
	}
}

func TestSigncryptRecipientRevocation(t *testing.T) {
	f := newSigncryptFixture(t)
	msg := []byte("sealed before revocation")
	ct, err := f.sc.Signcrypt(rand.Reader, f.sender, scRecipient, msg)
	if err != nil {
		t.Fatal(err)
	}
	f.reg.Revoke(scRecipient, "recipient gone")
	if _, err := f.sc.Designcrypt(f.recipient, scSender, f.sender.Public, ct); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked recipient designcrypted: %v", err)
	}
	// Crucially, the SENDER still works — revocations are independent.
	f.reg.Unrevoke(scRecipient)
	if _, err := f.sc.Designcrypt(f.recipient, scSender, f.sender.Public, ct); err != nil {
		t.Fatalf("post-unrevoke designcryption failed: %v", err)
	}
}

func TestSigncryptBindsSender(t *testing.T) {
	f := newSigncryptFixture(t)
	ct, _ := f.sc.Signcrypt(rand.Reader, f.sender, scRecipient, []byte("m"))
	// Verify against the WRONG sender identity: must fail even with the
	// right key (identity is in the signed payload).
	if _, err := f.sc.Designcrypt(f.recipient, "imposter@example.com", f.sender.Public, ct); !errors.Is(err, ErrDesigncrypt) {
		t.Fatalf("wrong sender identity accepted: %v", err)
	}
	// And against the wrong key.
	ta := NewGDHAuthority(f.pkg.Public().Pairing)
	other, _, _ := ta.Keygen(rand.Reader, scSender)
	if _, err := f.sc.Designcrypt(f.recipient, scSender, other.Public, ct); !errors.Is(err, ErrDesigncrypt) {
		t.Fatalf("wrong sender key accepted: %v", err)
	}
}

func TestSigncryptRejectsOversizedMessage(t *testing.T) {
	f := newSigncryptFixture(t)
	long := make([]byte, f.sc.MaxMessageLen()+1)
	if _, err := f.sc.Signcrypt(rand.Reader, f.sender, scRecipient, long); !errors.Is(err, ErrSigncryptTooLong) {
		t.Fatalf("oversized message accepted: %v", err)
	}
	max := make([]byte, f.sc.MaxMessageLen())
	if _, err := f.sc.Signcrypt(rand.Reader, f.sender, scRecipient, max); err != nil {
		t.Fatalf("max-size message rejected: %v", err)
	}
}

func TestSigncryptTamperedEnvelope(t *testing.T) {
	f := newSigncryptFixture(t)
	ct, _ := f.sc.Signcrypt(rand.Reader, f.sender, scRecipient, []byte("m"))
	ct.W[0] ^= 1
	// The FullIdent validity check fires before the signature check.
	if _, err := f.sc.Designcrypt(f.recipient, scSender, f.sender.Public, ct); err == nil {
		t.Fatal("tampered envelope accepted")
	}
}

// --- mediated Rabin (SAEP encryption + modified-Rabin signature) ---

func rabinFixture(t *testing.T) (*rabin.PrivateKey, *rabin.HalfKey, *RabinSEM) {
	t.Helper()
	sk, err := rabin.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	user, semHalf, err := rabin.Split(rand.Reader, sk)
	if err != nil {
		t.Fatal(err)
	}
	sem := NewRabinSEM(NewRegistry())
	sem.Register("rabin-user@example.com", semHalf)
	return sk, user, sem
}

func TestMediatedRabinDecrypt(t *testing.T) {
	sk, user, sem := rabinFixture(t)
	msg := []byte("saep-ok")
	ct, err := sk.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RabinDecrypt(sem, "rabin-user@example.com", sk.Public, user, ct, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestMediatedRabinSign(t *testing.T) {
	sk, user, sem := rabinFixture(t)
	msg := []byte("mediated modified-rabin signature")
	sig, err := RabinSign(sem, "rabin-user@example.com", sk.Public, user, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Public.Verify(msg, sig); err != nil {
		t.Fatalf("mediated Rabin signature invalid: %v", err)
	}
}

func TestMediatedRabinRevocation(t *testing.T) {
	sk, user, sem := rabinFixture(t)
	msg := []byte("gone")
	ct, _ := sk.Public.Encrypt(rand.Reader, msg)
	sem.Registry().Revoke("rabin-user@example.com", "test")
	if _, err := RabinDecrypt(sem, "rabin-user@example.com", sk.Public, user, ct, len(msg)); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked Rabin identity decrypted: %v", err)
	}
	if _, err := RabinSign(sem, "rabin-user@example.com", sk.Public, user, msg); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked Rabin identity signed: %v", err)
	}
}

func TestMediatedRabinUnknownIdentity(t *testing.T) {
	sk, user, sem := rabinFixture(t)
	ct, _ := sk.Public.Encrypt(rand.Reader, []byte("x"))
	if _, err := RabinDecrypt(sem, "ghost@example.com", sk.Public, user, ct, 1); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("unknown Rabin identity served: %v", err)
	}
}

func TestRabinSEMValidatesOperand(t *testing.T) {
	sk, _, sem := rabinFixture(t)
	if _, err := sem.HalfOp("rabin-user@example.com", sk.Public.N); err == nil {
		t.Error("out-of-range operand accepted")
	}
	if _, err := sem.HalfOp("rabin-user@example.com", big.NewInt(0)); err == nil {
		t.Error("zero operand accepted")
	}
}

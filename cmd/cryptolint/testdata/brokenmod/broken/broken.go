// Package broken fails to type-check: the loader must surface this as an
// error, not as "no findings".
package broken

// Mangle references an undefined identifier.
func Mangle() int { return undefinedIdentifier }

package nopanic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nopanic"
)

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, "testdata", nopanic.Analyzer,
		"repro/internal/panicky",
		"repro/cmd/panictool",
	)
}

// Package lru provides a small mutex-guarded LRU cache with hit/miss/
// eviction counters. The SEM's fixed-argument pairing programs and the
// Boneh-Franklin per-recipient GT tables are both keyed by identity and
// unbounded in principle — millions of users — so every cache of derived
// per-identity state in this codebase is bounded by this one policy.
package lru

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Stats is a snapshot of a cache's counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Cache is a fixed-capacity least-recently-used map. All methods are safe
// for concurrent use. The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *entry[K, V]
	items map[K]*list.Element
	stats Stats
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an empty cache holding at most capacity entries. Capacities
// below 1 are clamped to 1 — a degenerate but functional cache — rather
// than rejected, so misconfiguration degrades performance, not correctness.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element),
	}
}

// Get returns the value cached under key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Add inserts or replaces the value under key (marking it most recently
// used) and reports whether an older entry was evicted to make room.
func (c *Cache[K, V]) Add(key K, val V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return false
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
	if c.order.Len() <= c.cap {
		return false
	}
	c.evictOldest()
	return true
}

// Remove drops the entry under key, reporting whether it was present.
// Removals are deliberate invalidations (revocation, re-registration), not
// capacity pressure, so they do not count as evictions.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Purge drops every entry (counters are preserved; purged entries are not
// evictions).
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[K]*list.Element)
}

// Resize changes the capacity (clamped to ≥ 1), evicting oldest entries if
// the cache is now over capacity.
func (c *Cache[K, V]) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	for c.order.Len() > c.cap {
		c.evictOldest()
	}
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Instrument registers the cache's counters with reg under the shared
// lru_* metric families, one series per cache distinguished by a
// cache=<name> label: lru_hits_total, lru_misses_total,
// lru_evictions_total and the lru_entries gauge. The series are
// function-backed — export samples Stats()/Len() at scrape time, so
// instrumentation adds nothing to the cache's own lock scope.
func (c *Cache[K, V]) Instrument(reg *obs.Registry, name string) {
	label := obs.Label{Key: "cache", Value: name}
	reg.CounterFunc("lru_hits_total", "cache lookups served from the cache",
		func() uint64 { return c.Stats().Hits }, label)
	reg.CounterFunc("lru_misses_total", "cache lookups that missed",
		func() uint64 { return c.Stats().Misses }, label)
	reg.CounterFunc("lru_evictions_total", "entries evicted by capacity pressure",
		func() uint64 { return c.Stats().Evictions }, label)
	reg.GaugeFunc("lru_entries", "entries currently cached",
		func() int64 { return int64(c.Len()) }, label)
}

// evictOldest removes the least recently used entry. Caller holds c.mu.
func (c *Cache[K, V]) evictOldest() {
	oldest := c.order.Back()
	if oldest == nil {
		return
	}
	c.order.Remove(oldest)
	delete(c.items, oldest.Value.(*entry[K, V]).key)
	c.stats.Evictions++
}

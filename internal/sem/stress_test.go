package sem

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pairing"
)

// ibeFixture spins up a SEM daemon with only the IBE backend — the token
// hot path the worker pool and the precomputation cache exist for — and
// keeps a handle on the backend so tests can inspect cache state.
type ibeOnlyFixture struct {
	pp     *pairing.Params
	reg    *core.Registry
	pkg    *core.MediatedPKG
	ibe    *core.IBESEM
	server *Server
	addr   string
}

func newIBEOnlyFixture(t *testing.T, workers int) *ibeOnlyFixture {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, msgLen)
	if err != nil {
		t.Fatal(err)
	}
	ibe := core.NewIBESEM(pkg.Public(), reg)
	srv, err := NewServer(Config{
		Registry: reg,
		IBE:      ibe,
		Pairing:  pp,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		wg.Wait()
	})
	return &ibeOnlyFixture{
		pp:     pp,
		reg:    reg,
		pkg:    pkg,
		ibe:    ibe,
		server: srv,
		addr:   ln.Addr().String(),
	}
}

// enrollID splits an identity key and registers the SEM half, returning the
// user half.
func (f *ibeOnlyFixture) enrollID(t *testing.T, id string) *core.UserKeyHalf {
	t.Helper()
	user, semHalf, err := f.pkg.SplitExtract(rand.Reader, id)
	if err != nil {
		t.Fatal(err)
	}
	f.ibe.Register(semHalf)
	return user
}

// TestConcurrentTokenStress hammers the worker pool from many connections
// and identities at once; run under -race it exercises the shared
// precomputation cache, the registry, and the pipeline machinery together.
func TestConcurrentTokenStress(t *testing.T) {
	f := newIBEOnlyFixture(t, 0) // default pool = GOMAXPROCS
	const (
		nIdentities = 4
		nConns      = 8
		nRequests   = 6
	)
	users := make([]*core.UserKeyHalf, nIdentities)
	for i := range users {
		users[i] = f.enrollID(t, fmt.Sprintf("user%d@example.com", i))
	}

	errs := make(chan error, nConns)
	for c := 0; c < nConns; c++ {
		go func(c int) {
			client, err := Dial(f.addr, f.pp, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			user := users[c%nIdentities]
			msg := bytes.Repeat([]byte{byte(c)}, msgLen)
			for r := 0; r < nRequests; r++ {
				ct, err := f.pkg.Public().Encrypt(rand.Reader, user.ID, msg)
				if err != nil {
					errs <- err
					return
				}
				got, err := client.DecryptIBE(f.pkg.Public(), user, ct)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, msg) {
					errs <- fmt.Errorf("conn %d round %d: wrong plaintext", c, r)
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < nConns; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	if got := f.ibe.PairerCacheLen(); got != nIdentities {
		t.Fatalf("cache holds %d programs, want %d", got, nIdentities)
	}
	st := f.ibe.PairerCacheStats()
	// Every request beyond the first per identity should have hit.
	if want := uint64(nConns*nRequests - nIdentities); st.Hits < want {
		t.Fatalf("stats = %+v, want ≥%d hits", st, want)
	}
}

// TestSingleWorkerServesManyConnections pins the pool to one worker: the
// pipeline must still serve all connections (serialized, not deadlocked).
func TestSingleWorkerServesManyConnections(t *testing.T) {
	f := newIBEOnlyFixture(t, 1)
	if got := f.server.Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1", got)
	}
	user := f.enrollID(t, testID)
	msg := bytes.Repeat([]byte{7}, msgLen)

	const nConns = 5
	errs := make(chan error, nConns)
	for c := 0; c < nConns; c++ {
		go func() {
			client, err := Dial(f.addr, f.pp, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			ct, err := f.pkg.Public().Encrypt(rand.Reader, testID, msg)
			if err != nil {
				errs <- err
				return
			}
			got, err := client.DecryptIBE(f.pkg.Public(), user, ct)
			if err == nil && !bytes.Equal(got, msg) {
				err = errors.New("wrong plaintext")
			}
			errs <- err
		}()
	}
	for c := 0; c < nConns; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelinedFramesAnsweredInOrder writes a burst of frames without
// reading any responses, then checks the responses come back in request
// order — the FIFO contract of the per-connection writer.
func TestPipelinedFramesAnsweredInOrder(t *testing.T) {
	f := newIBEOnlyFixture(t, 0)
	f.reg.Revoke("revoked@example.com", "pattern bit")

	conn, err := net.Dial("tcp", f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))

	// Frame i asks for the revocation status of an identity whose status
	// encodes i's parity, so a reordered response is detectable.
	const n = 32
	for i := 0; i < n; i++ {
		id := "fine@example.com"
		if i%2 == 1 {
			id = "revoked@example.com"
		}
		if _, err := writeFrame(conn, &Request{Op: OpStatus, ID: id}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		var resp Response
		if _, err := readFrame(conn, &resp, 0); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if !resp.OK {
			t.Fatalf("response %d: %+v", i, resp)
		}
		if want := i%2 == 1; resp.Revoked != want {
			t.Fatalf("response %d out of order: revoked=%v, want %v", i, resp.Revoked, want)
		}
	}
}

// TestCacheEvictionOverTheWire drives more identities through the daemon
// than the precomputation cache holds and checks the stats see the
// evictions while service is unaffected.
func TestCacheEvictionOverTheWire(t *testing.T) {
	f := newIBEOnlyFixture(t, 0)
	f.ibe.SetPairerCacheCapacity(2)
	msg := bytes.Repeat([]byte{0xE7}, msgLen)

	client, err := Dial(f.addr, f.pp, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("evict%d@example.com", i)
		user := f.enrollID(t, id)
		ct, err := f.pkg.Public().Encrypt(rand.Reader, id, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := client.DecryptIBE(f.pkg.Public(), user, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("identity %d: wrong plaintext", i)
		}
	}
	if got := f.ibe.PairerCacheLen(); got != 2 {
		t.Fatalf("cache holds %d programs, want capacity 2", got)
	}
	if st := f.ibe.PairerCacheStats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v, want exactly 1 eviction", st)
	}
}

// TestRevocationDropsCachedProgramOverTheWire checks the wire-level
// revocation path invalidates the identity's precomputed pairing program
// and that unrevocation restores service with a rebuilt program.
func TestRevocationDropsCachedProgramOverTheWire(t *testing.T) {
	f := newIBEOnlyFixture(t, 0)
	user := f.enrollID(t, testID)
	msg := bytes.Repeat([]byte{0x5C}, msgLen)
	ct, err := f.pkg.Public().Encrypt(rand.Reader, testID, msg)
	if err != nil {
		t.Fatal(err)
	}

	client, err := Dial(f.addr, f.pp, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.DecryptIBE(f.pkg.Public(), user, ct); err != nil {
		t.Fatal(err)
	}
	if f.ibe.PairerCacheLen() != 1 {
		t.Fatal("no precomputed program after first decryption")
	}

	if err := client.Revoke(testID, "wire test"); err != nil {
		t.Fatal(err)
	}
	if f.ibe.PairerCacheLen() != 0 {
		t.Fatal("revocation over the wire left the precomputed program behind")
	}
	if _, err := client.DecryptIBE(f.pkg.Public(), user, ct); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("revoked decryption: %v", err)
	}

	if err := client.Unrevoke(testID); err != nil {
		t.Fatal(err)
	}
	got, err := client.DecryptIBE(f.pkg.Public(), user, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext after unrevoke")
	}
	if f.ibe.PairerCacheLen() != 1 {
		t.Fatal("program not rebuilt after unrevoke")
	}
}

// TestRevokeRacesTokenIssuance revokes an identity while other connections
// are mid-decryption: every response must be either a valid plaintext or
// ErrRevoked — never a stale token — and the cache must be clean at the end.
func TestRevokeRacesTokenIssuance(t *testing.T) {
	f := newIBEOnlyFixture(t, 0)
	user := f.enrollID(t, testID)
	msg := bytes.Repeat([]byte{0xAB}, msgLen)

	const nConns = 6
	start := make(chan struct{})
	errs := make(chan error, nConns)
	for c := 0; c < nConns; c++ {
		go func() {
			client, err := Dial(f.addr, f.pp, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			<-start
			for r := 0; r < 8; r++ {
				ct, err := f.pkg.Public().Encrypt(rand.Reader, testID, msg)
				if err != nil {
					errs <- err
					return
				}
				got, err := client.DecryptIBE(f.pkg.Public(), user, ct)
				switch {
				case err == nil:
					if !bytes.Equal(got, msg) {
						errs <- errors.New("wrong plaintext under revocation race")
						return
					}
				case errors.Is(err, core.ErrRevoked):
					// fine: the revoker won this round
				default:
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	close(start)
	time.Sleep(10 * time.Millisecond)
	f.reg.Revoke(testID, "mid-flight")
	for c := 0; c < nConns; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if f.ibe.PairerCacheLen() != 0 {
		// A loser of the Revoke/Add race may have re-cached the program;
		// that is harmless (Token re-checks revocation and the half), but
		// the identity must still be refused.
		if _, err := f.ibe.Token(testID, nil); !errors.Is(err, core.ErrRevoked) {
			t.Fatalf("revoked identity served: %v", err)
		}
	}
}

// Package fangood exercises the fanmerge negative cases: the per-index
// slot discipline the analyzer wants, including chunk-local scratch.
package fangood

import "repro/internal/parallel"

// Squares writes into per-index slots and merges in index order after the
// fan returns.
func Squares(xs []int) int {
	out := make([]int, len(xs))
	parallel.Fan(len(xs), func(i int) {
		out[i] = xs[i] * xs[i]
	})
	total := 0
	for _, v := range out {
		total += v
	}
	return total
}

// ChunkSums uses chunk-local scratch — append to a slice declared inside
// the callback is fine — and a per-chunk result slot.
func ChunkSums(xs []int, sums []int) {
	parallel.FanChunks(len(xs), func(lo, hi int) {
		local := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			local = append(local, xs[i])
		}
		s := 0
		for _, v := range local {
			s += v
		}
		sums[lo] = s
	})
}

// ChanOutside may merge however it likes after the fan has returned; the
// rule only constrains the callback.
func ChanOutside(xs []int) int {
	out := make([]int, len(xs))
	parallel.Fan(len(xs), func(i int) {
		out[i] = xs[i]
	})
	ch := make(chan int, 1)
	ch <- 0
	total := <-ch
	for _, v := range out {
		total += v
	}
	return total
}

package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Revoke("alice@example.com", "compromised"); err != nil {
		t.Fatal(err)
	}
	if err := j1.Revoke("bob@example.com", "departed"); err != nil {
		t.Fatal(err)
	}
	if err := j1.Unrevoke("alice@example.com"); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": replay the journal.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg := j2.Registry()
	if reg.IsRevoked("alice@example.com") {
		t.Error("unrevoked identity revoked after replay")
	}
	if !reg.IsRevoked("bob@example.com") {
		t.Error("revocation lost across restart")
	}
	entries := reg.Entries()
	if len(entries) != 1 || entries[0].Reason != "departed" {
		t.Errorf("entries after replay: %+v", entries)
	}
}

func TestJournalToleratesTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Revoke("alice@example.com", "x"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"revoke","id":"bo`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	defer j2.Close()
	if !j2.Registry().IsRevoked("alice@example.com") {
		t.Error("intact prefix lost")
	}
	if j2.Registry().IsRevoked("bo") {
		t.Error("torn record applied")
	}
}

func TestJournalClosedRejectsMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := j.Revoke("x", "y"); err == nil {
		t.Fatal("revoke on closed journal accepted")
	}
	if err := j.Unrevoke("x"); err == nil {
		t.Fatal("unrevoke on closed journal accepted")
	}
}

func TestJournalOpenErrors(t *testing.T) {
	if _, err := OpenJournal(filepath.Join(t.TempDir(), "missing-dir", "j.jsonl")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestJournalGatesSEM(t *testing.T) {
	// The journal's registry plugs into a SEM like any other.
	path := filepath.Join(t.TempDir(), "revocations.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	sem := NewGMSEM(j.Registry())
	_ = sem
	if err := j.Revoke("a@x", "test"); err != nil {
		t.Fatal(err)
	}
	if err := j.Registry().Check("a@x"); !errors.Is(err, ErrRevoked) {
		t.Fatal("journal mutation not visible through registry")
	}
}

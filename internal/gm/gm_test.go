package gm

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func testKey(t *testing.T) *PrivateKey {
	t.Helper()
	// Fixed small Blum primes (≡ 3 mod 4) keep the suite fast.
	p, _ := new(big.Int).SetString("dd6abb53e8b9cfa3a99600683c141a8f", 16)
	q, _ := new(big.Int).SetString("d1ad296f648dd92aecd8a08056be2f5b", 16)
	if new(big.Int).Mod(p, big.NewInt(4)).Int64() != 3 || new(big.Int).Mod(q, big.NewInt(4)).Int64() != 3 {
		t.Fatal("fixture primes are not Blum primes")
	}
	sk, err := KeyFromPrimes(p, q)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestGenerateKey(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Public.N.BitLen() != 128 && sk.Public.N.BitLen() != 127 {
		t.Fatalf("modulus %d bits", sk.Public.N.BitLen())
	}
	// y must be a Jacobi-(+1) non-residue: encrypting 1 and decrypting
	// must give 1.
	c, err := sk.Public.EncryptBit(rand.Reader, 1)
	if err != nil {
		t.Fatal(err)
	}
	bit, err := sk.DecryptBit(c)
	if err != nil {
		t.Fatal(err)
	}
	if bit != 1 {
		t.Fatal("pseudosquare is not a non-residue")
	}
}

func TestKeyFromPrimesValidation(t *testing.T) {
	if _, err := KeyFromPrimes(big.NewInt(13), big.NewInt(7)); !errors.Is(err, ErrKeygen) {
		t.Errorf("p ≡ 1 mod 4 accepted: %v", err)
	}
	if _, err := KeyFromPrimes(big.NewInt(15), big.NewInt(7)); !errors.Is(err, ErrKeygen) {
		t.Errorf("composite accepted: %v", err)
	}
	if _, err := KeyFromPrimes(big.NewInt(7), big.NewInt(7)); !errors.Is(err, ErrKeygen) {
		t.Errorf("equal primes accepted: %v", err)
	}
}

func TestBitRoundTrip(t *testing.T) {
	sk := testKey(t)
	for _, bit := range []byte{0, 1} {
		for i := 0; i < 16; i++ {
			c, err := sk.Public.EncryptBit(rand.Reader, bit)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sk.DecryptBit(c)
			if err != nil {
				t.Fatal(err)
			}
			if got != bit {
				t.Fatalf("bit %d decrypted as %d", bit, got)
			}
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	sk := testKey(t)
	msg := []byte("GM!")
	cs, err := sk.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(msg)*8 {
		t.Fatalf("ciphertext has %d elements, want %d", len(cs), len(msg)*8)
	}
	got, err := sk.Decrypt(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestEncryptionRandomized(t *testing.T) {
	sk := testKey(t)
	c1, _ := sk.Public.EncryptBit(rand.Reader, 0)
	c2, _ := sk.Public.EncryptBit(rand.Reader, 0)
	if c1.Cmp(c2) == 0 {
		t.Fatal("GM must be probabilistic")
	}
}

func TestMediatedDecrypt(t *testing.T) {
	sk := testKey(t)
	user, sem, err := Split(rand.Reader, sk)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{0b10110010, 0xFF, 0x00}
	cs, err := sk.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MediatedDecrypt(sk.Public, user, sem, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("mediated decrypt got %x, want %x", got, msg)
	}
}

func TestSplitCompleteness(t *testing.T) {
	sk := testKey(t)
	user, sem, _ := Split(rand.Reader, sk)
	c, _ := sk.Public.EncryptBit(rand.Reader, 1)
	full := new(big.Int).Exp(c, sk.D, sk.Public.N)
	combined := new(big.Int).Mul(user.Op(c), sem.Op(c))
	combined.Mod(combined, sk.Public.N)
	if full.Cmp(combined) != 0 {
		t.Fatal("halves do not compose to the residuosity exponent")
	}
}

func TestHalfAloneIsUseless(t *testing.T) {
	// One half-result is a random-looking unit: interpreting it as the
	// residuosity value fails (it is neither +1 nor −1 except with
	// negligible probability).
	sk := testKey(t)
	user, _, _ := Split(rand.Reader, sk)
	c, _ := sk.Public.EncryptBit(rand.Reader, 1)
	t1 := user.Op(c)
	if _, err := interpretResiduosity(t1, sk.Public.N); err == nil {
		t.Fatal("a single half decided the residuosity")
	}
}

func TestDecryptRejectsMalformed(t *testing.T) {
	sk := testKey(t)
	// Jacobi −1 element.
	x := big.NewInt(2)
	for big.Jacobi(x, sk.Public.N) != -1 {
		x.Add(x, big.NewInt(1))
	}
	if _, err := sk.DecryptBit(x); !errors.Is(err, ErrDecrypt) {
		t.Errorf("Jacobi −1 element accepted: %v", err)
	}
	if _, err := sk.DecryptBit(big.NewInt(0)); !errors.Is(err, ErrDecrypt) {
		t.Errorf("zero accepted: %v", err)
	}
	if _, err := sk.DecryptBit(sk.Public.N); !errors.Is(err, ErrDecrypt) {
		t.Errorf("out-of-range element accepted: %v", err)
	}
	if _, err := sk.Decrypt([]*big.Int{big.NewInt(1)}); !errors.Is(err, ErrDecrypt) {
		t.Errorf("non-multiple-of-8 ciphertext accepted: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	sk := testKey(t)
	user, sem, _ := Split(rand.Reader, sk)
	cfg := &quick.Config{MaxCount: 8}
	property := func(raw [2]byte) bool {
		msg := raw[:]
		cs, err := sk.Public.Encrypt(rand.Reader, msg)
		if err != nil {
			return false
		}
		direct, err := sk.Decrypt(cs)
		if err != nil || !bytes.Equal(direct, msg) {
			return false
		}
		mediated, err := MediatedDecrypt(sk.Public, user, sem, cs)
		return err == nil && bytes.Equal(mediated, msg)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

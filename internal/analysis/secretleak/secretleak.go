// Package secretleak forbids secret material from flowing into formatting
// and logging sinks. A //cryptolint:secret value passed to fmt, log or
// log/slog ends up in process output, crash reports and aggregated log
// pipelines — the exact channels the SEM threat model assumes an insider can
// read. Log the metadata (IDs, indices), never the key material.
//
// The metrics registry (repro/internal/obs) is a sink for the same reason:
// everything passed to it — series names and label values included — is
// published verbatim on the -debug-addr scrape endpoint. Secrets are
// detected inside composite-literal arguments too, so a value smuggled
// through an obs.Label{Value: ...} field is caught.
package secretleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/secrets"
)

// Analyzer is the secretleak checker.
var Analyzer = &analysis.Analyzer{
	Name: "secretleak",
	Doc:  "forbid //cryptolint:secret values in fmt/log/error formatting",
	Run:  run,
}

// sinkPkgs lists packages whose every function and method is a formatting
// sink. Covers fmt.Errorf, so error construction is included, and the
// metrics registry, whose label values are exported over HTTP.
var sinkPkgs = map[string]bool{
	"fmt":                true,
	"log":                true,
	"log/slog":           true,
	"repro/internal/obs": true,
}

func run(pass *analysis.Pass) error {
	set := secrets.Collect(pass.All)
	if set.Names() == 0 {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeFunc(info, call)
			if !ok || fn.Pkg() == nil || !sinkPkgs[fn.Pkg().Path()] {
				return true
			}
			for _, arg := range call.Args {
				if hit := secretIn(set, info, arg); hit != nil {
					pass.Reportf(hit.Pos(), "secret-bearing value passed to %s.%s; log metadata, not key material", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// secretIn finds a secret-bearing expression inside a sink argument: the
// argument itself, or — for composite literals like obs.Label{Value: x} —
// any element, recursively. It returns the offending expression for a
// precise diagnostic position, or nil.
func secretIn(set *secrets.Set, info *types.Info, e ast.Expr) ast.Expr {
	if set.SecretExpr(info, e) {
		return e
	}
	if cl, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		for _, elt := range cl.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if hit := secretIn(set, info, v); hit != nil {
				return hit
			}
		}
	}
	return nil
}

func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := info.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

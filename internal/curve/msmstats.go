package curve

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// MSM kernel accounting: how large the multi-scalar sums are in production
// and what the kernel costs decide whether the Pippenger machinery pays for
// itself outside benchmarks, so the serving daemons export them (same
// pattern as the pairing engine counters). Recording is a handful of
// uncontended atomic adds per MSM call — never per point.
var msmCounters struct {
	calls      atomic.Uint64                 // MSM invocations
	points     atomic.Uint64                 // contributing (nonzero) terms across calls
	windows    atomic.Uint64                 // Pippenger windows processed across calls
	windowBits atomic.Int64                  // window width chosen by the last call
	latency    atomic.Pointer[obs.Histogram] // kernel latency, set by RegisterMSMMetrics
}

// recordMSM logs one kernel invocation.
func recordMSM(points, windows, windowBits int, d time.Duration) {
	msmCounters.calls.Add(1)
	msmCounters.points.Add(uint64(points))
	msmCounters.windows.Add(uint64(windows))
	msmCounters.windowBits.Store(int64(windowBits))
	if h := msmCounters.latency.Load(); h != nil {
		h.Observe(d)
	}
}

// MSMStats is a snapshot of the MSM kernel counters.
type MSMStats struct {
	// Calls counts MSM invocations (including empty sums).
	Calls uint64
	// Points counts the contributing terms across all calls; Points/Calls
	// is the mean input size, the quantity that decides the Pippenger
	// window width.
	Points uint64
	// Windows counts processed Pippenger windows across all calls.
	Windows uint64
	// WindowBits is the bucket-index width the most recent call selected.
	WindowBits int
}

// KernelStats returns the current MSM counters.
func KernelStats() MSMStats {
	return MSMStats{
		Calls:      msmCounters.calls.Load(),
		Points:     msmCounters.points.Load(),
		Windows:    msmCounters.windows.Load(),
		WindowBits: int(msmCounters.windowBits.Load()),
	}
}

// RegisterMSMMetrics exports the MSM counters and the kernel latency
// histogram through reg. Idempotent — the registry deduplicates series —
// so every instrumented component may call it without coordination.
func RegisterMSMMetrics(reg *obs.Registry) {
	reg.CounterFunc("curve_msm_calls_total", "Pippenger MSM kernel invocations",
		func() uint64 { return msmCounters.calls.Load() })
	reg.CounterFunc("curve_msm_points_total", "scalar-point terms summed across MSM invocations",
		func() uint64 { return msmCounters.points.Load() })
	reg.CounterFunc("curve_msm_windows_total", "Pippenger windows processed across MSM invocations",
		func() uint64 { return msmCounters.windows.Load() })
	reg.GaugeFunc("curve_msm_window_bits", "window width selected by the most recent MSM call",
		func() int64 { return msmCounters.windowBits.Load() })
	msmCounters.latency.Store(reg.Histogram("curve_msm_seconds", "MSM kernel latency"))
}

package curve

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
)

// randScalarBits returns a uniform scalar of up to bits bits (occasionally
// negative to exercise that path).
func randScalarBits(t *testing.T, bits int, i int) *big.Int {
	t.Helper()
	k, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
	if err != nil {
		t.Fatal(err)
	}
	if i%7 == 0 {
		k.Neg(k)
	}
	return k
}

// TestScalarMulDifferential asserts that the Jacobian/w-NAF ScalarMul and
// the affine double-and-add oracle produce bit-identical points on ~1000
// random (point, scalar) pairs, including scalars wider than q.
func TestScalarMulDifferential(t *testing.T) {
	c := toyCurve(t)
	points := make([]*Point, 10)
	for i := range points {
		P, err := c.RandomPoint(rand.Reader) // full group, not just G1
		if err != nil {
			t.Fatal(err)
		}
		points[i] = P
	}
	for i := 0; i < 1000; i++ {
		P := points[i%len(points)]
		bits := 8 + i%120 // from tiny scalars past |q| = 32 up to > |p|
		k := randScalarBits(t, bits, i)
		fast := P.ScalarMul(k)
		slow := P.ScalarMulBinary(k)
		if !fast.Equal(slow) {
			t.Fatalf("iter %d: wNAF %v ≠ ladder %v for k=%v", i, fast, slow, k)
		}
		if !fast.IsInfinity() {
			// Bit-identical serialization, not just group equality.
			if string(fast.Marshal()) != string(slow.Marshal()) {
				t.Fatalf("iter %d: encodings differ", i)
			}
		}
	}
}

// TestScalarMulEdgeCases pins the identities the w-NAF rewrite must keep.
func TestScalarMulEdgeCases(t *testing.T) {
	c := toyCurve(t)
	P, _ := c.RandomG1(rand.Reader)
	if !P.ScalarMul(big.NewInt(0)).IsInfinity() {
		t.Error("0·P ≠ O")
	}
	if !c.Infinity().ScalarMul(big.NewInt(5)).IsInfinity() {
		t.Error("5·O ≠ O")
	}
	if !P.ScalarMul(c.Q()).IsInfinity() {
		t.Error("q·P ≠ O for P ∈ G1")
	}
	if !P.ScalarMul(big.NewInt(-1)).Equal(P.Neg()) {
		t.Error("(−1)·P ≠ −P")
	}
	// The order-2 point (0, 0) is on y² = x³ + x; doubling chains through it
	// must collapse to O, not crash.
	two, err := c.NewPoint(big.NewInt(0), big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	if !two.ScalarMul(big.NewInt(2)).IsInfinity() {
		t.Error("2·(0,0) ≠ O")
	}
	if !two.ScalarMul(big.NewInt(7)).Equal(two) {
		t.Error("7·(0,0) ≠ (0,0)")
	}
}

// TestPrecomputedDifferential asserts that fixed-base comb multiplication
// agrees with the generic path on ~1000 random scalars.
func TestPrecomputedDifferential(t *testing.T) {
	c := toyCurve(t)
	P, err := c.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPrecomputed(P, c.Q())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := randScalarBits(t, 8+i%60, i) // exercises k > q and k < 0 (mod-order reduction)
		fast := pc.ScalarMul(k)
		slow := P.ScalarMulBinary(new(big.Int).Mod(k, c.Q()))
		if !fast.Equal(slow) {
			t.Fatalf("iter %d: comb %v ≠ ladder %v for k=%v", i, fast, slow, k)
		}
	}
	if !pc.ScalarMul(big.NewInt(0)).IsInfinity() {
		t.Error("comb 0·P ≠ O")
	}
	if !pc.ScalarMul(c.Q()).IsInfinity() {
		t.Error("comb q·P ≠ O")
	}
	if pc.TableSize() != (c.Q().BitLen()+precompWindow-1)/precompWindow*(1<<precompWindow-1) {
		t.Errorf("unexpected table size %d", pc.TableSize())
	}
}

func TestPrecomputedRejectsBadInput(t *testing.T) {
	c := toyCurve(t)
	if _, err := NewPrecomputed(c.Infinity(), c.Q()); err == nil {
		t.Error("precomputing O must fail")
	}
	P, _ := c.RandomG1(rand.Reader)
	if _, err := NewPrecomputed(P, big.NewInt(0)); err == nil {
		t.Error("non-positive order must fail")
	}
}

// TestBatchToAffine checks the simultaneous-inversion normalization against
// one-at-a-time conversion, including interleaved points at infinity.
func TestBatchToAffine(t *testing.T) {
	c := toyCurve(t)
	s := newJacScratch()
	var jacs []*jacPoint
	var want []*Point
	for i := 0; i < 40; i++ {
		if i%5 == 3 {
			jacs = append(jacs, newJac().setInfinity())
			want = append(want, c.Infinity())
			continue
		}
		P, err := c.RandomPoint(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		// Give the point a non-trivial Z by running it through a doubling
		// and a mixed addition.
		v := c.toJac(P)
		c.jacDouble(v, s)
		c.jacAddMixed(v, P.x, P.y, s)
		jacs = append(jacs, v)
		want = append(want, P.Double().Add(P))
	}
	got := c.batchToAffine(jacs)
	if len(got) != len(want) {
		t.Fatalf("length mismatch %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("batch normalization differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestValidateRejectsCofactorPoint feeds Unmarshal a point of cofactor
// order: it decodes (it is on the curve) but Validate must reject it, which
// is the subgroup check the untrusted-input boundaries rely on.
func TestValidateRejectsCofactorPoint(t *testing.T) {
	c := toyCurve(t)
	var small *Point
	for {
		P, err := c.RandomPoint(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		// q·P lands in the cofactor-order component; retry until nonzero.
		small = P.ScalarMul(c.Q())
		if !small.IsInfinity() {
			break
		}
	}
	if small.InSubgroup() {
		t.Fatal("cofactor-order point claims G1 membership")
	}
	decoded, err := c.Unmarshal(small.Marshal())
	if err != nil {
		t.Fatalf("cofactor point must decode (it is on the curve): %v", err)
	}
	if err := decoded.Validate(); !errors.Is(err, ErrNotInSubgroup) {
		t.Fatalf("Validate = %v, want ErrNotInSubgroup", err)
	}
	if err := c.Infinity().Validate(); !errors.Is(err, ErrNotInSubgroup) {
		t.Fatalf("Validate(O) = %v, want ErrNotInSubgroup", err)
	}
	P, _ := c.RandomG1(rand.Reader)
	if err := P.Validate(); err != nil {
		t.Fatalf("Validate rejected a G1 point: %v", err)
	}
}

func BenchmarkScalarMulStrategies(b *testing.B) {
	p, _ := new(big.Int).SetString(toyPHex, 16)
	q, _ := new(big.Int).SetString(toyQHex, 16)
	c, err := New(p, q)
	if err != nil {
		b.Fatal(err)
	}
	P, err := c.RandomG1(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	pc, err := NewPrecomputed(P, c.Q())
	if err != nil {
		b.Fatal(err)
	}
	k, _ := rand.Int(rand.Reader, c.Q())
	b.Run("wnaf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			P.ScalarMul(k)
		}
	})
	b.Run("fixed-base", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pc.ScalarMul(k)
		}
	})
	b.Run("binary-ladder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			P.ScalarMulBinary(k)
		}
	})
}

// Package leakbad exercises the secretleak positive cases.
package leakbad

import (
	"fmt"
	"log"

	"repro/internal/keys"
)

// Dump prints the whole secret struct.
func Dump(k *keys.PrivateKey) {
	fmt.Printf("key: %v\n", k) // want `secret-bearing value passed to fmt.Printf`
}

// Trace logs the secret exponent.
func Trace(k *keys.PrivateKey) {
	log.Println("d =", k.D) // want `secret-bearing value passed to log.Println`
}

// Wrap folds key material into an error message.
func Wrap(k *keys.PrivateKey) error {
	return fmt.Errorf("rejected key %x", k.Material()) // want `secret-bearing value passed to fmt.Errorf`
}

// Package gf implements arithmetic in the quadratic extension field F_p²
// with p ≡ 3 (mod 4), represented as F_p[i]/(i² + 1).
//
// Elements are pairs (a, b) denoting a + b·i with a, b ∈ F_p. The pairing
// substrate evaluates Miller line functions in this field and the target
// group GT of the modified Tate pairing is its order-q subgroup.
//
// All operations are immutable with respect to their operands: methods on
// *Element write into the receiver and return it (math/big style), so
// chains like e.Mul(x, y).Square(e) work, and no method retains references
// to argument internals.
package gf

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrNotInvertible is returned when inverting the zero element.
var ErrNotInvertible = errors.New("gf: zero element is not invertible")

// Field describes F_p² for a fixed prime p ≡ 3 (mod 4). A Field value is
// immutable after construction and safe for concurrent use.
type Field struct {
	p *big.Int
}

// NewField constructs the quadratic extension over the prime p.
// It returns an error unless p ≡ 3 (mod 4) (needed for i² = −1 to define a
// field: −1 must be a non-residue).
func NewField(p *big.Int) (*Field, error) {
	if p.Sign() <= 0 {
		return nil, fmt.Errorf("gf: modulus must be positive")
	}
	if p.Bit(0) != 1 || p.Bit(1) != 1 {
		return nil, fmt.Errorf("gf: modulus must be ≡ 3 (mod 4), got %v (mod 4)", new(big.Int).Mod(p, big.NewInt(4)))
	}
	return &Field{p: new(big.Int).Set(p)}, nil
}

// P returns (a copy of) the characteristic.
func (f *Field) P() *big.Int { return new(big.Int).Set(f.p) }

// Element is an element a + b·i of F_p². The zero value is not usable;
// construct via Field.NewElement or the arithmetic methods.
type Element struct {
	f    *Field
	a, b *big.Int
}

// NewElement builds the element a + b·i (values are reduced mod p and copied).
func (f *Field) NewElement(a, b *big.Int) *Element {
	e := &Element{
		f: f,
		a: new(big.Int).Mod(a, f.p),
		b: new(big.Int).Mod(b, f.p),
	}
	return e
}

// Zero returns the additive identity.
func (f *Field) Zero() *Element { return f.NewElement(big.NewInt(0), big.NewInt(0)) }

// One returns the multiplicative identity.
func (f *Field) One() *Element { return f.NewElement(big.NewInt(1), big.NewInt(0)) }

// FromInt lifts an F_p element into F_p².
func (f *Field) FromInt(a *big.Int) *Element { return f.NewElement(a, big.NewInt(0)) }

// SetElement loads (a mod p) + (b mod p)·i into e, reusing e's existing
// coordinate storage when present. Hot loops (the Miller loop's line
// evaluations) use this to rebuild one persistent element per iteration
// instead of allocating a fresh one.
func (f *Field) SetElement(e *Element, a, b *big.Int) *Element {
	if e.a == nil {
		e.a = new(big.Int)
	}
	if e.b == nil {
		e.b = new(big.Int)
	}
	e.f = f
	e.a.Mod(a, f.p)
	e.b.Mod(b, f.p)
	return e
}

// Field returns the field the element belongs to.
func (e *Element) Field() *Field { return e.f }

// Re returns a copy of the real coordinate.
func (e *Element) Re() *big.Int { return new(big.Int).Set(e.a) }

// Im returns a copy of the imaginary coordinate.
func (e *Element) Im() *big.Int { return new(big.Int).Set(e.b) }

// Copy returns an independent copy of e.
func (e *Element) Copy() *Element {
	return &Element{f: e.f, a: new(big.Int).Set(e.a), b: new(big.Int).Set(e.b)}
}

// Set copies x into e and returns e.
func (e *Element) Set(x *Element) *Element {
	e.f = x.f
	if e.a == nil {
		e.a = new(big.Int)
	}
	if e.b == nil {
		e.b = new(big.Int)
	}
	e.a.Set(x.a)
	e.b.Set(x.b)
	return e
}

// IsZero reports whether e is the additive identity.
func (e *Element) IsZero() bool { return e.a.Sign() == 0 && e.b.Sign() == 0 }

// IsOne reports whether e is the multiplicative identity.
func (e *Element) IsOne() bool { return e.a.Cmp(big.NewInt(1)) == 0 && e.b.Sign() == 0 }

// Equal reports whether e and x denote the same field element.
func (e *Element) Equal(x *Element) bool {
	return e.a.Cmp(x.a) == 0 && e.b.Cmp(x.b) == 0
}

// ensure makes the receiver's coordinate storage usable so the arithmetic
// methods can compute in place. The Miller loop and GT exponentiation call
// these methods millions of times; reusing receiver storage (big.Int keeps
// its backing array across Set/Mod) removes two allocations per linear op.
func (e *Element) ensure() {
	if e.a == nil {
		e.a = new(big.Int)
	}
	if e.b == nil {
		e.b = new(big.Int)
	}
}

// Add sets e = x + y and returns e. The coordinate-wise operations are
// aliasing-safe (each output coordinate depends only on the matching input
// coordinates), so the receiver's storage is reused directly.
func (e *Element) Add(x, y *Element) *Element {
	f := x.f
	e.ensure()
	e.a.Add(x.a, y.a)
	e.a.Mod(e.a, f.p)
	e.b.Add(x.b, y.b)
	e.b.Mod(e.b, f.p)
	e.f = f
	return e
}

// Sub sets e = x − y and returns e.
func (e *Element) Sub(x, y *Element) *Element {
	f := x.f
	e.ensure()
	e.a.Sub(x.a, y.a)
	e.a.Mod(e.a, f.p)
	e.b.Sub(x.b, y.b)
	e.b.Mod(e.b, f.p)
	e.f = f
	return e
}

// Neg sets e = −x and returns e.
func (e *Element) Neg(x *Element) *Element {
	f := x.f
	e.ensure()
	e.a.Neg(x.a)
	e.a.Mod(e.a, f.p)
	e.b.Neg(x.b)
	e.b.Mod(e.b, f.p)
	e.f = f
	return e
}

// Mul sets e = x · y and returns e, using the schoolbook formula
// (a+bi)(c+di) = (ac − bd) + (ad + bc)i. Cross-coordinate reads force
// temporaries, but only three: the bd product is recycled for bc once the
// real part is assembled, and the results are adopted, not copied.
func (e *Element) Mul(x, y *Element) *Element {
	f := x.f
	ac := new(big.Int).Mul(x.a, y.a)
	bd := new(big.Int).Mul(x.b, y.b)
	ad := new(big.Int).Mul(x.a, y.b)
	ac.Sub(ac, bd)
	ac.Mod(ac, f.p)
	bc := bd.Mul(x.b, y.a)
	ad.Add(ad, bc)
	ad.Mod(ad, f.p)
	e.f, e.a, e.b = f, ac, ad
	return e
}

// MulScalar sets e = k · x for k ∈ F_p and returns e.
func (e *Element) MulScalar(x *Element, k *big.Int) *Element {
	f := x.f
	e.ensure()
	e.a.Mul(x.a, k)
	e.a.Mod(e.a, f.p)
	e.b.Mul(x.b, k)
	e.b.Mod(e.b, f.p)
	e.f = f
	return e
}

// Square sets e = x² and returns e, using
// (a+bi)² = (a+b)(a−b) + 2ab·i.
func (e *Element) Square(x *Element) *Element {
	f := x.f
	sum := new(big.Int).Add(x.a, x.b)
	diff := new(big.Int).Sub(x.a, x.b)
	b := new(big.Int).Mul(x.a, x.b)
	b.Lsh(b, 1)
	b.Mod(b, f.p)
	sum.Mul(sum, diff)
	sum.Mod(sum, f.p)
	e.f, e.a, e.b = f, sum, b
	return e
}

// SquareUnitary sets e = x² for a *unitary* x (norm a² + b² = 1, e.g. any
// value of the form y^(p−1) = conj(y)/y, which is what a pairing final
// exponentiation produces after its easy part) and returns e. The norm
// relation collapses the square to
//
//	(a + bi)² = (2a² − 1) + ((a + b)² − 1)·i,
//
// two big-integer squarings instead of the three general multiplications of
// Square — math/big squares operands noticeably faster than it multiplies
// distinct ones. The caller must guarantee unitarity; for a general x the
// result is simply wrong.
func (e *Element) SquareUnitary(x *Element) *Element {
	f := x.f
	aa := new(big.Int).Mul(x.a, x.a)
	s := new(big.Int).Add(x.a, x.b)
	s.Mul(s, s)
	aa.Lsh(aa, 1)
	aa.Sub(aa, oneInt)
	aa.Mod(aa, f.p)
	s.Sub(s, oneInt)
	s.Mod(s, f.p)
	e.f, e.a, e.b = f, aa, s
	return e
}

var oneInt = big.NewInt(1)

// Conjugate sets e = a − b·i for x = a + b·i and returns e. Conjugation is
// the Frobenius map x ↦ x^p on F_p².
func (e *Element) Conjugate(x *Element) *Element {
	f := x.f
	e.ensure()
	if e.a != x.a {
		e.a.Set(x.a)
	}
	e.b.Neg(x.b)
	e.b.Mod(e.b, f.p)
	e.f = f
	return e
}

// Inverse sets e = x⁻¹ and returns e, via x⁻¹ = conj(x)/(a² + b²).
// It returns ErrNotInvertible for x = 0.
func (e *Element) Inverse(x *Element) (*Element, error) {
	if x.IsZero() {
		return nil, ErrNotInvertible
	}
	f := x.f
	norm := new(big.Int).Mul(x.a, x.a)
	bb := new(big.Int).Mul(x.b, x.b)
	norm.Add(norm, bb)
	norm.Mod(norm, f.p)
	inv := new(big.Int).ModInverse(norm, f.p)
	if inv == nil {
		return nil, ErrNotInvertible
	}
	a := new(big.Int).Mul(x.a, inv)
	a.Mod(a, f.p)
	b := new(big.Int).Neg(x.b)
	b.Mul(b, inv)
	b.Mod(b, f.p)
	e.f, e.a, e.b = f, a, b
	return e, nil
}

// Exp sets e = x^k (k ≥ 0) and returns e, by square-and-multiply.
// A negative k is rejected; invert first when needed.
func (e *Element) Exp(x *Element, k *big.Int) (*Element, error) {
	if k.Sign() < 0 {
		return nil, fmt.Errorf("gf: negative exponent %v", k)
	}
	result := x.f.One()
	base := x.Copy()
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			result.Mul(result, base)
		}
		base.Square(base)
	}
	return e.Set(result), nil
}

// String renders the element as "a + b·i" for debugging.
func (e *Element) String() string {
	return fmt.Sprintf("%v + %v·i", e.a, e.b)
}

// Bytes serializes the element as the fixed-width big-endian concatenation
// a ‖ b, each ⌈|p|/8⌉ bytes.
func (e *Element) Bytes() []byte {
	size := (e.f.p.BitLen() + 7) / 8
	out := make([]byte, 2*size)
	e.a.FillBytes(out[:size])
	e.b.FillBytes(out[size:])
	return out
}

// ElementFromBytes parses the serialization produced by Element.Bytes.
func (f *Field) ElementFromBytes(data []byte) (*Element, error) {
	size := (f.p.BitLen() + 7) / 8
	if len(data) != 2*size {
		return nil, fmt.Errorf("gf: element encoding must be %d bytes, got %d", 2*size, len(data))
	}
	a := new(big.Int).SetBytes(data[:size])
	b := new(big.Int).SetBytes(data[size:])
	if a.Cmp(f.p) >= 0 || b.Cmp(f.p) >= 0 {
		return nil, fmt.Errorf("gf: coordinate out of field range")
	}
	return f.NewElement(a, b), nil
}

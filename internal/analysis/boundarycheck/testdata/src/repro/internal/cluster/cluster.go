// Package cluster exercises the boundarycheck negative cases: a
// network-facing package that routes every decode through wire.
package cluster

import (
	"math/big"

	"repro/internal/curve"
	"repro/internal/pairing"
	"repro/internal/wire"
)

// HandlePoint decodes through the validated path.
func HandlePoint(c *curve.Curve, payload []byte) (*curve.Point, error) {
	return wire.UnmarshalG1(c, payload)
}

// HandleShare decodes a GT share and its proof scalar through wire.
func HandleShare(pp *pairing.Params, g, e []byte, q *big.Int) (*pairing.GT, *big.Int, error) {
	gt, err := wire.UnmarshalGT(pp, g)
	if err != nil {
		return nil, nil, err
	}
	s, err := wire.UnmarshalScalar(e, q)
	if err != nil {
		return nil, nil, err
	}
	return gt, s, nil
}

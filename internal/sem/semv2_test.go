package sem

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/mrsa"
	"repro/internal/wire"
)

func TestV2Negotiated(t *testing.T) {
	f := newFixture(t)
	if err := f.client.Ping(); err != nil {
		t.Fatal(err)
	}
	if v := f.client.Version(); v != 2 {
		t.Fatalf("negotiated version %d, want 2", v)
	}
	if mb := f.client.MaxBatch(); mb != DefaultMaxBatch {
		t.Fatalf("negotiated max batch %d, want %d", mb, DefaultMaxBatch)
	}
}

// randomPoints returns n distinct order-q subgroup points for batch
// payloads (hashed, so they pass the server's subgroup screening).
func randomPoints(t *testing.T, f *fixture, n int) []*curve.Point {
	t.Helper()
	pts := make([]*curve.Point, n)
	for i := range pts {
		var err error
		pts[i], err = f.pp.Curve().HashToPoint("semv2-test", []byte{byte(i), byte(i >> 8)})
		if err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

func TestTokenBatchMatchesSingleOps(t *testing.T) {
	f := newFixture(t)
	const k = 5
	us := randomPoints(t, f, k)
	ids := make([]string, k)
	for i := range ids {
		ids[i] = testID
	}
	tokens, errs, err := f.client.TokenBatch(ids, us)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("item %d failed: %v", i, errs[i])
		}
		single, err := f.client.IBEToken(testID, us[i])
		if err != nil {
			t.Fatal(err)
		}
		if !tokens[i].Equal(single) {
			t.Fatalf("batch token %d differs from the single-op token", i)
		}
	}
}

func TestTokenBatchPartialFailures(t *testing.T) {
	f := newFixture(t)
	us := randomPoints(t, f, 4)
	ids := []string{testID, "nobody@example.com", testID, "nobody@example.com"}
	tokens, errs, err := f.client.TokenBatch(ids, us)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id == testID {
			if errs[i] != nil || tokens[i] == nil {
				t.Fatalf("valid item %d failed: %v", i, errs[i])
			}
			continue
		}
		if !errors.Is(errs[i], core.ErrUnknownIdentity) {
			t.Fatalf("item %d: want ErrUnknownIdentity, got %v", i, errs[i])
		}
		if tokens[i] != nil {
			t.Fatalf("failed item %d still has a token", i)
		}
	}
}

func TestTokenBatchSplitsOverMaxBatch(t *testing.T) {
	f := newFixture(t)
	// Force several chunks through the negotiated limit.
	if err := f.client.Ping(); err != nil {
		t.Fatal(err)
	}
	k := f.client.MaxBatch()*2 + 3
	us := randomPoints(t, f, k)
	ids := make([]string, k)
	for i := range ids {
		ids[i] = testID
	}
	tokens, errs, err := f.client.TokenBatch(ids, us)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tokens {
		if errs[i] != nil || tokens[i] == nil {
			t.Fatalf("item %d of a chunked batch failed: %v", i, errs[i])
		}
	}
}

func TestGDHHalfSignBatch(t *testing.T) {
	f := newFixture(t)
	hs := randomPoints(t, f, 3)
	ids := []string{testID, testID, testID}
	halves, errs, err := f.client.GDHHalfSignBatch(ids, hs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range halves {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		single, err := f.client.GDHHalfSign(testID, hs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !halves[i].Equal(single) {
			t.Fatalf("batch half %d differs from the single-op half", i)
		}
	}
}

func TestRSAHalfDecryptBatch(t *testing.T) {
	f := newFixture(t)
	const k = 3
	ids := make([]string, k)
	cts := make([]*big.Int, k)
	msgs := make([][]byte, k)
	for i := 0; i < k; i++ {
		ids[i] = testID
		msgs[i] = []byte(fmt.Sprintf("batch message %d", i))
		raw, err := f.rsaPub.EncryptOAEP(rand.Reader, msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		cts[i], err = wire.UnmarshalScalar(raw, f.rsaPub.N)
		if err != nil {
			t.Fatal(err)
		}
	}
	halves, errs, err := f.client.RSAHalfDecryptBatch(f.rsaPub, ids, cts)
	if err != nil {
		t.Fatal(err)
	}
	// Combine each SEM half with the local user half and finish the OAEP
	// decryption, matching what Client.DecryptRSA does per item.
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		combined := mrsa.Combine(f.rsaPub.N, f.rsaUser.Op(cts[i]), halves[i])
		got, err := mrsa.FinishDecrypt(f.rsaPub, combined)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msgs[i]) {
			t.Fatalf("batch-decrypted %q, want %q", got, msgs[i])
		}
	}
}

// TestMixedVersionClients serves a v1 JSON client and a v2 batch client on
// the same listener concurrently — the compat guarantee of the versioned
// framing (run under -race in CI).
func TestMixedVersionClients(t *testing.T) {
	f := newFixture(t)

	v1, err := DialV1(f.server.Addr().String(), f.pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = v1.Close() }()

	const perClient = 20
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < perClient; i++ {
			u, err := f.pp.Curve().HashToPoint("semv2-v1", []byte{byte(i)})
			if err != nil {
				errCh <- err
				return
			}
			if _, err := v1.IBEToken(testID, u); err != nil {
				errCh <- fmt.Errorf("v1 client: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		us := randomPoints(t, f, 8)
		ids := make([]string, len(us))
		for i := range ids {
			ids[i] = testID
		}
		for i := 0; i < perClient/4; i++ {
			_, errs, err := f.client.TokenBatch(ids, us)
			if err != nil {
				errCh <- fmt.Errorf("v2 client: %w", err)
				return
			}
			for _, e := range errs {
				if e != nil {
					errCh <- fmt.Errorf("v2 item: %w", e)
					return
				}
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if v := v1.Version(); v != 1 {
		t.Fatalf("v1 client reports version %d", v)
	}
	if v := f.client.Version(); v != 2 {
		t.Fatalf("v2 client reports version %d", v)
	}
}

// rawV2Conn dials addr and completes the v2 handshake manually, for
// protocol-level misbehavior tests.
func rawV2Conn(t *testing.T, addr string, proposeVersion byte) (net.Conn, int, int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := wire.WriteV2Hello(conn, proposeVersion); err != nil {
		t.Fatal(err)
	}
	version, maxBatch, maxFrame, err := wire.ReadV2Ack(conn)
	if err != nil {
		t.Fatal(err)
	}
	if version != wire.V2Version {
		t.Fatalf("ack version %d, want %d", version, wire.V2Version)
	}
	return conn, maxBatch, maxFrame
}

func TestV2UnknownVersionDowngrades(t *testing.T) {
	f := newFixture(t)
	conn, _, _ := rawV2Conn(t, f.server.Addr().String(), 9) // proposes a future version
	// The connection still speaks v2 after the downgrade ack.
	var enc wire.FrameEncoder
	frame, err := enc.EncodeRequest(v2OpPing, []wire.ReqItem{{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var dec wire.FrameDecoder
	op, items, _, err := dec.ReadResponse(conn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != v2OpPing || len(items) != 1 || items[0].Status != v2StatusOK {
		t.Fatalf("ping after downgrade: op=%d items=%+v", op, items)
	}
}

func TestV2OverBatchGetsTypedRefusal(t *testing.T) {
	_, addr := newFixtureWithLimits(t, 4096, 2)
	conn, maxBatch, _ := rawV2Conn(t, addr, wire.V2Version)
	if maxBatch != 2 {
		t.Fatalf("announced max batch %d, want 2", maxBatch)
	}
	var enc wire.FrameEncoder
	items := []wire.ReqItem{{}, {}, {}} // 3 > 2
	frame, err := enc.EncodeRequest(v2OpPing, items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var dec wire.FrameDecoder
	op, resp, _, err := dec.ReadResponse(conn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != v2OpPing || len(resp) != 1 || resp[0].Status != v2StatusBadRequest {
		t.Fatalf("over-batch refusal: op=%d resp=%+v", op, resp)
	}
	// The stream stays synchronized: a conforming frame still works.
	frame, err = enc.EncodeRequest(v2OpPing, items[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_, resp, _, err = dec.ReadResponse(conn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 2 || resp[0].Status != v2StatusOK {
		t.Fatalf("conforming frame after refusal: %+v", resp)
	}
}

func TestV2OversizeFrameGetsTypedRefusal(t *testing.T) {
	_, addr := newFixtureWithLimits(t, 4096, 8)
	conn, _, maxFrame := rawV2Conn(t, addr, wire.V2Version)
	if maxFrame != 4096 {
		t.Fatalf("announced max frame %d, want 4096", maxFrame)
	}
	var enc wire.FrameEncoder
	oversize := []wire.ReqItem{{ID: []byte(testID), Payload: make([]byte, 8192)}}
	frame, err := enc.EncodeRequest(v2OpRSADecrypt, oversize, 0) // beyond server cap, below wire default
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var dec wire.FrameDecoder
	_, resp, _, err := dec.ReadResponse(conn, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || resp[0].Status != v2StatusBadRequest {
		t.Fatalf("oversize refusal: %+v", resp)
	}
	// An unsynchronizable stream: the server hangs up afterwards.
	if _, _, _, err := dec.ReadResponse(conn, 0, 0); err == nil {
		t.Fatal("connection survived an unsynchronizable oversize frame")
	}
}

// TestV1OversizeFrameGetsTypedError covers the same refusal on the JSON
// protocol: the server answers CodeBadRequest before hanging up instead of
// silently dropping the connection.
func TestV1OversizeFrameGetsTypedError(t *testing.T) {
	_, addr := newFixtureWithLimits(t, 4096, 8)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	huge := &Request{Op: OpRSASign, ID: testID, Payload: make([]byte, 8192)}
	if _, err := wire.WriteFrame(conn, huge); err != nil { // default 1 MiB cap on the sender
		t.Fatal(err)
	}
	var resp Response
	if _, err := wire.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeBadRequest {
		t.Fatalf("oversize v1 frame: %+v", resp)
	}
}

// newFixtureWithLimits spins up a bare server (no crypto backends — the
// limit tests never reach dispatch) with explicit frame/batch caps and
// returns its address.
func newFixtureWithLimits(t *testing.T, maxFrame, maxBatch int) (*Server, string) {
	t.Helper()
	srv, err := NewServer(Config{
		Registry: core.NewRegistry(),
		MaxFrame: maxFrame,
		MaxBatch: maxBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

// TestListRevokedPartialEntries is the regression test for the hardened
// ListRevoked: one malformed element in the server's response must not
// void the whole call.
func TestListRevokedPartialEntries(t *testing.T) {
	cli, srv := net.Pipe()
	defer func() { _ = cli.Close() }()
	go func() {
		defer func() { _ = srv.Close() }()
		var req Request
		if _, err := wire.ReadFrame(srv, &req); err != nil {
			return
		}
		good1 := core.RevocationEntry{ID: "alice@example.com", Reason: "lost key", When: time.Now()}
		good2 := core.RevocationEntry{ID: "carol@example.com", Reason: "left org", When: time.Now()}
		payload, _ := json.Marshal([]any{good1, 42, map[string]string{"reason": "no id"}, good2})
		_, _ = wire.WriteFrame(srv, &Response{OK: true, Payload: payload})
	}()

	c := NewClientV1(cli, nil)
	c.SetOpTimeout(2 * time.Second)
	entries, err := c.ListRevoked()
	if !errors.Is(err, ErrPartialList) {
		t.Fatalf("want ErrPartialList, got %v", err)
	}
	if len(entries) != 2 || entries[0].ID != "alice@example.com" || entries[1].ID != "carol@example.com" {
		t.Fatalf("valid entries not preserved: %+v", entries)
	}
}

// TestBatchCallKeepsCompletedChunks is the regression test for mid-batch
// transport failures: results from chunks the server already answered must
// survive a later chunk's connection error, with the voided slots carrying
// that error, instead of the whole call collapsing to nil.
func TestBatchCallKeepsCompletedChunks(t *testing.T) {
	cli, srv := net.Pipe()
	defer func() { _ = cli.Close() }()
	go func() {
		defer func() { _ = srv.Close() }()
		var first [1]byte
		if _, err := io.ReadFull(srv, first[:]); err != nil {
			return
		}
		if _, err := wire.ReadV2HelloTail(srv); err != nil {
			return
		}
		// Announce maxBatch 2 so four items split into two chunks.
		if err := wire.WriteV2Ack(srv, wire.V2Version, 2, wire.MaxFrame); err != nil {
			return
		}
		var dec wire.FrameDecoder
		var enc wire.FrameEncoder
		op, items, _, err := dec.ReadRequest(srv, 0, 2)
		if err != nil {
			return
		}
		resp := make([]wire.RespItem, len(items))
		for i := range items {
			resp[i] = wire.RespItem{Status: v2StatusOK, Data: []byte{byte(i + 1)}}
		}
		frame, err := enc.EncodeResponse(op, resp, 0)
		if err != nil {
			return
		}
		if _, err := srv.Write(frame); err != nil {
			return
		}
		// Swallow the second chunk, then hang up without answering it.
		_, _, _, _ = dec.ReadRequest(srv, 0, 2)
	}()

	c := NewClient(cli, nil)
	c.SetOpTimeout(2 * time.Second)
	ids := []string{"a", "b", "c", "d"}
	payloads := [][]byte{{1}, {2}, {3}, {4}}
	results, errs, err := c.batchCall(OpRSADecrypt, ids, payloads)
	if err == nil {
		t.Fatal("want a transport error for the dead second chunk")
	}
	if len(results) != 4 || len(errs) != 4 {
		t.Fatalf("lengths: %d results, %d errs", len(results), len(errs))
	}
	if errs[0] != nil || errs[1] != nil || !bytes.Equal(results[0], []byte{1}) || !bytes.Equal(results[1], []byte{2}) {
		t.Fatalf("completed chunk lost: results=%v errs=%v", results, errs)
	}
	for i := 2; i < 4; i++ {
		if errs[i] == nil || results[i] != nil {
			t.Fatalf("voided slot %d: result=%v err=%v", i, results[i], errs[i])
		}
	}
}

// TestFanWidthBounded pins the batch-fan permit accounting: concurrent
// batches share the configured parallelism instead of multiplying it
// (each fan gets 1 plus whatever free permits remain, never Workers each).
func TestFanWidthBounded(t *testing.T) {
	srv, err := NewServer(Config{Registry: core.NewRegistry(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w := srv.acquireFanWidth(16); w != 4 {
		t.Fatalf("first fan width = %d, want Workers (4)", w)
	}
	// All permits are held: a concurrent batch must run inline, width 1.
	if w := srv.acquireFanWidth(16); w != 1 {
		t.Fatalf("fan width under load = %d, want 1", w)
	}
	srv.releaseFanWidth(4)
	srv.releaseFanWidth(1)
	// Width also derates to the batch size.
	if w := srv.acquireFanWidth(2); w != 2 {
		t.Fatalf("small-batch fan width = %d, want 2", w)
	}
	srv.releaseFanWidth(2)

	solo, err := NewServer(Config{Registry: core.NewRegistry(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w := solo.acquireFanWidth(8); w != 1 {
		t.Fatalf("single-worker fan width = %d, want 1", w)
	}
	solo.releaseFanWidth(1)
}

// TestListRevokedCleanStaysErrorFree pins the happy path: a fully valid
// list returns no error at all.
func TestListRevokedCleanStaysErrorFree(t *testing.T) {
	f := newFixture(t)
	if err := f.client.Revoke(testID, "test"); err != nil {
		t.Fatal(err)
	}
	entries, err := f.client.ListRevoked()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != testID {
		t.Fatalf("entries = %+v", entries)
	}
}

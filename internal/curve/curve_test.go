package curve

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

// Toy parameters (shared with internal/pairing's "toy" fixed set):
// p is 96 bits, q is a 32-bit prime dividing p+1.
const (
	toyPHex = "c88410b59ac4fa20d9a0256b"
	toyQHex = "fd51d491"
)

func toyCurve(t *testing.T) *Curve {
	t.Helper()
	p, _ := new(big.Int).SetString(toyPHex, 16)
	q, _ := new(big.Int).SetString(toyQHex, 16)
	c, err := New(p, q)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	p, _ := new(big.Int).SetString(toyPHex, 16)
	q, _ := new(big.Int).SetString(toyQHex, 16)

	if _, err := New(big.NewInt(13), big.NewInt(7)); err == nil {
		t.Error("p ≡ 1 mod 4 must be rejected")
	}
	if _, err := New(p, big.NewInt(12345)); err == nil {
		t.Error("q ∤ p+1 must be rejected")
	}
	bad := new(big.Int).Mul(q, big.NewInt(3)) // divides p+1? almost surely not, but composite anyway
	if _, err := New(p, bad); err == nil {
		t.Error("composite q must be rejected")
	}
}

func TestGroupLaws(t *testing.T) {
	c := toyCurve(t)
	P, err := c.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	Q, err := c.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	if !P.Add(c.Infinity()).Equal(P) {
		t.Error("P + O ≠ P")
	}
	if !c.Infinity().Add(P).Equal(P) {
		t.Error("O + P ≠ P")
	}
	if !P.Add(P.Neg()).IsInfinity() {
		t.Error("P + (−P) ≠ O")
	}
	if !P.Add(Q).Equal(Q.Add(P)) {
		t.Error("addition not commutative")
	}
	if !P.Add(P).Equal(P.Double()) {
		t.Error("P + P ≠ 2P")
	}
}

func TestAssociativity(t *testing.T) {
	c := toyCurve(t)
	for i := 0; i < 10; i++ {
		P, _ := c.RandomG1(rand.Reader)
		Q, _ := c.RandomG1(rand.Reader)
		R, _ := c.RandomG1(rand.Reader)
		l := P.Add(Q).Add(R)
		r := P.Add(Q.Add(R))
		if !l.Equal(r) {
			t.Fatalf("(P+Q)+R ≠ P+(Q+R) at iteration %d", i)
		}
	}
}

func TestScalarMul(t *testing.T) {
	c := toyCurve(t)
	P, _ := c.RandomG1(rand.Reader)

	if !P.ScalarMul(big.NewInt(0)).IsInfinity() {
		t.Error("0·P ≠ O")
	}
	if !P.ScalarMul(big.NewInt(1)).Equal(P) {
		t.Error("1·P ≠ P")
	}
	if !P.ScalarMul(big.NewInt(2)).Equal(P.Double()) {
		t.Error("2·P ≠ double(P)")
	}
	// 5P = 2(2P) + P
	want := P.Double().Double().Add(P)
	if !P.ScalarMul(big.NewInt(5)).Equal(want) {
		t.Error("5·P mismatch")
	}
	// (−3)·P = −(3·P)
	if !P.ScalarMul(big.NewInt(-3)).Equal(P.ScalarMul(big.NewInt(3)).Neg()) {
		t.Error("negative scalar mismatch")
	}
	// q·P = O for subgroup points
	if !P.ScalarMul(c.Q()).IsInfinity() {
		t.Error("q·P ≠ O for P ∈ G1")
	}
}

func TestScalarMulDistributes(t *testing.T) {
	c := toyCurve(t)
	P, _ := c.RandomG1(rand.Reader)
	cfg := &quick.Config{MaxCount: 25}
	property := func(a, b uint32) bool {
		ab := new(big.Int).Add(big.NewInt(int64(a)), big.NewInt(int64(b)))
		l := P.ScalarMul(ab)
		r := P.ScalarMul(big.NewInt(int64(a))).Add(P.ScalarMul(big.NewInt(int64(b))))
		return l.Equal(r)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInSubgroup(t *testing.T) {
	c := toyCurve(t)
	P, _ := c.RandomG1(rand.Reader)
	if !P.InSubgroup() {
		t.Error("RandomG1 point must be in subgroup")
	}
	if !c.Infinity().InSubgroup() {
		t.Error("O is in every subgroup")
	}
}

func TestNewPointValidates(t *testing.T) {
	c := toyCurve(t)
	if _, err := c.NewPoint(big.NewInt(1), big.NewInt(1)); !errors.Is(err, ErrNotOnCurve) {
		t.Fatalf("bogus point accepted: %v", err)
	}
}

func TestHashToPoint(t *testing.T) {
	c := toyCurve(t)
	P, err := c.HashToPoint("test", []byte("alice@example.com"))
	if err != nil {
		t.Fatal(err)
	}
	if P.IsInfinity() {
		t.Fatal("hash mapped to infinity")
	}
	if !P.InSubgroup() {
		t.Fatal("hashed point escapes G1")
	}
	// Determinism
	P2, err := c.HashToPoint("test", []byte("alice@example.com"))
	if err != nil {
		t.Fatal(err)
	}
	if !P.Equal(P2) {
		t.Fatal("hash-to-point not deterministic")
	}
	// Domain separation
	P3, err := c.HashToPoint("other", []byte("alice@example.com"))
	if err != nil {
		t.Fatal(err)
	}
	if P.Equal(P3) {
		t.Fatal("different domains produced the same point")
	}
	// Input separation
	P4, err := c.HashToPoint("test", []byte("bob@example.com"))
	if err != nil {
		t.Fatal(err)
	}
	if P.Equal(P4) {
		t.Fatal("different identities produced the same point")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := toyCurve(t)
	for i := 0; i < 20; i++ {
		P, _ := c.RandomG1(rand.Reader)
		data := P.Marshal()
		if len(data) != 1+c.CoordinateSize() {
			t.Fatalf("compressed size %d, want %d", len(data), 1+c.CoordinateSize())
		}
		Q, err := c.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if !P.Equal(Q) {
			t.Fatalf("round trip failed: %v ≠ %v", P, Q)
		}
	}
}

func TestMarshalInfinity(t *testing.T) {
	c := toyCurve(t)
	data := c.Infinity().Marshal()
	P, err := c.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !P.IsInfinity() {
		t.Fatal("round-tripped infinity is not O")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	c := toyCurve(t)
	size := 1 + c.CoordinateSize()

	if _, err := c.Unmarshal([]byte{2, 3}); err == nil {
		t.Error("short encoding accepted")
	}
	bad := make([]byte, size)
	bad[0] = 9
	if _, err := c.Unmarshal(bad); err == nil {
		t.Error("unknown tag accepted")
	}
	// x ≥ p
	over := make([]byte, size)
	over[0] = 2
	for i := 1; i < size; i++ {
		over[i] = 0xff
	}
	if _, err := c.Unmarshal(over); err == nil {
		t.Error("out-of-range x accepted")
	}
	// valid-range x that is not on the curve: x where x³+x is a non-residue
	notOn := make([]byte, size)
	notOn[0] = 2
	x := big.NewInt(1)
	for {
		rhs := new(big.Int).Mul(x, x)
		rhs.Mul(rhs, x)
		rhs.Add(rhs, x)
		rhs.Mod(rhs, c.P())
		if big.Jacobi(rhs, c.P()) == -1 {
			break
		}
		x.Add(x, big.NewInt(1))
	}
	x.FillBytes(notOn[1:])
	if _, err := c.Unmarshal(notOn); !errors.Is(err, ErrNotOnCurve) {
		t.Errorf("non-curve x accepted: %v", err)
	}
	// malformed infinity (nonzero payload)
	badInf := make([]byte, size)
	badInf[size-1] = 1
	if _, err := c.Unmarshal(badInf); err == nil {
		t.Error("malformed infinity accepted")
	}
}

func TestNegInfinity(t *testing.T) {
	c := toyCurve(t)
	if !c.Infinity().Neg().IsInfinity() {
		t.Fatal("−O ≠ O")
	}
}

func TestRandomPointOnCurve(t *testing.T) {
	c := toyCurve(t)
	P, err := c.RandomPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if P.IsInfinity() {
		t.Fatal("random point is infinity")
	}
	if !c.isOnCurve(P.X(), P.Y()) {
		t.Fatal("random point not on curve")
	}
}

func TestCoordinateCopies(t *testing.T) {
	c := toyCurve(t)
	P, _ := c.RandomG1(rand.Reader)
	x := P.X()
	x.Add(x, big.NewInt(1))
	if x.Cmp(P.X()) == 0 {
		t.Fatal("X() leaked internal state")
	}
	var buf bytes.Buffer
	buf.Write(P.Marshal())
	Q, _ := c.Unmarshal(buf.Bytes())
	if !P.Equal(Q) {
		t.Fatal("marshal/unmarshal through buffer failed")
	}
}

package bench

import (
	"fmt"
	"sort"
)

// Regression describes one baseline entry that ran slower than the allowed
// tolerance over its committed reference timing.
type Regression struct {
	Name    string  // entry name
	RefNs   float64 // committed ns/op
	FreshNs float64 // measured ns/op
	Percent float64 // slowdown, percent over the reference
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op vs %.0f ns/op reference (+%.1f%%)",
		r.Name, r.FreshNs, r.RefNs, r.Percent)
}

// CompareBaselines checks a freshly measured report against a committed
// reference and returns the entries (by ascending name) whose ns/op grew by
// more than tolerancePct percent. Only the intersection of entry names is
// compared, so a reference from before a new primitive existed still guards
// the old ones. The parameter sets must match — cross-parameter ratios are
// meaningless — but Go version and GOARCH may differ (that is the point of
// re-measuring).
func CompareBaselines(ref, fresh *BaselineReport, tolerancePct float64) ([]Regression, error) {
	if ref.Params != fresh.Params {
		return nil, fmt.Errorf("bench: parameter sets differ (reference %q, fresh %q)", ref.Params, fresh.Params)
	}
	if tolerancePct < 0 {
		return nil, fmt.Errorf("bench: negative tolerance %.1f%%", tolerancePct)
	}
	refNs := make(map[string]float64, len(ref.Entries))
	for _, e := range ref.Entries {
		if e.NsPerOp > 0 {
			refNs[e.Name] = e.NsPerOp
		}
	}
	var regs []Regression
	common := 0
	for _, e := range fresh.Entries {
		old, ok := refNs[e.Name]
		if !ok {
			continue
		}
		common++
		slowdown := (e.NsPerOp - old) / old * 100
		if slowdown > tolerancePct {
			regs = append(regs, Regression{Name: e.Name, RefNs: old, FreshNs: e.NsPerOp, Percent: slowdown})
		}
	}
	if common == 0 {
		return nil, fmt.Errorf("bench: no common entries between reference and fresh report")
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs, nil
}

package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/pairing"
)

// testWorld builds a small World (toy pairing, 512-bit RSA) for driver
// tests; the real experiments run at paper sizes via cmd/benchtab.
func testWorld(t *testing.T, startServer bool) *World {
	t.Helper()
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(WorldConfig{Pairing: pp, RSABits: 512, MsgLen: 32, StartServer: startServer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w
}

func TestTablePrint(t *testing.T) {
	tbl := &Table{
		ID:      "TX",
		Caption: "caption",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TX", "caption", "a note", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSizesShape(t *testing.T) {
	pp, _ := pairing.Toy()
	tbl, err := Sizes(SizesConfig{Pairing: pp, RSABits: 512, MsgLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("T1 has %d rows, want 4", len(tbl.Rows))
	}
	// Shape: IBE user key half (compressed point, |p|+8 bits) must be
	// smaller than the RSA user half (≈|n| bits).
	ibeBits := mustInt(t, tbl.Rows[0][1])
	rsaBits := mustInt(t, tbl.Rows[0][2])
	if ibeBits >= rsaBits {
		t.Errorf("IBE key %d bits not smaller than RSA key %d bits", ibeBits, rsaBits)
	}
}

func TestSizesAtPaperParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size pairing in short mode")
	}
	tbl, err := Sizes(SizesConfig{}) // defaults: paper pairing, RSA-1024
	if err != nil {
		t.Fatal(err)
	}
	// Paper claim: 512-ish bit IBE keys vs 1024-bit IB-mRSA halves. The
	// compressed point is 520 bits (512 + tag byte); the RSA user half is
	// ≈1024 bits.
	ibeBits := mustInt(t, tbl.Rows[0][1])
	rsaBits := mustInt(t, tbl.Rows[0][2])
	if ibeBits != 520 {
		t.Errorf("IBE user key = %d bits, want 520 (compressed 512-bit point)", ibeBits)
	}
	if rsaBits < 1000 || rsaBits > 1024 {
		t.Errorf("RSA user half = %d bits, want ≈1024", rsaBits)
	}
}

func TestCommunicationShape(t *testing.T) {
	w := testWorld(t, true)
	tbl, err := Communication(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("T2 has %d rows, want 4", len(tbl.Rows))
	}
	find := func(label string) int {
		for _, row := range tbl.Rows {
			if row[0] == label {
				return mustInt(t, row[1])
			}
		}
		t.Fatalf("row %q missing", label)
		return 0
	}
	gdh := find("mediated GDH half-signature")
	rsa := find("mRSA half-signature")
	ibe := find("mediated IBE decryption token")
	rsaDec := find("IB-mRSA half-decryption")
	// Paper shape: GDH token strictly smaller than mRSA's; IBE token is a
	// GT element (2|p|), comparable to (not better than) RSA.
	if gdh >= rsa {
		t.Errorf("GDH token %d bits not smaller than mRSA %d bits", gdh, rsa)
	}
	if ibe <= gdh {
		t.Errorf("IBE token %d bits should exceed the GDH point %d bits", ibe, gdh)
	}
	if rsaDec == 0 {
		t.Error("RSA half-decryption payload empty")
	}
}

func TestOpsRunAndShape(t *testing.T) {
	w := testWorld(t, false)
	ops, err := Ops(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) < 14 {
		t.Fatalf("T3 matrix has %d ops, want ≥ 14", len(ops))
	}
	for _, op := range ops {
		if err := op.Run(); err != nil {
			t.Errorf("%s/%s: %v", op.Scheme, op.Name, err)
		}
	}
}

func TestTimeOps(t *testing.T) {
	w := testWorld(t, false)
	tbl, err := TimeOps(w, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 14 {
		t.Fatalf("T3 table has %d rows", len(tbl.Rows))
	}
}

func TestAttacksMatrix(t *testing.T) {
	w := testWorld(t, false)
	outcomes, err := Attacks(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("T4 has %d outcomes, want 3", len(outcomes))
	}
	byScheme := map[string]AttackOutcome{}
	for _, o := range outcomes {
		byScheme[o.Scheme] = o
	}
	if !byScheme["ib-mrsa"].SystemBroke {
		t.Error("IB-mRSA collusion must break the system (paper's total-break claim)")
	}
	if byScheme["mediated-ibe"].SystemBroke {
		t.Error("mediated IBE collusion must stay contained")
	}
	if byScheme["mediated-gdh"].SystemBroke {
		t.Error("mediated GDH collusion must stay contained")
	}
	tbl := AttackTable(outcomes)
	if len(tbl.Rows) != 3 {
		t.Fatal("attack table row count mismatch")
	}
}

func TestRevocationSweepShape(t *testing.T) {
	tbl, err := Revocation(RevocationConfig{
		Periods:     []time.Duration{time.Hour, 24 * time.Hour},
		Populations: []int{10},
		Revocations: 5,
		Window:      14 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 SEM row + 2 models × 2 periods per population.
	if len(tbl.Rows) != 5 {
		t.Fatalf("F1 has %d rows, want 5", len(tbl.Rows))
	}
	// SEM row: latency 0s, zero keys.
	if tbl.Rows[0][0] != "sem" || tbl.Rows[0][3] != "0s" || tbl.Rows[0][5] != "0" {
		t.Errorf("SEM row = %v", tbl.Rows[0])
	}
	// Validity-period rows issue keys; longer periods → higher latency.
	var vpLatencies []time.Duration
	for _, row := range tbl.Rows {
		if row[0] == "validity-period" {
			d, err := time.ParseDuration(row[3])
			if err != nil {
				t.Fatal(err)
			}
			vpLatencies = append(vpLatencies, d)
			if row[5] == "0" {
				t.Errorf("validity-period row issued no keys: %v", row)
			}
		}
	}
	if len(vpLatencies) != 2 || vpLatencies[0] >= vpLatencies[1] {
		t.Errorf("validity latencies %v should grow with the period", vpLatencies)
	}
	if _, err := Revocation(RevocationConfig{Revocations: 0}); err == nil {
		t.Error("zero revocations accepted")
	}
}

func TestThresholdSweepShape(t *testing.T) {
	pp, _ := pairing.Toy()
	cells, err := Threshold(ThresholdConfig{
		Pairing:    pp,
		Thresholds: []int{1, 3},
		MsgLen:     32,
		Iters:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("F2 has %d cells, want 2", len(cells))
	}
	if cells[0].T != 1 || cells[0].N != 1 || cells[1].T != 3 || cells[1].N != 5 {
		t.Errorf("cells have wrong (t, n): %+v", cells)
	}
	// Robust total (n proof verifications) must exceed a single share.
	if cells[1].RobustTotal <= cells[1].ShareTime {
		t.Error("robust total not above single-share cost")
	}
	tbl := ThresholdTable(cells, pp)
	if len(tbl.Rows) != 2 {
		t.Fatal("threshold table row mismatch")
	}
}

func TestThroughputSmoke(t *testing.T) {
	w := testWorld(t, true)
	tbl, err := Throughput(w, ThroughputConfig{Clients: []int{2}, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("F3 has %d rows, want 6 (three single ops + three 64-batches)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		rate, err := strconv.ParseFloat(row[2], 64)
		if err != nil || rate <= 0 {
			t.Errorf("row %v has nonpositive rate", row)
		}
	}
	// Throughput without a server errors cleanly.
	wNo := testWorld(t, false)
	if _, err := Throughput(wNo, DefaultThroughputConfig()); err == nil {
		t.Error("throughput without server accepted")
	}
}

func TestWorldDialWithoutServer(t *testing.T) {
	w := testWorld(t, false)
	if _, err := w.Dial(); err == nil {
		t.Fatal("dial without server accepted")
	}
}

func mustInt(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return v
}

func TestExtensionsTable(t *testing.T) {
	pp, _ := pairing.Toy()
	tbl, err := Extensions(ExtensionsConfig{
		Pairing:   pp,
		GMBits:    256,
		RabinBits: 512,
		Iters:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("EXT has %d rows, want 7", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] == "0s" {
			t.Errorf("row %v has zero timing", row)
		}
	}
}

// TestBatchVsSingleThroughput is the committed form of the PR's central
// claim: serving k requests per protocol-v2 frame beats k single-op round
// trips. Run over toy parameters so the comparison is framing-dominated.
func TestBatchVsSingleThroughput(t *testing.T) {
	w := testWorld(t, true)
	tbl, err := Throughput(w, ThroughputConfig{Clients: []int{1}, Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, row := range tbl.Rows {
		rate, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		rates[row[0]] = rate
	}
	single, batch := rates["ibe-token"], rates["ibe-token-batch64"]
	if single <= 0 || batch <= 0 {
		t.Fatalf("missing rates: %v", rates)
	}
	// On a loaded or race-instrumented single-core runner the two rates
	// converge (the crypto dominates both); the guarded property is that
	// batching never becomes materially slower, so allow 15% jitter.
	if batch < 0.85*single {
		t.Fatalf("batch token rate %.0f/s below single-op rate %.0f/s", batch, single)
	}
	t.Logf("ibe-token: single %.0f/s, batch64 %.0f/s (%.1fx)", single, batch, batch/single)
}

package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/bf"
	"repro/internal/curve"
	"repro/internal/lru"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/pairing"
)

// Mediated Boneh-Franklin IBE (Section 4 of the paper).
//
// The PKG computes the FullIdent key d_ID = s·Q_ID, then splits it
// additively in G1:
//
//	d_ID = d_ID,user + d_ID,sem,   d_ID,user ∈R G1.
//
// Encryption is unchanged FullIdent, so the SEM architecture is transparent
// to senders. To decrypt <U, V, W>, the user asks the SEM for the
// message-specific token g_sem = ê(U, d_ID,sem), computes
// g_user = ê(U, d_ID,user), multiplies g = g_sem·g_user = ê(P_pub, Q_ID)^r
// and finishes FullIdent decryption (including the validity check that makes
// tokens single-use). The SEM refuses tokens for revoked identities —
// instant, fine-grained revocation with no key reissue, unlike the
// validity-period workaround of [4]/[3].

// ErrTokenMismatch is returned when a SEM token does not correspond to the
// ciphertext being decrypted (the FullIdent validity check fails).
var ErrTokenMismatch = errors.New("core: SEM token does not open this ciphertext")

// UserKeyHalf is the user's piece d_ID,user of an identity key.
//
// The half lazily carries the fixed-argument Miller program for
// ê(d_ID,user, ·), so every decryption after the first skips the Miller
// loop's point arithmetic (ê is symmetric). Use halves by pointer once
// decryption has run; the cached program makes values non-copyable.
//
//cryptolint:secret
type UserKeyHalf struct {
	ID string
	D  *curve.Point

	fpOnce sync.Once
	fp     *pairing.FixedPair
}

// pairing returns ê(u, d_ID,user) through the half's cached fixed-argument
// program, falling back to the generic pairing for degenerate halves.
func (k *UserKeyHalf) pairing(pp *pairing.Params, u *curve.Point) (*pairing.GT, error) {
	k.fpOnce.Do(func() {
		fp, err := pp.NewFixedPair(k.D)
		if err == nil {
			k.fp = fp
		}
	})
	if k.fp != nil {
		return k.fp.Pair(u)
	}
	return pp.Pair(u, k.D)
}

// SEMKeyHalf is the mediator's piece d_ID,sem of an identity key.
//
//cryptolint:secret
type SEMKeyHalf struct {
	ID string
	D  *curve.Point
}

// MediatedPKG wraps the Boneh-Franklin PKG with the key-splitting Keygen of
// Section 4. The PKG can go offline once every user's halves are delivered;
// only the SEM stays online.
type MediatedPKG struct {
	pkg *bf.PKG
}

// NewMediatedPKG runs Setup: pairing groups, master key s, P_pub = s·P.
func NewMediatedPKG(rng io.Reader, pp *pairing.Params, msgLen int) (*MediatedPKG, error) {
	pkg, err := bf.Setup(rng, pp, msgLen)
	if err != nil {
		return nil, fmt.Errorf("mediated IBE setup: %w", err)
	}
	return &MediatedPKG{pkg: pkg}, nil
}

// Public returns the system parameters senders use. Encryption is plain
// FullIdent: Public().Encrypt(rng, id, msg).
func (m *MediatedPKG) Public() *bf.PublicParams { return m.pkg.Public() }

// SplitExtract derives d_ID = s·H1(ID), draws d_ID,user uniformly from G1
// and returns the two halves. The PKG retains nothing.
func (m *MediatedPKG) SplitExtract(rng io.Reader, id string) (*UserKeyHalf, *SEMKeyHalf, error) {
	full, err := m.pkg.Extract(id)
	if err != nil {
		return nil, nil, err
	}
	pp := m.pkg.Public().Pairing
	r, err := mathx.RandomFieldElement(orRand(rng), pp.Q())
	if err != nil {
		return nil, nil, fmt.Errorf("sample user half: %w", err)
	}
	dUser := pp.GeneratorMul(r)
	dSem := full.D.Add(dUser.Neg())
	return &UserKeyHalf{ID: id, D: dUser}, &SEMKeyHalf{ID: id, D: dSem}, nil
}

// IBESEM is the mediator's half of the mediated IBE: it stores the SEM key
// halves, enforces revocation and issues decryption tokens. Safe for
// concurrent use.
//
// Token issuance is the SEM's entire hot path — every decryption by every
// user lands here — so the SEM keeps an LRU of fixed-argument Miller
// programs (one per recently served identity): after the first token for an
// identity, ê(U, d_ID,sem) costs a line-program replay instead of a full
// Miller loop. Revoking or re-registering an identity drops its program.
type IBESEM struct {
	pub     *bf.PublicParams
	reg     *Registry
	keys    *keyStore[*SEMKeyHalf]
	pairers *lru.Cache[string, *semPairer]
}

// semPairer binds a precomputed pairing program to the exact key half it
// was derived from, so a cached program can never serve a re-registered
// identity's stale key.
type semPairer struct {
	d  *curve.Point
	fp *pairing.FixedPair
}

// semPairerCapacity bounds the SEM's per-identity precomputation cache; the
// working set of actively decrypting identities stays warm while idle ones
// age out. Tunable per deployment with SetPairerCacheCapacity.
const semPairerCapacity = 256

// NewIBESEM constructs a SEM bound to the system parameters and a (possibly
// shared) revocation registry. The SEM subscribes to the registry: revoking
// an identity synchronously drops its precomputed pairing program, and so
// does reinstating one — a replication snapshot can flip an identity
// through revoke/unrevoke without the SEM seeing the individual mutations,
// so both transitions must invalidate derived state.
func NewIBESEM(pub *bf.PublicParams, reg *Registry) *IBESEM {
	s := &IBESEM{
		pub:     pub,
		reg:     reg,
		keys:    newKeyStore[*SEMKeyHalf](),
		pairers: lru.New[string, *semPairer](semPairerCapacity),
	}
	reg.OnRevoke(func(id string) { s.pairers.Remove(id) })
	reg.OnUnrevoke(func(id string) { s.pairers.Remove(id) })
	return s
}

// Register installs an identity's SEM key half, invalidating any pairing
// program precomputed for a previously registered half.
func (s *IBESEM) Register(half *SEMKeyHalf) {
	s.keys.put(half.ID, half)
	s.pairers.Remove(half.ID)
}

// InstrumentPairerCache exports the precomputation cache's hit/miss/
// eviction counters and size through reg as the cache="sem_pairers"
// series of the shared lru_* families.
func (s *IBESEM) InstrumentPairerCache(reg *obs.Registry) {
	s.pairers.Instrument(reg, "sem_pairers")
}

// PairerCacheStats reports the hit/miss/eviction counters of the SEM's
// precomputed-pairing cache.
func (s *IBESEM) PairerCacheStats() lru.Stats { return s.pairers.Stats() }

// PairerCacheLen returns the number of identities with a live precomputed
// pairing program.
func (s *IBESEM) PairerCacheLen() int { return s.pairers.Len() }

// SetPairerCacheCapacity resizes the precomputation cache (values below 1
// are clamped to 1).
func (s *IBESEM) SetPairerCacheCapacity(n int) { s.pairers.Resize(n) }

// Registry exposes the revocation registry (admin interface).
func (s *IBESEM) Registry() *Registry { return s.reg }

// Token implements the SEM side of the decryption protocol: check
// revocation, then return g_sem = ê(U, d_ID,sem).
//
// The token is bound to U = H3(σ, M)·P, so it opens exactly one ciphertext;
// it reveals nothing about d_ID,sem (it is a random-looking GT element) and
// is useless to anyone but the key-half holder.
func (s *IBESEM) Token(id string, u *curve.Point) (*pairing.GT, error) {
	if err := s.reg.Check(id); err != nil {
		return nil, err
	}
	half, ok := s.keys.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownIdentity, id)
	}
	if u == nil || u.IsInfinity() || !u.InSubgroup() {
		return nil, fmt.Errorf("core: ciphertext point U is not a valid G1 element")
	}
	// Serve from the per-identity precomputed Miller program when it matches
	// the registered half; (re)build it otherwise. A concurrent revoke can
	// race the Add and leave a cached program behind, but it can never be
	// *served* for a revoked identity — the Check above runs on every call —
	// and the entry is keyed to this exact half, so it is correct again if
	// the identity is unrevoked.
	if cached, ok := s.pairers.Get(id); ok && cached.d.Equal(half.D) {
		return cached.fp.Pair(u)
	}
	fp, err := s.pub.Pairing.NewFixedPair(half.D)
	if err != nil {
		// Degenerate registered half; fall back to the generic pairing.
		return s.pub.Pairing.Pair(u, half.D)
	}
	s.pairers.Add(id, &semPairer{d: half.D, fp: fp})
	return fp.Pair(u)
}

// UserDecrypt completes decryption on the user side given the SEM token:
// g = g_sem · ê(U, d_ID,user), then the FullIdent opening with its validity
// check.
func UserDecrypt(pub *bf.PublicParams, key *UserKeyHalf, c *bf.Ciphertext, token *pairing.GT) ([]byte, error) {
	gUser, err := key.pairing(pub.Pairing, c.U)
	if err != nil {
		return nil, err
	}
	g := token.Mul(gUser)
	msg, err := pub.OpenWithPairingValue(g, c)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTokenMismatch, err)
	}
	return msg, nil
}

// Decrypt runs the full two-party protocol in-process (user and SEM in the
// same address space) — the reference flow and benchmark body. The
// networked flow lives in internal/sem.
func Decrypt(sem *IBESEM, key *UserKeyHalf, c *bf.Ciphertext) ([]byte, error) {
	token, err := sem.Token(key.ID, c.U)
	if err != nil {
		return nil, err
	}
	return UserDecrypt(sem.pub, key, c, token)
}

// RecombineKey reassembles the full FullIdent key from both halves. Only
// the collusion experiments use it: it is exactly what a user who corrupts
// the SEM can do — and the point of Theorem 4.1 is that this yields *one*
// identity's key, never other users' plaintext.
func RecombineKey(user *UserKeyHalf, sem *SEMKeyHalf) (*bf.PrivateKey, error) {
	if user.ID != sem.ID {
		return nil, fmt.Errorf("core: halves belong to different identities (%q, %q)", user.ID, sem.ID)
	}
	return &bf.PrivateKey{ID: user.ID, D: user.D.Add(sem.D)}, nil
}

func orRand(rng io.Reader) io.Reader {
	if rng == nil {
		return rand.Reader
	}
	return rng
}

// Command cryptolint runs the repository's crypto-invariant analyzers over
// module packages and fails if any finding is reported.
//
// Usage:
//
//	go run ./cmd/cryptolint ./...
//	go run ./cmd/cryptolint -json ./... > findings.json
//	go run ./cmd/cryptolint -enable cttime,secretleak repro/internal/sem
//	go run ./cmd/cryptolint -disable allocfree ./...
//
// The pattern ./... (or no arguments) analyzes every package in the module.
// Everything is loaded and type-checked from source — the tool is
// self-contained and needs neither network access nor installed export data.
//
// With -json, machine-readable output goes to stdout as a single object:
//
//	{"findings": [{"file": ..., "line": ..., "col": ...,
//	               "analyzer": ..., "message": ...}, ...],
//	 "loadErrors": ["...", ...]}
//
// A package that fails to load (parse or type-check error) does not stop
// the run: the remaining targets are still analyzed, the error is recorded,
// and the exit status is 2 regardless of how clean the rest looked — a
// package the loader cannot see is a package the analyzers cannot clear.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/boundarycheck"
	"repro/internal/analysis/cttime"
	"repro/internal/analysis/deadlinecheck"
	"repro/internal/analysis/fanmerge"
	"repro/internal/analysis/load"
	"repro/internal/analysis/nopanic"
	"repro/internal/analysis/randsource"
	"repro/internal/analysis/secretcompare"
	"repro/internal/analysis/secretleak"
)

var analyzers = []*analysis.Analyzer{
	randsource.Analyzer,
	boundarycheck.Analyzer,
	nopanic.Analyzer,
	secretcompare.Analyzer,
	secretleak.Analyzer,
	cttime.Analyzer,
	allocfree.Analyzer,
	deadlinecheck.Analyzer,
	fanmerge.Analyzer,
}

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is one finding in -json output.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Findings   []jsonDiag `json:"findings"`
	LoadErrors []string   `json:"loadErrors"`
}

// run executes one cryptolint invocation rooted at dir and returns the
// process exit code. It is main minus the process plumbing, so tests can
// drive it against throwaway module trees.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cryptolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings and load errors as JSON on stdout")
	enableFlag := fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
	disableFlag := fs.String("disable", "", "comma-separated analyzer names to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	active, err := selectAnalyzers(*enableFlag, *disableFlag)
	if err != nil {
		fmt.Fprintln(stderr, "cryptolint:", err)
		return 2
	}

	root, err := moduleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "cryptolint:", err)
		return 2
	}
	loader, err := load.New(root)
	if err != nil {
		fmt.Fprintln(stderr, "cryptolint:", err)
		return 2
	}

	paths := fs.Args()
	if len(paths) == 0 || (len(paths) == 1 && paths[0] == "./...") {
		paths, err = loader.ModulePackages()
		if err != nil {
			fmt.Fprintln(stderr, "cryptolint:", err)
			return 2
		}
	}

	// Load errors are collected, not fatal: one broken package must neither
	// hide findings in the others nor — the actual bug this structure
	// fixes — let the run report "clean" with exit 0 when part of the tree
	// was never analyzed.
	var targets []*analysis.Package
	var loadErrs []string
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			loadErrs = append(loadErrs, err.Error())
			continue
		}
		targets = append(targets, pkg)
	}

	diags, err := analysis.Run(targets, loader.Loaded(), active)
	if err != nil {
		fmt.Fprintln(stderr, "cryptolint:", err)
		return 2
	}

	if *jsonOut {
		report := jsonReport{Findings: []jsonDiag{}, LoadErrors: []string{}}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		report.LoadErrors = append(report.LoadErrors, loadErrs...)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "cryptolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stderr, d)
		}
	}
	for _, e := range loadErrs {
		fmt.Fprintln(stderr, "cryptolint:", e)
	}

	switch {
	case len(loadErrs) > 0:
		fmt.Fprintf(stderr, "cryptolint: %d finding(s), %d load error(s)\n", len(diags), len(loadErrs))
		return 2
	case len(diags) > 0:
		fmt.Fprintf(stderr, "cryptolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers applies the -enable/-disable flags to the registry.
// Unknown names are usage errors, not silence: a typo in -disable must not
// re-enable the analyzer it meant to skip.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	parse := func(flagName, list string) (map[string]bool, error) {
		set := make(map[string]bool)
		if list == "" {
			return set, nil
		}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("-%s: unknown analyzer %q (known: %s)", flagName, name, strings.Join(known, ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	enabled, err := parse("enable", enable)
	if err != nil {
		return nil, err
	}
	disabled, err := parse("disable", disable)
	if err != nil {
		return nil, err
	}
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		if disabled[a.Name] {
			continue
		}
		active = append(active, a)
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("flag selection leaves no analyzer enabled")
	}
	return active, nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

package repro

// Benchmarks for the extension features (DESIGN.md §6): the conclusion's
// conjectured mediated GM and Rabin schemes, the dual-revocable
// signcryption composition, and the dealerless DKG setup.

import (
	"crypto/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dkg"
	"repro/internal/gm"
	"repro/internal/pairing"
	"repro/internal/rabin"
)

var (
	gmOnce sync.Once
	gmKey  *gm.PrivateKey
	gmUser *gm.HalfKey
	gmSEM  *core.GMSEM
	gmErr  error
)

func gmWorld(b *testing.B) (*gm.PrivateKey, *gm.HalfKey, *core.GMSEM) {
	b.Helper()
	gmOnce.Do(func() {
		gmKey, gmErr = gm.GenerateKey(rand.Reader, 512)
		if gmErr != nil {
			return
		}
		var semHalf *gm.HalfKey
		gmUser, semHalf, gmErr = gm.Split(rand.Reader, gmKey)
		if gmErr != nil {
			return
		}
		gmSEM = core.NewGMSEM(core.NewRegistry())
		gmSEM.Register("bench@example.com", semHalf)
	})
	if gmErr != nil {
		b.Fatal(gmErr)
	}
	return gmKey, gmUser, gmSEM
}

func BenchmarkExtensionGM(b *testing.B) {
	key, user, sem := gmWorld(b)
	msg := []byte("gm-bench-payload")
	cs, err := key.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encrypt-16B", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.Public.Encrypt(rand.Reader, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mediated-decrypt-16B", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GMDecrypt(sem, "bench@example.com", key.Public, user, cs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

var (
	rabinOnce sync.Once
	rabinKey  *rabin.PrivateKey
	rabinUser *rabin.HalfKey
	rabinSEM  *core.RabinSEM
	rabinErr  error
)

func rabinWorld(b *testing.B) (*rabin.PrivateKey, *rabin.HalfKey, *core.RabinSEM) {
	b.Helper()
	rabinOnce.Do(func() {
		rabinKey, rabinErr = rabin.GenerateKey(rand.Reader, 1024)
		if rabinErr != nil {
			return
		}
		var semHalf *rabin.HalfKey
		rabinUser, semHalf, rabinErr = rabin.Split(rand.Reader, rabinKey)
		if rabinErr != nil {
			return
		}
		rabinSEM = core.NewRabinSEM(core.NewRegistry())
		rabinSEM.Register("bench@example.com", semHalf)
	})
	if rabinErr != nil {
		b.Fatal(rabinErr)
	}
	return rabinKey, rabinUser, rabinSEM
}

func BenchmarkExtensionRabin(b *testing.B) {
	key, user, sem := rabinWorld(b)
	msg := []byte("rabin-saep benchmark payload")
	ct, err := key.Public.Encrypt(rand.Reader, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.Public.Encrypt(rand.Reader, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mediated-decrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RabinDecrypt(sem, "bench@example.com", key.Public, user, ct, len(msg)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mediated-sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RabinSign(sem, "bench@example.com", key.Public, user, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSigncryption(b *testing.B) {
	pp, err := pairing.Paper()
	if err != nil {
		b.Fatal(err)
	}
	reg := core.NewRegistry()
	pkg, err := core.NewMediatedPKG(rand.Reader, pp, 128)
	if err != nil {
		b.Fatal(err)
	}
	ibeSEM := core.NewIBESEM(pkg.Public(), reg)
	bobUser, bobSEM, err := pkg.SplitExtract(rand.Reader, "bob@example.com")
	if err != nil {
		b.Fatal(err)
	}
	ibeSEM.Register(bobSEM)
	ta := core.NewGDHAuthority(pp)
	gdhSEM := core.NewGDHSEM(pp, reg)
	alice, aliceSEM, err := ta.Keygen(rand.Reader, "alice@example.com")
	if err != nil {
		b.Fatal(err)
	}
	gdhSEM.Register(aliceSEM)
	sc := core.NewSigncrypter(pkg.Public(), ibeSEM, gdhSEM)
	msg := []byte("signcrypted benchmark message")
	ct, err := sc.Signcrypt(rand.Reader, alice, "bob@example.com", msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("signcrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sc.Signcrypt(rand.Reader, alice, "bob@example.com", msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("designcrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sc.Designcrypt(bobUser, "alice@example.com", alice.Public, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDKG(b *testing.B) {
	pp, err := pairing.Fast()
	if err != nil {
		b.Fatal(err)
	}
	for _, tn := range []struct{ t, n int }{{2, 3}, {3, 5}, {5, 9}} {
		b.Run(benchLabel(tn.t, tn.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dkg.Run(rand.Reader, pp, tn.t, tn.n, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchLabel(t, n int) string {
	digits := "0123456789"
	return "t=" + string(digits[t]) + ",n=" + string(digits[n])
}

// BenchmarkCluster measures end-to-end distributed threshold decryption
// over loopback TCP — the networked form of F2's recombination.
func BenchmarkCluster(b *testing.B) {
	pp, err := pairing.Fast()
	if err != nil {
		b.Fatal(err)
	}
	pkg, err := core.SetupThreshold(rand.Reader, pp, 32, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	params := pkg.Params()
	addrs := make([]string, 5)
	var servers []*cluster.PlayerServer
	for i := 1; i <= 5; i++ {
		srv, err := cluster.NewPlayerServer(params, i)
		if err != nil {
			b.Fatal(err)
		}
		ks, err := pkg.ExtractShare("bench@example.com", i)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Install(ks); err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		addrs[i-1] = ln.Addr().String()
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()
	rec, err := cluster.NewRecombiner(params, addrs, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 32)
	ct, err := params.Public.EncryptBasic(rand.Reader, "bench@example.com", msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rec.Decrypt("bench@example.com", ct); err != nil {
			b.Fatal(err)
		}
	}
}

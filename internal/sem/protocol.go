// Package sem implements the paper's online security mediator as a network
// service: a TCP daemon that holds the SEM key halves for all three
// mediated schemes (pairing IBE, GDH signature, mRSA/IB-mRSA), enforces a
// shared revocation list, and serves the per-operation protocol steps —
// exactly the "SEM remains online all the system's lifetime" deployment the
// paper describes, with the PKG offline after enrollment.
//
// Wire format: 4-byte big-endian length prefix followed by a JSON body.
// One TCP connection carries any number of sequential request/response
// pairs. Frames are capped at 1 MiB.
package sem

import (
	"io"
	"math/big"

	"repro/internal/wire"
)

// Op identifies a protocol operation.
type Op string

// Protocol operations. The first group are the mediated crypto steps; the
// second are the admin/introspection endpoints.
const (
	OpIBEToken   Op = "ibe_token"     // payload: compressed U → payload: GT bytes
	OpGDHSign    Op = "gdh_half_sign" // payload: compressed h(M) → payload: compressed S_sem
	OpRSADecrypt Op = "rsa_half_dec"  // payload: c bytes → payload: c^{d_sem} bytes
	OpRSASign    Op = "rsa_half_sig"  // payload: message → payload: EMSA(m)^{d_sem} bytes
	OpGMDecrypt  Op = "gm_half_dec"   // payload: packed GM elements → payload: packed half-results
	OpRevoke     Op = "revoke"        // reason in Reason
	OpUnrevoke   Op = "unrevoke"      //
	OpStatus     Op = "status"        // → Revoked flag
	OpList       Op = "list_revoked"  // → payload: JSON array of entries
	OpPing       Op = "ping"          // liveness check
)

// ErrorCode classifies failures so clients can map them back to the typed
// errors of internal/core.
type ErrorCode string

// Error codes carried in responses.
const (
	CodeRevoked         ErrorCode = "revoked"
	CodeUnknownIdentity ErrorCode = "unknown_identity"
	CodeBadRequest      ErrorCode = "bad_request"
	CodeUnsupported     ErrorCode = "unsupported"
	CodeInternal        ErrorCode = "internal"
)

// Request is one client → SEM message.
type Request struct {
	Op      Op     `json:"op"`
	ID      string `json:"id,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Payload []byte `json:"payload,omitempty"`
}

// Response is one SEM → client message.
type Response struct {
	OK      bool      `json:"ok"`
	Code    ErrorCode `json:"code,omitempty"`
	Error   string    `json:"error,omitempty"`
	Payload []byte    `json:"payload,omitempty"`
	Revoked bool      `json:"revoked,omitempty"`
}

// maxFrame bounds a single protocol frame.
const maxFrame = wire.MaxFrame

// Framing errors, re-exported so existing callers keep their errors.Is
// matches.
var (
	// ErrFrameTooLarge is returned when a peer announces an oversized frame.
	ErrFrameTooLarge = wire.ErrFrameTooLarge

	// ErrProtocol is returned on malformed frames.
	ErrProtocol = wire.ErrProtocol
)

func writeFrame(w io.Writer, v any) (int, error) { return wire.WriteFrame(w, v) }

func readFrame(r io.Reader, v any) (int, error) { return wire.ReadFrame(r, v) }

func packInts(xs []*big.Int) ([]byte, error) { return wire.PackInts(xs) }

func unpackInts(data []byte) ([]*big.Int, error) { return wire.UnpackInts(data) }

// Threshold decryption: the (t, n) threshold Boneh-Franklin IBE of the
// paper's Section 3, with a byzantine player.
//
// A (3, 5) cluster of decryption servers holds shares of the PKG master
// key. A ciphertext for "archive@example.com" is decrypted jointly; player
// 2 returns a corrupted share, the robustness NIZK proof exposes it, and
// the recombiner both completes the decryption with honest shares and
// reconstructs the liar's true share from the others.
//
// Run: go run ./examples/threshold-decrypt
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pairing"
)

const (
	identity = "archive@example.com"
	msgLen   = 32
	t        = 3
	n        = 5
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pp, err := pairing.Fast()
	if err != nil {
		return err
	}

	// --- Setup: the PKG deals master-key shares and publishes the
	// verification vector P_pub^(i) = f(i)·P. ---
	pkg, err := core.SetupThreshold(rand.Reader, pp, msgLen, t, n)
	if err != nil {
		return err
	}
	params := pkg.Params()
	if err := params.VerifySetup([]int{1, 3, 5}); err != nil {
		return fmt.Errorf("players reject the setup: %w", err)
	}
	fmt.Printf("(t=%d, n=%d) threshold system up; verification vector checks out\n", t, n)

	// --- Keygen: each player receives and verifies its identity-key share
	// d_IDi = f(i)·Q_ID. ---
	shares := make([]*core.KeyShare, n)
	for i := 1; i <= n; i++ {
		ks, err := pkg.ExtractShare(identity, i)
		if err != nil {
			return err
		}
		if err := params.VerifyKeyShare(ks); err != nil {
			return fmt.Errorf("player %d complains to the PKG: %w", i, err)
		}
		shares[i-1] = ks
	}
	fmt.Printf("all %d players verified their key shares via ê(P_pub^(i), Q_ID) = ê(P, d_IDi)\n", n)

	// --- Encrypt (plain BasicIdent; the threshold machinery is invisible
	// to senders). ---
	secret := []byte("rotate the root credentials")
	block := make([]byte, msgLen)
	block[0] = byte(len(secret))
	copy(block[1:], secret)
	ct, err := params.Public.EncryptBasic(rand.Reader, identity, block)
	if err != nil {
		return err
	}
	fmt.Println("ciphertext created for", identity)

	// --- Decrypt: four players respond; player 2 is byzantine. ---
	responses := make([]*core.DecryptionShare, 0, 4)
	for _, i := range []int{1, 2, 3, 4} {
		ds, err := params.ComputeShareWithProof(rand.Reader, shares[i-1], ct.U)
		if err != nil {
			return err
		}
		if i == 2 {
			// Player 2 lies: a mauled share with its (now inconsistent)
			// proof still attached.
			ds = &core.DecryptionShare{Index: 2, G: ds.G.Mul(ds.G), Proof: ds.Proof}
		}
		responses = append(responses, ds)
	}

	plainBlock, rejected, err := params.RobustDecrypt(identity, responses, ct)
	if err != nil {
		return err
	}
	fmt.Printf("robust recombiner rejected players %v via the NIZK proofs\n", rejected)
	fmt.Printf("recovered plaintext: %q\n", plainBlock[1:1+int(plainBlock[0])]) //cryptolint:public (the demo prints the recovered plaintext by design)

	// --- Accountability: the honest majority reconstructs what player 2
	// SHOULD have sent (Section 3.2's recovery step). ---
	honest := make([]*core.DecryptionShare, 0, 3)
	for _, i := range []int{0, 2, 3} {
		s, err := params.ComputeShare(shares[i], ct.U)
		if err != nil {
			return err
		}
		honest = append(honest, s)
	}
	recovered, err := params.RecoverShare(honest, 2)
	if err != nil {
		return err
	}
	truth, err := params.ComputeShare(shares[1], ct.U)
	if err != nil {
		return err
	}
	fmt.Printf("honest players recovered player 2's true share: matches = %v\n",
		recovered.G.Equal(truth.G))
	return nil
}

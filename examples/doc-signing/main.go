// Document signing: the mediated GDH signature of the paper's Section 5,
// side by side with the mediated RSA baseline.
//
// A contract is signed with SEM cooperation under both schemes; the demo
// prints the SEM→user traffic (the paper's 160-vs-1024-bit comparison),
// shows that verifiers need no revocation infrastructure, and that firing
// the signer stops both pens at once through the shared registry.
//
// Run: go run ./examples/doc-signing
package main

import (
	"crypto/rand"
	"errors"
	"fmt"
	"log"

	"repro/internal/bls"
	"repro/internal/core"
	"repro/internal/mrsa"
	"repro/internal/pairing"
)

const signer = "cfo@example.com"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pp, err := pairing.Fast()
	if err != nil {
		return err
	}
	contract := []byte("Purchase agreement: 500 units at 12.50 EUR, net 30.")

	// One registry guards both schemes: a single revocation disarms the
	// signer everywhere.
	reg := core.NewRegistry()

	// --- Mediated GDH setup (trusted authority + SEM) ---
	ta := core.NewGDHAuthority(pp)
	gdhSEM := core.NewGDHSEM(pp, reg)
	gdhKey, gdhSEMHalf, err := ta.Keygen(rand.Reader, signer)
	if err != nil {
		return err
	}
	gdhSEM.Register(gdhSEMHalf)

	// --- Mediated RSA setup (1024-bit, the paper's baseline) ---
	ibpkg, err := mrsa.FixedPaperPKG()
	if err != nil {
		return err
	}
	rsaSEM := core.NewRSASEM(reg)
	rsaUser, rsaSEMHalf, err := ibpkg.IssueHalves(rand.Reader, signer)
	if err != nil {
		return err
	}
	rsaSEM.Register(signer, rsaSEMHalf)
	rsaPub := ibpkg.IdentityPublicKey(signer)

	// --- Sign the contract under both schemes ---
	h, err := bls.HashMessage(pp, contract)
	if err != nil {
		return err
	}
	gdhToken, err := gdhSEM.HalfSign(signer, h)
	if err != nil {
		return err
	}
	gdhSig, err := core.UserSign(gdhKey, contract, gdhToken)
	if err != nil {
		return err
	}
	fmt.Printf("mediated GDH: SEM sent %4d bits; final signature %4d bits\n",
		len(gdhToken.Marshal())*8, len(gdhSig.Marshal())*8)

	rsaToken, err := rsaSEM.HalfSign(signer, contract)
	if err != nil {
		return err
	}
	rsaUserHalf, err := mrsa.SignHalf(rsaUser, contract)
	if err != nil {
		return err
	}
	rsaSig, err := mrsa.FinishSignature(rsaPub, contract, rsaUserHalf, rsaToken)
	if err != nil {
		return err
	}
	fmt.Printf("mediated RSA: SEM sent %4d bits; final signature %4d bits\n",
		len(rsaToken.Bytes())*8, len(rsaSig)*8) //cryptolint:public (only the token length is printed)
	fmt.Println("  → the paper's Section 5 claim: the GDH token is a fraction of the RSA one")

	// --- Verification needs only public data. Crucially, a verifier who
	// accepts a mediated signature KNOWS the key was unrevoked when it was
	// made — the SEM would not have cooperated otherwise. ---
	if err := gdhKey.Public.Verify(contract, gdhSig); err != nil {
		return err
	}
	if err := rsaPub.Verify(contract, rsaSig); err != nil {
		return err
	}
	fmt.Println("both signatures verify; no CRL/OCSP consulted by the verifier")

	// Tampered contract fails.
	tampered := append([]byte{}, contract...)
	tampered[0] ^= 1
	if err := gdhKey.Public.Verify(tampered, gdhSig); err == nil {
		return errors.New("tampered contract verified")
	}
	fmt.Println("tampered contract rejected")

	// --- The CFO departs: one revocation, both schemes disarmed ---
	reg.Revoke(signer, "separation agreement signed 2026-07-06")
	if _, err := gdhSEM.HalfSign(signer, h); !errors.Is(err, core.ErrRevoked) {
		return fmt.Errorf("GDH SEM still cooperates: %v", err)
	}
	if _, err := rsaSEM.HalfSign(signer, contract); !errors.Is(err, core.ErrRevoked) {
		return fmt.Errorf("RSA SEM still cooperates: %v", err)
	}
	fmt.Println("signer revoked: neither scheme will produce another signature")

	// Old signatures remain verifiable — revocation is about new
	// operations, exactly the semantics the SEM architecture provides.
	if err := gdhKey.Public.Verify(contract, gdhSig); err != nil {
		return err
	}
	fmt.Println("existing signatures remain valid and verifiable")
	return nil
}

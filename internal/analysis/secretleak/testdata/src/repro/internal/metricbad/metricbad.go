// Package metricbad exercises the metrics-sink positive cases: everything
// handed to the obs registry is published on the scrape endpoint, label
// values included.
package metricbad

import (
	"repro/internal/keys"
	"repro/internal/obs"
)

// Labelled smuggles key material through a composite-literal label value.
func Labelled(reg *obs.Registry, k *keys.PrivateKey) {
	reg.Counter("requests_total", "requests",
		obs.Label{Key: "key", Value: string(k.Bytes)}).Inc() // want `secret-bearing value passed to obs.Counter`
}

// Keyed labels a series by identity — metadata, allowed.
func Keyed(reg *obs.Registry, k *keys.PrivateKey) {
	reg.Counter("requests_total", "requests",
		obs.Label{Key: "id", Value: k.ID}).Inc()
}

// Limb-domain Jacobian arithmetic: the internal/fp-backed layer under the
// batch kernels (MSM, the cached subgroup check, square roots for decoding
// and hashing).
//
// The big.Int Jacobian layer in jacobian.go pays a modular reduction
// allocation on every multiplication; at the paper's 512-bit prime one
// big.Int field multiplication costs ~1µs against ~180ns for the Montgomery
// limb multiplication in internal/fp. Kernels that perform thousands of
// field operations per call (Pippenger bucket accumulation, the q·P
// subgroup ladder) therefore run here, on the same formulas as jacobian.go
// — identical group elements in, identical affine coordinates out, so the
// two layers are interchangeable and differential-testable against each
// other.
//
// The fp.Field for the curve prime is constructed lazily on first use and
// cached on the Curve (curves are immutable and shared); if construction
// fails (p beyond fp.MaxLimbs) every caller falls back to the big.Int path,
// so the limb layer is a pure accelerator, never a requirement.
package curve

import (
	"math/big"

	"repro/internal/fp"
	"repro/internal/mathx"
)

// limbField returns the cached fp.Field for the curve prime, constructing
// it (plus the derived constants the limb kernels share) on first use.
// The second result reports availability; callers must fall back to the
// big.Int layer when it is false.
func (c *Curve) limbField() (*fp.Field, bool) {
	c.limb.once.Do(func() {
		F, err := fp.New(c.p)
		if err != nil {
			c.limb.err = err
			return
		}
		c.limb.F = F
		// (p+1)/4: the square-root exponent for p ≡ 3 (mod 4), guaranteed
		// by New's validation.
		e := new(big.Int).Add(c.p, big.NewInt(1))
		c.limb.sqrtExp = e.Rsh(e, 2)
		// w-NAF digits of the fixed subgroup order q, shared by every
		// subgroup check on this curve.
		c.limb.qW = wnafWidth(c.q.BitLen())
		c.limb.qNAF = wnaf(c.q, c.limb.qW)
	})
	return c.limb.F, c.limb.err == nil
}

// sqrtMod computes a square root of the canonical residue a (0 ≤ a < p)
// modulo the curve prime, returning the principal root a^((p+1)/4) exactly
// as mathx.SqrtModP does for p ≡ 3 (mod 4) — decoders and hash-to-point
// depend on the two paths being bit-identical. Non-residues yield
// mathx.ErrNoSquareRoot.
func (c *Curve) sqrtMod(a *big.Int) (*big.Int, error) {
	F, ok := c.limbField()
	if !ok {
		return mathx.SqrtModP(a, c.p)
	}
	if a.Sign() == 0 {
		return new(big.Int), nil
	}
	m := F.NewElt()
	if err := F.FromBig(m, a); err != nil {
		return mathx.SqrtModP(a, c.p) // unreduced input: defensive fallback
	}
	r := F.NewElt()
	F.Exp(r, m, c.limb.sqrtExp)
	// For p ≡ 3 (mod 4), a is a residue iff (a^((p+1)/4))² = a; this check
	// replaces the Jacobi-symbol pretest of the big.Int path.
	chk := F.NewElt()
	F.Square(chk, r)
	if !F.Equal(chk, m) {
		return nil, mathx.ErrNoSquareRoot
	}
	return F.ToBig(r), nil
}

// limbJac is a mutable Jacobian point over fp limb vectors in Montgomery
// form: (X, Y, Z) with Z ≠ 0 denotes (X/Z², Y/Z³); Z = 0 is the identity.
type limbJac struct {
	x, y, z []uint64
}

func newLimbJac(F *fp.Field) limbJac {
	return limbJac{x: F.NewElt(), y: F.NewElt(), z: F.NewElt()} // Z = 0: identity
}

// setAffine loads the Montgomery-form affine point (ax, ay) with Z = 1.
//
//cryptolint:hotpath
func (v *limbJac) setAffine(F *fp.Field, ax, ay []uint64) {
	F.Set(v.x, ax)
	F.Set(v.y, ay)
	F.SetOne(v.z)
}

// ljScratch holds the temporaries for a chain of limb Jacobian operations;
// one instance per goroutine, reused across every step.
type ljScratch struct {
	t1, t2, t3, t4, t5, t6, t7, t8 []uint64
}

func newLjScratch(F *fp.Field) *ljScratch {
	return &ljScratch{
		t1: F.NewElt(), t2: F.NewElt(), t3: F.NewElt(), t4: F.NewElt(),
		t5: F.NewElt(), t6: F.NewElt(), t7: F.NewElt(), t8: F.NewElt(),
	}
}

// ljDouble sets v = 2v in place — the limb transcription of jacDouble
// (a = 1: M = 3X² + Z⁴). The 2-torsion case degenerates to Z' = 2YZ = 0.
//
//cryptolint:hotpath
func ljDouble(F *fp.Field, v *limbJac, s *ljScratch) {
	if F.IsZero(v.z) {
		return
	}
	xx := s.t1
	F.Square(xx, v.x)
	yy := s.t2
	F.Square(yy, v.y)
	zz := s.t3
	F.Square(zz, v.z)

	// S = 4·X·Y²
	sS := s.t4
	F.Mul(sS, v.x, yy)
	F.Double(sS, sS)
	F.Double(sS, sS)

	// M = 3·X² + Z⁴
	m := s.t5
	F.Square(m, zz)
	F.Add(m, m, xx)
	F.Add(m, m, xx)
	F.Add(m, m, xx)

	// Z' = 2·Y·Z (before Y is overwritten)
	F.Mul(v.z, v.y, v.z)
	F.Double(v.z, v.z)

	// X' = M² − 2S
	F.Square(v.x, m)
	F.Sub(v.x, v.x, sS)
	F.Sub(v.x, v.x, sS)

	// Y' = M·(S − X') − 8·Y⁴
	yyyy := s.t6
	F.Square(yyyy, yy)
	F.Double(yyyy, yyyy)
	F.Double(yyyy, yyyy)
	F.Double(yyyy, yyyy)
	F.Sub(v.y, sS, v.x)
	F.Mul(v.y, v.y, m)
	F.Sub(v.y, v.y, yyyy)
}

// ljAddMixed sets v = v + (ax, ay) in place for a Montgomery-form affine
// non-identity point, with the same degenerate handling as jacAddMixed:
// v = O loads the point, v = A doubles, v = −A yields O.
//
//cryptolint:hotpath
func ljAddMixed(F *fp.Field, v *limbJac, ax, ay []uint64, s *ljScratch) {
	if F.IsZero(v.z) {
		v.setAffine(F, ax, ay)
		return
	}
	zz := s.t1
	F.Square(zz, v.z)
	u2 := s.t2
	F.Mul(u2, ax, zz) // U2 = x·Z²
	s2 := s.t3
	F.Mul(s2, ay, zz) // S2 = y·Z³
	F.Mul(s2, s2, v.z)

	h := u2 // H = U2 − X
	F.Sub(h, u2, v.x)
	r := s2 // R = S2 − Y
	F.Sub(r, s2, v.y)

	if F.IsZero(h) {
		if F.IsZero(r) {
			ljDouble(F, v, s)
		} else {
			F.SetZero(v.z)
		}
		return
	}

	hh := s.t4
	F.Square(hh, h)
	hhh := s.t5
	F.Mul(hhh, hh, h)
	xh2 := s.t6
	F.Mul(xh2, v.x, hh)

	// Z' = Z·H
	F.Mul(v.z, v.z, h)

	// X' = R² − H³ − 2·X·H²
	F.Square(v.x, r)
	F.Sub(v.x, v.x, hhh)
	F.Sub(v.x, v.x, xh2)
	F.Sub(v.x, v.x, xh2)

	// Y' = R·(X·H² − X') − Y·H³
	F.Sub(xh2, xh2, v.x)
	F.Mul(xh2, xh2, r)
	F.Mul(hhh, hhh, v.y)
	F.Sub(v.y, xh2, hhh)
}

// ljAdd sets v = v + u in place for two general Jacobian points (the
// bucket-sum and window-merge additions, where neither side is affine).
// Standard Z1Z1/Z2Z2 formulas; v = u degenerates to a doubling, v = −u
// to the identity.
//
//cryptolint:hotpath
func ljAdd(F *fp.Field, v, u *limbJac, s *ljScratch) {
	if F.IsZero(u.z) {
		return
	}
	if F.IsZero(v.z) {
		F.Set(v.x, u.x)
		F.Set(v.y, u.y)
		F.Set(v.z, u.z)
		return
	}
	z1z1 := s.t1
	F.Square(z1z1, v.z)
	z2z2 := s.t2
	F.Square(z2z2, u.z)
	u1 := s.t3
	F.Mul(u1, v.x, z2z2)
	u2 := s.t4
	F.Mul(u2, u.x, z1z1)
	s1 := s.t5
	F.Mul(s1, v.y, u.z)
	F.Mul(s1, s1, z2z2)
	s2 := s.t6
	F.Mul(s2, u.y, v.z)
	F.Mul(s2, s2, z1z1)

	h := u2 // H = U2 − U1
	F.Sub(h, u2, u1)
	r := s2 // R = S2 − S1
	F.Sub(r, s2, s1)

	if F.IsZero(h) {
		if F.IsZero(r) {
			ljDouble(F, v, s)
		} else {
			F.SetZero(v.z)
		}
		return
	}

	hh := s.t7
	F.Square(hh, h)
	hhh := s.t8
	F.Mul(hhh, hh, h)
	u1hh := u1 // U1·H²
	F.Mul(u1hh, u1, hh)

	// Z3 = Z1·Z2·H
	F.Mul(v.z, v.z, u.z)
	F.Mul(v.z, v.z, h)

	// X3 = R² − H³ − 2·U1·H²
	F.Square(v.x, r)
	F.Sub(v.x, v.x, hhh)
	F.Sub(v.x, v.x, u1hh)
	F.Sub(v.x, v.x, u1hh)

	// Y3 = R·(U1·H² − X3) − S1·H³
	F.Sub(u1hh, u1hh, v.x)
	F.Mul(u1hh, u1hh, r)
	F.Mul(hhh, hhh, s1)
	F.Sub(v.y, u1hh, hhh)
}

// ljBatchNormalize converts every non-identity point in pts to affine form
// (Z = 1) in place with Montgomery's simultaneous-inversion trick: one
// variable-time inversion (the coordinates are public) plus three
// multiplications per point. prefix is a caller-owned slab of at least
// len(pts) field elements reused across calls. Identity points are left
// untouched (Z stays 0).
//
//cryptolint:hotpath
func ljBatchNormalize(F *fp.Field, pts []limbJac, prefix [][]uint64, s *ljScratch) error {
	acc := s.t1
	F.SetOne(acc)
	live := 0
	for i := range pts {
		if F.IsZero(pts[i].z) {
			continue
		}
		F.Set(prefix[i], acc)
		F.Mul(acc, acc, pts[i].z)
		live++
	}
	if live == 0 {
		return nil
	}
	if err := F.InvVarTime(acc, acc); err != nil {
		// Unreachable: every factor is a nonzero residue mod the prime p.
		return err
	}
	zInv := s.t2
	zInv2 := s.t3
	for i := len(pts) - 1; i >= 0; i-- {
		if F.IsZero(pts[i].z) {
			continue
		}
		F.Mul(zInv, acc, prefix[i])
		F.Mul(acc, acc, pts[i].z)
		F.Square(zInv2, zInv)
		F.Mul(pts[i].x, pts[i].x, zInv2)
		F.Mul(pts[i].y, pts[i].y, zInv2)
		F.Mul(pts[i].y, pts[i].y, zInv)
		F.SetOne(pts[i].z)
	}
	return nil
}

// ljToPoint normalizes v back to the immutable affine representation
// (one inversion), producing the same canonical coordinates as the big.Int
// jacToAffine for the same group element.
func (c *Curve) ljToPoint(F *fp.Field, v *limbJac, s *ljScratch) *Point {
	if F.IsZero(v.z) {
		return c.Infinity()
	}
	zInv := s.t1
	if err := F.InvVarTime(zInv, v.z); err != nil {
		return c.Infinity() // unreachable: Z ≠ 0 mod prime p
	}
	zInv2 := s.t2
	F.Square(zInv2, zInv)
	x := s.t3
	F.Mul(x, v.x, zInv2)
	y := s.t4
	F.Mul(y, v.y, zInv2)
	F.Mul(y, y, zInv)
	return &Point{curve: c, x: F.ToBig(x), y: F.ToBig(y)}
}

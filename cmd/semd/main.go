// Command semd is the online security mediator daemon: it loads the SEM
// key-half store written by pkgen and serves decryption tokens,
// half-signatures and revocation administration over TCP until interrupted.
//
// Usage:
//
//	semd -addr :7300 -system deploy/system.json -store deploy/sem-store.json
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/keyfile"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/sem"
)

// replDialTimeout bounds each connection attempt the leader makes to a
// follower; the retry loop in internal/repl handles the rest.
const replDialTimeout = 5 * time.Second

func main() {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sigCh, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "semd:", err)
		os.Exit(1)
	}
}

// run serves until an element arrives on stop. When ready is non-nil it
// receives the bound listen address once the daemon is serving (tests use
// this to connect to a ":0" listener); debugReady likewise receives the
// bound -debug-addr address, or is closed when the debug endpoint is off.
func run(args []string, stop <-chan os.Signal, ready, debugReady chan<- string) error {
	fs := flag.NewFlagSet("semd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7300", "listen address")
		systemFn  = fs.String("system", "deploy/system.json", "system parameters file")
		storeFn   = fs.String("store", "deploy/sem-store.json", "SEM key-half store")
		preRevoke = fs.String("revoked", "", "comma-separated identities to revoke at startup")
		journalFn = fs.String("journal", "", "revocation journal file: persists revocations across restarts")
		debugAddr = fs.String("debug-addr", "", "HTTP debug listener (Prometheus /metrics, /metrics.json, /debug/pprof); empty disables")
		maxBatch  = fs.Int("max-batch", 0, "protocol-v2 items per frame announced to clients (0 = default)")
		maxFrame  = fs.Int("max-frame", 0, "per-connection frame size cap in bytes, both protocol versions (0 = default)")
		workers   = fs.Int("workers", 0, "request-execution worker pool size (0 = GOMAXPROCS)")
		shardID   = fs.String("shard", "", "shard label for logs and metrics when this daemon is one of a fleet")
		allowReg  = fs.Bool("allow-register", false, "accept register_ibe/register_gdh ops (enrollment over the wire; same trust model as unauthenticated revoke)")
		replLead  = fs.Bool("repl-leader", false, "act as the fleet's revocation leader: sequence journal appends and stream them to -repl-peers (requires -journal)")
		replPeers = fs.String("repl-peers", "", "comma-separated follower addresses the leader replicates the revocation journal to")
		replEpoch = fs.Uint64("repl-epoch", 1, "this leader's epoch; bump when promoting a new leader so the fleet fences the old one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Reject nonsense tunables outright instead of limping along on an
	// accidental default: an explicitly-set size must be ≥ 1 (leave a flag
	// unset for the built-in default).
	var flagErr error
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers", "max-batch", "max-frame":
			if v, err := strconv.Atoi(f.Value.String()); err != nil || v < 1 {
				flagErr = fmt.Errorf("-%s must be >= 1, got %s", f.Name, f.Value)
			}
		}
	})
	if flagErr != nil {
		return flagErr
	}
	if (*replLead || *replPeers != "") && *journalFn == "" {
		return fmt.Errorf("replication requires a durable journal: set -journal")
	}
	if *replPeers != "" && !*replLead {
		return fmt.Errorf("-repl-peers only makes sense on the leader: set -repl-leader")
	}
	if *replEpoch == 0 {
		return fmt.Errorf("-repl-epoch must be >= 1 (epoch 0 is the pre-replication journal state)")
	}

	var sys keyfile.System
	if err := keyfile.Load(*systemFn, &sys); err != nil {
		return err
	}
	var store keyfile.SEMStore
	if err := keyfile.Load(*storeFn, &store); err != nil {
		return err
	}
	var (
		reg     *core.Registry
		journal *core.Journal
		err     error
	)
	var metrics *obs.Registry
	if *debugAddr != "" {
		metrics = obs.NewRegistry()
	}
	if *journalFn != "" {
		if journal, err = core.OpenJournal(*journalFn); err != nil {
			return err
		}
		defer func() { _ = journal.Close() }()
		journal.Instrument(metrics)
		log.Printf("semd: journal replayed %d records (last seq %d, epoch %d)",
			journal.Replayed(), journal.LastSeq(), journal.Epoch())
		if n := journal.DroppedLines(); n > 0 {
			log.Printf("semd: WARNING: journal replay dropped %d line(s) after corruption; "+
				"1 means a torn final write, more means the journal body is damaged", n)
		}
		if n := journal.UnknownOps(); n > 0 {
			log.Printf("semd: WARNING: journal replay skipped %d record(s) with unknown ops; "+
				"was this journal written by a newer semd?", n)
		}
		reg = journal.Registry()
	} else {
		reg = core.NewRegistry()
	}
	for _, id := range strings.Split(*preRevoke, ",") {
		if id = strings.TrimSpace(id); id != "" {
			if journal != nil {
				if err := journal.Revoke(id, "revoked at startup"); err != nil {
					return err
				}
			} else {
				reg.Revoke(id, "revoked at startup")
			}
		}
	}
	ibe, gdh, rsa, err := store.BuildSEMs(&sys, reg)
	if err != nil {
		return err
	}
	pp, err := sys.Params()
	if err != nil {
		return err
	}
	logf := log.Printf
	if *shardID != "" {
		prefix := fmt.Sprintf("[shard %s] ", *shardID)
		logf = func(format string, v ...any) { log.Printf(prefix+format, v...) }
		if metrics != nil {
			metrics.Gauge("semd_shard_info", "constant 1, labeled with this daemon's shard id",
				obs.Label{Key: "shard", Value: *shardID}).Set(1)
		}
	}
	// Replication roles. Every journal-backed daemon runs a follower — it
	// costs nothing until a leader speaks to it, and it is what lets this
	// shard be caught up after a restart. The leader role is opt-in and
	// additionally streams the journal to its peers.
	var (
		follower *repl.Follower
		leader   *repl.Leader
	)
	if journal != nil {
		follower = repl.NewFollower(journal)
		follower.Instrument(metrics)
	}
	if *replLead {
		var peers []string
		for _, p := range strings.Split(*replPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		leader, err = repl.NewLeader(repl.LeaderConfig{
			Journal: journal,
			Epoch:   *replEpoch,
			Peers:   peers,
			Dial:    sem.ReplDialer(replDialTimeout),
			Logf:    logf,
			Metrics: metrics,
		})
		if err != nil {
			return fmt.Errorf("semd replication leader: %w", err)
		}
		defer func() { _ = leader.Close() }()
		logf("semd: replication leader, epoch %d, %d peer(s): %s", *replEpoch, len(peers), *replPeers)
	} else if follower != nil {
		logf("semd: replication follower at epoch %d, last seq %d", journal.Epoch(), journal.LastSeq())
	}

	srv, err := sem.NewServer(sem.Config{
		Registry:      reg,
		IBE:           ibe,
		GDH:           gdh,
		RSA:           rsa,
		Journal:       journal,
		Pairing:       pp,
		Repl:          follower,
		Leader:        leader,
		Logf:          logf,
		Metrics:       metrics,
		MaxBatch:      *maxBatch,
		MaxFrame:      *maxFrame,
		Workers:       *workers,
		AllowRegister: *allowReg,
	})
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			return fmt.Errorf("semd debug listen: %w", err)
		}
		defer func() { _ = dbg.Close() }()
		log.Printf("semd: debug endpoint (metrics + pprof) on http://%s", dbg.Addr)
		if debugReady != nil {
			debugReady <- dbg.Addr
		}
	} else if debugReady != nil {
		close(debugReady)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("semd listen: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	log.Printf("semd: serving %d IBE / %d GDH / %d RSA identities on %s",
		len(store.IBE), len(store.GDH), len(store.RSA), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-done:
		return err
	case s := <-stop:
		log.Printf("semd: %v — shutting down", s)
		if err := srv.Close(); err != nil {
			return err
		}
		return <-done
	}
}

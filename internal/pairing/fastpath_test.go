package pairing

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"testing"
)

// TestPairDifferentialRandom cross-checks the inversion-free Jacobian Miller
// loop against the affine PairFull oracle on a larger random sample than the
// basic agreement test, asserting bit-identical serialization (not just
// group equality) so encoding-level regressions cannot hide.
func TestPairDifferentialRandom(t *testing.T) {
	pp := toyParams(t)
	gen := pp.Generator()
	q := pp.Q()
	for i := 0; i < 100; i++ {
		a, _ := rand.Int(rand.Reader, q)
		b, _ := rand.Int(rand.Reader, q)
		P := gen.ScalarMul(a)
		Qpt := gen.ScalarMul(b)
		if i%3 == 0 {
			// Mix in hashed points: the schemes pair against H1(id) outputs.
			h, err := pp.Curve().HashToPoint("diff-test", []byte(fmt.Sprintf("id-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			Qpt = h
		}
		fast := mustPair(t, pp, P, Qpt)
		full, err := pp.PairFull(P, Qpt)
		if err != nil {
			t.Fatal(err)
		}
		if string(fast.Bytes()) != string(full.Bytes()) {
			t.Fatalf("iter %d: Jacobian and affine Miller loops differ bitwise", i)
		}
	}
}

// TestSlopeDegenerateErrors is the regression test for the unchecked
// ModInverse returns: a zero slope denominator must surface ErrBadSlope, not
// a nil-pointer panic in a later multiplication.
func TestSlopeDegenerateErrors(t *testing.T) {
	pp := toyParams(t)
	p := pp.P()
	// (0, 0) lies on y² = x³ + x; its tangent denominator 2y is zero.
	two, err := pp.Curve().NewPoint(big.NewInt(0), big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tangentSlope(two, p); !errors.Is(err, ErrBadSlope) {
		t.Fatalf("tangentSlope at order-2 point: err = %v, want ErrBadSlope", err)
	}
	// A chord between two points with equal x has a zero denominator.
	P := pp.Generator()
	if _, err := chordSlope(P, P, p); !errors.Is(err, ErrBadSlope) {
		t.Fatalf("chordSlope with equal x: err = %v, want ErrBadSlope", err)
	}
	if _, err := chordSlope(P, P.Neg(), p); !errors.Is(err, ErrBadSlope) {
		t.Fatalf("chordSlope at vertical line: err = %v, want ErrBadSlope", err)
	}
	// Valid inputs still work.
	if _, err := tangentSlope(P, p); err != nil {
		t.Fatalf("tangentSlope at generator: %v", err)
	}
	Q := P.Double()
	if _, err := chordSlope(P, Q, p); err != nil {
		t.Fatalf("chordSlope generator→2·generator: %v", err)
	}
}

// TestGTTableDifferential checks fixed-base GT exponentiation against the
// square-and-multiply GT.Exp on random, negative, boundary and oversized
// exponents, asserting bit-identical serialization.
func TestGTTableDifferential(t *testing.T) {
	pp := toyParams(t)
	g := mustPair(t, pp, pp.Generator(), pp.Generator())
	tab, err := NewGTTable(g)
	if err != nil {
		t.Fatal(err)
	}
	q := pp.Q()
	check := func(k *big.Int, label string) {
		t.Helper()
		fast := tab.Exp(k)
		slow := mustExp(t, g, k)
		if string(fast.Bytes()) != string(slow.Bytes()) {
			t.Fatalf("%s: table exponentiation differs for k=%v", label, k)
		}
	}
	for i := 0; i < 200; i++ {
		k, _ := rand.Int(rand.Reader, q)
		if i%5 == 0 {
			k.Neg(k)
		}
		if i%11 == 0 {
			k.Mul(k, q) // force multi-limb reduction
		}
		check(k, "random")
	}
	check(big.NewInt(0), "zero")
	check(big.NewInt(1), "one")
	check(q, "order")
	check(new(big.Int).Sub(q, big.NewInt(1)), "order−1")
	if tab.TableSize() != (q.BitLen()+gtWindow-1)/gtWindow*(1<<gtWindow-1) {
		t.Errorf("unexpected table size %d", tab.TableSize())
	}
}

func TestGTTableRejectsDegenerate(t *testing.T) {
	pp := toyParams(t)
	if _, err := NewGTTable(pp.One()); err == nil {
		t.Error("GT table for the identity must be rejected")
	}
	zero := &GT{v: pp.Field().Zero(), q: pp.Q()}
	if _, err := NewGTTable(zero); err == nil {
		t.Error("GT table for zero must be rejected")
	}
}

// TestGeneratorMul checks the lazily-built fixed-base generator path against
// the generic multiplication, including the concurrent first build.
func TestGeneratorMul(t *testing.T) {
	pp := toyParams(t)
	gen := pp.Generator()
	q := pp.Q()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			k := big.NewInt(seed)
			pp.GeneratorMul(k) // races the sync.Once table build
		}(int64(w + 1))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	for i := 0; i < 50; i++ {
		k, _ := rand.Int(rand.Reader, q)
		if i%6 == 0 {
			k.Neg(k)
		}
		fast := pp.GeneratorMul(k)
		slow := gen.ScalarMul(k)
		if !fast.Equal(slow) {
			t.Fatalf("iter %d: GeneratorMul differs for k=%v", i, k)
		}
		if !fast.IsInfinity() && string(fast.Marshal()) != string(slow.Marshal()) {
			t.Fatalf("iter %d: encodings differ", i)
		}
	}
	if !pp.GeneratorMul(big.NewInt(0)).IsInfinity() {
		t.Error("0·P ≠ O via GeneratorMul")
	}
}

package shamir

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/curve"
)

// Toy curve parameters shared with internal/pairing's "toy" set.
const (
	toyPHex = "c88410b59ac4fa20d9a0256b"
	toyQHex = "fd51d491"
)

func toyGroup(t *testing.T) (*curve.Curve, *big.Int) {
	t.Helper()
	p, _ := new(big.Int).SetString(toyPHex, 16)
	q, _ := new(big.Int).SetString(toyQHex, 16)
	c, err := curve.New(p, q)
	if err != nil {
		t.Fatal(err)
	}
	return c, q
}

func TestReconstruct(t *testing.T) {
	q := big.NewInt(2147483647)
	secret := big.NewInt(123456789)
	poly, err := NewPolynomial(rand.Reader, secret, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := poly.IssueShares(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(shares[:3], 3, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("reconstructed %v, want %v", got, secret)
	}
	// any other subset works too
	got2, err := Reconstruct([]Share{shares[4], shares[1], shares[3]}, 3, q)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Cmp(secret) != 0 {
		t.Fatalf("subset reconstruction got %v", got2)
	}
}

func TestFewerThanThresholdRevealsNothingDeterministic(t *testing.T) {
	// With t−1 shares, every candidate secret is equally consistent; we check
	// the weaker executable property that reconstruction from t−1 shares is
	// rejected and that two different polynomials with the same t−1 shares
	// exist (constructed explicitly).
	q := big.NewInt(101)
	poly, _ := NewPolynomial(rand.Reader, big.NewInt(42), q, 2)
	shares, _ := poly.IssueShares(3)
	if _, err := Reconstruct(shares[:1], 2, q); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("want ErrNotEnoughShares, got %v", err)
	}
}

func TestDuplicateSharesRejected(t *testing.T) {
	q := big.NewInt(101)
	poly, _ := NewPolynomial(rand.Reader, big.NewInt(7), q, 2)
	shares, _ := poly.IssueShares(2)
	dup := []Share{shares[0], shares[0]}
	if _, err := Reconstruct(dup, 2, q); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("want ErrDuplicateShare, got %v", err)
	}
}

func TestInvalidThreshold(t *testing.T) {
	q := big.NewInt(101)
	if _, err := NewPolynomial(rand.Reader, big.NewInt(1), q, 0); !errors.Is(err, ErrThreshold) {
		t.Fatalf("t=0 accepted: %v", err)
	}
	poly, _ := NewPolynomial(rand.Reader, big.NewInt(1), q, 3)
	if _, err := poly.IssueShares(2); !errors.Is(err, ErrThreshold) {
		t.Fatalf("n<t accepted: %v", err)
	}
}

func TestEvalHorner(t *testing.T) {
	q := big.NewInt(101)
	// f(x) = 5 + 2x + 3x² via explicit coefficients
	poly := &Polynomial{q: q, coeffs: []*big.Int{big.NewInt(5), big.NewInt(2), big.NewInt(3)}}
	// f(4) = 5 + 8 + 48 = 61
	if got := poly.Eval(big.NewInt(4)); got.Int64() != 61 {
		t.Fatalf("f(4) = %v, want 61", got)
	}
	if poly.Threshold() != 3 {
		t.Fatalf("threshold = %d, want 3", poly.Threshold())
	}
	if poly.Secret().Int64() != 5 {
		t.Fatalf("secret = %v, want 5", poly.Secret())
	}
}

func TestInterpolateAtRecoversShare(t *testing.T) {
	q := big.NewInt(2147483647)
	poly, _ := NewPolynomial(rand.Reader, big.NewInt(31337), q, 3)
	shares, _ := poly.IssueShares(5)
	// Recover share 5 from shares 1..3.
	got, err := InterpolateAt(shares[:3], 3, big.NewInt(5), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(shares[4].Value) != 0 {
		t.Fatalf("recovered share %v, want %v", got, shares[4].Value)
	}
}

func TestVerificationVector(t *testing.T) {
	cv, q := toyGroup(t)
	base, err := cv.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	poly, _ := NewPolynomial(rand.Reader, big.NewInt(987654), q, 3)
	vec, commit := poly.VerificationVector(base, 5)

	if err := VerifyVector(vec, commit, []int{1, 2, 3}, q); err != nil {
		t.Fatalf("subset {1,2,3}: %v", err)
	}
	if err := VerifyVector(vec, commit, []int{2, 4, 5}, q); err != nil {
		t.Fatalf("subset {2,4,5}: %v", err)
	}
	// Corrupt one entry: subsets containing it must fail.
	vecBad := append([]*curve.Point(nil), vec...)
	vecBad[1] = vecBad[1].Add(base)
	if err := VerifyVector(vecBad, commit, []int{1, 2, 3}, q); err == nil {
		t.Fatal("corrupted vector passed verification")
	}
	// Out-of-range subset index
	if err := VerifyVector(vec, commit, []int{0, 1, 2}, q); err == nil {
		t.Fatal("subset index 0 accepted")
	}
	if err := VerifyVector(vec, commit, []int{1, 2, 9}, q); err == nil {
		t.Fatal("subset index beyond n accepted")
	}
}

func TestReconstructPoint(t *testing.T) {
	cv, q := toyGroup(t)
	Q, err := cv.RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	secret := big.NewInt(777)
	poly, _ := NewPolynomial(rand.Reader, secret, q, 3)
	shares, _ := poly.IssueShares(5)
	ptShares := make([]PointShare, len(shares))
	for i, s := range shares {
		ptShares[i] = PointShare{Index: s.Index, Value: Q.ScalarMul(s.Value)}
	}
	got, err := ReconstructPoint(ptShares[1:4], 3, q)
	if err != nil {
		t.Fatal(err)
	}
	want := Q.ScalarMul(secret)
	if !got.Equal(want) {
		t.Fatal("point reconstruction mismatch")
	}
	// Recover player 2's point share from {1, 3, 4}.
	rec, err := InterpolatePointAt([]PointShare{ptShares[0], ptShares[2], ptShares[3]}, 3, big.NewInt(2), q)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(ptShares[1].Value) {
		t.Fatal("point-share recovery mismatch")
	}
}

func TestReconstructPointErrors(t *testing.T) {
	cv, q := toyGroup(t)
	Q, _ := cv.RandomG1(rand.Reader)
	shares := []PointShare{{Index: 1, Value: Q}, {Index: 1, Value: Q}}
	if _, err := ReconstructPoint(shares, 2, q); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("want ErrDuplicateShare, got %v", err)
	}
	if _, err := ReconstructPoint(shares[:1], 2, q); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("want ErrNotEnoughShares, got %v", err)
	}
}

func TestQuickReconstruction(t *testing.T) {
	q := big.NewInt(1000003)
	cfg := &quick.Config{MaxCount: 40}
	property := func(secretRaw uint32, tRaw, extraRaw uint8) bool {
		tt := 1 + int(tRaw%5)     // 1..5
		n := tt + int(extraRaw%4) // t..t+3
		secret := big.NewInt(int64(secretRaw) % 1000003)
		poly, err := NewPolynomial(rand.Reader, secret, q, tt)
		if err != nil {
			return false
		}
		shares, err := poly.IssueShares(n)
		if err != nil {
			return false
		}
		// reconstruct from the *last* t shares to vary subsets
		got, err := Reconstruct(shares[n-tt:], tt, q)
		if err != nil {
			return false
		}
		return got.Cmp(secret) == 0
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

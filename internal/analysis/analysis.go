// Package analysis is a minimal, dependency-free static-analysis framework
// shaped after golang.org/x/tools/go/analysis. The module deliberately has
// no third-party dependencies, so the x/tools multichecker cannot be used;
// this package provides the small subset the repository's cryptolint
// analyzers need: a named Analyzer with a Run function, a Pass carrying one
// type-checked package (plus every other source-loaded package of the run,
// for cross-package annotation facts), and positioned diagnostics.
//
// The analyzers themselves live in the sibling packages (randsource,
// boundarycheck, nopanic, secretcompare, secretleak) and are driven either
// by cmd/cryptolint over the whole module or by the analysistest harness
// over GOPATH-style fixture trees.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, one word).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Package is one type-checked package with its syntax.
type Package struct {
	// Path is the import path ("repro/internal/sem").
	Path string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checker's package object.
	Types *types.Package
	// Info carries the type-checking results for Files.
	Info *types.Info
}

// Pass is the unit of work handed to an Analyzer: one package, plus access
// to every other source-loaded package of the run so annotation-driven
// analyzers (the //cryptolint:secret taint checks) can resolve markers on
// types defined elsewhere in the module.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// All lists every package loaded from source in this run, including
	// Pkg itself. Dependency packages loaded only for type information
	// (the standard library) are not included.
	All []*Package

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every target package and returns the
// accumulated diagnostics sorted by position. all must contain at least the
// targets; passing the loader's full source-loaded set enables
// cross-package annotation lookups.
func Run(targets, all []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, All: all, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

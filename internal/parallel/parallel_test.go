package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestFanCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		seen := make([]atomic.Int32, n)
		Fan(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestFanChunksPartition(t *testing.T) {
	const n = 97
	seen := make([]atomic.Int32, n)
	FanChunks(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	})
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	max := runtime.GOMAXPROCS(0)
	if w := Workers(1 << 20); w != max {
		t.Errorf("Workers(big) = %d, want GOMAXPROCS = %d", w, max)
	}
}

func TestFanMultiWorkerCoverage(t *testing.T) {
	// Force the goroutine path even on single-core hosts and check the
	// partition still covers every index exactly once.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range []int{4, 5, 97, 256} {
		seen := make([]atomic.Int32, n)
		Fan(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestStatsAdvance(t *testing.T) {
	before := Stats()
	Fan(10, func(int) {})
	after := Stats()
	if after.Fans != before.Fans+1 {
		t.Errorf("fan count: %d -> %d", before.Fans, after.Fans)
	}
	if after.Tasks != before.Tasks+10 {
		t.Errorf("task count: %d -> %d", before.Tasks, after.Tasks)
	}
	if after.Workers <= before.Workers {
		t.Errorf("worker count did not advance: %d -> %d", before.Workers, after.Workers)
	}
}

// explodeAt panics from a named helper so the test can assert the worker
// frame survives into the re-raised panic.
func explodeAt(i int) int {
	if i >= 0 {
		panic("kernel bug at index")
	}
	return i
}

func TestWorkerPanicCarriesWorkerStack(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4)) // force the parallel path
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic was not re-raised on the caller goroutine")
		}
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("re-raised panic is %T (%v), want *WorkerPanic", v, v)
		}
		if wp.Value != "kernel bug at index" {
			t.Errorf("Value = %v, want the original panic value", wp.Value)
		}
		if !strings.Contains(string(wp.Stack), "explodeAt") {
			t.Errorf("worker stack does not contain the panicking frame explodeAt:\n%s", wp.Stack)
		}
		if !strings.Contains(wp.Error(), "explodeAt") {
			t.Error("Error() does not render the worker stack")
		}
	}()
	FanChunks(64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			explodeAt(i)
		}
	})
}

func TestInlinePanicPassesThrough(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1)) // force the inline path
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("inline panic did not propagate")
		}
		if _, wrapped := v.(*WorkerPanic); wrapped {
			t.Fatal("inline path wrapped the panic; it should pass through with the caller stack intact")
		}
	}()
	FanChunks(4, func(lo, hi int) { explodeAt(lo) })
}

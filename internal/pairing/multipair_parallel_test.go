package pairing

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/curve"
)

// TestMultiPairParallelMatchesSequential forces a multi-worker fan (the
// chunked Miller walk) and checks the product is bit-identical to the
// single-chunk lock-step walk and to ∏ Pair. GOMAXPROCS is raised
// explicitly so the parallel path is exercised even on single-core hosts.
func TestMultiPairParallelMatchesSequential(t *testing.T) {
	pp := toyParams(t)
	for _, n := range []int{4, 5, 9, 16} {
		ps := make([]*curve.Point, n)
		qs := make([]*curve.Point, n)
		want := pp.One()
		for i := range ps {
			ps[i] = randPoint(t, pp)
			qs[i] = randPoint(t, pp)
			want = want.Mul(mustPair(t, pp, ps[i], qs[i]))
		}

		prev := runtime.GOMAXPROCS(4)
		parGot, parErr := pp.MultiPair(ps, qs)
		runtime.GOMAXPROCS(1)
		seqGot, seqErr := pp.MultiPair(ps, qs)
		runtime.GOMAXPROCS(prev)
		if parErr != nil || seqErr != nil {
			t.Fatalf("MultiPair(%d): parallel err=%v sequential err=%v", n, parErr, seqErr)
		}
		if !bytes.Equal(parGot.Bytes(), seqGot.Bytes()) {
			t.Fatalf("MultiPair(%d): parallel fan diverges from sequential walk", n)
		}
		if !bytes.Equal(parGot.Bytes(), want.Bytes()) {
			t.Fatalf("MultiPair(%d): parallel fan ≠ ∏ Pair", n)
		}
	}
}

// TestMultiPairConcurrent runs MultiPair on shared inputs from many
// goroutines; with -race -cpu 1,4 it checks the fan, the pairing engine and
// the shared Params for data races and for schedule-independent output.
func TestMultiPairConcurrent(t *testing.T) {
	pp := toyParams(t)
	const n = 8
	ps := make([]*curve.Point, n)
	qs := make([]*curve.Point, n)
	for i := range ps {
		ps[i] = randPoint(t, pp)
		qs[i] = randPoint(t, pp)
	}
	want, err := pp.MultiPair(ps, qs)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := want.Bytes()
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got, err := pp.MultiPair(ps, qs)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got.Bytes(), wantBytes) {
					errs <- errors.New("concurrent MultiPair returned different bytes")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

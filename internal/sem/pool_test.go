package sem

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/obs"
)

// killableProxy forwards TCP connections to a backend and can sever every
// live connection on demand — the harness for eviction, re-dial and
// failover tests.
type killableProxy struct {
	t  *testing.T
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
	down  bool
	wg    sync.WaitGroup
}

func newKillableProxy(t *testing.T, backend string) *killableProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{t: t, ln: ln}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			if p.down {
				p.mu.Unlock()
				_ = c.Close()
				continue
			}
			b, err := net.Dial("tcp", backend)
			if err != nil {
				p.mu.Unlock()
				_ = c.Close()
				continue
			}
			p.conns = append(p.conns, c, b)
			p.mu.Unlock()
			go func() { _, _ = io.Copy(b, c); _ = b.Close() }()
			go func() { _, _ = io.Copy(c, b); _ = c.Close() }()
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		p.killAll()
		p.wg.Wait()
	})
	return p
}

func (p *killableProxy) addr() string { return p.ln.Addr().String() }

// killAll severs every live proxied connection (new dials still succeed).
func (p *killableProxy) killAll() {
	p.mu.Lock()
	for _, c := range p.conns {
		_ = c.Close()
	}
	p.conns = p.conns[:0]
	p.mu.Unlock()
}

// setDown makes the proxy refuse new connections.
func (p *killableProxy) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

func TestPoolOpsEndToEnd(t *testing.T) {
	f := newFixture(t)
	pool := NewPool(f.addr, f.pp, PoolConfig{Size: 2})
	defer pool.Close()

	if err := pool.Ping(); err != nil {
		t.Fatal(err)
	}
	// Token through the pool matches the direct client's token.
	u := f.pp.Generator()
	want, err := f.client.IBEToken(testID, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.IBEToken(testID, u)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("pool token differs from client token")
	}

	// Admin plumbing.
	if err := pool.Revoke(testID, "pool test"); err != nil {
		t.Fatal(err)
	}
	revoked, err := pool.Status(testID)
	if err != nil || !revoked {
		t.Fatalf("status after revoke = %v, %v", revoked, err)
	}
	if _, err := pool.IBEToken(testID, u); !errors.Is(err, ErrRemote) {
		t.Fatalf("token for revoked id = %v, want remote error", err)
	}
	if err := pool.Unrevoke(testID); err != nil {
		t.Fatal(err)
	}
}

func TestPoolBatchAndPartialErrors(t *testing.T) {
	f := newFixture(t)
	pool := NewPool(f.addr, f.pp, PoolConfig{Size: 1})
	defer pool.Close()

	u := f.pp.Generator()
	ids := []string{testID, "ghost@example.com", testID}
	tokens, errs, err := pool.TokenBatch(ids, []*curve.Point{u, u, u})
	if err != nil {
		t.Fatal(err)
	}
	if tokens[0] == nil || tokens[2] == nil {
		t.Fatal("known ids missing tokens")
	}
	if !errors.Is(errs[1], ErrRemote) || !errors.Is(errs[1], core.ErrUnknownIdentity) {
		t.Fatalf("ghost id err = %v, want remote unknown-identity", errs[1])
	}
}

// TestPoolCoalescing drives many concurrent single ops through a one-conn
// pool and checks that the dispatcher folded them into shared frames — the
// mechanism the pooled client's throughput comes from.
func TestPoolCoalescing(t *testing.T) {
	f := newFixture(t)
	reg := obs.NewRegistry()
	pool := NewPool(f.addr, f.pp, PoolConfig{Size: 1, Metrics: reg})
	defer pool.Close()

	const workers, perWorker = 16, 8
	u := f.pp.Generator()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := pool.IBEToken(testID, u); err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d ops failed", n)
	}
	frames := pool.met.frames.Value()
	items := pool.met.frameItems.Value()
	if items != workers*perWorker {
		t.Fatalf("frameItems = %d, want %d", items, workers*perWorker)
	}
	// Demand real coalescing, not a lucky pairing: with 16 workers on one
	// connection the average frame must carry at least 2 items.
	if frames*2 > items {
		t.Fatalf("no coalescing: %d frames for %d items", frames, items)
	}
	t.Logf("coalescing: %d items in %d frames (%.1f items/frame)", items, frames, float64(items)/float64(frames))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sempool_frames_total", "sempool_conns", "sempool_dials_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPoolEvictionAndRedial severs the pool's connection mid-life and
// checks the pool evicts it, re-dials, and completes the next op — with
// the in-call retry making the kill invisible to the caller.
func TestPoolEvictionAndRedial(t *testing.T) {
	f := newFixture(t)
	proxy := newKillableProxy(t, f.addr)
	pool := NewPool(proxy.addr(), f.pp, PoolConfig{Size: 1})
	defer pool.Close()

	u := f.pp.Generator()
	if _, err := pool.IBEToken(testID, u); err != nil {
		t.Fatal(err)
	}
	proxy.killAll()
	// The next op may land on the dead conn; the pool must absorb that via
	// eviction + retry on a fresh dial.
	if _, err := pool.IBEToken(testID, u); err != nil {
		t.Fatalf("op after connection kill: %v", err)
	}
	if ev := pool.met.evictions.Value(); ev < 1 {
		t.Fatalf("evictions = %d, want ≥ 1", ev)
	}
	if d := pool.met.dials.Value(); d < 2 {
		t.Fatalf("dials = %d, want ≥ 2", d)
	}
}

// TestPoolBackendDown checks error classification when the fleet is truly
// unreachable: a transport error, never ErrRemote, never ErrClientClosed.
func TestPoolBackendDown(t *testing.T) {
	f := newFixture(t)
	proxy := newKillableProxy(t, f.addr)
	pool := NewPool(proxy.addr(), f.pp, PoolConfig{Size: 1})
	defer pool.Close()

	if err := pool.Ping(); err != nil {
		t.Fatal(err)
	}
	proxy.setDown(true)
	proxy.killAll()
	_, err := pool.IBEToken(testID, f.pp.Generator())
	if err == nil {
		t.Fatal("op against downed backend succeeded")
	}
	if errors.Is(err, ErrRemote) || errors.Is(err, ErrClientClosed) {
		t.Fatalf("downed-backend error misclassified: %v", err)
	}
	// Recovery: proxy back up, next op succeeds.
	proxy.setDown(false)
	if _, err := pool.IBEToken(testID, f.pp.Generator()); err != nil {
		t.Fatalf("op after backend recovery: %v", err)
	}
}

// TestPoolClosed checks the close contract: idempotent, and every op after
// Close (including ones racing it) reports ErrClientClosed.
func TestPoolClosed(t *testing.T) {
	f := newFixture(t)
	pool := NewPool(f.addr, f.pp, PoolConfig{Size: 2})
	if err := pool.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := pool.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Ping after Close = %v, want ErrClientClosed", err)
	}
	if _, _, err := pool.TokenBatch([]string{testID}, []*curve.Point{f.pp.Generator()}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("TokenBatch after Close = %v, want ErrClientClosed", err)
	}
}

// TestPoolChurnRace hammers a pool with concurrent ops while another
// goroutine repeatedly severs every connection — checkout, eviction and
// re-dial racing under -race. Ops may fail (the backend is being shot),
// but failures must never be misclassified as remote errors.
func TestPoolChurnRace(t *testing.T) {
	f := newFixture(t)
	proxy := newKillableProxy(t, f.addr)
	pool := NewPool(proxy.addr(), f.pp, PoolConfig{Size: 3, OpTimeout: 2 * time.Second})
	defer pool.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ok, failed atomic.Int64
	u := f.pp.Generator()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := pool.IBEToken(testID, u)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrRemote):
					t.Errorf("churn produced a remote error: %v", err)
					return
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	killer := time.NewTicker(10 * time.Millisecond)
	deadline := time.After(500 * time.Millisecond)
loop:
	for {
		select {
		case <-killer.C:
			proxy.killAll()
		case <-deadline:
			break loop
		}
	}
	killer.Stop()
	close(stop)
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatalf("no op ever succeeded under churn (failed=%d)", failed.Load())
	}
	t.Logf("churn: %d ok, %d transport failures, %d evictions, %d dials",
		ok.Load(), failed.Load(), pool.met.evictions.Value(), pool.met.dials.Value())
}

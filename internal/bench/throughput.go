package bench

import (
	"crypto/rand"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bls"
	"repro/internal/sem"
)

// ThroughputConfig parameterizes the F3 experiment.
type ThroughputConfig struct {
	Clients  []int         // concurrency sweep
	Duration time.Duration // measurement window per cell
}

// DefaultThroughputConfig is the F3 sweep used by EXPERIMENTS.md.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{Clients: []int{1, 4, 16}, Duration: 500 * time.Millisecond}
}

// Throughput runs F3: sustained SEM-daemon token throughput per scheme at
// increasing client concurrency, over the real TCP protocol.
//
// Expected shape: per-op cost orders the schemes — the mRSA half-op (one
// modexp) and the GDH half-sign (one scalar multiplication) sit far above
// the IBE token (one pairing); throughput scales with clients until CPU
// saturation.
func Throughput(w *World, cfg ThroughputConfig) (*Table, error) {
	if w.Addr() == "" {
		return nil, fmt.Errorf("bench: throughput needs a running SEM server")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	msg := make([]byte, w.MsgLen)
	ct, err := w.IBEPKG.Public().Encrypt(rand.Reader, w.ID, msg)
	if err != nil {
		return nil, err
	}
	h, err := bls.HashMessage(w.Pairing, []byte("f3 throughput probe"))
	if err != nil {
		return nil, err
	}

	workloads := []struct {
		name string
		body func(c *sem.Client) error
	}{
		{"ibe-token", func(c *sem.Client) error {
			_, err := c.IBEToken(w.ID, ct.U)
			return err
		}},
		{"gdh-half-sign", func(c *sem.Client) error {
			_, err := c.GDHHalfSign(w.ID, h)
			return err
		}},
		{"rsa-half-sign", func(c *sem.Client) error {
			_, err := c.RSAHalfSign(w.RSAPub, w.ID, msg)
			return err
		}},
	}

	var rows [][]string
	for _, wl := range workloads {
		for _, nClients := range cfg.Clients {
			opsPerSec, err := w.measure(wl.body, nClients, cfg.Duration)
			if err != nil {
				return nil, fmt.Errorf("%s @%d clients: %w", wl.name, nClients, err)
			}
			rows = append(rows, []string{
				wl.name,
				fmt.Sprintf("%d", nClients),
				fmt.Sprintf("%.0f", opsPerSec),
			})
		}
	}
	return &Table{
		ID:      "F3",
		Caption: "SEM daemon throughput over TCP vs concurrent clients",
		Columns: []string{"operation", "clients", "tokens/sec"},
		Rows:    rows,
		Notes: []string{
			"expected shape: rsa-half-sign ≥ gdh-half-sign ≫ ibe-token (pairing-bound); scaling with clients up to CPU saturation",
		},
	}, nil
}

// measure hammers the SEM with nClients concurrent connections for the
// window and returns the aggregate operation rate.
func (w *World) measure(body func(*sem.Client) error, nClients int, d time.Duration) (float64, error) {
	var ops atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		client, err := w.Dial()
		if err != nil {
			close(stop)
			wg.Wait()
			return 0, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { _ = client.Close() }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := body(client); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(1)
			}
		}()
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if v := firstErr.Load(); v != nil {
		return 0, v.(error)
	}
	return float64(ops.Load()) / elapsed.Seconds(), nil
}

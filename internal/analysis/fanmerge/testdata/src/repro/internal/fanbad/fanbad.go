// Package fanbad exercises the fanmerge positive cases: every
// completion-order collection pattern inside a fan callback.
package fanbad

import "repro/internal/parallel"

// SumChan serializes results through a channel: completion order.
func SumChan(xs []int) int {
	ch := make(chan int, len(xs))
	parallel.Fan(len(xs), func(i int) {
		ch <- xs[i] * xs[i] // want `channel send in Fan callback serializes results in completion order`
	})
	total := 0
	for range xs {
		total += <-ch
	}
	return total
}

// Steal pulls work items off a shared channel inside the callback.
func Steal(work chan int, out []int) {
	parallel.FanChunks(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = <-work // want `channel receive in FanChunks callback depends on completion order`
		}
	})
}

// Race selects whichever result is ready first.
func Race(a, b chan int, out []int) {
	parallel.Fan(len(out), func(i int) {
		select { // want `select in Fan callback collects results in completion order`
		case v := <-a:
			out[i] = v
		case v := <-b:
			out[i] = v
		}
	})
}

// Walk iterates a map inside the callback: randomized order.
func Walk(m map[string]int, out []int) {
	parallel.FanChunks(1, func(lo, hi int) {
		for _, v := range m { // want `map iteration in FanChunks callback is randomly ordered`
			out[0] += v
		}
	})
}

// Collect appends to a slice declared outside the callback: elements land
// in completion order, racing besides.
func Collect(xs []int) []int {
	var out []int
	parallel.FanChunks(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out = append(out, xs[i]) // want `append to out declared outside the FanChunks callback merges in completion order`
		}
	})
	return out
}

package secretleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/secretleak"
)

func TestSecretLeak(t *testing.T) {
	analysistest.Run(t, "testdata", secretleak.Analyzer,
		"repro/internal/leakbad",
		"repro/internal/leakgood",
		"repro/internal/metricbad",
	)
}

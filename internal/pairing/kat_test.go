package pairing

import (
	"crypto/sha256"
	"fmt"
	"math/big"
	"testing"
)

// Known-answer regression test: ê(a·P, b·P) for fixed scalars must hash to
// these digests on every parameter set. Any change to the field, curve,
// Miller loop or final exponentiation that alters values (rather than just
// performance) trips this immediately.
var pairingKAT = map[string]string{
	"toy":   "5fd7bfbba3158cc02e53f01f13611abe330d0ba081a46c209704b0bdac524d6b",
	"fast":  "4a298319aa72e446d63c986bbf261d0b46bd73ffd61cd57c38d17409e5a268e5",
	"paper": "975320029754c69770f1bf0f15cb49a5b2fe357444548c71d9673f11d190b103",
}

func TestPairingKnownAnswers(t *testing.T) {
	a := big.NewInt(123456789)
	b := big.NewInt(987654321)
	for name, want := range pairingKAT {
		pp, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		P := pp.Generator()
		g := mustPair(t, pp, P.ScalarMul(a), P.ScalarMul(b))
		got := fmt.Sprintf("%x", sha256.Sum256(g.Bytes()))
		if got != want {
			t.Errorf("%s: pairing KAT mismatch\n got %s\nwant %s", name, got, want)
		}
	}
}

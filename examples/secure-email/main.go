// Secure email: the paper's motivating workload, end to end over TCP.
//
// Alice mails Bob using only the string "bob@example.com" as the public
// key. Bob's mail client decrypts through the SEM daemon. Halfway through
// the conversation Bob's account is compromised and revoked — the next
// decryption fails instantly, while Alice's outbox needed no CRL, OCSP or
// certificate validation at any point.
//
// Run: go run ./examples/secure-email
package main

import (
	"crypto/rand"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/keyfile"
	"repro/internal/pairing"
	"repro/internal/sem"
)

const (
	bob    = "bob@example.com"
	msgLen = 64
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Deployment (the pkgen role) ---
	dep, err := keyfile.NewDeployment(keyfile.DeploymentConfig{
		ParamSet: "fast",
		MsgLen:   msgLen,
	})
	if err != nil {
		return err
	}
	if err := dep.Enroll(bob); err != nil {
		return err
	}
	sys := dep.System()

	// --- The SEM daemon (the semd role) ---
	reg := core.NewRegistry()
	ibeSEM, gdhSEM, _, err := dep.Store().BuildSEMs(sys, reg)
	if err != nil {
		return err
	}
	pp, err := pairing.Fast()
	if err != nil {
		return err
	}
	server, err := sem.NewServer(sem.Config{
		Registry: reg,
		IBE:      ibeSEM,
		GDH:      gdhSEM,
		Pairing:  pp,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = server.Serve(ln) }()
	defer func() { _ = server.Close() }()
	fmt.Println("SEM daemon online at", ln.Addr())

	// --- Alice's mail client: encrypt to the identity, nothing else ---
	pub, err := sys.PublicParams()
	if err != nil {
		return err
	}
	mail := func(body string) ([]byte, error) {
		block := make([]byte, msgLen)
		block[0] = byte(len(body))
		copy(block[1:], body)
		ct, err := pub.Encrypt(rand.Reader, bob, block)
		if err != nil {
			return nil, err
		}
		return ct.Marshal(), nil
	}
	wire1, err := mail("Bob — the Q3 numbers are attached.")
	if err != nil {
		return err
	}
	wire2, err := mail("Bob — ignore that, use the v2 sheet.")
	if err != nil {
		return err
	}
	fmt.Printf("Alice sent two encrypted mails (%d bytes each) — zero revocation lookups\n", len(wire1))

	// --- Bob's mail client: decrypt through the SEM ---
	bobCreds := userFile(dep, bob)
	bobKey, err := bobCreds.IBEUserKey(pp)
	if err != nil {
		return err
	}
	client, err := sem.Dial(ln.Addr().String(), pp, 2*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	read := func(wire []byte) (string, error) {
		ct, err := pub.UnmarshalCiphertext(wire)
		if err != nil {
			return "", err
		}
		block, err := client.DecryptIBE(pub, bobKey, ct)
		if err != nil {
			return "", err
		}
		return string(block[1 : 1+int(block[0])]), nil
	}
	body, err := read(wire1)
	if err != nil {
		return err
	}
	fmt.Printf("Bob read mail 1: %q\n", body)

	// --- Incident: Bob's laptop is stolen. Helpdesk revokes him. ---
	if err := client.Revoke(bob, "laptop stolen, ticket #4521"); err != nil {
		return err
	}
	fmt.Println("helpdesk revoked bob@example.com (one RPC, no key reissue)")

	// --- The second mail is now unreadable, instantly ---
	if _, err := read(wire2); !errors.Is(err, core.ErrRevoked) {
		return fmt.Errorf("expected instant revocation, got %v", err)
	}
	fmt.Println("Bob's client cannot decrypt mail 2: identity is revoked")

	// --- Security team restores the account after re-imaging ---
	if err := client.Unrevoke(bob); err != nil {
		return err
	}
	body, err = read(wire2)
	if err != nil {
		return err
	}
	fmt.Printf("after reinstatement Bob read mail 2: %q\n", body)
	fmt.Println("note: the same user half kept working — no new enrollment was needed")
	return nil
}

// userFile round-trips the user's credentials through the on-disk JSON
// artifacts (users/<id>.json), exercising the same path cmd/medcli uses.
func userFile(dep *keyfile.Deployment, id string) *keyfile.User {
	dir, err := os.MkdirTemp("", "secure-email-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	if err := dep.Write(dir); err != nil {
		log.Fatal(err)
	}
	var u keyfile.User
	if err := keyfile.Load(filepath.Join(dir, "users", keyfile.UserFileName(id)), &u); err != nil {
		log.Fatal(err)
	}
	return &u
}

package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/keyfile"
	"repro/internal/pairing"
	"repro/internal/sem"
)

func writeDeployment(t *testing.T) string {
	t.Helper()
	d, err := keyfile.NewDeployment(keyfile.DeploymentConfig{ParamSet: "toy", MsgLen: 32, RSABits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll("alice@example.com"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.Write(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSemdServeAndShutdown(t *testing.T) {
	dir := writeDeployment(t)
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-system", filepath.Join(dir, "system.json"),
			"-store", filepath.Join(dir, "sem-store.json"),
			"-revoked", "mallory@example.com",
		}, stop, ready, nil)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	client, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	// The -revoked flag took effect.
	revoked, err := client.Status("mallory@example.com")
	if err != nil || !revoked {
		t.Fatalf("startup revocation missing: %v %v", revoked, err)
	}
	_ = client.Close()

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestSemdMissingFiles(t *testing.T) {
	stop := make(chan os.Signal)
	if err := run([]string{"-system", "/nonexistent.json"}, stop, nil, nil); err == nil {
		t.Fatal("missing system file accepted")
	}
	dir := writeDeployment(t)
	if err := run([]string{
		"-system", filepath.Join(dir, "system.json"),
		"-store", "/nonexistent.json",
	}, stop, nil, nil); err == nil {
		t.Fatal("missing store file accepted")
	}
}

func TestSemdBadAddress(t *testing.T) {
	dir := writeDeployment(t)
	stop := make(chan os.Signal)
	if err := run([]string{
		"-addr", "256.256.256.256:99999",
		"-system", filepath.Join(dir, "system.json"),
		"-store", filepath.Join(dir, "sem-store.json"),
	}, stop, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

func TestSemdJournalSurvivesRestart(t *testing.T) {
	dir := writeDeployment(t)
	journal := filepath.Join(dir, "revocations.jsonl")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-system", filepath.Join(dir, "system.json"),
		"-store", filepath.Join(dir, "sem-store.json"),
		"-journal", journal,
	}
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}

	// First life: revoke alice over the wire, then shut down.
	stop1 := make(chan os.Signal, 1)
	ready1 := make(chan string, 1)
	done1 := make(chan error, 1)
	go func() { done1 <- run(args, stop1, ready1, nil) }()
	addr := <-ready1
	client, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Revoke("alice@example.com", "incident"); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	stop1 <- syscall.SIGTERM
	if err := <-done1; err != nil {
		t.Fatal(err)
	}

	// Second life: the revocation must have survived.
	stop2 := make(chan os.Signal, 1)
	ready2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() { done2 <- run(args, stop2, ready2, nil) }()
	addr = <-ready2
	client2, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	revoked, err := client2.Status("alice@example.com")
	if err != nil || !revoked {
		t.Fatalf("revocation lost across restart: %v %v", revoked, err)
	}
	// Unrevoke also persists.
	if err := client2.Unrevoke("alice@example.com"); err != nil {
		t.Fatal(err)
	}
	_ = client2.Close()
	stop2 <- syscall.SIGTERM
	if err := <-done2; err != nil {
		t.Fatal(err)
	}

	// Third life: unrevocation visible.
	stop3 := make(chan os.Signal, 1)
	ready3 := make(chan string, 1)
	done3 := make(chan error, 1)
	go func() { done3 <- run(args, stop3, ready3, nil) }()
	addr = <-ready3
	client3, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	revoked, err = client3.Status("alice@example.com")
	if err != nil || revoked {
		t.Fatalf("unrevocation lost across restart: %v %v", revoked, err)
	}
	_ = client3.Close()
	stop3 <- syscall.SIGTERM
	if err := <-done3; err != nil {
		t.Fatal(err)
	}
}

// TestSemdMetricsEndpoint boots the daemon with -debug-addr and scrapes
// the metrics endpoint end-to-end: op counters must move when requests
// are served, and the pprof index must be mounted on the same listener.
func TestSemdMetricsEndpoint(t *testing.T) {
	dir := writeDeployment(t)
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	debugReady := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
			"-system", filepath.Join(dir, "system.json"),
			"-store", filepath.Join(dir, "sem-store.json"),
			"-journal", filepath.Join(dir, "revocations.jsonl"),
		}, stop, ready, debugReady)
	}()
	var addr, dbgAddr string
	select {
	case dbgAddr = <-debugReady:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("debug endpoint never became ready")
	}
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	client, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := client.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Revoke("mallory@example.com", "e2e"); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()

	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + dbgAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := scrape("/metrics")
	for _, want := range []string{
		`sem_requests_total{op="ping"} 3`,
		`sem_requests_total{op="revoke"} 1`,
		`sem_service_seconds_count{op="ping"} 3`,
		`sem_queue_depth 0`,
		`lru_hits_total{cache="sem_pairers"}`,
		`journal_append_seconds_count 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics endpoint missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("scrape:\n%s", metrics)
	}
	if js := scrape("/metrics.json"); !strings.Contains(js, `"sem_requests_total{op=\"ping\"}": 3`) {
		t.Errorf("JSON endpoint missing ping counter:\n%s", js)
	}
	if idx := scrape("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("pprof index not mounted on debug listener")
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestSemdFlagValidation checks the startup tunable validation: explicitly
// setting -workers/-max-batch/-max-frame below 1 must be rejected before
// any file is touched, while valid values (and the 0-means-default of an
// unset flag) boot normally.
func TestSemdFlagValidation(t *testing.T) {
	stop := make(chan os.Signal)
	for _, bad := range [][]string{
		{"-workers", "0"},
		{"-workers", "-3"},
		{"-max-batch", "0"},
		{"-max-batch", "-1"},
		{"-max-frame", "0"},
		{"-max-frame", "-64"},
	} {
		err := run(bad, stop, nil, nil)
		if err == nil {
			t.Fatalf("args %v accepted", bad)
		}
		if !strings.Contains(err.Error(), "must be >= 1") {
			t.Fatalf("args %v: error %q does not name the constraint", bad, err)
		}
	}

	// Valid explicit values serve fine (and -shard/-allow-register parse).
	dir := writeDeployment(t)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	stopOK := make(chan os.Signal, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-system", filepath.Join(dir, "system.json"),
			"-store", filepath.Join(dir, "sem-store.json"),
			"-workers", "2",
			"-max-batch", "16",
			"-max-frame", "65536",
			"-shard", "s0",
			"-allow-register",
		}, stopOK, ready, nil)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	pp, err := pairing.Toy()
	if err != nil {
		t.Fatal(err)
	}
	client, err := sem.Dial(addr, pp, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	stopOK <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// Package bench is the experiment harness shared by cmd/benchtab and the
// root bench_test.go: for every table and figure in EXPERIMENTS.md it builds
// the workload, runs it and returns structured rows that the CLI renders in
// the paper's terms.
//
// Experiments:
//
//	T1 — private-key and ciphertext sizes (mediated IBE vs IB-mRSA)
//	T2 — SEM→user communication per operation, measured on the wire
//	T3 — per-operation computation, user and SEM sides
//	T4 — compromise/collusion matrix (executable attacks)
//	T5 — security-game sanity checks (see internal/core tests)
//	F1 — revocation latency and PKG cost vs period and population
//	F2 — threshold decryption scaling vs (t, n)
//	F3 — SEM daemon throughput vs concurrent clients
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a generic experiment result: a caption, column headers and rows.
type Table struct {
	ID      string
	Caption string
	Columns []string
	Rows    [][]string
	// Notes records the expected paper shape so EXPERIMENTS.md and the CLI
	// output stay self-describing.
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Caption); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	if _, err := fmt.Fprintln(tw, strings.Join(underline, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// bits renders a byte count in the paper's preferred unit.
func bits(n int) string { return fmt.Sprintf("%d", n*8) }

// Command cryptolint runs the repository's crypto-invariant analyzers over
// module packages and fails if any finding is reported.
//
// Usage:
//
//	go run ./cmd/cryptolint ./...
//	go run ./cmd/cryptolint repro/internal/sem repro/internal/cluster
//
// The pattern ./... (or no arguments) analyzes every package in the module.
// Everything is loaded and type-checked from source — the tool is
// self-contained and needs neither network access nor installed export data.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/boundarycheck"
	"repro/internal/analysis/load"
	"repro/internal/analysis/nopanic"
	"repro/internal/analysis/randsource"
	"repro/internal/analysis/secretcompare"
	"repro/internal/analysis/secretleak"
)

var analyzers = []*analysis.Analyzer{
	randsource.Analyzer,
	boundarycheck.Analyzer,
	nopanic.Analyzer,
	secretcompare.Analyzer,
	secretleak.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryptolint:", err)
		return 2
	}
	loader, err := load.New(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryptolint:", err)
		return 2
	}

	paths := args
	if len(paths) == 0 || (len(paths) == 1 && paths[0] == "./...") {
		paths, err = loader.ModulePackages()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cryptolint:", err)
			return 2
		}
	}

	var targets []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cryptolint:", err)
			return 2
		}
		targets = append(targets, pkg)
	}

	diags, err := analysis.Run(targets, loader.Loaded(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryptolint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cryptolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

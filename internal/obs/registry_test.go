package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("req_total", "requests", Label{"op", "ping"}).Add(3)
	reg.Counter("req_total", "requests", Label{"op", "ibe_token"}).Add(5)
	reg.Gauge("queue_depth", "jobs waiting").Set(2)
	reg.GaugeFunc("conns_open", "open connections", func() int64 { return 4 })
	reg.CounterFunc("builds_total", "programs built", func() uint64 { return 9 })
	h := reg.Histogram("svc_seconds", "service time", Label{"op", "ping"})
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(40 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{op="ping"} 3`,
		`req_total{op="ibe_token"} 5`,
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		"conns_open 4",
		"builds_total 9",
		"# TYPE svc_seconds histogram",
		`svc_seconds_bucket{op="ping",le="+Inf"} 3`,
		`svc_seconds_count{op="ping"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket lines: the 2ms bucket holds 2, and some later
	// bucket reaches 3 before +Inf.
	if !regexp.MustCompile(`svc_seconds_bucket\{op="ping",le="0\.002[0-9]*"\} 2`).MatchString(out) {
		t.Fatalf("missing 2ms bucket line:\n%s", out)
	}
	if !regexp.MustCompile(`svc_seconds_sum\{op="ping"\} 0\.04[0-9]*`).MatchString(out) {
		t.Fatalf("missing/incorrect sum line:\n%s", out)
	}
	// Families render sorted by name, HELP/TYPE once per family.
	if strings.Count(out, "# TYPE req_total") != 1 {
		t.Fatal("family header repeated")
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("j_total", "", Label{"op", "x"}).Add(7)
	h := reg.Histogram("j_seconds", "")
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond)
	}
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if got := doc[`j_total{op="x"}`]; got != float64(7) {
		t.Fatalf("counter in JSON = %v", got)
	}
	hist, ok := doc["j_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram not an object: %v", doc["j_seconds"])
	}
	if hist["count"] != float64(10) {
		t.Fatalf("histogram count = %v", hist["count"])
	}
	p50 := hist["p50_seconds"].(float64)
	if p50 < 0.003 || p50 > 0.004 {
		t.Fatalf("p50 = %v", p50)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", Label{"v", `a"b\c` + "\n"}).Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\n"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}

// TestDebugServer scrapes a live debug endpoint: Prometheus text, the JSON
// snapshot and the pprof index must all answer.
func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dbg_total", "debug counter").Add(11)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "dbg_total 11") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"dbg_total": 11`) {
		t.Fatalf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Fatal("pprof index not served")
	}
}
